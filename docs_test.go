package sdnpc_test

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"

	"sdnpc/internal/engine"
	"sdnpc/internal/server"
)

// TestEnginesDocCoversRegistry fails when a registered engine name is
// missing from docs/ENGINES.md — the check scripts/check_docs.sh runs in CI,
// keeping the docs honest as the registry grows. Names must appear in
// backticks so prose mentioning a word like "full" cannot satisfy the check
// by accident.
func TestEnginesDocCoversRegistry(t *testing.T) {
	doc, err := os.ReadFile("docs/ENGINES.md")
	if err != nil {
		t.Fatalf("reading docs/ENGINES.md: %v", err)
	}
	text := string(doc)
	for _, name := range engine.Names() {
		if !strings.Contains(text, fmt.Sprintf("`%s`", name)) {
			t.Errorf("registered engine %q is not documented in docs/ENGINES.md", name)
		}
	}
}

// TestReadmeCoversSelectableEngines requires the README's engine matrix to
// mention every engine a user can actually select.
func TestReadmeCoversSelectableEngines(t *testing.T) {
	doc, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	text := string(doc)
	for _, name := range engine.SelectableNames() {
		if !strings.Contains(text, fmt.Sprintf("`%s`", name)) {
			t.Errorf("selectable engine %q is not mentioned in README.md", name)
		}
	}
}

// TestArchitectureDocExists keeps the architecture doc set linked and
// present: docs/ARCHITECTURE.md must exist and name every layer of the
// system it claims to map.
func TestArchitectureDocExists(t *testing.T) {
	doc, err := os.ReadFile("docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("reading docs/ARCHITECTURE.md: %v", err)
	}
	text := string(doc)
	for _, layer := range []string{
		"internal/engine", "internal/core", "internal/algo", "internal/hw",
		"internal/sdn", "internal/bench", "internal/cache", "internal/server",
		"snapshot", "clone-mutate-swap",
		"internal/arena", "0 allocs/op", "BenchmarkLookupUnderGC",
	} {
		if !strings.Contains(text, layer) {
			t.Errorf("docs/ARCHITECTURE.md does not mention %q", layer)
		}
	}
}

// TestDocsCoverUpdatePlane keeps the incremental update plane documented:
// ARCHITECTURE.md must describe the delta-apply vs rebuild decision and the
// Report().Updates surface, ENGINES.md must state the incremental contract and
// the policy knobs, and the ENGINES.md incremental-support matrix must agree
// with the registry's Incremental flags engine by engine — so the docs
// cannot claim (or forget) delta support the code does not have.
func TestDocsCoverUpdatePlane(t *testing.T) {
	arch, err := os.ReadFile("docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("reading docs/ARCHITECTURE.md: %v", err)
	}
	for _, want := range []string{
		"delta-apply", "RebuildAfterDeltas", "DegradationThreshold", "Report().Updates",
		"bench.UpdateSweep", "-churn-rate", "-experiment churn", "BenchmarkUpdateLatency",
	} {
		if !strings.Contains(string(arch), want) {
			t.Errorf("docs/ARCHITECTURE.md does not mention %q", want)
		}
	}
	engines, err := os.ReadFile("docs/ENGINES.md")
	if err != nil {
		t.Fatalf("reading docs/ENGINES.md: %v", err)
	}
	text := string(engines)
	for _, want := range []string{
		"IncrementalPacketEngine", "UpdateCost", "RebuildAfterDeltas",
		"DegradationThreshold", "Incremental-support matrix", "copy-on-write",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("docs/ENGINES.md does not mention %q", want)
		}
	}
	// Matrix honesty: one row per packet engine whose second column opens
	// with yes/no matching the registry flag.
	for _, name := range engine.PacketEngineNames() {
		def, _ := engine.Get(name)
		rowPrefix := fmt.Sprintf("| `%s` |", name)
		found := false
		for _, line := range strings.Split(text, "\n") {
			if !strings.HasPrefix(line, rowPrefix) {
				continue
			}
			cells := strings.Split(line, "|")
			if len(cells) < 3 {
				continue
			}
			support := strings.TrimSpace(cells[2])
			if strings.HasPrefix(support, "yes") || strings.HasPrefix(support, "no") {
				found = true
				documented := strings.HasPrefix(support, "yes")
				if documented != def.Incremental {
					t.Errorf("docs/ENGINES.md incremental matrix says %q for %s, registry says Incremental=%v",
						support, name, def.Incremental)
				}
				break
			}
		}
		if !found {
			t.Errorf("docs/ENGINES.md incremental-support matrix has no yes/no row for %q", name)
		}
	}
}

// TestDocsCoverReplicationKnobs keeps the sharded serving fleet documented:
// the README must name the replication/sharding facade options and flags
// (with the scaling gate beside them), ARCHITECTURE.md must describe the
// publish fan-out and the shard steering/covering machinery, and ENGINES.md
// must state the engine-side payoff (per-shard structures shrinking
// super-linearly) — so the fleet knobs cannot drift from the docs silently.
func TestDocsCoverReplicationKnobs(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	for _, want := range []string{
		"WithReplicas", "WithShards", "Reader(", "-replicas", "-shards",
		"-partition-by", "-replicated", "BenchmarkThroughputReplicated",
		"check_scaling.sh",
	} {
		if !strings.Contains(string(readme), want) {
			t.Errorf("README.md does not mention %q", want)
		}
	}
	arch, err := os.ReadFile("docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("reading docs/ARCHITECTURE.md: %v", err)
	}
	for _, want := range []string{
		"replicated serving fleet", "fan-out", "Config.Replicas",
		"Config.Shards", "Config.PartitionBy", "Reader(worker)",
		"FleetGeneration", "internal/shard", "Steer", "Assign",
		"TestConcurrentReplicaCoherence", "scripts/check_scaling.sh",
	} {
		if !strings.Contains(string(arch), want) {
			t.Errorf("docs/ARCHITECTURE.md does not mention %q", want)
		}
	}
	engines, err := os.ReadFile("docs/ENGINES.md")
	if err != nil {
		t.Fatalf("reading docs/ENGINES.md: %v", err)
	}
	for _, want := range []string{
		"internal/shard", "super-linear", "WithShards", "Report().Shards",
	} {
		if !strings.Contains(string(engines), want) {
			t.Errorf("docs/ENGINES.md does not mention %q", want)
		}
	}
}

// TestDocsCoverSelfTuning keeps the self-tuning control plane documented:
// the README must name the advisor surface (facade calls, flags, the BENCH
// artifact), ARCHITECTURE.md must describe the signal → shadow-bench →
// recommend/apply flow and its hysteresis, and SERVICE.md must explain the
// advise endpoints' tenant knobs — so the advisor cannot drift from the
// docs silently. (The advise routes themselves are covered both ways by
// TestServiceDocCoversRoutes.)
func TestDocsCoverSelfTuning(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	for _, want := range []string{
		"Advise()", "ApplyRecommendation", "WithSampling", "WithAutoTune",
		"-experiment sweep", "BENCH_", "check_bench_record.sh", "-advise",
		"TestAdviseAdaptsToWorkload",
	} {
		if !strings.Contains(string(readme), want) {
			t.Errorf("README.md does not mention %q", want)
		}
	}
	arch, err := os.ReadFile("docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("reading docs/ARCHITECTURE.md: %v", err)
	}
	for _, want := range []string{
		"internal/advisor", "shadow-bench", "hysteresis", "Config.SampleHeaders",
		"Config.AutoTune", "SetUpdatePolicy", "sdnpc-bench/v1", "bench.LatestRecord",
	} {
		if !strings.Contains(string(arch), want) {
			t.Errorf("docs/ARCHITECTURE.md does not mention %q", want)
		}
	}
	service, err := os.ReadFile("docs/SERVICE.md")
	if err != nil {
		t.Fatalf("reading docs/SERVICE.md: %v", err)
	}
	for _, want := range []string{"auto_tune", "sampling", "candidates", "auto_applied"} {
		if !strings.Contains(string(service), want) {
			t.Errorf("docs/SERVICE.md does not mention %q", want)
		}
	}
}

// TestServiceDocCoversRoutes keeps docs/SERVICE.md and the wire API in
// lockstep, both ways: every route the server registers must appear in the
// doc as a backticked `METHOD /path` pattern, and every such pattern the doc
// claims must be a registered route — so an endpoint cannot be added,
// renamed or removed without the reference following.
func TestServiceDocCoversRoutes(t *testing.T) {
	doc, err := os.ReadFile("docs/SERVICE.md")
	if err != nil {
		t.Fatalf("reading docs/SERVICE.md: %v", err)
	}
	text := string(doc)

	registered := make(map[string]bool)
	for _, route := range server.Routes() {
		registered[route] = true
		if !strings.Contains(text, fmt.Sprintf("`%s`", route)) {
			t.Errorf("registered route %q is not documented in docs/SERVICE.md", route)
		}
	}

	documented := regexp.MustCompile("`((?:GET|POST|PUT|DELETE|PATCH|HEAD) /[^`]*)`").FindAllStringSubmatch(text, -1)
	if len(documented) == 0 {
		t.Fatal("docs/SERVICE.md documents no `METHOD /path` routes")
	}
	for _, m := range documented {
		if !registered[m[1]] {
			t.Errorf("docs/SERVICE.md documents %q, which is not a registered route", m[1])
		}
	}
}

// TestDocsCoverDimensionModel keeps the generalized dimension model
// documented: the ENGINES.md dimension-support matrix must agree cell by
// cell with the registry's declared DimSet for every selectable engine (so
// the docs cannot claim or forget a dimension the code does not serve),
// ARCHITECTURE.md must describe the extended header layout and its serving
// consequences, and SERVICE.md must name the extension wire fields and the
// multi-action query parameter.
func TestDocsCoverDimensionModel(t *testing.T) {
	engines, err := os.ReadFile("docs/ENGINES.md")
	if err != nil {
		t.Fatalf("reading docs/ENGINES.md: %v", err)
	}
	text := string(engines)
	for _, want := range []string{
		"Dimension-support matrix", "MultiMatchPacketEngine", "LookupPacketAll",
		"ErrDimsUnsupported", "non-terminating",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("docs/ENGINES.md does not mention %q", want)
		}
	}
	// Matrix honesty: within the dimension-support matrix section, one row
	// per selectable engine whose second column is exactly the
	// DimSet.String() rendering of the registry declaration.
	section := text
	if i := strings.Index(section, "### Dimension-support matrix"); i >= 0 {
		section = section[i:]
		if j := strings.Index(section, "\n## "); j >= 0 {
			section = section[:j]
		}
	} else {
		t.Fatal("docs/ENGINES.md has no \"### Dimension-support matrix\" section")
	}
	for _, name := range engine.SelectableNames() {
		want := engine.Dims(name).String()
		rowPrefix := fmt.Sprintf("| `%s` |", name)
		found := false
		for _, line := range strings.Split(section, "\n") {
			if !strings.HasPrefix(line, rowPrefix) {
				continue
			}
			cells := strings.Split(line, "|")
			if len(cells) < 3 {
				continue
			}
			found = true
			if got := strings.TrimSpace(cells[2]); got != want {
				t.Errorf("docs/ENGINES.md dimension matrix says %q for %s, registry declares %q",
					got, name, want)
			}
			break
		}
		if !found {
			t.Errorf("docs/ENGINES.md dimension-support matrix has no row for %q", name)
		}
	}

	arch, err := os.ReadFile("docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("reading docs/ARCHITECTURE.md: %v", err)
	}
	for _, want := range []string{
		"SrcIP6", "DstIP6", "VLAN", "TCPFlags", "Family",
		"hashHeader", "TestHashHeaderCoversEveryField",
		"LookupAll", "LookupAllInto", "packetDims", "family-fallback",
	} {
		if !strings.Contains(string(arch), want) {
			t.Errorf("docs/ARCHITECTURE.md does not mention %q", want)
		}
	}

	service, err := os.ReadFile("docs/SERVICE.md")
	if err != nil {
		t.Fatalf("reading docs/SERVICE.md: %v", err)
	}
	for _, want := range []string{
		"src6", "dst6", "vlan", "tcp_flags", "non_terminating",
		"?all=true", "actions",
	} {
		if !strings.Contains(string(service), want) {
			t.Errorf("docs/SERVICE.md does not mention %q", want)
		}
	}
}

// TestDocsCoverCacheFlags keeps the microflow-cache surface documented: the
// README must name the cache flags and facade option, and ENGINES.md must
// explain generation-based invalidation — the piece of the serving contract
// a new engine author would otherwise trip over.
func TestDocsCoverCacheFlags(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	for _, want := range []string{"-cache-capacity", "WithCache", "Report()"} {
		if !strings.Contains(string(readme), want) {
			t.Errorf("README.md does not mention %q", want)
		}
	}
	engines, err := os.ReadFile("docs/ENGINES.md")
	if err != nil {
		t.Fatalf("reading docs/ENGINES.md: %v", err)
	}
	for _, want := range []string{"generation", "-cache-capacity", "-cache-shards", "internal/cache"} {
		if !strings.Contains(string(engines), want) {
			t.Errorf("docs/ENGINES.md does not mention %q", want)
		}
	}
}
