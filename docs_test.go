package sdnpc_test

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"sdnpc/internal/engine"
)

// TestEnginesDocCoversRegistry fails when a registered engine name is
// missing from docs/ENGINES.md — the check scripts/check_docs.sh runs in CI,
// keeping the docs honest as the registry grows. Names must appear in
// backticks so prose mentioning a word like "full" cannot satisfy the check
// by accident.
func TestEnginesDocCoversRegistry(t *testing.T) {
	doc, err := os.ReadFile("docs/ENGINES.md")
	if err != nil {
		t.Fatalf("reading docs/ENGINES.md: %v", err)
	}
	text := string(doc)
	for _, name := range engine.Names() {
		if !strings.Contains(text, fmt.Sprintf("`%s`", name)) {
			t.Errorf("registered engine %q is not documented in docs/ENGINES.md", name)
		}
	}
}

// TestReadmeCoversSelectableEngines requires the README's engine matrix to
// mention every engine a user can actually select.
func TestReadmeCoversSelectableEngines(t *testing.T) {
	doc, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	text := string(doc)
	for _, name := range engine.SelectableNames() {
		if !strings.Contains(text, fmt.Sprintf("`%s`", name)) {
			t.Errorf("selectable engine %q is not mentioned in README.md", name)
		}
	}
}

// TestArchitectureDocExists keeps the architecture doc set linked and
// present: docs/ARCHITECTURE.md must exist and name every layer of the
// system it claims to map.
func TestArchitectureDocExists(t *testing.T) {
	doc, err := os.ReadFile("docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("reading docs/ARCHITECTURE.md: %v", err)
	}
	text := string(doc)
	for _, layer := range []string{
		"internal/engine", "internal/core", "internal/algo", "internal/hw",
		"internal/sdn", "internal/bench", "internal/cache", "snapshot",
		"clone-mutate-swap",
	} {
		if !strings.Contains(text, layer) {
			t.Errorf("docs/ARCHITECTURE.md does not mention %q", layer)
		}
	}
}

// TestDocsCoverCacheFlags keeps the microflow-cache surface documented: the
// README must name the cache flags and facade option, and ENGINES.md must
// explain generation-based invalidation — the piece of the serving contract
// a new engine author would otherwise trip over.
func TestDocsCoverCacheFlags(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	for _, want := range []string{"-cache-capacity", "WithCache", "CacheStats"} {
		if !strings.Contains(string(readme), want) {
			t.Errorf("README.md does not mention %q", want)
		}
	}
	engines, err := os.ReadFile("docs/ENGINES.md")
	if err != nil {
		t.Fatalf("reading docs/ENGINES.md: %v", err)
	}
	for _, want := range []string{"generation", "-cache-capacity", "-cache-shards", "internal/cache"} {
		if !strings.Contains(string(engines), want) {
			t.Errorf("docs/ENGINES.md does not mention %q", want)
		}
	}
}
