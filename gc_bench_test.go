// BenchmarkLookupUnderGC certifies the flat-memory claim the arena layout
// makes: a published snapshot is a handful of pointer-free allocations, so
// the garbage collector neither scans the lookup structures nor finds
// per-packet garbage to chase, and lookup tail latency barely moves when the
// rest of the process churns the heap.
package sdnpc_test

import (
	"runtime"
	"sort"
	"testing"
	"time"

	"sdnpc/internal/bench"
	"sdnpc/internal/core"
	"sdnpc/internal/engine"
)

// BenchmarkLookupUnderGC measures single-packet lookup latency for every
// selectable engine twice: quiet (no background allocation) and churn (an
// allocation antagonist goroutine continuously creating and dropping heap
// garbage, forcing GC cycles through the measurement). Each run reports the
// observed p50 and p99 in nanoseconds; the flat hot path's contract is that
// the churn rows stay close to their quiet baselines, because the serving
// path itself gives the collector nothing to do.
func BenchmarkLookupUnderGC(b *testing.B) {
	for _, name := range engine.SelectableNames() {
		c := core.MustNew(bench.EngineConfig(name))
		if _, err := c.InstallRuleSet(benchSmallWorkload.RuleSet); err != nil {
			b.Fatal(err)
		}
		trace := benchSmallWorkload.Trace
		for _, h := range trace {
			c.Lookup(h) // warm the pooled scratch and the cache
		}
		for _, churn := range []bool{false, true} {
			mode := "quiet"
			if churn {
				mode = "churn"
			}
			b.Run(name+"/"+mode, func(b *testing.B) {
				stop := make(chan struct{})
				done := make(chan struct{})
				if churn {
					go func() {
						// The antagonist holds a rolling window of sizeable
						// buffers: a steady mix of fresh garbage and
						// still-live heap keeps the collector marking and
						// sweeping for the whole measurement.
						defer close(done)
						window := make([][]byte, 64)
						i := 0
						for {
							select {
							case <-stop:
								return
							default:
							}
							window[i%len(window)] = make([]byte, 64<<10)
							i++
							runtime.Gosched()
						}
					}()
				} else {
					close(done)
				}
				lat := make([]int64, b.N)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					start := time.Now()
					c.Lookup(trace[i%len(trace)])
					lat[i] = int64(time.Since(start))
				}
				b.StopTimer()
				close(stop)
				<-done
				sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
				b.ReportMetric(float64(lat[len(lat)/2]), "p50-ns")
				b.ReportMetric(float64(lat[len(lat)*99/100]), "p99-ns")
			})
		}
	}
}
