// Command sdnclassd is the classifier daemon. Its default mode serves the
// multi-tenant wire API of internal/server: any number of independent
// classifier tables (tenants) behind one HTTP/JSON endpoint, with per-tenant
// rule CRUD, classify/classify-batch, engine selection and stats (see
// docs/SERVICE.md for the API reference).
//
//	sdnclassd [-mode serve] [-http addr] [-log-level level]
//
// The daemon exits non-zero when the listen address cannot be bound and
// shuts down gracefully on SIGINT/SIGTERM.
//
// The original single-table experiment — a controller owning a generated
// filter set, a software switch classifying through the configurable
// architecture and a synthetic trace replayed through it — is kept behind
// -mode replay:
//
//	sdnclassd -mode replay -class acl -size 1k -packets 50000
//	          [-profile throughput] [-ip-engine name] [-workers N] [-batch N]
//	          [-cache-shards N] [-cache-capacity N] [-zipf s] [-churn-rate R]
//	          [-replicas R] [-shards K] [-partition-by protocol|src-byte]
//	          [-advise]
//
// With -churn-rate R > 0 a churn writer applies a generated flow-mod trace
// to the switch at R updates/sec while the replay runs, exercising the
// incremental update plane under live traffic; the update-plane statistics
// (delta publishes, rebuilds, publish latency) are printed afterwards.
//
// With -advise the replay samples served headers into the advisor's ring
// buffer and, after the summary, runs the self-tuning control plane once:
// the ranked engine/policy recommendations for the observed traffic are
// printed without being applied.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"sdnpc/internal/advisor"
	"sdnpc/internal/classbench"
	"sdnpc/internal/core"
	"sdnpc/internal/engine"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/sdn/controller"
	"sdnpc/internal/sdn/dataplane"
	"sdnpc/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdnclassd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdnclassd", flag.ContinueOnError)
	mode := fs.String("mode", "serve", "run mode: serve (multi-tenant wire-API daemon) or replay (single-table trace replay)")
	httpAddr := fs.String("http", "127.0.0.1:8080", "wire-API listen address for -mode serve")
	logLevel := fs.String("log-level", "info", "log level for -mode serve (debug, info, warn, error)")
	className := fs.String("class", "acl", "filter-set class (acl, fw, ipc)")
	sizeName := fs.String("size", "1k", "filter-set size (1k, 5k, 10k)")
	packets := fs.Int("packets", 50000, "number of packets to replay")
	profileName := fs.String("profile", "throughput", "application profile driving the algorithm choice (throughput, capacity)")
	ipEngine := fs.String("ip-engine", "", fmt.Sprintf("select the serving engine of either tier by name, overriding the profile %v", engine.SelectableNames()))
	listen := fs.String("listen", "127.0.0.1:0", "controller listen address")
	workers := fs.Int("workers", runtime.NumCPU(), "concurrent replay workers sharing the switch")
	batch := fs.Int("batch", 64, "packets per ProcessBatch call")
	cacheShards := fs.Int("cache-shards", 0, "microflow cache shard count (0 = cache default)")
	cacheCapacity := fs.Int("cache-capacity", 0, "microflow cache entry budget in front of the engines; 0 disables the cache")
	zipf := fs.Float64("zipf", 0, "Zipf skew (> 1, e.g. 1.1) for the replay trace: repeat a flow population with Zipf-ranked popularity")
	churnRate := fs.Float64("churn-rate", 0, "flow-mod churn rate in updates/sec applied to the switch during the replay; 0 disables churn")
	replicas := fs.Int("replicas", 0, "serving-fleet replica count: > 1 fans every publish out to per-worker snapshot/cache replicas")
	shardCount := fs.Int("shards", 0, "rule-space shard count: > 1 partitions the table so each shard serves only its rule slice")
	partitionBy := fs.String("partition-by", "", "shard partition strategy: protocol (default) or src-byte")
	advise := fs.Bool("advise", false, "sample the replayed traffic and print the advisor's engine/policy recommendations after the summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch strings.ToLower(*mode) {
	case "serve":
		return runServe(*httpAddr, *logLevel)
	case "replay":
	default:
		return fmt.Errorf("unknown -mode %q (serve, replay)", *mode)
	}
	if *workers < 1 || *batch < 1 {
		return fmt.Errorf("-workers and -batch must be positive")
	}
	if *cacheCapacity < 0 || *cacheShards < 0 {
		return fmt.Errorf("-cache-capacity and -cache-shards must not be negative")
	}
	if *churnRate < 0 {
		return fmt.Errorf("-churn-rate must not be negative")
	}
	if *replicas < 0 || *shardCount < 0 {
		return fmt.Errorf("-replicas and -shards must not be negative")
	}

	class, size, err := parseWorkload(*className, *sizeName)
	if err != nil {
		return err
	}
	if *ipEngine != "" {
		if _, ok := engine.Selectable(*ipEngine); !ok {
			return fmt.Errorf("unknown engine %q (selectable: %v)", *ipEngine, engine.SelectableNames())
		}
	}
	profile := controller.ProfileThroughput
	if strings.ToLower(*profileName) == "capacity" {
		profile = controller.ProfileCapacity
	}

	rs := classbench.Generate(classbench.StandardConfig(class, size))
	if *ipEngine != "" {
		fmt.Printf("generated %s with %d rules; -ip-engine overrides the profile with the %q engine\n",
			rs.Name, rs.Len(), *ipEngine)
	} else {
		fmt.Printf("generated %s with %d rules; application profile %s selects the %s IP algorithm\n",
			rs.Name, rs.Len(), profile, profile.Algorithm())
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listening: %w", err)
	}
	swCfg := core.DefaultConfig()
	swCfg.CacheShards = *cacheShards
	swCfg.CacheCapacity = *cacheCapacity
	swCfg.Replicas = *replicas
	swCfg.Shards = *shardCount
	swCfg.PartitionBy = *partitionBy
	if *advise {
		swCfg.SampleHeaders = core.DefaultSampleHeaders
	}
	return runLoop(ln, rs, profile, *ipEngine, swCfg, *packets, *workers, *batch, *zipf, *churnRate, *advise)
}

func runLoop(ln net.Listener, rs *fivetuple.RuleSet, profile controller.ApplicationProfile, ipEngine string, swCfg core.Config, packets, workers, batch int, zipf, churnRate float64, advise bool) error {
	ctrl := controller.New(rs, profile, nil)
	if ipEngine != "" {
		// Record the name-based selection before any switch connects so the
		// handshake downloads it along with the rule set.
		if err := ctrl.SelectEngine(ipEngine); err != nil {
			return fmt.Errorf("selecting engine: %w", err)
		}
	}
	go func() { _ = ctrl.Serve(ln) }()
	defer ctrl.Stop()

	sw, err := dataplane.New(swCfg)
	if err != nil {
		return err
	}
	defer sw.Close()
	if err := sw.Connect(ln.Addr().String()); err != nil {
		return err
	}

	// Wait for the controller to download the full rule set — or as much of
	// it as fits: rules beyond the configuration's capacity are rejected by
	// the data plane (ErrRuleFilterFull), so waiting for them would hang.
	// The capacity is computed for the engine the controller will select,
	// not the classifier's boot-time engine: the set-engine message races
	// this code, so asking the switch now could report the wrong capacity.
	targetEngine := ipEngine
	if targetEngine == "" {
		if name, ok := engine.LegacyName(profile.Algorithm()); ok {
			targetEngine = name
		}
	}
	want := rs.Len()
	if capacity := sw.Classifier().Config().RuleCapacityFor(targetEngine); want > capacity {
		fmt.Printf("rule set (%d rules) exceeds the %d-rule capacity of the %q configuration; the overflow is rejected\n",
			want, capacity, targetEngine)
		want = capacity
	}
	deadline := time.Now().Add(30 * time.Second)
	for sw.Classifier().RuleCount() < want {
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out waiting for the rule download (%d/%d rules)",
				sw.Classifier().RuleCount(), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("switch programmed with %d rules (capacity %d, engine %q) via the control channel\n",
		sw.Classifier().RuleCount(), sw.Classifier().RuleCapacity(), sw.Classifier().ActiveEngineName())

	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{
		Packets: packets, Seed: 17, MatchFraction: 0.95, Locality: 0.4, ZipfSkew: zipf,
	})

	// Optional churn writer: a controller-style flow-mod storm applied to
	// the switch's classifier at the requested rate while the replay runs.
	// Incremental packet engines absorb it through delta publishes; the
	// update-plane statistics are reported after the replay.
	churnDone := make(chan struct{})
	var churnApplied, churnSkipped int
	var churnWG sync.WaitGroup
	if churnRate > 0 {
		churnOps := classbench.GenerateUpdateTrace(rs, classbench.UpdateTraceConfig{
			Ops: packets, Seed: 23, Locality: 0.4,
		})
		interval := time.Duration(float64(time.Second) / churnRate)
		if interval <= 0 {
			// Rates beyond 1e9/s truncate to zero, which NewTicker rejects.
			interval = time.Nanosecond
		}
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for _, op := range churnOps {
				select {
				case <-churnDone:
					return
				case <-ticker.C:
				}
				var err error
				if op.Delete {
					_, err = sw.Classifier().DeleteRule(op.Rule)
				} else {
					_, err = sw.Classifier().InsertRule(op.Rule)
				}
				if err != nil {
					churnSkipped++
					continue
				}
				churnApplied++
			}
		}()
	}

	// Shard the trace across workers; each worker replays its shard in
	// batches through the shared switch. The classifier serves every worker
	// lock-free from its published snapshot, so this is a real concurrent
	// serving path, not a time-sliced one.
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for wi := 0; wi < workers; wi++ {
		lo := wi * len(trace) / workers
		hi := (wi + 1) * len(trace) / workers
		wg.Add(1)
		go func(wi int, shard []fivetuple.Header) {
			defer wg.Done()
			for len(shard) > 0 {
				n := batch
				if n > len(shard) {
					n = len(shard)
				}
				if _, err := sw.ProcessBatch(shard[:n]); err != nil {
					errs[wi] = err
					return
				}
				shard = shard[n:]
			}
		}(wi, trace[lo:hi])
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(churnDone)
	churnWG.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("processing packets: %w", err)
		}
	}

	counters := sw.Counters()
	// One Report call carries every observability surface the summary
	// prints: data-plane counters, cache counters, memory breakdown and the
	// update plane, all against one snapshot.
	rep := sw.Classifier().Report()
	fmt.Printf("\nreplayed %d packets in %v across %d workers (%.0f software lookups/s)\n",
		counters.Total, elapsed.Round(time.Millisecond), workers, float64(counters.Total)/elapsed.Seconds())
	fmt.Printf("forwarded %d, dropped %d, modified %d, punted %d, table misses %d\n",
		counters.Forwarded, counters.Dropped, counters.Modified, counters.Punted, counters.TableMiss)
	fmt.Printf("average field memory accesses per packet: %.2f\n", rep.Stats.AverageFieldAccesses())
	fmt.Printf("average lookup latency: %.1f cycles at %.2f MHz\n",
		rep.Stats.AverageLatencyCycles(), sw.Classifier().Config().ClockHz/1e6)
	fmt.Printf("modelled hardware throughput (40-byte packets): %.2f Gbps\n", sw.Classifier().ThroughputGbps(40))
	if rep.CacheEnabled {
		cs := rep.Cache
		fmt.Printf("microflow cache: %.1f%% hit rate (%d hits, %d misses, %d evictions, %d stale-generation drops) over %d entries (%d Kbit)\n",
			100*cs.HitRate(), cs.Hits, cs.Misses, cs.Evictions, cs.StaleGenerations,
			rep.Memory.CacheEntries, rep.Memory.CacheBits/1024)
	}
	if churnRate > 0 {
		us := rep.Updates
		fmt.Printf("churn: %d flow-mods applied at ~%.0f/s (%d skipped at capacity); %d delta publishes carrying %d deltas, %d rebuilds, publish latency p50 %v p99 %v, current delta debt %d\n",
			churnApplied, churnRate, churnSkipped, us.DeltaPublishes, us.DeltasApplied,
			us.Rebuilds, us.PublishLatency.P50(), us.PublishLatency.P99(), us.DeltasSinceRebuild)
	}
	fmt.Printf("controller observed %d packet-in messages\n", ctrl.PacketIns())

	// One advisory pass of the self-tuning control plane: shadow-bench the
	// candidate engines on the traffic the sampler captured during the
	// replay, and print the ranked recommendations without applying them.
	if advise {
		recs, err := advisor.Advise(sw.Classifier(), advisor.Options{})
		if err != nil {
			return fmt.Errorf("advising: %w", err)
		}
		if len(recs) == 0 {
			fmt.Println("advisor: current configuration already looks right for the observed traffic")
		}
		for _, r := range recs {
			fmt.Printf("advisor: %s\n", r)
		}
	}
	return nil
}

// runServe runs the multi-tenant wire-API daemon until SIGINT or SIGTERM,
// then shuts down gracefully. A bind failure surfaces as an error (and a
// non-zero exit) instead of a panic or a silent idle process.
func runServe(addr, level string) error {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return fmt.Errorf("invalid -log-level %q: %w", level, err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	return server.New(logger).ListenAndServe(ctx, addr)
}

func parseWorkload(className, sizeName string) (classbench.Class, classbench.Size, error) {
	var class classbench.Class
	switch strings.ToLower(className) {
	case "acl", "acl1":
		class = classbench.ACL
	case "fw", "fw1":
		class = classbench.FW
	case "ipc", "ipc1":
		class = classbench.IPC
	default:
		return 0, 0, fmt.Errorf("unknown class %q", className)
	}
	var size classbench.Size
	switch strings.ToLower(sizeName) {
	case "1k":
		size = classbench.Size1K
	case "5k":
		size = classbench.Size5K
	case "10k":
		size = classbench.Size10K
	default:
		return 0, 0, fmt.Errorf("unknown size %q", sizeName)
	}
	return class, size, nil
}
