// Command experiments regenerates the tables and figures of the paper's
// evaluation section from the packages in this repository.
//
// Usage:
//
//	experiments [-experiment all|table1|table2|table3|table4|table5|table6|table7|fig3|fig5|update|hpml|labelmethod|engines|throughput|churn|serve|sweep]
//	            [-class acl|fw|ipc] [-size 1k|5k|10k] [-packets N] [-ip-engine name]
//	            [-workers list] [-batch N] [-cache-shards N] [-cache-capacity N] [-zipf s]
//	            [-replicated] [-shards K] [-partition-by protocol|src-byte]
//	            [-churn-ops N] [-churn-rate R] [-churn-locality L] [-churn-inserts F]
//	            [-serve-addr host:port] [-serve-tenants T] [-serve-clients M] [-serve-requests N]
//	            [-record-dir DIR]
//
// -experiment serve is the wire-API load generator: it provisions T tenants
// (in-process unless -serve-addr targets a running sdnclassd daemon),
// installs the generated filter set on each, and drives M concurrent
// clients hammering classify-batch with Zipf-skewed traffic, reporting
// lookups/s, p50/p99 wire latency and per-tenant match/cache-hit rates.
//
// -experiment sweep is the recording driver: it runs the engine, throughput
// and churn sweeps on one workload and persists every measured cell as a
// schema-versioned BENCH_<date>_<host>.json artifact under -record-dir —
// the perf trajectory across PRs, the advisor's fallback engine ranking,
// and the CI benchgate's input.
//
// The measured values are printed next to the values the paper reports, in
// the same row/column structure, so the output can be pasted into
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sdnpc/internal/bench"
	"sdnpc/internal/classbench"
	"sdnpc/internal/engine"
	"sdnpc/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "experiment to run (all, table1..table7, fig3, fig5, update, hpml, labelmethod, engines, throughput, churn)")
	className := fs.String("class", "acl", "filter-set class for workload-driven experiments (acl, fw, ipc)")
	sizeName := fs.String("size", "5k", "filter-set size for workload-driven experiments (1k, 5k, 10k)")
	packets := fs.Int("packets", 20000, "trace length for workload-driven experiments (per worker for -experiment throughput)")
	ipEngine := fs.String("ip-engine", "", fmt.Sprintf("restrict the engines/throughput sweeps to one registered engine of either tier %v", engine.SelectableNames()))
	workersFlag := fs.String("workers", "", "comma-separated worker counts for the throughput experiment (default: 1,2,4,... up to NumCPU)")
	batchSize := fs.Int("batch", 64, "LookupBatch size for the throughput experiment")
	cacheShards := fs.Int("cache-shards", 0, "microflow cache shard count for the throughput experiment (0 = cache default)")
	cacheCapacity := fs.Int("cache-capacity", 0, "microflow cache entry budget; > 0 adds cached rows beside the uncached ones in the throughput experiment")
	zipf := fs.Float64("zipf", 0, "Zipf skew (> 1, e.g. 1.1) for the throughput trace: replay a flow population with Zipf-ranked popularity")
	replicated := fs.Bool("replicated", false, "add replicated-fleet rows (one snapshot/cache replica per worker) beside the shared-pointer rows in the throughput experiment")
	shards := fs.Int("shards", 0, "rule-space shard count for the throughput experiment (> 1 partitions the table)")
	partitionBy := fs.String("partition-by", "", "shard partition strategy: protocol (default) or src-byte")
	churnOps := fs.Int("churn-ops", 2000, "update ops per cell in the churn experiment")
	churnRate := fs.Float64("churn-rate", 0, "writer pacing in updates/sec for the churn experiment; 0 = full speed")
	churnLocality := fs.Float64("churn-locality", 0.3, "rule locality [0,1) of the churn trace: higher concentrates updates on the same rules")
	churnInserts := fs.Float64("churn-inserts", 0.5, "insert fraction of the churn trace (0.5 = balanced churn)")
	serveAddr := fs.String("serve-addr", "", "target daemon for the serve experiment (host:port); empty starts an in-process server")
	serveTenants := fs.Int("serve-tenants", 2, "tenant count for the serve experiment")
	serveClients := fs.Int("serve-clients", 4, "concurrent load clients for the serve experiment")
	serveRequests := fs.Int("serve-requests", 100, "classify-batch requests per client for the serve experiment")
	recordDir := fs.String("record-dir", ".", "directory the sweep experiment writes its BENCH_<date>_<host>.json artifact into")
	if err := fs.Parse(args); err != nil {
		return err
	}
	workers, err := parseWorkers(*workersFlag)
	if err != nil {
		return err
	}

	class, err := parseClass(*className)
	if err != nil {
		return err
	}
	size, err := parseSize(*sizeName)
	if err != nil {
		return err
	}

	selected := strings.ToLower(*experiment)
	wants := func(name string) bool { return selected == "all" || selected == name }
	ranAny := false

	var workload bench.Workload
	workloadReady := false
	getWorkload := func() bench.Workload {
		if !workloadReady {
			workload = bench.NewWorkload(class, size, *packets)
			workloadReady = true
		}
		return workload
	}

	if wants("table1") {
		ranAny = true
		rows, err := bench.Table1(getWorkload())
		if err != nil {
			return fmt.Errorf("table1: %w", err)
		}
		fmt.Println(bench.RenderTable1(rows))
	}
	if wants("table2") {
		ranAny = true
		fmt.Println(bench.RenderTable2(bench.Table2()))
	}
	if wants("table3") {
		ranAny = true
		fmt.Println(bench.RenderTable3(bench.Table3()))
	}
	if wants("table4") {
		ranAny = true
		result, err := bench.Table4()
		if err != nil {
			return fmt.Errorf("table4: %w", err)
		}
		fmt.Println(bench.RenderTable4(result))
	}
	if wants("table5") {
		ranAny = true
		result, err := bench.Table5()
		if err != nil {
			return fmt.Errorf("table5: %w", err)
		}
		fmt.Println(bench.RenderTable5(result))
	}
	if wants("table6") {
		ranAny = true
		rows, err := bench.Table6(getWorkload())
		if err != nil {
			return fmt.Errorf("table6: %w", err)
		}
		fmt.Println(bench.RenderTable6(rows))
	}
	if wants("table7") {
		ranAny = true
		rows, err := bench.Table7()
		if err != nil {
			return fmt.Errorf("table7: %w", err)
		}
		fmt.Println(bench.RenderTable7(rows))
	}
	if wants("fig3") {
		ranAny = true
		result, err := bench.Fig3()
		if err != nil {
			return fmt.Errorf("fig3: %w", err)
		}
		fmt.Println(bench.RenderFig3(result))
	}
	if wants("fig5") {
		ranAny = true
		fmt.Println(bench.RenderFig5(bench.Fig5()))
	}
	if wants("update") {
		ranAny = true
		result, err := bench.UpdateExperiment(getWorkload())
		if err != nil {
			return fmt.Errorf("update: %w", err)
		}
		fmt.Println(bench.RenderUpdate(result))
	}
	if wants("hpml") {
		ranAny = true
		result, err := bench.HPMLAccuracy(getWorkload())
		if err != nil {
			return fmt.Errorf("hpml: %w", err)
		}
		fmt.Println(bench.RenderHPMLAccuracy(result))
	}
	if wants("labelmethod") {
		ranAny = true
		fmt.Println(bench.RenderLabelMethod(bench.LabelMethod(getWorkload().RuleSet)))
	}
	if wants("engines") {
		ranAny = true
		rows, err := bench.EngineSweep(getWorkload(), *ipEngine)
		if err != nil {
			return fmt.Errorf("engines: %w", err)
		}
		fmt.Println(bench.RenderEngineSweep(rows))
	}
	if wants("throughput") {
		ranAny = true
		opts := bench.ThroughputOptions{
			Workers: workers, BatchSize: *batchSize, PacketsPerWorker: *packets,
			CacheShards: *cacheShards, CacheCapacity: *cacheCapacity,
			Replicated: *replicated, Shards: *shards, PartitionBy: *partitionBy,
		}
		if *ipEngine != "" {
			opts.Engines = []string{*ipEngine}
		}
		w := getWorkload()
		if *zipf > 1 {
			w = bench.NewZipfWorkload(class, size, *packets, *zipf)
		}
		rows, err := bench.ThroughputSweep(w, opts)
		if err != nil {
			return fmt.Errorf("throughput: %w", err)
		}
		fmt.Println(bench.RenderThroughput(rows))
	}
	// Churn is opt-in (not part of "all"): its rebuild-mode cells pay one
	// full precomputation per publish on every packet engine, which is the
	// point of the comparison but far too slow to ride along by default.
	if selected == "churn" {
		ranAny = true
		opts := bench.UpdateSweepOptions{
			Ops:            *churnOps,
			OpsPerSecond:   *churnRate,
			InsertFraction: *churnInserts,
			Locality:       *churnLocality,
		}
		if len(workers) > 0 {
			opts.Readers = workers[len(workers)-1]
		}
		if *ipEngine != "" {
			opts.Engines = []string{*ipEngine}
		}
		rows, err := bench.UpdateSweep(getWorkload(), opts)
		if err != nil {
			return fmt.Errorf("churn: %w", err)
		}
		fmt.Println(bench.RenderUpdateSweep(rows))
	}
	// Serve is opt-in (not part of "all"): it binds a port and drives real
	// HTTP load, which should not ride along with the cycle-accurate tables.
	if selected == "serve" {
		ranAny = true
		opts := loadgen.ServeOptions{
			Addr:              *serveAddr,
			Tenants:           *serveTenants,
			Clients:           *serveClients,
			RequestsPerClient: *serveRequests,
			BatchSize:         *batchSize,
			Class:             class,
			Size:              size,
			ZipfSkew:          *zipf,
			CacheShards:       *cacheShards,
			CacheCapacity:     *cacheCapacity,
		}
		if *ipEngine != "" {
			opts.Engines = []string{*ipEngine}
		}
		result, err := loadgen.ServeLoad(opts)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		fmt.Println(loadgen.RenderServe(result))
	}
	// Sweep is opt-in (not part of "all"): it re-runs three sweeps and
	// writes an artifact, which only makes sense when recording is the point.
	if selected == "sweep" {
		ranAny = true
		w := getWorkload()
		if *zipf > 1 {
			w = bench.NewZipfWorkload(class, size, *packets, *zipf)
		}
		rec := bench.NewRecord(bench.RecordConfig{
			Class:   strings.ToLower(*className),
			Size:    strings.ToLower(*sizeName),
			Rules:   w.RuleSet.Len(),
			Packets: *packets,
		})

		engineRows, err := bench.EngineSweep(w, *ipEngine)
		if err != nil {
			return fmt.Errorf("sweep/engines: %w", err)
		}
		rec.AddEngineRows(engineRows)
		fmt.Println(bench.RenderEngineSweep(engineRows))

		topts := bench.ThroughputOptions{
			Workers: workers, BatchSize: *batchSize, PacketsPerWorker: *packets,
			CacheShards: *cacheShards, CacheCapacity: *cacheCapacity,
			Replicated: *replicated, Shards: *shards, PartitionBy: *partitionBy,
		}
		if *ipEngine != "" {
			topts.Engines = []string{*ipEngine}
		}
		throughputRows, err := bench.ThroughputSweep(w, topts)
		if err != nil {
			return fmt.Errorf("sweep/throughput: %w", err)
		}
		rec.AddThroughputRows(throughputRows)
		fmt.Println(bench.RenderThroughput(throughputRows))

		uopts := bench.UpdateSweepOptions{
			Ops:            *churnOps,
			OpsPerSecond:   *churnRate,
			InsertFraction: *churnInserts,
			Locality:       *churnLocality,
		}
		if *ipEngine != "" {
			uopts.Engines = []string{*ipEngine}
		}
		updateRows, err := bench.UpdateSweep(w, uopts)
		if err != nil {
			return fmt.Errorf("sweep/churn: %w", err)
		}
		rec.AddUpdateRows(updateRows)
		fmt.Println(bench.RenderUpdateSweep(updateRows))

		path, err := rec.Write(*recordDir)
		if err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		fmt.Printf("recorded %d result cells → %s\n", len(rec.Results), path)
	}
	if !ranAny {
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
	return nil
}

// parseWorkers parses a comma-separated worker-count list; empty means the
// driver's default doubling sweep.
func parseWorkers(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid -workers entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseClass(name string) (classbench.Class, error) {
	switch strings.ToLower(name) {
	case "acl", "acl1":
		return classbench.ACL, nil
	case "fw", "fw1":
		return classbench.FW, nil
	case "ipc", "ipc1":
		return classbench.IPC, nil
	default:
		return 0, fmt.Errorf("unknown filter-set class %q", name)
	}
}

func parseSize(name string) (classbench.Size, error) {
	switch strings.ToLower(name) {
	case "1k":
		return classbench.Size1K, nil
	case "5k":
		return classbench.Size5K, nil
	case "10k":
		return classbench.Size10K, nil
	default:
		return 0, fmt.Errorf("unknown filter-set size %q", name)
	}
}
