// Command classbench generates synthetic filter sets and packet-header
// traces in the ClassBench text formats, calibrated to the filter-set
// statistics the paper reports (Tables II and III).
//
// Usage:
//
//	classbench -class acl -size 10k -rules-out acl1-10k.rules -trace-out acl1-10k.trace -packets 100000
//
// Omitting the output flags writes the rules to stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sdnpc/internal/classbench"
	"sdnpc/internal/fivetuple"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "classbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("classbench", flag.ContinueOnError)
	className := fs.String("class", "acl", "filter-set class (acl, fw, ipc)")
	sizeName := fs.String("size", "10k", "filter-set size (1k, 5k, 10k)")
	rules := fs.Int("rules", 0, "override the exact rule count (0 uses the paper's Table III count)")
	seed := fs.Int64("seed", 0, "override the generator seed (0 uses the standard seed)")
	rulesOut := fs.String("rules-out", "", "write the filter set to this file (default stdout)")
	traceOut := fs.String("trace-out", "", "write a header trace to this file")
	packets := fs.Int("packets", 10000, "trace length when -trace-out is set")
	matchFraction := fs.Float64("match-fraction", 0.9, "fraction of trace headers derived from rules")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var class classbench.Class
	switch strings.ToLower(*className) {
	case "acl", "acl1":
		class = classbench.ACL
	case "fw", "fw1":
		class = classbench.FW
	case "ipc", "ipc1":
		class = classbench.IPC
	default:
		return fmt.Errorf("unknown class %q", *className)
	}
	var size classbench.Size
	switch strings.ToLower(*sizeName) {
	case "1k":
		size = classbench.Size1K
	case "5k":
		size = classbench.Size5K
	case "10k":
		size = classbench.Size10K
	default:
		return fmt.Errorf("unknown size %q", *sizeName)
	}

	cfg := classbench.StandardConfig(class, size)
	if *rules > 0 {
		cfg.Rules = *rules
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	rs := classbench.Generate(cfg)

	if err := writeRules(rs, *rulesOut); err != nil {
		return err
	}
	if *traceOut != "" {
		trace := classbench.GenerateTrace(rs, classbench.TraceConfig{
			Packets: *packets, Seed: cfg.Seed + 1, MatchFraction: *matchFraction,
		})
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("creating trace file: %w", err)
		}
		defer f.Close()
		if err := fivetuple.WriteTrace(f, trace); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d headers to %s\n", len(trace), *traceOut)
	}
	return nil
}

func writeRules(rs *fivetuple.RuleSet, path string) error {
	if path == "" {
		return rs.WriteClassBench(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating rules file: %w", err)
	}
	defer f.Close()
	if err := rs.WriteClassBench(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d rules to %s\n", rs.Len(), path)
	return nil
}
