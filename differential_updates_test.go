package sdnpc

import (
	"fmt"
	"sort"
	"testing"

	"sdnpc/internal/bench"
	"sdnpc/internal/core"
	"sdnpc/internal/engine"
	"sdnpc/internal/fivetuple"
)

// The update-path differential suite: fuzz-decoded *mutation sequences*
// (insert / delete / engine-hop) applied through the incremental publish
// path must leave every packet engine answering byte-identically to a
// freshly rebuilt engine over the same live rules and to a best-first linear
// oracle. FuzzDifferentialUpdates explores random sequences;
// TestDifferentialEngines gains a deterministic update-sequence corpus
// (delete-then-reinsert, priority inversion, duplicate rule, delete-missing)
// in differential_test.go's style so the property holds on every plain
// `go test` run.

const (
	maxFuzzInitRules = 16
	maxFuzzOps       = 12
	maxFuzzOpHeaders = 8
	fuzzOpBytes      = 2
)

// fuzzUpdateOp is one decoded mutation.
type fuzzUpdateOp struct {
	kind byte // 0/1 = insert, 2 = delete, 3 = engine hop
	sel  byte
	rule fivetuple.Rule
}

// decodeUpdateInput maps fuzz bytes to an initial rule list, a mutation
// sequence and a probe header list. Rule priorities are forced unique
// (position for the initial rules, 1000+op for inserts) so the best-first
// oracle is unambiguous; the deterministic corpus covers duplicate
// identities separately.
func decodeUpdateInput(data []byte) (init []fivetuple.Rule, ops []fuzzUpdateOp, headers []fivetuple.Header) {
	if len(data) < 3 {
		return nil, nil, nil
	}
	nInit := 1 + int(data[0])%maxFuzzInitRules
	nOps := 1 + int(data[1])%maxFuzzOps
	nHeaders := 1 + int(data[2])%maxFuzzOpHeaders
	data = data[3:]

	for i := 0; i < nInit && len(data) >= fuzzRuleBytes; i++ {
		r := decodeFuzzRule(data[:fuzzRuleBytes], i)
		r.Priority = i
		init = append(init, r)
		data = data[fuzzRuleBytes:]
	}
	for i := 0; i < nHeaders && len(data) >= fuzzHdrBytes; i++ {
		headers = append(headers, decodeFuzzHeader(data[:fuzzHdrBytes]))
		data = data[fuzzHdrBytes:]
	}
	for i := 0; i < nOps && len(data) >= fuzzOpBytes; i++ {
		op := fuzzUpdateOp{kind: data[0] % 4, sel: data[1]}
		data = data[fuzzOpBytes:]
		if op.kind <= 1 {
			if len(data) < fuzzRuleBytes {
				break
			}
			op.rule = decodeFuzzRule(data[:fuzzRuleBytes], 1000+i)
			op.rule.Priority = 1000 + i
			data = data[fuzzRuleBytes:]
		}
		ops = append(ops, op)
	}
	// Aim the first header at the first initial rule so sequences exercise
	// the match path.
	if len(init) > 0 && len(headers) > 0 {
		headers[0] = headerMatchingRule(init[0])
	}
	// Extended-dimension rules (IPv6 prefixes, exact VLAN tags) are
	// essentially unreachable by random headers; engineer one probe per
	// extended rule so churn over them is actually observed.
	for _, r := range init {
		if r.IsExtended() {
			headers = append(headers, headerMatchingRule(r))
		}
	}
	for _, op := range ops {
		if op.kind <= 1 && op.rule.IsExtended() {
			headers = append(headers, headerMatchingRule(op.rule))
		}
	}
	return init, ops, headers
}

// bestFirstOracle returns the highest-priority (lowest value) live rule
// matching h. Priorities are unique by construction of the decoders.
func bestFirstOracle(live []fivetuple.Rule, h fivetuple.Header) (fivetuple.Rule, bool) {
	best := fivetuple.Rule{}
	found := false
	for _, r := range live {
		if r.Matches(h) && (!found || r.Priority < best.Priority) {
			best = r
			found = true
		}
	}
	return best, found
}

// multiActionOracle returns the live rules contributing to the multi-action
// verdict for h, in priority order: every matching non-terminating rule up to
// and including the first matching terminating one.
func multiActionOracle(live []fivetuple.Rule, h fivetuple.Header) []fivetuple.Rule {
	var matched []fivetuple.Rule
	for _, r := range live {
		if r.Matches(h) {
			matched = append(matched, r)
		}
	}
	sort.SliceStable(matched, func(i, j int) bool { return matched[i].Priority < matched[j].Priority })
	out := matched[:0]
	for _, r := range matched {
		out = append(out, r)
		if !r.NonTerminating {
			break
		}
	}
	return out
}

// checkAgainstOracle asserts one classifier agrees with the best-first
// oracle on every header, under first-match and multi-action semantics.
func checkAgainstOracle(t testing.TB, phase, label string, c *core.Classifier, live []fivetuple.Rule, headers []fivetuple.Header) {
	t.Helper()
	for i, h := range headers {
		want, wantOK := bestFirstOracle(live, h)
		got := c.Lookup(h)
		if got.Matched != wantOK {
			t.Fatalf("%s %s header %d (%s): matched = %v, oracle says %v", phase, label, i, h, got.Matched, wantOK)
		}
		if wantOK && (got.Priority != want.Priority || got.Action != want.Action || got.ActionArg != want.ActionArg) {
			t.Fatalf("%s %s header %d (%s): got priority %d action %v/%d, oracle priority %d action %v/%d",
				phase, label, i, h, got.Priority, got.Action, got.ActionArg,
				want.Priority, want.Action, want.ActionArg)
		}
		wantAll := multiActionOracle(live, h)
		gotAll, _ := c.LookupAll(h)
		if len(gotAll) != len(wantAll) {
			t.Fatalf("%s %s header %d (%s): %d action refs, oracle says %d (%v vs %v)",
				phase, label, i, h, len(gotAll), len(wantAll), gotAll, wantAll)
		}
		for j, r := range wantAll {
			ref := gotAll[j]
			if ref.Priority != r.Priority || ref.Action != r.Action || ref.ActionArg != r.ActionArg || ref.Terminal == r.NonTerminating {
				t.Fatalf("%s %s header %d (%s): action ref %d = %+v, oracle rule %s",
					phase, label, i, h, j, ref, r)
			}
		}
	}
}

// removeFirstMatch mirrors core's delete identity: drop the first live rule
// (in installation order) with the same field matches and priority.
func removeFirstMatch(live []fivetuple.Rule, r fivetuple.Rule) []fivetuple.Rule {
	for i, lr := range live {
		if lr.Priority == r.Priority &&
			lr.SrcPrefix.Canonical() == r.SrcPrefix.Canonical() &&
			lr.DstPrefix.Canonical() == r.DstPrefix.Canonical() &&
			lr.SrcPort == r.SrcPort && lr.DstPort == r.DstPort && lr.Protocol == r.Protocol {
			return append(append([]fivetuple.Rule(nil), live[:i]...), live[i+1:]...)
		}
	}
	return live
}

// runDifferentialUpdates applies the mutation sequence through each packet
// engine's incremental publish path (delta-friendly policy, plus a cached
// variant for one engine), checking every intermediate state against the
// best-first oracle and the final state against a freshly rebuilt
// classifier pinned to rebuild-on-every-publish, using the default
// replicated/sharded topology for the fleet variants.
func runDifferentialUpdates(t testing.TB, init []fivetuple.Rule, ops []fuzzUpdateOp, headers []fivetuple.Header) {
	t.Helper()
	runDifferentialUpdatesTopo(t, init, ops, headers, defaultTopology())
}

// runDifferentialUpdatesTopo is runDifferentialUpdates with an explicit
// serving topology: beside the plain engines it drives the same mutation
// sequence through a replicated fleet (every publish fans out to per-worker
// replicas), a rule-space-sharded table (every update propagates to the
// shards the rule covers) and the combination of both.
func runDifferentialUpdatesTopo(t testing.TB, init []fivetuple.Rule, ops []fuzzUpdateOp, headers []fivetuple.Header, topo fuzzTopology) {
	t.Helper()
	// The whole sequence's dimension requirement (initial rules plus every
	// inserted rule) gates which engines run it and which engine hops are
	// legal — the core refuses to install or switch onto an engine that does
	// not declare a live rule's dimensions, and that refusal is a correct
	// answer, not a differential divergence.
	need := fivetuple.RequiredDims(init)
	for _, op := range ops {
		if op.kind <= 1 {
			need |= op.rule.Dims()
		}
	}
	var selectable []string
	for _, name := range engine.SelectableNames() {
		if engine.Dims(name).Covers(need) {
			selectable = append(selectable, name)
		}
	}
	variants := make(map[string]core.Config)
	for _, name := range engine.PacketEngineNames() {
		if !engine.Dims(name).Covers(need) {
			continue
		}
		cfg := bench.EngineConfig(name)
		// Keep the whole sequence on the delta path: unbounded budget and a
		// disabled degradation trip (Degradation never exceeds 1).
		cfg.RebuildAfterDeltas = 1 << 20
		cfg.DegradationThreshold = 1.01
		variants[name] = cfg
	}
	// The topology variants ride on the richest gated engine: hypercuts when
	// it covers the sequence, the always-covering linear engine otherwise, so
	// extended sequences still churn through replicas and shards.
	topoBase := "hypercuts"
	if !engine.Dims(topoBase).Covers(need) {
		topoBase = "linear"
	}
	{
		cfg := bench.CachedEngineConfig(topoBase, 4, 1024)
		cfg.RebuildAfterDeltas = 1 << 20
		cfg.DegradationThreshold = 1.01
		variants[topoBase+"+cache"] = cfg
	}
	{
		cfg := variants[topoBase+"+cache"]
		cfg.Replicas = topo.replicas
		variants[fmt.Sprintf("%s+cache+replicas=%d", topoBase, topo.replicas)] = cfg
	}
	{
		cfg := variants[topoBase]
		cfg.Shards = topo.shards
		cfg.PartitionBy = topo.partitionBy
		variants[fmt.Sprintf("%s+shards=%d/%s", topoBase, topo.shards, topo.partitionBy)] = cfg
	}
	{
		cfg := variants[topoBase+"+cache"]
		cfg.Replicas = topo.replicas
		cfg.Shards = topo.shards
		cfg.PartitionBy = topo.partitionBy
		variants[fmt.Sprintf("%s+cache+replicas=%d+shards=%d/%s",
			topoBase, topo.replicas, topo.shards, topo.partitionBy)] = cfg
	}

	for label, cfg := range variants {
		c, err := core.New(cfg)
		if err != nil {
			t.Fatalf("building %s classifier: %v", label, err)
		}
		live := append([]fivetuple.Rule(nil), init...)
		installOps := make([]core.UpdateOp, len(init))
		for i, r := range init {
			installOps[i] = core.UpdateOp{Rule: r}
		}
		if _, _, err := c.ApplyUpdates(installOps); err != nil {
			t.Fatalf("%s: installing %d initial rules: %v", label, len(init), err)
		}
		checkAgainstOracle(t, "init", label, c, live, headers)

		for i, op := range ops {
			switch op.kind {
			case 2: // delete a live rule (selected deterministically)
				if len(live) == 0 {
					continue
				}
				target := live[int(op.sel)%len(live)]
				if _, err := c.DeleteRule(target); err != nil {
					t.Fatalf("%s op %d: DeleteRule(%s): %v", label, i, target, err)
				}
				live = removeFirstMatch(live, target)
			case 3: // hop the serving engine mid-sequence
				name := selectable[int(op.sel)%len(selectable)]
				if err := c.SelectEngine(name); err != nil {
					t.Fatalf("%s op %d: SelectEngine(%s): %v", label, i, name, err)
				}
			default: // insert
				if _, err := c.InsertRule(op.rule); err != nil {
					t.Fatalf("%s op %d: InsertRule(%s): %v", label, i, op.rule, err)
				}
				live = append(live, op.rule)
			}
			checkAgainstOracle(t, "mutated", label, c, live, headers)
		}

		// Final cross-check: a freshly rebuilt classifier on whatever engine
		// the sequence left active, pinned to the rebuild path, must answer
		// byte-identically to the delta-updated one.
		freshCfg := bench.EngineConfig(c.ActiveEngineName())
		freshCfg.RebuildAfterDeltas = 1
		fresh, err := core.New(freshCfg)
		if err != nil {
			t.Fatalf("%s: building fresh comparator: %v", label, err)
		}
		reinstall := make([]core.UpdateOp, len(live))
		for i, r := range live {
			reinstall[i] = core.UpdateOp{Rule: r}
		}
		if len(reinstall) > 0 {
			if _, _, err := fresh.ApplyUpdates(reinstall); err != nil {
				t.Fatalf("%s: reinstalling %d rules on the fresh comparator: %v", label, len(live), err)
			}
		}
		for i, h := range headers {
			got, want := c.Lookup(h), fresh.Lookup(h)
			if got.Matched != want.Matched || got.Priority != want.Priority ||
				got.Action != want.Action || got.ActionArg != want.ActionArg {
				t.Fatalf("%s header %d (%s): delta path %+v, freshly rebuilt %+v", label, i, h, got, want)
			}
		}
	}
}

// FuzzDifferentialUpdates drives fuzz-decoded mutation sequences through the
// incremental update path of every packet engine (and the cached hypercuts
// variant), asserting byte-identical verdicts versus the best-first oracle
// after every mutation and versus a freshly rebuilt engine at the end. CI
// runs it as a smoke pass (-fuzz=FuzzDifferentialUpdates -fuzztime=30s).
func FuzzDifferentialUpdates(f *testing.F) {
	// Seeds: one insert on a single rule; a delete/insert/hop mix; dense ops
	// over several rules.
	f.Add([]byte{0, 0, 0,
		10, 0, 0, 1, 32, 192, 168, 0, 1, 24, 0, 0, 255, 255, 0, 80, 0, 80, 6, 0,
		10, 0, 0, 1, 192, 168, 0, 99, 1, 1, 0, 80, 6,
		0, 7, 9, 9, 9, 9, 8, 7, 7, 7, 7, 33, 0, 1, 255, 254, 128, 0, 255, 255, 6, 0})
	f.Add([]byte{2, 5, 2,
		1, 2, 3, 4, 16, 5, 6, 7, 8, 0, 255, 255, 255, 255, 0, 0, 0, 0, 17, 1,
		9, 9, 9, 9, 8, 7, 7, 7, 7, 33, 0, 1, 255, 254, 128, 0, 255, 255, 6, 0,
		1, 2, 200, 4, 5, 6, 7, 8, 255, 255, 255, 255, 17,
		9, 9, 1, 1, 7, 7, 2, 2, 0, 0, 65, 66, 6,
		2, 0,
		3, 4,
		0, 1, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30,
		2, 9,
		3, 1})
	f.Add([]byte{255, 255, 255, 100, 101, 102, 103, 104, 105, 106, 107, 108, 109,
		110, 111, 112, 113, 114, 115, 116, 117, 118, 119, 120, 121,
		130, 131, 132, 133, 134, 135, 136, 137, 138, 139, 140,
		3, 3, 2, 200, 1, 50, 0, 9, 9, 9, 9, 8, 7, 7, 7, 7, 33, 0, 1, 255, 254, 128, 0, 255, 255, 6, 0})
	// Extension-dimension seed: the init rule carries IPv6 prefixes +
	// non-terminating (b[19] = 18 = 2|16) and the inserted rule VLAN + TCP
	// flags + non-terminating (28 = 4|8|16), driving the delta path and the
	// dims-gated engine hops through the extended decode.
	f.Add([]byte{0, 0, 0,
		10, 0, 0, 1, 32, 192, 168, 0, 1, 24, 0, 0, 255, 255, 0, 80, 0, 80, 6, 18,
		10, 0, 0, 1, 192, 168, 0, 99, 1, 1, 0, 80, 6,
		0, 7, 9, 9, 9, 9, 8, 7, 7, 7, 7, 33, 0, 1, 255, 254, 128, 0, 255, 255, 6, 28})
	f.Fuzz(func(t *testing.T, data []byte) {
		init, ops, headers := decodeUpdateInput(data)
		if len(init) == 0 || len(ops) == 0 || len(headers) == 0 {
			t.Skip("input too short to decode a mutation workload")
		}
		// Replica/shard counts ride on the same fuzz input, so update storms
		// are exercised over random serving topologies too.
		runDifferentialUpdatesTopo(t, init, ops, headers, decodeFuzzTopology(data))
	})
}

// TestDifferentialUpdateSequences is the deterministic update-sequence
// corpus: the churn patterns most likely to break a delta path —
// delete-then-reinsert, priority inversion, duplicate rules and
// delete-missing — replayed through every packet engine's incremental
// publish path on every plain `go test` run.
func TestDifferentialUpdateSequences(t *testing.T) {
	prefix := fivetuple.MustParsePrefix
	mk := func(src string, dstPort uint16, priority int, arg uint32) fivetuple.Rule {
		return fivetuple.Rule{
			SrcPrefix: prefix(src), DstPrefix: prefix("0.0.0.0/0"),
			SrcPort: fivetuple.WildcardPortRange(), DstPort: fivetuple.ExactPort(dstPort),
			Protocol: fivetuple.ExactProtocol(fivetuple.ProtoTCP),
			Priority: priority, Action: fivetuple.ActionForward, ActionArg: arg,
		}
	}
	hdr := func(src string, dstPort uint16) fivetuple.Header {
		return fivetuple.Header{
			SrcIP: fivetuple.MustParseIPv4(src), DstIP: fivetuple.MustParseIPv4("10.9.9.9"),
			SrcPort: 1234, DstPort: dstPort, Protocol: fivetuple.ProtoTCP,
		}
	}

	for _, name := range engine.PacketEngineNames() {
		t.Run(name, func(t *testing.T) {
			cfg := bench.EngineConfig(name)
			cfg.RebuildAfterDeltas = 1 << 20 // every sequence stays on the delta path
			cfg.DegradationThreshold = 1.01  // tiny rule sets trip the default 0.5 by design
			c, err := core.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			a := mk("10.1.0.0/16", 80, 1, 10)
			b := mk("10.0.0.0/8", 80, 5, 20)
			if _, err := c.InsertRule(a); err != nil {
				t.Fatal(err)
			}
			if _, err := c.InsertRule(b); err != nil {
				t.Fatal(err)
			}
			probe := hdr("10.1.2.3", 80)
			live := []fivetuple.Rule{a, b}
			checkAgainstOracle(t, "seed", name, c, live, []fivetuple.Header{probe})

			t.Run("delete-then-reinsert", func(t *testing.T) {
				if _, err := c.DeleteRule(a); err != nil {
					t.Fatal(err)
				}
				if got := c.Lookup(probe); !got.Matched || got.Priority != 5 {
					t.Fatalf("after deleting the specific rule: %+v, want the /8 fallback", got)
				}
				if _, err := c.InsertRule(a); err != nil {
					t.Fatal(err)
				}
				if got := c.Lookup(probe); !got.Matched || got.Priority != 1 {
					t.Fatalf("after reinsert: %+v, want the specific rule back", got)
				}
			})

			t.Run("priority-inversion", func(t *testing.T) {
				// A better-priority rule arriving later must splice in at the
				// front of the best-first order, displacing both live rules.
				top := mk("10.0.0.0/7", 80, 0, 30)
				if _, err := c.InsertRule(top); err != nil {
					t.Fatal(err)
				}
				if got := c.Lookup(probe); !got.Matched || got.Priority != 0 || got.ActionArg != 30 {
					t.Fatalf("after inserting a better-priority rule: %+v, want priority 0", got)
				}
				if _, err := c.DeleteRule(top); err != nil {
					t.Fatal(err)
				}
				if got := c.Lookup(probe); !got.Matched || got.Priority != 1 {
					t.Fatalf("after removing it again: %+v, want the original winner", got)
				}
			})

			t.Run("duplicate-rule", func(t *testing.T) {
				// Two live rules with identical matches and priority: deleting
				// one must leave the verdict intact, deleting the second
				// removes it.
				if _, err := c.InsertRule(a); err != nil {
					t.Fatalf("inserting the duplicate: %v", err)
				}
				if _, err := c.DeleteRule(a); err != nil {
					t.Fatal(err)
				}
				if got := c.Lookup(probe); !got.Matched || got.Priority != 1 {
					t.Fatalf("after deleting one duplicate: %+v, want the twin still serving", got)
				}
				if _, err := c.DeleteRule(a); err != nil {
					t.Fatal(err)
				}
				if got := c.Lookup(probe); !got.Matched || got.Priority != 5 {
					t.Fatalf("after deleting both duplicates: %+v, want the /8 fallback", got)
				}
				if _, err := c.InsertRule(a); err != nil {
					t.Fatal(err)
				}
			})

			t.Run("delete-missing", func(t *testing.T) {
				before := c.UpdateStats()
				missing := mk("172.16.0.0/12", 7777, 99, 0)
				if _, err := c.DeleteRule(missing); err == nil {
					t.Fatal("deleting a never-installed rule should fail")
				}
				after := c.UpdateStats()
				if after.PublishLatency.Total() != before.PublishLatency.Total() {
					t.Fatal("a failed delete must not publish")
				}
				if got := c.Lookup(probe); !got.Matched || got.Priority != 1 {
					t.Fatalf("verdicts changed after a failed delete: %+v", got)
				}
			})

			// The sequence ran entirely on the delta path for incremental
			// engines; pin that so the corpus cannot silently regress into
			// testing the rebuild path.
			stats := c.UpdateStats()
			if def, _ := engine.Get(name); def.Incremental {
				// At most the seed build pays a rebuild: engines that splice
				// deltas straight into an empty structure (linear) report zero.
				if stats.DeltasApplied == 0 || stats.Rebuilds > 1 {
					t.Errorf("update-sequence corpus for %s left stats %+v; want deltas with at most the seed rebuild", name, stats)
				}
			} else if stats.DeltasApplied != 0 {
				t.Errorf("non-incremental %s applied deltas: %+v", name, stats)
			}

			// Final differential sweep: delta-churned classifier versus a
			// freshly rebuilt one over the surviving rules.
			finalRules := c.InstalledRules()
			sort.SliceStable(finalRules, func(i, j int) bool { return finalRules[i].Priority < finalRules[j].Priority })
			freshCfg := bench.EngineConfig(name)
			freshCfg.RebuildAfterDeltas = 1
			fresh := core.MustNew(freshCfg)
			for _, r := range finalRules {
				if _, err := fresh.InsertRule(r); err != nil {
					t.Fatal(err)
				}
			}
			for _, h := range []fivetuple.Header{probe, hdr("10.200.0.1", 80), hdr("10.1.2.3", 81)} {
				got, want := c.Lookup(h), fresh.Lookup(h)
				if got.Matched != want.Matched || got.Priority != want.Priority || got.ActionArg != want.ActionArg {
					t.Fatalf("final state diverged on %s: delta %+v, rebuilt %+v", h, got, want)
				}
			}
		})
	}
}

// TestDecodeUpdateInputShapes pins the mutation decoder's normalisation:
// short inputs decode to nothing, caps hold, priorities are unique, and the
// decode is deterministic.
func TestDecodeUpdateInputShapes(t *testing.T) {
	for _, data := range [][]byte{nil, {1}, {1, 2}, {1, 2, 3}} {
		init, ops, headers := decodeUpdateInput(data)
		if len(init) != 0 || len(ops) != 0 || len(headers) != 0 {
			t.Errorf("decode(%v) yielded %d/%d/%d, want nothing", data, len(init), len(ops), len(headers))
		}
	}
	data := make([]byte, 3+maxFuzzInitRules*fuzzRuleBytes+maxFuzzOpHeaders*fuzzHdrBytes+maxFuzzOps*(fuzzOpBytes+fuzzRuleBytes))
	for i := range data {
		data[i] = byte(i*31 + 7)
	}
	data[0], data[1], data[2] = 255, 255, 255
	init, ops, headers := decodeUpdateInput(data)
	if len(init) == 0 || len(ops) == 0 || len(headers) == 0 {
		t.Fatal("full-length input decoded to an empty workload")
	}
	// Beyond the decoded probe headers, every extended-dimension rule (initial
	// or inserted) contributes one engineered probe.
	if len(init) > maxFuzzInitRules || len(ops) > maxFuzzOps ||
		len(headers) > maxFuzzOpHeaders+maxFuzzInitRules+maxFuzzOps {
		t.Fatalf("decode exceeded caps: %d/%d/%d", len(init), len(ops), len(headers))
	}
	seen := map[int]bool{}
	for _, r := range init {
		if seen[r.Priority] {
			t.Fatalf("duplicate decoded priority %d", r.Priority)
		}
		seen[r.Priority] = true
	}
	for _, op := range ops {
		if op.kind <= 1 {
			if seen[op.rule.Priority] {
				t.Fatalf("duplicate decoded priority %d", op.rule.Priority)
			}
			seen[op.rule.Priority] = true
		}
	}
}
