package sdnpc

import (
	"fmt"
	"strings"

	"sdnpc/internal/classbench"
)

// GenerateRuleSet produces a ClassBench-style synthetic filter set. class is
// "acl", "fw" or "ipc" (Table III); size is "1k", "5k" or "10k".
func GenerateRuleSet(class, size string) (*RuleSet, error) {
	cls, err := parseClass(class)
	if err != nil {
		return nil, err
	}
	sz, err := parseSize(size)
	if err != nil {
		return nil, err
	}
	return classbench.Generate(classbench.StandardConfig(cls, sz)), nil
}

// MustGenerateRuleSet is like GenerateRuleSet but panics on error.
func MustGenerateRuleSet(class, size string) *RuleSet {
	rs, err := GenerateRuleSet(class, size)
	if err != nil {
		panic(err)
	}
	return rs
}

// TraceOptions parameterise synthetic trace generation.
type TraceOptions struct {
	// Packets is the trace length.
	Packets int
	// Seed makes the trace reproducible.
	Seed int64
	// MatchFraction is the fraction of packets drawn to hit some rule.
	MatchFraction float64
	// Locality biases consecutive packets towards the same flows.
	Locality float64
	// ZipfSkew, when > 1, replays a fixed population of flows with
	// Zipf-ranked popularity (rank-1 hottest) instead of drawing every
	// packet independently — the repeated-five-tuple traffic shape the
	// microflow cache exploits. A skew of 1.1 is a realistic heavy tail.
	ZipfSkew float64
	// Flows sizes the flow population in Zipf mode; <= 0 selects
	// min(Packets, 4096).
	Flows int
}

// GenerateTrace produces a synthetic header trace exercising the rule set.
func GenerateTrace(rs *RuleSet, opts TraceOptions) []Header {
	if opts.Packets <= 0 {
		opts.Packets = 10000
	}
	if opts.MatchFraction == 0 {
		opts.MatchFraction = 0.9
	}
	return classbench.GenerateTrace(rs, classbench.TraceConfig{
		Packets:       opts.Packets,
		Seed:          opts.Seed,
		MatchFraction: opts.MatchFraction,
		Locality:      opts.Locality,
		ZipfSkew:      opts.ZipfSkew,
		Flows:         opts.Flows,
	})
}

// UpdateTraceOptions parameterise churn-trace generation — a deterministic
// flow-mod storm derived from a rule set, for exercising the incremental
// update plane.
type UpdateTraceOptions struct {
	// Ops is the number of mutations; <= 0 selects 1000.
	Ops int
	// Seed makes the trace reproducible.
	Seed int64
	// InsertFraction is the insert/delete mix (0 = the balanced default of
	// 0.5; negative = pure deletes; clamped above at 1).
	InsertFraction float64
	// Locality, in [0,1), concentrates the churn on the same high-priority
	// rules — the delete-then-reinsert pattern of flapping flows.
	Locality float64
}

// GenerateUpdateTrace derives a mutation sequence from the rule set that is
// valid to Apply (or Insert/Delete one by one) against a classifier holding
// it: deletes always name live rules, inserts are fresh or reinstated rules.
func GenerateUpdateTrace(rs *RuleSet, opts UpdateTraceOptions) []UpdateOp {
	if opts.Ops <= 0 {
		opts.Ops = 1000
	}
	raw := classbench.GenerateUpdateTrace(rs, classbench.UpdateTraceConfig{
		Ops:            opts.Ops,
		Seed:           opts.Seed,
		InsertFraction: opts.InsertFraction,
		Locality:       opts.Locality,
	})
	ops := make([]UpdateOp, len(raw))
	for i, op := range raw {
		ops[i] = UpdateOp{Delete: op.Delete, Rule: op.Rule}
	}
	return ops
}

func parseClass(name string) (classbench.Class, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "acl", "acl1":
		return classbench.ACL, nil
	case "fw", "fw1":
		return classbench.FW, nil
	case "ipc", "ipc1":
		return classbench.IPC, nil
	default:
		return 0, fmt.Errorf("sdnpc: unknown filter-set class %q (acl, fw, ipc)", name)
	}
}

func parseSize(name string) (classbench.Size, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "1k":
		return classbench.Size1K, nil
	case "5k":
		return classbench.Size5K, nil
	case "10k":
		return classbench.Size10K, nil
	default:
		return 0, fmt.Errorf("sdnpc: unknown filter-set size %q (1k, 5k, 10k)", name)
	}
}
