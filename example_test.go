package sdnpc_test

import (
	"fmt"
	"log"

	"sdnpc"
)

// ExampleClassifier installs a small policy and classifies one packet,
// reading the matched rule's action and the architecture's modelled cost
// counters from the Result.
func ExampleClassifier() {
	classifier, err := sdnpc.New() // paper-default geometry, "mbt" field engine
	if err != nil {
		log.Fatal(err)
	}

	rules := []sdnpc.Rule{
		sdnpc.NewRule(0).To("203.0.113.0/24").DstPort(443).Proto(sdnpc.TCP).Forward(1).MustBuild(),
		sdnpc.NewRule(1).From("10.0.0.0/8").DstPort(53).Proto(sdnpc.UDP).Punt().MustBuild(),
		sdnpc.WildcardRule(2, sdnpc.Drop),
	}
	for _, r := range rules {
		if _, err := classifier.Insert(r); err != nil {
			log.Fatal(err)
		}
	}

	h := sdnpc.MustParseHeader("198.51.100.7", 50000, "203.0.113.10", 443, sdnpc.TCP)
	result := classifier.Lookup(h)
	fmt.Println(result.Matched, result.Action, result.Priority)
	// Output: true forward 0
}

// ExampleClassifier_LookupBatch classifies a batch of headers against one
// consistent snapshot of the rule set and aggregates the batch accounting.
func ExampleClassifier_LookupBatch() {
	classifier := sdnpc.MustNew()
	if _, err := classifier.Insert(sdnpc.NewRule(0).To("203.0.113.0/24").Forward(1).MustBuild()); err != nil {
		log.Fatal(err)
	}

	batch := []sdnpc.Header{
		sdnpc.MustParseHeader("198.51.100.7", 50000, "203.0.113.10", 443, sdnpc.TCP),
		sdnpc.MustParseHeader("198.51.100.8", 50001, "203.0.113.11", 80, sdnpc.TCP),
		sdnpc.MustParseHeader("192.0.2.1", 1, "192.0.2.2", 2, sdnpc.UDP), // miss
	}
	results := classifier.LookupBatch(batch)
	report := sdnpc.SummarizeBatch(results)
	fmt.Println(report.Packets, report.Matched)
	// Output: 3 2
}

// ExampleClassifier_SelectEngine switches one running classifier across both
// engine tiers: from the default per-field multi-bit trie to the HyperCuts
// whole-packet decision tree and back. The installed rules survive every
// switch — selection is a registry name, not a rebuild of the caller's
// state.
func ExampleClassifier_SelectEngine() {
	classifier := sdnpc.MustNew()
	if _, err := classifier.Insert(sdnpc.NewRule(0).To("203.0.113.0/24").DstPort(443).Proto(sdnpc.TCP).Forward(1).MustBuild()); err != nil {
		log.Fatal(err)
	}
	h := sdnpc.MustParseHeader("198.51.100.7", 50000, "203.0.113.10", 443, sdnpc.TCP)

	fmt.Println(classifier.Engine(), classifier.Lookup(h).Matched)

	// "hypercuts" names a whole-packet engine: the rules are compiled into
	// its decision tree and lookups bypass the per-field label path.
	if err := classifier.SelectEngine("hypercuts"); err != nil {
		log.Fatal(err)
	}
	fmt.Println(classifier.Engine(), classifier.Lookup(h).Matched)

	// Any field-engine name returns to the per-field tier.
	if err := classifier.SelectEngine("bst"); err != nil {
		log.Fatal(err)
	}
	fmt.Println(classifier.Engine(), classifier.Lookup(h).Matched)
	// Output:
	// mbt true
	// hypercuts true
	// bst true
}

// Example_engineInventory lists the registered engines of both tiers — any
// of these names works with WithEngine, SelectEngine, the -ip-engine flags
// and the OpenFlow set-engine message.
func Example_engineInventory() {
	fmt.Println("field: ", sdnpc.FieldEngines())
	fmt.Println("packet:", sdnpc.PacketEngines())
	// Output:
	// field:  [bst mbt rfc segtrie]
	// packet: [dcfl hypercuts linear rfc-full]
}
