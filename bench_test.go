// Package sdnpc holds the repository-level benchmark harness: one benchmark
// per table and figure of the paper's evaluation (Tables I–VII, Fig. 3 and
// Fig. 5, plus the §V.A update experiment) and ablation benchmarks for the
// design choices called out in DESIGN.md.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Benchmarks report the paper's metrics (memory accesses per packet, memory
// bits, clock cycles, Gbps) through b.ReportMetric in addition to the usual
// ns/op, so the figures that belong in EXPERIMENTS.md appear directly in the
// benchmark output.
package sdnpc_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"sdnpc/internal/algo/bst"
	"sdnpc/internal/algo/mbt"
	"sdnpc/internal/bench"
	"sdnpc/internal/classbench"
	"sdnpc/internal/core"
	"sdnpc/internal/engine"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/hw/hashunit"
	"sdnpc/internal/hw/memory"
	"sdnpc/internal/label"
)

// benchWorkload is shared across benchmarks; 5K rules keeps the RFC
// cross-product tables tractable while exercising a realistic rule count.
var benchWorkload = bench.NewWorkload(classbench.ACL, classbench.Size5K, 20000)

// smallWorkload is used by per-lookup benchmarks where build time would
// otherwise dominate.
var benchSmallWorkload = bench.NewWorkload(classbench.ACL, classbench.Size1K, 5000)

// ---------------------------------------------------------------------------
// Table I — baseline comparison
// ---------------------------------------------------------------------------

func BenchmarkTable1_Baselines(b *testing.B) {
	var rows []bench.Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.Table1(benchSmallWorkload)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		name := strings.ReplaceAll(r.Algorithm, " ", "_")
		b.ReportMetric(r.AvgAccesses, name+"_accesses/pkt")
		b.ReportMetric(r.MemorySpaceMb, name+"_Mbit")
	}
}

// ---------------------------------------------------------------------------
// Tables II and III — filter-set statistics
// ---------------------------------------------------------------------------

func BenchmarkTable2_UniqueFields(b *testing.B) {
	var rows []bench.Table2Row
	for i := 0; i < b.N; i++ {
		rows = bench.Table2()
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.UniqueCount[fivetuple.FieldSrcIP]), "acl10k_unique_srcIP")
	b.ReportMetric(float64(last.UniqueCount[fivetuple.FieldDstPort]), "acl10k_unique_dstPort")
}

func BenchmarkTable3_FilterSetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = bench.Table3()
	}
}

// ---------------------------------------------------------------------------
// Table IV — port labelling
// ---------------------------------------------------------------------------

func BenchmarkTable4_PortLabelling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Table V — synthesis estimate
// ---------------------------------------------------------------------------

func BenchmarkTable5_Synthesis(b *testing.B) {
	var result bench.Table5Result
	var err error
	for i := 0; i < b.N; i++ {
		result, err = bench.Table5()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(result.Report.BlockMemoryBits), "block_memory_bits")
	b.ReportMetric(result.Report.FmaxMHz, "fmax_MHz")
	b.ReportMetric(float64(result.Report.LogicALMs), "ALMs")
}

// ---------------------------------------------------------------------------
// Table VI — MBT versus BST
// ---------------------------------------------------------------------------

func benchmarkTable6Lookup(b *testing.B, alg memory.AlgSelect) {
	cfg := core.DefaultConfig()
	cfg.IPAlgorithm = alg
	c := core.MustNew(cfg)
	if _, err := c.InstallRuleSet(benchSmallWorkload.RuleSet); err != nil {
		b.Fatal(err)
	}
	trace := benchSmallWorkload.Trace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(trace[i%len(trace)])
	}
	b.StopTimer()
	stats := c.Stats()
	report := c.MemoryReport()
	b.ReportMetric(stats.AverageFieldAccesses(), "field_accesses/pkt")
	b.ReportMetric(stats.AverageLatencyCycles(), "latency_cycles")
	b.ReportMetric(float64(c.Pipeline().BottleneckInterval()), "cycles/pkt_provisioned")
	b.ReportMetric(bench.Kbit(report.IPAlgorithmUsedBits()), "ip_memory_Kbit")
	b.ReportMetric(float64(c.RuleCapacity()), "rule_capacity")
}

func BenchmarkTable6_MBT(b *testing.B) { benchmarkTable6Lookup(b, memory.SelectMBT) }
func BenchmarkTable6_BST(b *testing.B) { benchmarkTable6Lookup(b, memory.SelectBST) }

// ---------------------------------------------------------------------------
// Engine sweep — every registered IP-segment engine through the registry
// ---------------------------------------------------------------------------

// BenchmarkIPEngines sweeps every engine the registry knows, so a newly
// registered algorithm automatically gains a benchmark row next to the
// paper's MBT/BST pair.
func BenchmarkIPEngines(b *testing.B) {
	for _, name := range engine.IPEngineNames() {
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.IPEngine = name
			c := core.MustNew(cfg)
			if _, err := c.InstallRuleSet(benchSmallWorkload.RuleSet); err != nil {
				b.Fatal(err)
			}
			trace := benchSmallWorkload.Trace
			// Prime lazily built structures so the first timed lookup is
			// representative.
			c.Lookup(trace[0])
			c.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Lookup(trace[i%len(trace)])
			}
			b.StopTimer()
			stats := c.Stats()
			report := c.MemoryReport()
			b.ReportMetric(stats.AverageFieldAccesses(), "field_accesses/pkt")
			b.ReportMetric(stats.AverageLatencyCycles(), "latency_cycles")
			b.ReportMetric(float64(c.Pipeline().BottleneckInterval()), "cycles/pkt_provisioned")
			b.ReportMetric(bench.Kbit(report.IPAlgorithmUsedBits()), "ip_memory_Kbit")
			b.ReportMetric(float64(c.RuleCapacity()), "rule_capacity")
		})
	}
}

// ---------------------------------------------------------------------------
// Concurrent serving throughput — the snapshot-swap path under load
// ---------------------------------------------------------------------------

// runThroughputWorkers splits b.N packets over the workers, replays the
// trace in batches through the given lookup callback and reports pkts/s plus
// the slowest and fastest individual worker's rate — the spread that makes
// worker (and replica) imbalance visible in the benchstat output.
func runThroughputWorkers(b *testing.B, workers, batch int, trace []fivetuple.Header, lookup func(worker int, hs []fivetuple.Header)) {
	b.Helper()
	busy := make([]time.Duration, workers)
	counts := make([]int, workers)
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		count := b.N / workers
		if w == 0 {
			count += b.N % workers
		}
		wg.Add(1)
		go func(w, count, pos int) {
			defer wg.Done()
			counts[w] = count
			hs := make([]fivetuple.Header, batch)
			start := time.Now()
			for count > 0 {
				n := batch
				if n > count {
					n = count
				}
				for i := 0; i < n; i++ {
					hs[i] = trace[pos%len(trace)]
					pos++
				}
				lookup(w, hs[:n])
				count -= n
			}
			busy[w] = time.Since(start)
		}(w, count, w*len(trace)/workers)
	}
	wg.Wait()
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "pkts/s")
	}
	minPPS, maxPPS := 0.0, 0.0
	for w := 0; w < workers; w++ {
		if busy[w] <= 0 || counts[w] == 0 {
			continue
		}
		pps := float64(counts[w]) / busy[w].Seconds()
		if minPPS == 0 || pps < minPPS {
			minPPS = pps
		}
		if pps > maxPPS {
			maxPPS = pps
		}
	}
	if maxPPS > 0 {
		b.ReportMetric(minPPS, "min_wkr_pkts/s")
		b.ReportMetric(maxPPS, "max_wkr_pkts/s")
	}
}

// BenchmarkThroughput measures the real serving rate of the concurrent
// lookup path: batched lookups driven from N goroutines against one shared
// classifier, for every selectable engine of both tiers (field engines and
// the whole-packet rfc-full/dcfl/hypercuts). ns/op is per packet and a
// pkts/s metric is reported; the CI bench job tracks these for regressions.
// On multi-core machines the worker_4 rows should beat worker_1 (>1x
// scaling); on a single-core runner they only measure scheduling overhead.
func BenchmarkThroughput(b *testing.B) {
	const batch = 64
	for _, name := range engine.SelectableNames() {
		c := core.MustNew(bench.EngineConfig(name))
		if _, err := c.InstallRuleSet(benchSmallWorkload.RuleSet); err != nil {
			b.Fatal(err)
		}
		trace := benchSmallWorkload.Trace
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers_%d", name, workers), func(b *testing.B) {
				runThroughputWorkers(b, workers, batch, trace, func(_ int, hs []fivetuple.Header) {
					c.LookupBatch(hs)
				})
			})
		}
	}
}

// BenchmarkThroughputReplicated is BenchmarkThroughput in replicated-fleet
// mode: one snapshot replica per worker (at least two, so the worker_1
// baseline pays the same fleet serving path) and every worker pinned to its
// replica through a Reader. Comparing its worker_4 rows against
// BenchmarkThroughput's measures what replica-private snapshots buy over the
// shared-pointer path; the min/max worker metrics expose replica imbalance.
//
// Before/after, per-replica stats fix: the fleet lookup path used to skip
// the stats collector entirely (Report().Stats showed zero lookups in
// replicated mode) and pinned readers funneled counters through one shared
// cache line. With each replica owning its padded counter block, accounting
// is restored at no measurable cost: mbt/workers_4 measured 20.6k pkts/s
// before vs 21.3k after (medians of 5 at -benchtime 200ms, within noise).
func BenchmarkThroughputReplicated(b *testing.B) {
	const batch = 64
	for _, name := range engine.SelectableNames() {
		trace := benchSmallWorkload.Trace
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers_%d", name, workers), func(b *testing.B) {
				cfg := bench.EngineConfig(name)
				cfg.Replicas = workers
				if cfg.Replicas < 2 {
					cfg.Replicas = 2
				}
				c := core.MustNew(cfg)
				if _, err := c.InstallRuleSet(benchSmallWorkload.RuleSet); err != nil {
					b.Fatal(err)
				}
				readers := make([]*core.Reader, workers)
				outs := make([][]core.Result, workers)
				for w := range readers {
					readers[w] = c.Reader(w)
				}
				runThroughputWorkers(b, workers, batch, trace, func(w int, hs []fivetuple.Header) {
					outs[w] = readers[w].LookupBatchInto(outs[w], hs)
				})
			})
		}
	}
}

// BenchmarkThroughputZipf measures the microflow cache on a Zipf(1.1)
// flow-replay trace: for every selectable engine of both tiers, an uncached
// and a cached sub-benchmark drive the same 4-worker batched serving path.
// The cached rows additionally report the hit rate; the acceptance target is
// >= 2x pkts/s with the cache on for at least one engine per tier.
func BenchmarkThroughputZipf(b *testing.B) {
	const batch = 64
	const workers = 4
	w := bench.NewZipfWorkload(classbench.ACL, classbench.Size1K, 20000, 1.1)
	for _, name := range engine.SelectableNames() {
		for _, cached := range []bool{false, true} {
			cfg := bench.EngineConfig(name)
			label := "uncached"
			if cached {
				cfg = bench.CachedEngineConfig(name, 0, 65536)
				label = "cached"
			}
			c := core.MustNew(cfg)
			if _, err := c.InstallRuleSet(w.RuleSet); err != nil {
				b.Fatal(err)
			}
			trace := w.Trace
			b.Run(fmt.Sprintf("%s/%s", name, label), func(b *testing.B) {
				c.ResetStats()
				runThroughputWorkers(b, workers, batch, trace, func(_ int, hs []fivetuple.Header) {
					c.LookupBatch(hs)
				})
				if stats, ok := c.CacheStats(); ok {
					b.ReportMetric(100*stats.HitRate(), "hit%")
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Table VII — throughput comparison
// ---------------------------------------------------------------------------

func BenchmarkTable7_Throughput(b *testing.B) {
	var rows []bench.Table7Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.Table7()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Source == "measured" {
			b.ReportMetric(r.ThroughputGbps, strings.ReplaceAll(r.Algorithm, " ", "_")+"_Gbps")
		}
	}
}

// ---------------------------------------------------------------------------
// Fig. 3 — pipeline, Fig. 5 — memory sharing, §V.A — updates
// ---------------------------------------------------------------------------

func BenchmarkFig3_PipelineLatency(b *testing.B) {
	var result bench.Fig3Result
	var err error
	for i := 0; i < b.N; i++ {
		result, err = bench.Fig3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(result.MBTLatencyCycles), "mbt_latency_cycles")
	b.ReportMetric(float64(result.BSTLatencyCycles), "bst_latency_cycles")
}

func BenchmarkFig5_MemorySharing(b *testing.B) {
	var result bench.Fig5Result
	for i := 0; i < b.N; i++ {
		result = bench.Fig5()
	}
	b.ReportMetric(float64(result.RuleCapacityMBT), "rules_mbt")
	b.ReportMetric(float64(result.RuleCapacityBST), "rules_bst")
}

func BenchmarkUpdate_RuleInsertion(b *testing.B) {
	// §V.A: rule insertion costs a constant 3 clock cycles of upload on the
	// data plane; this benchmark measures the controller-side software cost
	// per inserted rule as well.
	rules := benchSmallWorkload.RuleSet.Rules()
	b.ResetTimer()
	var c *core.Classifier
	for i := 0; i < b.N; i++ {
		if i%len(rules) == 0 {
			b.StopTimer()
			c = core.MustNew(core.DefaultConfig())
			b.StartTimer()
		}
		if _, err := c.InsertRule(rules[i%len(rules)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(core.UpdateCyclesPerRule()), "hw_cycles/rule")
}

func BenchmarkUpdate_RuleDeletion(b *testing.B) {
	rules := benchSmallWorkload.RuleSet.Rules()
	c := core.MustNew(core.DefaultConfig())
	if _, err := c.InstallRuleSet(benchSmallWorkload.RuleSet); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rules[i%len(rules)]
		if _, err := c.DeleteRule(r); err != nil {
			b.Fatal(err)
		}
		if _, err := c.InsertRule(r); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Per-field engine microbenchmarks (§V.B)
// ---------------------------------------------------------------------------

func BenchmarkFieldLookup_MBTSegment(b *testing.B) {
	e := mbt.MustNew(mbt.SegmentConfig())
	for i := 0; i < 2000; i++ {
		if _, err := e.Insert(uint32(i*31)&0xFFFF, 16, label.Label(i%4096), i); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Lookup(uint32(i) & 0xFFFF)
	}
	b.ReportMetric(float64(e.WorstCaseAccesses()), "worst_accesses")
}

func BenchmarkFieldLookup_BSTSegment(b *testing.B) {
	e := bst.MustNew(bst.SegmentConfig())
	for i := 0; i < 2000; i++ {
		if _, err := e.Insert(uint32(i*31)&0xFFFF, 16, label.Label(i%4096), i); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Lookup(uint32(i) & 0xFFFF)
	}
	b.ReportMetric(float64(e.WorstCaseAccessesFor()), "worst_accesses")
}

// ---------------------------------------------------------------------------
// End-to-end classifier lookup benchmarks (software model speed)
// ---------------------------------------------------------------------------

func benchmarkClassifierLookup(b *testing.B, mode core.CombineMode) {
	cfg := core.DefaultConfig()
	cfg.CombineMode = mode
	c := core.MustNew(cfg)
	if _, err := c.InstallRuleSet(benchWorkload.RuleSet); err != nil {
		b.Fatal(err)
	}
	trace := benchWorkload.Trace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(trace[i%len(trace)])
	}
	b.StopTimer()
	b.ReportMetric(c.Stats().AverageCombinations(), "combinations/pkt")
}

func BenchmarkLookup_ExactCombination(b *testing.B) {
	benchmarkClassifierLookup(b, core.CombineCrossProduct)
}

func BenchmarkLookup_HPMLSingleProbe(b *testing.B) {
	benchmarkClassifierLookup(b, core.CombineHPML)
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5)
// ---------------------------------------------------------------------------

// BenchmarkAblation_MBTStrides compares the paper's 5/5/6 stride split with
// alternative splits of the 16-bit segment.
func BenchmarkAblation_MBTStrides(b *testing.B) {
	strideSets := map[string][]int{
		"5-5-6":   {5, 5, 6},
		"4-6-6":   {4, 6, 6},
		"8-8":     {8, 8},
		"4-4-4-4": {4, 4, 4, 4},
	}
	values := benchSmallWorkload.RuleSet.Rules()
	for name, strides := range strideSets {
		b.Run(name, func(b *testing.B) {
			cfg := mbt.Config{KeyBits: 16, Strides: strides, NodeEntryBits: 32, LabelEntryBits: 13}
			e := mbt.MustNew(cfg)
			for i, r := range values {
				hi, bits := r.SrcPrefix.HighSegment()
				if bits == 0 {
					continue
				}
				if _, err := e.Insert(uint32(hi), bits, label.Label(i%8192), i); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Lookup(uint32(i) & 0xFFFF)
			}
			b.StopTimer()
			b.ReportMetric(float64(e.MemoryBits())/1024, "node_Kbit")
			b.ReportMetric(float64(e.WorstCaseAccesses()), "levels")
		})
	}
}

// BenchmarkAblation_LabelMethod quantifies the §III.C storage-saving claim.
func BenchmarkAblation_LabelMethod(b *testing.B) {
	var a bench.LabelMethodAblation
	for i := 0; i < b.N; i++ {
		a = bench.LabelMethod(benchWorkload.RuleSet)
	}
	b.ReportMetric(100*a.FieldSavingFraction, "field_saving_pct")
	b.ReportMetric(100*a.NetSavingFraction, "net_saving_pct")
}

// BenchmarkAblation_MemorySharing compares rule capacity with and without the
// Fig. 5 shared-block scheme.
func BenchmarkAblation_MemorySharing(b *testing.B) {
	var withSharing, withoutSharing int
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		withSharing = cfg.RuleCapacityFor("bst")
		withoutSharing = cfg.RuleCapacityFor("mbt")
	}
	b.ReportMetric(float64(withSharing), "rules_with_sharing")
	b.ReportMetric(float64(withoutSharing), "rules_without_sharing")
}

// BenchmarkAblation_HashLoad measures Rule Filter probe counts as the load
// factor grows, validating the single-cycle rule-address assumption of §V.A.
func BenchmarkAblation_HashLoad(b *testing.B) {
	for _, load := range []float64{0.25, 0.5, 0.75, 0.9} {
		b.Run(fmt.Sprintf("load_%.2f", load), func(b *testing.B) {
			cfg := core.DefaultConfig()
			c := core.MustNew(cfg)
			target := int(load * float64(cfg.RuleFilterSlots()))
			rules := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: target, Seed: 7})
			var totalProbes, inserted int
			for _, r := range rules.Rules() {
				rep, err := c.InsertRule(r)
				if err != nil {
					b.Fatal(err)
				}
				totalProbes += rep.RuleFilterProbes
				inserted++
			}
			b.ResetTimer()
			trace := classbench.GenerateTrace(rules, classbench.TraceConfig{Packets: 1000, Seed: 9, MatchFraction: 1})
			for i := 0; i < b.N; i++ {
				c.Lookup(trace[i%len(trace)])
			}
			b.StopTimer()
			b.ReportMetric(float64(totalProbes)/float64(inserted), "insert_probes/rule")
		})
	}
}

// BenchmarkAblation_BSTRebuild measures the software rebuild cost that the
// BST pays on every update (the structural drawback §IV.C discusses).
func BenchmarkAblation_BSTRebuild(b *testing.B) {
	e := bst.MustNew(bst.SegmentConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := uint32(i*17) & 0xFFFF
		if _, err := e.Insert(v, 16, label.Label(i%4096), i); err != nil {
			b.Fatal(err)
		}
		if i%512 == 511 {
			// Keep the structure bounded so the benchmark measures steady
			// rebuild cost rather than unbounded growth.
			b.StopTimer()
			e = bst.MustNew(bst.SegmentConfig())
			b.StartTimer()
		}
	}
}

// ---------------------------------------------------------------------------
// Update plane — incremental delta-apply versus full rebuild
// ---------------------------------------------------------------------------

// BenchmarkUpdateLatency measures the write side of every packet engine on
// a 1k-rule set, incremental versus rebuild, at two levels. The
// "structure-*" rows isolate the update primitive itself: one delta op
// (insert + delete) versus one full Install of the precomputed structure —
// the marginal per-op cost a batched flow-mod download pays, and where the
// incremental plane must win by >= 5x. The publish-level "delta"/"rebuild"
// rows run the same single-rule updates through the full RCU
// clone-mutate-sync-swap path, whose snapshot clone is a shared constant
// cost on both modes; they track the end-to-end publish latency the CI
// benchstat job gates. "delta" rows ride the incremental plane (unbounded
// budget, degradation trip disabled); "rebuild" rows pin
// RebuildAfterDeltas=1, the pre-incremental one-precomputation-per-publish
// behaviour.
func BenchmarkUpdateLatency(b *testing.B) {
	structureRules := benchSmallWorkload.RuleSet.Rules()
	for _, name := range engine.PacketEngineNames() {
		for _, mode := range []string{"structure-delta", "structure-rebuild"} {
			b.Run(fmt.Sprintf("%s/%s", name, mode), func(b *testing.B) {
				eng, err := engine.NewPacket(name, engine.Spec{})
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.Install(structureRules); err != nil {
					b.Fatal(err)
				}
				churn := fivetuple.Rule{
					SrcPrefix: fivetuple.MustParsePrefix("203.0.113.0/24"),
					DstPrefix: fivetuple.MustParsePrefix("198.51.100.0/24"),
					SrcPort:   fivetuple.WildcardPortRange(),
					DstPort:   fivetuple.ExactPort(8443),
					Protocol:  fivetuple.ExactProtocol(fivetuple.ProtoTCP),
					Priority:  100000, Action: fivetuple.ActionForward,
				}
				if mode == "structure-delta" {
					inc, ok := eng.(engine.IncrementalPacketEngine)
					if !ok {
						b.Skipf("%s has no incremental update path", name)
					}
					end := len(structureRules)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := inc.InsertRule(churn, end); err != nil {
							b.Fatal(err)
						}
						if err := inc.DeleteRule(churn, end); err != nil {
							b.Fatal(err)
						}
					}
				} else {
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := eng.Install(structureRules); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
		for _, mode := range []string{"delta", "rebuild"} {
			b.Run(fmt.Sprintf("%s/%s", name, mode), func(b *testing.B) {
				cfg := bench.EngineConfig(name)
				if mode == "rebuild" {
					cfg.RebuildAfterDeltas = 1
				} else {
					def, _ := engine.Get(name)
					if !def.Incremental {
						b.Skipf("%s has no incremental update path", name)
					}
					cfg.RebuildAfterDeltas = -1
					cfg.DegradationThreshold = 1.01
				}
				c := core.MustNew(cfg)
				if _, err := c.InstallRuleSet(benchSmallWorkload.RuleSet); err != nil {
					b.Fatal(err)
				}
				churn := fivetuple.Rule{
					SrcPrefix: fivetuple.MustParsePrefix("203.0.113.0/24"),
					DstPrefix: fivetuple.MustParsePrefix("198.51.100.0/24"),
					SrcPort:   fivetuple.WildcardPortRange(),
					DstPort:   fivetuple.ExactPort(8443),
					Protocol:  fivetuple.ExactProtocol(fivetuple.ProtoTCP),
					Priority:  100000, Action: fivetuple.ActionForward,
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := c.InsertRule(churn); err != nil {
						b.Fatal(err)
					}
					if _, err := c.DeleteRule(churn); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				stats := c.UpdateStats()
				b.ReportMetric(float64(stats.DeltasApplied), "deltas")
				b.ReportMetric(float64(stats.Rebuilds), "rebuilds")
				b.ReportMetric(stats.PublishLatency.P99().Seconds()*1e9, "p99_ns")
			})
		}
	}
}

// BenchmarkHashUnit measures the hardware hash model itself.
func BenchmarkHashUnit(b *testing.B) {
	u := hashunit.MustNew(13)
	key := [9]byte{0x0A, 1, 2, 3, 4, 5, 6, 7, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[8] = byte(i)
		u.Hash(key)
	}
}
