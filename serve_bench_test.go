// The wire-API serving benchmark lives in the external test package: the
// daemon (internal/server) imports the sdnpc facade, so an in-package test
// importing the daemon would be an import cycle.
package sdnpc_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sdnpc/internal/bench"
	"sdnpc/internal/classbench"
	"sdnpc/internal/server"
)

// serveWorkload is the filter set and trace behind BenchmarkServe; 1K rules
// keeps setup fast while the trace still exercises varied flows.
var serveWorkload = bench.NewWorkload(classbench.ACL, classbench.Size1K, 5000)

// ---------------------------------------------------------------------------
// Wire-API serving path — the multi-tenant daemon of internal/server
// ---------------------------------------------------------------------------

// BenchmarkServe measures one classify-batch request through the full wire
// path: HTTP over loopback TCP, JSON decode, LookupBatch against the
// tenant's classifier, JSON encode. ns/op is per request (64 headers);
// lookups/s reports the per-header rate. This is the serving-layer
// counterpart of BenchmarkThroughput, and the benchgate regression gate in
// CI covers it.
func BenchmarkServe(b *testing.B) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv := server.New(quiet)
	t, err := srv.Manager().Create("bench", server.TenantConfig{Engine: "hypercuts", CacheCapacity: 4096})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := t.Classifier.InsertAll(serveWorkload.RuleSet); err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(ctx, ln) }()
	defer func() { cancel(); <-done }()
	url := "http://" + ln.Addr().String() + "/v1/tenants/bench/classify-batch"

	// Pre-marshal a rotation of distinct batch payloads so the benchmark
	// exercises varied flows without timing client-side marshalling.
	const batch = 64
	const payloads = 32
	trace := serveWorkload.Trace
	bodies := make([][]byte, payloads)
	for p := 0; p < payloads; p++ {
		req := server.ClassifyBatchRequest{Headers: make([]server.WireHeader, batch)}
		for i := 0; i < batch; i++ {
			h := trace[(p*batch+i)%len(trace)]
			req.Headers[i] = server.WireHeader{
				SrcIP: h.SrcIP.String(), SrcPort: h.SrcPort,
				DstIP: h.DstIP.String(), DstPort: h.DstPort, Proto: h.Protocol,
			}
		}
		buf, err := json.Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		bodies[p] = buf
	}

	// Per-client request rates are collected so load imbalance across the
	// parallel clients (and, with a replicated tenant, across replicas) shows
	// up as a min/max spread beside the aggregate rate.
	type clientRate struct {
		requests int
		busy     time.Duration
	}
	var mu sync.Mutex
	var rates []clientRate

	var rotation atomic.Uint64
	start := time.Now()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{Timeout: 30 * time.Second}
		requests := 0
		clientStart := time.Now()
		for pb.Next() {
			body := bodies[rotation.Add(1)%payloads]
			resp, err := client.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				b.Errorf("classify-batch: %s", resp.Status)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			requests++
		}
		busy := time.Since(clientStart)
		mu.Lock()
		rates = append(rates, clientRate{requests: requests, busy: busy})
		mu.Unlock()
	})
	b.StopTimer()
	if elapsed := time.Since(start); elapsed > 0 {
		b.ReportMetric(float64(b.N*batch)/elapsed.Seconds(), "lookups/s")
	}
	minRPS, maxRPS := 0.0, 0.0
	for _, r := range rates {
		if r.requests == 0 || r.busy <= 0 {
			continue
		}
		rps := float64(r.requests) / r.busy.Seconds()
		if minRPS == 0 || rps < minRPS {
			minRPS = rps
		}
		if rps > maxRPS {
			maxRPS = rps
		}
	}
	if maxRPS > 0 {
		b.ReportMetric(minRPS*batch, "min_wkr_lookups/s")
		b.ReportMetric(maxRPS*batch, "max_wkr_lookups/s")
	}
}
