package sdnpc

import (
	"errors"
	"fmt"
	"testing"

	"sdnpc/internal/bench"
	"sdnpc/internal/core"
	"sdnpc/internal/engine"
	"sdnpc/internal/fivetuple"
)

// wildRule is a dual-family wildcard rule: every dimension open, so it
// matches any header of either address family.
func wildRule(prio int, action fivetuple.Action, arg uint32) fivetuple.Rule {
	return fivetuple.Rule{
		SrcPort:   fivetuple.WildcardPortRange(),
		DstPort:   fivetuple.WildcardPortRange(),
		Priority:  prio,
		Action:    action,
		ActionArg: arg,
	}
}

// dimWorkloads returns one rule set per extension dimension (plus a mixed
// one), each small enough to reason about by hand and each exercising the
// dimension's corner cases: straddling /65 IPv6 prefixes, partial VLAN
// masks, flag value/mask splits, partial protocol masks, stacked
// non-terminating observers.
func dimWorkloads() map[string][]fivetuple.Rule {
	ipv6 := []fivetuple.Rule{}
	r := wildRule(0, fivetuple.ActionForward, 1)
	r.Src6 = fivetuple.MustParsePrefix6("2001:db8::/32")
	ipv6 = append(ipv6, r)
	r = wildRule(1, fivetuple.ActionForward, 2)
	r.Src6 = fivetuple.MustParsePrefix6("2001:db8:0:0:8000::/65") // straddles the Hi/Lo word split
	ipv6 = append(ipv6, r)
	r = wildRule(2, fivetuple.ActionForward, 3)
	r.Src6 = fivetuple.MustParsePrefix6("2001:db8::1/128")
	r.Dst6 = fivetuple.MustParsePrefix6("2001:db8:ffff::/48")
	ipv6 = append(ipv6, r)
	ipv6 = append(ipv6, wildRule(3, fivetuple.ActionDrop, 0))

	vlan := []fivetuple.Rule{}
	r = wildRule(0, fivetuple.ActionForward, 1)
	r.VLAN = fivetuple.ExactVLAN(100)
	vlan = append(vlan, r)
	r = wildRule(1, fivetuple.ActionForward, 2)
	r.VLAN = fivetuple.VLANMatch{Value: 0x0F0, Mask: 0x0F0}
	vlan = append(vlan, r)
	vlan = append(vlan, wildRule(2, fivetuple.ActionDrop, 0))

	flags := []fivetuple.Rule{}
	r = wildRule(0, fivetuple.ActionForward, 1)
	r.TCPFlags = fivetuple.TCPFlagMatch{Value: fivetuple.TCPSyn, Mask: fivetuple.TCPSyn | fivetuple.TCPAck}
	flags = append(flags, r)
	r = wildRule(1, fivetuple.ActionForward, 2)
	r.TCPFlags = fivetuple.TCPFlagMatch{Value: 0, Mask: fivetuple.TCPRst}
	flags = append(flags, r)
	flags = append(flags, wildRule(2, fivetuple.ActionDrop, 0))

	masked := []fivetuple.Rule{}
	r = wildRule(0, fivetuple.ActionForward, 1)
	r.Protocol = fivetuple.ProtocolMatch{Value: 0x01, Mask: 0x01} // odd protocol numbers
	masked = append(masked, r)
	masked = append(masked, wildRule(1, fivetuple.ActionDrop, 0))

	multi := []fivetuple.Rule{}
	r = wildRule(0, fivetuple.ActionController, 0)
	r.NonTerminating = true
	multi = append(multi, r)
	r = wildRule(1, fivetuple.ActionModify, 7)
	r.SrcPrefix = fivetuple.MustParsePrefix("10.0.0.0/8")
	r.NonTerminating = true
	multi = append(multi, r)
	multi = append(multi, wildRule(2, fivetuple.ActionForward, 9))
	multi = append(multi, wildRule(3, fivetuple.ActionDrop, 0)) // dead: above rule terminates first

	mixed := []fivetuple.Rule{}
	prio := 0
	for _, workload := range [][]fivetuple.Rule{ipv6[:len(ipv6)-1], vlan[:len(vlan)-1], flags[:len(flags)-1], masked[:len(masked)-1], multi[:len(multi)-1]} {
		for _, r := range workload {
			r.Priority = prio
			prio++
			mixed = append(mixed, r)
		}
	}
	mixed = append(mixed, wildRule(prio, fivetuple.ActionDrop, 0))

	return map[string][]fivetuple.Rule{
		"ipv6": ipv6, "vlan": vlan, "tcp-flags": flags,
		"masked-proto": masked, "multi-action": multi, "mixed": mixed,
	}
}

// dimProbes builds the probe headers for a workload: one engineered hit per
// rule plus fixed near-miss headers of both families.
func dimProbes(rules []fivetuple.Rule) []fivetuple.Header {
	headers := make([]fivetuple.Header, 0, len(rules)+4)
	for _, r := range rules {
		headers = append(headers, headerMatchingRule(r))
	}
	headers = append(headers,
		fivetuple.Header{SrcIP: fivetuple.MustParseIPv4("203.0.113.9"), DstIP: fivetuple.MustParseIPv4("198.51.100.2"), SrcPort: 50000, DstPort: 443, Protocol: 6},
		fivetuple.Header{Family: fivetuple.FamilyIPv6, SrcIP6: fivetuple.MustParseIPv6("2001:dead::1"), DstIP6: fivetuple.MustParseIPv6("2001:db8:ffff::9"), Protocol: 6},
		fivetuple.Header{VLAN: 0x0F5, TCPFlags: fivetuple.TCPSyn, Protocol: 6},
		fivetuple.Header{VLAN: 101, TCPFlags: fivetuple.TCPSyn | fivetuple.TCPAck, Protocol: 7},
	)
	return headers
}

// TestDimensionConformance drives every selectable engine against every
// extension-dimension workload. An engine whose registry declaration covers
// the workload's required dimensions must install it and agree with the
// linear-scan oracle under both first-match (Lookup) and multi-action
// (LookupAll) semantics; an engine that does not cover them must refuse the
// install with core.ErrDimsUnsupported — serve or honestly decline, never
// silently misclassify.
func TestDimensionConformance(t *testing.T) {
	for wname, rules := range dimWorkloads() {
		rs := fivetuple.NewRuleSet("conformance-"+wname, rules)
		need := fivetuple.RequiredDims(rs.Rules())
		if need == 0 {
			t.Fatalf("workload %q requires no extension dimensions — it tests nothing", wname)
		}
		headers := dimProbes(rs.Rules())
		for _, name := range engine.SelectableNames() {
			t.Run(fmt.Sprintf("%s/%s", wname, name), func(t *testing.T) {
				c, err := core.New(bench.EngineConfig(name))
				if err != nil {
					t.Fatalf("building %s classifier: %v", name, err)
				}
				if !engine.Dims(name).Covers(need) {
					if _, err := c.InstallRuleSet(rs); !errors.Is(err, core.ErrDimsUnsupported) {
						t.Fatalf("engine %s does not declare %v, but InstallRuleSet returned %v (want ErrDimsUnsupported)",
							name, need, err)
					}
					return
				}
				if _, err := c.InstallRuleSet(rs); err != nil {
					t.Fatalf("engine %s declares %v but refused the workload: %v", name, engine.Dims(name), err)
				}
				reader := c.Reader(0)
				var refs []core.ActionRef
				for i, h := range headers {
					wantIdx, wantOK := rs.Classify(h)
					got := c.Lookup(h)
					if got.Matched != wantOK {
						t.Fatalf("header %d (%s): matched = %v, oracle says %v", i, h, got.Matched, wantOK)
					}
					if wantOK {
						r := rs.Rule(wantIdx)
						if got.Priority != wantIdx || got.Action != r.Action || got.ActionArg != r.ActionArg {
							t.Fatalf("header %d (%s): got rule %d action %v/%d, oracle rule %d (%s)",
								i, h, got.Priority, got.Action, got.ActionArg, wantIdx, r)
						}
					}
					wantAll := rs.ClassifyAll(h)
					gotAll, _ := c.LookupAll(h)
					checkActionRefs(t, name, wname, 0, i, h, rs, wantAll, gotAll)
					refs, _ = reader.LookupAllInto(refs[:0], h)
					checkActionRefs(t, name, wname+"-reader", 0, i, h, rs, wantAll, refs)
				}
			})
		}
	}
}

// TestSelectEngineRefusesUnsupportedDims pins the run-time switching side
// of the contract: with extended rules installed, switching to an engine
// that does not declare the needed dimensions must fail with
// ErrDimsUnsupported and leave the serving path on the old engine, still
// answering correctly.
func TestSelectEngineRefusesUnsupportedDims(t *testing.T) {
	rules := dimWorkloads()["mixed"]
	rs := fivetuple.NewRuleSet("conformance-switch", rules)
	need := fivetuple.RequiredDims(rs.Rules())
	c, err := core.New(bench.EngineConfig("linear"))
	if err != nil {
		t.Fatalf("building linear classifier: %v", err)
	}
	if _, err := c.InstallRuleSet(rs); err != nil {
		t.Fatalf("installing mixed workload on linear: %v", err)
	}
	headers := dimProbes(rs.Rules())
	for _, name := range engine.SelectableNames() {
		if engine.Dims(name).Covers(need) {
			continue
		}
		if err := c.SelectEngine(name); !errors.Is(err, core.ErrDimsUnsupported) {
			t.Fatalf("SelectEngine(%s) with %v rules installed returned %v (want ErrDimsUnsupported)", name, need, err)
		}
		if got := c.ActiveEngineName(); got != "linear" {
			t.Fatalf("after refused switch to %s the active engine is %q, want linear", name, got)
		}
	}
	for i, h := range headers {
		wantIdx, wantOK := rs.Classify(h)
		got := c.Lookup(h)
		if got.Matched != wantOK || (wantOK && got.Priority != wantIdx) {
			t.Fatalf("after refused switches, header %d (%s): got (%v, %d), oracle (%v, %d)",
				i, h, got.Matched, got.Priority, wantOK, wantIdx)
		}
	}
}

// TestMultiActionOrderingUnderChurn pins the multi-action ordering bugfix
// through the incremental update plane: rules are inserted in inverted
// priority order (worst first) and non-terminating observers are deleted
// and reinserted through each incremental engine's delta path, asserting
// after every mutation that LookupAll still yields the chain in strict
// priority order — splices must keep the best-first order, not append.
func TestMultiActionOrderingUnderChurn(t *testing.T) {
	for _, name := range []string{"dcfl", "hypercuts", "linear"} {
		if !engine.Dims(name).Covers(fivetuple.DimMultiAction) {
			t.Fatalf("engine %s lost its multi-action declaration", name)
		}
		t.Run(name, func(t *testing.T) {
			c, err := core.New(bench.EngineConfig(name))
			if err != nil {
				t.Fatalf("building %s classifier: %v", name, err)
			}
			// Delta-friendly policy: never rebuild on update volume or
			// degradation, so every mutation below exercises the splice.
			if err := c.SetUpdatePolicy(1<<20, 1.01); err != nil {
				t.Fatalf("SetUpdatePolicy: %v", err)
			}

			observerA := wildRule(0, fivetuple.ActionController, 0)
			observerA.NonTerminating = true
			observerB := wildRule(2, fivetuple.ActionModify, 7)
			observerB.NonTerminating = true
			verdict := wildRule(4, fivetuple.ActionForward, 9)
			dead := wildRule(6, fivetuple.ActionDrop, 0)
			trailing := wildRule(8, fivetuple.ActionController, 1)
			trailing.NonTerminating = true

			headers := []fivetuple.Header{
				{SrcIP: fivetuple.MustParseIPv4("10.1.2.3"), DstIP: fivetuple.MustParseIPv4("192.0.2.1"), SrcPort: 1, DstPort: 2, Protocol: 6},
				{},
			}

			var live []fivetuple.Rule
			mutate := func(phase string, op func() error, apply func()) {
				t.Helper()
				if err := op(); err != nil {
					t.Fatalf("%s: %v", phase, err)
				}
				apply()
				checkAgainstOracle(t, phase, name, c, live, headers)
			}
			insert := func(phase string, r fivetuple.Rule) {
				t.Helper()
				mutate(phase, func() error { _, err := c.InsertRule(r); return err },
					func() { live = append(live, r) })
			}
			remove := func(phase string, r fivetuple.Rule) {
				t.Helper()
				mutate(phase, func() error { _, err := c.DeleteRule(r); return err },
					func() { live = removeFirstMatch(live, r) })
			}

			// Inverted priority order: every insert splices *above* the
			// rules already installed.
			insert("insert-trailing", trailing)
			insert("insert-dead", dead)
			insert("insert-verdict", verdict)
			insert("insert-observerB", observerB)
			insert("insert-observerA", observerA)

			// Delete/reinsert churn through the delta path.
			remove("delete-observerB", observerB)
			insert("reinsert-observerB", observerB)
			remove("delete-verdict", verdict) // chain now runs past priority 4 into dead
			remove("delete-observerA", observerA)
			insert("reinsert-verdict", verdict)
			insert("reinsert-observerA", observerA)

			stats := c.UpdateStats()
			if stats.DeltasApplied == 0 {
				t.Fatalf("churn through %s applied no deltas — the splice path was never exercised: %+v", name, stats)
			}
			if stats.Rebuilds > 1 {
				t.Fatalf("delta-friendly policy still rebuilt %d times on %s: %+v", stats.Rebuilds, name, stats)
			}
		})
	}
}
