package dataplane

import (
	"net"
	"testing"
	"time"

	"sdnpc/internal/core"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/sdn/openflow"
)

func testRule(t *testing.T, priority int, src string, dstPort uint16, action fivetuple.Action) fivetuple.Rule {
	t.Helper()
	return fivetuple.Rule{
		Priority:  priority,
		SrcPrefix: fivetuple.MustParsePrefix(src),
		DstPrefix: fivetuple.Prefix{},
		SrcPort:   fivetuple.WildcardPortRange(),
		DstPort:   fivetuple.ExactPort(dstPort),
		Protocol:  fivetuple.ExactProtocol(fivetuple.ProtoTCP),
		Action:    action,
		ActionArg: uint32(priority),
	}
}

// startConnectedSwitch wires a switch to a fake controller over a TCP pair
// and drains the switch's hello. It returns the controller side of the
// connection.
func startConnectedSwitch(t *testing.T, sw *Switch) net.Conn {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			accepted <- conn
		}
	}()
	if err := sw.Connect(ln.Addr().String()); err != nil {
		t.Fatalf("connect: %v", err)
	}
	ctrl := <-accepted
	if msg, err := openflow.Read(ctrl); err != nil || msg.Type != openflow.TypeHello {
		t.Fatalf("expected hello from switch, got %v / %v", msg, err)
	}
	return ctrl
}

// awaitRuleCount polls until the switch has applied the expected number of
// rules (the applier is asynchronous).
func awaitRuleCount(t *testing.T, sw *Switch, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for sw.Classifier().RuleCount() != want {
		if time.Now().After(deadline) {
			t.Fatalf("rule count stuck at %d, want %d", sw.Classifier().RuleCount(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStreamedFlowModsAreBatched streams a burst of flow adds followed by a
// barrier and checks they all land; the barrier reply proves the applier
// flushed everything queued before it.
func TestStreamedFlowModsAreBatched(t *testing.T) {
	sw, err := New(core.DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sw.Close()
	ctrl := startConnectedSwitch(t, sw)
	defer ctrl.Close()

	const rules = 200
	for i := 0; i < rules; i++ {
		// Ports repeat so the 128-register port bank is not the limit; the
		// rules stay distinct through their priorities.
		r := testRule(t, i, "10.0.0.0/8", uint16(1000+i%50), fivetuple.ActionForward)
		if err := openflow.Write(ctrl, openflow.Message{
			Type: openflow.TypeFlowAdd, Xid: uint32(i + 1),
			Body: openflow.MarshalFlowMod(openflow.FlowMod{Rule: r}),
		}); err != nil {
			t.Fatalf("write flow add %d: %v", i, err)
		}
	}
	if err := openflow.Write(ctrl, openflow.Message{Type: openflow.TypeBarrierRequest, Xid: 9999}); err != nil {
		t.Fatalf("write barrier: %v", err)
	}
	reply, err := openflow.Read(ctrl)
	if err != nil {
		t.Fatalf("read barrier reply: %v", err)
	}
	if reply.Type != openflow.TypeBarrierReply || reply.Xid != 9999 {
		t.Fatalf("got %v xid %d, want barrier reply 9999 (an error reply means some flow add failed)", reply.Type, reply.Xid)
	}
	// The barrier flushed the applier, so every rule must be installed.
	if got := sw.Classifier().RuleCount(); got != rules {
		t.Fatalf("rule count after barrier = %d, want %d", got, rules)
	}
	if got := sw.Counters().FlowAdds; got != rules {
		t.Fatalf("FlowAdds counter = %d, want %d", got, rules)
	}
}

// TestProcessBatchVerdictsAndCounters checks the batched serving path:
// per-packet verdicts, counter aggregation and packet-in punts for misses.
func TestProcessBatchVerdictsAndCounters(t *testing.T) {
	sw, err := New(core.DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sw.Close()
	ctrl := startConnectedSwitch(t, sw)
	defer ctrl.Close()

	forward := testRule(t, 0, "10.0.0.0/8", 80, fivetuple.ActionForward)
	drop := testRule(t, 1, "10.0.0.0/8", 23, fivetuple.ActionDrop)
	if err := openflow.Write(ctrl, openflow.Message{
		Type: openflow.TypeFlowAdd, Xid: 1, Body: openflow.MarshalFlowMod(openflow.FlowMod{Rule: forward}),
	}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := openflow.Write(ctrl, openflow.Message{
		Type: openflow.TypeFlowAdd, Xid: 2, Body: openflow.MarshalFlowMod(openflow.FlowMod{Rule: drop}),
	}); err != nil {
		t.Fatalf("write: %v", err)
	}
	awaitRuleCount(t, sw, 2)

	mk := func(dstPort uint16) fivetuple.Header {
		return fivetuple.Header{
			SrcIP: fivetuple.MustParseIPv4("10.1.2.3"), DstIP: fivetuple.MustParseIPv4("1.1.1.1"),
			SrcPort: 1234, DstPort: dstPort, Protocol: fivetuple.ProtoTCP,
		}
	}
	verdicts, err := sw.ProcessBatch([]fivetuple.Header{mk(80), mk(23), mk(9999)})
	if err != nil {
		t.Fatalf("ProcessBatch: %v", err)
	}
	if len(verdicts) != 3 {
		t.Fatalf("got %d verdicts, want 3", len(verdicts))
	}
	if !verdicts[0].Matched || verdicts[0].Action != fivetuple.ActionForward || verdicts[0].EgressPort != 0 {
		t.Errorf("verdict[0] = %+v, want forward", verdicts[0])
	}
	if !verdicts[1].Matched || verdicts[1].Action != fivetuple.ActionDrop {
		t.Errorf("verdict[1] = %+v, want drop", verdicts[1])
	}
	if verdicts[2].Matched || !verdicts[2].PuntedToController {
		t.Errorf("verdict[2] = %+v, want an unmatched punt", verdicts[2])
	}
	// The miss must arrive as a packet-in on the controller side.
	if msg, err := openflow.Read(ctrl); err != nil || msg.Type != openflow.TypePacketIn {
		t.Errorf("expected a packet-in for the miss, got %v / %v", msg, err)
	}
	c := sw.Counters()
	if c.Total != 3 || c.Forwarded != 1 || c.Dropped != 1 || c.TableMiss != 1 || c.Punted != 1 {
		t.Errorf("counters = %+v, want total 3 / forwarded 1 / dropped 1 / miss 1 / punted 1", c)
	}
}
