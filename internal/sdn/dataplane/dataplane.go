// Package dataplane implements the SDN data plane: a software switch whose
// flow classification is performed by the configurable architecture of
// internal/core.
//
// The switch dials the controller's control channel, applies the flow and
// configuration updates it receives (flow add/delete, IPalg_s selection) and
// classifies packets locally. Packets whose matching rule's action is
// "controller" — and packets matching no rule at all — are punted to the
// controller as packet-in messages, mirroring the OpenFlow table-miss
// behaviour the paper's Fig. 1/Fig. 2 structure implies.
package dataplane

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"sdnpc/internal/core"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/sdn/openflow"
)

// Verdict is the outcome of processing one packet.
type Verdict struct {
	// Matched reports whether a rule matched the packet.
	Matched bool
	// Action is the applied action (ActionDrop for a table miss).
	Action fivetuple.Action
	// EgressPort is the forwarding port for ActionForward/ActionModify.
	EgressPort uint32
	// RulePriority is the priority of the matched rule.
	RulePriority int
	// PuntedToController reports whether a packet-in was sent.
	PuntedToController bool
}

// Counters accumulates per-action packet counts.
type Counters struct {
	Total      uint64
	Forwarded  uint64
	Dropped    uint64
	Modified   uint64
	Grouped    uint64
	Punted     uint64
	TableMiss  uint64
	FlowAdds   uint64
	FlowDels   uint64
	AlgChanges uint64
}

// Switch is a software SDN switch built around the configurable classifier.
type Switch struct {
	mu         sync.Mutex
	classifier *core.Classifier
	conn       net.Conn
	counters   Counters
	closed     bool
	done       chan struct{}

	// writeMu serialises control-channel writes issued by the packet path and
	// by the control loop.
	writeMu sync.Mutex
}

// writeMessage sends one control message, serialising concurrent writers.
func (s *Switch) writeMessage(conn net.Conn, m openflow.Message) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return openflow.Write(conn, m)
}

// New creates a switch with a freshly configured classifier.
func New(cfg core.Config) (*Switch, error) {
	classifier, err := core.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("dataplane: %w", err)
	}
	return &Switch{classifier: classifier, done: make(chan struct{})}, nil
}

// Classifier exposes the embedded classifier for reporting.
func (s *Switch) Classifier() *core.Classifier { return s.classifier }

// Counters returns a snapshot of the packet counters.
func (s *Switch) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// ErrNotConnected is returned when a packet must be punted but no control
// channel is up.
var ErrNotConnected = errors.New("dataplane: not connected to a controller")

// Connect dials the controller and starts processing control messages in a
// background goroutine. It returns once the connection is established.
func (s *Switch) Connect(address string) error {
	conn, err := net.Dial("tcp", address)
	if err != nil {
		return fmt.Errorf("dataplane: connecting to controller: %w", err)
	}
	return s.Run(conn)
}

// Run attaches the switch to an established control connection and starts
// the message-processing goroutine.
func (s *Switch) Run(conn net.Conn) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("dataplane: switch closed")
	}
	if s.conn != nil {
		s.mu.Unlock()
		return errors.New("dataplane: already connected")
	}
	s.conn = conn
	s.mu.Unlock()

	if err := s.writeMessage(conn, openflow.Message{Type: openflow.TypeHello}); err != nil {
		return fmt.Errorf("dataplane: hello: %w", err)
	}
	go s.controlLoop(conn)
	return nil
}

// Close shuts the control channel down and stops the control loop.
func (s *Switch) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conn := s.conn
	s.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
		<-s.done
	}
}

// controlLoop applies controller messages until the connection drops.
func (s *Switch) controlLoop(conn net.Conn) {
	defer close(s.done)
	for {
		msg, err := openflow.Read(conn)
		if err != nil {
			return
		}
		switch msg.Type {
		case openflow.TypeHello:
			// Connection is up; nothing else to do.
		case openflow.TypeFlowAdd:
			s.applyFlowMod(conn, msg, true)
		case openflow.TypeFlowDelete:
			s.applyFlowMod(conn, msg, false)
		case openflow.TypeSetAlgorithm:
			alg, err := openflow.UnmarshalSetAlgorithm(msg.Body)
			if err != nil {
				s.sendError(conn, msg.Xid, err)
				continue
			}
			s.mu.Lock()
			err = s.classifier.SelectIPAlgorithm(alg)
			if err == nil {
				s.counters.AlgChanges++
			}
			s.mu.Unlock()
			if err != nil {
				s.sendError(conn, msg.Xid, err)
			}
		case openflow.TypeSetEngine:
			name, err := openflow.UnmarshalSetEngine(msg.Body)
			if err != nil {
				s.sendError(conn, msg.Xid, err)
				continue
			}
			s.mu.Lock()
			err = s.classifier.SelectIPEngine(name)
			if err == nil {
				s.counters.AlgChanges++
			}
			s.mu.Unlock()
			if err != nil {
				s.sendError(conn, msg.Xid, err)
			}
		case openflow.TypeBarrierRequest:
			_ = s.writeMessage(conn, openflow.Message{Type: openflow.TypeBarrierReply, Xid: msg.Xid})
		default:
			// Ignore unknown messages.
		}
	}
}

func (s *Switch) applyFlowMod(conn net.Conn, msg openflow.Message, add bool) {
	mod, err := openflow.UnmarshalFlowMod(msg.Body)
	if err != nil {
		s.sendError(conn, msg.Xid, err)
		return
	}
	s.mu.Lock()
	if add {
		_, err = s.classifier.InsertRule(mod.Rule)
		if err == nil {
			s.counters.FlowAdds++
		}
	} else {
		_, err = s.classifier.DeleteRule(mod.Rule)
		if err == nil {
			s.counters.FlowDels++
		}
	}
	s.mu.Unlock()
	if err != nil {
		s.sendError(conn, msg.Xid, err)
	}
}

func (s *Switch) sendError(conn net.Conn, xid uint32, err error) {
	_ = s.writeMessage(conn, openflow.Message{
		Type: openflow.TypeError, Xid: xid,
		Body: openflow.MarshalError(err.Error()),
	})
}

// ProcessPacket classifies one packet header and applies the resulting
// action. Table misses and rules with the controller action punt the header
// to the controller when a control channel is connected.
func (s *Switch) ProcessPacket(h fivetuple.Header) (Verdict, error) {
	s.mu.Lock()
	result := s.classifier.Lookup(h)
	s.counters.Total++

	verdict := Verdict{Matched: result.Matched}
	var punt bool
	if !result.Matched {
		s.counters.TableMiss++
		verdict.Action = fivetuple.ActionDrop
		punt = true
	} else {
		verdict.Action = result.Action
		verdict.RulePriority = result.Priority
		verdict.EgressPort = result.ActionArg
		switch result.Action {
		case fivetuple.ActionForward:
			s.counters.Forwarded++
		case fivetuple.ActionDrop:
			s.counters.Dropped++
		case fivetuple.ActionModify:
			s.counters.Modified++
		case fivetuple.ActionGroup:
			s.counters.Grouped++
		case fivetuple.ActionController:
			punt = true
		}
	}
	conn := s.conn
	if punt && conn != nil {
		s.counters.Punted++
	}
	s.mu.Unlock()

	if !punt {
		return verdict, nil
	}
	if conn == nil {
		return verdict, ErrNotConnected
	}
	priority := uint32(0)
	if result.Matched {
		priority = uint32(result.Priority)
	}
	err := s.writeMessage(conn, openflow.Message{
		Type: openflow.TypePacketIn,
		Body: openflow.MarshalPacketIn(openflow.PacketIn{Header: h, RulePriority: priority}),
	})
	if err != nil {
		return verdict, fmt.Errorf("dataplane: packet-in: %w", err)
	}
	verdict.PuntedToController = true
	return verdict, nil
}
