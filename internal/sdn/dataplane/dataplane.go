// Package dataplane implements the SDN data plane: a software switch whose
// flow classification is performed by the configurable architecture of
// internal/core.
//
// The switch dials the controller's control channel, applies the flow and
// configuration updates it receives (flow add/delete, IPalg_s selection) and
// classifies packets locally. Packets whose matching rule's action is
// "controller" — and packets matching no rule at all — are punted to the
// controller as packet-in messages, mirroring the OpenFlow table-miss
// behaviour the paper's Fig. 1/Fig. 2 structure implies.
package dataplane

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"sdnpc/internal/core"
	"sdnpc/internal/engine"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/sdn/openflow"
)

// Verdict is the outcome of processing one packet.
type Verdict struct {
	// Matched reports whether a rule matched the packet.
	Matched bool
	// Action is the applied action (ActionDrop for a table miss).
	Action fivetuple.Action
	// EgressPort is the forwarding port for ActionForward/ActionModify.
	EgressPort uint32
	// RulePriority is the priority of the matched rule.
	RulePriority int
	// PuntedToController reports whether a packet-in was sent.
	PuntedToController bool
}

// Counters accumulates per-action packet counts.
type Counters struct {
	Total      uint64
	Forwarded  uint64
	Dropped    uint64
	Modified   uint64
	Grouped    uint64
	Punted     uint64
	TableMiss  uint64
	FlowAdds   uint64
	FlowDels   uint64
	AlgChanges uint64
}

// Switch is a software SDN switch built around the configurable classifier.
type Switch struct {
	mu         sync.Mutex
	classifier *core.Classifier
	conn       net.Conn
	counters   Counters
	closed     bool
	done       chan struct{}

	// mods feeds queued flow updates (and flush barriers) from the control
	// loop to the applier goroutine, which coalesces consecutive flow-mods
	// into one core.ApplyUpdates batch — one snapshot clone+swap per batch
	// instead of per rule, which is what keeps a full-table download linear.
	mods        chan applierMsg
	applierDone chan struct{}

	// writeMu serialises control-channel writes issued by the packet path and
	// by the control loop.
	writeMu sync.Mutex
}

// writeMessage sends one control message, serialising concurrent writers.
func (s *Switch) writeMessage(conn net.Conn, m openflow.Message) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return openflow.Write(conn, m)
}

// New creates a switch with a freshly configured classifier.
func New(cfg core.Config) (*Switch, error) {
	classifier, err := core.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("dataplane: %w", err)
	}
	return &Switch{
		classifier:  classifier,
		done:        make(chan struct{}),
		mods:        make(chan applierMsg, 1024),
		applierDone: make(chan struct{}),
	}, nil
}

// flowMod is one queued flow update from the control channel.
type flowMod struct {
	add  bool
	rule fivetuple.Rule
	xid  uint32
}

// applierMsg carries either a flow-mod or a flush barrier to the applier.
type applierMsg struct {
	mod   *flowMod
	flush chan struct{}
}

// Classifier exposes the embedded classifier for reporting.
func (s *Switch) Classifier() *core.Classifier { return s.classifier }

// Counters returns a snapshot of the packet counters.
func (s *Switch) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// ErrNotConnected is returned when a packet must be punted but no control
// channel is up.
var ErrNotConnected = errors.New("dataplane: not connected to a controller")

// Connect dials the controller and starts processing control messages in a
// background goroutine. It returns once the connection is established.
func (s *Switch) Connect(address string) error {
	conn, err := net.Dial("tcp", address)
	if err != nil {
		return fmt.Errorf("dataplane: connecting to controller: %w", err)
	}
	return s.Run(conn)
}

// Run attaches the switch to an established control connection and starts
// the message-processing goroutine.
func (s *Switch) Run(conn net.Conn) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("dataplane: switch closed")
	}
	if s.conn != nil {
		s.mu.Unlock()
		return errors.New("dataplane: already connected")
	}
	s.conn = conn
	s.mu.Unlock()

	if err := s.writeMessage(conn, openflow.Message{Type: openflow.TypeHello}); err != nil {
		// Detach the failed connection: the control loop and applier never
		// started, so leaving conn set would make a later Close wait forever
		// for a done signal nobody will send.
		s.mu.Lock()
		s.conn = nil
		s.mu.Unlock()
		return fmt.Errorf("dataplane: hello: %w", err)
	}
	go s.applier(conn)
	go s.controlLoop(conn)
	return nil
}

// Close shuts the control channel down and stops the control loop.
func (s *Switch) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conn := s.conn
	s.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
		<-s.done
	}
}

// controlLoop applies controller messages until the connection drops.
// Flow updates are queued to the applier; configuration changes and
// barriers flush the queue first so the classifier always observes control
// messages in channel order.
func (s *Switch) controlLoop(conn net.Conn) {
	defer func() {
		close(s.mods)
		<-s.applierDone
		close(s.done)
	}()
	for {
		msg, err := openflow.Read(conn)
		if err != nil {
			return
		}
		switch msg.Type {
		case openflow.TypeHello:
			// Connection is up; nothing else to do.
		case openflow.TypeFlowAdd, openflow.TypeFlowDelete:
			mod, err := openflow.UnmarshalFlowMod(msg.Body)
			if err != nil {
				s.sendError(conn, msg.Xid, err)
				continue
			}
			s.mods <- applierMsg{mod: &flowMod{
				add: msg.Type == openflow.TypeFlowAdd, rule: mod.Rule, xid: msg.Xid,
			}}
		case openflow.TypeSetAlgorithm:
			alg, err := openflow.UnmarshalSetAlgorithm(msg.Body)
			if err != nil {
				s.sendError(conn, msg.Xid, err)
				continue
			}
			s.flushMods()
			name, ok := engine.LegacyName(alg)
			if !ok {
				s.sendError(conn, msg.Xid, fmt.Errorf("dataplane: unknown IP algorithm selection %v", alg))
				continue
			}
			// The classifier synchronises its own writers; holding s.mu
			// across the rule replay would stall every serving worker at
			// the counter fold for the whole re-programming.
			if err = s.classifier.SelectIPEngine(name); err != nil {
				s.sendError(conn, msg.Xid, err)
				continue
			}
			s.mu.Lock()
			s.counters.AlgChanges++
			s.mu.Unlock()
		case openflow.TypeSetEngine:
			name, err := openflow.UnmarshalSetEngine(msg.Body)
			if err != nil {
				s.sendError(conn, msg.Xid, err)
				continue
			}
			s.flushMods()
			// SelectEngine resolves the name across both tiers: a field
			// engine switches the IP-segment dimensions, a whole-packet
			// engine switches the running switch onto the packet tier.
			if err = s.classifier.SelectEngine(name); err != nil {
				s.sendError(conn, msg.Xid, err)
				continue
			}
			s.mu.Lock()
			s.counters.AlgChanges++
			s.mu.Unlock()
		case openflow.TypeBarrierRequest:
			s.flushMods()
			_ = s.writeMessage(conn, openflow.Message{Type: openflow.TypeBarrierReply, Xid: msg.Xid})
		default:
			// Ignore unknown messages.
		}
	}
}

// flushMods blocks until every flow update queued so far has been applied.
func (s *Switch) flushMods() {
	ch := make(chan struct{})
	s.mods <- applierMsg{flush: ch}
	<-ch
}

// applier drains the flow-update queue, applying consecutive flow-mods as
// one batched snapshot swap. A flush barrier completes only after every
// update queued before it has been applied.
func (s *Switch) applier(conn net.Conn) {
	defer close(s.applierDone)
	const maxBatch = 512
	pending := make([]flowMod, 0, maxBatch)
	var flushes []chan struct{}
	apply := func() {
		if len(pending) > 0 {
			s.applyFlowBatch(conn, pending)
			pending = pending[:0]
		}
		for _, ch := range flushes {
			close(ch)
		}
		flushes = flushes[:0]
	}
	for msg := range s.mods {
		if msg.mod != nil {
			pending = append(pending, *msg.mod)
		}
		if msg.flush != nil {
			flushes = append(flushes, msg.flush)
		}
		// Opportunistically drain whatever else is already queued so a
		// streamed rule download coalesces into few snapshot swaps.
		draining := msg.flush == nil && len(pending) < maxBatch
		for draining {
			select {
			case m, ok := <-s.mods:
				if !ok {
					draining = false
					break
				}
				if m.mod != nil {
					pending = append(pending, *m.mod)
				}
				if m.flush != nil {
					flushes = append(flushes, m.flush)
					draining = false
				}
				if len(pending) >= maxBatch {
					draining = false
				}
			default:
				draining = false
			}
		}
		apply()
	}
	apply()
}

// applyFlowBatch applies one batch of flow updates through the
// classifier's batched update path and reports per-update failures back on
// the control channel.
func (s *Switch) applyFlowBatch(conn net.Conn, mods []flowMod) {
	ops := make([]core.UpdateOp, len(mods))
	for i, m := range mods {
		ops[i] = core.UpdateOp{Delete: !m.add, Rule: m.rule}
	}
	_, errs, err := s.classifier.ApplyUpdates(ops)
	if err != nil {
		for _, m := range mods {
			s.sendError(conn, m.xid, err)
		}
		return
	}
	var adds, dels uint64
	for i, m := range mods {
		if errs[i] != nil {
			s.sendError(conn, m.xid, errs[i])
			continue
		}
		if m.add {
			adds++
		} else {
			dels++
		}
	}
	s.mu.Lock()
	s.counters.FlowAdds += adds
	s.counters.FlowDels += dels
	s.mu.Unlock()
}

func (s *Switch) sendError(conn net.Conn, xid uint32, err error) {
	_ = s.writeMessage(conn, openflow.Message{
		Type: openflow.TypeError, Xid: xid,
		Body: openflow.MarshalError(err.Error()),
	})
}

// ProcessPacket classifies one packet header and applies the resulting
// action. Table misses and rules with the controller action punt the header
// to the controller when a control channel is connected.
//
// The classification itself runs outside the switch mutex — the classifier
// serves lookups lock-free from its published snapshot — so any number of
// goroutines can process packets concurrently with control-plane updates;
// the mutex only guards the packet counters and the connection handle.
func (s *Switch) ProcessPacket(h fivetuple.Header) (Verdict, error) {
	result := s.classifier.Lookup(h)
	verdict, punt := buildVerdict(result)

	s.mu.Lock()
	conn := s.conn
	s.countVerdict(result, punt && conn != nil)
	s.mu.Unlock()

	if !punt {
		return verdict, nil
	}
	if conn == nil {
		return verdict, ErrNotConnected
	}
	priority := uint32(0)
	if result.Matched {
		priority = uint32(result.Priority)
	}
	err := s.writeMessage(conn, openflow.Message{
		Type: openflow.TypePacketIn,
		Body: openflow.MarshalPacketIn(openflow.PacketIn{Header: h, RulePriority: priority}),
	})
	if err != nil {
		return verdict, fmt.Errorf("dataplane: packet-in: %w", err)
	}
	verdict.PuntedToController = true
	return verdict, nil
}

// buildVerdict maps one classification result to its verdict and reports
// whether the packet needs punting to the controller. Shared by the single
// and batched serving paths so the two can never drift.
func buildVerdict(result core.Result) (Verdict, bool) {
	v := Verdict{Matched: result.Matched}
	if !result.Matched {
		v.Action = fivetuple.ActionDrop
		return v, true
	}
	v.Action = result.Action
	v.RulePriority = result.Priority
	v.EgressPort = result.ActionArg
	return v, result.Action == fivetuple.ActionController
}

// countVerdict folds one classification result into the packet counters.
// The caller holds s.mu; punted reports whether a packet-in will be sent.
func (s *Switch) countVerdict(result core.Result, punted bool) {
	s.counters.Total++
	if !result.Matched {
		s.counters.TableMiss++
	} else {
		switch result.Action {
		case fivetuple.ActionForward:
			s.counters.Forwarded++
		case fivetuple.ActionDrop:
			s.counters.Dropped++
		case fivetuple.ActionModify:
			s.counters.Modified++
		case fivetuple.ActionGroup:
			s.counters.Grouped++
		}
	}
	if punted {
		s.counters.Punted++
	}
}

// ProcessBatch classifies a batch of packet headers against one consistent
// snapshot of the rule set (see core.LookupBatch) and applies the per-packet
// actions. Packets that need punting are sent as individual packet-in
// messages after classification; the counters are folded in under one lock
// acquisition for the whole batch. A nil error is returned when every punt
// succeeded (or nothing needed punting).
func (s *Switch) ProcessBatch(hs []fivetuple.Header) ([]Verdict, error) {
	if len(hs) == 0 {
		return nil, nil
	}
	results := s.classifier.LookupBatch(hs)
	verdicts := make([]Verdict, len(results))
	punts := make([]bool, len(results))
	for i, result := range results {
		verdicts[i], punts[i] = buildVerdict(result)
	}

	s.mu.Lock()
	conn := s.conn
	for i, result := range results {
		s.countVerdict(result, punts[i] && conn != nil)
	}
	s.mu.Unlock()

	var firstErr error
	for i, punt := range punts {
		if !punt {
			continue
		}
		if conn == nil {
			if firstErr == nil {
				firstErr = ErrNotConnected
			}
			continue
		}
		priority := uint32(0)
		if results[i].Matched {
			priority = uint32(results[i].Priority)
		}
		if err := s.writeMessage(conn, openflow.Message{
			Type: openflow.TypePacketIn,
			Body: openflow.MarshalPacketIn(openflow.PacketIn{Header: hs[i], RulePriority: priority}),
		}); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("dataplane: packet-in: %w", err)
			}
			continue
		}
		verdicts[i].PuntedToController = true
	}
	return verdicts, firstErr
}
