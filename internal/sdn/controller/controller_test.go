// Package controller_test integration-tests the SDN control loop: a
// controller and a data-plane switch talking the openflow package's protocol
// over a loopback TCP connection, with classification performed by the
// configurable architecture.
package controller_test

import (
	"net"
	"sync"
	"testing"
	"time"

	"sdnpc/internal/classbench"
	"sdnpc/internal/core"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/hw/memory"
	"sdnpc/internal/sdn/controller"
	"sdnpc/internal/sdn/dataplane"
	"sdnpc/internal/sdn/openflow"
)

// waitFor polls the condition until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// startController creates a controller serving on a loopback listener.
func startController(t *testing.T, rs *fivetuple.RuleSet, profile controller.ApplicationProfile, handler controller.PacketInHandler) (*controller.Controller, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctrl := controller.New(rs, profile, handler)
	go func() {
		_ = ctrl.Serve(ln)
	}()
	t.Cleanup(ctrl.Stop)
	return ctrl, ln.Addr().String()
}

func startSwitch(t *testing.T, addr string) *dataplane.Switch {
	t.Helper()
	sw, err := dataplane.New(core.DefaultConfig())
	if err != nil {
		t.Fatalf("dataplane.New: %v", err)
	}
	if err := sw.Connect(addr); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	t.Cleanup(sw.Close)
	return sw
}

func TestApplicationProfileMapping(t *testing.T) {
	if controller.ProfileThroughput.Algorithm() != memory.SelectMBT {
		t.Error("throughput profile should select the MBT")
	}
	if controller.ProfileCapacity.Algorithm() != memory.SelectBST {
		t.Error("capacity profile should select the BST")
	}
	if controller.ProfileThroughput.String() != "throughput" || controller.ProfileCapacity.String() != "capacity" {
		t.Error("profile names are wrong")
	}
	if controller.ApplicationProfile(9).String() == "" {
		t.Error("unknown profile should still render")
	}
}

func TestControllerDownloadsRuleSetOnConnect(t *testing.T) {
	rs := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: 120, Seed: 3})
	ctrl, addr := startController(t, rs, controller.ProfileThroughput, nil)
	sw := startSwitch(t, addr)

	waitFor(t, "rule download", func() bool {
		return sw.Counters().FlowAdds == uint64(rs.Len())
	})
	if got := sw.Classifier().RuleCount(); got != rs.Len() {
		t.Fatalf("classifier holds %d rules, want %d", got, rs.Len())
	}
	if sw.Classifier().IPEngineName() != "mbt" {
		t.Errorf("engine = %q, want mbt for the throughput profile", sw.Classifier().IPEngineName())
	}
	if len(ctrl.Switches()) != 1 {
		t.Errorf("controller sees %d switches, want 1", len(ctrl.Switches()))
	}

	// Classification on the downloaded table agrees with the reference.
	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{Packets: 100, Seed: 6, MatchFraction: 0.9})
	for _, h := range trace {
		wantIdx, wantOK := rs.Classify(h)
		verdict, err := sw.ProcessPacket(h)
		if err != nil {
			t.Fatalf("ProcessPacket: %v", err)
		}
		if verdict.Matched != wantOK || (wantOK && verdict.RulePriority != wantIdx) {
			t.Fatalf("verdict %+v, reference (%v, %d)", verdict, wantOK, wantIdx)
		}
	}
}

func TestCapacityProfileSelectsBST(t *testing.T) {
	rs := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: 50, Seed: 5})
	_, addr := startController(t, rs, controller.ProfileCapacity, nil)
	sw := startSwitch(t, addr)
	waitFor(t, "algorithm selection", func() bool {
		return sw.Classifier().IPEngineName() == "bst"
	})
	waitFor(t, "rule download", func() bool {
		return sw.Counters().FlowAdds == uint64(rs.Len())
	})
}

func TestIncrementalAddRemoveAndAlgorithmSwitch(t *testing.T) {
	rs := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: 60, Seed: 7})
	ctrl, addr := startController(t, rs, controller.ProfileThroughput, nil)
	sw := startSwitch(t, addr)
	waitFor(t, "initial download", func() bool {
		return sw.Counters().FlowAdds == uint64(rs.Len())
	})

	// Push one more rule at run time, at the highest priority so it shadows
	// the generated set's default rule.
	extra := fivetuple.Rule{
		SrcPrefix: fivetuple.MustParsePrefix("203.0.113.0/24"),
		DstPrefix: fivetuple.MustParsePrefix("198.51.100.0/24"),
		SrcPort:   fivetuple.WildcardPortRange(),
		DstPort:   fivetuple.ExactPort(8443),
		Protocol:  fivetuple.ExactProtocol(fivetuple.ProtoTCP),
		Priority:  0,
		Action:    fivetuple.ActionForward,
		ActionArg: 3,
	}
	if err := ctrl.AddRule(extra); err != nil {
		t.Fatalf("AddRule: %v", err)
	}
	waitFor(t, "incremental add", func() bool {
		return sw.Counters().FlowAdds == uint64(rs.Len()+1)
	})
	h := fivetuple.Header{
		SrcIP: fivetuple.MustParseIPv4("203.0.113.9"), DstIP: fivetuple.MustParseIPv4("198.51.100.7"),
		SrcPort: 5000, DstPort: 8443, Protocol: fivetuple.ProtoTCP,
	}
	verdict, err := sw.ProcessPacket(h)
	if err != nil {
		t.Fatalf("ProcessPacket: %v", err)
	}
	if !verdict.Matched || verdict.RulePriority != extra.Priority {
		t.Fatalf("verdict %+v, want the freshly pushed rule", verdict)
	}
	if len(ctrl.Rules()) != rs.Len()+1 {
		t.Errorf("controller rule count = %d, want %d", len(ctrl.Rules()), rs.Len()+1)
	}

	// Remove it again.
	if err := ctrl.RemoveRule(extra); err != nil {
		t.Fatalf("RemoveRule: %v", err)
	}
	waitFor(t, "incremental delete", func() bool {
		return sw.Counters().FlowDels == 1
	})
	if len(ctrl.Rules()) != rs.Len() {
		t.Errorf("controller rule count after remove = %d, want %d", len(ctrl.Rules()), rs.Len())
	}

	// Reconfigure the IP algorithm at run time (the IPalg_s signal).
	if err := ctrl.SelectAlgorithm(memory.SelectBST); err != nil {
		t.Fatalf("SelectAlgorithm: %v", err)
	}
	waitFor(t, "algorithm switch", func() bool {
		return sw.Classifier().IPEngineName() == "bst"
	})
	if ctrl.Algorithm() != memory.SelectBST {
		t.Error("controller did not record the new algorithm")
	}
	if err := ctrl.SelectAlgorithm(memory.AlgSelect(77)); err == nil {
		t.Error("SelectAlgorithm with an unknown algorithm should fail")
	}
	// Classification still agrees with the reference after the switch.
	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{Packets: 50, Seed: 11, MatchFraction: 1})
	for _, hh := range trace {
		wantIdx, wantOK := rs.Classify(hh)
		verdict, err := sw.ProcessPacket(hh)
		if err != nil {
			t.Fatalf("ProcessPacket: %v", err)
		}
		if verdict.Matched != wantOK || (wantOK && verdict.RulePriority != wantIdx) {
			t.Fatalf("post-switch verdict %+v, reference (%v, %d)", verdict, wantOK, wantIdx)
		}
	}
}

func TestPacketInReachesController(t *testing.T) {
	// A rule whose action is "controller" punts matching packets; the
	// controller's handler must observe them.
	var (
		mu     sync.Mutex
		punted []openflow.PacketIn
	)
	handler := func(sw string, p openflow.PacketIn) {
		mu.Lock()
		defer mu.Unlock()
		punted = append(punted, p)
	}
	rules := []fivetuple.Rule{
		{
			SrcPrefix: fivetuple.MustParsePrefix("0.0.0.0/0"),
			DstPrefix: fivetuple.MustParsePrefix("0.0.0.0/0"),
			SrcPort:   fivetuple.WildcardPortRange(),
			DstPort:   fivetuple.ExactPort(53),
			Protocol:  fivetuple.ExactProtocol(fivetuple.ProtoUDP),
			Priority:  0,
			Action:    fivetuple.ActionController,
		},
	}
	rs := fivetuple.NewRuleSet("punt", rules)
	ctrl, addr := startController(t, rs, controller.ProfileThroughput, handler)
	sw := startSwitch(t, addr)
	waitFor(t, "rule download", func() bool { return sw.Counters().FlowAdds == 1 })

	h := fivetuple.Header{
		SrcIP: fivetuple.MustParseIPv4("10.0.0.1"), DstIP: fivetuple.MustParseIPv4("8.8.8.8"),
		SrcPort: 5353, DstPort: 53, Protocol: fivetuple.ProtoUDP,
	}
	verdict, err := sw.ProcessPacket(h)
	if err != nil {
		t.Fatalf("ProcessPacket: %v", err)
	}
	if !verdict.PuntedToController {
		t.Fatalf("verdict %+v, want a punt", verdict)
	}
	// A table miss is also punted.
	miss := fivetuple.Header{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Protocol: fivetuple.ProtoGRE}
	if _, err := sw.ProcessPacket(miss); err != nil {
		t.Fatalf("ProcessPacket(miss): %v", err)
	}
	waitFor(t, "packet-in delivery", func() bool { return ctrl.PacketIns() == 2 })
	mu.Lock()
	defer mu.Unlock()
	if len(punted) != 2 || punted[0].Header != h {
		t.Fatalf("handler saw %+v", punted)
	}
	counters := sw.Counters()
	if counters.Punted != 2 || counters.TableMiss != 1 || counters.Total != 2 {
		t.Errorf("switch counters = %+v", counters)
	}
}

func TestControllerStopIsIdempotentAndRejectsFurtherWork(t *testing.T) {
	rs := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: 10, Seed: 1})
	ctrl, addr := startController(t, rs, controller.ProfileThroughput, nil)
	sw := startSwitch(t, addr)
	waitFor(t, "download", func() bool { return sw.Counters().FlowAdds == uint64(rs.Len()) })
	ctrl.Stop()
	ctrl.Stop() // idempotent
	if err := ctrl.AddRule(fivetuple.Wildcard(99, fivetuple.ActionDrop)); err == nil {
		t.Error("AddRule after Stop should fail")
	}
	if err := ctrl.SelectAlgorithm(memory.SelectBST); err == nil {
		t.Error("SelectAlgorithm after Stop should fail")
	}
}

func TestSwitchWithoutControllerReportsPuntFailure(t *testing.T) {
	sw, err := dataplane.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// No rules, no controller: a packet is a table miss that cannot be
	// punted.
	_, err = sw.ProcessPacket(fivetuple.Header{Protocol: fivetuple.ProtoTCP})
	if err == nil {
		t.Error("ProcessPacket without a controller should report the punt failure")
	}
}

func TestSelectEnginePropagatesToSwitch(t *testing.T) {
	rs := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: 20, Seed: 4})
	ctrl, addr := startController(t, rs, controller.ProfileThroughput, nil)
	sw := startSwitch(t, addr)
	waitFor(t, "download", func() bool { return sw.Classifier().RuleCount() == rs.Len() })

	if err := ctrl.SelectEngine("segtree"); err == nil {
		t.Error("a typo'd engine name should fail locally")
	}
	if got := ctrl.EngineName(); got != "" {
		t.Errorf("failed selection should not change state, got %q", got)
	}
	if err := ctrl.SelectEngine("segtrie"); err != nil {
		t.Fatalf("SelectEngine(segtrie): %v", err)
	}
	waitFor(t, "engine switch", func() bool { return sw.Classifier().IPEngineName() == "segtrie" })
	if sw.Classifier().RuleCount() != rs.Len() {
		t.Errorf("rules after engine switch = %d, want %d", sw.Classifier().RuleCount(), rs.Len())
	}

	// A late-joining switch receives the name-based selection during the
	// handshake download.
	sw2 := startSwitch(t, addr)
	waitFor(t, "late download", func() bool {
		return sw2.Classifier().RuleCount() == rs.Len() && sw2.Classifier().IPEngineName() == "segtrie"
	})
}
