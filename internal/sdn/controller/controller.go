// Package controller implements the SDN control plane of the paper's system
// (§III.A, §IV.A): it owns the rule set, decides which IP lookup algorithm
// the data plane should run ("the software controller chooses the optimal
// algorithm combination"), pushes rules and configuration over the control
// channel and receives punted packets.
//
// The controller listens for data-plane (switch) connections. On connect it
// sends a hello, the current algorithm selection and the full rule set; after
// that, AddRule, RemoveRule and SelectAlgorithm stream incremental updates to
// every connected switch — the fast incremental update path of §IV.A.
package controller

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"sdnpc/internal/engine"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/hw/memory"
	"sdnpc/internal/sdn/openflow"
)

// ApplicationProfile captures the application requirement that drives the
// algorithm choice (§III.A: "speed is the critical parameter for a Multi-end
// videoconferencing application").
type ApplicationProfile uint8

// Application profiles.
const (
	// ProfileThroughput prefers lookup speed: the controller selects the MBT.
	ProfileThroughput ApplicationProfile = iota + 1
	// ProfileCapacity prefers rule capacity and memory footprint: the
	// controller selects the BST.
	ProfileCapacity
)

// Algorithm returns the IP algorithm the profile maps to.
func (p ApplicationProfile) Algorithm() memory.AlgSelect {
	if p == ProfileCapacity {
		return memory.SelectBST
	}
	return memory.SelectMBT
}

// String names the profile.
func (p ApplicationProfile) String() string {
	switch p {
	case ProfileThroughput:
		return "throughput"
	case ProfileCapacity:
		return "capacity"
	default:
		return fmt.Sprintf("ApplicationProfile(%d)", uint8(p))
	}
}

// PacketInHandler is invoked for every packet punted by the data plane.
type PacketInHandler func(sw string, p openflow.PacketIn)

// Controller is the SDN controller.
type Controller struct {
	mu        sync.Mutex
	rules     []fivetuple.Rule
	algorithm memory.AlgSelect
	// engine, when non-empty, selects the IP engine by registry name and
	// overrides the legacy two-valued algorithm signal.
	engine  string
	handler PacketInHandler

	listener net.Listener
	switches map[string]*switchConn
	closed   bool
	wg       sync.WaitGroup

	packetIns uint64
	xid       uint32
}

// switchConn is one connected data plane.
type switchConn struct {
	id   string
	conn net.Conn
	mu   sync.Mutex // serialises writes
}

// New creates a controller pre-loaded with the rules of the given set (may
// be nil) and the algorithm chosen for the application profile.
func New(rs *fivetuple.RuleSet, profile ApplicationProfile, handler PacketInHandler) *Controller {
	c := &Controller{
		algorithm: profile.Algorithm(),
		handler:   handler,
		switches:  make(map[string]*switchConn),
	}
	if rs != nil {
		c.rules = rs.Rules()
	}
	return c
}

// ErrClosed is returned by operations on a stopped controller.
var ErrClosed = errors.New("controller: closed")

// Serve accepts data-plane connections on the listener until Stop is called.
// It blocks; run it in a goroutine and use Stop for shutdown.
func (c *Controller) Serve(ln net.Listener) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.listener = ln
	c.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("controller: accept: %w", err)
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handleSwitch(conn)
		}()
	}
}

// Stop closes the listener and every switch connection and waits for the
// per-connection goroutines to exit.
func (c *Controller) Stop() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	ln := c.listener
	conns := make([]*switchConn, 0, len(c.switches))
	for _, sw := range c.switches {
		conns = append(conns, sw)
	}
	c.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, sw := range conns {
		_ = sw.conn.Close()
	}
	c.wg.Wait()
}

// Switches returns the identifiers of the connected data planes.
func (c *Controller) Switches() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.switches))
	for id := range c.switches {
		out = append(out, id)
	}
	return out
}

// PacketIns returns the number of punted packets received.
func (c *Controller) PacketIns() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.packetIns
}

// Rules returns a copy of the controller's rule set.
func (c *Controller) Rules() []fivetuple.Rule {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]fivetuple.Rule, len(c.rules))
	copy(out, c.rules)
	return out
}

// Algorithm returns the currently selected IP algorithm.
func (c *Controller) Algorithm() memory.AlgSelect {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.algorithm
}

// EngineName returns the name-based engine selection, or "" when the legacy
// algorithm signal is in charge.
func (c *Controller) EngineName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.engine
}

func (c *Controller) nextXid() uint32 {
	c.xid++
	return c.xid
}

// handleSwitch performs the connection handshake, downloads the current
// configuration and then processes messages from the data plane.
func (c *Controller) handleSwitch(conn net.Conn) {
	id := conn.RemoteAddr().String()
	sw := &switchConn{id: id, conn: conn}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = conn.Close()
		return
	}
	c.switches[id] = sw
	rules := make([]fivetuple.Rule, len(c.rules))
	copy(rules, c.rules)
	alg := c.algorithm
	engineName := c.engine
	c.mu.Unlock()

	defer func() {
		c.mu.Lock()
		delete(c.switches, id)
		c.mu.Unlock()
		_ = conn.Close()
	}()

	// Handshake and full-state download.
	if err := sw.send(openflow.Message{Type: openflow.TypeHello, Xid: c.nextXid()}); err != nil {
		return
	}
	if err := sw.send(openflow.Message{
		Type: openflow.TypeSetAlgorithm, Xid: c.nextXid(),
		Body: openflow.MarshalSetAlgorithm(alg),
	}); err != nil {
		return
	}
	if engineName != "" {
		if err := sw.send(openflow.Message{
			Type: openflow.TypeSetEngine, Xid: c.nextXid(),
			Body: openflow.MarshalSetEngine(engineName),
		}); err != nil {
			return
		}
	}
	for _, r := range rules {
		if err := sw.send(openflow.Message{
			Type: openflow.TypeFlowAdd, Xid: c.nextXid(),
			Body: openflow.MarshalFlowMod(openflow.FlowMod{Rule: r}),
		}); err != nil {
			return
		}
	}
	if err := sw.send(openflow.Message{Type: openflow.TypeBarrierRequest, Xid: c.nextXid()}); err != nil {
		return
	}

	for {
		msg, err := openflow.Read(conn)
		if err != nil {
			return
		}
		switch msg.Type {
		case openflow.TypeHello, openflow.TypeBarrierReply:
			// Nothing to do.
		case openflow.TypePacketIn:
			pin, err := openflow.UnmarshalPacketIn(msg.Body)
			if err != nil {
				continue
			}
			c.mu.Lock()
			c.packetIns++
			handler := c.handler
			c.mu.Unlock()
			if handler != nil {
				handler(id, pin)
			}
		case openflow.TypeError:
			// Data-plane errors are counted as packet-in failures for now;
			// a production controller would reconcile state here.
		default:
			// Ignore unknown messages to stay forward compatible.
		}
	}
}

func (s *switchConn) send(m openflow.Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return openflow.Write(s.conn, m)
}

// broadcast sends a message to every connected switch.
func (c *Controller) broadcast(build func(xid uint32) openflow.Message) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	conns := make([]*switchConn, 0, len(c.switches))
	for _, sw := range c.switches {
		conns = append(conns, sw)
	}
	msg := build(c.nextXid())
	c.mu.Unlock()

	var firstErr error
	for _, sw := range conns {
		if err := sw.send(msg); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("controller: sending to %s: %w", sw.id, err)
		}
	}
	return firstErr
}

// AddRule appends a rule to the controller's rule set and pushes it to every
// connected data plane.
func (c *Controller) AddRule(r fivetuple.Rule) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.rules = append(c.rules, r)
	c.mu.Unlock()
	return c.broadcast(func(xid uint32) openflow.Message {
		return openflow.Message{
			Type: openflow.TypeFlowAdd, Xid: xid,
			Body: openflow.MarshalFlowMod(openflow.FlowMod{Rule: r}),
		}
	})
}

// RemoveRule removes the rule (matched by field values and priority) and
// pushes the deletion to every connected data plane.
func (c *Controller) RemoveRule(r fivetuple.Rule) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	for i := range c.rules {
		if c.rules[i].Priority == r.Priority && c.rules[i].String() == r.String() {
			c.rules = append(c.rules[:i], c.rules[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
	return c.broadcast(func(xid uint32) openflow.Message {
		return openflow.Message{
			Type: openflow.TypeFlowDelete, Xid: xid,
			Body: openflow.MarshalFlowMod(openflow.FlowMod{Rule: r}),
		}
	})
}

// SelectAlgorithm changes the IP algorithm selection and pushes the IPalg_s
// update to every connected data plane. It clears any name-based engine
// override.
func (c *Controller) SelectAlgorithm(alg memory.AlgSelect) error {
	if alg != memory.SelectMBT && alg != memory.SelectBST {
		return fmt.Errorf("controller: unknown algorithm %v", alg)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.algorithm = alg
	c.engine = ""
	c.mu.Unlock()
	return c.broadcast(func(xid uint32) openflow.Message {
		return openflow.Message{
			Type: openflow.TypeSetAlgorithm, Xid: xid,
			Body: openflow.MarshalSetAlgorithm(alg),
		}
	})
}

// SelectEngine changes the engine selection by registry name — either tier:
// a field engine re-programs the switches' IP-segment dimensions, a
// whole-packet engine moves them onto the packet tier — and pushes the
// update to every connected data plane. The name is validated against the
// local engine registry so a typo fails here instead of poisoning the
// controller state and being silently rejected by every switch.
func (c *Controller) SelectEngine(name string) error {
	if _, ok := engine.Selectable(name); !ok {
		return fmt.Errorf("controller: unknown engine %q (selectable: %v)", name, engine.SelectableNames())
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.engine = name
	c.mu.Unlock()
	return c.broadcast(func(xid uint32) openflow.Message {
		return openflow.Message{
			Type: openflow.TypeSetEngine, Xid: xid,
			Body: openflow.MarshalSetEngine(name),
		}
	})
}
