package openflow

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"sdnpc/internal/fivetuple"
	"sdnpc/internal/hw/memory"
)

func TestMessageRoundTrip(t *testing.T) {
	messages := []Message{
		{Type: TypeHello, Xid: 1},
		{Type: TypeFlowAdd, Xid: 42, Body: []byte{1, 2, 3}},
		{Type: TypeBarrierRequest, Xid: 7},
		{Type: TypeError, Xid: 9, Body: MarshalError("rule filter full")},
	}
	var buf bytes.Buffer
	for _, m := range messages {
		if err := Write(&buf, m); err != nil {
			t.Fatalf("Write(%v): %v", m.Type, err)
		}
	}
	for _, want := range messages {
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		if got.Type != want.Type || got.Xid != want.Xid || !bytes.Equal(got.Body, want.Body) {
			t.Errorf("round trip mismatch: got %+v, want %+v", got, want)
		}
	}
}

func TestWriteRejectsOversizedBody(t *testing.T) {
	var buf bytes.Buffer
	err := Write(&buf, Message{Type: TypeFlowAdd, Body: make([]byte, MaxBodyBytes+1)})
	if !errors.Is(err, ErrBadMessage) {
		t.Errorf("Write error = %v, want ErrBadMessage", err)
	}
}

func TestReadRejectsOversizedBody(t *testing.T) {
	// Hand-craft a frame whose declared length exceeds the limit.
	frame := []byte{byte(TypeFlowAdd), 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := Read(bytes.NewReader(frame)); !errors.Is(err, ErrBadMessage) {
		t.Errorf("Read error = %v, want ErrBadMessage", err)
	}
}

func TestReadRejectsTruncatedInput(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Message{Type: TypeFlowAdd, Xid: 3, Body: []byte{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("Read of %d/%d bytes should fail", cut, len(full))
		}
	}
}

func TestMsgTypeStrings(t *testing.T) {
	names := map[MsgType]string{
		TypeHello: "hello", TypeFlowAdd: "flow-add", TypeFlowDelete: "flow-delete",
		TypeSetAlgorithm: "set-algorithm", TypePacketIn: "packet-in",
		TypeBarrierRequest: "barrier-request", TypeBarrierReply: "barrier-reply", TypeError: "error",
	}
	for mt, want := range names {
		if mt.String() != want {
			t.Errorf("%d.String() = %q, want %q", mt, mt.String(), want)
		}
	}
	if MsgType(200).String() == "" {
		t.Error("unknown type should still render")
	}
}

func TestFlowModRoundTrip(t *testing.T) {
	rule := fivetuple.Rule{
		SrcPrefix: fivetuple.MustParsePrefix("10.1.0.0/16"),
		DstPrefix: fivetuple.MustParsePrefix("192.168.1.0/24"),
		SrcPort:   fivetuple.PortRange{Lo: 1024, Hi: 2048},
		DstPort:   fivetuple.ExactPort(443),
		Protocol:  fivetuple.ExactProtocol(fivetuple.ProtoTCP),
		Priority:  17,
		Action:    fivetuple.ActionModify,
		ActionArg: 9,
	}
	body := MarshalFlowMod(FlowMod{Rule: rule})
	got, err := UnmarshalFlowMod(body)
	if err != nil {
		t.Fatalf("UnmarshalFlowMod: %v", err)
	}
	if got.Rule != rule {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got.Rule, rule)
	}
}

func TestFlowModRoundTripProperty(t *testing.T) {
	f := func(srcAddr, dstAddr uint32, srcLen, dstLen uint8, spLo, spHi, dpLo, dpHi uint16, proto, mask uint8, prio uint16, action uint8, arg uint32) bool {
		rule := fivetuple.Rule{
			SrcPrefix: fivetuple.Prefix{Addr: fivetuple.IPv4(srcAddr), Len: srcLen % 33},
			DstPrefix: fivetuple.Prefix{Addr: fivetuple.IPv4(dstAddr), Len: dstLen % 33},
			SrcPort:   orderedRange(spLo, spHi),
			DstPort:   orderedRange(dpLo, dpHi),
			Protocol:  fivetuple.ProtocolMatch{Value: proto, Mask: mask},
			Priority:  int(prio),
			Action:    fivetuple.Action(action%5 + 1),
			ActionArg: arg,
		}
		got, err := UnmarshalFlowMod(MarshalFlowMod(FlowMod{Rule: rule}))
		return err == nil && got.Rule == rule
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func orderedRange(a, b uint16) fivetuple.PortRange {
	if a > b {
		a, b = b, a
	}
	return fivetuple.PortRange{Lo: a, Hi: b}
}

func TestUnmarshalFlowModRejectsBadInput(t *testing.T) {
	if _, err := UnmarshalFlowMod([]byte{1, 2, 3}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("short body error = %v, want ErrBadMessage", err)
	}
	// Corrupt the prefix length of a valid body.
	body := MarshalFlowMod(FlowMod{Rule: fivetuple.Wildcard(0, fivetuple.ActionDrop)})
	body[13] = 99
	if _, err := UnmarshalFlowMod(body); !errors.Is(err, ErrBadMessage) {
		t.Errorf("bad prefix length error = %v, want ErrBadMessage", err)
	}
	// Inverted port range.
	body = MarshalFlowMod(FlowMod{Rule: fivetuple.Wildcard(0, fivetuple.ActionDrop)})
	body[19], body[21] = 0xFF, 0x00
	body[20], body[22] = 0xFF, 0x01
	if _, err := UnmarshalFlowMod(body); !errors.Is(err, ErrBadMessage) {
		t.Errorf("inverted range error = %v, want ErrBadMessage", err)
	}
}

func TestSetAlgorithmRoundTrip(t *testing.T) {
	for _, alg := range []memory.AlgSelect{memory.SelectMBT, memory.SelectBST} {
		got, err := UnmarshalSetAlgorithm(MarshalSetAlgorithm(alg))
		if err != nil || got != alg {
			t.Errorf("round trip of %v = (%v, %v)", alg, got, err)
		}
	}
	if _, err := UnmarshalSetAlgorithm([]byte{}); !errors.Is(err, ErrBadMessage) {
		t.Error("empty body should fail")
	}
	if _, err := UnmarshalSetAlgorithm([]byte{99}); !errors.Is(err, ErrBadMessage) {
		t.Error("unknown algorithm should fail")
	}
}

func TestPacketInRoundTrip(t *testing.T) {
	p := PacketIn{
		Header: fivetuple.Header{
			SrcIP: fivetuple.MustParseIPv4("10.1.2.3"), DstIP: fivetuple.MustParseIPv4("192.0.2.9"),
			SrcPort: 31000, DstPort: 80, Protocol: fivetuple.ProtoTCP,
		},
		RulePriority: 12345,
	}
	got, err := UnmarshalPacketIn(MarshalPacketIn(p))
	if err != nil || got != p {
		t.Errorf("round trip = (%+v, %v), want %+v", got, err, p)
	}
	if _, err := UnmarshalPacketIn([]byte{1}); !errors.Is(err, ErrBadMessage) {
		t.Error("short packet-in body should fail")
	}
}

func TestErrorBodyRoundTrip(t *testing.T) {
	if got := UnmarshalError(MarshalError("boom")); got != "boom" {
		t.Errorf("error body round trip = %q", got)
	}
}
