// Package openflow implements the minimal control protocol between the SDN
// controller (software control plane) and the classification data plane.
//
// The paper's architecture is programmed by "an open protocol such as
// OpenFlow" (§III): the controller pushes flow rules, selects the IP lookup
// algorithm via the IPalg_s signal and receives packets punted by rules whose
// action is "send to controller". This package defines a compact
// length-prefixed binary encoding of exactly those messages, suitable for a
// TCP control channel; it is intentionally a small subset of OpenFlow rather
// than a full implementation of any specific protocol version.
//
// Wire format: every message is
//
//	type    uint8
//	xid     uint32 (big endian)
//	length  uint32 (big endian, body bytes)
//	body    length bytes
package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"sdnpc/internal/fivetuple"
	"sdnpc/internal/hw/memory"
)

// MsgType identifies a control message.
type MsgType uint8

// Control message types.
const (
	// TypeHello opens the control channel in both directions.
	TypeHello MsgType = iota + 1
	// TypeFlowAdd installs one classification rule.
	TypeFlowAdd
	// TypeFlowDelete removes one classification rule.
	TypeFlowDelete
	// TypeSetAlgorithm drives the IPalg_s configuration signal.
	TypeSetAlgorithm
	// TypePacketIn punts a packet header from the data plane to the
	// controller.
	TypePacketIn
	// TypeBarrierRequest asks the data plane to acknowledge that every
	// preceding update has been applied.
	TypeBarrierRequest
	// TypeBarrierReply acknowledges a barrier.
	TypeBarrierReply
	// TypeError reports a failed update.
	TypeError
	// TypeSetEngine selects the IP-segment field engine by registered name —
	// the generalised, name-based form of TypeSetAlgorithm.
	TypeSetEngine
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeFlowAdd:
		return "flow-add"
	case TypeFlowDelete:
		return "flow-delete"
	case TypeSetAlgorithm:
		return "set-algorithm"
	case TypePacketIn:
		return "packet-in"
	case TypeBarrierRequest:
		return "barrier-request"
	case TypeBarrierReply:
		return "barrier-reply"
	case TypeError:
		return "error"
	case TypeSetEngine:
		return "set-engine"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// MaxBodyBytes bounds the accepted body length, protecting the reader from
// hostile or corrupted length fields.
const MaxBodyBytes = 1 << 16

// Message is one framed control message.
type Message struct {
	Type MsgType
	Xid  uint32
	Body []byte
}

// ErrBadMessage reports a framing or encoding problem.
var ErrBadMessage = errors.New("openflow: malformed message")

// Write frames and writes a message.
func Write(w io.Writer, m Message) error {
	if len(m.Body) > MaxBodyBytes {
		return fmt.Errorf("%w: body of %d bytes exceeds limit", ErrBadMessage, len(m.Body))
	}
	header := make([]byte, 9)
	header[0] = byte(m.Type)
	binary.BigEndian.PutUint32(header[1:5], m.Xid)
	binary.BigEndian.PutUint32(header[5:9], uint32(len(m.Body)))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("openflow: writing header: %w", err)
	}
	if len(m.Body) > 0 {
		if _, err := w.Write(m.Body); err != nil {
			return fmt.Errorf("openflow: writing body: %w", err)
		}
	}
	return nil
}

// Read reads one framed message.
func Read(r io.Reader) (Message, error) {
	header := make([]byte, 9)
	if _, err := io.ReadFull(r, header); err != nil {
		return Message{}, fmt.Errorf("openflow: reading header: %w", err)
	}
	m := Message{
		Type: MsgType(header[0]),
		Xid:  binary.BigEndian.Uint32(header[1:5]),
	}
	length := binary.BigEndian.Uint32(header[5:9])
	if length > MaxBodyBytes {
		return Message{}, fmt.Errorf("%w: body length %d exceeds limit", ErrBadMessage, length)
	}
	if length > 0 {
		m.Body = make([]byte, length)
		if _, err := io.ReadFull(r, m.Body); err != nil {
			return Message{}, fmt.Errorf("openflow: reading body: %w", err)
		}
	}
	return m, nil
}

// flowModLen is the encoded size of a FlowMod body.
const flowModLen = 4 + 1 + 4 + 5 + 5 + 8 + 2

// FlowMod is the body of TypeFlowAdd and TypeFlowDelete.
type FlowMod struct {
	Rule fivetuple.Rule
}

// MarshalFlowMod encodes a flow modification body.
func MarshalFlowMod(f FlowMod) []byte {
	buf := make([]byte, 0, flowModLen)
	buf = binary.BigEndian.AppendUint32(buf, uint32(f.Rule.Priority))
	buf = append(buf, byte(f.Rule.Action))
	buf = binary.BigEndian.AppendUint32(buf, f.Rule.ActionArg)
	buf = binary.BigEndian.AppendUint32(buf, uint32(f.Rule.SrcPrefix.Addr))
	buf = append(buf, f.Rule.SrcPrefix.Len)
	buf = binary.BigEndian.AppendUint32(buf, uint32(f.Rule.DstPrefix.Addr))
	buf = append(buf, f.Rule.DstPrefix.Len)
	buf = binary.BigEndian.AppendUint16(buf, f.Rule.SrcPort.Lo)
	buf = binary.BigEndian.AppendUint16(buf, f.Rule.SrcPort.Hi)
	buf = binary.BigEndian.AppendUint16(buf, f.Rule.DstPort.Lo)
	buf = binary.BigEndian.AppendUint16(buf, f.Rule.DstPort.Hi)
	buf = append(buf, f.Rule.Protocol.Value, f.Rule.Protocol.Mask)
	return buf
}

// UnmarshalFlowMod decodes a flow modification body.
func UnmarshalFlowMod(body []byte) (FlowMod, error) {
	if len(body) != flowModLen {
		return FlowMod{}, fmt.Errorf("%w: flow mod body of %d bytes, want %d", ErrBadMessage, len(body), flowModLen)
	}
	var f FlowMod
	f.Rule.Priority = int(binary.BigEndian.Uint32(body[0:4]))
	f.Rule.Action = fivetuple.Action(body[4])
	f.Rule.ActionArg = binary.BigEndian.Uint32(body[5:9])
	f.Rule.SrcPrefix = fivetuple.Prefix{Addr: fivetuple.IPv4(binary.BigEndian.Uint32(body[9:13])), Len: body[13]}
	f.Rule.DstPrefix = fivetuple.Prefix{Addr: fivetuple.IPv4(binary.BigEndian.Uint32(body[14:18])), Len: body[18]}
	f.Rule.SrcPort = fivetuple.PortRange{Lo: binary.BigEndian.Uint16(body[19:21]), Hi: binary.BigEndian.Uint16(body[21:23])}
	f.Rule.DstPort = fivetuple.PortRange{Lo: binary.BigEndian.Uint16(body[23:25]), Hi: binary.BigEndian.Uint16(body[25:27])}
	f.Rule.Protocol = fivetuple.ProtocolMatch{Value: body[27], Mask: body[28]}
	if f.Rule.SrcPrefix.Len > 32 || f.Rule.DstPrefix.Len > 32 {
		return FlowMod{}, fmt.Errorf("%w: prefix length out of range", ErrBadMessage)
	}
	if f.Rule.SrcPort.Lo > f.Rule.SrcPort.Hi || f.Rule.DstPort.Lo > f.Rule.DstPort.Hi {
		return FlowMod{}, fmt.Errorf("%w: inverted port range", ErrBadMessage)
	}
	return f, nil
}

// MarshalSetAlgorithm encodes the IPalg_s selection body.
func MarshalSetAlgorithm(alg memory.AlgSelect) []byte {
	return []byte{byte(alg)}
}

// UnmarshalSetAlgorithm decodes the IPalg_s selection body.
func UnmarshalSetAlgorithm(body []byte) (memory.AlgSelect, error) {
	if len(body) != 1 {
		return 0, fmt.Errorf("%w: set-algorithm body of %d bytes, want 1", ErrBadMessage, len(body))
	}
	alg := memory.AlgSelect(body[0])
	if alg != memory.SelectMBT && alg != memory.SelectBST {
		return 0, fmt.Errorf("%w: unknown algorithm %d", ErrBadMessage, body[0])
	}
	return alg, nil
}

// maxEngineNameBytes bounds the accepted engine-name length.
const maxEngineNameBytes = 64

// MarshalSetEngine encodes an engine-selection body: the registered engine
// name as UTF-8.
func MarshalSetEngine(name string) []byte { return []byte(name) }

// UnmarshalSetEngine decodes an engine-selection body. Whether the name is
// actually registered is decided by the data plane's engine registry.
func UnmarshalSetEngine(body []byte) (string, error) {
	if len(body) == 0 {
		return "", fmt.Errorf("%w: empty set-engine body", ErrBadMessage)
	}
	if len(body) > maxEngineNameBytes {
		return "", fmt.Errorf("%w: set-engine body of %d bytes exceeds %d", ErrBadMessage, len(body), maxEngineNameBytes)
	}
	return string(body), nil
}

// packetInLen is the encoded size of a PacketIn body.
const packetInLen = 4 + 4 + 2 + 2 + 1 + 4

// PacketIn is the body of TypePacketIn: the punted header and the priority of
// the rule that punted it.
type PacketIn struct {
	Header       fivetuple.Header
	RulePriority uint32
}

// MarshalPacketIn encodes a packet-in body.
func MarshalPacketIn(p PacketIn) []byte {
	buf := make([]byte, 0, packetInLen)
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.Header.SrcIP))
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.Header.DstIP))
	buf = binary.BigEndian.AppendUint16(buf, p.Header.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, p.Header.DstPort)
	buf = append(buf, p.Header.Protocol)
	buf = binary.BigEndian.AppendUint32(buf, p.RulePriority)
	return buf
}

// UnmarshalPacketIn decodes a packet-in body.
func UnmarshalPacketIn(body []byte) (PacketIn, error) {
	if len(body) != packetInLen {
		return PacketIn{}, fmt.Errorf("%w: packet-in body of %d bytes, want %d", ErrBadMessage, len(body), packetInLen)
	}
	return PacketIn{
		Header: fivetuple.Header{
			SrcIP:    fivetuple.IPv4(binary.BigEndian.Uint32(body[0:4])),
			DstIP:    fivetuple.IPv4(binary.BigEndian.Uint32(body[4:8])),
			SrcPort:  binary.BigEndian.Uint16(body[8:10]),
			DstPort:  binary.BigEndian.Uint16(body[10:12]),
			Protocol: body[12],
		},
		RulePriority: binary.BigEndian.Uint32(body[13:17]),
	}, nil
}

// MarshalError encodes an error body (a UTF-8 description).
func MarshalError(description string) []byte { return []byte(description) }

// UnmarshalError decodes an error body.
func UnmarshalError(body []byte) string { return string(body) }
