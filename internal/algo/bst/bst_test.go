package bst

import (
	"math/rand"
	"testing"

	"sdnpc/internal/label"
)

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{name: "segment default", cfg: SegmentConfig(), wantErr: false},
		{name: "32-bit keys", cfg: Config{KeyBits: 32, NodeBits: 64, LabelEntryBits: 13}, wantErr: false},
		{name: "zero key bits", cfg: Config{KeyBits: 0, NodeBits: 32, LabelEntryBits: 13}, wantErr: true},
		{name: "too wide", cfg: Config{KeyBits: 33, NodeBits: 32, LabelEntryBits: 13}, wantErr: true},
		{name: "zero node width", cfg: Config{KeyBits: 16, NodeBits: 0, LabelEntryBits: 13}, wantErr: true},
		{name: "zero label width", cfg: Config{KeyBits: 16, NodeBits: 32, LabelEntryBits: 0}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Errorf("New() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew with invalid config did not panic")
		}
	}()
	MustNew(Config{})
}

func TestInsertLookupBasic(t *testing.T) {
	e := MustNew(SegmentConfig())
	inserts := []struct {
		value    uint32
		bits     uint8
		lbl      label.Label
		priority int
	}{
		{0xC0A8, 16, 1, 10},
		{0xC000, 4, 2, 20},
		{0x0000, 0, 3, 99},
		{0x8000, 1, 4, 5},
	}
	for _, in := range inserts {
		if _, err := e.Insert(in.value, in.bits, in.lbl, in.priority); err != nil {
			t.Fatalf("Insert(%#x/%d): %v", in.value, in.bits, err)
		}
	}
	tests := []struct {
		name       string
		key        uint32
		wantLabels []label.Label
	}{
		{name: "exact plus covering", key: 0xC0A8, wantLabels: []label.Label{4, 1, 2, 3}},
		{name: "only short prefixes", key: 0xC001, wantLabels: []label.Label{4, 2, 3}},
		{name: "only wildcard", key: 0x0001, wantLabels: []label.Label{3}},
		{name: "half-space prefix", key: 0xF000, wantLabels: []label.Label{4, 3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			list, accesses := e.Lookup(tt.key)
			got := list.Labels()
			if len(got) != len(tt.wantLabels) {
				t.Fatalf("Lookup(%#x) labels = %v, want %v", tt.key, got, tt.wantLabels)
			}
			for i := range tt.wantLabels {
				if got[i] != tt.wantLabels[i] {
					t.Fatalf("Lookup(%#x) labels = %v, want %v", tt.key, got, tt.wantLabels)
				}
			}
			if accesses < 1 || accesses > WorstCaseAccesses {
				t.Errorf("accesses = %d, want within [1,%d]", accesses, WorstCaseAccesses)
			}
		})
	}
}

func TestLookupOnEmptyEngine(t *testing.T) {
	e := MustNew(SegmentConfig())
	list, accesses := e.Lookup(0x1234)
	if list.Len() != 0 {
		t.Errorf("empty engine returned labels %v", list.Labels())
	}
	if accesses != 1 {
		t.Errorf("empty engine accesses = %d, want 1", accesses)
	}
}

func TestInsertRejectsBadPrefixes(t *testing.T) {
	e := MustNew(SegmentConfig())
	if _, err := e.Insert(0x1, 17, 1, 0); err == nil {
		t.Error("Insert with prefix longer than the key width should fail")
	}
	if _, err := e.Insert(0x10000, 16, 1, 0); err == nil {
		t.Error("Insert with value exceeding the key width should fail")
	}
	if _, err := e.Remove(0x1, 17, 1); err == nil {
		t.Error("Remove with bad prefix should fail")
	}
}

func TestRemoveAndRebuild(t *testing.T) {
	e := MustNew(SegmentConfig())
	if _, err := e.Insert(0x8000, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert(0x8080, 16, 2, 1); err != nil {
		t.Fatal(err)
	}
	if e.PrefixCount() != 2 {
		t.Fatalf("PrefixCount() = %d, want 2", e.PrefixCount())
	}
	if _, err := e.Remove(0x8080, 16, 2); err != nil {
		t.Fatal(err)
	}
	list, _ := e.Lookup(0x8080)
	if list.Len() != 1 || list.Labels()[0] != 1 {
		t.Errorf("labels after remove = %v, want [1]", list.Labels())
	}
	if _, err := e.Remove(0x8080, 16, 2); err == nil {
		t.Error("Remove of absent prefix should fail")
	}
	if _, err := e.Remove(0x8000, 1, 1); err != nil {
		t.Fatal(err)
	}
	if e.IntervalCount() != 0 || e.MemoryBits() != 0 {
		t.Errorf("empty engine still reports %d intervals / %d bits", e.IntervalCount(), e.MemoryBits())
	}
}

func TestDuplicateInsert(t *testing.T) {
	e := MustNew(SegmentConfig())
	if _, err := e.Insert(0x1200, 8, 1, 50); err != nil {
		t.Fatal(err)
	}
	before := e.PrefixCount()
	// Re-inserting with a worse priority changes nothing.
	writes, err := e.Insert(0x1200, 8, 1, 60)
	if err != nil || writes != 0 {
		t.Errorf("worse-priority duplicate insert = (%d, %v), want no writes", writes, err)
	}
	// Re-inserting with a better priority triggers a rebuild.
	if _, err := e.Insert(0x1200, 8, 1, 10); err != nil {
		t.Fatal(err)
	}
	if e.PrefixCount() != before {
		t.Errorf("duplicate insert changed prefix count to %d", e.PrefixCount())
	}
	list, _ := e.Lookup(0x1234)
	if items := list.Items(); len(items) != 1 || items[0].Priority != 10 {
		t.Errorf("items = %+v, want single label with priority 10", items)
	}
}

func TestMemoryEfficiencyVersusExpansion(t *testing.T) {
	// The point of the BST option: node storage grows with the number of
	// prefixes, not with prefix expansion. 100 random /16 prefixes need at
	// most 2*100+1 interval nodes.
	e := MustNew(SegmentConfig())
	rng := rand.New(rand.NewSource(5))
	inserted := make(map[uint32]bool)
	for len(inserted) < 100 {
		v := rng.Uint32() & 0xFFFF
		if inserted[v] {
			continue
		}
		inserted[v] = true
		if _, err := e.Insert(v, 16, label.Label(len(inserted)), len(inserted)); err != nil {
			t.Fatal(err)
		}
	}
	if e.IntervalCount() > 2*100+1 {
		t.Errorf("IntervalCount() = %d, want at most 201", e.IntervalCount())
	}
	if e.MemoryBits() != e.IntervalCount()*32 {
		t.Errorf("MemoryBits() = %d, want %d", e.MemoryBits(), e.IntervalCount()*32)
	}
	if e.LabelListBits() == 0 {
		t.Error("LabelListBits() should be non-zero")
	}
}

func TestWorstCaseAccessesConstant(t *testing.T) {
	// Table VI: the BST configuration is provisioned for 16 accesses per
	// packet on a 16-bit segment.
	e := MustNew(SegmentConfig())
	if e.WorstCaseAccessesFor() != 16 {
		t.Errorf("WorstCaseAccessesFor() = %d, want 16", e.WorstCaseAccessesFor())
	}
	narrow := MustNew(Config{KeyBits: 8, NodeBits: 32, LabelEntryBits: 13})
	if narrow.WorstCaseAccessesFor() != 8 {
		t.Errorf("narrow WorstCaseAccessesFor() = %d, want 8", narrow.WorstCaseAccessesFor())
	}
}

// referenceMatch reports whether the prefix matches the key.
func referenceMatch(value uint32, bits uint8, key uint32) bool {
	if bits == 0 {
		return true
	}
	shift := 16 - uint(bits)
	return value>>shift == key>>shift
}

func TestLookupAgainstReferenceProperty(t *testing.T) {
	e := MustNew(SegmentConfig())
	rng := rand.New(rand.NewSource(23))
	type pfx struct {
		value uint32
		bits  uint8
	}
	var stored []pfx
	for i := 0; i < 150; i++ {
		bits := uint8(rng.Intn(17))
		value := rng.Uint32() & 0xFFFF
		if bits < 16 {
			value = value >> (16 - uint(bits)) << (16 - uint(bits))
		}
		if bits == 0 {
			value = 0
		}
		dup := false
		for _, p := range stored {
			if p.value == value && p.bits == bits {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		stored = append(stored, pfx{value, bits})
		if _, err := e.Insert(value, bits, label.Label(len(stored)-1), len(stored)-1); err != nil {
			t.Fatal(err)
		}
	}
	maxAccesses := 0
	for i := 0; i < 2000; i++ {
		key := rng.Uint32() & 0xFFFF
		list, accesses := e.Lookup(key)
		if accesses > maxAccesses {
			maxAccesses = accesses
		}
		got := make(map[label.Label]bool)
		for _, l := range list.Labels() {
			got[l] = true
		}
		for idx, p := range stored {
			want := referenceMatch(p.value, p.bits, key)
			if got[label.Label(idx)] != want {
				t.Fatalf("key %#x prefix %#x/%d: bst=%v reference=%v", key, p.value, p.bits, got[label.Label(idx)], want)
			}
		}
	}
	if maxAccesses > WorstCaseAccesses {
		t.Errorf("observed %d accesses, exceeding the provisioned worst case %d", maxAccesses, WorstCaseAccesses)
	}
}

func TestLabelPriorityOrdering(t *testing.T) {
	e := MustNew(SegmentConfig())
	// Lower priority number = higher priority rule; the HPML must be first.
	if _, err := e.Insert(0x0000, 0, 7, 30); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert(0xAB00, 8, 8, 3); err != nil {
		t.Fatal(err)
	}
	list, _ := e.Lookup(0xAB12)
	hpml, ok := list.HPML()
	if !ok || hpml.Label != 8 || hpml.Priority != 3 {
		t.Errorf("HPML = %+v, want label 8 priority 3", hpml)
	}
}

func TestStats(t *testing.T) {
	e := MustNew(SegmentConfig())
	if _, err := e.Insert(0x1234, 16, 1, 0); err != nil {
		t.Fatal(err)
	}
	e.Lookup(0x1234)
	e.Lookup(0xFFFF)
	stats := e.Stats()
	if stats.Lookups != 2 || stats.LookupAccesses == 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Rebuilds != 1 {
		t.Errorf("Rebuilds = %d, want 1", stats.Rebuilds)
	}
	if stats.UpdateWrites == 0 {
		t.Error("UpdateWrites should be non-zero after an insert")
	}
	if stats.AverageAccesses() <= 0 {
		t.Error("AverageAccesses should be positive")
	}
	e.ResetStats()
	if s := e.Stats(); s.Lookups != 0 || s.LookupAccesses != 0 || s.UpdateWrites != 0 || s.Rebuilds != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
	if (Stats{}).AverageAccesses() != 0 {
		t.Error("AverageAccesses of zero lookups should be 0")
	}
}

func TestMemoryMuchSmallerThanMBTExpansion(t *testing.T) {
	// Sanity check of the paper's Table VI contrast: for the same prefix
	// population, BST node storage stays far below the MBT's expanded
	// level-3 node budget (the trie allocates 64-entry nodes, the BST only
	// boundary nodes).
	e := MustNew(SegmentConfig())
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		v := rng.Uint32() & 0xFFFF
		if _, err := e.Insert(v, 16, label.Label(i%4096), i); err != nil {
			t.Fatal(err)
		}
	}
	perPrefixBits := float64(e.MemoryBits()) / 500
	if perPrefixBits > 96 {
		t.Errorf("BST spends %.1f bits per /16 prefix, want well under an expanded trie node (2048 bits)", perPrefixBits)
	}
}
