// Package bst implements the Binary Search Tree (BST) single-field lookup
// engine, the memory-efficient IP-segment algorithm of the paper's
// configurable architecture (§IV.B, §IV.C).
//
// Interpretation. The paper describes the BST only briefly ("a binary data
// structure where the left branches contain lower values than the right
// branches; the tree depth is defined by input prefixes") and notes that it
// is rebuilt in software on update ("a balanced tree algorithm can be easily
// implemented in software and the information with the new structure can be
// applied in the architecture for each rule insertion"). This implementation
// follows that split:
//
//   - The stored prefixes are converted into disjoint elementary intervals of
//     the 16-bit segment space; each interval carries the label list of every
//     prefix covering it. The interval boundaries form a sorted array — the
//     in-order layout of a perfectly balanced BST — which the software
//     controller regenerates on every update and downloads to the block.
//   - A hardware lookup is a binary search over that array. The engine is
//     provisioned for the worst-case depth of a 16-bit segment, 16 iterations
//     with one memory access each, which is the figure the paper reports in
//     Table VI ("16 per packet"); the measured average is also tracked.
//
// The pay-off mirrors the paper's: node storage is proportional to the
// number of distinct prefixes (tens of Kbits) instead of the expanded trie
// levels (hundreds of Kbits), at the cost of a serial, non-pipelined lookup.
package bst

import (
	"fmt"
	"sort"
	"sync/atomic"

	"sdnpc/internal/label"
)

// WorstCaseAccesses is the number of memory accesses the hardware engine is
// provisioned for: one per bisection step of a 16-bit segment (Table VI).
const WorstCaseAccesses = 16

// Config describes the engine geometry.
type Config struct {
	// KeyBits is the width of lookup keys, at most 32. The architecture uses
	// 16-bit IP segments.
	KeyBits int
	// NodeBits is the storage width of one interval node (boundary value,
	// label-list pointer and flags), used for memory accounting.
	NodeBits int
	// LabelEntryBits is the width of one stored label in the Labels memory
	// block.
	LabelEntryBits int
}

// SegmentConfig returns the architecture's default geometry for one 16-bit
// IP segment: 32-bit interval nodes and 13-bit labels.
func SegmentConfig() Config {
	return Config{KeyBits: 16, NodeBits: 32, LabelEntryBits: 13}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.KeyBits < 1 || c.KeyBits > 32 {
		return fmt.Errorf("bst: key width %d out of range [1,32]", c.KeyBits)
	}
	if c.NodeBits < 1 {
		return fmt.Errorf("bst: node width must be positive")
	}
	if c.LabelEntryBits < 1 {
		return fmt.Errorf("bst: label entry width must be positive")
	}
	return nil
}

// storedPrefix is one (prefix, label) pair held by the engine.
type storedPrefix struct {
	value    uint32
	bits     uint8
	lbl      label.Label
	priority int
}

// interval is one elementary interval [start, end] of the key space with the
// labels of every covering prefix.
type interval struct {
	start  uint32
	end    uint32
	labels *label.List
}

// Engine is a Binary Search Tree lookup engine.
type Engine struct {
	cfg      Config
	prefixes []storedPrefix
	// intervals is the sorted elementary-interval array rebuilt by the
	// software side after each update.
	intervals []interval

	// The counters are atomic so that Lookup — read-only over the interval
	// array — is safe to call from many goroutines at once.
	lookups        atomic.Uint64
	lookupAccesses atomic.Uint64
	updateWrites   atomic.Uint64
	rebuilds       atomic.Uint64
}

// New creates an engine with the given configuration.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg}, nil
}

// MustNew is like New but panics on error.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

func (e *Engine) maxKey() uint32 {
	if e.cfg.KeyBits == 32 {
		return ^uint32(0)
	}
	return (1 << e.cfg.KeyBits) - 1
}

func (e *Engine) checkPrefix(value uint32, bits uint8) error {
	if int(bits) > e.cfg.KeyBits {
		return fmt.Errorf("bst: prefix length %d exceeds key width %d", bits, e.cfg.KeyBits)
	}
	if value > e.maxKey() {
		return fmt.Errorf("bst: prefix value %#x exceeds key width %d", value, e.cfg.KeyBits)
	}
	return nil
}

// Insert adds a prefix carrying a label and priority and rebuilds the
// interval array (the software-side rebuild the paper describes). The
// returned count is the number of node words written to the block — the full
// interval array, since the structure is re-downloaded.
func (e *Engine) Insert(value uint32, bits uint8, lbl label.Label, priority int) (writes int, err error) {
	if err := e.checkPrefix(value, bits); err != nil {
		return 0, err
	}
	for i, p := range e.prefixes {
		if p.value == value && p.bits == bits && p.lbl == lbl {
			if priority < p.priority {
				e.prefixes[i].priority = priority
				return e.rebuild(), nil
			}
			return 0, nil
		}
	}
	e.prefixes = append(e.prefixes, storedPrefix{value: value, bits: bits, lbl: lbl, priority: priority})
	return e.rebuild(), nil
}

// Remove deletes a (prefix, label) pair and rebuilds the interval array.
func (e *Engine) Remove(value uint32, bits uint8, lbl label.Label) (writes int, err error) {
	if err := e.checkPrefix(value, bits); err != nil {
		return 0, err
	}
	for i, p := range e.prefixes {
		if p.value == value && p.bits == bits && p.lbl == lbl {
			e.prefixes = append(e.prefixes[:i], e.prefixes[i+1:]...)
			return e.rebuild(), nil
		}
	}
	return 0, fmt.Errorf("bst: prefix %#x/%d with label %d not present", value, bits, lbl)
}

// prefixRange returns the key range covered by a prefix.
func (e *Engine) prefixRange(p storedPrefix) (uint32, uint32) {
	hostBits := uint32(e.cfg.KeyBits) - uint32(p.bits)
	if hostBits >= 32 {
		return 0, e.maxKey()
	}
	size := uint32(1) << hostBits
	start := p.value &^ (size - 1)
	return start, start + size - 1
}

// rebuild regenerates the elementary-interval array from the stored
// prefixes. It returns the number of node words written (the array length),
// which is the block-download cost of the update.
func (e *Engine) rebuild() int {
	e.rebuilds.Add(1)
	if len(e.prefixes) == 0 {
		e.intervals = nil
		return 0
	}
	// Collect interval boundaries: each prefix contributes its start and the
	// position just after its end.
	boundarySet := make(map[uint32]struct{}, 2*len(e.prefixes)+1)
	boundarySet[0] = struct{}{}
	for _, p := range e.prefixes {
		start, end := e.prefixRange(p)
		boundarySet[start] = struct{}{}
		if end < e.maxKey() {
			boundarySet[end+1] = struct{}{}
		}
	}
	boundaries := make([]uint32, 0, len(boundarySet))
	for b := range boundarySet {
		boundaries = append(boundaries, b)
	}
	sort.Slice(boundaries, func(i, j int) bool { return boundaries[i] < boundaries[j] })

	intervals := make([]interval, len(boundaries))
	for i, start := range boundaries {
		end := e.maxKey()
		if i+1 < len(boundaries) {
			end = boundaries[i+1] - 1
		}
		intervals[i] = interval{start: start, end: end, labels: &label.List{}}
	}
	// Attach covering prefixes. Elementary intervals never straddle a prefix
	// boundary, so coverage is decided by the interval start alone.
	for _, p := range e.prefixes {
		start, end := e.prefixRange(p)
		from := sort.Search(len(intervals), func(i int) bool { return intervals[i].start >= start })
		for i := from; i < len(intervals) && intervals[i].start <= end; i++ {
			intervals[i].labels.Insert(label.PriorityLabel{Label: p.lbl, Priority: p.priority})
		}
	}
	e.intervals = intervals
	e.updateWrites.Add(uint64(len(intervals)))
	return len(intervals)
}

// Lookup returns the priority-ordered list of labels of every prefix
// matching the key and the number of node-memory accesses performed by the
// binary search. The returned list is freshly allocated.
func (e *Engine) Lookup(key uint32) (*label.List, int) {
	result := &label.List{}
	return result, e.LookupInto(key, result)
}

// LookupInto is the allocation-free variant of Lookup: it resets out, fills
// it with the matching labels and returns the access count.
func (e *Engine) LookupInto(key uint32, out *label.List) int {
	e.lookups.Add(1)
	out.Reset()
	if len(e.intervals) == 0 {
		e.lookupAccesses.Add(1)
		return 1
	}
	accesses := 0
	lo, hi := 0, len(e.intervals)-1
	match := 0
	for lo <= hi {
		mid := (lo + hi) / 2
		accesses++
		if e.intervals[mid].start <= key {
			match = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	e.lookupAccesses.Add(uint64(accesses))
	out.Merge(e.intervals[match].labels)
	return accesses
}

// WorstCaseAccessesFor returns the per-packet access count the hardware is
// provisioned for (the figure used for throughput in Tables VI and VII).
func (e *Engine) WorstCaseAccessesFor() int {
	if e.cfg.KeyBits < WorstCaseAccesses {
		return e.cfg.KeyBits
	}
	return WorstCaseAccesses
}

// IntervalCount returns the number of elementary intervals currently stored.
func (e *Engine) IntervalCount() int { return len(e.intervals) }

// PrefixCount returns the number of stored (prefix, label) pairs.
func (e *Engine) PrefixCount() int { return len(e.prefixes) }

// MemoryBits returns the node storage consumed by the interval array.
func (e *Engine) MemoryBits() int { return len(e.intervals) * e.cfg.NodeBits }

// LabelListBits returns the Labels-memory storage consumed by the label
// lists attached to intervals.
func (e *Engine) LabelListBits() int {
	entries := 0
	for _, iv := range e.intervals {
		entries += iv.labels.Len()
	}
	return entries * e.cfg.LabelEntryBits
}

// Stats summarises the engine's access counters.
type Stats struct {
	Lookups        uint64
	LookupAccesses uint64
	UpdateWrites   uint64
	Rebuilds       uint64
}

// AverageAccesses returns the mean node accesses per lookup.
func (s Stats) AverageAccesses() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.LookupAccesses) / float64(s.Lookups)
}

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Lookups:        e.lookups.Load(),
		LookupAccesses: e.lookupAccesses.Load(),
		UpdateWrites:   e.updateWrites.Load(),
		Rebuilds:       e.rebuilds.Load(),
	}
}

// ResetStats zeroes the counters without touching the structure.
func (e *Engine) ResetStats() {
	e.lookups.Store(0)
	e.lookupAccesses.Store(0)
	e.updateWrites.Store(0)
	e.rebuilds.Store(0)
}

// Clone returns an independent copy of the engine. The stored prefixes are
// deep-copied because Insert refreshes priorities in place; the interval
// array can be shared because rebuild always replaces it wholesale with a
// freshly allocated one, never mutating an existing array or its label
// lists. Access counters carry over so cumulative statistics survive a
// copy-on-write snapshot swap in internal/core.
func (e *Engine) Clone() *Engine {
	c := &Engine{
		cfg:       e.cfg,
		prefixes:  append([]storedPrefix(nil), e.prefixes...),
		intervals: e.intervals,
	}
	c.lookups.Store(e.lookups.Load())
	c.lookupAccesses.Store(e.lookupAccesses.Load())
	c.updateWrites.Store(e.updateWrites.Load())
	c.rebuilds.Store(e.rebuilds.Load())
	return c
}
