package hypercuts

import (
	"fmt"
	"sort"

	"sdnpc/internal/fivetuple"
)

// Incremental updates. A HyperCuts tree is naturally delta-friendly: the
// internal nodes encode a fixed partition of the header space, so inserting
// or deleting one rule only changes the leaf rule lists — the cut structure
// is untouched. A delta walk visits every node once, renumbering the stored
// rule indices around the spliced position and editing the rule into (or out
// of) exactly the leaves whose region it overlaps. That is O(nodes + stored
// rule pointers) of integer work, versus the geometric recursion of a full
// Build.
//
// The price is drift: inserts can grow a leaf beyond binth (a fresh build
// would have split it), so the linear leaf scan slowly lengthens. The tree
// stays correct — Degradation quantifies the drift so a policy layer can
// amortise it away with an occasional rebuild.

// Clone returns a deep structural copy of the classifier: nodes, leaf rule
// lists and the rule table are all duplicated, so delta updates applied to
// the copy are never observable through the original. The cut descriptions
// (cutDims, cutsPer) are immutable after Build and stay shared. Lookup
// counters start at zero on the copy.
func (c *Classifier) Clone() *Classifier {
	cp := &Classifier{
		cfg:          c.cfg,
		rules:        append([]fivetuple.Rule(nil), c.rules...),
		nodeCount:    c.nodeCount,
		leafCount:    c.leafCount,
		rulePtrs:     c.rulePtrs,
		maxDepth:     c.maxDepth,
		maxLeaf:      c.maxLeaf,
		baseOverflow: c.baseOverflow,
		overflowPtrs: c.overflowPtrs,
		deltas:       c.deltas,
		deltaWrites:  c.deltaWrites,
	}
	cp.root = cloneNode(c.root)
	return cp
}

func cloneNode(n *node) *node {
	if n == nil {
		return nil
	}
	cp := &node{
		leafRules: append([]int(nil), n.leafRules...),
		cutDims:   n.cutDims,
		cutsPer:   n.cutsPer,
		region:    n.region,
	}
	if n.children != nil {
		cp.children = make([]*node, len(n.children))
		for i, ch := range n.children {
			cp.children[i] = cloneNode(ch)
		}
	}
	return cp
}

// InsertAt splices rule r into the classifier's best-first rule order at
// index idx and adds it to every leaf whose region the rule overlaps — the
// leaf-local delta update. Stored leaf indices at or above idx shift up by
// one during the same traversal, so the tree stays consistent with the new
// rule order without a rebuild.
func (c *Classifier) InsertAt(r fivetuple.Rule, idx int) error {
	if idx < 0 || idx > len(c.rules) {
		return fmt.Errorf("hypercuts: insert index %d out of range [0,%d]", idx, len(c.rules))
	}
	c.rules = append(c.rules, fivetuple.Rule{})
	copy(c.rules[idx+1:], c.rules[idx:])
	c.rules[idx] = r
	c.insertWalk(c.root, r, idx)
	c.deltas++
	return nil
}

func (c *Classifier) insertWalk(n *node, r fivetuple.Rule, idx int) {
	if n.isLeaf() {
		// Renumbering adds one to every index >= idx, which preserves the
		// ascending (best-first) order, so idx then lands at its search
		// position.
		for i, ri := range n.leafRules {
			if ri >= idx {
				n.leafRules[i] = ri + 1
			}
		}
		if ruleOverlapsRegion(r, n.region) {
			pos := sort.SearchInts(n.leafRules, idx)
			n.leafRules = append(n.leafRules, 0)
			copy(n.leafRules[pos+1:], n.leafRules[pos:])
			n.leafRules[pos] = idx
			c.rulePtrs++
			c.deltaWrites++
			if occ := len(n.leafRules); occ > c.maxLeaf {
				c.maxLeaf = occ
			}
			if len(n.leafRules) > c.cfg.Binth {
				c.overflowPtrs++
			}
		}
		return
	}
	for _, ch := range n.children {
		c.insertWalk(ch, r, idx)
	}
}

// DeleteAt removes the rule at index idx of the best-first order from every
// leaf storing it and renumbers the remaining indices down, then drops the
// rule from the rule table. Leaves are never re-merged; the (cheap) excess
// depth this can leave behind is amortised away by the policy layer's
// periodic rebuild.
func (c *Classifier) DeleteAt(idx int) error {
	if idx < 0 || idx >= len(c.rules) {
		return fmt.Errorf("hypercuts: delete index %d out of range [0,%d)", idx, len(c.rules))
	}
	c.deleteWalk(c.root, idx)
	c.rules = append(c.rules[:idx], c.rules[idx+1:]...)
	c.deltas++
	return nil
}

func (c *Classifier) deleteWalk(n *node, idx int) {
	if n.isLeaf() {
		pos := sort.SearchInts(n.leafRules, idx)
		if pos < len(n.leafRules) && n.leafRules[pos] == idx {
			if len(n.leafRules) > c.cfg.Binth {
				c.overflowPtrs--
			}
			n.leafRules = append(n.leafRules[:pos], n.leafRules[pos+1:]...)
			c.rulePtrs--
			c.deltaWrites++
		}
		for i, ri := range n.leafRules {
			if ri > idx {
				n.leafRules[i] = ri - 1
			}
		}
		return
	}
	for _, ch := range n.children {
		c.deleteWalk(ch, idx)
	}
}

// DeltaStats reports the delta debt accumulated since the tree was built.
type DeltaStats struct {
	// Deltas is the number of InsertAt/DeleteAt ops applied since Build.
	Deltas int
	// Writes is the number of leaf entries written or removed by those ops.
	Writes int
	// OverflowPtrs is the number of leaf entries beyond binth in excess of
	// what the build itself produced (deep or fully overlapping rule sets
	// can leave overfull leaves even in a fresh tree, which is not delta
	// drift).
	OverflowPtrs int
}

// DeltaStats returns the delta debt since Build.
func (c *Classifier) DeltaStats() DeltaStats {
	over := c.overflowPtrs - c.baseOverflow
	if over < 0 {
		over = 0
	}
	return DeltaStats{Deltas: c.deltas, Writes: c.deltaWrites, OverflowPtrs: over}
}

// Degradation estimates how far the delta-updated tree has drifted from a
// freshly built one, as the fraction of rules now sitting in overfull
// leaves: 0 right after a build, approaching 1 when the leaf scans have
// outgrown binth everywhere. The classifier stays correct regardless —
// degradation only measures lookup-cost drift.
func (c *Classifier) Degradation() float64 {
	if len(c.rules) == 0 {
		return 0
	}
	d := float64(c.DeltaStats().OverflowPtrs) / float64(len(c.rules))
	if d > 1 {
		d = 1
	}
	return d
}

// MaxLeafOccupancy returns an upper bound on the occupancy of the fullest
// leaf: exact after Build and after inserts; deletes may leave it stale
// high, which only overestimates the modelled worst case.
func (c *Classifier) MaxLeafOccupancy() int { return c.maxLeaf }

// initLeafMetrics derives the leaf-occupancy counters of a freshly built
// tree — the zero point the delta accounting measures drift from.
func (c *Classifier) initLeafMetrics() {
	c.overflowPtrs, c.maxLeaf = 0, 0
	var walk func(n *node)
	walk = func(n *node) {
		if n.isLeaf() {
			if l := len(n.leafRules); l > c.maxLeaf {
				c.maxLeaf = l
			}
			if over := len(n.leafRules) - c.cfg.Binth; over > 0 {
				c.overflowPtrs += over
			}
			return
		}
		for _, ch := range n.children {
			walk(ch)
		}
	}
	walk(c.root)
	c.baseOverflow = c.overflowPtrs
	c.deltas, c.deltaWrites = 0, 0
}
