package hypercuts

import (
	"fmt"
	"sort"

	"sdnpc/internal/fivetuple"
)

// Incremental updates. A HyperCuts tree is naturally delta-friendly: the
// internal nodes encode a fixed partition of the header space, so inserting
// or deleting one rule only changes the leaf rule lists — the cut structure
// is untouched. A delta pass visits every node record once, renumbering the
// stored rule indices around the spliced position and editing the rule into
// (or out of) exactly the leaves whose region it overlaps. On the flat tree
// that is one linear sweep of the arena — O(nodes + stored rule pointers) of
// integer work, versus the geometric recursion of a full Build. A leaf that
// outgrows its span's slack relocates into the spare region (the arena grows
// when even that runs out), so a delta never fails mid-structure.
//
// The price is drift: inserts can grow a leaf beyond binth (a fresh build
// would have split it), so the linear leaf scan slowly lengthens, and
// relocations leak their old spans until the next rebuild re-compacts. The
// tree stays correct — Degradation quantifies the drift so a policy layer
// can amortise it away with an occasional rebuild.

// Clone returns a deep structural copy of the classifier: the arena and the
// rule table are duplicated (two memcpys — the flat layout's copy-on-write
// dividend), so delta updates applied to the copy are never observable
// through the original. Lookup counters start at zero on the copy.
func (c *Classifier) Clone() *Classifier {
	cp := &Classifier{
		cfg:          c.cfg,
		rules:        append([]fivetuple.Rule(nil), c.rules...),
		ar:           c.ar.Clone(),
		bump:         c.bump,
		limit:        c.limit,
		nodeCount:    c.nodeCount,
		leafCount:    c.leafCount,
		rulePtrs:     c.rulePtrs,
		maxDepth:     c.maxDepth,
		maxLeaf:      c.maxLeaf,
		baseOverflow: c.baseOverflow,
		overflowPtrs: c.overflowPtrs,
		deltas:       c.deltas,
		deltaWrites:  c.deltaWrites,
	}
	cp.words = cp.ar.Words(0, cp.ar.WordLen())
	return cp
}

// InsertAt splices rule r into the classifier's best-first rule order at
// index idx and adds it to every leaf whose region the rule overlaps — the
// leaf-local delta update. Stored leaf indices at or above idx shift up by
// one during the same sweep, so the tree stays consistent with the new rule
// order without a rebuild.
func (c *Classifier) InsertAt(r fivetuple.Rule, idx int) error {
	if idx < 0 || idx > len(c.rules) {
		return fmt.Errorf("hypercuts: insert index %d out of range [0,%d]", idx, len(c.rules))
	}
	c.rules = append(c.rules, fivetuple.Rule{})
	copy(c.rules[idx+1:], c.rules[idx:])
	c.rules[idx] = r
	for ni := 0; ni < c.nodeCount; ni++ {
		base := ni * nodeWords
		w := c.words
		if w[base+nwFlags]&leafFlag == 0 {
			continue
		}
		off := int(w[base+nwA])
		n := int(w[base+nwB])
		// Renumbering adds one to every index >= idx, which preserves the
		// ascending (best-first) order, so idx then lands at its search
		// position.
		for j := 0; j < n; j++ {
			if int(w[off+j]) >= idx {
				w[off+j]++
			}
		}
		if !ruleOverlapsNode(r, w[base:base+nodeWords]) {
			continue
		}
		if spanCap := int(w[base+nwC]); n == spanCap {
			// The span is full: relocate it into the spare region with
			// doubled slack, leaking the old span until the next rebuild.
			newCap := 2*spanCap + 2
			noff := c.spareAlloc(newCap)
			w = c.words // spareAlloc may have grown the arena
			copy(w[noff:noff+n], w[off:off+n])
			off = noff
			w[base+nwA] = uint32(noff)
			w[base+nwC] = uint32(newCap)
		}
		span := w[off : off+n]
		pos := sort.Search(n, func(i int) bool { return int(span[i]) >= idx })
		w[off+n] = 0
		copy(w[off+pos+1:off+n+1], w[off+pos:off+n])
		w[off+pos] = uint32(idx)
		n++
		w[base+nwB] = uint32(n)
		c.rulePtrs++
		c.deltaWrites++
		if n > c.maxLeaf {
			c.maxLeaf = n
		}
		if n > c.cfg.Binth {
			c.overflowPtrs++
		}
	}
	c.deltas++
	return nil
}

// DeleteAt removes the rule at index idx of the best-first order from every
// leaf storing it and renumbers the remaining indices down, then drops the
// rule from the rule table. Leaves are never re-merged; the (cheap) excess
// depth this can leave behind is amortised away by the policy layer's
// periodic rebuild.
func (c *Classifier) DeleteAt(idx int) error {
	if idx < 0 || idx >= len(c.rules) {
		return fmt.Errorf("hypercuts: delete index %d out of range [0,%d)", idx, len(c.rules))
	}
	w := c.words
	for ni := 0; ni < c.nodeCount; ni++ {
		base := ni * nodeWords
		if w[base+nwFlags]&leafFlag == 0 {
			continue
		}
		off := int(w[base+nwA])
		n := int(w[base+nwB])
		span := w[off : off+n]
		pos := sort.Search(n, func(i int) bool { return int(span[i]) >= idx })
		if pos < n && int(span[pos]) == idx {
			if n > c.cfg.Binth {
				c.overflowPtrs--
			}
			copy(span[pos:], span[pos+1:])
			n--
			w[base+nwB] = uint32(n)
			c.rulePtrs--
			c.deltaWrites++
		}
		for j := 0; j < n; j++ {
			if int(w[off+j]) > idx {
				w[off+j]--
			}
		}
	}
	c.rules = append(c.rules[:idx], c.rules[idx+1:]...)
	c.deltas++
	return nil
}

// DeltaStats reports the delta debt accumulated since the tree was built.
type DeltaStats struct {
	// Deltas is the number of InsertAt/DeleteAt ops applied since Build.
	Deltas int
	// Writes is the number of leaf entries written or removed by those ops.
	Writes int
	// OverflowPtrs is the number of leaf entries beyond binth in excess of
	// what the build itself produced (deep or fully overlapping rule sets
	// can leave overfull leaves even in a fresh tree, which is not delta
	// drift).
	OverflowPtrs int
}

// DeltaStats returns the delta debt since Build.
func (c *Classifier) DeltaStats() DeltaStats {
	over := c.overflowPtrs - c.baseOverflow
	if over < 0 {
		over = 0
	}
	return DeltaStats{Deltas: c.deltas, Writes: c.deltaWrites, OverflowPtrs: over}
}

// Degradation estimates how far the delta-updated tree has drifted from a
// freshly built one, as the fraction of rules now sitting in overfull
// leaves: 0 right after a build, approaching 1 when the leaf scans have
// outgrown binth everywhere. The classifier stays correct regardless —
// degradation only measures lookup-cost drift.
func (c *Classifier) Degradation() float64 {
	if len(c.rules) == 0 {
		return 0
	}
	d := float64(c.DeltaStats().OverflowPtrs) / float64(len(c.rules))
	if d > 1 {
		d = 1
	}
	return d
}

// MaxLeafOccupancy returns an upper bound on the occupancy of the fullest
// leaf: exact after Build and after inserts; deletes may leave it stale
// high, which only overestimates the modelled worst case.
func (c *Classifier) MaxLeafOccupancy() int { return c.maxLeaf }

// initLeafMetrics derives the leaf-occupancy counters of a freshly built
// tree — the zero point the delta accounting measures drift from — with one
// linear sweep of the node records.
func (c *Classifier) initLeafMetrics() {
	c.overflowPtrs, c.maxLeaf = 0, 0
	w := c.words
	for ni := 0; ni < c.nodeCount; ni++ {
		base := ni * nodeWords
		if w[base+nwFlags]&leafFlag == 0 {
			continue
		}
		n := int(w[base+nwB])
		if n > c.maxLeaf {
			c.maxLeaf = n
		}
		if over := n - c.cfg.Binth; over > 0 {
			c.overflowPtrs += over
		}
	}
	c.baseOverflow = c.overflowPtrs
	c.deltas, c.deltaWrites = 0, 0
}
