package hypercuts

import (
	"math/rand"
	"testing"

	"sdnpc/internal/classbench"
	"sdnpc/internal/fivetuple"
)

// TestDeltaMatchesFreshBuild churns a built tree through a random
// insert/delete sequence via the delta ops and asserts that every verdict
// agrees with a tree freshly built over the final rule list and with the
// linear oracle.
func TestDeltaMatchesFreshBuild(t *testing.T) {
	rs := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: 200, Seed: 81})
	c, err := Build(rs, DefaultConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	live := append([]fivetuple.Rule(nil), rs.Rules()...)
	extra := classbench.Generate(classbench.Config{Class: classbench.FW, Rules: 120, Seed: 82}).Rules()
	rng := rand.New(rand.NewSource(83))
	next := 0
	for op := 0; op < 160; op++ {
		if (rng.Intn(2) == 0 || len(live) == 0) && next < len(extra) {
			idx := rng.Intn(len(live) + 1)
			r := extra[next]
			next++
			if err := c.InsertAt(r, idx); err != nil {
				t.Fatalf("InsertAt(%d): %v", idx, err)
			}
			live = append(live, fivetuple.Rule{})
			copy(live[idx+1:], live[idx:])
			live[idx] = r
		} else if len(live) > 0 {
			idx := rng.Intn(len(live))
			if err := c.DeleteAt(idx); err != nil {
				t.Fatalf("DeleteAt(%d): %v", idx, err)
			}
			live = append(live[:idx], live[idx+1:]...)
		}
	}
	if got := c.DeltaStats().Deltas; got != 160 {
		t.Errorf("DeltaStats.Deltas = %d, want 160", got)
	}

	finalSet := fivetuple.NewRuleSet("final", live)
	fresh, err := Build(finalSet, DefaultConfig())
	if err != nil {
		t.Fatalf("fresh Build over %d rules: %v", finalSet.Len(), err)
	}
	trace := classbench.GenerateTrace(finalSet, classbench.TraceConfig{Packets: 800, Seed: 84, MatchFraction: 0.85})
	for _, h := range trace {
		wantIdx, wantOK := finalSet.Classify(h)
		gotIdx, gotOK, _ := c.Classify(h)
		if gotOK != wantOK || (wantOK && gotIdx != wantIdx) {
			t.Fatalf("delta tree Classify(%s) = (%d,%v), oracle (%d,%v)", h, gotIdx, gotOK, wantIdx, wantOK)
		}
		freshIdx, freshOK, _ := fresh.Classify(h)
		if gotOK != freshOK || (gotOK && gotIdx != freshIdx) {
			t.Fatalf("delta tree Classify(%s) = (%d,%v), fresh build (%d,%v)", h, gotIdx, gotOK, freshIdx, freshOK)
		}
	}
}

// TestDeltaIndexBounds pins the range checks of the delta ops.
func TestDeltaIndexBounds(t *testing.T) {
	rs := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: 20, Seed: 5})
	c, err := Build(rs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := len(rs.Rules())
	if err := c.InsertAt(rs.Rule(0), n+1); err == nil {
		t.Error("InsertAt past the end should fail")
	}
	if err := c.InsertAt(rs.Rule(0), -1); err == nil {
		t.Error("InsertAt(-1) should fail")
	}
	if err := c.DeleteAt(n); err == nil {
		t.Error("DeleteAt(len) should fail")
	}
	if err := c.DeleteAt(-1); err == nil {
		t.Error("DeleteAt(-1) should fail")
	}
}

// TestCloneIsolation asserts that delta ops on a clone are never observable
// through the original: verdicts, delta counters and memory accounting of
// the original stay fixed.
func TestCloneIsolation(t *testing.T) {
	rs := classbench.Generate(classbench.Config{Class: classbench.IPC, Rules: 150, Seed: 21})
	orig, err := Build(rs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{Packets: 200, Seed: 22, MatchFraction: 0.9})
	type verdict struct {
		idx int
		ok  bool
	}
	before := make([]verdict, len(trace))
	for i, h := range trace {
		idx, ok, _ := orig.Classify(h)
		before[i] = verdict{idx, ok}
	}
	memBefore := orig.MemoryBits()

	cl := orig.Clone()
	for i := 0; i < 40; i++ {
		if err := cl.DeleteAt(0); err != nil {
			t.Fatalf("DeleteAt on clone: %v", err)
		}
	}
	if err := cl.InsertAt(rs.Rule(0), 0); err != nil {
		t.Fatalf("InsertAt on clone: %v", err)
	}
	if got := orig.DeltaStats().Deltas; got != 0 {
		t.Errorf("original DeltaStats.Deltas = %d after clone mutation, want 0", got)
	}
	if got := orig.MemoryBits(); got != memBefore {
		t.Errorf("original MemoryBits changed %d -> %d after clone mutation", memBefore, got)
	}
	for i, h := range trace {
		idx, ok, _ := orig.Classify(h)
		if idx != before[i].idx || ok != before[i].ok {
			t.Fatalf("original verdict for %s changed after clone mutation: (%d,%v) -> (%d,%v)",
				h, before[i].idx, before[i].ok, idx, ok)
		}
	}
}

// TestDegradationTracksLeafOverflow drives one leaf past binth and asserts
// the degradation signal rises from the build-time zero point.
func TestDegradationTracksLeafOverflow(t *testing.T) {
	// Identical full-wildcard rules all land in every leaf; a fresh build
	// over binth of them is a single full leaf with zero degradation.
	cfg := DefaultConfig()
	var rules []fivetuple.Rule
	for i := 0; i < cfg.Binth; i++ {
		rules = append(rules, fivetuple.Wildcard(i, fivetuple.ActionForward))
	}
	c, err := Build(fivetuple.NewRuleSet("wild", rules), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Degradation(); got != 0 {
		t.Fatalf("fresh build degradation = %v, want 0", got)
	}
	for i := 0; i < cfg.Binth; i++ {
		if err := c.InsertAt(fivetuple.Wildcard(0, fivetuple.ActionDrop), 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Degradation(); got <= 0.4 {
		t.Errorf("degradation after doubling a full leaf = %v, want > 0.4", got)
	}
	if got := c.DeltaStats().OverflowPtrs; got != cfg.Binth {
		t.Errorf("OverflowPtrs = %d, want %d", got, cfg.Binth)
	}
	if got := c.MaxLeafOccupancy(); got < 2*cfg.Binth {
		t.Errorf("MaxLeafOccupancy = %d, want >= %d", got, 2*cfg.Binth)
	}
	// Deleting back down clears the overflow.
	for i := 0; i < cfg.Binth; i++ {
		if err := c.DeleteAt(0); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.DeltaStats().OverflowPtrs; got != 0 {
		t.Errorf("OverflowPtrs after shrinking back = %d, want 0", got)
	}
}
