// Package hypercuts implements the HyperCuts decision-tree packet classifier
// (Singh et al., SIGCOMM 2003), the decision-tree baseline of Table I.
//
// HyperCuts recursively partitions the multi-dimensional rule space: each
// internal node cuts one or more dimensions into equal-sized slices and every
// child receives the rules overlapping its slice. Recursion stops when a node
// holds at most binth rules (a leaf), which are then searched linearly.
// Lookup walks one child per level and finishes with the leaf's linear scan;
// the number of memory accesses is the path length plus the leaf occupancy —
// the quantity behind HyperCuts' Table I row.
package hypercuts

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"sdnpc/internal/fivetuple"
)

// Config parameterises tree construction.
type Config struct {
	// Binth is the maximum number of rules in a leaf.
	Binth int
	// SpaceFactor bounds the number of cuts per node: the cut count chosen
	// for a node is at most SpaceFactor * sqrt(rules at the node), the
	// heuristic from the HyperCuts paper.
	SpaceFactor float64
	// MaxCutsPerNode caps the total child count of one node.
	MaxCutsPerNode int
	// MaxDepth bounds recursion as a safety net for highly overlapping rule
	// sets.
	MaxDepth int
}

// DefaultConfig returns the construction parameters commonly used in
// HyperCuts evaluations (binth 16, space factor 4).
func DefaultConfig() Config {
	return Config{Binth: 16, SpaceFactor: 4, MaxCutsPerNode: 64, MaxDepth: 32}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Binth < 1 {
		return fmt.Errorf("hypercuts: binth %d must be positive", c.Binth)
	}
	if c.SpaceFactor <= 0 {
		return fmt.Errorf("hypercuts: space factor %v must be positive", c.SpaceFactor)
	}
	if c.MaxCutsPerNode < 2 {
		return fmt.Errorf("hypercuts: max cuts %d must be at least 2", c.MaxCutsPerNode)
	}
	if c.MaxDepth < 1 {
		return fmt.Errorf("hypercuts: max depth %d must be positive", c.MaxDepth)
	}
	return nil
}

// region is a hyper-rectangle of the 5-dimensional header space.
type region struct {
	lo [fivetuple.NumFields]uint64
	hi [fivetuple.NumFields]uint64
}

func fullRegion() region {
	var r region
	for i, f := range fivetuple.Fields() {
		r.lo[i] = 0
		r.hi[i] = dimensionMax(f)
	}
	return r
}

func dimensionMax(f fivetuple.Field) uint64 {
	switch f {
	case fivetuple.FieldSrcIP, fivetuple.FieldDstIP:
		return math.MaxUint32
	case fivetuple.FieldSrcPort, fivetuple.FieldDstPort:
		return math.MaxUint16
	default:
		return math.MaxUint8
	}
}

// ruleRange returns the rule's covered range in the given dimension.
func ruleRange(r fivetuple.Rule, f fivetuple.Field) (uint64, uint64) {
	switch f {
	case fivetuple.FieldSrcIP:
		p := r.SrcPrefix.Canonical()
		span := uint64(1) << (32 - uint64(p.Len))
		return uint64(p.Addr), uint64(p.Addr) + span - 1
	case fivetuple.FieldDstIP:
		p := r.DstPrefix.Canonical()
		span := uint64(1) << (32 - uint64(p.Len))
		return uint64(p.Addr), uint64(p.Addr) + span - 1
	case fivetuple.FieldSrcPort:
		return uint64(r.SrcPort.Lo), uint64(r.SrcPort.Hi)
	case fivetuple.FieldDstPort:
		return uint64(r.DstPort.Lo), uint64(r.DstPort.Hi)
	default:
		if r.Protocol.IsWildcard() {
			return 0, 255
		}
		return uint64(r.Protocol.Value), uint64(r.Protocol.Value)
	}
}

func headerValue(h fivetuple.Header, f fivetuple.Field) uint64 {
	switch f {
	case fivetuple.FieldSrcIP:
		return uint64(h.SrcIP)
	case fivetuple.FieldDstIP:
		return uint64(h.DstIP)
	case fivetuple.FieldSrcPort:
		return uint64(h.SrcPort)
	case fivetuple.FieldDstPort:
		return uint64(h.DstPort)
	default:
		return uint64(h.Protocol)
	}
}

// node is one decision-tree node.
type node struct {
	// Leaf nodes hold rule indices; internal nodes hold the cut description
	// and children.
	leafRules []int

	cutDims  []int // indices into fivetuple.Fields()
	cutsPer  []int // number of slices per cut dimension
	children []*node
	region   region
}

func (n *node) isLeaf() bool { return n.children == nil }

// Classifier is a HyperCuts decision tree built from a rule set.
type Classifier struct {
	cfg   Config
	rules []fivetuple.Rule
	root  *node

	nodeCount int
	leafCount int
	rulePtrs  int
	maxDepth  int

	// Delta accounting (see delta.go): leaf-occupancy metrics anchored at
	// Build time, and the op/write counters of updates applied since.
	maxLeaf      int
	baseOverflow int
	overflowPtrs int
	deltas       int
	deltaWrites  int

	// Atomic so that a built classifier can serve Classify from any number
	// of goroutines concurrently (read-only after build).
	lookups        atomic.Uint64
	lookupAccesses atomic.Uint64
}

// Build constructs a HyperCuts tree for the rule set.
func Build(rs *fivetuple.RuleSet, cfg Config) (*Classifier, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rs.Len() == 0 {
		return nil, fmt.Errorf("hypercuts: empty rule set")
	}
	c := &Classifier{cfg: cfg, rules: rs.Rules()}
	all := make([]int, len(c.rules))
	for i := range all {
		all[i] = i
	}
	c.root = c.build(all, fullRegion(), 0)
	c.initLeafMetrics()
	return c, nil
}

func (c *Classifier) build(ruleIdx []int, reg region, depth int) *node {
	c.nodeCount++
	if depth > c.maxDepth {
		c.maxDepth = depth
	}
	n := &node{region: reg}
	if len(ruleIdx) <= c.cfg.Binth || depth >= c.cfg.MaxDepth {
		n.leafRules = append([]int(nil), ruleIdx...)
		sort.Ints(n.leafRules)
		c.leafCount++
		c.rulePtrs += len(n.leafRules)
		return n
	}

	dims, cuts := c.chooseCuts(ruleIdx, reg)
	if len(dims) == 0 {
		n.leafRules = append([]int(nil), ruleIdx...)
		sort.Ints(n.leafRules)
		c.leafCount++
		c.rulePtrs += len(n.leafRules)
		return n
	}
	n.cutDims = dims
	n.cutsPer = cuts

	totalChildren := 1
	for _, k := range cuts {
		totalChildren *= k
	}
	n.children = make([]*node, totalChildren)
	for child := 0; child < totalChildren; child++ {
		childReg := childRegion(reg, dims, cuts, child)
		var childRules []int
		for _, ri := range ruleIdx {
			if ruleOverlapsRegion(c.rules[ri], childReg) {
				childRules = append(childRules, ri)
			}
		}
		// Heuristic guard: a child that did not shrink its rule list becomes
		// a leaf to prevent unbounded recursion on fully overlapping rules.
		if len(childRules) == len(ruleIdx) {
			leaf := &node{region: childReg, leafRules: append([]int(nil), childRules...)}
			sort.Ints(leaf.leafRules)
			c.nodeCount++
			c.leafCount++
			c.rulePtrs += len(leaf.leafRules)
			n.children[child] = leaf
			continue
		}
		n.children[child] = c.build(childRules, childReg, depth+1)
	}
	return n
}

// chooseCuts picks the dimensions to cut (those with the most distinct rule
// projections) and the number of slices per dimension.
func (c *Classifier) chooseCuts(ruleIdx []int, reg region) (dims []int, cuts []int) {
	fields := fivetuple.Fields()
	type dimScore struct {
		dim      int
		distinct int
	}
	scores := make([]dimScore, 0, len(fields))
	for di, f := range fields {
		if reg.hi[di] == reg.lo[di] {
			continue // nothing left to cut in this dimension
		}
		uniq := make(map[[2]uint64]struct{})
		for _, ri := range ruleIdx {
			lo, hi := ruleRange(c.rules[ri], f)
			uniq[[2]uint64{lo, hi}] = struct{}{}
		}
		if len(uniq) > 1 {
			scores = append(scores, dimScore{dim: di, distinct: len(uniq)})
		}
	}
	if len(scores) == 0 {
		return nil, nil
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].distinct > scores[j].distinct })
	// Cut the best one or two dimensions (the HyperCuts multi-dimensional
	// cut), splitting the cut budget between them.
	budget := int(c.cfg.SpaceFactor * math.Sqrt(float64(len(ruleIdx))))
	if budget > c.cfg.MaxCutsPerNode {
		budget = c.cfg.MaxCutsPerNode
	}
	if budget < 2 {
		budget = 2
	}
	chosen := scores
	if len(chosen) > 2 {
		chosen = chosen[:2]
	}
	if len(chosen) == 1 {
		return []int{chosen[0].dim}, []int{budget}
	}
	per := int(math.Sqrt(float64(budget)))
	if per < 2 {
		per = 2
	}
	return []int{chosen[0].dim, chosen[1].dim}, []int{per, per}
}

// childRegion computes the sub-region of the child with the given index.
func childRegion(parent region, dims, cuts []int, child int) region {
	reg := parent
	for i, di := range dims {
		k := cuts[i]
		slice := child % k
		child /= k
		span := parent.hi[di] - parent.lo[di] + 1
		width := span / uint64(k)
		if width == 0 {
			width = 1
		}
		lo := parent.lo[di] + uint64(slice)*width
		hi := lo + width - 1
		if slice == k-1 || hi > parent.hi[di] {
			hi = parent.hi[di]
		}
		if lo > parent.hi[di] {
			lo = parent.hi[di]
		}
		reg.lo[di] = lo
		reg.hi[di] = hi
	}
	return reg
}

func ruleOverlapsRegion(r fivetuple.Rule, reg region) bool {
	for di, f := range fivetuple.Fields() {
		lo, hi := ruleRange(r, f)
		if hi < reg.lo[di] || lo > reg.hi[di] {
			return false
		}
	}
	return true
}

// Classify returns the index of the highest-priority matching rule, whether
// any rule matched and the number of memory accesses (tree nodes visited plus
// leaf rules scanned).
func (c *Classifier) Classify(h fivetuple.Header) (ruleIndex int, matched bool, accesses int) {
	c.lookups.Add(1)
	n := c.root
	for !n.isLeaf() {
		accesses++
		child := 0
		mult := 1
		for i, di := range n.cutDims {
			k := n.cutsPer[i]
			span := n.region.hi[di] - n.region.lo[di] + 1
			width := span / uint64(k)
			if width == 0 {
				width = 1
			}
			v := headerValue(h, fivetuple.Fields()[di])
			if v < n.region.lo[di] {
				v = n.region.lo[di]
			}
			slice := int((v - n.region.lo[di]) / width)
			if slice >= k {
				slice = k - 1
			}
			child += slice * mult
			mult *= k
		}
		n = n.children[child]
	}
	accesses++ // reading the leaf header
	best := -1
	for _, ri := range n.leafRules {
		accesses++
		if c.rules[ri].Matches(h) {
			best = ri
			break // leaf rules are sorted by priority
		}
	}
	c.lookupAccesses.Add(uint64(accesses))
	if best < 0 {
		return 0, false, accesses
	}
	return best, true, accesses
}

// NodeCount returns the number of tree nodes.
func (c *Classifier) NodeCount() int { return c.nodeCount }

// LeafCount returns the number of leaves.
func (c *Classifier) LeafCount() int { return c.leafCount }

// Depth returns the maximum tree depth.
func (c *Classifier) Depth() int { return c.maxDepth }

// MemoryBits returns the storage consumed by the tree: each node header
// stores its cut description and child pointer base (~128 bits), plus one
// 14-bit rule pointer per stored leaf rule and the rule table itself (each
// rule ~144 bits of match data).
func (c *Classifier) MemoryBits() int {
	const nodeBits = 128
	const rulePtrBits = 14
	const ruleBits = 144
	return c.nodeCount*nodeBits + c.rulePtrs*rulePtrBits + len(c.rules)*ruleBits
}

// Stats summarises lookup counters.
type Stats struct {
	Lookups        uint64
	LookupAccesses uint64
}

// AverageAccesses returns the mean memory accesses per lookup.
func (s Stats) AverageAccesses() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.LookupAccesses) / float64(s.Lookups)
}

// Stats returns a snapshot of the counters.
func (c *Classifier) Stats() Stats {
	return Stats{Lookups: c.lookups.Load(), LookupAccesses: c.lookupAccesses.Load()}
}

// ResetStats zeroes the counters without touching the built tree.
func (c *Classifier) ResetStats() {
	c.lookups.Store(0)
	c.lookupAccesses.Store(0)
}
