// Package hypercuts implements the HyperCuts decision-tree packet classifier
// (Singh et al., SIGCOMM 2003), the decision-tree baseline of Table I.
//
// HyperCuts recursively partitions the multi-dimensional rule space: each
// internal node cuts one or more dimensions into equal-sized slices and every
// child receives the rules overlapping its slice. Recursion stops when a node
// holds at most binth rules (a leaf), which are then searched linearly.
// Lookup walks one child per level and finishes with the leaf's linear scan;
// the number of memory accesses is the path length plus the leaf occupancy —
// the quantity behind HyperCuts' Table I row.
//
// The built tree is flat: Build lays every node out as a fixed 14-word
// record in one contiguous arena, children linked by node index instead of
// pointer, leaf rule lists as index spans with slack capacity for in-place
// delta inserts. The published structure is two pointer-free allocations
// (the arena and the rule table), which the collector scans in O(1), and
// Classify allocates nothing.
package hypercuts

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"sdnpc/internal/arena"
	"sdnpc/internal/fivetuple"
)

// Config parameterises tree construction.
type Config struct {
	// Binth is the maximum number of rules in a leaf.
	Binth int
	// SpaceFactor bounds the number of cuts per node: the cut count chosen
	// for a node is at most SpaceFactor * sqrt(rules at the node), the
	// heuristic from the HyperCuts paper.
	SpaceFactor float64
	// MaxCutsPerNode caps the total child count of one node.
	MaxCutsPerNode int
	// MaxDepth bounds recursion as a safety net for highly overlapping rule
	// sets.
	MaxDepth int
}

// DefaultConfig returns the construction parameters commonly used in
// HyperCuts evaluations (binth 16, space factor 4).
func DefaultConfig() Config {
	return Config{Binth: 16, SpaceFactor: 4, MaxCutsPerNode: 64, MaxDepth: 32}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Binth < 1 {
		return fmt.Errorf("hypercuts: binth %d must be positive", c.Binth)
	}
	if c.SpaceFactor <= 0 {
		return fmt.Errorf("hypercuts: space factor %v must be positive", c.SpaceFactor)
	}
	if c.MaxCutsPerNode < 2 {
		return fmt.Errorf("hypercuts: max cuts %d must be at least 2", c.MaxCutsPerNode)
	}
	if c.MaxDepth < 1 {
		return fmt.Errorf("hypercuts: max depth %d must be positive", c.MaxDepth)
	}
	return nil
}

// region is a hyper-rectangle of the 5-dimensional header space. Every
// dimension is at most 32 bits wide, so the bounds fit uint32 in the flat
// node records; the build keeps them as uint64 for overflow-free width
// arithmetic.
type region struct {
	lo [fivetuple.NumFields]uint64
	hi [fivetuple.NumFields]uint64
}

func fullRegion() region {
	var r region
	for i, f := range fivetuple.Fields() {
		r.lo[i] = 0
		r.hi[i] = dimensionMax(f)
	}
	return r
}

func dimensionMax(f fivetuple.Field) uint64 {
	switch f {
	case fivetuple.FieldSrcIP, fivetuple.FieldDstIP:
		return math.MaxUint32
	case fivetuple.FieldSrcPort, fivetuple.FieldDstPort:
		return math.MaxUint16
	default:
		return math.MaxUint8
	}
}

// ruleRange returns the rule's covered range in the given dimension.
func ruleRange(r fivetuple.Rule, f fivetuple.Field) (uint64, uint64) {
	switch f {
	case fivetuple.FieldSrcIP:
		p := r.SrcPrefix.Canonical()
		span := uint64(1) << (32 - uint64(p.Len))
		return uint64(p.Addr), uint64(p.Addr) + span - 1
	case fivetuple.FieldDstIP:
		p := r.DstPrefix.Canonical()
		span := uint64(1) << (32 - uint64(p.Len))
		return uint64(p.Addr), uint64(p.Addr) + span - 1
	case fivetuple.FieldSrcPort:
		return uint64(r.SrcPort.Lo), uint64(r.SrcPort.Hi)
	case fivetuple.FieldDstPort:
		return uint64(r.DstPort.Lo), uint64(r.DstPort.Hi)
	default:
		if r.Protocol.IsWildcard() {
			return 0, 255
		}
		return uint64(r.Protocol.Value), uint64(r.Protocol.Value)
	}
}

func headerValue(h fivetuple.Header, f fivetuple.Field) uint64 {
	switch f {
	case fivetuple.FieldSrcIP:
		return uint64(h.SrcIP)
	case fivetuple.FieldDstIP:
		return uint64(h.DstIP)
	case fivetuple.FieldSrcPort:
		return uint64(h.SrcPort)
	case fivetuple.FieldDstPort:
		return uint64(h.DstPort)
	default:
		return uint64(h.Protocol)
	}
}

// node is one decision-tree node of the transient build form; flatten
// converts the pointer tree into arena records and drops it.
type node struct {
	// Leaf nodes hold rule indices; internal nodes hold the cut description
	// and children.
	leafRules []int

	cutDims  []int // indices into fivetuple.Fields()
	cutsPer  []int // number of slices per cut dimension
	children []*node
	region   region
}

func (n *node) isLeaf() bool { return n.children == nil }

// Flat node record layout. Every node is nodeWords consecutive words:
//
//	word 0        flags — leafFlag for a leaf, else the cut count (1 or 2)
//	word 1        leaf: word offset of the rule-index span
//	              internal: node index of the first child (children of one
//	              node are laid out contiguously, so one base serves all)
//	word 2        leaf: live entry count     internal: dim0<<16 | cuts0
//	word 3        leaf: span capacity        internal: dim1<<16 | cuts1
//	words 4..8    region lo, one word per dimension
//	words 9..13   region hi, one word per dimension
//
// Leaf spans carry slack capacity so delta inserts edit in place; a span
// that outgrows its capacity relocates into the spare region at the arena
// tail (growing the arena when even that is exhausted), leaking the old
// span as tracked garbage until the next rebuild re-compacts.
const (
	nodeWords = 14
	nwFlags   = 0
	nwA       = 1
	nwB       = 2
	nwC       = 3
	nwLo      = 4
	nwHi      = 9

	leafFlag = 1 << 31
)

// Classifier is a HyperCuts decision tree built from a rule set.
type Classifier struct {
	cfg   Config
	rules []fivetuple.Rule

	// The flat tree: node records first, then the leaf spans, then the
	// spare region [bump, limit) feeding span relocations.
	ar    *arena.Arena
	words []uint32 // the arena word space; refreshed after Grow
	bump  int
	limit int

	nodeCount int
	leafCount int
	rulePtrs  int
	maxDepth  int

	// Delta accounting (see delta.go): leaf-occupancy metrics anchored at
	// Build time, and the op/write counters of updates applied since.
	maxLeaf      int
	baseOverflow int
	overflowPtrs int
	deltas       int
	deltaWrites  int

	// Atomic so that a built classifier can serve Classify from any number
	// of goroutines concurrently (read-only after build).
	lookups        atomic.Uint64
	lookupAccesses atomic.Uint64
}

// Build constructs a HyperCuts tree for the rule set and flattens it.
func Build(rs *fivetuple.RuleSet, cfg Config) (*Classifier, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rs.Len() == 0 {
		return nil, fmt.Errorf("hypercuts: empty rule set")
	}
	c := &Classifier{cfg: cfg, rules: rs.Rules()}
	all := make([]int, len(c.rules))
	for i := range all {
		all[i] = i
	}
	root := c.build(all, fullRegion(), 0)
	c.flatten(root)
	c.initLeafMetrics()
	return c, nil
}

func (c *Classifier) build(ruleIdx []int, reg region, depth int) *node {
	c.nodeCount++
	if depth > c.maxDepth {
		c.maxDepth = depth
	}
	n := &node{region: reg}
	if len(ruleIdx) <= c.cfg.Binth || depth >= c.cfg.MaxDepth {
		n.leafRules = append([]int(nil), ruleIdx...)
		sort.Ints(n.leafRules)
		c.leafCount++
		c.rulePtrs += len(n.leafRules)
		return n
	}

	dims, cuts := c.chooseCuts(ruleIdx, reg)
	if len(dims) == 0 {
		n.leafRules = append([]int(nil), ruleIdx...)
		sort.Ints(n.leafRules)
		c.leafCount++
		c.rulePtrs += len(n.leafRules)
		return n
	}
	n.cutDims = dims
	n.cutsPer = cuts

	totalChildren := 1
	for _, k := range cuts {
		totalChildren *= k
	}
	n.children = make([]*node, totalChildren)
	for child := 0; child < totalChildren; child++ {
		childReg := childRegion(reg, dims, cuts, child)
		var childRules []int
		for _, ri := range ruleIdx {
			if ruleOverlapsRegion(c.rules[ri], childReg) {
				childRules = append(childRules, ri)
			}
		}
		// Heuristic guard: a child that did not shrink its rule list becomes
		// a leaf to prevent unbounded recursion on fully overlapping rules.
		if len(childRules) == len(ruleIdx) {
			leaf := &node{region: childReg, leafRules: append([]int(nil), childRules...)}
			sort.Ints(leaf.leafRules)
			c.nodeCount++
			c.leafCount++
			c.rulePtrs += len(leaf.leafRules)
			n.children[child] = leaf
			continue
		}
		n.children[child] = c.build(childRules, childReg, depth+1)
	}
	return n
}

// flatten lays the pointer tree out as arena records: a breadth-first
// numbering keeps every node's children contiguous so one child-base index
// replaces the child pointer array, then each leaf's rule list becomes an
// index span with slack. The pointer tree is garbage once this returns.
func (c *Classifier) flatten(root *node) {
	order := []*node{root}
	childBase := make([]int, 1, c.nodeCount)
	for i := 0; i < len(order); i++ {
		n := order[i]
		childBase = childBase[:len(order)]
		if !n.isLeaf() {
			childBase[i] = len(order)
			order = append(order, n.children...)
		}
	}
	b := arena.NewBuilder()
	_, nodes := b.Words(nodeWords * len(order))
	slack := c.cfg.Binth/2 + 2
	totalSpan := 0
	for i, n := range order {
		rec := nodes[i*nodeWords : (i+1)*nodeWords]
		for d := 0; d < fivetuple.NumFields; d++ {
			rec[nwLo+d] = uint32(n.region.lo[d])
			rec[nwHi+d] = uint32(n.region.hi[d])
		}
		if n.isLeaf() {
			spanCap := len(n.leafRules) + slack
			h, span := b.Words(spanCap)
			for j, ri := range n.leafRules {
				span[j] = uint32(ri)
			}
			rec[nwFlags] = leafFlag
			rec[nwA] = uint32(h)
			rec[nwB] = uint32(len(n.leafRules))
			rec[nwC] = uint32(spanCap)
			totalSpan += spanCap
			continue
		}
		rec[nwFlags] = uint32(len(n.cutDims))
		rec[nwA] = uint32(childBase[i])
		rec[nwB] = uint32(n.cutDims[0])<<16 | uint32(n.cutsPer[0])
		if len(n.cutDims) == 2 {
			rec[nwC] = uint32(n.cutDims[1])<<16 | uint32(n.cutsPer[1])
		}
	}
	spare := totalSpan/2 + 64
	b.Words(spare)
	c.ar = b.Finish()
	c.words = c.ar.Words(0, c.ar.WordLen())
	c.limit = c.ar.WordLen()
	c.bump = c.limit - spare
}

// spareAlloc carves n words out of the spare region for a relocated leaf
// span, growing the arena when the region is exhausted. Grow reallocates
// the word space, so callers must refresh any local view afterwards.
func (c *Classifier) spareAlloc(n int) int {
	if c.bump+n > c.limit {
		extra := c.limit/2 + 64
		if extra < 2*n {
			extra = 2 * n
		}
		c.ar.Grow(extra)
		c.words = c.ar.Words(0, c.ar.WordLen())
		c.limit = c.ar.WordLen()
	}
	off := c.bump
	c.bump += n
	return off
}

// chooseCuts picks the dimensions to cut (those with the most distinct rule
// projections) and the number of slices per dimension.
func (c *Classifier) chooseCuts(ruleIdx []int, reg region) (dims []int, cuts []int) {
	fields := fivetuple.Fields()
	type dimScore struct {
		dim      int
		distinct int
	}
	scores := make([]dimScore, 0, len(fields))
	for di, f := range fields {
		if reg.hi[di] == reg.lo[di] {
			continue // nothing left to cut in this dimension
		}
		uniq := make(map[[2]uint64]struct{})
		for _, ri := range ruleIdx {
			lo, hi := ruleRange(c.rules[ri], f)
			uniq[[2]uint64{lo, hi}] = struct{}{}
		}
		if len(uniq) > 1 {
			scores = append(scores, dimScore{dim: di, distinct: len(uniq)})
		}
	}
	if len(scores) == 0 {
		return nil, nil
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].distinct > scores[j].distinct })
	// Cut the best one or two dimensions (the HyperCuts multi-dimensional
	// cut), splitting the cut budget between them.
	budget := int(c.cfg.SpaceFactor * math.Sqrt(float64(len(ruleIdx))))
	if budget > c.cfg.MaxCutsPerNode {
		budget = c.cfg.MaxCutsPerNode
	}
	if budget < 2 {
		budget = 2
	}
	chosen := scores
	if len(chosen) > 2 {
		chosen = chosen[:2]
	}
	if len(chosen) == 1 {
		return []int{chosen[0].dim}, []int{budget}
	}
	per := int(math.Sqrt(float64(budget)))
	if per < 2 {
		per = 2
	}
	return []int{chosen[0].dim, chosen[1].dim}, []int{per, per}
}

// childRegion computes the sub-region of the child with the given index.
func childRegion(parent region, dims, cuts []int, child int) region {
	reg := parent
	for i, di := range dims {
		k := cuts[i]
		slice := child % k
		child /= k
		span := parent.hi[di] - parent.lo[di] + 1
		width := span / uint64(k)
		if width == 0 {
			width = 1
		}
		lo := parent.lo[di] + uint64(slice)*width
		hi := lo + width - 1
		if slice == k-1 || hi > parent.hi[di] {
			hi = parent.hi[di]
		}
		if lo > parent.hi[di] {
			lo = parent.hi[di]
		}
		reg.lo[di] = lo
		reg.hi[di] = hi
	}
	return reg
}

func ruleOverlapsRegion(r fivetuple.Rule, reg region) bool {
	for di, f := range fivetuple.Fields() {
		lo, hi := ruleRange(r, f)
		if hi < reg.lo[di] || lo > reg.hi[di] {
			return false
		}
	}
	return true
}

// ruleOverlapsNode is the flat-record form of ruleOverlapsRegion: the node's
// region bounds are read straight from its arena record.
func ruleOverlapsNode(r fivetuple.Rule, rec []uint32) bool {
	for di, f := range fivetuple.Fields() {
		lo, hi := ruleRange(r, f)
		if hi < uint64(rec[nwLo+di]) || lo > uint64(rec[nwHi+di]) {
			return false
		}
	}
	return true
}

// Classify returns the index of the highest-priority matching rule, whether
// any rule matched and the number of memory accesses (tree nodes visited plus
// leaf rules scanned). The walk touches only the flat arena and the rule
// table; it allocates nothing.
func (c *Classifier) Classify(h fivetuple.Header) (ruleIndex int, matched bool, accesses int) {
	c.lookups.Add(1)
	w := c.words
	fields := fivetuple.Fields()
	base := 0
	for w[base+nwFlags]&leafFlag == 0 {
		accesses++
		cutCount := int(w[base+nwFlags])
		child := 0
		mult := 1
		for i := 0; i < cutCount; i++ {
			dk := w[base+nwB+i]
			di := int(dk >> 16)
			k := int(dk & 0xFFFF)
			lo := uint64(w[base+nwLo+di])
			span := uint64(w[base+nwHi+di]) - lo + 1
			width := span / uint64(k)
			if width == 0 {
				width = 1
			}
			v := headerValue(h, fields[di])
			if v < lo {
				v = lo
			}
			slice := int((v - lo) / width)
			if slice >= k {
				slice = k - 1
			}
			child += slice * mult
			mult *= k
		}
		base = (int(w[base+nwA]) + child) * nodeWords
	}
	accesses++ // reading the leaf header
	best := -1
	off := int(w[base+nwA])
	n := int(w[base+nwB])
	for j := 0; j < n; j++ {
		accesses++
		ri := int(w[off+j])
		if c.rules[ri].Matches(h) {
			best = ri
			break // leaf rules are sorted by priority
		}
	}
	c.lookupAccesses.Add(uint64(accesses))
	if best < 0 {
		return 0, false, accesses
	}
	return best, true, accesses
}

// ClassifyAll appends the indices of every rule matching the header to dst
// and returns the extended slice plus the number of memory accesses. A lookup
// visits exactly one leaf and each rule is stored in every leaf its region
// overlaps, so the full scan of that leaf enumerates each match exactly once,
// in ascending (best-first) index order — the delta path keeps leaf spans
// sorted. dst is appended to without allocating when it has sufficient
// capacity.
func (c *Classifier) ClassifyAll(h fivetuple.Header, dst []int) ([]int, int) {
	c.lookups.Add(1)
	w := c.words
	fields := fivetuple.Fields()
	base := 0
	accesses := 0
	for w[base+nwFlags]&leafFlag == 0 {
		accesses++
		cutCount := int(w[base+nwFlags])
		child := 0
		mult := 1
		for i := 0; i < cutCount; i++ {
			dk := w[base+nwB+i]
			di := int(dk >> 16)
			k := int(dk & 0xFFFF)
			lo := uint64(w[base+nwLo+di])
			span := uint64(w[base+nwHi+di]) - lo + 1
			width := span / uint64(k)
			if width == 0 {
				width = 1
			}
			v := headerValue(h, fields[di])
			if v < lo {
				v = lo
			}
			slice := int((v - lo) / width)
			if slice >= k {
				slice = k - 1
			}
			child += slice * mult
			mult *= k
		}
		base = (int(w[base+nwA]) + child) * nodeWords
	}
	accesses++ // reading the leaf header
	off := int(w[base+nwA])
	n := int(w[base+nwB])
	for j := 0; j < n; j++ {
		accesses++
		ri := int(w[off+j])
		if c.rules[ri].Matches(h) {
			dst = append(dst, ri)
		}
	}
	c.lookupAccesses.Add(uint64(accesses))
	return dst, accesses
}

// NodeCount returns the number of tree nodes.
func (c *Classifier) NodeCount() int { return c.nodeCount }

// LeafCount returns the number of leaves.
func (c *Classifier) LeafCount() int { return c.leafCount }

// Depth returns the maximum tree depth.
func (c *Classifier) Depth() int { return c.maxDepth }

// MemoryBits returns the storage consumed by the tree: each node header
// stores its cut description and child pointer base (~128 bits), plus one
// 14-bit rule pointer per stored leaf rule and the rule table itself (each
// rule ~144 bits of match data).
func (c *Classifier) MemoryBits() int {
	const nodeBits = 128
	const rulePtrBits = 14
	const ruleBits = 144
	return c.nodeCount*nodeBits + c.rulePtrs*rulePtrBits + len(c.rules)*ruleBits
}

// ArenaBytes returns the backing storage of the flattened tree — the one
// allocation (plus the rule table) a published snapshot hands the collector.
func (c *Classifier) ArenaBytes() int { return c.ar.SizeBytes() }

// Stats summarises lookup counters.
type Stats struct {
	Lookups        uint64
	LookupAccesses uint64
}

// AverageAccesses returns the mean memory accesses per lookup.
func (s Stats) AverageAccesses() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.LookupAccesses) / float64(s.Lookups)
}

// Stats returns a snapshot of the counters.
func (c *Classifier) Stats() Stats {
	return Stats{Lookups: c.lookups.Load(), LookupAccesses: c.lookupAccesses.Load()}
}

// ResetStats zeroes the counters without touching the built tree.
func (c *Classifier) ResetStats() {
	c.lookups.Store(0)
	c.lookupAccesses.Store(0)
}
