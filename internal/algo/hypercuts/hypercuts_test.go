package hypercuts

import (
	"testing"

	"sdnpc/internal/classbench"
	"sdnpc/internal/fivetuple"
)

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig should validate: %v", err)
	}
	bad := []Config{
		{Binth: 0, SpaceFactor: 4, MaxCutsPerNode: 16, MaxDepth: 16},
		{Binth: 8, SpaceFactor: 0, MaxCutsPerNode: 16, MaxDepth: 16},
		{Binth: 8, SpaceFactor: 4, MaxCutsPerNode: 1, MaxDepth: 16},
		{Binth: 8, SpaceFactor: 4, MaxCutsPerNode: 16, MaxDepth: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	rs := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: 50, Seed: 1})
	if _, err := Build(rs, bad[0]); err == nil {
		t.Error("Build with an invalid config should fail")
	}
	if _, err := Build(fivetuple.NewRuleSet("empty", nil), DefaultConfig()); err == nil {
		t.Error("Build of an empty rule set should fail")
	}
}

func TestClassifyAgreesWithReference(t *testing.T) {
	for _, class := range []classbench.Class{classbench.ACL, classbench.FW, classbench.IPC} {
		t.Run(class.String(), func(t *testing.T) {
			rs := classbench.Generate(classbench.Config{Class: class, Rules: 300, Seed: 61})
			c, err := Build(rs, DefaultConfig())
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			trace := classbench.GenerateTrace(rs, classbench.TraceConfig{Packets: 600, Seed: 19, MatchFraction: 0.8})
			for _, h := range trace {
				wantIdx, wantOK := rs.Classify(h)
				gotIdx, gotOK, accesses := c.Classify(h)
				if gotOK != wantOK || (wantOK && gotIdx != wantIdx) {
					t.Fatalf("Classify(%s) = (%d,%v), reference (%d,%v)", h, gotIdx, gotOK, wantIdx, wantOK)
				}
				if accesses < 2 {
					t.Fatalf("accesses = %d, want at least a node and a leaf read", accesses)
				}
			}
		})
	}
}

func TestTreeStructureStatistics(t *testing.T) {
	rs := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: 400, Seed: 71})
	c, err := Build(rs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.NodeCount() <= 1 {
		t.Errorf("NodeCount() = %d, want a real tree", c.NodeCount())
	}
	if c.LeafCount() < 1 || c.LeafCount() >= c.NodeCount() {
		t.Errorf("LeafCount() = %d of %d nodes", c.LeafCount(), c.NodeCount())
	}
	if c.Depth() < 1 || c.Depth() > DefaultConfig().MaxDepth {
		t.Errorf("Depth() = %d", c.Depth())
	}
	if c.MemoryBits() <= 0 {
		t.Errorf("MemoryBits() = %d", c.MemoryBits())
	}
}

func TestBinthControlsLeafSizeAndAccesses(t *testing.T) {
	rs := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: 400, Seed: 81})
	smallLeaf := DefaultConfig()
	smallLeaf.Binth = 4
	bigLeaf := DefaultConfig()
	bigLeaf.Binth = 64

	cSmall, err := Build(rs, smallLeaf)
	if err != nil {
		t.Fatal(err)
	}
	cBig, err := Build(rs, bigLeaf)
	if err != nil {
		t.Fatal(err)
	}
	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{Packets: 500, Seed: 4, MatchFraction: 0.9})
	for _, h := range trace {
		cSmall.Classify(h)
		cBig.Classify(h)
	}
	// A larger binth means fewer nodes but longer leaf scans.
	if cBig.NodeCount() >= cSmall.NodeCount() {
		t.Errorf("node counts: binth=64 %d, binth=4 %d; want fewer nodes with the bigger leaf",
			cBig.NodeCount(), cSmall.NodeCount())
	}
	if cBig.Stats().AverageAccesses() <= cSmall.Stats().AverageAccesses() {
		t.Errorf("average accesses: binth=64 %.1f, binth=4 %.1f; want more accesses with the bigger leaf",
			cBig.Stats().AverageAccesses(), cSmall.Stats().AverageAccesses())
	}
}

func TestStats(t *testing.T) {
	rs := classbench.Generate(classbench.Config{Class: classbench.IPC, Rules: 100, Seed: 91})
	c, err := Build(rs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if (Stats{}).AverageAccesses() != 0 {
		t.Error("zero-lookup average should be 0")
	}
	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{Packets: 30, Seed: 5, MatchFraction: 1})
	for _, h := range trace {
		c.Classify(h)
	}
	s := c.Stats()
	if s.Lookups != 30 || s.LookupAccesses == 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestFullyOverlappingRulesTerminate(t *testing.T) {
	// Identical wildcard-heavy rules cannot be separated by cutting; the
	// build must still terminate and classification must return the highest
	// priority one.
	var rules []fivetuple.Rule
	for i := 0; i < 40; i++ {
		rules = append(rules, fivetuple.Wildcard(i, fivetuple.ActionDrop))
	}
	rs := fivetuple.NewRuleSet("overlap", rules)
	c, err := Build(rs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	idx, ok, _ := c.Classify(fivetuple.Header{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Protocol: 6})
	if !ok || idx != 0 {
		t.Errorf("Classify = (%d, %v), want (0, true)", idx, ok)
	}
}
