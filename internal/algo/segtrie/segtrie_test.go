package segtrie

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sdnpc/internal/fivetuple"
	"sdnpc/internal/label"
)

func TestNewValidation(t *testing.T) {
	for _, levels := range []int{0, -1, 17} {
		if _, err := New(levels); err == nil {
			t.Errorf("New(%d) should fail", levels)
		}
	}
	for _, levels := range []int{1, 4, 5, 16} {
		e, err := New(levels)
		if err != nil {
			t.Errorf("New(%d): %v", levels, err)
			continue
		}
		if e.Levels() != levels || e.WorstCaseAccesses() != levels {
			t.Errorf("New(%d) levels = %d", levels, e.Levels())
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0) did not panic")
		}
	}()
	MustNew(0)
}

func TestRangeToSegments(t *testing.T) {
	tests := []struct {
		name string
		rng  fivetuple.PortRange
		want int // number of segments
	}{
		{name: "exact port", rng: fivetuple.ExactPort(80), want: 1},
		{name: "full wildcard", rng: fivetuple.WildcardPortRange(), want: 1},
		{name: "aligned power of two", rng: fivetuple.PortRange{Lo: 1024, Hi: 2047}, want: 1},
		{name: "well known low ports", rng: fivetuple.PortRange{Lo: 0, Hi: 1023}, want: 1},
		{name: "registered and dynamic", rng: fivetuple.PortRange{Lo: 1024, Hi: 65535}, want: 6},
		{name: "arbitrary range", rng: fivetuple.PortRange{Lo: 7810, Hi: 7820}, want: 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			segs := RangeToSegments(tt.rng)
			if len(segs) != tt.want {
				t.Errorf("RangeToSegments(%s) produced %d segments %v, want %d", tt.rng, len(segs), segs, tt.want)
			}
		})
	}
}

func TestRangeToSegmentsCoversExactlyProperty(t *testing.T) {
	// Property: the segments cover exactly the range — every port inside is
	// covered by exactly one segment, every port outside by none.
	f := func(a, b, probe uint16) bool {
		if a > b {
			a, b = b, a
		}
		rng := fivetuple.PortRange{Lo: a, Hi: b}
		segs := RangeToSegments(rng)
		covered := 0
		for _, s := range segs {
			size := uint32(1) << (PortBits - s.Bits)
			if uint32(probe) >= s.Value && uint32(probe) < s.Value+size {
				covered++
			}
		}
		if rng.Matches(probe) {
			return covered == 1
		}
		return covered == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestInsertLookupTableIVExample(t *testing.T) {
	e := MustNew(4)
	inserts := []struct {
		rng      fivetuple.PortRange
		lbl      label.Label
		priority int
	}{
		{fivetuple.PortRange{Lo: 0, Hi: 65355}, 0, 2},
		{fivetuple.ExactPort(7812), 1, 0},
		{fivetuple.PortRange{Lo: 7810, Hi: 7820}, 2, 1},
	}
	for _, in := range inserts {
		if _, err := e.Insert(in.rng, in.lbl, in.priority); err != nil {
			t.Fatalf("Insert(%s): %v", in.rng, err)
		}
	}
	list, accesses := e.Lookup(7812)
	if accesses < 1 || accesses > 4 {
		t.Errorf("accesses = %d, want within [1,4]", accesses)
	}
	got := list.Labels()
	want := []label.Label{1, 2, 0} // ordered by the rule priorities supplied
	if len(got) != len(want) {
		t.Fatalf("labels = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("labels = %v, want %v", got, want)
		}
	}
	if e.RangeCount() != 3 {
		t.Errorf("RangeCount() = %d, want 3", e.RangeCount())
	}
}

func TestRemove(t *testing.T) {
	e := MustNew(4)
	rng := fivetuple.PortRange{Lo: 1024, Hi: 65535}
	if _, err := e.Insert(rng, 5, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Remove(rng, 5); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := e.Remove(rng, 5); err == nil {
		t.Error("Remove of absent range should fail")
	}
	list, _ := e.Lookup(2000)
	if list.Len() != 0 {
		t.Errorf("labels after removal = %v", list.Labels())
	}
	if e.RangeCount() != 0 {
		t.Errorf("RangeCount() = %d, want 0", e.RangeCount())
	}
	if e.LabelListBits() != 0 {
		t.Errorf("LabelListBits() = %d, want 0", e.LabelListBits())
	}
}

func TestDuplicateInsertRefreshesPriority(t *testing.T) {
	e := MustNew(4)
	rng := fivetuple.ExactPort(443)
	if _, err := e.Insert(rng, 3, 40); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert(rng, 3, 4); err != nil {
		t.Fatal(err)
	}
	list, _ := e.Lookup(443)
	items := list.Items()
	if len(items) != 1 || items[0].Priority != 4 {
		t.Errorf("items = %+v, want single label at priority 4", items)
	}
	if e.RangeCount() != 1 {
		t.Errorf("RangeCount() = %d, want 1", e.RangeCount())
	}
}

func TestLookupAgainstReferenceProperty(t *testing.T) {
	e := MustNew(5)
	rng := rand.New(rand.NewSource(77))
	var ranges []fivetuple.PortRange
	for len(ranges) < 60 {
		lo := uint16(rng.Intn(65536))
		width := rng.Intn(5000)
		hi := lo
		if int(lo)+width <= int(fivetuple.MaxPort) {
			hi = lo + uint16(width)
		}
		r := fivetuple.PortRange{Lo: lo, Hi: hi}
		dup := false
		for _, existing := range ranges {
			if existing == r {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		ranges = append(ranges, r)
		if _, err := e.Insert(r, label.Label(len(ranges)-1), len(ranges)-1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3000; i++ {
		port := uint16(rng.Intn(65536))
		list, accesses := e.Lookup(port)
		if accesses > 5 {
			t.Fatalf("accesses = %d exceeds level count", accesses)
		}
		got := make(map[label.Label]bool)
		for _, l := range list.Labels() {
			got[l] = true
		}
		for idx, r := range ranges {
			if got[label.Label(idx)] != r.Matches(port) {
				t.Fatalf("port %d range %s: trie=%v reference=%v", port, r, got[label.Label(idx)], r.Matches(port))
			}
		}
	}
}

func TestMemoryAccountingPositive(t *testing.T) {
	e := MustNew(4)
	if _, err := e.Insert(fivetuple.PortRange{Lo: 1024, Hi: 65535}, 1, 0); err != nil {
		t.Fatal(err)
	}
	if e.MemoryBits() <= 0 || e.LabelListBits() <= 0 {
		t.Errorf("memory accounting = %d / %d, want positive", e.MemoryBits(), e.LabelListBits())
	}
	if e.Stats().UpdateWrites == 0 {
		t.Error("UpdateWrites should be non-zero")
	}
	e.ResetStats()
	if e.Stats().UpdateWrites != 0 {
		t.Error("ResetStats did not clear counters")
	}
}
