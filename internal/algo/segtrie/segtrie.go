// Package segtrie implements the Segment Trie port-lookup algorithm used by
// the Option 1 (4-level) and Option 2 (5-level) single-field combinations
// evaluated in Table I of the paper.
//
// A port-range rule is decomposed into the minimal set of aligned binary
// segments (the classic range-to-prefix expansion) and each segment is
// stored in a fixed-stride trie over the 16-bit port space. A lookup walks
// the trie once — at most one node access per level — and returns the labels
// of every range covering the port, ordered by rule priority.
//
// The engine reuses the Multi-Bit Trie machinery of internal/algo/mbt for
// the underlying trie; what distinguishes the segment trie is the
// range-to-segment decomposition layer and the port-oriented geometry.
package segtrie

import (
	"fmt"

	"sdnpc/internal/algo/mbt"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/label"
)

// PortBits is the width of the port key space.
const PortBits = 16

// Engine is a segment-trie port lookup engine.
type Engine struct {
	levels int
	trie   *mbt.Engine
	// segmentsPerRange remembers the expansion of each stored range so that
	// removal deletes exactly the segments insertion created.
	segmentsPerRange map[fivetuple.PortRange][]Segment
}

// Segment is one aligned binary block (value, prefix length) of a
// decomposed port range.
type Segment struct {
	Value uint32
	Bits  uint8
}

// New creates a segment trie with the given number of levels (the trie
// strides split the 16 port bits as evenly as possible).
func New(levels int) (*Engine, error) {
	if levels < 1 || levels > PortBits {
		return nil, fmt.Errorf("segtrie: level count %d out of range [1,%d]", levels, PortBits)
	}
	cfg := mbt.UniformConfig(PortBits, levels)
	cfg.LabelEntryBits = 7 // port labels are 7 bits wide (§IV.C.1)
	trie, err := mbt.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("segtrie: %w", err)
	}
	return &Engine{
		levels:           levels,
		trie:             trie,
		segmentsPerRange: make(map[fivetuple.PortRange][]Segment),
	}, nil
}

// MustNew is like New but panics on error.
func MustNew(levels int) *Engine {
	e, err := New(levels)
	if err != nil {
		panic(err)
	}
	return e
}

// Levels returns the number of trie levels.
func (e *Engine) Levels() int { return e.levels }

// RangeToSegments decomposes an inclusive port range into the minimal set of
// aligned binary segments (value, prefix length) covering exactly the range.
func RangeToSegments(rng fivetuple.PortRange) []Segment {
	var out []Segment
	lo := uint32(rng.Lo)
	hi := uint32(rng.Hi)
	for lo <= hi {
		// The largest aligned block starting at lo that does not overshoot hi.
		size := uint32(1)
		for {
			next := size << 1
			if lo&(next-1) != 0 || lo+next-1 > hi {
				break
			}
			size = next
		}
		bits := uint8(PortBits)
		for s := size; s > 1; s >>= 1 {
			bits--
		}
		out = append(out, Segment{Value: lo, Bits: bits})
		if lo+size-1 == uint32(fivetuple.MaxPort) {
			break
		}
		lo += size
	}
	return out
}

// Insert stores a port range with its label and rule priority. The returned
// count is the number of trie-entry writes performed.
func (e *Engine) Insert(rng fivetuple.PortRange, lbl label.Label, priority int) (writes int, err error) {
	if _, exists := e.segmentsPerRange[rng]; exists {
		// The range (hence its label) is already stored; refresh priorities.
		for _, seg := range e.segmentsPerRange[rng] {
			w, err := e.trie.Insert(seg.Value, seg.Bits, lbl, priority)
			if err != nil {
				return writes, err
			}
			writes += w
		}
		return writes, nil
	}
	segments := RangeToSegments(rng)
	for _, seg := range segments {
		w, err := e.trie.Insert(seg.Value, seg.Bits, lbl, priority)
		if err != nil {
			return writes, err
		}
		writes += w
	}
	e.segmentsPerRange[rng] = segments
	return writes, nil
}

// Remove deletes a stored port range and its label.
func (e *Engine) Remove(rng fivetuple.PortRange, lbl label.Label) (writes int, err error) {
	segments, exists := e.segmentsPerRange[rng]
	if !exists {
		return 0, fmt.Errorf("segtrie: range %s not present", rng)
	}
	for _, seg := range segments {
		w, err := e.trie.Remove(seg.Value, seg.Bits, lbl)
		if err != nil {
			return writes, err
		}
		writes += w
	}
	delete(e.segmentsPerRange, rng)
	return writes, nil
}

// Lookup returns the labels of every stored range covering the port, ordered
// by rule priority, and the number of trie-node accesses performed.
func (e *Engine) Lookup(port uint16) (*label.List, int) {
	return e.trie.Lookup(uint32(port))
}

// LookupInto is the allocation-free variant of Lookup: it resets out, fills
// it with the matching labels and returns the access count.
func (e *Engine) LookupInto(port uint16, out *label.List) int {
	return e.trie.LookupInto(uint32(port), out)
}

// WorstCaseAccesses returns the maximum trie-node accesses per lookup (the
// level count).
func (e *Engine) WorstCaseAccesses() int { return e.levels }

// RangeCount returns the number of stored ranges.
func (e *Engine) RangeCount() int { return len(e.segmentsPerRange) }

// MemoryBits returns the trie-node storage consumed.
func (e *Engine) MemoryBits() int { return e.trie.MemoryBits() }

// LabelListBits returns the Labels-memory storage consumed.
func (e *Engine) LabelListBits() int { return e.trie.LabelListBits() }

// Stats returns the underlying trie's access counters.
func (e *Engine) Stats() mbt.Stats { return e.trie.Stats() }

// ResetStats zeroes the counters.
func (e *Engine) ResetStats() { e.trie.ResetStats() }

// Clone returns an independent copy of the engine: the underlying trie is
// deep-cloned and the range-expansion memo copied (its segment slices are
// append-only once stored, so sharing them is safe).
func (e *Engine) Clone() *Engine {
	memo := make(map[fivetuple.PortRange][]Segment, len(e.segmentsPerRange))
	for rng, segs := range e.segmentsPerRange {
		memo[rng] = segs
	}
	return &Engine{levels: e.levels, trie: e.trie.Clone(), segmentsPerRange: memo}
}
