package rfc

import (
	"testing"

	"sdnpc/internal/classbench"
	"sdnpc/internal/fivetuple"
)

func buildSmall(t *testing.T, class classbench.Class, rules int, seed int64) (*Classifier, *fivetuple.RuleSet) {
	t.Helper()
	rs := classbench.Generate(classbench.Config{Class: class, Rules: rules, Seed: seed})
	c, err := Build(rs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c, rs
}

func TestBuildRejectsEmptySet(t *testing.T) {
	if _, err := Build(fivetuple.NewRuleSet("empty", nil)); err == nil {
		t.Error("Build of empty rule set should fail")
	}
}

func TestClassifyAgreesWithReference(t *testing.T) {
	for _, class := range []classbench.Class{classbench.ACL, classbench.FW, classbench.IPC} {
		t.Run(class.String(), func(t *testing.T) {
			c, rs := buildSmall(t, class, 200, 31)
			trace := classbench.GenerateTrace(rs, classbench.TraceConfig{Packets: 500, Seed: 7, MatchFraction: 0.8})
			for _, h := range trace {
				wantIdx, wantOK := rs.Classify(h)
				gotIdx, gotOK, accesses := c.Classify(h)
				if gotOK != wantOK || (wantOK && gotIdx != wantIdx) {
					t.Fatalf("Classify(%s) = (%d,%v), reference (%d,%v)", h, gotIdx, gotOK, wantIdx, wantOK)
				}
				if accesses != 13 {
					t.Fatalf("accesses = %d, want the constant 13 table indexings", accesses)
				}
			}
		})
	}
}

func TestAccessesConstant(t *testing.T) {
	c, _ := buildSmall(t, classbench.ACL, 100, 3)
	if c.AccessesPerLookup() != 13 {
		t.Errorf("AccessesPerLookup() = %d, want 13", c.AccessesPerLookup())
	}
}

func TestMemoryGrowsWithRuleCount(t *testing.T) {
	small, _ := buildSmall(t, classbench.ACL, 100, 5)
	large, _ := buildSmall(t, classbench.ACL, 400, 5)
	if small.MemoryBits() <= 0 {
		t.Fatalf("MemoryBits() = %d, want positive", small.MemoryBits())
	}
	if large.MemoryBits() <= small.MemoryBits() {
		t.Errorf("memory did not grow with the rule count: %d vs %d", large.MemoryBits(), small.MemoryBits())
	}
	// Phase-0 tables alone are 6*64K + 256 entries; memory must exceed that
	// even at one bit per entry.
	if small.MemoryBits() < 6*65536+256 {
		t.Errorf("MemoryBits() = %d, implausibly small", small.MemoryBits())
	}
}

func TestStats(t *testing.T) {
	c, rs := buildSmall(t, classbench.ACL, 50, 9)
	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{Packets: 20, Seed: 2, MatchFraction: 1})
	for _, h := range trace {
		c.Classify(h)
	}
	s := c.Stats()
	if s.Lookups != 20 || s.LookupAccesses != 20*13 {
		t.Errorf("stats = %+v", s)
	}
}

func TestNoMatchWithoutDefaultRule(t *testing.T) {
	// A single narrow rule: a far-away header must report no match.
	rules := []fivetuple.Rule{{
		SrcPrefix: fivetuple.MustParsePrefix("10.0.0.0/8"),
		DstPrefix: fivetuple.MustParsePrefix("10.0.0.0/8"),
		SrcPort:   fivetuple.ExactPort(80),
		DstPort:   fivetuple.ExactPort(80),
		Protocol:  fivetuple.ExactProtocol(fivetuple.ProtoTCP),
	}}
	rs := fivetuple.NewRuleSet("one", rules)
	c, err := Build(rs)
	if err != nil {
		t.Fatal(err)
	}
	_, ok, _ := c.Classify(fivetuple.Header{
		SrcIP: fivetuple.MustParseIPv4("192.0.2.1"), DstIP: fivetuple.MustParseIPv4("192.0.2.2"),
		SrcPort: 1, DstPort: 2, Protocol: fivetuple.ProtoUDP,
	})
	if ok {
		t.Error("Classify matched a header outside every rule")
	}
	idx, ok, _ := c.Classify(fivetuple.Header{
		SrcIP: fivetuple.MustParseIPv4("10.1.1.1"), DstIP: fivetuple.MustParseIPv4("10.2.2.2"),
		SrcPort: 80, DstPort: 80, Protocol: fivetuple.ProtoTCP,
	})
	if !ok || idx != 0 {
		t.Errorf("Classify of matching header = (%d, %v), want (0, true)", idx, ok)
	}
}
