package rfc

import (
	"testing"

	"sdnpc/internal/label"
)

func TestSegmentTableBasics(t *testing.T) {
	st, err := NewSegmentTable(16, 13)
	if err != nil {
		t.Fatalf("NewSegmentTable: %v", err)
	}
	if _, err := NewSegmentTable(0, 13); err == nil {
		t.Error("zero key width should fail")
	}
	if _, err := NewSegmentTable(17, 13); err == nil {
		t.Error("oversized key width should fail")
	}
	if _, err := st.Insert(0x1F000, 8, 1, 0); err == nil {
		t.Error("out-of-domain prefix value should fail")
	}
	if _, err := st.Insert(0, 17, 1, 0); err == nil {
		t.Error("over-long prefix should fail")
	}

	// 0x12xx/8 with label 1, 0x1234/16 with label 2, default /0 with label 3.
	if _, err := st.Insert(0x1200, 8, 1, 5); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if _, err := st.Insert(0x1234, 16, 2, 1); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if _, err := st.Insert(0, 0, 3, 9); err != nil {
		t.Fatalf("Insert: %v", err)
	}

	list, accesses := st.Lookup(0x1234)
	if accesses != 1 {
		t.Errorf("Lookup accesses = %d, want 1 (direct index)", accesses)
	}
	if got := list.Labels(); len(got) != 3 || got[0] != 2 || got[1] != 1 || got[2] != 3 {
		t.Errorf("Lookup(0x1234) labels = %v, want [2 1 3] in priority order", got)
	}
	list, _ = st.Lookup(0x12FF)
	if got := list.Labels(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Lookup(0x12FF) labels = %v, want [1 3]", got)
	}
	list, _ = st.Lookup(0xFFFF)
	if got := list.Labels(); len(got) != 1 || got[0] != 3 {
		t.Errorf("Lookup(0xFFFF) labels = %v, want [3]", got)
	}

	if st.ClassCount() != 3 {
		t.Errorf("ClassCount = %d, want 3 equivalence classes", st.ClassCount())
	}
	if st.PrefixCount() != 3 {
		t.Errorf("PrefixCount = %d, want 3", st.PrefixCount())
	}
	if st.MemoryBits() != (1<<16)*2 {
		t.Errorf("MemoryBits = %d, want %d (64K entries of 2 bits)", st.MemoryBits(), (1<<16)*2)
	}

	// Removing the host route merges its class away.
	if _, err := st.Remove(0x1234, 16, 2); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := st.Remove(0x1234, 16, 2); err == nil {
		t.Error("double remove should fail")
	}
	list, _ = st.Lookup(0x1234)
	if got := list.Labels(); len(got) != 2 || got[0] != 1 {
		t.Errorf("after remove: Lookup(0x1234) labels = %v, want [1 3]", got)
	}
	if st.ClassCount() != 2 {
		t.Errorf("after remove: ClassCount = %d, want 2", st.ClassCount())
	}
}

func TestSegmentTablePriorityRefresh(t *testing.T) {
	st, err := NewSegmentTable(16, 13)
	if err != nil {
		t.Fatalf("NewSegmentTable: %v", err)
	}
	if _, err := st.Insert(0x1200, 8, 1, 7); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if _, err := st.Insert(0x1200, 8, 2, 3); err != nil {
		t.Fatalf("Insert second label: %v", err)
	}
	// Refreshing with a better priority reorders the class list; a worse one
	// is ignored.
	if writes, err := st.Insert(0x1200, 8, 1, 1); err != nil || writes == 0 {
		t.Fatalf("refresh with better priority: writes=%d err=%v", writes, err)
	}
	if writes, err := st.Insert(0x1200, 8, 1, 99); err != nil || writes != 0 {
		t.Fatalf("refresh with worse priority should be free: writes=%d err=%v", writes, err)
	}
	list, _ := st.Lookup(0x1280)
	if hpml, ok := list.HPML(); !ok || hpml.Label != label.Label(1) || hpml.Priority != 1 {
		t.Errorf("HPML = %v, want label 1 at priority 1", hpml)
	}
}

func TestSegmentTableEmptyAndStats(t *testing.T) {
	st, err := NewSegmentTable(8, 7)
	if err != nil {
		t.Fatalf("NewSegmentTable: %v", err)
	}
	list, accesses := st.Lookup(42)
	if list.Len() != 0 || accesses != 1 {
		t.Errorf("empty Lookup = %d labels, %d accesses", list.Len(), accesses)
	}
	if st.MemoryBits() != 0 || st.LabelListBits() != 0 {
		t.Errorf("empty table reports %d node bits, %d label bits", st.MemoryBits(), st.LabelListBits())
	}
	if _, err := st.Insert(0x40, 2, 1, 0); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	st.Lookup(0x41)
	stats := st.SegmentStats()
	if stats.Lookups != 2 || stats.Rebuilds != 1 || stats.UpdateWrites != 256 {
		t.Errorf("stats = %+v, want 2 lookups, 1 rebuild, 256 update writes", stats)
	}
	st.ResetStats()
	if st.SegmentStats() != (SegmentStats{}) {
		t.Error("ResetStats should zero the counters")
	}
}
