package rfc

import (
	"fmt"
	"sort"
	"sync/atomic"

	"sdnpc/internal/label"
)

// SegmentTable is a single-field RFC reduction over one key segment: the
// phase-0 machinery of Recursive Flow Classification applied to a single
// chunk (§ "Phase 0" of Gupta & McKeown). Every stored prefix contributes an
// interval of the key space; the software side sweeps the interval
// boundaries, collapses equal label sets into equivalence classes and
// downloads a direct-indexed value→class table. A hardware lookup is then a
// single memory access — RFC's classic trade of very fast lookups against a
// large precomputed table, here available as a pluggable IP-segment engine.
//
// Like the BST engine (and unlike the incrementally updatable trie), the
// structure is rebuilt in software on update and re-downloaded; the reported
// write cost of an update is therefore the full table size. The rebuild is
// deferred until the next lookup so bulk rule installation does not pay the
// sweep per rule.
type SegmentTable struct {
	keyBits        int
	labelEntryBits int

	prefixes []segPrefix
	dirty    bool

	// table maps every key value to its equivalence-class ID; classes holds
	// the per-class priority-ordered label lists.
	table        []uint32
	classes      []*label.List
	classEntries int

	// The counters are atomic so that Lookup on a prepared (non-dirty) table
	// is safe to call from many goroutines at once.
	lookups        atomic.Uint64
	lookupAccesses atomic.Uint64
	updateWrites   atomic.Uint64
	rebuilds       atomic.Uint64
}

// segPrefix is one stored (prefix, label) pair.
type segPrefix struct {
	value    uint32
	bits     uint8
	lbl      label.Label
	priority int
}

// NewSegmentTable creates an empty single-field RFC table over keys of the
// given width, storing labels of labelEntryBits in the Labels memory.
func NewSegmentTable(keyBits, labelEntryBits int) (*SegmentTable, error) {
	if keyBits < 1 || keyBits > 16 {
		return nil, fmt.Errorf("rfc: segment key width %d out of range [1,16]", keyBits)
	}
	if labelEntryBits < 1 {
		return nil, fmt.Errorf("rfc: label entry width must be positive")
	}
	return &SegmentTable{keyBits: keyBits, labelEntryBits: labelEntryBits}, nil
}

// KeyBits returns the key width.
func (t *SegmentTable) KeyBits() int { return t.keyBits }

func (t *SegmentTable) domain() int { return 1 << t.keyBits }

func (t *SegmentTable) checkPrefix(value uint32, bits uint8) error {
	if int(bits) > t.keyBits {
		return fmt.Errorf("rfc: prefix length %d exceeds key width %d", bits, t.keyBits)
	}
	if value >= uint32(t.domain()) {
		return fmt.Errorf("rfc: prefix value %#x exceeds key width %d", value, t.keyBits)
	}
	return nil
}

// Insert stores a prefix carrying a label and priority. Re-inserting a
// stored (prefix, label) pair refreshes the priority, keeping the better
// one. The returned count is the phase-0 table download size — the structure
// is regenerated and re-downloaded, as with the BST's software rebuild.
func (t *SegmentTable) Insert(value uint32, bits uint8, lbl label.Label, priority int) (writes int, err error) {
	if err := t.checkPrefix(value, bits); err != nil {
		return 0, err
	}
	for i, p := range t.prefixes {
		if p.value == value && p.bits == bits && p.lbl == lbl {
			if priority >= p.priority {
				return 0, nil
			}
			t.prefixes[i].priority = priority
			return t.invalidate(), nil
		}
	}
	t.prefixes = append(t.prefixes, segPrefix{value: value, bits: bits, lbl: lbl, priority: priority})
	return t.invalidate(), nil
}

// Remove deletes a stored (prefix, label) pair.
func (t *SegmentTable) Remove(value uint32, bits uint8, lbl label.Label) (writes int, err error) {
	if err := t.checkPrefix(value, bits); err != nil {
		return 0, err
	}
	for i, p := range t.prefixes {
		if p.value == value && p.bits == bits && p.lbl == lbl {
			t.prefixes = append(t.prefixes[:i], t.prefixes[i+1:]...)
			return t.invalidate(), nil
		}
	}
	return 0, fmt.Errorf("rfc: prefix %#x/%d with label %d not present", value, bits, lbl)
}

// invalidate marks the table for regeneration and accounts the download cost
// of the update: the full direct-indexed table.
func (t *SegmentTable) invalidate() int {
	t.dirty = true
	writes := t.domain()
	t.updateWrites.Add(uint64(writes))
	return writes
}

// prefixRange returns the inclusive key range covered by a prefix.
func (t *SegmentTable) prefixRange(p segPrefix) (uint32, uint32) {
	span := uint32(1) << (uint32(t.keyBits) - uint32(p.bits))
	start := p.value &^ (span - 1)
	return start, start + span - 1
}

// rebuild regenerates the equivalence-class table from the stored prefixes
// with a boundary sweep, mirroring buildPhase0.
func (t *SegmentTable) rebuild() {
	t.dirty = false
	t.rebuilds.Add(1)
	t.classEntries = 0
	if len(t.prefixes) == 0 {
		t.table = nil
		t.classes = nil
		return
	}
	if t.table == nil {
		t.table = make([]uint32, t.domain())
	}

	boundarySet := map[uint32]struct{}{0: {}}
	for _, p := range t.prefixes {
		start, end := t.prefixRange(p)
		boundarySet[start] = struct{}{}
		if end+1 < uint32(t.domain()) {
			boundarySet[end+1] = struct{}{}
		}
	}
	boundaries := make([]uint32, 0, len(boundarySet))
	for b := range boundarySet {
		boundaries = append(boundaries, b)
	}
	sort.Slice(boundaries, func(i, j int) bool { return boundaries[i] < boundaries[j] })

	t.classes = nil
	classIndex := make(map[string]uint32)
	for bi, start := range boundaries {
		end := uint32(t.domain()) - 1
		if bi+1 < len(boundaries) {
			end = boundaries[bi+1] - 1
		}
		// Elementary intervals never straddle a prefix boundary, so coverage
		// is decided by the interval start alone.
		list := &label.List{}
		for _, p := range t.prefixes {
			lo, hi := t.prefixRange(p)
			if lo <= start && start <= hi {
				list.Insert(label.PriorityLabel{Label: p.lbl, Priority: p.priority})
			}
		}
		key := classKey(list)
		id, ok := classIndex[key]
		if !ok {
			id = uint32(len(t.classes))
			classIndex[key] = id
			t.classes = append(t.classes, list)
			t.classEntries += list.Len()
		}
		for v := start; v <= end; v++ {
			t.table[v] = id
		}
	}
}

// classKey canonicalises a label list for equivalence-class deduplication.
func classKey(l *label.List) string {
	items := l.Items()
	buf := make([]byte, 0, len(items)*6)
	for _, it := range items {
		buf = append(buf, byte(it.Label), byte(it.Label>>8),
			byte(it.Priority), byte(it.Priority>>8), byte(it.Priority>>16), byte(it.Priority>>24))
	}
	return string(buf)
}

// Lookup returns the priority-ordered label list of every stored prefix
// matching the key and the number of memory accesses: one, the direct table
// index. The returned list is freshly allocated.
func (t *SegmentTable) Lookup(key uint32) (*label.List, int) {
	result := &label.List{}
	return result, t.LookupInto(key, result)
}

// LookupInto is the allocation-free variant of Lookup: it resets out, fills
// it with the matching labels and returns the access count. The table must
// be clean (Prepare) for the call to be allocation-free.
func (t *SegmentTable) LookupInto(key uint32, out *label.List) int {
	if t.dirty {
		t.rebuild()
	}
	t.lookups.Add(1)
	t.lookupAccesses.Add(1)
	out.Reset()
	if len(t.table) == 0 || key >= uint32(t.domain()) {
		return 1
	}
	out.Merge(t.classes[t.table[key]])
	return 1
}

// ClassCount returns the number of equivalence classes.
func (t *SegmentTable) ClassCount() int {
	if t.dirty {
		t.rebuild()
	}
	return len(t.classes)
}

// PrefixCount returns the number of stored (prefix, label) pairs.
func (t *SegmentTable) PrefixCount() int { return len(t.prefixes) }

// MemoryBits returns the node storage consumed by the direct-indexed table:
// one class ID per addressable key value.
func (t *SegmentTable) MemoryBits() int {
	if t.dirty {
		t.rebuild()
	}
	if len(t.classes) == 0 {
		return 0
	}
	return t.domain() * ceilLog2(len(t.classes)+1)
}

// LabelListBits returns the Labels-memory storage consumed by the per-class
// label lists.
func (t *SegmentTable) LabelListBits() int {
	if t.dirty {
		t.rebuild()
	}
	return t.classEntries * t.labelEntryBits
}

// SegmentStats summarises the table's access counters.
type SegmentStats struct {
	Lookups        uint64
	LookupAccesses uint64
	UpdateWrites   uint64
	Rebuilds       uint64
}

// Stats returns a snapshot of the counters.
func (t *SegmentTable) SegmentStats() SegmentStats {
	return SegmentStats{
		Lookups:        t.lookups.Load(),
		LookupAccesses: t.lookupAccesses.Load(),
		UpdateWrites:   t.updateWrites.Load(),
		Rebuilds:       t.rebuilds.Load(),
	}
}

// ResetStats zeroes the counters without touching the stored prefixes.
func (t *SegmentTable) ResetStats() {
	t.lookups.Store(0)
	t.lookupAccesses.Store(0)
	t.updateWrites.Store(0)
	t.rebuilds.Store(0)
}

// Prepare forces the deferred rebuild so that subsequent Lookups are pure
// reads. The classifier calls it before publishing a snapshot to concurrent
// readers; a dirty table reaching a reader would make Lookup's lazy rebuild
// a data race.
func (t *SegmentTable) Prepare() {
	if t.dirty {
		t.rebuild()
	}
}

// Clone returns an independent copy of the table. The direct-indexed class
// table must be deep-copied because rebuild reuses the existing array in
// place; the per-class label lists are cloned for the same reason the
// prefixes are — the copy may be mutated while readers still traverse the
// original. The table is prepared first so the copy starts clean.
func (t *SegmentTable) Clone() *SegmentTable {
	t.Prepare()
	c := &SegmentTable{
		keyBits:        t.keyBits,
		labelEntryBits: t.labelEntryBits,
		prefixes:       append([]segPrefix(nil), t.prefixes...),
		table:          append([]uint32(nil), t.table...),
		classes:        make([]*label.List, len(t.classes)),
		classEntries:   t.classEntries,
	}
	for i, l := range t.classes {
		c.classes[i] = l.Clone()
	}
	c.lookups.Store(t.lookups.Load())
	c.lookupAccesses.Store(t.lookupAccesses.Load())
	c.updateWrites.Store(t.updateWrites.Load())
	c.rebuilds.Store(t.rebuilds.Load())
	return c
}
