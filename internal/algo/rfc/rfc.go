// Package rfc implements Recursive Flow Classification (Gupta & McKeown,
// SIGCOMM'99), one of the multi-field baselines the paper compares against in
// Table I.
//
// RFC reduces the packet header to the matching rule in a fixed number of
// table indexings. Phase 0 maps each header chunk (the two 16-bit halves of
// each IP address, the two ports and the protocol) to an equivalence-class
// identifier; later phases combine pairs (or triples) of identifiers through
// precomputed cross-product tables until a single identifier remains, which
// indexes the highest-priority matching rule.
//
// The classic trade-off, visible in Table I, is very fast lookups (a small,
// constant number of memory accesses) against very large precomputed tables;
// the cross-product tables grow with the product of the equivalence-class
// counts of their inputs.
//
// The built classifier is flat: every phase table lives in one contiguous
// arena (the protocol chunk's class IDs always fit a byte, so its table uses
// the arena's byte space), and the final phase resolves to a precomputed
// best-rule-per-class array. The published structure is pointer-free — the
// collector scans it in O(1) — and Classify allocates nothing.
package rfc

import (
	"fmt"
	"sort"
	"sync/atomic"

	"sdnpc/internal/arena"
	"sdnpc/internal/fivetuple"
)

// chunk identifies one of the seven phase-0 header chunks.
type chunk int

const (
	chunkSrcHi chunk = iota
	chunkSrcLo
	chunkDstHi
	chunkDstLo
	chunkSrcPort
	chunkDstPort
	chunkProto
	numChunks
)

// noRule is the finalBest sentinel for a class that matches no rule.
const noRule = ^uint32(0)

// Classifier is an RFC classifier built from a rule set. After Build it is
// read-only: all tables are index-linked views into one arena.
type Classifier struct {
	rules []fivetuple.Rule
	ar    *arena.Arena

	// phase0 maps a chunk value to its equivalence-class ID; the slices are
	// views into the arena. The protocol chunk lives in the byte space
	// (256 values, at most 256 classes) — its phase0 entry is nil.
	phase0     [numChunks][]uint32
	protoTable []byte

	// Later phases: crossTable[t] is indexed by idA*width+idB.
	srcTable   crossTable // (srcHi, srcLo)
	dstTable   crossTable // (dstHi, dstLo)
	portTable  crossTable // (srcPort, dstPort)
	l3Table    crossTable // (src, dst)
	l4Table    crossTable // (port, proto)
	finalTable crossTable // (l3, l4)

	// finalBest[class] is the lowest (best-priority) rule index of the final
	// class, or noRule — the precomputed resolution of the final class sets.
	finalBest []uint32

	classCounts [numChunks]int
	memoryBits  int

	// Atomic so that a built classifier can serve Classify from any number
	// of goroutines concurrently (read-only after build).
	lookups        atomic.Uint64
	lookupAccesses atomic.Uint64
}

// crossTable combines two equivalence-class ID streams into one. entries is
// a view into the classifier's arena.
type crossTable struct {
	widthB  int
	classes int
	entries []uint32
}

// index returns the combined class ID for the input pair.
func (t *crossTable) index(a, b uint32) uint32 {
	return t.entries[int(a)*t.widthB+int(b)]
}

// entryBits returns the width of one stored entry.
func (t *crossTable) entryBits() int { return ceilLog2(t.classes) }

// memoryBits returns the storage consumed by the table.
func (t *crossTable) memoryBits() int { return len(t.entries) * t.entryBits() }

func ceilLog2(n int) int {
	bits := 1
	for (1 << bits) < n {
		bits++
	}
	return bits
}

// buildTable is the transient (pointer-rich) form of a cross table: the
// class sets exist only while later tables are derived from them, then the
// entries are flattened into the arena and the sets dropped.
type buildTable struct {
	widthB  int
	entries []uint32
	sets    [][]uint32
}

// Build constructs the RFC tables for a rule set and flattens them into one
// arena.
func Build(rs *fivetuple.RuleSet) (*Classifier, error) {
	if rs.Len() == 0 {
		return nil, fmt.Errorf("rfc: empty rule set")
	}
	c := &Classifier{rules: rs.Rules()}
	phase0, classSets := c.buildPhase0()
	src, err := cross(classSets[chunkSrcHi], classSets[chunkSrcLo])
	if err != nil {
		return nil, err
	}
	dst, err := cross(classSets[chunkDstHi], classSets[chunkDstLo])
	if err != nil {
		return nil, err
	}
	port, err := cross(classSets[chunkSrcPort], classSets[chunkDstPort])
	if err != nil {
		return nil, err
	}
	l3, err := cross(src.sets, dst.sets)
	if err != nil {
		return nil, err
	}
	l4, err := cross(port.sets, classSets[chunkProto])
	if err != nil {
		return nil, err
	}
	final, err := cross(l3.sets, l4.sets)
	if err != nil {
		return nil, err
	}
	for ch := chunk(0); ch < numChunks; ch++ {
		c.classCounts[ch] = len(classSets[ch])
	}
	c.flatten(phase0, []*buildTable{src, dst, port, l3, l4, final})
	return c, nil
}

// flatten copies the phase tables into one contiguous arena and precomputes
// the final best-rule array, dropping every transient build structure.
func (c *Classifier) flatten(phase0 [numChunks][]uint32, tables []*buildTable) {
	b := arena.NewBuilder()
	var p0 [numChunks]arena.Handle
	for ch := chunk(0); ch < numChunks; ch++ {
		if ch == chunkProto {
			continue
		}
		h, w := b.Words(len(phase0[ch]))
		copy(w, phase0[ch])
		p0[ch] = h
	}
	protoH, pb := b.Bytes(chunkDomain(chunkProto), 1)
	for v, id := range phase0[chunkProto] {
		pb[v] = byte(id)
	}
	flat := make([]crossTable, len(tables))
	handles := make([]arena.Handle, len(tables))
	for i, t := range tables {
		h, w := b.Words(len(t.entries))
		copy(w, t.entries)
		handles[i] = h
		flat[i] = crossTable{widthB: t.widthB, classes: len(t.sets)}
	}
	final := tables[len(tables)-1]
	bestH, bw := b.Words(len(final.sets))
	for id, set := range final.sets {
		if len(set) == 0 {
			bw[id] = noRule
		} else {
			bw[id] = set[0]
		}
	}
	c.ar = b.Finish()
	for ch := chunk(0); ch < numChunks; ch++ {
		if ch == chunkProto {
			continue
		}
		c.phase0[ch] = c.ar.Words(p0[ch], chunkDomain(ch))
	}
	c.protoTable = c.ar.Bytes(protoH, chunkDomain(chunkProto))
	for i, t := range tables {
		flat[i].entries = c.ar.Words(handles[i], len(t.entries))
	}
	c.srcTable, c.dstTable, c.portTable = flat[0], flat[1], flat[2]
	c.l3Table, c.l4Table, c.finalTable = flat[3], flat[4], flat[5]
	c.finalBest = c.ar.Words(bestH, len(final.sets))

	total := 0
	for ch := chunk(0); ch < numChunks; ch++ {
		total += chunkDomain(ch) * ceilLog2(c.classCounts[ch])
	}
	for i := range flat {
		total += flat[i].memoryBits()
	}
	c.memoryBits = total
}

// chunkRange returns the inclusive range of chunk values matched by the rule
// in the given chunk dimension.
func chunkRange(r fivetuple.Rule, c chunk) (lo, hi uint32, wildcardProto bool) {
	segRange := func(value uint16, bits uint8) (uint32, uint32) {
		span := uint32(1) << (16 - uint32(bits))
		start := uint32(value) &^ (span - 1)
		return start, start + span - 1
	}
	switch c {
	case chunkSrcHi:
		v, b := r.SrcPrefix.HighSegment()
		lo, hi = segRange(v, b)
	case chunkSrcLo:
		v, b := r.SrcPrefix.LowSegment()
		lo, hi = segRange(v, b)
	case chunkDstHi:
		v, b := r.DstPrefix.HighSegment()
		lo, hi = segRange(v, b)
	case chunkDstLo:
		v, b := r.DstPrefix.LowSegment()
		lo, hi = segRange(v, b)
	case chunkSrcPort:
		lo, hi = uint32(r.SrcPort.Lo), uint32(r.SrcPort.Hi)
	case chunkDstPort:
		lo, hi = uint32(r.DstPort.Lo), uint32(r.DstPort.Hi)
	case chunkProto:
		if r.Protocol.IsWildcard() {
			return 0, 255, true
		}
		lo, hi = uint32(r.Protocol.Value), uint32(r.Protocol.Value)
	}
	return lo, hi, false
}

func chunkDomain(c chunk) int {
	if c == chunkProto {
		return 256
	}
	return 65536
}

// buildPhase0 computes, for every chunk, the value→class table and the class
// rule sets using a boundary sweep.
func (c *Classifier) buildPhase0() (phase0 [numChunks][]uint32, classSets [numChunks][][]uint32) {
	for ch := chunk(0); ch < numChunks; ch++ {
		domain := chunkDomain(ch)
		// Event lists: rules starting and ending at each value.
		starts := make(map[uint32][]uint32)
		ends := make(map[uint32][]uint32)
		boundaries := map[uint32]struct{}{0: {}}
		for idx, r := range c.rules {
			lo, hi, _ := chunkRange(r, ch)
			starts[lo] = append(starts[lo], uint32(idx))
			ends[hi] = append(ends[hi], uint32(idx))
			boundaries[lo] = struct{}{}
			if hi+1 < uint32(domain) {
				boundaries[hi+1] = struct{}{}
			}
		}
		points := make([]uint32, 0, len(boundaries))
		for b := range boundaries {
			points = append(points, b)
		}
		sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })

		table := make([]uint32, domain)
		classIndex := make(map[string]uint32)
		var sets [][]uint32
		active := make(map[uint32]struct{})
		for pi, start := range points {
			end := uint32(domain)
			if pi+1 < len(points) {
				end = points[pi+1]
			}
			// Apply start events: every rule range starts exactly on an
			// interval boundary by construction.
			for _, idx := range starts[start] {
				active[idx] = struct{}{}
			}
			set := setFromMap(active)
			key := setKey(set)
			id, ok := classIndex[key]
			if !ok {
				id = uint32(len(sets))
				classIndex[key] = id
				sets = append(sets, set)
			}
			for v := start; v < end; v++ {
				table[v] = id
			}
			// Apply end events: every rule range ends exactly on the last
			// value of some elementary interval.
			for _, idx := range ends[end-1] {
				delete(active, idx)
			}
		}
		phase0[ch] = table
		classSets[ch] = sets
	}
	return phase0, classSets
}

func setFromMap(m map[uint32]struct{}) []uint32 {
	out := make([]uint32, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func setKey(set []uint32) string {
	buf := make([]byte, 0, len(set)*4)
	for _, v := range set {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(buf)
}

// maxCrossEntries bounds the size of any single cross-product table; beyond
// this the rule set is considered too large for RFC (the memory explosion the
// paper's Table I quantifies).
const maxCrossEntries = 64 << 20

// cross builds the cross-product table of two class-set families.
func cross(a, b [][]uint32) (*buildTable, error) {
	entries := len(a) * len(b)
	if entries > maxCrossEntries {
		return nil, fmt.Errorf("rfc: cross-product table of %d x %d classes exceeds the %d-entry limit",
			len(a), len(b), maxCrossEntries)
	}
	t := &buildTable{widthB: len(b), entries: make([]uint32, entries)}
	classIndex := make(map[string]uint32)
	for i, sa := range a {
		for j, sb := range b {
			inter := intersect(sa, sb)
			key := setKey(inter)
			id, ok := classIndex[key]
			if !ok {
				id = uint32(len(t.sets))
				classIndex[key] = id
				t.sets = append(t.sets, inter)
			}
			t.entries[i*t.widthB+j] = id
		}
	}
	return t, nil
}

// intersect returns the sorted intersection of two sorted slices.
func intersect(a, b []uint32) []uint32 {
	var out []uint32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// Classify returns the index of the highest-priority matching rule and the
// number of table accesses performed. It allocates nothing: thirteen
// indexings of the flat arena resolve the header.
func (c *Classifier) Classify(h fivetuple.Header) (ruleIndex int, matched bool, accesses int) {
	c.lookups.Add(1)
	// Phase 0: seven chunk tables.
	srcHi := c.phase0[chunkSrcHi][h.SrcIP.High16()]
	srcLo := c.phase0[chunkSrcLo][h.SrcIP.Low16()]
	dstHi := c.phase0[chunkDstHi][h.DstIP.High16()]
	dstLo := c.phase0[chunkDstLo][h.DstIP.Low16()]
	srcPort := c.phase0[chunkSrcPort][h.SrcPort]
	dstPort := c.phase0[chunkDstPort][h.DstPort]
	proto := uint32(c.protoTable[h.Protocol])
	accesses = 7
	// Phase 1.
	src := c.srcTable.index(srcHi, srcLo)
	dst := c.dstTable.index(dstHi, dstLo)
	ports := c.portTable.index(srcPort, dstPort)
	accesses += 3
	// Phase 2.
	l3 := c.l3Table.index(src, dst)
	l4 := c.l4Table.index(ports, proto)
	accesses += 2
	// Phase 3.
	final := c.finalTable.index(l3, l4)
	accesses++
	c.lookupAccesses.Add(uint64(accesses))

	best := c.finalBest[final]
	if best == noRule {
		return 0, false, accesses
	}
	return int(best), true, accesses
}

// AccessesPerLookup returns the constant number of table indexings RFC
// performs per packet.
func (c *Classifier) AccessesPerLookup() int { return 13 }

// MemoryBits returns the storage consumed by all phase tables.
func (c *Classifier) MemoryBits() int { return c.memoryBits }

// ArenaBytes returns the backing storage of the flattened tables — the one
// allocation a published snapshot hands the collector.
func (c *Classifier) ArenaBytes() int { return c.ar.SizeBytes() }

// Stats summarises lookup counters.
type Stats struct {
	Lookups        uint64
	LookupAccesses uint64
}

// Stats returns a snapshot of the counters.
func (c *Classifier) Stats() Stats {
	return Stats{Lookups: c.lookups.Load(), LookupAccesses: c.lookupAccesses.Load()}
}

// ResetStats zeroes the counters without touching the built tables.
func (c *Classifier) ResetStats() {
	c.lookups.Store(0)
	c.lookupAccesses.Store(0)
}
