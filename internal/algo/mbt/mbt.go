// Package mbt implements the Multi-Bit Trie (MBT) single-field lookup
// engine, the fast IP-segment algorithm of the paper's configurable
// architecture (§IV.B, §IV.C).
//
// The engine looks up a fixed-width key (16 bits for the architecture's IP
// segments; up to 32 bits for the multi-level tries used by the Table I
// baselines) against a set of prefixes, each tagged with a label and a
// priority. A lookup returns the priority-ordered list of labels of every
// matching prefix together with the number of node-memory accesses
// performed — the quantity the paper's evaluation is based on.
//
// Structure: the trie is divided into levels of fixed stride (5, 5 and 6
// bits for the architecture's 16-bit segments). Each node is an array of
// 2^stride entries; an entry holds an optional child pointer and an optional
// label list containing the labels of all prefixes that terminate at this
// level and cover the entry (controlled prefix expansion). Because the
// structure is fixed, rule insertion and deletion are incremental — the
// property that makes the label method applicable (§III.C).
package mbt

import (
	"fmt"
	"sync/atomic"

	"sdnpc/internal/label"
)

// Config describes the trie geometry.
type Config struct {
	// KeyBits is the width of lookup keys and prefixes, at most 32.
	KeyBits int
	// Strides is the number of bits consumed per level; it must sum to
	// KeyBits.
	Strides []int
	// NodeEntryBits is the storage width of one node entry, used for memory
	// accounting. The architecture's entry holds a 13-bit child pointer, a
	// 13-bit label-list pointer and two valid flags, padded to 32 bits.
	NodeEntryBits int
	// LabelEntryBits is the width of one stored label in the Labels memory
	// block (13 bits for IP segments).
	LabelEntryBits int
}

// SegmentConfig returns the architecture's default geometry for one 16-bit
// IP segment: three levels with 5-, 5- and 6-bit strides (§IV.C).
func SegmentConfig() Config {
	return Config{KeyBits: 16, Strides: []int{5, 5, 6}, NodeEntryBits: 32, LabelEntryBits: 13}
}

// UniformConfig returns a trie over keyBits-wide keys with the given number
// of levels and near-uniform strides, as used by the Option 1 (5-level) and
// Option 2 (4-level) baselines of Table I.
func UniformConfig(keyBits, levels int) Config {
	strides := make([]int, levels)
	base := keyBits / levels
	extra := keyBits % levels
	for i := range strides {
		strides[i] = base
		if i < extra {
			strides[i]++
		}
	}
	return Config{KeyBits: keyBits, Strides: strides, NodeEntryBits: 32, LabelEntryBits: 13}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.KeyBits < 1 || c.KeyBits > 32 {
		return fmt.Errorf("mbt: key width %d out of range [1,32]", c.KeyBits)
	}
	if len(c.Strides) == 0 {
		return fmt.Errorf("mbt: at least one stride level is required")
	}
	sum := 0
	for i, s := range c.Strides {
		if s < 1 || s > 16 {
			return fmt.Errorf("mbt: stride %d at level %d out of range [1,16]", s, i)
		}
		sum += s
	}
	if sum != c.KeyBits {
		return fmt.Errorf("mbt: strides sum to %d, want %d", sum, c.KeyBits)
	}
	if c.NodeEntryBits < 1 {
		return fmt.Errorf("mbt: node entry width must be positive")
	}
	if c.LabelEntryBits < 1 {
		return fmt.Errorf("mbt: label entry width must be positive")
	}
	return nil
}

// Levels returns the number of trie levels.
func (c Config) Levels() int { return len(c.Strides) }

// entry is one slot of a trie node.
type entry struct {
	child  *node
	labels *label.List
}

// node is one trie node: an array of 2^stride entries.
type node struct {
	level   int
	entries []entry
}

func newNode(level, stride int) *node {
	return &node{level: level, entries: make([]entry, 1<<stride)}
}

// Engine is a Multi-Bit Trie lookup engine.
type Engine struct {
	cfg  Config
	root *node

	// nodes counts allocated nodes per level for memory accounting.
	nodesPerLevel []int
	labelEntries  int
	// Counters for the access model. They are atomic so that Lookup — which
	// is otherwise read-only — stays safe to call from many goroutines at
	// once (the read-only-after-build contract of internal/engine).
	lookupAccesses atomic.Uint64
	lookups        atomic.Uint64
	updateWrites   atomic.Uint64
}

// New creates an engine with the given configuration.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, nodesPerLevel: make([]int, cfg.Levels())}
	e.root = e.allocNode(0)
	return e, nil
}

// MustNew is like New but panics on error; intended for static
// configurations validated by tests.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

func (e *Engine) allocNode(level int) *node {
	e.nodesPerLevel[level]++
	return newNode(level, e.cfg.Strides[level])
}

func (e *Engine) freeNode(level int) {
	e.nodesPerLevel[level]--
}

// checkPrefix validates an inserted or removed prefix.
func (e *Engine) checkPrefix(value uint32, bits uint8) error {
	if int(bits) > e.cfg.KeyBits {
		return fmt.Errorf("mbt: prefix length %d exceeds key width %d", bits, e.cfg.KeyBits)
	}
	if e.cfg.KeyBits < 32 && value >= 1<<e.cfg.KeyBits {
		return fmt.Errorf("mbt: prefix value %#x exceeds key width %d", value, e.cfg.KeyBits)
	}
	return nil
}

// Insert adds a prefix (value with the given number of significant leading
// bits) carrying a label and the priority of the best rule that uses it.
// Inserting an existing (prefix, label) pair refreshes the priority if the
// new one is better. The returned count is the number of node-entry writes,
// the engine-side cost of the incremental update.
func (e *Engine) Insert(value uint32, bits uint8, lbl label.Label, priority int) (writes int, err error) {
	if err := e.checkPrefix(value, bits); err != nil {
		return 0, err
	}
	writes = e.insert(e.root, value, int(bits), 0, lbl, priority)
	e.updateWrites.Add(uint64(writes))
	return writes, nil
}

// insert walks the trie placing the label on every entry covered by the
// prefix at its terminal level, allocating child nodes on the way.
func (e *Engine) insert(n *node, value uint32, bits, consumed int, lbl label.Label, priority int) int {
	stride := e.cfg.Strides[n.level]
	remaining := bits - consumed
	chunk := e.chunk(value, n.level)
	if remaining <= stride {
		// The prefix terminates in this node: it covers 2^(stride-remaining)
		// consecutive entries starting at the expanded chunk.
		span := 1 << (stride - remaining)
		start := 0
		if remaining > 0 {
			start = (chunk >> (stride - remaining)) << (stride - remaining)
		}
		writes := 0
		for i := start; i < start+span; i++ {
			if n.entries[i].labels == nil {
				n.entries[i].labels = &label.List{}
				e.labelEntries++
			} else if _, present := containsLabel(n.entries[i].labels, lbl); !present {
				e.labelEntries++
			}
			n.entries[i].labels.Insert(label.PriorityLabel{Label: lbl, Priority: priority})
			writes++
		}
		return writes
	}
	// Descend.
	writes := 0
	if n.entries[chunk].child == nil {
		n.entries[chunk].child = e.allocNode(n.level + 1)
		writes++ // writing the new child pointer
	}
	return writes + e.insert(n.entries[chunk].child, value, bits, consumed+stride, lbl, priority)
}

// Remove deletes a (prefix, label) pair. It reports the number of node-entry
// writes and an error if the pair is not present.
func (e *Engine) Remove(value uint32, bits uint8, lbl label.Label) (writes int, err error) {
	if err := e.checkPrefix(value, bits); err != nil {
		return 0, err
	}
	writes, found := e.remove(e.root, value, int(bits), 0, lbl)
	if !found {
		return writes, fmt.Errorf("mbt: prefix %#x/%d with label %d not present", value, bits, lbl)
	}
	e.updateWrites.Add(uint64(writes))
	return writes, nil
}

func (e *Engine) remove(n *node, value uint32, bits, consumed int, lbl label.Label) (writes int, found bool) {
	stride := e.cfg.Strides[n.level]
	remaining := bits - consumed
	chunk := e.chunk(value, n.level)
	if remaining <= stride {
		span := 1 << (stride - remaining)
		start := 0
		if remaining > 0 {
			start = (chunk >> (stride - remaining)) << (stride - remaining)
		}
		for i := start; i < start+span; i++ {
			lst := n.entries[i].labels
			if lst != nil && lst.Remove(lbl) {
				found = true
				writes++
				e.labelEntries--
				if lst.Len() == 0 {
					n.entries[i].labels = nil
				}
			}
		}
		return writes, found
	}
	child := n.entries[chunk].child
	if child == nil {
		return 0, false
	}
	writes, found = e.remove(child, value, bits, consumed+stride, lbl)
	if found && childIsEmpty(child) {
		n.entries[chunk].child = nil
		e.freeNode(child.level)
		writes++
	}
	return writes, found
}

func childIsEmpty(n *node) bool {
	for _, en := range n.entries {
		if en.child != nil || (en.labels != nil && en.labels.Len() > 0) {
			return false
		}
	}
	return true
}

func containsLabel(l *label.List, lbl label.Label) (int, bool) {
	for i, item := range l.Items() {
		if item.Label == lbl {
			return i, true
		}
	}
	return 0, false
}

// chunk extracts the stride-sized slice of the key addressed by the given
// level.
func (e *Engine) chunk(value uint32, level int) int {
	shift := e.cfg.KeyBits
	for i := 0; i <= level; i++ {
		shift -= e.cfg.Strides[i]
	}
	return int(value>>shift) & ((1 << e.cfg.Strides[level]) - 1)
}

// Lookup returns the priority-ordered list of labels of every prefix
// matching the key, and the number of node-memory accesses performed (one
// per level visited). The returned list is freshly allocated and safe to
// modify.
func (e *Engine) Lookup(key uint32) (*label.List, int) {
	result := &label.List{}
	return result, e.LookupInto(key, result)
}

// LookupInto is the allocation-free variant of Lookup: it resets out, fills
// it with the matching labels and returns the access count.
func (e *Engine) LookupInto(key uint32, out *label.List) int {
	out.Reset()
	accesses := 0
	n := e.root
	for n != nil {
		accesses++
		chunk := e.chunk(key, n.level)
		en := n.entries[chunk]
		if en.labels != nil {
			out.Merge(en.labels)
		}
		n = en.child
	}
	e.lookups.Add(1)
	e.lookupAccesses.Add(uint64(accesses))
	return accesses
}

// WorstCaseAccesses returns the maximum number of node accesses a lookup can
// take: the number of levels.
func (e *Engine) WorstCaseAccesses() int { return e.cfg.Levels() }

// NodeCount returns the number of allocated trie nodes.
func (e *Engine) NodeCount() int {
	total := 0
	for _, n := range e.nodesPerLevel {
		total += n
	}
	return total
}

// NodesPerLevel returns the allocated node count of each level.
func (e *Engine) NodesPerLevel() []int {
	out := make([]int, len(e.nodesPerLevel))
	copy(out, e.nodesPerLevel)
	return out
}

// MemoryBits returns the node storage consumed by the trie: every allocated
// node occupies 2^stride entries of NodeEntryBits.
func (e *Engine) MemoryBits() int {
	bits := 0
	for level, count := range e.nodesPerLevel {
		bits += count * (1 << e.cfg.Strides[level]) * e.cfg.NodeEntryBits
	}
	return bits
}

// LabelListBits returns the Labels-memory storage consumed by the label
// lists referenced from trie entries.
func (e *Engine) LabelListBits() int {
	return e.labelEntries * e.cfg.LabelEntryBits
}

// Stats summarises the engine's access counters.
type Stats struct {
	Lookups        uint64
	LookupAccesses uint64
	UpdateWrites   uint64
}

// AverageAccesses returns the mean node accesses per lookup.
func (s Stats) AverageAccesses() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.LookupAccesses) / float64(s.Lookups)
}

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	return Stats{Lookups: e.lookups.Load(), LookupAccesses: e.lookupAccesses.Load(), UpdateWrites: e.updateWrites.Load()}
}

// ResetStats zeroes the counters without touching the trie.
func (e *Engine) ResetStats() {
	e.lookups.Store(0)
	e.lookupAccesses.Store(0)
	e.updateWrites.Store(0)
}

// Clone returns an independent deep copy of the engine: every node and label
// list is duplicated, so mutating the copy never touches the original. The
// copy-on-write update path of internal/core relies on this to build a new
// classifier snapshot while readers keep traversing the old trie. Access
// counters carry over so cumulative statistics survive the swap.
func (e *Engine) Clone() *Engine {
	c := &Engine{
		cfg:           e.cfg,
		root:          cloneNode(e.root),
		nodesPerLevel: append([]int(nil), e.nodesPerLevel...),
		labelEntries:  e.labelEntries,
	}
	c.lookups.Store(e.lookups.Load())
	c.lookupAccesses.Store(e.lookupAccesses.Load())
	c.updateWrites.Store(e.updateWrites.Load())
	return c
}

func cloneNode(n *node) *node {
	if n == nil {
		return nil
	}
	c := &node{level: n.level, entries: make([]entry, len(n.entries))}
	for i, en := range n.entries {
		c.entries[i].child = cloneNode(en.child)
		if en.labels != nil {
			c.entries[i].labels = en.labels.Clone()
		}
	}
	return c
}
