package mbt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sdnpc/internal/label"
)

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{name: "segment default", cfg: SegmentConfig(), wantErr: false},
		{name: "uniform 32/5", cfg: UniformConfig(32, 5), wantErr: false},
		{name: "uniform 32/4", cfg: UniformConfig(32, 4), wantErr: false},
		{name: "strides do not sum", cfg: Config{KeyBits: 16, Strides: []int{5, 5}, NodeEntryBits: 32, LabelEntryBits: 13}, wantErr: true},
		{name: "no strides", cfg: Config{KeyBits: 16, NodeEntryBits: 32, LabelEntryBits: 13}, wantErr: true},
		{name: "zero stride", cfg: Config{KeyBits: 16, Strides: []int{0, 16}, NodeEntryBits: 32, LabelEntryBits: 13}, wantErr: true},
		{name: "oversized stride", cfg: Config{KeyBits: 32, Strides: []int{17, 15}, NodeEntryBits: 32, LabelEntryBits: 13}, wantErr: true},
		{name: "zero key bits", cfg: Config{KeyBits: 0, Strides: []int{5}, NodeEntryBits: 32, LabelEntryBits: 13}, wantErr: true},
		{name: "too many key bits", cfg: Config{KeyBits: 33, Strides: []int{16, 17}, NodeEntryBits: 32, LabelEntryBits: 13}, wantErr: true},
		{name: "zero node width", cfg: Config{KeyBits: 16, Strides: []int{8, 8}, NodeEntryBits: 0, LabelEntryBits: 13}, wantErr: true},
		{name: "zero label width", cfg: Config{KeyBits: 16, Strides: []int{8, 8}, NodeEntryBits: 32, LabelEntryBits: 0}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
			_, err = New(tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Errorf("New() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestSegmentConfigMatchesPaper(t *testing.T) {
	cfg := SegmentConfig()
	// §IV.C: three levels using 5-bit, 5-bit and 6-bit partitions.
	want := []int{5, 5, 6}
	if len(cfg.Strides) != len(want) {
		t.Fatalf("strides = %v, want %v", cfg.Strides, want)
	}
	for i := range want {
		if cfg.Strides[i] != want[i] {
			t.Fatalf("strides = %v, want %v", cfg.Strides, want)
		}
	}
	if cfg.KeyBits != 16 {
		t.Errorf("KeyBits = %d, want 16", cfg.KeyBits)
	}
	if cfg.Levels() != 3 {
		t.Errorf("Levels() = %d, want 3", cfg.Levels())
	}
}

func TestUniformConfigSplitsEvenly(t *testing.T) {
	tests := []struct {
		keyBits int
		levels  int
		want    []int
	}{
		{32, 5, []int{7, 7, 6, 6, 6}},
		{32, 4, []int{8, 8, 8, 8}},
		{16, 4, []int{4, 4, 4, 4}},
		{16, 5, []int{4, 3, 3, 3, 3}},
	}
	for _, tt := range tests {
		cfg := UniformConfig(tt.keyBits, tt.levels)
		if len(cfg.Strides) != len(tt.want) {
			t.Fatalf("UniformConfig(%d,%d) strides = %v, want %v", tt.keyBits, tt.levels, cfg.Strides, tt.want)
		}
		for i := range tt.want {
			if cfg.Strides[i] != tt.want[i] {
				t.Fatalf("UniformConfig(%d,%d) strides = %v, want %v", tt.keyBits, tt.levels, cfg.Strides, tt.want)
			}
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("UniformConfig(%d,%d) invalid: %v", tt.keyBits, tt.levels, err)
		}
	}
}

func TestMustNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew(Config{})
}

func TestInsertLookupBasic(t *testing.T) {
	e := MustNew(SegmentConfig())
	// Prefix 0xC0A8/16 (full segment), 0xC000/2-style shorter prefixes and
	// the wildcard.
	inserts := []struct {
		value    uint32
		bits     uint8
		lbl      label.Label
		priority int
	}{
		{0xC0A8, 16, 1, 10},
		{0xC000, 4, 2, 20},
		{0x0000, 0, 3, 99},
		{0x8000, 1, 4, 5},
	}
	for _, in := range inserts {
		if _, err := e.Insert(in.value, in.bits, in.lbl, in.priority); err != nil {
			t.Fatalf("Insert(%#x/%d): %v", in.value, in.bits, err)
		}
	}

	tests := []struct {
		name       string
		key        uint32
		wantLabels []label.Label // in priority order
	}{
		{name: "exact plus covering", key: 0xC0A8, wantLabels: []label.Label{4, 1, 2, 3}},
		{name: "only short prefixes", key: 0xC001, wantLabels: []label.Label{4, 2, 3}},
		{name: "only wildcard", key: 0x0001, wantLabels: []label.Label{3}},
		{name: "half-space prefix", key: 0xF000, wantLabels: []label.Label{4, 3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			list, accesses := e.Lookup(tt.key)
			got := list.Labels()
			if len(got) != len(tt.wantLabels) {
				t.Fatalf("Lookup(%#x) labels = %v, want %v", tt.key, got, tt.wantLabels)
			}
			for i := range tt.wantLabels {
				if got[i] != tt.wantLabels[i] {
					t.Fatalf("Lookup(%#x) labels = %v, want %v", tt.key, got, tt.wantLabels)
				}
			}
			if accesses < 1 || accesses > e.WorstCaseAccesses() {
				t.Errorf("accesses = %d, want within [1,%d]", accesses, e.WorstCaseAccesses())
			}
		})
	}
}

func TestLookupAccessesBoundedByLevels(t *testing.T) {
	e := MustNew(SegmentConfig())
	if _, err := e.Insert(0x1234, 16, 1, 0); err != nil {
		t.Fatal(err)
	}
	_, accesses := e.Lookup(0x1234)
	if accesses != 3 {
		t.Errorf("full-length prefix lookup accesses = %d, want 3 (one per level)", accesses)
	}
	// A key that diverges at level 1 should stop early.
	_, accesses = e.Lookup(0xFFFF)
	if accesses != 1 {
		t.Errorf("diverging lookup accesses = %d, want 1", accesses)
	}
	if e.WorstCaseAccesses() != 3 {
		t.Errorf("WorstCaseAccesses() = %d, want 3", e.WorstCaseAccesses())
	}
}

func TestInsertRejectsBadPrefixes(t *testing.T) {
	e := MustNew(SegmentConfig())
	if _, err := e.Insert(0x1, 17, 1, 0); err == nil {
		t.Error("Insert with prefix longer than the key width should fail")
	}
	if _, err := e.Insert(0x10000, 16, 1, 0); err == nil {
		t.Error("Insert with value exceeding the key width should fail")
	}
	if _, err := e.Remove(0x1, 17, 1); err == nil {
		t.Error("Remove with bad prefix should fail")
	}
}

func TestRemove(t *testing.T) {
	e := MustNew(SegmentConfig())
	if _, err := e.Insert(0xC0A8, 16, 1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert(0xC0A8, 12, 2, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Remove(0xC0A8, 16, 1); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	list, _ := e.Lookup(0xC0A8)
	if len(list.Labels()) != 1 || list.Labels()[0] != 2 {
		t.Errorf("after remove labels = %v, want [2]", list.Labels())
	}
	// Removing an absent pair is an error.
	if _, err := e.Remove(0xC0A8, 16, 1); err == nil {
		t.Error("Remove of absent prefix should fail")
	}
	// Removing the remaining prefix leaves the trie logically empty and
	// prunes nodes back to the root.
	if _, err := e.Remove(0xC0A8, 12, 2); err != nil {
		t.Fatal(err)
	}
	list, _ = e.Lookup(0xC0A8)
	if list.Len() != 0 {
		t.Errorf("labels after removing everything = %v", list.Labels())
	}
	if e.NodeCount() != 1 {
		t.Errorf("NodeCount() = %d, want 1 (only the root remains)", e.NodeCount())
	}
	if e.LabelListBits() != 0 {
		t.Errorf("LabelListBits() = %d, want 0", e.LabelListBits())
	}
}

func TestMemoryAccountingGrowsAndShrinks(t *testing.T) {
	e := MustNew(SegmentConfig())
	baseline := e.MemoryBits()
	if baseline != 32*32 { // root node: 2^5 entries of 32 bits
		t.Errorf("empty trie MemoryBits() = %d, want %d", baseline, 32*32)
	}
	if _, err := e.Insert(0xABCD, 16, 1, 0); err != nil {
		t.Fatal(err)
	}
	grown := e.MemoryBits()
	// A full-length prefix allocates one level-2 and one level-3 node.
	wantGrown := baseline + 32*32 + 64*32
	if grown != wantGrown {
		t.Errorf("MemoryBits() after insert = %d, want %d", grown, wantGrown)
	}
	if e.LabelListBits() != 13 {
		t.Errorf("LabelListBits() = %d, want 13", e.LabelListBits())
	}
	if _, err := e.Remove(0xABCD, 16, 1); err != nil {
		t.Fatal(err)
	}
	if e.MemoryBits() != baseline {
		t.Errorf("MemoryBits() after remove = %d, want baseline %d", e.MemoryBits(), baseline)
	}
	levels := e.NodesPerLevel()
	if levels[0] != 1 || levels[1] != 0 || levels[2] != 0 {
		t.Errorf("NodesPerLevel() = %v, want [1 0 0]", levels)
	}
}

func TestShortPrefixExpansion(t *testing.T) {
	// A 3-bit prefix in a 5-bit first level covers 4 entries of the root
	// node; every address under it must match, every address outside must
	// not.
	e := MustNew(SegmentConfig())
	if _, err := e.Insert(0xE000, 3, 9, 0); err != nil { // 111x xxxx ...
		t.Fatal(err)
	}
	matching := []uint32{0xE000, 0xEFFF, 0xF123, 0xFFFF}
	for _, key := range matching {
		if list, _ := e.Lookup(key); list.Len() != 1 {
			t.Errorf("Lookup(%#x) = %v, want the /3 label", key, list.Labels())
		}
	}
	nonMatching := []uint32{0xDFFF, 0x0000, 0x7FFF}
	for _, key := range nonMatching {
		if list, _ := e.Lookup(key); list.Len() != 0 {
			t.Errorf("Lookup(%#x) = %v, want no labels", key, list.Labels())
		}
	}
}

func TestDuplicateInsertKeepsBetterPriority(t *testing.T) {
	e := MustNew(SegmentConfig())
	if _, err := e.Insert(0x1200, 8, 1, 50); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert(0x1200, 8, 1, 10); err != nil {
		t.Fatal(err)
	}
	list, _ := e.Lookup(0x1234)
	items := list.Items()
	if len(items) != 1 || items[0].Priority != 10 {
		t.Errorf("items = %+v, want single label with priority 10", items)
	}
	// An /8 prefix expands onto 4 level-2 entries (stride 5, 3 bits left), so
	// the label is stored four times; the duplicate insert must not add more.
	if e.LabelListBits() != 4*13 {
		t.Errorf("LabelListBits() = %d, want %d", e.LabelListBits(), 4*13)
	}
}

// referenceMatch reports whether the prefix matches the key, for comparison
// with trie lookups.
func referenceMatch(value uint32, bits uint8, key uint32, keyBits int) bool {
	if bits == 0 {
		return true
	}
	shift := uint(keyBits) - uint(bits)
	return value>>shift == key>>shift
}

func TestLookupAgainstReferenceProperty(t *testing.T) {
	// Insert a pseudo-random prefix population and verify every lookup
	// against a linear reference over all stored prefixes.
	cfg := SegmentConfig()
	e := MustNew(cfg)
	rng := rand.New(rand.NewSource(11))
	type pfx struct {
		value uint32
		bits  uint8
	}
	var stored []pfx
	for i := 0; i < 200; i++ {
		bits := uint8(rng.Intn(17))
		value := rng.Uint32() & 0xFFFF
		value = value >> (16 - uint(bits)) << (16 - uint(bits))
		if bits == 0 {
			value = 0
		}
		dup := false
		for _, p := range stored {
			if p.value == value && p.bits == bits {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		stored = append(stored, pfx{value, bits})
		if _, err := e.Insert(value, bits, label.Label(len(stored)-1), len(stored)-1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000; i++ {
		key := rng.Uint32() & 0xFFFF
		list, accesses := e.Lookup(key)
		if accesses > cfg.Levels() {
			t.Fatalf("accesses = %d exceeds level count", accesses)
		}
		got := make(map[label.Label]bool)
		for _, l := range list.Labels() {
			got[l] = true
		}
		for idx, p := range stored {
			want := referenceMatch(p.value, p.bits, key, 16)
			if got[label.Label(idx)] != want {
				t.Fatalf("key %#x prefix %#x/%d: trie=%v reference=%v", key, p.value, p.bits, got[label.Label(idx)], want)
			}
		}
	}
}

func TestStats(t *testing.T) {
	e := MustNew(SegmentConfig())
	if _, err := e.Insert(0x1234, 16, 1, 0); err != nil {
		t.Fatal(err)
	}
	e.Lookup(0x1234)
	e.Lookup(0xFFFF)
	stats := e.Stats()
	if stats.Lookups != 2 {
		t.Errorf("Lookups = %d, want 2", stats.Lookups)
	}
	if stats.LookupAccesses != 4 { // 3 + 1
		t.Errorf("LookupAccesses = %d, want 4", stats.LookupAccesses)
	}
	if stats.AverageAccesses() != 2 {
		t.Errorf("AverageAccesses() = %v, want 2", stats.AverageAccesses())
	}
	if stats.UpdateWrites == 0 {
		t.Error("UpdateWrites should be non-zero after an insert")
	}
	e.ResetStats()
	if s := e.Stats(); s.Lookups != 0 || s.LookupAccesses != 0 || s.UpdateWrites != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
	if (Stats{}).AverageAccesses() != 0 {
		t.Error("AverageAccesses of zero lookups should be 0")
	}
}

func TestWide32BitTrie(t *testing.T) {
	// The Option 1 baseline uses a 5-level trie over full 32-bit addresses.
	e := MustNew(UniformConfig(32, 5))
	if _, err := e.Insert(0x0A000000, 8, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert(0x0A0A0A0A, 32, 2, 1); err != nil {
		t.Fatal(err)
	}
	list, accesses := e.Lookup(0x0A0A0A0A)
	if list.Len() != 2 {
		t.Errorf("labels = %v, want 2 matches", list.Labels())
	}
	if accesses > 5 {
		t.Errorf("accesses = %d, want at most 5", accesses)
	}
	list, _ = e.Lookup(0x0B000000)
	if list.Len() != 0 {
		t.Errorf("labels = %v, want none", list.Labels())
	}
}

func TestInsertWritesCountProperty(t *testing.T) {
	// Property: inserting a prefix of length b into an empty segment trie
	// writes exactly the expanded entries plus any allocated child pointers.
	f := func(raw uint16, bitsRaw uint8) bool {
		bits := bitsRaw % 17
		value := uint32(raw)
		if bits < 16 {
			value = value >> (16 - uint(bits)) << (16 - uint(bits))
		}
		if bits == 0 {
			value = 0
		}
		e := MustNew(SegmentConfig())
		writes, err := e.Insert(value, bits, 1, 0)
		if err != nil {
			return false
		}
		strides := []int{5, 5, 6}
		consumed := 0
		level := 0
		for int(bits)-consumed > strides[level] {
			consumed += strides[level]
			level++
		}
		expanded := 1 << (strides[level] - (int(bits) - consumed))
		wantWrites := expanded + level // child-pointer writes on the way down
		return writes == wantWrites
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
