package lut

import (
	"testing"

	"sdnpc/internal/label"
)

func TestNewValidation(t *testing.T) {
	for _, bits := range []int{0, -3, 17} {
		if _, err := New(bits); err == nil {
			t.Errorf("New(%d) should fail", bits)
		}
	}
	if _, err := New(2); err != nil {
		t.Errorf("New(2): %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0) did not panic")
		}
	}()
	MustNew(0)
}

func TestExactAndWildcardLookup(t *testing.T) {
	tbl := MustNew(2)
	tbl.InsertExact(6, 1, 5)  // TCP
	tbl.InsertExact(17, 2, 9) // UDP
	tbl.InsertWildcard(3, 20) // the wildcard protocol rule

	tests := []struct {
		name       string
		proto      uint8
		wantLabels []label.Label
	}{
		{name: "tcp exact then wildcard", proto: 6, wantLabels: []label.Label{1, 3}},
		{name: "udp exact then wildcard", proto: 17, wantLabels: []label.Label{2, 3}},
		{name: "unknown protocol wildcard only", proto: 47, wantLabels: []label.Label{3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			list, accesses := tbl.Lookup(tt.proto)
			if accesses != 1 {
				t.Errorf("accesses = %d, want 1 (single-cycle lookup, §V.B)", accesses)
			}
			got := list.Labels()
			if len(got) != len(tt.wantLabels) {
				t.Fatalf("labels = %v, want %v", got, tt.wantLabels)
			}
			for i := range tt.wantLabels {
				if got[i] != tt.wantLabels[i] {
					t.Fatalf("labels = %v, want %v", got, tt.wantLabels)
				}
			}
		})
	}
}

func TestExactPrecedesWildcardRegardlessOfRulePriority(t *testing.T) {
	// §IV.C.1: the exact protocol match determines the priority label even
	// when the wildcard rule has a better rule priority.
	tbl := MustNew(2)
	tbl.InsertWildcard(3, 0) // highest-priority rule uses the wildcard
	tbl.InsertExact(6, 1, 50)
	list, _ := tbl.Lookup(6)
	if got := list.Labels(); len(got) != 2 || got[0] != 1 {
		t.Errorf("labels = %v, want exact label 1 first", got)
	}
}

func TestLookupOnEmptyTable(t *testing.T) {
	tbl := MustNew(2)
	list, _ := tbl.Lookup(6)
	if list.Len() != 0 {
		t.Errorf("empty table returned labels %v", list.Labels())
	}
}

func TestInsertIdempotenceAndWrites(t *testing.T) {
	tbl := MustNew(2)
	if w := tbl.InsertExact(6, 1, 5); w != 1 {
		t.Errorf("first insert writes = %d, want 1", w)
	}
	// Same label, worse priority: nothing to write.
	if w := tbl.InsertExact(6, 1, 9); w != 0 {
		t.Errorf("no-op insert writes = %d, want 0", w)
	}
	// Same label, better priority: one write.
	if w := tbl.InsertExact(6, 1, 2); w != 1 {
		t.Errorf("priority-improving insert writes = %d, want 1", w)
	}
	if w := tbl.InsertWildcard(3, 7); w != 1 {
		t.Errorf("wildcard insert writes = %d, want 1", w)
	}
	if w := tbl.InsertWildcard(3, 9); w != 0 {
		t.Errorf("no-op wildcard insert writes = %d, want 0", w)
	}
	if got := tbl.Stats().UpdateWrites; got != 3 {
		t.Errorf("UpdateWrites = %d, want 3", got)
	}
}

func TestRemove(t *testing.T) {
	tbl := MustNew(2)
	tbl.InsertExact(6, 1, 5)
	tbl.InsertWildcard(3, 9)
	if tbl.EntryCount() != 2 {
		t.Fatalf("EntryCount() = %d, want 2", tbl.EntryCount())
	}
	if _, err := tbl.RemoveExact(6); err != nil {
		t.Fatalf("RemoveExact: %v", err)
	}
	if _, err := tbl.RemoveExact(6); err == nil {
		t.Error("RemoveExact of absent entry should fail")
	}
	if _, err := tbl.RemoveWildcard(); err != nil {
		t.Fatalf("RemoveWildcard: %v", err)
	}
	if _, err := tbl.RemoveWildcard(); err == nil {
		t.Error("RemoveWildcard of absent entry should fail")
	}
	if tbl.EntryCount() != 0 {
		t.Errorf("EntryCount() = %d, want 0", tbl.EntryCount())
	}
	list, _ := tbl.Lookup(6)
	if list.Len() != 0 {
		t.Errorf("labels after removal = %v", list.Labels())
	}
}

func TestMemoryBits(t *testing.T) {
	tbl := MustNew(2)
	// 256 exact entries plus the wildcard register, each label+valid.
	if got, want := tbl.MemoryBits(), 257*3; got != want {
		t.Errorf("MemoryBits() = %d, want %d", got, want)
	}
}

func TestStatsAndReset(t *testing.T) {
	tbl := MustNew(2)
	tbl.InsertExact(6, 1, 0)
	tbl.Lookup(6)
	tbl.Lookup(17)
	s := tbl.Stats()
	if s.Lookups != 2 || s.LookupAccesses != 2 || s.UpdateWrites != 1 {
		t.Errorf("stats = %+v", s)
	}
	tbl.ResetStats()
	if s := tbl.Stats(); s.Lookups != 0 || s.LookupAccesses != 0 || s.UpdateWrites != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
	if LookupCycles != 1 {
		t.Errorf("LookupCycles = %d, want 1", LookupCycles)
	}
}
