// Package lut implements the register-based Look-Up Table used for the
// protocol field (§IV.C: "a simple Look-Up Table is utilized for Protocol.
// The protocol value addresses the table where the label is contained").
//
// The table has one entry per possible 8-bit protocol value plus a wildcard
// register. A lookup addresses the table with the packet's protocol value in
// a single clock cycle (§V.B) and returns at most two labels: the exact
// match, which has priority, followed by the wildcard label if a wildcard
// protocol rule exists.
package lut

import (
	"fmt"
	"sync/atomic"

	"sdnpc/internal/label"
)

// LookupCycles is the lookup latency of the protocol table (§V.B: "the
// protocol label search is executed in a single clock cycle").
const LookupCycles = 1

// Entries is the number of addressable protocol values.
const Entries = 256

// Table is the protocol lookup table.
type Table struct {
	// labelBits is the stored label width (2 bits in the architecture).
	labelBits int

	exact    [Entries]entrySlot
	wildcard entrySlot

	// The counters are atomic so that Lookup — two slot reads — is safe to
	// call from many goroutines at once.
	lookups        atomic.Uint64
	lookupAccesses atomic.Uint64
	updateWrites   atomic.Uint64
}

type entrySlot struct {
	valid    bool
	lbl      label.Label
	priority int
}

// New creates an empty protocol table storing labels of the given width.
func New(labelBits int) (*Table, error) {
	if labelBits < 1 || labelBits > 16 {
		return nil, fmt.Errorf("lut: label width %d out of range [1,16]", labelBits)
	}
	return &Table{labelBits: labelBits}, nil
}

// MustNew is like New but panics on error.
func MustNew(labelBits int) *Table {
	t, err := New(labelBits)
	if err != nil {
		panic(err)
	}
	return t
}

// InsertExact installs the label for an exact protocol value. Re-inserting
// the same value refreshes the label and keeps the better (smaller)
// priority; an insert that changes nothing costs no memory write.
func (t *Table) InsertExact(value uint8, lbl label.Label, priority int) (writes int) {
	writes = t.install(&t.exact[value], lbl, priority)
	return writes
}

// InsertWildcard installs the label of the wildcard protocol match.
func (t *Table) InsertWildcard(lbl label.Label, priority int) (writes int) {
	writes = t.install(&t.wildcard, lbl, priority)
	return writes
}

func (t *Table) install(slot *entrySlot, lbl label.Label, priority int) int {
	if slot.valid && slot.lbl == lbl && slot.priority <= priority {
		return 0
	}
	if slot.valid && slot.lbl == lbl {
		slot.priority = priority
	} else {
		*slot = entrySlot{valid: true, lbl: lbl, priority: priority}
	}
	t.updateWrites.Add(1)
	return 1
}

// RemoveExact clears the entry of an exact protocol value.
func (t *Table) RemoveExact(value uint8) (writes int, err error) {
	if !t.exact[value].valid {
		return 0, fmt.Errorf("lut: protocol %d not present", value)
	}
	t.exact[value] = entrySlot{}
	t.updateWrites.Add(1)
	return 1, nil
}

// RemoveWildcard clears the wildcard entry.
func (t *Table) RemoveWildcard() (writes int, err error) {
	if !t.wildcard.valid {
		return 0, fmt.Errorf("lut: wildcard protocol not present")
	}
	t.wildcard = entrySlot{}
	t.updateWrites.Add(1)
	return 1, nil
}

// Lookup returns the matching labels for the protocol value — the exact
// label first, then the wildcard label — and the number of memory accesses
// (always one: the table is read once; the wildcard register is combinational
// logic).
func (t *Table) Lookup(value uint8) (*label.List, int) {
	result := &label.List{}
	return result, t.LookupInto(value, result)
}

// LookupInto is the allocation-free variant of Lookup: it resets out, fills
// it with the matching labels and returns the access count.
func (t *Table) LookupInto(value uint8, out *label.List) int {
	t.lookups.Add(1)
	t.lookupAccesses.Add(1)
	out.Reset()
	if t.exact[value].valid {
		// The exact match takes the first position regardless of rule
		// priority (§IV.C.1: "the priority label for Protocol lookup is
		// determined by the exact matching value").
		out.Insert(label.PriorityLabel{Label: t.exact[value].lbl, Priority: 0})
	}
	if t.wildcard.valid {
		out.Insert(label.PriorityLabel{Label: t.wildcard.lbl, Priority: 1})
	}
	return 1
}

// EntryCount returns the number of valid exact entries (plus one if the
// wildcard is set).
func (t *Table) EntryCount() int {
	count := 0
	for _, s := range t.exact {
		if s.valid {
			count++
		}
	}
	if t.wildcard.valid {
		count++
	}
	return count
}

// MemoryBits returns the storage consumed by the table: every addressable
// entry holds a label and a valid flag, plus the wildcard register.
func (t *Table) MemoryBits() int {
	return (Entries + 1) * (t.labelBits + 1)
}

// Stats summarises the access counters.
type Stats struct {
	Lookups        uint64
	LookupAccesses uint64
	UpdateWrites   uint64
}

// Stats returns a snapshot of the counters.
func (t *Table) Stats() Stats {
	return Stats{Lookups: t.lookups.Load(), LookupAccesses: t.lookupAccesses.Load(), UpdateWrites: t.updateWrites.Load()}
}

// ResetStats zeroes the counters.
func (t *Table) ResetStats() {
	t.lookups.Store(0)
	t.lookupAccesses.Store(0)
	t.updateWrites.Store(0)
}

// Clone returns an independent copy of the table: the slot arrays are plain
// values, so a field-by-field copy suffices. Access counters carry over so
// cumulative statistics survive a copy-on-write snapshot swap.
func (t *Table) Clone() *Table {
	c := &Table{
		labelBits: t.labelBits,
		exact:     t.exact,
		wildcard:  t.wildcard,
	}
	c.lookups.Store(t.lookups.Load())
	c.lookupAccesses.Store(t.lookupAccesses.Load())
	c.updateWrites.Store(t.updateWrites.Load())
	return c
}
