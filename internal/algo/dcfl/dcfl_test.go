package dcfl

import (
	"testing"

	"sdnpc/internal/classbench"
	"sdnpc/internal/fivetuple"
)

func TestBuildRejectsEmptySet(t *testing.T) {
	if _, err := Build(fivetuple.NewRuleSet("empty", nil)); err == nil {
		t.Error("Build of empty rule set should fail")
	}
}

func TestClassifyAgreesWithReference(t *testing.T) {
	for _, class := range []classbench.Class{classbench.ACL, classbench.FW, classbench.IPC} {
		t.Run(class.String(), func(t *testing.T) {
			rs := classbench.Generate(classbench.Config{Class: class, Rules: 300, Seed: 41})
			c, err := Build(rs)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			trace := classbench.GenerateTrace(rs, classbench.TraceConfig{Packets: 600, Seed: 13, MatchFraction: 0.8})
			for _, h := range trace {
				wantIdx, wantOK := rs.Classify(h)
				gotIdx, gotOK, accesses := c.Classify(h)
				if gotOK != wantOK || (wantOK && gotIdx != wantIdx) {
					t.Fatalf("Classify(%s) = (%d,%v), reference (%d,%v)", h, gotIdx, gotOK, wantIdx, wantOK)
				}
				if accesses < 1 {
					t.Fatalf("accesses = %d, want positive", accesses)
				}
			}
		})
	}
}

func TestAccessesStayModerate(t *testing.T) {
	// DCFL's selling point in Table I is a low average number of memory
	// accesses; verify the average stays within a small multiple of the
	// paper's 23.1 on an ACL-style workload.
	rs := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: 500, Seed: 51})
	c, err := Build(rs)
	if err != nil {
		t.Fatal(err)
	}
	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{Packets: 1000, Seed: 3, MatchFraction: 0.9})
	for _, h := range trace {
		c.Classify(h)
	}
	avg := c.Stats().AverageAccesses()
	if avg <= 0 || avg > 120 {
		t.Errorf("average accesses = %.1f, want a moderate figure", avg)
	}
}

func TestMemoryAccounting(t *testing.T) {
	small := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: 100, Seed: 6})
	large := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: 500, Seed: 6})
	cs, err := Build(small)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Build(large)
	if err != nil {
		t.Fatal(err)
	}
	if cs.MemoryBits() <= 0 || cl.MemoryBits() <= cs.MemoryBits() {
		t.Errorf("memory accounting suspicious: %d vs %d", cs.MemoryBits(), cl.MemoryBits())
	}
}

func TestStatsAndAverage(t *testing.T) {
	rs := classbench.Generate(classbench.Config{Class: classbench.FW, Rules: 80, Seed: 8})
	c, err := Build(rs)
	if err != nil {
		t.Fatal(err)
	}
	if (Stats{}).AverageAccesses() != 0 {
		t.Error("zero-lookup average should be 0")
	}
	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{Packets: 64, Seed: 1, MatchFraction: 1})
	for _, h := range trace {
		c.Classify(h)
	}
	s := c.Stats()
	if s.Lookups != 64 || s.LookupAccesses == 0 || s.AverageAccesses() <= 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestNoMatchOutsideRules(t *testing.T) {
	rules := []fivetuple.Rule{{
		SrcPrefix: fivetuple.MustParsePrefix("10.0.0.0/8"),
		DstPrefix: fivetuple.MustParsePrefix("10.0.0.0/8"),
		SrcPort:   fivetuple.ExactPort(80),
		DstPort:   fivetuple.ExactPort(80),
		Protocol:  fivetuple.ExactProtocol(fivetuple.ProtoTCP),
	}}
	c, err := Build(fivetuple.NewRuleSet("one", rules))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Classify(fivetuple.Header{Protocol: fivetuple.ProtoUDP}); ok {
		t.Error("Classify matched a header outside every rule")
	}
}
