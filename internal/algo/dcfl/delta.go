package dcfl

import (
	"fmt"
	"maps"
	"sort"

	"sdnpc/internal/fivetuple"
)

// Incremental updates. DCFL decomposes the rule set per field, which makes
// it naturally delta-friendly: one rule touches exactly one label per field
// and one combination entry per aggregation node, so an insert is five label
// acquisitions plus four table adds, and a delete empties the rule's
// combination sets along the same path. The only structure-wide work is
// renumbering the stored rule indices around the spliced position — O(total
// set entries) of integer increments, versus the per-rule map construction
// of a full Build.
//
// Deletes leave garbage behind on purpose: emptied combination entries and
// unused field values stay in the tables, costing extra probes but never
// correctness (the final aggregation node decides by set contents, and an
// empty set matches nothing). Degradation quantifies that garbage so a
// policy layer can amortise it away with an occasional rebuild.

// Clone returns a deep copy of the classifier: the rule table, the per-field
// label maps and value lists, and every aggregation table are duplicated, so
// delta updates applied to the copy are never observable through the
// original. Lookup counters start at zero on the copy.
func (c *Classifier) Clone() *Classifier {
	cp := &Classifier{
		rules:       append([]fivetuple.Rule(nil), c.rules...),
		srcPrefixes: append([]prefixValue(nil), c.srcPrefixes...),
		dstPrefixes: append([]prefixValue(nil), c.dstPrefixes...),
		srcPorts:    append([]portValue(nil), c.srcPorts...),
		dstPorts:    append([]portValue(nil), c.dstPorts...),
		protos:      append([]protoValue(nil), c.protos...),
		ipTable:     c.ipTable.clone(),
		portTable:   c.portTable.clone(),
		transTable:  c.transTable.clone(),
		finalTable:  c.finalTable.clone(),
		staleCombos: c.staleCombos,
		deltas:      c.deltas,
		deltaWrites: c.deltaWrites,
	}
	for f := fieldIndex(0); f < numFields; f++ {
		cp.fieldLabels[f] = maps.Clone(c.fieldLabels[f])
	}
	return cp
}

func (t *aggTable) clone() *aggTable {
	cp := &aggTable{combos: maps.Clone(t.combos), sets: make([][]uint32, len(t.sets))}
	for i, s := range t.sets {
		cp.sets[i] = append([]uint32(nil), s...)
	}
	return cp
}

// shiftUp adds one to every stored rule index >= idx, freeing the index for
// an insertion. Ascending set order is preserved.
func (t *aggTable) shiftUp(idx int) {
	for _, s := range t.sets {
		for j, v := range s {
			if v >= uint32(idx) {
				s[j] = v + 1
			}
		}
	}
}

// shiftDown subtracts one from every stored rule index > idx, closing the
// gap a deletion left.
func (t *aggTable) shiftDown(idx int) {
	for _, s := range t.sets {
		for j, v := range s {
			if v > uint32(idx) {
				s[j] = v - 1
			}
		}
	}
}

// remove deletes rule index idx from the set of combination id. emptied
// reports whether the set became empty (a stale combination entry).
func (t *aggTable) remove(id uint32, idx int) (found, emptied bool) {
	s := t.sets[id]
	pos := sort.Search(len(s), func(i int) bool { return s[i] >= uint32(idx) })
	if pos >= len(s) || s[pos] != uint32(idx) {
		return false, false
	}
	t.sets[id] = append(s[:pos], s[pos+1:]...)
	return true, len(t.sets[id]) == 0
}

// InsertAt splices rule r into the classifier's best-first rule order at
// index idx: every aggregation set is renumbered around the new index, the
// rule's five field values are labelled (new values are appended to the
// field-search lists), and the rule is added along its combination path.
func (c *Classifier) InsertAt(r fivetuple.Rule, idx int) error {
	if idx < 0 || idx > len(c.rules) {
		return fmt.Errorf("dcfl: insert index %d out of range [0,%d]", idx, len(c.rules))
	}
	for _, t := range c.aggTables() {
		t.shiftUp(idx)
	}
	c.rules = append(c.rules, fivetuple.Rule{})
	copy(c.rules[idx+1:], c.rules[idx:])
	c.rules[idx] = r

	srcLbl := c.labelFor(fieldSrcIP, r.SrcPrefix.Canonical().String())
	dstLbl := c.labelFor(fieldDstIP, r.DstPrefix.Canonical().String())
	spLbl := c.labelFor(fieldSrcPort, r.SrcPort.String())
	dpLbl := c.labelFor(fieldDstPort, r.DstPort.String())
	prLbl := c.labelFor(fieldProto, protoKey(r.Protocol))
	c.storeFieldValue(fieldSrcIP, r, srcLbl)
	c.storeFieldValue(fieldDstIP, r, dstLbl)
	c.storeFieldValue(fieldSrcPort, r, spLbl)
	c.storeFieldValue(fieldDstPort, r, dpLbl)
	c.storeFieldValue(fieldProto, r, prLbl)

	ipID := c.addCombo(c.ipTable, srcLbl, dstLbl, idx)
	portID := c.addCombo(c.portTable, spLbl, dpLbl, idx)
	transID := c.addCombo(c.transTable, portID, prLbl, idx)
	c.addCombo(c.finalTable, ipID, transID, idx)
	c.deltas++
	return nil
}

// addCombo registers the combination for the rule, maintaining the
// stale-entry accounting: refilling a previously emptied set revives it.
func (c *Classifier) addCombo(t *aggTable, a, b uint32, idx int) uint32 {
	if id, ok := t.probe(a, b); ok && len(t.sets[id]) == 0 {
		c.staleCombos--
	}
	c.deltaWrites++
	return t.add(a, b, uint32(idx))
}

// DeleteAt removes the rule at index idx of the best-first order: it is
// deleted from the four aggregation sets along its combination path and the
// remaining indices are renumbered down. Emptied combination entries and
// now-unused field values are left in place as tracked garbage.
func (c *Classifier) DeleteAt(idx int) error {
	if idx < 0 || idx >= len(c.rules) {
		return fmt.Errorf("dcfl: delete index %d out of range [0,%d)", idx, len(c.rules))
	}
	r := c.rules[idx]
	lookup := func(f fieldIndex, key string) (uint32, error) {
		lbl, ok := c.fieldLabels[f][key]
		if !ok {
			return 0, fmt.Errorf("dcfl: field value %q of rule %d is not labelled", key, idx)
		}
		return lbl, nil
	}
	srcLbl, err := lookup(fieldSrcIP, r.SrcPrefix.Canonical().String())
	if err != nil {
		return err
	}
	dstLbl, err := lookup(fieldDstIP, r.DstPrefix.Canonical().String())
	if err != nil {
		return err
	}
	spLbl, err := lookup(fieldSrcPort, r.SrcPort.String())
	if err != nil {
		return err
	}
	dpLbl, err := lookup(fieldDstPort, r.DstPort.String())
	if err != nil {
		return err
	}
	prLbl, err := lookup(fieldProto, protoKey(r.Protocol))
	if err != nil {
		return err
	}
	ipID, ok := c.ipTable.probe(srcLbl, dstLbl)
	if !ok {
		return fmt.Errorf("dcfl: IP combination of rule %d missing", idx)
	}
	portID, ok := c.portTable.probe(spLbl, dpLbl)
	if !ok {
		return fmt.Errorf("dcfl: port combination of rule %d missing", idx)
	}
	transID, ok := c.transTable.probe(portID, prLbl)
	if !ok {
		return fmt.Errorf("dcfl: transport combination of rule %d missing", idx)
	}
	finalID, ok := c.finalTable.probe(ipID, transID)
	if !ok {
		return fmt.Errorf("dcfl: final combination of rule %d missing", idx)
	}
	for _, del := range []struct {
		t  *aggTable
		id uint32
	}{{c.ipTable, ipID}, {c.portTable, portID}, {c.transTable, transID}, {c.finalTable, finalID}} {
		found, emptied := del.t.remove(del.id, idx)
		if !found {
			return fmt.Errorf("dcfl: rule %d missing from its combination set", idx)
		}
		if emptied {
			c.staleCombos++
		}
		c.deltaWrites++
	}
	for _, t := range c.aggTables() {
		t.shiftDown(idx)
	}
	c.rules = append(c.rules[:idx], c.rules[idx+1:]...)
	c.deltas++
	return nil
}

func (c *Classifier) aggTables() []*aggTable {
	return []*aggTable{c.ipTable, c.portTable, c.transTable, c.finalTable}
}

// DeltaStats reports the delta debt accumulated since the tables were built.
type DeltaStats struct {
	// Deltas is the number of InsertAt/DeleteAt ops applied since Build.
	Deltas int
	// Writes is the number of combination-set edits performed by those ops.
	Writes int
	// StaleCombos is the number of combination entries whose rule set is
	// empty — garbage a fresh build would not contain.
	StaleCombos int
}

// DeltaStats returns the delta debt since Build.
func (c *Classifier) DeltaStats() DeltaStats {
	return DeltaStats{Deltas: c.deltas, Writes: c.deltaWrites, StaleCombos: c.staleCombos}
}

// Degradation estimates how far the delta-updated tables have drifted from
// freshly built ones, as the fraction of combination entries that are stale:
// 0 right after a build, growing as deletes empty entries that keep
// consuming probes. The classifier stays correct regardless — degradation
// only measures lookup-cost and memory drift.
func (c *Classifier) Degradation() float64 {
	total := 0
	for _, t := range c.aggTables() {
		total += len(t.sets)
	}
	if total == 0 {
		return 0
	}
	d := float64(c.staleCombos) / float64(total)
	if d > 1 {
		d = 1
	}
	return d
}
