package dcfl

import (
	"fmt"
	"sort"

	"sdnpc/internal/fivetuple"
)

// Incremental updates. DCFL decomposes the rule set per field, which makes
// it naturally delta-friendly: one rule touches exactly one label per field
// and one combination entry per aggregation node, so an insert is five label
// acquisitions plus four table adds, and a delete empties the rule's
// combination sets along the same path. The only structure-wide work is
// renumbering the stored rule indices around the spliced position — O(total
// set entries) of integer increments over the flat spans, versus the
// per-rule table construction of a full Build. Spans (and the hash tables)
// that outgrow their slack relocate into the arena's spare region, growing
// the arena when even that runs out, so a delta never fails mid-structure.
//
// Deletes leave garbage behind on purpose: emptied combination entries and
// unused field values stay in the tables, costing extra probes but never
// correctness (the final aggregation node decides by set contents, and an
// empty set matches nothing). Relocations leak their old spans the same
// way. Degradation quantifies that garbage so a policy layer can amortise
// it away with an occasional rebuild.

// Clone returns a deep copy of the classifier: the rule table and the whole
// arena (field arrays, hash tables, directories and spans) are duplicated
// with two memcpys, so delta updates applied to the copy are never
// observable through the original. Lookup counters start at zero on the
// copy.
func (c *Classifier) Clone() *Classifier {
	cp := &Classifier{
		rules:       append([]fivetuple.Rule(nil), c.rules...),
		ar:          c.ar.Clone(),
		bump:        c.bump,
		limit:       c.limit,
		fields:      c.fields,
		ipTable:     c.ipTable,
		portTable:   c.portTable,
		transTable:  c.transTable,
		finalTable:  c.finalTable,
		staleCombos: c.staleCombos,
		deltas:      c.deltas,
		deltaWrites: c.deltaWrites,
	}
	cp.words = cp.ar.Words(0, cp.ar.WordLen())
	return cp
}

// shiftUp adds one to every stored rule index >= idx across the node's
// spans, freeing the index for an insertion. Ascending order is preserved.
func (c *Classifier) shiftUp(t *flatAgg, idx int) {
	w := c.words
	for id := 0; id < t.dirLen; id++ {
		off, n, _ := c.setView(t, uint32(id))
		for j := 0; j < n; j++ {
			if int(w[off+j]) >= idx {
				w[off+j]++
			}
		}
	}
}

// shiftDown subtracts one from every stored rule index > idx, closing the
// gap a deletion left.
func (c *Classifier) shiftDown(t *flatAgg, idx int) {
	w := c.words
	for id := 0; id < t.dirLen; id++ {
		off, n, _ := c.setView(t, uint32(id))
		for j := 0; j < n; j++ {
			if int(w[off+j]) > idx {
				w[off+j]--
			}
		}
	}
}

// setInsert adds rule index v to the set of combination id, relocating the
// span into the spare region when its slack is exhausted.
func (c *Classifier) setInsert(t *flatAgg, id uint32, v uint32) {
	off, n, spanCap := c.setView(t, id)
	w := c.words
	span := w[off : off+n]
	pos := sort.Search(n, func(i int) bool { return span[i] >= v })
	if pos < n && span[pos] == v {
		return
	}
	d := t.dirOff + 3*int(id)
	if n == spanCap {
		newCap := 2*spanCap + 2
		noff := c.spareAlloc(newCap)
		w = c.words // spareAlloc may have grown the arena
		copy(w[noff:noff+n], w[off:off+n])
		off = noff
		w[d] = uint32(noff)
		w[d+2] = uint32(newCap)
	}
	copy(w[off+pos+1:off+n+1], w[off+pos:off+n])
	w[off+pos] = v
	w[d+1] = uint32(n + 1)
	t.entries++
}

// setRemove deletes rule index v from the set of combination id. emptied
// reports whether the set became empty (a stale combination entry).
func (c *Classifier) setRemove(t *flatAgg, id uint32, v uint32) (found, emptied bool) {
	off, n, _ := c.setView(t, id)
	w := c.words
	span := w[off : off+n]
	pos := sort.Search(n, func(i int) bool { return span[i] >= v })
	if pos >= n || span[pos] != v {
		return false, false
	}
	copy(span[pos:], span[pos+1:])
	w[t.dirOff+3*int(id)+1] = uint32(n - 1)
	t.entries--
	return true, n-1 == 0
}

// add registers that a rule uses the combination (a, b) and returns its
// combination ID, creating the slot, directory entry and span on first use.
func (c *Classifier) add(t *flatAgg, a, b uint32, idx uint32) uint32 {
	if id, ok := c.probe(t, a, b); ok {
		c.setInsert(t, id, idx)
		return id
	}
	id := uint32(t.dirLen)
	if t.dirLen == t.dirCap {
		// Relocate the directory with doubled slack.
		newCap := 2*t.dirCap + 4
		noff := c.spareAlloc(3 * newCap)
		copy(c.words[noff:noff+3*t.dirLen], c.words[t.dirOff:t.dirOff+3*t.dirLen])
		t.dirOff, t.dirCap = noff, newCap
	}
	spanCap := 4
	off := c.spareAlloc(spanCap)
	w := c.words
	d := t.dirOff + 3*int(id)
	w[d], w[d+1], w[d+2] = uint32(off), 1, uint32(spanCap)
	w[off] = idx
	t.dirLen++
	t.entries++
	c.slotInsert(t, a, b, id)
	return id
}

// slotInsert places a new combination into the hash table, rehashing into a
// doubled slot array first when the insert would push load past 3/4.
func (c *Classifier) slotInsert(t *flatAgg, a, b uint32, id uint32) {
	slotCount := t.slotMask + 1
	if 4*(t.used+1) > 3*slotCount {
		newCount := slotCount * 2
		noff := c.spareAlloc(3 * newCount)
		w := c.words
		for i := noff; i < noff+3*newCount; i++ {
			w[i] = emptySlot
		}
		oldOff, oldCount := t.slotOff, slotCount
		t.slotOff, t.slotMask = noff, newCount-1
		for s := 0; s < oldCount; s++ {
			if w[oldOff+3*s] == emptySlot {
				continue
			}
			c.slotPlace(t, w[oldOff+3*s], w[oldOff+3*s+1], w[oldOff+3*s+2])
		}
	}
	c.slotPlace(t, a, b, id)
	t.used++
}

// slotPlace writes one (a, b, id) triple into its probe-sequence slot.
func (c *Classifier) slotPlace(t *flatAgg, a, b, id uint32) {
	w := c.words
	i := int(hashPair(a, b)) & t.slotMask
	for w[t.slotOff+3*i] != emptySlot {
		i = (i + 1) & t.slotMask
	}
	s := t.slotOff + 3*i
	w[s], w[s+1], w[s+2] = a, b, id
}

// labelOf returns the label of the rule's field value, appending a fresh
// value (relocating the field array when its slack is exhausted) when the
// value is new.
func (c *Classifier) labelOf(f fieldIndex, r fivetuple.Rule) uint32 {
	lo, hi := fieldRange(f, r)
	span := &c.fields[f]
	w := c.words
	for l := 0; l < span.n; l++ {
		if w[span.off+2*l] == lo && w[span.off+2*l+1] == hi {
			return uint32(l)
		}
	}
	if span.n == span.cap {
		newCap := 2*span.cap + 4
		noff := c.spareAlloc(2 * newCap)
		w = c.words
		copy(w[noff:noff+2*span.n], w[span.off:span.off+2*span.n])
		span.off, span.cap = noff, newCap
	}
	w[span.off+2*span.n] = lo
	w[span.off+2*span.n+1] = hi
	span.n++
	return uint32(span.n - 1)
}

// findLabel returns the label of an already-stored field value.
func (c *Classifier) findLabel(f fieldIndex, r fivetuple.Rule) (uint32, bool) {
	lo, hi := fieldRange(f, r)
	span := c.fields[f]
	w := c.words
	for l := 0; l < span.n; l++ {
		if w[span.off+2*l] == lo && w[span.off+2*l+1] == hi {
			return uint32(l), true
		}
	}
	return 0, false
}

// InsertAt splices rule r into the classifier's best-first rule order at
// index idx: every aggregation set is renumbered around the new index, the
// rule's five field values are labelled (new values are appended to the
// field-search arrays), and the rule is added along its combination path.
func (c *Classifier) InsertAt(r fivetuple.Rule, idx int) error {
	if idx < 0 || idx > len(c.rules) {
		return fmt.Errorf("dcfl: insert index %d out of range [0,%d]", idx, len(c.rules))
	}
	for _, t := range c.aggTables() {
		c.shiftUp(t, idx)
	}
	c.rules = append(c.rules, fivetuple.Rule{})
	copy(c.rules[idx+1:], c.rules[idx:])
	c.rules[idx] = r

	srcLbl := c.labelOf(fieldSrcIP, r)
	dstLbl := c.labelOf(fieldDstIP, r)
	spLbl := c.labelOf(fieldSrcPort, r)
	dpLbl := c.labelOf(fieldDstPort, r)
	prLbl := c.labelOf(fieldProto, r)

	ipID := c.addCombo(&c.ipTable, srcLbl, dstLbl, idx)
	portID := c.addCombo(&c.portTable, spLbl, dpLbl, idx)
	transID := c.addCombo(&c.transTable, portID, prLbl, idx)
	c.addCombo(&c.finalTable, ipID, transID, idx)
	c.deltas++
	return nil
}

// addCombo registers the combination for the rule, maintaining the
// stale-entry accounting: refilling a previously emptied set revives it.
func (c *Classifier) addCombo(t *flatAgg, a, b uint32, idx int) uint32 {
	if id, ok := c.probe(t, a, b); ok {
		if _, n, _ := c.setView(t, id); n == 0 {
			c.staleCombos--
		}
	}
	c.deltaWrites++
	return c.add(t, a, b, uint32(idx))
}

// DeleteAt removes the rule at index idx of the best-first order: it is
// deleted from the four aggregation sets along its combination path and the
// remaining indices are renumbered down. Emptied combination entries and
// now-unused field values are left in place as tracked garbage.
func (c *Classifier) DeleteAt(idx int) error {
	if idx < 0 || idx >= len(c.rules) {
		return fmt.Errorf("dcfl: delete index %d out of range [0,%d)", idx, len(c.rules))
	}
	r := c.rules[idx]
	lookup := func(f fieldIndex) (uint32, error) {
		lbl, ok := c.findLabel(f, r)
		if !ok {
			return 0, fmt.Errorf("dcfl: field %d value of rule %d is not labelled", f, idx)
		}
		return lbl, nil
	}
	srcLbl, err := lookup(fieldSrcIP)
	if err != nil {
		return err
	}
	dstLbl, err := lookup(fieldDstIP)
	if err != nil {
		return err
	}
	spLbl, err := lookup(fieldSrcPort)
	if err != nil {
		return err
	}
	dpLbl, err := lookup(fieldDstPort)
	if err != nil {
		return err
	}
	prLbl, err := lookup(fieldProto)
	if err != nil {
		return err
	}
	ipID, ok := c.probe(&c.ipTable, srcLbl, dstLbl)
	if !ok {
		return fmt.Errorf("dcfl: IP combination of rule %d missing", idx)
	}
	portID, ok := c.probe(&c.portTable, spLbl, dpLbl)
	if !ok {
		return fmt.Errorf("dcfl: port combination of rule %d missing", idx)
	}
	transID, ok := c.probe(&c.transTable, portID, prLbl)
	if !ok {
		return fmt.Errorf("dcfl: transport combination of rule %d missing", idx)
	}
	finalID, ok := c.probe(&c.finalTable, ipID, transID)
	if !ok {
		return fmt.Errorf("dcfl: final combination of rule %d missing", idx)
	}
	for _, del := range []struct {
		t  *flatAgg
		id uint32
	}{{&c.ipTable, ipID}, {&c.portTable, portID}, {&c.transTable, transID}, {&c.finalTable, finalID}} {
		found, emptied := c.setRemove(del.t, del.id, uint32(idx))
		if !found {
			return fmt.Errorf("dcfl: rule %d missing from its combination set", idx)
		}
		if emptied {
			c.staleCombos++
		}
		c.deltaWrites++
	}
	for _, t := range c.aggTables() {
		c.shiftDown(t, idx)
	}
	c.rules = append(c.rules[:idx], c.rules[idx+1:]...)
	c.deltas++
	return nil
}

func (c *Classifier) aggTables() [4]*flatAgg {
	return [4]*flatAgg{&c.ipTable, &c.portTable, &c.transTable, &c.finalTable}
}

// DeltaStats reports the delta debt accumulated since the tables were built.
type DeltaStats struct {
	// Deltas is the number of InsertAt/DeleteAt ops applied since Build.
	Deltas int
	// Writes is the number of combination-set edits performed by those ops.
	Writes int
	// StaleCombos is the number of combination entries whose rule set is
	// empty — garbage a fresh build would not contain.
	StaleCombos int
}

// DeltaStats returns the delta debt since Build.
func (c *Classifier) DeltaStats() DeltaStats {
	return DeltaStats{Deltas: c.deltas, Writes: c.deltaWrites, StaleCombos: c.staleCombos}
}

// Degradation estimates how far the delta-updated tables have drifted from
// freshly built ones, as the fraction of combination entries that are stale:
// 0 right after a build, growing as deletes empty entries that keep
// consuming probes. The classifier stays correct regardless — degradation
// only measures lookup-cost and memory drift.
func (c *Classifier) Degradation() float64 {
	total := 0
	for _, t := range c.aggTables() {
		total += t.dirLen
	}
	if total == 0 {
		return 0
	}
	d := float64(c.staleCombos) / float64(total)
	if d > 1 {
		d = 1
	}
	return d
}
