// Package dcfl implements Distributed Crossproducting of Field Labels
// (Taylor & Turner, INFOCOM 2005), the decomposition baseline of Table I and
// the origin of the label method the paper's architecture adopts (§III.C).
//
// Each header field is searched independently; the result of a field search
// is the set of labels of the unique field values matching the packet. An
// aggregation network then combines the field label sets pairwise: at every
// aggregation node the candidate label combinations (the cross-product of the
// two incoming sets) are probed against a table of combinations that actually
// occur in the rule set, so only viable combinations survive to the next
// stage. The final surviving combination set identifies the matching rules,
// from which the highest priority one is returned.
//
// Memory accesses per lookup are dominated by the aggregation probes — the
// cross-product of the *matching* label sets, which is small — giving the
// good lookup numbers of Table I; memory usage is dominated by the
// combination tables, which is why DCFL's footprint in Table I is large.
package dcfl

import (
	"fmt"
	"sort"
	"sync/atomic"

	"sdnpc/internal/fivetuple"
)

// fieldIndex identifies one of the five lookup fields.
type fieldIndex int

const (
	fieldSrcIP fieldIndex = iota
	fieldDstIP
	fieldSrcPort
	fieldDstPort
	fieldProto
	numFields
)

// Classifier is a DCFL classifier built from a rule set.
type Classifier struct {
	rules []fivetuple.Rule

	// Per-field unique value tables: value key -> label.
	fieldLabels [numFields]map[string]uint32
	// Per-field stored match values, for the field search.
	srcPrefixes []prefixValue
	dstPrefixes []prefixValue
	srcPorts    []portValue
	dstPorts    []portValue
	protos      []protoValue

	// Aggregation tables. Combination keys are packed label pairs (or a pair
	// of a combination ID and a label).
	ipTable    *aggTable // (srcIP, dstIP)
	portTable  *aggTable // (srcPort, dstPort)
	transTable *aggTable // (portTable result, proto)
	finalTable *aggTable // (ipTable result, transTable result) -> rule sets

	// Delta accounting (see delta.go): stale combination entries left by
	// deletes, and the op/write counters of updates applied since Build.
	staleCombos int
	deltas      int
	deltaWrites int

	// Atomic so that a built classifier can serve Classify from any number
	// of goroutines concurrently (read-only after build).
	lookups        atomic.Uint64
	lookupAccesses atomic.Uint64
}

type prefixValue struct {
	prefix fivetuple.Prefix
	label  uint32
}

type portValue struct {
	rng   fivetuple.PortRange
	label uint32
}

type protoValue struct {
	match fivetuple.ProtocolMatch
	label uint32
}

// aggTable is one aggregation node: the set of label combinations present in
// the rule set, each mapped to a combination ID and the sorted set of rules
// using it.
type aggTable struct {
	combos map[uint64]uint32 // packed pair -> combination ID
	sets   [][]uint32        // combination ID -> sorted rule indices
}

func newAggTable() *aggTable {
	return &aggTable{combos: make(map[uint64]uint32)}
}

func packPair(a, b uint32) uint64 { return uint64(a)<<32 | uint64(b) }

// add registers that rule idx uses the combination (a, b) and returns its
// combination ID.
func (t *aggTable) add(a, b uint32, idx uint32) uint32 {
	key := packPair(a, b)
	id, ok := t.combos[key]
	if !ok {
		id = uint32(len(t.sets))
		t.combos[key] = id
		t.sets = append(t.sets, nil)
	}
	t.sets[id] = insertSorted(t.sets[id], idx)
	return id
}

// probe looks up the combination (a, b); ok is false when no rule uses it.
func (t *aggTable) probe(a, b uint32) (uint32, bool) {
	id, ok := t.combos[packPair(a, b)]
	return id, ok
}

// entryBits is the stored width of one combination entry: two 16-bit input
// labels/IDs plus the combination ID.
func (t *aggTable) entryBits() int { return 16 + 16 + 16 }

// memoryBits returns the storage consumed by the table, including the
// per-combination rule sets (one 14-bit rule pointer each, as the
// architecture would store the best rule only per combination at the final
// node and the combination ID elsewhere).
func (t *aggTable) memoryBits() int {
	total := len(t.combos) * t.entryBits()
	for _, s := range t.sets {
		total += len(s) * 14
	}
	return total
}

func insertSorted(s []uint32, v uint32) []uint32 {
	pos := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if pos < len(s) && s[pos] == v {
		return s
	}
	s = append(s, 0)
	copy(s[pos+1:], s[pos:])
	s[pos] = v
	return s
}

// Build constructs a DCFL classifier from a rule set.
func Build(rs *fivetuple.RuleSet) (*Classifier, error) {
	if rs.Len() == 0 {
		return nil, fmt.Errorf("dcfl: empty rule set")
	}
	c := &Classifier{rules: rs.Rules()}
	for f := fieldIndex(0); f < numFields; f++ {
		c.fieldLabels[f] = make(map[string]uint32)
	}
	c.ipTable = newAggTable()
	c.portTable = newAggTable()
	c.transTable = newAggTable()
	c.finalTable = newAggTable()

	for idx, r := range c.rules {
		srcLbl := c.labelFor(fieldSrcIP, r.SrcPrefix.Canonical().String())
		dstLbl := c.labelFor(fieldDstIP, r.DstPrefix.Canonical().String())
		spLbl := c.labelFor(fieldSrcPort, r.SrcPort.String())
		dpLbl := c.labelFor(fieldDstPort, r.DstPort.String())
		prLbl := c.labelFor(fieldProto, protoKey(r.Protocol))

		c.storeFieldValue(fieldSrcIP, r, srcLbl)
		c.storeFieldValue(fieldDstIP, r, dstLbl)
		c.storeFieldValue(fieldSrcPort, r, spLbl)
		c.storeFieldValue(fieldDstPort, r, dpLbl)
		c.storeFieldValue(fieldProto, r, prLbl)

		ruleIdx := uint32(idx)
		ipID := c.ipTable.add(srcLbl, dstLbl, ruleIdx)
		portID := c.portTable.add(spLbl, dpLbl, ruleIdx)
		transID := c.transTable.add(portID, prLbl, ruleIdx)
		c.finalTable.add(ipID, transID, ruleIdx)
	}
	return c, nil
}

func protoKey(m fivetuple.ProtocolMatch) string {
	if m.IsWildcard() {
		return "*"
	}
	return fivetuple.ExactProtocol(m.Value).String()
}

func (c *Classifier) labelFor(f fieldIndex, key string) uint32 {
	if lbl, ok := c.fieldLabels[f][key]; ok {
		return lbl
	}
	lbl := uint32(len(c.fieldLabels[f]))
	c.fieldLabels[f][key] = lbl
	return lbl
}

// storeFieldValue records the concrete match value for the field search the
// first time its label is seen.
func (c *Classifier) storeFieldValue(f fieldIndex, r fivetuple.Rule, lbl uint32) {
	switch f {
	case fieldSrcIP:
		if int(lbl) == len(c.srcPrefixes) {
			c.srcPrefixes = append(c.srcPrefixes, prefixValue{prefix: r.SrcPrefix.Canonical(), label: lbl})
		}
	case fieldDstIP:
		if int(lbl) == len(c.dstPrefixes) {
			c.dstPrefixes = append(c.dstPrefixes, prefixValue{prefix: r.DstPrefix.Canonical(), label: lbl})
		}
	case fieldSrcPort:
		if int(lbl) == len(c.srcPorts) {
			c.srcPorts = append(c.srcPorts, portValue{rng: r.SrcPort, label: lbl})
		}
	case fieldDstPort:
		if int(lbl) == len(c.dstPorts) {
			c.dstPorts = append(c.dstPorts, portValue{rng: r.DstPort, label: lbl})
		}
	case fieldProto:
		if int(lbl) == len(c.protos) {
			c.protos = append(c.protos, protoValue{match: r.Protocol, label: lbl})
		}
	}
}

// fieldSearch returns the labels of the unique field values matching the
// header in each dimension, plus the number of memory accesses charged for
// the field searches. The access model charges one access per stored unique
// value inspected, following the longest-prefix/range scan structure DCFL
// uses per field (a trie or range tree walk per matching prefix length).
func (c *Classifier) fieldSearch(h fivetuple.Header) (labels [numFields][]uint32, accesses int) {
	for _, p := range c.srcPrefixes {
		if p.prefix.Matches(h.SrcIP) {
			labels[fieldSrcIP] = append(labels[fieldSrcIP], p.label)
		}
	}
	accesses += prefixSearchCost(len(c.srcPrefixes))
	for _, p := range c.dstPrefixes {
		if p.prefix.Matches(h.DstIP) {
			labels[fieldDstIP] = append(labels[fieldDstIP], p.label)
		}
	}
	accesses += prefixSearchCost(len(c.dstPrefixes))
	for _, p := range c.srcPorts {
		if p.rng.Matches(h.SrcPort) {
			labels[fieldSrcPort] = append(labels[fieldSrcPort], p.label)
		}
	}
	accesses += rangeSearchCost(len(c.srcPorts))
	for _, p := range c.dstPorts {
		if p.rng.Matches(h.DstPort) {
			labels[fieldDstPort] = append(labels[fieldDstPort], p.label)
		}
	}
	accesses += rangeSearchCost(len(c.dstPorts))
	for _, p := range c.protos {
		if p.match.Matches(h.Protocol) {
			labels[fieldProto] = append(labels[fieldProto], p.label)
		}
	}
	accesses++ // protocol lookup table
	return labels, accesses
}

// prefixSearchCost models the per-field lookup cost of an IP dimension: a
// 32-bit longest-prefix trie walk visiting up to 8 nodes (4-bit strides), as
// in the DCFL paper's evaluation configuration.
func prefixSearchCost(uniqueValues int) int {
	if uniqueValues == 0 {
		return 0
	}
	return 8
}

// rangeSearchCost models the per-field lookup cost of a port dimension: a
// balanced range-tree descent over the unique ranges.
func rangeSearchCost(uniqueValues int) int {
	cost := 1
	for n := 1; n < uniqueValues; n *= 2 {
		cost++
	}
	return cost
}

// Classify returns the index of the highest-priority matching rule, whether
// any rule matched and the number of memory accesses performed (field
// searches plus aggregation-table probes).
func (c *Classifier) Classify(h fivetuple.Header) (ruleIndex int, matched bool, accesses int) {
	c.lookups.Add(1)
	labels, fieldAccesses := c.fieldSearch(h)
	accesses = fieldAccesses

	// Aggregation network: survive only combinations present in the tables.
	type combo struct{ id uint32 }
	var ipCombos []combo
	for _, s := range labels[fieldSrcIP] {
		for _, d := range labels[fieldDstIP] {
			accesses++
			if id, ok := c.ipTable.probe(s, d); ok {
				ipCombos = append(ipCombos, combo{id: id})
			}
		}
	}
	var portCombos []combo
	for _, s := range labels[fieldSrcPort] {
		for _, d := range labels[fieldDstPort] {
			accesses++
			if id, ok := c.portTable.probe(s, d); ok {
				portCombos = append(portCombos, combo{id: id})
			}
		}
	}
	var transCombos []combo
	for _, p := range portCombos {
		for _, pr := range labels[fieldProto] {
			accesses++
			if id, ok := c.transTable.probe(p.id, pr); ok {
				transCombos = append(transCombos, combo{id: id})
			}
		}
	}
	best := -1
	for _, ip := range ipCombos {
		for _, tr := range transCombos {
			accesses++
			if id, ok := c.finalTable.probe(ip.id, tr.id); ok {
				set := c.finalTable.sets[id]
				if len(set) > 0 && (best < 0 || int(set[0]) < best) {
					best = int(set[0])
				}
			}
		}
	}
	c.lookupAccesses.Add(uint64(accesses))
	if best < 0 {
		return 0, false, accesses
	}
	return best, true, accesses
}

// MemoryBits returns the storage consumed by the field structures and the
// aggregation tables.
func (c *Classifier) MemoryBits() int {
	total := 0
	// Field structures: each unique prefix is a trie entry (~64 bits), each
	// unique range a pair of bounds plus label, each protocol an 8-bit keyed
	// entry.
	total += (len(c.srcPrefixes) + len(c.dstPrefixes)) * 64
	total += (len(c.srcPorts) + len(c.dstPorts)) * (16 + 16 + 16)
	total += len(c.protos) * (8 + 16)
	for _, t := range []*aggTable{c.ipTable, c.portTable, c.transTable, c.finalTable} {
		total += t.memoryBits()
	}
	return total
}

// Stats summarises lookup counters.
type Stats struct {
	Lookups        uint64
	LookupAccesses uint64
}

// AverageAccesses returns the mean memory accesses per lookup.
func (s Stats) AverageAccesses() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.LookupAccesses) / float64(s.Lookups)
}

// Stats returns a snapshot of the counters.
func (c *Classifier) Stats() Stats {
	return Stats{Lookups: c.lookups.Load(), LookupAccesses: c.lookupAccesses.Load()}
}

// ResetStats zeroes the counters without touching the built tables.
func (c *Classifier) ResetStats() {
	c.lookups.Store(0)
	c.lookupAccesses.Store(0)
}
