// Package dcfl implements Distributed Crossproducting of Field Labels
// (Taylor & Turner, INFOCOM 2005), the decomposition baseline of Table I and
// the origin of the label method the paper's architecture adopts (§III.C).
//
// Each header field is searched independently; the result of a field search
// is the set of labels of the unique field values matching the packet. An
// aggregation network then combines the field label sets pairwise: at every
// aggregation node the candidate label combinations (the cross-product of the
// two incoming sets) are probed against a table of combinations that actually
// occur in the rule set, so only viable combinations survive to the next
// stage. The final surviving combination set identifies the matching rules,
// from which the highest priority one is returned.
//
// Memory accesses per lookup are dominated by the aggregation probes — the
// cross-product of the *matching* label sets, which is small — giving the
// good lookup numbers of Table I; memory usage is dominated by the
// combination tables, which is why DCFL's footprint in Table I is large.
//
// The built classifier is flat: the per-field unique values are (lo,hi)
// range arrays indexed by label, and each aggregation node is an
// open-addressed hash table plus a directory of rule-index spans — all laid
// out in one contiguous arena with index links. The published structure is
// two pointer-free allocations (arena + rule table) the collector scans in
// O(1); Classify keeps its per-packet label sets in a pooled scratch and
// allocates nothing in steady state.
package dcfl

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"sdnpc/internal/arena"
	"sdnpc/internal/fivetuple"
)

// fieldIndex identifies one of the five lookup fields.
type fieldIndex int

const (
	fieldSrcIP fieldIndex = iota
	fieldDstIP
	fieldSrcPort
	fieldDstPort
	fieldProto
	numFields
)

// emptySlot marks an unoccupied hash slot. Labels and combination IDs are
// dense small integers, so the all-ones word can never collide with one.
const emptySlot = ^uint32(0)

// flatSpan locates one per-field value array in the arena: n live (lo,hi)
// pairs in a region with room for cap, the value's label being its index.
// This exploits the Build invariant that field values are stored in label
// order, so the flat form needs no label map at all.
type flatSpan struct {
	off, n, cap int
}

// flatAgg is one aggregation node in the arena. The combination table is an
// open-addressed, linearly probed hash of 3-word slots (a, b, id) sized a
// power of two and kept under 3/4 load; the directory maps a combination ID
// to its rule-index span (off, len, cap triples).
type flatAgg struct {
	slotOff  int
	slotMask int // slot count - 1
	used     int // occupied slots == combinations (including emptied ones)

	dirOff, dirLen, dirCap int

	entries int // live rule indices across all spans
}

// Classifier is a DCFL classifier built from a rule set.
type Classifier struct {
	rules []fivetuple.Rule

	// The flat store: field arrays, then the aggregation tables, then the
	// spare region [bump, limit) feeding span relocations and rehashes.
	ar    *arena.Arena
	words []uint32
	bump  int
	limit int

	fields [numFields]flatSpan

	ipTable    flatAgg // (srcIP, dstIP)
	portTable  flatAgg // (srcPort, dstPort)
	transTable flatAgg // (portTable result, proto)
	finalTable flatAgg // (ipTable result, transTable result) -> rule sets

	// Delta accounting (see delta.go): stale combination entries left by
	// deletes, and the op/write counters of updates applied since Build.
	staleCombos int
	deltas      int
	deltaWrites int

	// Atomic so that a built classifier can serve Classify from any number
	// of goroutines concurrently (read-only after build).
	lookups        atomic.Uint64
	lookupAccesses atomic.Uint64
}

// scratch is the per-lookup working set: the matching labels per field and
// the surviving combination IDs per aggregation stage. Pooled so that
// steady-state Classify performs no allocation.
type scratch struct {
	labels          [numFields][]uint32
	ip, port, trans []uint32
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// fieldRange converts one rule field into the inclusive (lo,hi) range the
// flat value arrays store. Canonical prefixes are contiguous ranges, so
// range containment is exactly prefix match.
func fieldRange(f fieldIndex, r fivetuple.Rule) (lo, hi uint32) {
	switch f {
	case fieldSrcIP:
		p := r.SrcPrefix.Canonical()
		span := uint64(1) << (32 - uint64(p.Len))
		return uint32(p.Addr), uint32(uint64(p.Addr) + span - 1)
	case fieldDstIP:
		p := r.DstPrefix.Canonical()
		span := uint64(1) << (32 - uint64(p.Len))
		return uint32(p.Addr), uint32(uint64(p.Addr) + span - 1)
	case fieldSrcPort:
		return uint32(r.SrcPort.Lo), uint32(r.SrcPort.Hi)
	case fieldDstPort:
		return uint32(r.DstPort.Lo), uint32(r.DstPort.Hi)
	default:
		if r.Protocol.IsWildcard() {
			return 0, 255
		}
		return uint32(r.Protocol.Value), uint32(r.Protocol.Value)
	}
}

// hashPair mixes a packed label pair into a hash-slot index seed.
func hashPair(a, b uint32) uint64 {
	h := uint64(a)<<32 | uint64(b)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// buildAgg is the transient (map-based) form of an aggregation node used
// only during Build; flatten converts it into a flatAgg and drops it.
type buildAgg struct {
	combos map[uint64]uint32 // packed pair -> combination ID
	sets   [][]uint32        // combination ID -> sorted rule indices
}

func packPair(a, b uint32) uint64 { return uint64(a)<<32 | uint64(b) }

func (t *buildAgg) add(a, b uint32, idx uint32) uint32 {
	key := packPair(a, b)
	id, ok := t.combos[key]
	if !ok {
		id = uint32(len(t.sets))
		t.combos[key] = id
		t.sets = append(t.sets, nil)
	}
	t.sets[id] = insertSorted(t.sets[id], idx)
	return id
}

func insertSorted(s []uint32, v uint32) []uint32 {
	pos := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if pos < len(s) && s[pos] == v {
		return s
	}
	s = append(s, 0)
	copy(s[pos+1:], s[pos:])
	s[pos] = v
	return s
}

// Build constructs a DCFL classifier from a rule set and flattens it.
func Build(rs *fivetuple.RuleSet) (*Classifier, error) {
	if rs.Len() == 0 {
		return nil, fmt.Errorf("dcfl: empty rule set")
	}
	c := &Classifier{rules: rs.Rules()}
	var values [numFields][][2]uint32
	tables := [4]*buildAgg{}
	for i := range tables {
		tables[i] = &buildAgg{combos: make(map[uint64]uint32)}
	}
	labelOf := func(f fieldIndex, r fivetuple.Rule) uint32 {
		lo, hi := fieldRange(f, r)
		for l, v := range values[f] {
			if v[0] == lo && v[1] == hi {
				return uint32(l)
			}
		}
		values[f] = append(values[f], [2]uint32{lo, hi})
		return uint32(len(values[f]) - 1)
	}
	for idx, r := range c.rules {
		srcLbl := labelOf(fieldSrcIP, r)
		dstLbl := labelOf(fieldDstIP, r)
		spLbl := labelOf(fieldSrcPort, r)
		dpLbl := labelOf(fieldDstPort, r)
		prLbl := labelOf(fieldProto, r)

		ruleIdx := uint32(idx)
		ipID := tables[0].add(srcLbl, dstLbl, ruleIdx)
		portID := tables[1].add(spLbl, dpLbl, ruleIdx)
		transID := tables[2].add(portID, prLbl, ruleIdx)
		tables[3].add(ipID, transID, ruleIdx)
	}
	c.flatten(values, tables)
	return c, nil
}

// flatten lays the transient build structures out in one arena: field value
// arrays with slack, then per aggregation node the hash slots, the set
// directory and the rule-index spans, then the spare region.
func (c *Classifier) flatten(values [numFields][][2]uint32, tables [4]*buildAgg) {
	b := arena.NewBuilder()
	const fieldSlack = 4
	var fieldHandles [numFields]arena.Handle
	for f := fieldIndex(0); f < numFields; f++ {
		n := len(values[f])
		spanCap := n + fieldSlack
		h, w := b.Words(2 * spanCap)
		for l, v := range values[f] {
			w[2*l] = v[0]
			w[2*l+1] = v[1]
		}
		fieldHandles[f] = h
		c.fields[f] = flatSpan{off: int(h), n: n, cap: spanCap}
	}
	flats := [4]*flatAgg{&c.ipTable, &c.portTable, &c.transTable, &c.finalTable}
	totalSpan := 0
	for ti, t := range tables {
		fa := flats[ti]
		slotCount := nextPow2(2*len(t.combos) + 8)
		sh, slots := b.Words(3 * slotCount)
		for i := range slots {
			slots[i] = emptySlot
		}
		fa.slotOff = int(sh)
		fa.slotMask = slotCount - 1
		fa.used = len(t.combos)
		for key, id := range t.combos {
			a, bb := uint32(key>>32), uint32(key)
			i := int(hashPair(a, bb)) & fa.slotMask
			for slots[3*i] != emptySlot {
				i = (i + 1) & fa.slotMask
			}
			slots[3*i], slots[3*i+1], slots[3*i+2] = a, bb, id
		}
		fa.dirLen = len(t.sets)
		fa.dirCap = len(t.sets) + 4
		dh, dir := b.Words(3 * fa.dirCap)
		fa.dirOff = int(dh)
		for id, set := range t.sets {
			spanCap := len(set) + 2
			eh, span := b.Words(spanCap)
			for j, v := range set {
				span[j] = v
			}
			dir[3*id] = uint32(eh)
			dir[3*id+1] = uint32(len(set))
			dir[3*id+2] = uint32(spanCap)
			fa.entries += len(set)
			totalSpan += spanCap
		}
	}
	spare := totalSpan/2 + 128
	b.Words(spare)
	c.ar = b.Finish()
	c.words = c.ar.Words(0, c.ar.WordLen())
	c.limit = c.ar.WordLen()
	c.bump = c.limit - spare
}

// spareAlloc carves n words out of the spare region, growing the arena when
// it is exhausted. Callers must refresh any local word-space view after.
func (c *Classifier) spareAlloc(n int) int {
	if c.bump+n > c.limit {
		extra := c.limit/2 + 128
		if extra < 2*n {
			extra = 2 * n
		}
		c.ar.Grow(extra)
		c.words = c.ar.Words(0, c.ar.WordLen())
		c.limit = c.ar.WordLen()
	}
	off := c.bump
	c.bump += n
	return off
}

// probe looks up the combination (a, b) in the node's hash table; ok is
// false when no rule ever used it.
func (c *Classifier) probe(t *flatAgg, a, b uint32) (uint32, bool) {
	w := c.words
	i := int(hashPair(a, b)) & t.slotMask
	for {
		s := t.slotOff + 3*i
		switch {
		case w[s] == emptySlot:
			return 0, false
		case w[s] == a && w[s+1] == b:
			return w[s+2], true
		}
		i = (i + 1) & t.slotMask
	}
}

// setView returns the directory entry of combination id.
func (c *Classifier) setView(t *flatAgg, id uint32) (off, n, setCap int) {
	d := t.dirOff + 3*int(id)
	w := c.words
	return int(w[d]), int(w[d+1]), int(w[d+2])
}

// fieldSearch appends the labels of the unique field values matching the
// header in each dimension into the scratch, and returns the number of
// memory accesses charged for the field searches. The access model charges
// one access per stored unique value inspected, following the
// longest-prefix/range scan structure DCFL uses per field (a trie or range
// tree walk per matching prefix length).
func (c *Classifier) fieldSearch(h fivetuple.Header, sc *scratch) (accesses int) {
	w := c.words
	keys := [numFields]uint32{
		uint32(h.SrcIP), uint32(h.DstIP),
		uint32(h.SrcPort), uint32(h.DstPort), uint32(h.Protocol),
	}
	for f := fieldIndex(0); f < numFields; f++ {
		span := c.fields[f]
		v := keys[f]
		for l := 0; l < span.n; l++ {
			if v >= w[span.off+2*l] && v <= w[span.off+2*l+1] {
				sc.labels[f] = append(sc.labels[f], uint32(l))
			}
		}
	}
	accesses += prefixSearchCost(c.fields[fieldSrcIP].n)
	accesses += prefixSearchCost(c.fields[fieldDstIP].n)
	accesses += rangeSearchCost(c.fields[fieldSrcPort].n)
	accesses += rangeSearchCost(c.fields[fieldDstPort].n)
	accesses++ // protocol lookup table
	return accesses
}

// prefixSearchCost models the per-field lookup cost of an IP dimension: a
// 32-bit longest-prefix trie walk visiting up to 8 nodes (4-bit strides), as
// in the DCFL paper's evaluation configuration.
func prefixSearchCost(uniqueValues int) int {
	if uniqueValues == 0 {
		return 0
	}
	return 8
}

// rangeSearchCost models the per-field lookup cost of a port dimension: a
// balanced range-tree descent over the unique ranges.
func rangeSearchCost(uniqueValues int) int {
	cost := 1
	for n := 1; n < uniqueValues; n *= 2 {
		cost++
	}
	return cost
}

// Classify returns the index of the highest-priority matching rule, whether
// any rule matched and the number of memory accesses performed (field
// searches plus aggregation-table probes).
func (c *Classifier) Classify(h fivetuple.Header) (ruleIndex int, matched bool, accesses int) {
	c.lookups.Add(1)
	sc := scratchPool.Get().(*scratch)
	for f := range sc.labels {
		sc.labels[f] = sc.labels[f][:0]
	}
	sc.ip, sc.port, sc.trans = sc.ip[:0], sc.port[:0], sc.trans[:0]

	accesses = c.fieldSearch(h, sc)

	// Aggregation network: survive only combinations present in the tables.
	w := c.words
	for _, s := range sc.labels[fieldSrcIP] {
		for _, d := range sc.labels[fieldDstIP] {
			accesses++
			if id, ok := c.probe(&c.ipTable, s, d); ok {
				sc.ip = append(sc.ip, id)
			}
		}
	}
	for _, s := range sc.labels[fieldSrcPort] {
		for _, d := range sc.labels[fieldDstPort] {
			accesses++
			if id, ok := c.probe(&c.portTable, s, d); ok {
				sc.port = append(sc.port, id)
			}
		}
	}
	for _, p := range sc.port {
		for _, pr := range sc.labels[fieldProto] {
			accesses++
			if id, ok := c.probe(&c.transTable, p, pr); ok {
				sc.trans = append(sc.trans, id)
			}
		}
	}
	best := -1
	for _, ip := range sc.ip {
		for _, tr := range sc.trans {
			accesses++
			if id, ok := c.probe(&c.finalTable, ip, tr); ok {
				off, n, _ := c.setView(&c.finalTable, id)
				if n > 0 && (best < 0 || int(w[off]) < best) {
					best = int(w[off])
				}
			}
		}
	}
	scratchPool.Put(sc)
	c.lookupAccesses.Add(uint64(accesses))
	if best < 0 {
		return 0, false, accesses
	}
	return best, true, accesses
}

// ClassifyAll appends the indices of every rule matching the header to dst
// and returns the extended slice plus the number of memory accesses. Each
// rule belongs to exactly one final-table combination, so the surviving
// combination spans are disjoint and no deduplication is needed — but the
// concatenation of spans is not globally ordered (and delta churn reorders
// combinations), so callers needing priority order must sort the result. dst
// is appended to without allocating when it has sufficient capacity.
func (c *Classifier) ClassifyAll(h fivetuple.Header, dst []int) ([]int, int) {
	c.lookups.Add(1)
	sc := scratchPool.Get().(*scratch)
	for f := range sc.labels {
		sc.labels[f] = sc.labels[f][:0]
	}
	sc.ip, sc.port, sc.trans = sc.ip[:0], sc.port[:0], sc.trans[:0]

	accesses := c.fieldSearch(h, sc)

	w := c.words
	for _, s := range sc.labels[fieldSrcIP] {
		for _, d := range sc.labels[fieldDstIP] {
			accesses++
			if id, ok := c.probe(&c.ipTable, s, d); ok {
				sc.ip = append(sc.ip, id)
			}
		}
	}
	for _, s := range sc.labels[fieldSrcPort] {
		for _, d := range sc.labels[fieldDstPort] {
			accesses++
			if id, ok := c.probe(&c.portTable, s, d); ok {
				sc.port = append(sc.port, id)
			}
		}
	}
	for _, p := range sc.port {
		for _, pr := range sc.labels[fieldProto] {
			accesses++
			if id, ok := c.probe(&c.transTable, p, pr); ok {
				sc.trans = append(sc.trans, id)
			}
		}
	}
	for _, ip := range sc.ip {
		for _, tr := range sc.trans {
			accesses++
			if id, ok := c.probe(&c.finalTable, ip, tr); ok {
				off, n, _ := c.setView(&c.finalTable, id)
				accesses += n
				for j := 0; j < n; j++ {
					dst = append(dst, int(w[off+j]))
				}
			}
		}
	}
	scratchPool.Put(sc)
	c.lookupAccesses.Add(uint64(accesses))
	return dst, accesses
}

// MemoryBits returns the storage consumed by the field structures and the
// aggregation tables.
func (c *Classifier) MemoryBits() int {
	total := 0
	// Field structures: each unique prefix is a trie entry (~64 bits), each
	// unique range a pair of bounds plus label, each protocol an 8-bit keyed
	// entry.
	total += (c.fields[fieldSrcIP].n + c.fields[fieldDstIP].n) * 64
	total += (c.fields[fieldSrcPort].n + c.fields[fieldDstPort].n) * (16 + 16 + 16)
	total += c.fields[fieldProto].n * (8 + 16)
	// Aggregation tables: each combination entry stores two 16-bit input
	// labels/IDs plus the combination ID, and each stored rule index is a
	// 14-bit pointer (the architecture would store the best rule only per
	// combination at the final node and the combination ID elsewhere).
	for _, t := range c.aggTables() {
		total += t.used*(16+16+16) + t.entries*14
	}
	return total
}

// ArenaBytes returns the backing storage of the flattened structures — the
// one allocation (plus the rule table) a snapshot hands the collector.
func (c *Classifier) ArenaBytes() int { return c.ar.SizeBytes() }

// Stats summarises lookup counters.
type Stats struct {
	Lookups        uint64
	LookupAccesses uint64
}

// AverageAccesses returns the mean memory accesses per lookup.
func (s Stats) AverageAccesses() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.LookupAccesses) / float64(s.Lookups)
}

// Stats returns a snapshot of the counters.
func (c *Classifier) Stats() Stats {
	return Stats{Lookups: c.lookups.Load(), LookupAccesses: c.lookupAccesses.Load()}
}

// ResetStats zeroes the counters without touching the built tables.
func (c *Classifier) ResetStats() {
	c.lookups.Store(0)
	c.lookupAccesses.Store(0)
}
