package dcfl

import (
	"math/rand"
	"testing"

	"sdnpc/internal/classbench"
	"sdnpc/internal/fivetuple"
)

// TestDeltaMatchesFreshBuild churns built tables through a random
// insert/delete sequence via the delta ops and asserts that every verdict
// agrees with tables freshly built over the final rule list and with the
// linear oracle.
func TestDeltaMatchesFreshBuild(t *testing.T) {
	rs := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: 200, Seed: 91})
	c, err := Build(rs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	live := append([]fivetuple.Rule(nil), rs.Rules()...)
	extra := classbench.Generate(classbench.Config{Class: classbench.IPC, Rules: 120, Seed: 92}).Rules()
	rng := rand.New(rand.NewSource(93))
	next := 0
	for op := 0; op < 160; op++ {
		if (rng.Intn(2) == 0 || len(live) == 0) && next < len(extra) {
			idx := rng.Intn(len(live) + 1)
			r := extra[next]
			next++
			if err := c.InsertAt(r, idx); err != nil {
				t.Fatalf("InsertAt(%d): %v", idx, err)
			}
			live = append(live, fivetuple.Rule{})
			copy(live[idx+1:], live[idx:])
			live[idx] = r
		} else if len(live) > 0 {
			idx := rng.Intn(len(live))
			if err := c.DeleteAt(idx); err != nil {
				t.Fatalf("DeleteAt(%d): %v", idx, err)
			}
			live = append(live[:idx], live[idx+1:]...)
		}
	}
	if got := c.DeltaStats().Deltas; got != 160 {
		t.Errorf("DeltaStats.Deltas = %d, want 160", got)
	}

	finalSet := fivetuple.NewRuleSet("final", live)
	fresh, err := Build(finalSet)
	if err != nil {
		t.Fatalf("fresh Build over %d rules: %v", finalSet.Len(), err)
	}
	trace := classbench.GenerateTrace(finalSet, classbench.TraceConfig{Packets: 800, Seed: 94, MatchFraction: 0.85})
	for _, h := range trace {
		wantIdx, wantOK := finalSet.Classify(h)
		gotIdx, gotOK, _ := c.Classify(h)
		if gotOK != wantOK || (wantOK && gotIdx != wantIdx) {
			t.Fatalf("delta tables Classify(%s) = (%d,%v), oracle (%d,%v)", h, gotIdx, gotOK, wantIdx, wantOK)
		}
		freshIdx, freshOK, _ := fresh.Classify(h)
		if gotOK != freshOK || (gotOK && gotIdx != freshIdx) {
			t.Fatalf("delta tables Classify(%s) = (%d,%v), fresh build (%d,%v)", h, gotIdx, gotOK, freshIdx, freshOK)
		}
	}
}

// TestDeltaIndexBounds pins the range checks of the delta ops.
func TestDeltaIndexBounds(t *testing.T) {
	rs := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: 20, Seed: 5})
	c, err := Build(rs)
	if err != nil {
		t.Fatal(err)
	}
	n := len(rs.Rules())
	if err := c.InsertAt(rs.Rule(0), n+1); err == nil {
		t.Error("InsertAt past the end should fail")
	}
	if err := c.InsertAt(rs.Rule(0), -1); err == nil {
		t.Error("InsertAt(-1) should fail")
	}
	if err := c.DeleteAt(n); err == nil {
		t.Error("DeleteAt(len) should fail")
	}
	if err := c.DeleteAt(-1); err == nil {
		t.Error("DeleteAt(-1) should fail")
	}
}

// TestCloneIsolation asserts that delta ops on a clone are never observable
// through the original.
func TestCloneIsolation(t *testing.T) {
	rs := classbench.Generate(classbench.Config{Class: classbench.FW, Rules: 150, Seed: 23})
	orig, err := Build(rs)
	if err != nil {
		t.Fatal(err)
	}
	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{Packets: 200, Seed: 24, MatchFraction: 0.9})
	type verdict struct {
		idx int
		ok  bool
	}
	before := make([]verdict, len(trace))
	for i, h := range trace {
		idx, ok, _ := orig.Classify(h)
		before[i] = verdict{idx, ok}
	}

	cl := orig.Clone()
	for i := 0; i < 40; i++ {
		if err := cl.DeleteAt(0); err != nil {
			t.Fatalf("DeleteAt on clone: %v", err)
		}
	}
	if err := cl.InsertAt(rs.Rule(0), 0); err != nil {
		t.Fatalf("InsertAt on clone: %v", err)
	}
	if got := orig.DeltaStats().Deltas; got != 0 {
		t.Errorf("original DeltaStats.Deltas = %d after clone mutation, want 0", got)
	}
	for i, h := range trace {
		idx, ok, _ := orig.Classify(h)
		if idx != before[i].idx || ok != before[i].ok {
			t.Fatalf("original verdict for %s changed after clone mutation: (%d,%v) -> (%d,%v)",
				h, before[i].idx, before[i].ok, idx, ok)
		}
	}
}

// TestDegradationTracksStaleCombos deletes rules and asserts the stale-entry
// fraction rises, then falls again when the same rules are re-inserted (the
// delete-then-reinsert churn pattern revives emptied combination entries).
func TestDegradationTracksStaleCombos(t *testing.T) {
	rs := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: 60, Seed: 31})
	c, err := Build(rs)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Degradation(); got != 0 {
		t.Fatalf("fresh build degradation = %v, want 0", got)
	}
	// Delete the first 20 rules (always at index 0 so the renumbering path
	// is exercised too).
	deleted := append([]fivetuple.Rule(nil), rs.Rules()[:20]...)
	for i := 0; i < 20; i++ {
		if err := c.DeleteAt(0); err != nil {
			t.Fatalf("DeleteAt: %v", err)
		}
	}
	mid := c.Degradation()
	if mid <= 0 {
		t.Fatalf("degradation after 20 deletes = %v, want > 0", mid)
	}
	for i := len(deleted) - 1; i >= 0; i-- {
		if err := c.InsertAt(deleted[i], 0); err != nil {
			t.Fatalf("InsertAt: %v", err)
		}
	}
	if got := c.Degradation(); got >= mid {
		t.Errorf("degradation after re-inserting = %v, want below the post-delete %v", got, mid)
	}
	if got := c.DeltaStats().StaleCombos; got != 0 {
		t.Errorf("StaleCombos after full re-insert = %d, want 0", got)
	}
}
