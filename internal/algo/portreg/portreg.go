// Package portreg implements the register bank used for transport-port
// lookup (§IV.C: "Registers utilized for Port field lookup contain
// information about the port values defined in range, high value and low
// value of port field rule, and the corresponding label").
//
// Each register holds a port range [Lo, Hi] and its label. A lookup compares
// the packet's port against every register in parallel and returns the
// matching labels ordered by specificity, following the priority rule of
// §IV.C.1 and the example of Table IV: exact matches come first, then range
// matches from tightest to widest — so for a destination port of 7812
// against the rules of Table IV the labels come out in the order B, C, A.
//
// The lookup produces its labels in two clock cycles (§V.B): one to compare
// all registers, one to priority-encode the result.
package portreg

import (
	"fmt"
	"sync/atomic"

	"sdnpc/internal/fivetuple"
	"sdnpc/internal/label"
)

// LookupCycles is the lookup latency of the port register bank (§V.B).
const LookupCycles = 2

// Bank is the port-range register bank for one port dimension.
type Bank struct {
	// capacity is the number of physical registers provisioned; the label
	// width (7 bits) bounds it at 128 distinct port values.
	capacity  int
	labelBits int

	entries []regEntry

	// The counters are atomic so that Lookup — a pure scan of the register
	// file — is safe to call from many goroutines at once.
	lookups        atomic.Uint64
	lookupAccesses atomic.Uint64
	updateWrites   atomic.Uint64
}

type regEntry struct {
	rng      fivetuple.PortRange
	lbl      label.Label
	priority int
}

// New creates a register bank with the given number of registers and label
// width.
func New(capacity, labelBits int) (*Bank, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("portreg: capacity %d must be positive", capacity)
	}
	if labelBits < 1 || labelBits > 16 {
		return nil, fmt.Errorf("portreg: label width %d out of range [1,16]", labelBits)
	}
	if capacity > 1<<labelBits {
		return nil, fmt.Errorf("portreg: capacity %d exceeds label space of %d bits", capacity, labelBits)
	}
	return &Bank{capacity: capacity, labelBits: labelBits}, nil
}

// MustNew is like New but panics on error.
func MustNew(capacity, labelBits int) *Bank {
	b, err := New(capacity, labelBits)
	if err != nil {
		panic(err)
	}
	return b
}

// Default returns the architecture's default port bank: 128 registers with
// 7-bit labels (§IV.C.1).
func Default() *Bank {
	return MustNew(128, 7)
}

// ErrBankFull is returned when every physical register is occupied.
var ErrBankFull = fmt.Errorf("portreg: register bank full")

// Insert installs a port range with its label and rule priority. Inserting a
// range that is already present refreshes its priority (keeping the better
// one) at no register cost.
func (b *Bank) Insert(rng fivetuple.PortRange, lbl label.Label, priority int) (writes int, err error) {
	for i, e := range b.entries {
		if e.rng == rng {
			if e.lbl != lbl || priority < e.priority {
				b.entries[i].lbl = lbl
				if priority < e.priority {
					b.entries[i].priority = priority
				}
				b.updateWrites.Add(1)
				return 1, nil
			}
			return 0, nil
		}
	}
	if len(b.entries) >= b.capacity {
		return 0, fmt.Errorf("%w: %d registers", ErrBankFull, b.capacity)
	}
	b.entries = append(b.entries, regEntry{rng: rng, lbl: lbl, priority: priority})
	b.updateWrites.Add(1)
	return 1, nil
}

// Remove deletes the register holding the given range.
func (b *Bank) Remove(rng fivetuple.PortRange) (writes int, err error) {
	for i, e := range b.entries {
		if e.rng == rng {
			b.entries = append(b.entries[:i], b.entries[i+1:]...)
			b.updateWrites.Add(1)
			return 1, nil
		}
	}
	return 0, fmt.Errorf("portreg: range %s not present", rng)
}

// Lookup compares the port against every register in parallel and returns
// the matching labels ordered exact-first then tightest-range-first (the
// Table IV priority rule), together with the number of register-bank
// accesses (one: all registers are read in the same cycle).
func (b *Bank) Lookup(port uint16) (*label.List, int) {
	result := &label.List{}
	return result, b.LookupInto(port, result)
}

// LookupInto is the allocation-free variant of Lookup: it resets out, fills
// it with the matching labels and returns the access count.
func (b *Bank) LookupInto(port uint16, out *label.List) int {
	b.lookups.Add(1)
	b.lookupAccesses.Add(1)
	out.Reset()
	for _, e := range b.entries {
		if !e.rng.Matches(port) {
			continue
		}
		// Specificity ordering: the list priority is the range width, so an
		// exact match (width 1) always precedes wider ranges and the
		// wildcard comes last. Ties keep the earlier-inserted register.
		out.Insert(label.PriorityLabel{Label: e.lbl, Priority: int(e.rng.Width())})
	}
	return 1
}

// Ranges returns the stored ranges in register order.
func (b *Bank) Ranges() []fivetuple.PortRange {
	out := make([]fivetuple.PortRange, len(b.entries))
	for i, e := range b.entries {
		out[i] = e.rng
	}
	return out
}

// Len returns the number of occupied registers.
func (b *Bank) Len() int { return len(b.entries) }

// Capacity returns the number of physical registers.
func (b *Bank) Capacity() int { return b.capacity }

// RegisterBits returns the width of one register: low value, high value and
// label.
func (b *Bank) RegisterBits() int { return 16 + 16 + b.labelBits }

// MemoryBits returns the total register storage provisioned for the bank.
// Port matching uses logic registers rather than block RAM, so this figure
// feeds the register count of the synthesis estimate rather than the memory
// bit count.
func (b *Bank) MemoryBits() int { return b.capacity * b.RegisterBits() }

// Stats summarises the access counters.
type Stats struct {
	Lookups        uint64
	LookupAccesses uint64
	UpdateWrites   uint64
}

// Stats returns a snapshot of the counters.
func (b *Bank) Stats() Stats {
	return Stats{Lookups: b.lookups.Load(), LookupAccesses: b.lookupAccesses.Load(), UpdateWrites: b.updateWrites.Load()}
}

// ResetStats zeroes the counters.
func (b *Bank) ResetStats() {
	b.lookups.Store(0)
	b.lookupAccesses.Store(0)
	b.updateWrites.Store(0)
}

// Clone returns an independent copy of the bank: the register file is
// copied because Insert refreshes priorities in place. Access counters
// carry over so cumulative statistics survive a copy-on-write snapshot swap.
func (b *Bank) Clone() *Bank {
	c := &Bank{
		capacity:  b.capacity,
		labelBits: b.labelBits,
		entries:   append([]regEntry(nil), b.entries...),
	}
	c.lookups.Store(b.lookups.Load())
	c.lookupAccesses.Store(b.lookupAccesses.Load())
	c.updateWrites.Store(b.updateWrites.Load())
	return c
}
