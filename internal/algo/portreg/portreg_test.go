package portreg

import (
	"errors"
	"testing"

	"sdnpc/internal/fivetuple"
	"sdnpc/internal/label"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name      string
		capacity  int
		labelBits int
		wantErr   bool
	}{
		{name: "default geometry", capacity: 128, labelBits: 7, wantErr: false},
		{name: "zero capacity", capacity: 0, labelBits: 7, wantErr: true},
		{name: "zero label bits", capacity: 8, labelBits: 0, wantErr: true},
		{name: "label bits too wide", capacity: 8, labelBits: 17, wantErr: true},
		{name: "capacity exceeds label space", capacity: 200, labelBits: 7, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.capacity, tt.labelBits)
			if (err != nil) != tt.wantErr {
				t.Errorf("New(%d, %d) error = %v, wantErr %v", tt.capacity, tt.labelBits, err, tt.wantErr)
			}
		})
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew with invalid geometry did not panic")
		}
	}()
	MustNew(0, 7)
}

func TestDefaultGeometry(t *testing.T) {
	b := Default()
	if b.Capacity() != 128 {
		t.Errorf("Capacity() = %d, want 128", b.Capacity())
	}
	if b.RegisterBits() != 16+16+7 {
		t.Errorf("RegisterBits() = %d, want 39", b.RegisterBits())
	}
	if b.MemoryBits() != 128*39 {
		t.Errorf("MemoryBits() = %d, want %d", b.MemoryBits(), 128*39)
	}
}

// tableIVBank builds the three-rule example of Table IV:
//
//	[65355 - 0]     label A  (wide range)
//	[7812 - 7812]   label B  (exact match)
//	[7820 - 7810]   label C  (tight range)
func tableIVBank(t *testing.T) (*Bank, label.Label, label.Label, label.Label) {
	t.Helper()
	b := Default()
	const (
		labelA label.Label = 0
		labelB label.Label = 1
		labelC label.Label = 2
	)
	inserts := []struct {
		rng fivetuple.PortRange
		lbl label.Label
	}{
		{fivetuple.PortRange{Lo: 0, Hi: 65355}, labelA},
		{fivetuple.PortRange{Lo: 7812, Hi: 7812}, labelB},
		{fivetuple.PortRange{Lo: 7810, Hi: 7820}, labelC},
	}
	for i, in := range inserts {
		if _, err := b.Insert(in.rng, in.lbl, i); err != nil {
			t.Fatalf("Insert(%s): %v", in.rng, err)
		}
	}
	return b, labelA, labelB, labelC
}

func TestTableIVOrdering(t *testing.T) {
	// §IV.C.1: "for an input packet with a destination port field equal to
	// 7812, the labels of Port lookup will be ordered as B, C and A."
	b, labelA, labelB, labelC := tableIVBank(t)
	list, accesses := b.Lookup(7812)
	if accesses != 1 {
		t.Errorf("accesses = %d, want 1 (parallel register compare)", accesses)
	}
	got := list.Labels()
	want := []label.Label{labelB, labelC, labelA}
	if len(got) != len(want) {
		t.Fatalf("labels = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("labels = %v, want %v (Table IV order)", got, want)
		}
	}
}

func TestTableIVOtherPorts(t *testing.T) {
	b, labelA, _, labelC := tableIVBank(t)
	tests := []struct {
		name string
		port uint16
		want []label.Label
	}{
		{name: "inside tight range only", port: 7815, want: []label.Label{labelC, labelA}},
		{name: "outside both ranges", port: 9000, want: []label.Label{labelA}},
		{name: "outside the wide range too", port: 65400, want: nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			list, _ := b.Lookup(tt.port)
			got := list.Labels()
			if len(got) != len(tt.want) {
				t.Fatalf("labels = %v, want %v", got, tt.want)
			}
			for i := range tt.want {
				if got[i] != tt.want[i] {
					t.Fatalf("labels = %v, want %v", got, tt.want)
				}
			}
		})
	}
}

func TestInsertDuplicateAndCapacity(t *testing.T) {
	b := MustNew(2, 7)
	if _, err := b.Insert(fivetuple.ExactPort(80), 1, 10); err != nil {
		t.Fatal(err)
	}
	// Re-inserting the same range with a better priority costs one write but
	// no register.
	writes, err := b.Insert(fivetuple.ExactPort(80), 1, 5)
	if err != nil || writes != 1 {
		t.Errorf("duplicate insert = (%d, %v)", writes, err)
	}
	// Re-inserting identically is free.
	writes, err = b.Insert(fivetuple.ExactPort(80), 1, 7)
	if err != nil || writes != 0 {
		t.Errorf("no-op insert = (%d, %v)", writes, err)
	}
	if _, err := b.Insert(fivetuple.ExactPort(443), 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Insert(fivetuple.ExactPort(22), 3, 2); !errors.Is(err, ErrBankFull) {
		t.Errorf("insert beyond capacity error = %v, want ErrBankFull", err)
	}
	if b.Len() != 2 {
		t.Errorf("Len() = %d, want 2", b.Len())
	}
}

func TestRemove(t *testing.T) {
	b := Default()
	if _, err := b.Insert(fivetuple.ExactPort(80), 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Remove(fivetuple.ExactPort(80)); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := b.Remove(fivetuple.ExactPort(80)); err == nil {
		t.Error("Remove of absent range should fail")
	}
	list, _ := b.Lookup(80)
	if list.Len() != 0 {
		t.Errorf("labels after removal = %v", list.Labels())
	}
	if len(b.Ranges()) != 0 {
		t.Errorf("Ranges() = %v, want empty", b.Ranges())
	}
}

func TestWildcardOrderingLast(t *testing.T) {
	b := Default()
	if _, err := b.Insert(fivetuple.WildcardPortRange(), 9, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Insert(fivetuple.PortRange{Lo: 1024, Hi: 65535}, 8, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Insert(fivetuple.ExactPort(8080), 7, 2); err != nil {
		t.Fatal(err)
	}
	list, _ := b.Lookup(8080)
	got := list.Labels()
	want := []label.Label{7, 8, 9} // exact, tighter range, wildcard
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("labels = %v, want %v", got, want)
		}
	}
}

func TestStatsAndReset(t *testing.T) {
	b := Default()
	if _, err := b.Insert(fivetuple.ExactPort(53), 1, 0); err != nil {
		t.Fatal(err)
	}
	b.Lookup(53)
	b.Lookup(54)
	s := b.Stats()
	if s.Lookups != 2 || s.LookupAccesses != 2 || s.UpdateWrites != 1 {
		t.Errorf("stats = %+v", s)
	}
	b.ResetStats()
	if s := b.Stats(); s.Lookups != 0 || s.LookupAccesses != 0 || s.UpdateWrites != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
	if LookupCycles != 2 {
		t.Errorf("LookupCycles = %d, want 2 (§V.B)", LookupCycles)
	}
}
