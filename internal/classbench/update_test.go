package classbench

import (
	"math"
	"testing"

	"sdnpc/internal/fivetuple"
)

// replayTrace applies the ops to a mirror of the base set the way a
// classifier would, failing if any delete names a rule that is not live —
// the applicability guarantee of the generator.
func replayTrace(t *testing.T, rs *fivetuple.RuleSet, ops []UpdateOp) (live []fivetuple.Rule) {
	t.Helper()
	live = rs.Rules()
	find := func(r fivetuple.Rule) int {
		for i, lr := range live {
			if lr.Priority == r.Priority &&
				lr.SrcPrefix.Canonical() == r.SrcPrefix.Canonical() &&
				lr.DstPrefix.Canonical() == r.DstPrefix.Canonical() &&
				lr.SrcPort == r.SrcPort && lr.DstPort == r.DstPort && lr.Protocol == r.Protocol {
				return i
			}
		}
		return -1
	}
	for i, op := range ops {
		if op.Delete {
			idx := find(op.Rule)
			if idx < 0 {
				t.Fatalf("op %d deletes a rule that is not live: %s priority %d", i, op.Rule, op.Rule.Priority)
			}
			live = append(live[:idx], live[idx+1:]...)
		} else {
			live = append(live, op.Rule)
		}
	}
	return live
}

func TestGenerateUpdateTraceIsApplicableAndDeterministic(t *testing.T) {
	rs := Generate(Config{Class: ACL, Rules: 200, Seed: 7})
	cfg := UpdateTraceConfig{Ops: 500, Seed: 11, InsertFraction: 0.5, Locality: 0.3}
	ops := GenerateUpdateTrace(rs, cfg)
	if len(ops) != 500 {
		t.Fatalf("generated %d ops, want 500", len(ops))
	}
	replayTrace(t, rs, ops)

	again := GenerateUpdateTrace(rs, cfg)
	for i := range ops {
		if ops[i].Delete != again[i].Delete || ops[i].Rule != again[i].Rule {
			t.Fatalf("op %d differs between identical generations", i)
		}
	}

	inserts := 0
	for _, op := range ops {
		if !op.Delete {
			inserts++
		}
	}
	if inserts < 150 || inserts > 350 {
		t.Errorf("insert mix = %d/500, want roughly balanced for InsertFraction 0.5", inserts)
	}
}

func TestGenerateUpdateTraceMixKnob(t *testing.T) {
	rs := Generate(Config{Class: FW, Rules: 100, Seed: 3})
	allIn := GenerateUpdateTrace(rs, UpdateTraceConfig{Ops: 100, Seed: 5, InsertFraction: 2})
	for i, op := range allIn {
		if op.Delete {
			t.Fatalf("op %d is a delete under InsertFraction > 1 (all-inserts)", i)
		}
	}
	allDel := GenerateUpdateTrace(rs, UpdateTraceConfig{Ops: 50, Seed: 5, InsertFraction: -1})
	deletes := 0
	for _, op := range allDel {
		if op.Delete {
			deletes++
		}
	}
	// A pure-delete storm deletes until the live set is exhausted, then
	// degrades to inserts; with 100 live rules and 50 ops it never runs out.
	if deletes != 50 {
		t.Errorf("pure-delete storm produced %d deletes of 50 ops", deletes)
	}
	replayTrace(t, rs, allDel)

	nan := GenerateUpdateTrace(rs, UpdateTraceConfig{Ops: 20, Seed: 5, InsertFraction: math.NaN(), Locality: math.NaN()})
	replayTrace(t, rs, nan)
	if GenerateUpdateTrace(rs, UpdateTraceConfig{Ops: 0, Seed: 1}) != nil {
		t.Error("zero ops should generate nil")
	}
}

func TestGenerateUpdateTraceLocalityConcentratesChurn(t *testing.T) {
	rs := Generate(Config{Class: ACL, Rules: 300, Seed: 13})
	distinct := func(locality float64) int {
		ops := GenerateUpdateTrace(rs, UpdateTraceConfig{Ops: 400, Seed: 17, InsertFraction: 0.5, Locality: locality})
		replayTrace(t, rs, ops)
		seen := map[int]struct{}{}
		for _, op := range ops {
			if op.Delete {
				seen[op.Rule.Priority] = struct{}{}
			}
		}
		return len(seen)
	}
	uniform, hot := distinct(0), distinct(0.95)
	if hot >= uniform {
		t.Errorf("high locality touched %d distinct rules, uniform %d; want concentration", hot, uniform)
	}
}

func TestGenerateUpdateTraceReinsertsDeletedRules(t *testing.T) {
	rs := Generate(Config{Class: IPC, Rules: 150, Seed: 19})
	ops := GenerateUpdateTrace(rs, UpdateTraceConfig{Ops: 600, Seed: 23, InsertFraction: 0.5, Locality: 0.5})
	replayTrace(t, rs, ops)
	deleted := map[int]bool{}
	reinserts := 0
	for _, op := range ops {
		if op.Delete {
			deleted[op.Rule.Priority] = true
		} else if deleted[op.Rule.Priority] {
			reinserts++
		}
	}
	if reinserts == 0 {
		t.Error("no delete-then-reinsert cycles in 600 ops; the churn shape is wrong")
	}
}
