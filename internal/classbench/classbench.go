// Package classbench generates synthetic filter sets and packet-header
// traces in the style of the ClassBench benchmark suite.
//
// The paper evaluates its architecture on the publicly distributed filter
// sets from www.arl.wustl.edu (Access Control Lists, Firewalls and IP
// Chains at 1K, 5K and 10K rules, Table III) and reports the number of
// unique rule-field values of the acl1 sets (Table II). Those files are no
// longer hosted, so this package provides seeded, deterministic generators
// calibrated to reproduce the structural statistics the paper reports:
//
//   - rule counts per class and size (Table III),
//   - unique field-value counts per dimension (Table II for acl1),
//   - prefix-length, port-range and protocol distributions typical of each
//     filter class.
//
// Real ClassBench files can still be used instead: fivetuple.ParseClassBench
// reads the standard text format, and every consumer in this repository
// accepts a *fivetuple.RuleSet regardless of its origin.
package classbench

import (
	"fmt"
	"math/rand"

	"sdnpc/internal/fivetuple"
)

// Class identifies the filter-set family, mirroring the three families used
// by the paper (Table III).
type Class int

// Supported filter-set families.
const (
	// ACL models Access Control Lists: mostly exact destination ports,
	// wildcard source ports, and a large number of distinct source prefixes.
	ACL Class = iota + 1
	// FW models Firewall rule sets: arbitrary port ranges on both ports and
	// many wildcarded prefixes.
	FW
	// IPC models IP Chains rule sets: a mixture of the two.
	IPC
)

// String names the class with the identifier used in the paper.
func (c Class) String() string {
	switch c {
	case ACL:
		return "acl1"
	case FW:
		return "fw1"
	case IPC:
		return "ipc1"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Size selects one of the three filter-set sizes evaluated in the paper.
type Size int

// Filter-set sizes from Table III.
const (
	Size1K Size = iota + 1
	Size5K
	Size10K
)

// String names the size.
func (s Size) String() string {
	switch s {
	case Size1K:
		return "1k"
	case Size5K:
		return "5k"
	case Size10K:
		return "10k"
	default:
		return fmt.Sprintf("Size(%d)", int(s))
	}
}

// RuleCount returns the exact rule count the paper reports for the given
// class and size (Table III).
func RuleCount(c Class, s Size) int {
	counts := map[Class]map[Size]int{
		ACL: {Size1K: 916, Size5K: 4415, Size10K: 9603},
		FW:  {Size1K: 791, Size5K: 4653, Size10K: 9311},
		IPC: {Size1K: 938, Size5K: 4460, Size10K: 9037},
	}
	if m, ok := counts[c]; ok {
		if n, ok := m[s]; ok {
			return n
		}
	}
	return 0
}

// UniqueFieldTargets returns the unique-field counts the paper reports in
// Table II for the acl1 filter sets. Only ACL sets have published targets;
// for FW and IPC the generator uses class-typical ratios and ok is false.
func UniqueFieldTargets(c Class, s Size) (targets map[fivetuple.Field]int, ok bool) {
	if c != ACL {
		return nil, false
	}
	table := map[Size]map[fivetuple.Field]int{
		Size1K: {
			fivetuple.FieldSrcIP:    103,
			fivetuple.FieldDstIP:    297,
			fivetuple.FieldSrcPort:  1,
			fivetuple.FieldDstPort:  99,
			fivetuple.FieldProtocol: 3,
		},
		Size5K: {
			fivetuple.FieldSrcIP:    805,
			fivetuple.FieldDstIP:    640,
			fivetuple.FieldSrcPort:  1,
			fivetuple.FieldDstPort:  108,
			fivetuple.FieldProtocol: 3,
		},
		Size10K: {
			fivetuple.FieldSrcIP:    4784,
			fivetuple.FieldDstIP:    733,
			fivetuple.FieldSrcPort:  1,
			fivetuple.FieldDstPort:  108,
			fivetuple.FieldProtocol: 3,
		},
	}
	t, ok := table[s]
	return t, ok
}

// Config parameterises the generator. The zero value is not useful; build
// configs with StandardConfig or fill every field explicitly.
type Config struct {
	// Class selects the filter-set family.
	Class Class
	// Rules is the number of rules to generate.
	Rules int
	// Seed makes generation deterministic. Two calls with equal configs
	// produce identical rule sets.
	Seed int64

	// UniqueSrcIP, UniqueDstIP, UniqueSrcPort, UniqueDstPort and
	// UniqueProtocol bound the number of distinct field values. Values of 0
	// fall back to class-typical ratios.
	UniqueSrcIP    int
	UniqueDstIP    int
	UniqueSrcPort  int
	UniqueDstPort  int
	UniqueProtocol int

	// Generalized-dimension knobs. Each is the fraction of body rules the
	// corresponding extension applies to; 0 (the default) generates classic
	// IPv4 five-tuple sets. Extended rules require a packet engine declaring
	// the dimension (see engine.Definition.Dims) — the field tier refuses
	// them.
	//
	// IPv6Fraction converts rules to IPv6: the v4 prefixes are cleared (a rule
	// constrains one family) and documentation-prefix (2001:db8::/32) source
	// and destination v6 prefixes are drawn instead.
	IPv6Fraction float64
	// VLANFraction adds an exact 802.1Q tag match.
	VLANFraction float64
	// TCPFlagFraction adds a TCP-flag match (SYN-only or established-style).
	TCPFlagFraction float64
	// NonTerminatingFraction marks rules non-terminating: a lookup that
	// matches one collects its action and keeps evaluating (multi-action
	// semantics). The trailing default rule always terminates.
	NonTerminatingFraction float64
}

// StandardConfig returns the configuration reproducing the paper's filter
// set of the given class and size, including the Table II unique-field
// calibration for ACL sets.
func StandardConfig(c Class, s Size) Config {
	cfg := Config{
		Class: c,
		Rules: RuleCount(c, s),
		Seed:  int64(c)*1000 + int64(s),
	}
	if targets, ok := UniqueFieldTargets(c, s); ok {
		cfg.UniqueSrcIP = targets[fivetuple.FieldSrcIP]
		cfg.UniqueDstIP = targets[fivetuple.FieldDstIP]
		cfg.UniqueSrcPort = targets[fivetuple.FieldSrcPort]
		cfg.UniqueDstPort = targets[fivetuple.FieldDstPort]
		cfg.UniqueProtocol = targets[fivetuple.FieldProtocol]
	}
	return cfg
}

// Name returns the conventional name of the generated set, e.g. "acl1-10k".
func (cfg Config) Name() string {
	return fmt.Sprintf("%s-%d", cfg.Class, cfg.Rules)
}

func (cfg Config) withDefaults() Config {
	out := cfg
	if out.Rules <= 0 {
		out.Rules = 1000
	}
	defaultUnique := func(ratioNum, ratioDen, minimum, maximum int) int {
		n := out.Rules * ratioNum / ratioDen
		if n < minimum {
			n = minimum
		}
		if maximum > 0 && n > maximum {
			n = maximum
		}
		if n > out.Rules {
			n = out.Rules
		}
		return n
	}
	switch out.Class {
	case FW:
		if out.UniqueSrcIP == 0 {
			out.UniqueSrcIP = defaultUnique(1, 5, 8, 0)
		}
		if out.UniqueDstIP == 0 {
			out.UniqueDstIP = defaultUnique(1, 6, 8, 0)
		}
		if out.UniqueSrcPort == 0 {
			out.UniqueSrcPort = defaultUnique(1, 50, 6, 96)
		}
		if out.UniqueDstPort == 0 {
			out.UniqueDstPort = defaultUnique(1, 40, 8, 120)
		}
		if out.UniqueProtocol == 0 {
			out.UniqueProtocol = 4
		}
	case IPC:
		if out.UniqueSrcIP == 0 {
			out.UniqueSrcIP = defaultUnique(1, 3, 8, 0)
		}
		if out.UniqueDstIP == 0 {
			out.UniqueDstIP = defaultUnique(1, 4, 8, 0)
		}
		if out.UniqueSrcPort == 0 {
			out.UniqueSrcPort = defaultUnique(1, 80, 2, 64)
		}
		if out.UniqueDstPort == 0 {
			out.UniqueDstPort = defaultUnique(1, 50, 8, 110)
		}
		if out.UniqueProtocol == 0 {
			out.UniqueProtocol = 3
		}
	default: // ACL and anything unspecified
		if out.Class == 0 {
			out.Class = ACL
		}
		if out.UniqueSrcIP == 0 {
			out.UniqueSrcIP = defaultUnique(1, 2, 8, 0)
		}
		if out.UniqueDstIP == 0 {
			out.UniqueDstIP = defaultUnique(1, 13, 8, 733)
		}
		if out.UniqueSrcPort == 0 {
			out.UniqueSrcPort = 1
		}
		if out.UniqueDstPort == 0 {
			out.UniqueDstPort = defaultUnique(1, 9, 4, 108)
		}
		if out.UniqueProtocol == 0 {
			out.UniqueProtocol = 3
		}
	}
	return out
}

// Generate produces a deterministic synthetic filter set for the given
// configuration. The result always ends with a lowest-priority wildcard
// (default) rule, matching the convention of the published filter sets.
func Generate(cfg Config) *fivetuple.RuleSet {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := &generator{cfg: cfg, rng: rng}
	return gen.run()
}

type generator struct {
	cfg Config
	rng *rand.Rand
}

func (g *generator) run() *fivetuple.RuleSet {
	n := g.cfg.Rules
	// One slot is reserved for the trailing default rule.
	body := n - 1
	if body < 0 {
		body = 0
	}

	// The trailing default rule contributes the wildcard prefix in both IP
	// dimensions, so the body pools are one smaller and exclude the wildcard;
	// this keeps the unique-field counts exactly on the Table II targets.
	srcPrefixes := g.prefixPool(g.cfg.UniqueSrcIP-boolToInt(body > 0), g.srcPrefixLen)
	dstPrefixes := g.prefixPool(g.cfg.UniqueDstIP-boolToInt(body > 0), g.dstPrefixLen)
	srcPorts := g.portPool(g.cfg.UniqueSrcPort, g.cfg.Class != ACL)
	dstPorts := g.portPool(g.cfg.UniqueDstPort, true)
	protos := g.protocolPool(g.cfg.UniqueProtocol)

	srcIdx := g.assignment(body, len(srcPrefixes))
	dstIdx := g.assignment(body, len(dstPrefixes))
	spIdx := g.assignment(body, len(srcPorts))
	dpIdx := g.assignment(body, len(dstPorts))
	prIdx := g.assignment(body, len(protos))

	rules := make([]fivetuple.Rule, 0, n)
	for i := 0; i < body; i++ {
		r := fivetuple.Rule{
			SrcPrefix: srcPrefixes[srcIdx[i]],
			DstPrefix: dstPrefixes[dstIdx[i]],
			SrcPort:   srcPorts[spIdx[i]],
			DstPort:   dstPorts[dpIdx[i]],
			Protocol:  protos[prIdx[i]],
			Action:    g.action(),
		}
		rules = append(rules, g.extend(r))
	}
	if n > 0 {
		rules = append(rules, fivetuple.Wildcard(len(rules), fivetuple.ActionDrop))
	}
	return fivetuple.NewRuleSet(g.cfg.Name(), rules)
}

// extend applies the generalized-dimension knobs to one body rule.
func (g *generator) extend(r fivetuple.Rule) fivetuple.Rule {
	cfg := g.cfg
	if cfg.IPv6Fraction > 0 && g.rng.Float64() < cfg.IPv6Fraction {
		r.Src6 = g.prefix6()
		r.Dst6 = g.prefix6()
		// A rule constrains one family: the v4 prefixes must be wildcard for
		// the v6 matches to be reachable (fivetuple.Rule.Matches).
		r.SrcPrefix, r.DstPrefix = fivetuple.Prefix{}, fivetuple.Prefix{}
	}
	if cfg.VLANFraction > 0 && g.rng.Float64() < cfg.VLANFraction {
		r.VLAN = fivetuple.ExactVLAN(uint16(1 + g.rng.Intn(int(fivetuple.MaxVLAN))))
	}
	if cfg.TCPFlagFraction > 0 && g.rng.Float64() < cfg.TCPFlagFraction {
		// The two flag shapes that dominate real sets: SYN-only (new
		// connections) and established-style (ACK set).
		if g.rng.Intn(2) == 0 {
			r.TCPFlags = fivetuple.TCPFlagMatch{Value: fivetuple.TCPSyn, Mask: fivetuple.TCPSyn | fivetuple.TCPAck}
		} else {
			r.TCPFlags = fivetuple.TCPFlagMatch{Value: fivetuple.TCPAck, Mask: fivetuple.TCPAck}
		}
	}
	if cfg.NonTerminatingFraction > 0 && g.rng.Float64() < cfg.NonTerminatingFraction {
		r.NonTerminating = true
	}
	return r
}

// prefix6 draws an IPv6 prefix inside the 2001:db8::/32 documentation block,
// with the subnet/host length mix of real v6 deployments.
func (g *generator) prefix6() fivetuple.Prefix6 {
	lens := []uint8{32, 48, 56, 64, 96, 128}
	return fivetuple.Prefix6{
		Addr: fivetuple.IPv6{
			Hi: 0x20010db8_00000000 | g.rng.Uint64()&0x00000000_ffffffff,
			Lo: g.rng.Uint64(),
		},
		Len: lens[g.rng.Intn(len(lens))],
	}.Canonical()
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// assignment builds an index list of length n over a pool of the given size
// in which every pool element appears at least once (so unique-value counts
// are exact) and the remaining slots follow a skewed popularity distribution,
// mimicking the heavy reuse of popular field values in real filter sets.
func (g *generator) assignment(n, pool int) []int {
	if pool <= 0 {
		pool = 1
	}
	idx := make([]int, 0, n)
	for i := 0; i < pool && i < n; i++ {
		idx = append(idx, i)
	}
	for len(idx) < n {
		idx = append(idx, g.skewedIndex(pool))
	}
	g.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	return idx
}

// skewedIndex draws an index in [0, pool) with an approximately Zipfian
// popularity profile: low indices are drawn far more often than high ones.
func (g *generator) skewedIndex(pool int) int {
	// Square of a uniform variate concentrates mass near zero without the
	// numerical work of a true Zipf sampler; adequate for workload shaping.
	u := g.rng.Float64()
	return int(u * u * float64(pool))
}

func (g *generator) prefixPool(size int, lengthFn func() uint8) []fivetuple.Prefix {
	if size < 1 {
		size = 1
	}
	pool := make([]fivetuple.Prefix, 0, size)
	seen := make(map[string]struct{}, size)
	for len(pool) < size {
		p := fivetuple.Prefix{
			Addr: fivetuple.IPv4(g.rng.Uint32()),
			Len:  lengthFn(),
		}.Canonical()
		if p.IsWildcard() {
			// The wildcard prefix is contributed by the default rule only.
			continue
		}
		key := p.String()
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		pool = append(pool, p)
	}
	return pool
}

// srcPrefixLen draws a source-prefix length. ACL sets concentrate on long
// prefixes (hosts and small subnets); firewalls use shorter ones.
func (g *generator) srcPrefixLen() uint8 {
	r := g.rng.Float64()
	switch g.cfg.Class {
	case FW:
		switch {
		case r < 0.30:
			return 0
		case r < 0.55:
			return uint8(8 + g.rng.Intn(9)) // 8..16
		case r < 0.85:
			return uint8(17 + g.rng.Intn(8)) // 17..24
		default:
			return 32
		}
	case IPC:
		switch {
		case r < 0.15:
			return 0
		case r < 0.45:
			return uint8(16 + g.rng.Intn(9)) // 16..24
		case r < 0.80:
			return uint8(25 + g.rng.Intn(7)) // 25..31
		default:
			return 32
		}
	default: // ACL
		switch {
		case r < 0.05:
			return 0
		case r < 0.20:
			return uint8(16 + g.rng.Intn(9)) // 16..24
		case r < 0.45:
			return uint8(25 + g.rng.Intn(7)) // 25..31
		default:
			return 32
		}
	}
}

// dstPrefixLen draws a destination-prefix length; destinations are typically
// subnets rather than hosts.
func (g *generator) dstPrefixLen() uint8 {
	r := g.rng.Float64()
	switch g.cfg.Class {
	case FW:
		switch {
		case r < 0.25:
			return 0
		case r < 0.65:
			return uint8(8 + g.rng.Intn(17)) // 8..24
		default:
			return 32
		}
	default:
		switch {
		case r < 0.08:
			return 0
		case r < 0.60:
			return uint8(16 + g.rng.Intn(9)) // 16..24
		case r < 0.85:
			return uint8(25 + g.rng.Intn(7)) // 25..31
		default:
			return 32
		}
	}
}

// wellKnownPorts are the service ports that dominate real filter sets.
var wellKnownPorts = []uint16{
	20, 21, 22, 23, 25, 53, 67, 68, 69, 80, 110, 119, 123, 135, 137, 138, 139,
	143, 161, 162, 179, 389, 443, 445, 465, 500, 514, 515, 520, 554, 587, 631,
	636, 993, 995, 1080, 1194, 1433, 1434, 1521, 1701, 1723, 1812, 1813, 2049,
	2082, 2083, 3128, 3306, 3389, 4500, 5060, 5061, 5432, 5900, 6000, 6667,
	8000, 8080, 8443, 8888, 9090, 9100, 10000,
}

// portPool builds a pool of distinct port matches. The first entry is always
// the wildcard (matching the observation that the wildcard dominates source
// ports); subsequent entries are well-known exact ports followed by ranges
// when allowRanges is set.
func (g *generator) portPool(size int, allowRanges bool) []fivetuple.PortRange {
	if size < 1 {
		size = 1
	}
	pool := make([]fivetuple.PortRange, 0, size)
	seen := make(map[fivetuple.PortRange]struct{}, size)
	add := func(r fivetuple.PortRange) {
		if _, dup := seen[r]; dup || len(pool) >= size {
			return
		}
		seen[r] = struct{}{}
		pool = append(pool, r)
	}
	add(fivetuple.WildcardPortRange())
	// Common administrative ranges seen in practice come before the long tail
	// of exact ports so that even small pools contain range matches.
	if allowRanges {
		add(fivetuple.PortRange{Lo: 0, Hi: 1023})
		add(fivetuple.PortRange{Lo: 1024, Hi: 65535})
		add(fivetuple.PortRange{Lo: 1024, Hi: 5000})
		add(fivetuple.PortRange{Lo: 49152, Hi: 65535})
		add(fivetuple.PortRange{Lo: 6000, Hi: 6063})
		add(fivetuple.PortRange{Lo: 137, Hi: 139})
	}
	for _, p := range wellKnownPorts {
		add(fivetuple.ExactPort(p))
	}
	for len(pool) < size {
		if allowRanges && g.rng.Float64() < 0.3 {
			lo := uint16(g.rng.Intn(60000))
			width := uint16(1 + g.rng.Intn(2000))
			hi := lo
			if int(lo)+int(width) <= int(fivetuple.MaxPort) {
				hi = lo + width
			}
			add(fivetuple.PortRange{Lo: lo, Hi: hi})
		} else {
			add(fivetuple.ExactPort(uint16(g.rng.Intn(65536))))
		}
	}
	return pool
}

// protocolPool builds a pool of distinct protocol matches; the paper's sets
// contain three (TCP, UDP and the wildcard) with a few extra protocols in
// firewall sets.
func (g *generator) protocolPool(size int) []fivetuple.ProtocolMatch {
	if size < 1 {
		size = 1
	}
	candidates := []fivetuple.ProtocolMatch{
		fivetuple.ExactProtocol(fivetuple.ProtoTCP),
		fivetuple.ExactProtocol(fivetuple.ProtoUDP),
		fivetuple.WildcardProtocol(),
		fivetuple.ExactProtocol(fivetuple.ProtoICMP),
		fivetuple.ExactProtocol(fivetuple.ProtoGRE),
		fivetuple.ExactProtocol(fivetuple.ProtoESP),
	}
	if size > len(candidates) {
		size = len(candidates)
	}
	pool := make([]fivetuple.ProtocolMatch, size)
	copy(pool, candidates[:size])
	return pool
}

func (g *generator) action() fivetuple.Action {
	if g.rng.Float64() < 0.15 {
		return fivetuple.ActionDrop
	}
	return fivetuple.ActionForward
}
