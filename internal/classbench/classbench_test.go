package classbench

import (
	"testing"

	"sdnpc/internal/fivetuple"
)

func TestRuleCountMatchesTableIII(t *testing.T) {
	tests := []struct {
		class Class
		size  Size
		want  int
	}{
		{ACL, Size1K, 916},
		{ACL, Size5K, 4415},
		{ACL, Size10K, 9603},
		{FW, Size1K, 791},
		{FW, Size5K, 4653},
		{FW, Size10K, 9311},
		{IPC, Size1K, 938},
		{IPC, Size5K, 4460},
		{IPC, Size10K, 9037},
	}
	for _, tt := range tests {
		t.Run(tt.class.String()+"-"+tt.size.String(), func(t *testing.T) {
			if got := RuleCount(tt.class, tt.size); got != tt.want {
				t.Errorf("RuleCount(%v, %v) = %d, want %d", tt.class, tt.size, got, tt.want)
			}
			rs := Generate(StandardConfig(tt.class, tt.size))
			if rs.Len() != tt.want {
				t.Errorf("generated %d rules, want %d", rs.Len(), tt.want)
			}
		})
	}
	if got := RuleCount(Class(0), Size1K); got != 0 {
		t.Errorf("RuleCount of unknown class = %d, want 0", got)
	}
}

func TestGenerateACLUniqueFieldsMatchTableII(t *testing.T) {
	for _, size := range []Size{Size1K, Size5K, Size10K} {
		t.Run(size.String(), func(t *testing.T) {
			targets, ok := UniqueFieldTargets(ACL, size)
			if !ok {
				t.Fatal("no targets for ACL")
			}
			rs := Generate(StandardConfig(ACL, size))
			for field, want := range targets {
				if got := rs.UniqueFieldCount(field); got != want {
					t.Errorf("%s unique fields = %d, want %d", field, got, want)
				}
			}
		})
	}
}

func TestUniqueFieldTargetsOnlyForACL(t *testing.T) {
	if _, ok := UniqueFieldTargets(FW, Size1K); ok {
		t.Error("UniqueFieldTargets(FW) should report ok=false")
	}
	if _, ok := UniqueFieldTargets(IPC, Size10K); ok {
		t.Error("UniqueFieldTargets(IPC) should report ok=false")
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	cfg := StandardConfig(ACL, Size1K)
	a := Generate(cfg)
	b := Generate(cfg)
	if a.Len() != b.Len() {
		t.Fatalf("rule counts differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Rule(i).String() != b.Rule(i).String() {
			t.Fatalf("rule %d differs between identical configs:\n  %s\n  %s", i, a.Rule(i), b.Rule(i))
		}
	}
	// A different seed must produce a different set.
	cfg2 := cfg
	cfg2.Seed++
	c := Generate(cfg2)
	same := true
	for i := 0; i < a.Len() && i < c.Len(); i++ {
		if a.Rule(i).String() != c.Rule(i).String() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical rule sets")
	}
}

func TestGenerateEndsWithDefaultRule(t *testing.T) {
	for _, class := range []Class{ACL, FW, IPC} {
		rs := Generate(StandardConfig(class, Size1K))
		last := rs.Rule(rs.Len() - 1)
		if !last.SrcPrefix.IsWildcard() || !last.DstPrefix.IsWildcard() ||
			!last.SrcPort.IsWildcard() || !last.DstPort.IsWildcard() ||
			!last.Protocol.IsWildcard() {
			t.Errorf("%s: last rule is not a wildcard default: %s", class, last)
		}
	}
}

func TestGenerateEveryRuleIsReachableByTrace(t *testing.T) {
	// Every generated header derived from a rule must match at least one rule
	// (possibly a higher-priority one), and with MatchFraction 1 the default
	// rule alone should not absorb everything.
	rs := Generate(StandardConfig(ACL, Size1K))
	trace := GenerateTrace(rs, TraceConfig{Packets: 500, Seed: 7, MatchFraction: 1})
	nonDefault := 0
	for _, h := range trace {
		idx, ok := rs.Classify(h)
		if !ok {
			t.Fatalf("header %s does not match any rule, including the default", h)
		}
		if idx != rs.Len()-1 {
			nonDefault++
		}
	}
	if nonDefault == 0 {
		t.Error("no trace header matched a non-default rule")
	}
}

func TestGenerateTraceDeterministicAndSized(t *testing.T) {
	rs := Generate(StandardConfig(FW, Size1K))
	cfg := TraceConfig{Packets: 256, Seed: 42, MatchFraction: 0.8, Locality: 0.5}
	a := GenerateTrace(rs, cfg)
	b := GenerateTrace(rs, cfg)
	if len(a) != cfg.Packets || len(b) != cfg.Packets {
		t.Fatalf("trace lengths = %d, %d, want %d", len(a), len(b), cfg.Packets)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if got := GenerateTrace(rs, TraceConfig{Packets: 0}); got != nil {
		t.Errorf("zero-packet trace = %v, want nil", got)
	}
	if got := len(GenerateTrace(rs, TraceConfig{Packets: 10, MatchFraction: 2.5})); got != 10 {
		t.Errorf("clamped match fraction trace length = %d, want 10", got)
	}
}

func TestTraceHeaderInRuleRespectsRule(t *testing.T) {
	// With MatchFraction 1 and a single-rule set, every header must match it.
	rule := fivetuple.Rule{
		SrcPrefix: fivetuple.MustParsePrefix("10.0.0.0/8"),
		DstPrefix: fivetuple.MustParsePrefix("192.168.1.0/24"),
		SrcPort:   fivetuple.PortRange{Lo: 1000, Hi: 2000},
		DstPort:   fivetuple.ExactPort(443),
		Protocol:  fivetuple.ExactProtocol(fivetuple.ProtoTCP),
	}
	rs := fivetuple.NewRuleSet("one", []fivetuple.Rule{rule})
	trace := GenerateTrace(rs, TraceConfig{Packets: 200, Seed: 3, MatchFraction: 1})
	for _, h := range trace {
		if !rule.Matches(h) {
			t.Fatalf("generated header %s does not match its source rule %s", h, rule)
		}
	}
}

func TestClassAndSizeStrings(t *testing.T) {
	if ACL.String() != "acl1" || FW.String() != "fw1" || IPC.String() != "ipc1" {
		t.Errorf("class names = %q %q %q", ACL, FW, IPC)
	}
	if Size1K.String() != "1k" || Size5K.String() != "5k" || Size10K.String() != "10k" {
		t.Errorf("size names = %q %q %q", Size1K, Size5K, Size10K)
	}
	if Class(9).String() == "" || Size(9).String() == "" {
		t.Error("unknown class/size should still render")
	}
	cfg := StandardConfig(ACL, Size1K)
	if cfg.Name() != "acl1-916" {
		t.Errorf("Name() = %q, want acl1-916", cfg.Name())
	}
}

func TestConfigDefaultsFillEveryClass(t *testing.T) {
	for _, class := range []Class{ACL, FW, IPC} {
		cfg := Config{Class: class, Rules: 500, Seed: 1}
		rs := Generate(cfg)
		if rs.Len() != 500 {
			t.Errorf("%s: generated %d rules, want 500", class, rs.Len())
		}
		for _, f := range fivetuple.Fields() {
			if rs.UniqueFieldCount(f) == 0 {
				t.Errorf("%s: no unique values in dimension %s", class, f)
			}
		}
	}
	// Zero-value class defaults to ACL and a non-zero rule count.
	rs := Generate(Config{Seed: 2})
	if rs.Len() == 0 {
		t.Error("zero-value config generated an empty set")
	}
}

func TestFirewallSetsContainPortRanges(t *testing.T) {
	rs := Generate(StandardConfig(FW, Size1K))
	ranges := 0
	for _, r := range rs.Rules() {
		if !r.DstPort.IsExact() && !r.DstPort.IsWildcard() {
			ranges++
		}
	}
	if ranges == 0 {
		t.Error("firewall set contains no destination port ranges")
	}
}

func TestACLSourcePortIsWildcardOnly(t *testing.T) {
	// Table II: acl1 sets have exactly one unique source-port value (the
	// wildcard).
	rs := Generate(StandardConfig(ACL, Size10K))
	for i, r := range rs.Rules() {
		if !r.SrcPort.IsWildcard() {
			t.Fatalf("rule %d has non-wildcard source port %s", i, r.SrcPort)
		}
	}
}
