package classbench

import (
	"math/rand"
	"sort"

	"sdnpc/internal/fivetuple"
)

// UpdateOp is one rule mutation of a generated churn trace: an insertion of
// a new (or previously deleted) rule, or the deletion of a currently live
// one. The trace is applicable by construction — every delete references a
// rule that is live at that point when the ops are applied in order starting
// from the base filter set.
type UpdateOp struct {
	Delete bool
	Rule   fivetuple.Rule
}

// UpdateTraceConfig parameterises churn-trace generation — the controller-
// driven flow-mod storms the incremental update plane is built for.
type UpdateTraceConfig struct {
	// Ops is the number of mutations to generate.
	Ops int
	// Seed makes generation deterministic.
	Seed int64
	// InsertFraction is the insert/delete mix: the probability that an op is
	// an insertion. 0 selects the balanced default of 0.5 (a steady-state
	// churn that neither grows nor shrinks the set on average); negative
	// values select a pure-delete storm; values above 1 are clamped to
	// all-inserts. When the live set is empty a delete op degrades to an
	// insert.
	InsertFraction float64
	// Locality, in [0,1), concentrates the churn on a hot subset of the
	// rules: 0 spreads deletes uniformly over the live set, values towards 1
	// bias them onto the same high-priority rules over and over — the
	// delete-then-reinsert pattern of flapping SDN flows. Reinsertions of
	// previously deleted rules follow the same bias. Out-of-range values
	// (including NaN) are clamped.
	Locality float64
	// ReinsertFraction is the probability that an insertion re-installs a
	// previously deleted rule verbatim instead of drawing a fresh one; 0
	// selects the default of 0.5. Reinserted rules keep their original
	// priority, so churn oscillates rather than monotonically growing the
	// priority space.
	ReinsertFraction float64
}

func (cfg UpdateTraceConfig) normalized() UpdateTraceConfig {
	if cfg.InsertFraction == 0 {
		cfg.InsertFraction = 0.5
	}
	if !(cfg.InsertFraction >= 0) { // negative or NaN
		cfg.InsertFraction = 0
	}
	if cfg.InsertFraction > 1 {
		cfg.InsertFraction = 1
	}
	if !(cfg.Locality >= 0) {
		cfg.Locality = 0
	}
	if cfg.Locality >= 1 {
		cfg.Locality = 0.999
	}
	if cfg.ReinsertFraction == 0 {
		cfg.ReinsertFraction = 0.5
	}
	if !(cfg.ReinsertFraction >= 0) {
		cfg.ReinsertFraction = 0
	}
	if cfg.ReinsertFraction > 1 {
		cfg.ReinsertFraction = 1
	}
	return cfg
}

// GenerateUpdateTrace derives a deterministic mutation sequence from a base
// filter set. Applying the ops in order to a classifier holding the base set
// is always valid: deletes name live rules, fresh inserts carry priorities
// beyond every live one, and reinserts restore previously deleted rules
// verbatim. Fresh rules are drawn by mutating the match fields of existing
// rules, so the churn stays inside the workload's structural distribution
// instead of injecting uniform noise.
func GenerateUpdateTrace(rs *fivetuple.RuleSet, cfg UpdateTraceConfig) []UpdateOp {
	if cfg.Ops <= 0 {
		return nil
	}
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed))
	live := rs.Rules()
	var deleted []fivetuple.Rule
	nextPriority := 0
	for _, r := range live {
		if r.Priority >= nextPriority {
			nextPriority = r.Priority + 1
		}
	}

	ops := make([]UpdateOp, 0, cfg.Ops)
	for len(ops) < cfg.Ops {
		if rng.Float64() < cfg.InsertFraction || len(live) == 0 {
			var r fivetuple.Rule
			if len(deleted) > 0 && rng.Float64() < cfg.ReinsertFraction {
				i := pickRule(rng, len(deleted), cfg.Locality)
				r = deleted[i]
				deleted = append(deleted[:i], deleted[i+1:]...)
			} else {
				r = freshRule(rng, rs, nextPriority)
				nextPriority++
			}
			// Keep live in priority order so the locality bias below keeps
			// aiming at the same high-priority rules: a reinserted rule
			// returns to the hot front instead of hiding at the tail.
			pos := sort.Search(len(live), func(i int) bool { return live[i].Priority > r.Priority })
			live = append(live, fivetuple.Rule{})
			copy(live[pos+1:], live[pos:])
			live[pos] = r
			ops = append(ops, UpdateOp{Rule: r})
		} else {
			i := pickRule(rng, len(live), cfg.Locality)
			r := live[i]
			live = append(live[:i], live[i+1:]...)
			deleted = append(deleted, r)
			ops = append(ops, UpdateOp{Delete: true, Rule: r})
		}
	}
	return ops
}

// freshRule draws a never-before-seen rule shaped like the base set: an
// existing rule's match fields under a fresh priority, with a new source
// prefix. Only the IP fields are perturbed — their label space is the
// architecture's widest (13 bits per segment) — so a long churn run coins
// new IP labels without exhausting the narrow port and protocol label
// budgets the way random fresh ports would.
func freshRule(rng *rand.Rand, rs *fivetuple.RuleSet, priority int) fivetuple.Rule {
	var r fivetuple.Rule
	if rs.Len() > 0 {
		r = rs.Rule(rng.Intn(rs.Len()))
	} else {
		r = fivetuple.Wildcard(0, fivetuple.ActionForward)
	}
	r.Priority = priority
	r.ActionArg = uint32(priority)
	r.SrcPrefix = fivetuple.Prefix{
		Addr: fivetuple.IPv4(rng.Uint32()),
		Len:  16 + uint8(rng.Intn(17)),
	}.Canonical()
	return r
}
