package classbench

import (
	"math"
	"math/rand"

	"sdnpc/internal/fivetuple"
)

// TraceConfig parameterises packet-header trace generation.
type TraceConfig struct {
	// Packets is the number of headers to generate.
	Packets int
	// Seed makes generation deterministic.
	Seed int64
	// MatchFraction is the fraction of headers engineered to match a
	// non-default rule of the filter set (the remainder are uniformly
	// random and usually fall through to the default rule). 1.0 means every
	// header is derived from some rule, as in the ClassBench trace
	// generator; lower values add background noise traffic. Values outside
	// [0,1] (including NaN) are clamped.
	MatchFraction float64
	// Locality, in [0,1), biases rule selection towards high-priority rules
	// to model flow locality. 0 selects rules uniformly; out-of-range values
	// (including NaN) are clamped.
	Locality float64

	// ZipfSkew, when > 1, switches the generator into flow-replay mode: a
	// population of Flows distinct five-tuples is drawn first (each with the
	// MatchFraction/Locality logic above) and the trace replays them with
	// Zipf(s = ZipfSkew) rank popularity — the rank-1 flow dominates, the
	// tail is long. This models the repeated-five-tuple traffic a microflow
	// cache exploits; ZipfSkew <= 1 keeps the classic per-packet mode.
	ZipfSkew float64
	// Flows is the flow-population size in Zipf mode; <= 0 selects
	// min(Packets, 4096).
	Flows int
}

// maxZipfSkew bounds the Zipf exponent. Above this the rank-1 flow already
// carries essentially the whole trace, and rand.NewZipf's internal state
// degenerates to NaN at +Inf — where Uint64 would spin forever.
const maxZipfSkew = 64

// normalized clamps the free-form float fields into their documented domains
// (NaN compares false against everything, so the conditions are written to
// catch it).
func (cfg TraceConfig) normalized() TraceConfig {
	if !(cfg.MatchFraction >= 0) {
		cfg.MatchFraction = 0
	}
	if cfg.MatchFraction > 1 {
		cfg.MatchFraction = 1
	}
	if !(cfg.Locality >= 0) {
		cfg.Locality = 0
	}
	if cfg.Locality >= 1 {
		cfg.Locality = math.Nextafter(1, 0)
	}
	if math.IsNaN(cfg.ZipfSkew) {
		cfg.ZipfSkew = 0
	}
	if cfg.ZipfSkew > maxZipfSkew {
		cfg.ZipfSkew = maxZipfSkew
	}
	return cfg
}

// GenerateTrace derives a header trace from a filter set. Headers engineered
// to match a rule are drawn uniformly inside that rule's hyper-rectangle so
// they may also match other (possibly higher-priority) rules — exactly the
// behaviour of the ClassBench trace generator. With ZipfSkew > 1 the trace
// replays a fixed flow population with Zipf-ranked popularity instead of
// drawing every packet independently.
func GenerateTrace(rs *fivetuple.RuleSet, cfg TraceConfig) []fivetuple.Header {
	if cfg.Packets <= 0 {
		return nil
	}
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.ZipfSkew > 1 {
		return generateZipfTrace(rs, cfg, rng)
	}
	headers := make([]fivetuple.Header, 0, cfg.Packets)
	for i := 0; i < cfg.Packets; i++ {
		headers = append(headers, drawHeader(rng, rs, cfg))
	}
	return headers
}

// generateZipfTrace draws the flow population and replays it with Zipf rank
// popularity. The population itself is drawn with the per-packet logic, so
// match fraction and locality shape which flows exist; the Zipf law shapes
// how often each recurs.
func generateZipfTrace(rs *fivetuple.RuleSet, cfg TraceConfig, rng *rand.Rand) []fivetuple.Header {
	flows := cfg.Flows
	if flows <= 0 {
		flows = 4096
	}
	if flows > cfg.Packets {
		flows = cfg.Packets
	}
	population := make([]fivetuple.Header, flows)
	for i := range population {
		population[i] = drawHeader(rng, rs, cfg)
	}
	headers := make([]fivetuple.Header, 0, cfg.Packets)
	if flows < 2 {
		// A single-flow population needs no rank distribution — and must not
		// reach rand.NewZipf, whose imax parameter would be 0 (flows-1).
		// Zipf's rejection sampler is only specified for imax >= 1; feeding it
		// a degenerate domain leans on undocumented behaviour of its internal
		// state, so the one-flow trace is replayed directly instead.
		for i := 0; i < cfg.Packets; i++ {
			headers = append(headers, population[0])
		}
		return headers
	}
	z := rand.NewZipf(rng, cfg.ZipfSkew, 1, uint64(flows-1))
	for i := 0; i < cfg.Packets; i++ {
		headers = append(headers, population[z.Uint64()])
	}
	return headers
}

// drawHeader draws one trace header: engineered to match some rule with
// probability MatchFraction, uniformly random otherwise.
func drawHeader(rng *rand.Rand, rs *fivetuple.RuleSet, cfg TraceConfig) fivetuple.Header {
	if rs.Len() > 0 && rng.Float64() < cfg.MatchFraction {
		ruleIdx := pickRule(rng, rs.Len(), cfg.Locality)
		return headerInRule(rng, rs.Rule(ruleIdx))
	}
	return randomHeader(rng)
}

// pickRule selects a rule index with optional bias towards low indices
// (high-priority rules).
func pickRule(rng *rand.Rand, n int, locality float64) int {
	if locality <= 0 {
		return rng.Intn(n)
	}
	u := rng.Float64()
	// Raising the uniform variate to a power > 1 concentrates selection near
	// zero; locality in (0,1) maps to exponents in (1, 5].
	exp := 1 + 4*locality
	biased := 1.0
	for i := 0; i < int(exp); i++ {
		biased *= u
	}
	idx := int(biased * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// headerInRule draws a header uniformly from the rule's match region. The
// draw is family-aware: a rule constraining the IPv6 prefixes yields an IPv6
// header (its v4 fields stay zero), anything else a classic IPv4 header.
// VLAN and TCP-flag dimensions fill in only when the rule constrains them —
// unconstrained traffic is untagged with empty flags, so classic rule sets
// generate byte-identical five-tuple traces.
func headerInRule(rng *rand.Rand, r fivetuple.Rule) fivetuple.Header {
	var h fivetuple.Header
	if !r.Src6.IsWildcard() || !r.Dst6.IsWildcard() {
		h.Family = fivetuple.FamilyIPv6
		h.SrcIP6 = addr6InPrefix(rng, r.Src6)
		h.DstIP6 = addr6InPrefix(rng, r.Dst6)
	} else {
		h.SrcIP = addrInPrefix(rng, r.SrcPrefix)
		h.DstIP = addrInPrefix(rng, r.DstPrefix)
	}
	h.SrcPort = portInRange(rng, r.SrcPort)
	h.DstPort = portInRange(rng, r.DstPort)
	h.Protocol = protocolInMatch(rng, r.Protocol)
	if !r.VLAN.IsWildcard() {
		h.VLAN = (r.VLAN.Value & r.VLAN.Mask) | (uint16(rng.Intn(int(fivetuple.MaxVLAN)+1)) &^ r.VLAN.Mask)
	}
	if !r.TCPFlags.IsWildcard() {
		h.TCPFlags = (r.TCPFlags.Value & r.TCPFlags.Mask) | (uint8(rng.Intn(256)) &^ r.TCPFlags.Mask)
	}
	return h
}

// addr6InPrefix draws an IPv6 address uniformly inside the prefix.
func addr6InPrefix(rng *rand.Rand, p fivetuple.Prefix6) fivetuple.IPv6 {
	c := p.Canonical()
	hiMask, loMask := c.Masks()
	return fivetuple.IPv6{
		Hi: c.Addr.Hi | rng.Uint64()&^hiMask,
		Lo: c.Addr.Lo | rng.Uint64()&^loMask,
	}
}

func addrInPrefix(rng *rand.Rand, p fivetuple.Prefix) fivetuple.IPv4 {
	hostBits := 32 - uint32(p.Len)
	random := fivetuple.IPv4(rng.Uint32())
	if hostBits == 32 {
		return random
	}
	hostMask := fivetuple.IPv4((uint64(1) << hostBits) - 1)
	return (p.Addr & p.Mask()) | (random & hostMask)
}

// portInRange draws a port uniformly from the range. Inverted ranges
// (Lo > Hi, constructible only by hand — the parsers reject them) are
// tolerated by swapping the bounds; the old unsigned subtraction underflowed
// the span and could return ports outside the range entirely.
func portInRange(rng *rand.Rand, r fivetuple.PortRange) uint16 {
	lo, hi := r.Lo, r.Hi
	if lo > hi {
		lo, hi = hi, lo
	}
	span := uint32(hi) - uint32(lo) + 1
	return lo + uint16(rng.Intn(int(span)))
}

func protocolInMatch(rng *rand.Rand, m fivetuple.ProtocolMatch) uint8 {
	if m.IsWildcard() {
		// Wildcard protocol rules are still overwhelmingly hit by TCP/UDP
		// traffic in practice.
		if rng.Intn(2) == 0 {
			return fivetuple.ProtoTCP
		}
		return fivetuple.ProtoUDP
	}
	// Respect the mask: free bits are randomised.
	free := ^m.Mask
	return (m.Value & m.Mask) | (uint8(rng.Intn(256)) & free)
}

func randomHeader(rng *rand.Rand) fivetuple.Header {
	protos := []uint8{fivetuple.ProtoTCP, fivetuple.ProtoUDP, fivetuple.ProtoICMP, fivetuple.ProtoGRE}
	return fivetuple.Header{
		SrcIP:    fivetuple.IPv4(rng.Uint32()),
		DstIP:    fivetuple.IPv4(rng.Uint32()),
		SrcPort:  uint16(rng.Intn(65536)),
		DstPort:  uint16(rng.Intn(65536)),
		Protocol: protos[rng.Intn(len(protos))],
	}
}
