package classbench

import (
	"math/rand"

	"sdnpc/internal/fivetuple"
)

// TraceConfig parameterises packet-header trace generation.
type TraceConfig struct {
	// Packets is the number of headers to generate.
	Packets int
	// Seed makes generation deterministic.
	Seed int64
	// MatchFraction is the fraction of headers engineered to match a
	// non-default rule of the filter set (the remainder are uniformly
	// random and usually fall through to the default rule). 1.0 means every
	// header is derived from some rule, as in the ClassBench trace
	// generator; lower values add background noise traffic.
	MatchFraction float64
	// Locality, in [0,1), biases rule selection towards high-priority rules
	// to model flow locality. 0 selects rules uniformly.
	Locality float64
}

// GenerateTrace derives a header trace from a filter set. Headers engineered
// to match a rule are drawn uniformly inside that rule's hyper-rectangle so
// they may also match other (possibly higher-priority) rules — exactly the
// behaviour of the ClassBench trace generator.
func GenerateTrace(rs *fivetuple.RuleSet, cfg TraceConfig) []fivetuple.Header {
	if cfg.Packets <= 0 {
		return nil
	}
	if cfg.MatchFraction < 0 {
		cfg.MatchFraction = 0
	}
	if cfg.MatchFraction > 1 {
		cfg.MatchFraction = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	headers := make([]fivetuple.Header, 0, cfg.Packets)
	for i := 0; i < cfg.Packets; i++ {
		if rs.Len() > 0 && rng.Float64() < cfg.MatchFraction {
			ruleIdx := pickRule(rng, rs.Len(), cfg.Locality)
			headers = append(headers, headerInRule(rng, rs.Rule(ruleIdx)))
		} else {
			headers = append(headers, randomHeader(rng))
		}
	}
	return headers
}

// pickRule selects a rule index with optional bias towards low indices
// (high-priority rules).
func pickRule(rng *rand.Rand, n int, locality float64) int {
	if locality <= 0 {
		return rng.Intn(n)
	}
	u := rng.Float64()
	// Raising the uniform variate to a power > 1 concentrates selection near
	// zero; locality in (0,1) maps to exponents in (1, 5].
	exp := 1 + 4*locality
	biased := 1.0
	for i := 0; i < int(exp); i++ {
		biased *= u
	}
	idx := int(biased * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// headerInRule draws a header uniformly from the rule's match region.
func headerInRule(rng *rand.Rand, r fivetuple.Rule) fivetuple.Header {
	return fivetuple.Header{
		SrcIP:    addrInPrefix(rng, r.SrcPrefix),
		DstIP:    addrInPrefix(rng, r.DstPrefix),
		SrcPort:  portInRange(rng, r.SrcPort),
		DstPort:  portInRange(rng, r.DstPort),
		Protocol: protocolInMatch(rng, r.Protocol),
	}
}

func addrInPrefix(rng *rand.Rand, p fivetuple.Prefix) fivetuple.IPv4 {
	hostBits := 32 - uint32(p.Len)
	random := fivetuple.IPv4(rng.Uint32())
	if hostBits == 32 {
		return random
	}
	hostMask := fivetuple.IPv4((uint64(1) << hostBits) - 1)
	return (p.Addr & p.Mask()) | (random & hostMask)
}

func portInRange(rng *rand.Rand, r fivetuple.PortRange) uint16 {
	span := uint32(r.Hi) - uint32(r.Lo) + 1
	return r.Lo + uint16(rng.Intn(int(span)))
}

func protocolInMatch(rng *rand.Rand, m fivetuple.ProtocolMatch) uint8 {
	if m.IsWildcard() {
		// Wildcard protocol rules are still overwhelmingly hit by TCP/UDP
		// traffic in practice.
		if rng.Intn(2) == 0 {
			return fivetuple.ProtoTCP
		}
		return fivetuple.ProtoUDP
	}
	// Respect the mask: free bits are randomised.
	free := ^m.Mask
	return (m.Value & m.Mask) | (uint8(rng.Intn(256)) & free)
}

func randomHeader(rng *rand.Rand) fivetuple.Header {
	protos := []uint8{fivetuple.ProtoTCP, fivetuple.ProtoUDP, fivetuple.ProtoICMP, fivetuple.ProtoGRE}
	return fivetuple.Header{
		SrcIP:    fivetuple.IPv4(rng.Uint32()),
		DstIP:    fivetuple.IPv4(rng.Uint32()),
		SrcPort:  uint16(rng.Intn(65536)),
		DstPort:  uint16(rng.Intn(65536)),
		Protocol: protos[rng.Intn(len(protos))],
	}
}
