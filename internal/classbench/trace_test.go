package classbench

import (
	"math"
	"reflect"
	"testing"

	"sdnpc/internal/fivetuple"
)

// smallSet builds a deterministic rule set for trace tests.
func smallSet() *fivetuple.RuleSet {
	return Generate(Config{Class: ACL, Rules: 100, Seed: 3})
}

// TestTraceConfigClamping is the table test locking in the edge cases the
// differential fuzzer surfaced: out-of-domain match fractions and localities
// (negative, above one, NaN) must degrade gracefully instead of panicking or
// silently skewing selection to the last rule.
func TestTraceConfigClamping(t *testing.T) {
	rs := smallSet()
	cases := []struct {
		name string
		cfg  TraceConfig
	}{
		{"negative-match-fraction", TraceConfig{Packets: 50, Seed: 1, MatchFraction: -3}},
		{"match-fraction-above-one", TraceConfig{Packets: 50, Seed: 1, MatchFraction: 7}},
		{"nan-match-fraction", TraceConfig{Packets: 50, Seed: 1, MatchFraction: math.NaN()}},
		{"negative-locality", TraceConfig{Packets: 50, Seed: 1, MatchFraction: 1, Locality: -2}},
		{"locality-at-one", TraceConfig{Packets: 50, Seed: 1, MatchFraction: 1, Locality: 1}},
		{"locality-above-one", TraceConfig{Packets: 50, Seed: 1, MatchFraction: 1, Locality: 9}},
		{"nan-locality", TraceConfig{Packets: 50, Seed: 1, MatchFraction: 1, Locality: math.NaN()}},
		{"zipf-on-nan-locality", TraceConfig{Packets: 50, Seed: 1, MatchFraction: 1, Locality: math.NaN(), ZipfSkew: 1.2}},
		{"zipf-infinite-skew", TraceConfig{Packets: 50, Seed: 1, MatchFraction: 1, ZipfSkew: math.Inf(1)}},
		{"zipf-huge-skew", TraceConfig{Packets: 50, Seed: 1, MatchFraction: 1, ZipfSkew: 1e308}},
		{"zipf-nan-skew", TraceConfig{Packets: 50, Seed: 1, MatchFraction: 1, ZipfSkew: math.NaN()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			trace := GenerateTrace(rs, tc.cfg)
			if len(trace) != tc.cfg.Packets {
				t.Fatalf("trace length = %d, want %d", len(trace), tc.cfg.Packets)
			}
		})
	}
	// The negative-locality regression specifically: selection used to
	// collapse onto the last (default) rule. With locality clamped to 0 the
	// trace must hit more than one distinct rule.
	trace := GenerateTrace(rs, TraceConfig{Packets: 200, Seed: 2, MatchFraction: 1, Locality: -5})
	distinct := make(map[int]struct{})
	for _, h := range trace {
		if idx, ok := rs.Classify(h); ok {
			distinct[idx] = struct{}{}
		}
	}
	if len(distinct) < 2 {
		t.Errorf("negative locality collapsed rule selection onto %d rule(s)", len(distinct))
	}
}

// TestTraceInvertedPortRange locks in the portInRange underflow fix: a rule
// with an inverted (hand-built) port range must still yield headers inside
// the real range, at every boundary.
func TestTraceInvertedPortRange(t *testing.T) {
	inverted := fivetuple.Rule{
		SrcPrefix: fivetuple.MustParsePrefix("10.0.0.0/8"),
		DstPrefix: fivetuple.MustParsePrefix("0.0.0.0/0"),
		SrcPort:   fivetuple.PortRange{Lo: 65535, Hi: 65530}, // inverted on purpose
		DstPort:   fivetuple.PortRange{Lo: 80, Hi: 80},
		Protocol:  fivetuple.ExactProtocol(fivetuple.ProtoTCP),
		Action:    fivetuple.ActionForward,
	}
	rs := fivetuple.NewRuleSet("inverted", []fivetuple.Rule{inverted})
	trace := GenerateTrace(rs, TraceConfig{Packets: 300, Seed: 4, MatchFraction: 1})
	for i, h := range trace {
		if h.SrcPort < 65530 {
			t.Fatalf("header %d src port %d fell outside the inverted range [65530,65535]", i, h.SrcPort)
		}
	}
}

// TestTraceMaxPortBoundaries draws from rules pinned to the port-space
// boundaries and requires every generated header to respect them.
func TestTraceMaxPortBoundaries(t *testing.T) {
	rules := []fivetuple.Rule{
		{
			SrcPrefix: fivetuple.MustParsePrefix("0.0.0.0/0"),
			DstPrefix: fivetuple.MustParsePrefix("0.0.0.0/0"),
			SrcPort:   fivetuple.ExactPort(65535),
			DstPort:   fivetuple.ExactPort(0),
			Protocol:  fivetuple.ExactProtocol(fivetuple.ProtoUDP),
			Action:    fivetuple.ActionForward,
		},
		{
			SrcPrefix: fivetuple.MustParsePrefix("0.0.0.0/0"),
			DstPrefix: fivetuple.MustParsePrefix("0.0.0.0/0"),
			SrcPort:   fivetuple.PortRange{Lo: 65534, Hi: 65535},
			DstPort:   fivetuple.WildcardPortRange(),
			Protocol:  fivetuple.WildcardProtocol(),
			Action:    fivetuple.ActionForward,
		},
	}
	rs := fivetuple.NewRuleSet("boundaries", rules)
	trace := GenerateTrace(rs, TraceConfig{Packets: 400, Seed: 5, MatchFraction: 1})
	sawRule0, sawRule1 := false, false
	for i, h := range trace {
		idx, ok := rs.Classify(h)
		if !ok {
			t.Fatalf("header %d (%s) matches no rule despite MatchFraction 1", i, h)
		}
		switch idx {
		case 0:
			sawRule0 = true
		case 1:
			sawRule1 = true
		}
	}
	if !sawRule0 || !sawRule1 {
		t.Errorf("boundary rules not both exercised: rule0=%v rule1=%v", sawRule0, sawRule1)
	}
}

// TestZipfTraceShape checks the Zipf flow-replay mode: deterministic for a
// seed, bounded to the flow population, and actually skewed — the hottest
// flow must dominate a uniform share by a wide margin.
func TestZipfTraceShape(t *testing.T) {
	rs := smallSet()
	cfg := TraceConfig{Packets: 5000, Seed: 11, MatchFraction: 0.9, ZipfSkew: 1.1, Flows: 64}
	a := GenerateTrace(rs, cfg)
	b := GenerateTrace(rs, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Zipf trace is not deterministic for a fixed seed")
	}
	counts := make(map[fivetuple.Header]int)
	for _, h := range a {
		counts[h]++
	}
	if len(counts) > cfg.Flows {
		t.Fatalf("trace contains %d distinct flows, want <= %d", len(counts), cfg.Flows)
	}
	top := 0
	for _, n := range counts {
		if n > top {
			top = n
		}
	}
	uniformShare := float64(cfg.Packets) / float64(cfg.Flows)
	if float64(top) < 4*uniformShare {
		t.Errorf("hottest flow carries %d packets, want >= 4x the uniform share (%.0f) under Zipf(1.1)", top, uniformShare)
	}
	// Skew <= 1 must keep the classic independent-draw mode: far more
	// distinct headers than the Zipf population bound.
	classic := GenerateTrace(rs, TraceConfig{Packets: 5000, Seed: 11, MatchFraction: 0.9, ZipfSkew: 1.0})
	classicDistinct := make(map[fivetuple.Header]struct{})
	for _, h := range classic {
		classicDistinct[h] = struct{}{}
	}
	if len(classicDistinct) <= cfg.Flows {
		t.Errorf("ZipfSkew=1.0 produced only %d distinct headers; flow-replay mode leaked into the classic path", len(classicDistinct))
	}
}

// TestZipfTraceSingleFlow pins the flows==1 guard: a one-flow population
// must replay that flow for every packet without consulting rand.NewZipf
// (whose imax parameter would be 0, outside its documented domain).
func TestZipfTraceSingleFlow(t *testing.T) {
	rs := smallSet()
	for _, skew := range []float64{1.1, 2, 16, 64, math.Inf(1)} {
		trace := GenerateTrace(rs, TraceConfig{Packets: 100, Seed: 9, MatchFraction: 1, ZipfSkew: skew, Flows: 1})
		if len(trace) != 100 {
			t.Fatalf("skew %v: trace length = %d, want 100", skew, len(trace))
		}
		for i, h := range trace {
			if h != trace[0] {
				t.Fatalf("skew %v: packet %d is %v, want the single flow %v", skew, i, h, trace[0])
			}
		}
	}
	// Packets == 1 clamps any flow request to a one-flow population and must
	// take the same guard.
	if trace := GenerateTrace(rs, TraceConfig{Packets: 1, Seed: 9, MatchFraction: 1, ZipfSkew: 2, Flows: 4096}); len(trace) != 1 {
		t.Fatalf("single-packet Zipf trace length = %d, want 1", len(trace))
	}
}

// TestTraceExtendedRules checks the family-aware header derivation: headers
// engineered from IPv6/VLAN/flag rules must actually match them.
func TestTraceExtendedRules(t *testing.T) {
	rules := []fivetuple.Rule{
		{
			Src6:     fivetuple.MustParsePrefix6("2001:db8:aa::/48"),
			Dst6:     fivetuple.MustParsePrefix6("2001:db8:bb::/48"),
			SrcPort:  fivetuple.WildcardPortRange(),
			DstPort:  fivetuple.ExactPort(443),
			Protocol: fivetuple.ExactProtocol(fivetuple.ProtoTCP),
			VLAN:     fivetuple.ExactVLAN(42),
			TCPFlags: fivetuple.TCPFlagMatch{Value: fivetuple.TCPSyn, Mask: fivetuple.TCPSyn | fivetuple.TCPAck},
			Action:   fivetuple.ActionForward,
		},
	}
	rs := fivetuple.NewRuleSet("ext", rules)
	trace := GenerateTrace(rs, TraceConfig{Packets: 200, Seed: 13, MatchFraction: 1})
	for i, h := range trace {
		if h.Family != fivetuple.FamilyIPv6 {
			t.Fatalf("header %d: family %v, want IPv6", i, h.Family)
		}
		if !rules[0].Matches(h) {
			t.Fatalf("header %d (%s) does not match the rule it was derived from", i, h)
		}
	}
}

// TestZipfTraceSmallPopulations covers the degenerate Zipf geometries.
func TestZipfTraceSmallPopulations(t *testing.T) {
	rs := smallSet()
	for _, tc := range []struct{ packets, flows int }{{1, 1}, {10, 1}, {5, 100}, {10, 0}} {
		trace := GenerateTrace(rs, TraceConfig{Packets: tc.packets, Seed: 7, MatchFraction: 1, ZipfSkew: 2, Flows: tc.flows})
		if len(trace) != tc.packets {
			t.Errorf("packets=%d flows=%d: trace length = %d", tc.packets, tc.flows, len(trace))
		}
	}
}
