package classbench

import (
	"testing"

	"sdnpc/internal/fivetuple"
)

// TestGenerateExtendedDimensions checks the generalized-dimension knobs: the
// requested fractions of body rules carry IPv6 prefixes, VLAN tags, TCP-flag
// matches and non-terminating semantics, family exclusivity holds (an IPv6
// rule keeps its v4 prefixes wildcard), and the trailing default rule stays a
// terminating full wildcard.
func TestGenerateExtendedDimensions(t *testing.T) {
	cfg := Config{
		Class:                  ACL,
		Rules:                  400,
		Seed:                   21,
		IPv6Fraction:           0.5,
		VLANFraction:           0.3,
		TCPFlagFraction:        0.3,
		NonTerminatingFraction: 0.25,
	}
	rs := Generate(cfg)
	if rs.Len() != cfg.Rules {
		t.Fatalf("generated %d rules, want %d", rs.Len(), cfg.Rules)
	}
	var v6, vlan, flags, nonTerm int
	for i := 0; i < rs.Len(); i++ {
		r := rs.Rule(i)
		if !r.Src6.IsWildcard() || !r.Dst6.IsWildcard() {
			v6++
			if !r.SrcPrefix.IsWildcard() || !r.DstPrefix.IsWildcard() {
				t.Fatalf("rule %d constrains both families: %s", i, r)
			}
		}
		if !r.VLAN.IsWildcard() {
			vlan++
			if tag := r.VLAN.Value; tag == 0 || tag > fivetuple.MaxVLAN {
				t.Fatalf("rule %d has out-of-range VLAN tag %d", i, tag)
			}
		}
		if !r.TCPFlags.IsWildcard() {
			flags++
		}
		if r.NonTerminating {
			nonTerm++
		}
	}
	body := cfg.Rules - 1
	checkFraction := func(name string, got int, want float64) {
		lo, hi := int(want*float64(body)*0.6), int(want*float64(body)*1.4)
		if got < lo || got > hi {
			t.Errorf("%s rules: %d of %d body rules, want roughly %.0f%%", name, got, body, want*100)
		}
	}
	checkFraction("IPv6", v6, cfg.IPv6Fraction)
	checkFraction("VLAN", vlan, cfg.VLANFraction)
	checkFraction("TCP-flag", flags, cfg.TCPFlagFraction)
	checkFraction("non-terminating", nonTerm, cfg.NonTerminatingFraction)

	last := rs.Rule(rs.Len() - 1)
	if last.Dims() != 0 || last.NonTerminating {
		t.Errorf("trailing default rule gained extension dims: %s (dims %s)", last, last.Dims())
	}

	// Determinism: the same config reproduces the same set.
	again := Generate(cfg)
	for i := 0; i < rs.Len(); i++ {
		if !rs.Rule(i).SameMatch(again.Rule(i)) || rs.Rule(i).NonTerminating != again.Rule(i).NonTerminating {
			t.Fatalf("rule %d differs between identical-config generations", i)
		}
	}

	// Zero-valued knobs keep the classic generator byte-compatible.
	classic := Generate(Config{Class: ACL, Rules: 100, Seed: 3})
	for i := 0; i < classic.Len(); i++ {
		if classic.Rule(i).Dims() != 0 {
			t.Fatalf("classic config generated an extended rule: %s", classic.Rule(i))
		}
	}
}
