package label

import (
	"encoding/binary"
	"fmt"
)

// CombinationKey is the 68-bit data segment formed by concatenating one label
// per dimension (§IV.C.1: "the first labels are merged in one large data
// segment (68 bits)"). It is the input to the hardware hash unit that yields
// the Highest Priority Matching Rule address.
//
// The packing order follows Dimensions(): srcIP.hi, srcIP.lo, dstIP.hi,
// dstIP.lo (13 bits each), srcPort, dstPort (7 bits each), protocol (2 bits),
// most significant first. Because 68 bits exceed a uint64 the key is held as
// a (high nibble, low 64 bits) pair.
type CombinationKey struct {
	hi uint8  // top 4 bits of the 68-bit value
	lo uint64 // bottom 64 bits
}

// PackKey builds the combination key from one label per dimension. Labels
// must fit their dimension width; out-of-range labels indicate a programming
// error and cause a panic.
func PackKey(labels map[Dimension]Label) CombinationKey {
	var k CombinationKey
	for _, d := range Dimensions() {
		lbl := labels[d]
		if int(lbl) >= d.Capacity() {
			panic(fmt.Sprintf("label: label %d exceeds %d-bit dimension %s", lbl, d.Bits(), d))
		}
		k = k.shiftIn(uint64(lbl), uint(d.Bits()))
	}
	return k
}

// PackKeyDims builds the combination key from a dimension-indexed label
// array (index 0 unused — Dimension is a dense 1-based enum). It is the
// allocation-free variant of PackKey for the per-packet combination path,
// which cannot afford a map per header.
func PackKeyDims(labels *[NumDimensions + 1]Label) CombinationKey {
	var k CombinationKey
	for _, d := range Dimensions() {
		lbl := labels[d]
		if int(lbl) >= d.Capacity() {
			panic(fmt.Sprintf("label: label %d exceeds %d-bit dimension %s", lbl, d.Bits(), d))
		}
		k = k.shiftIn(uint64(lbl), uint(d.Bits()))
	}
	return k
}

// shiftIn appends width bits of value to the least-significant end of the
// key.
func (k CombinationKey) shiftIn(value uint64, width uint) CombinationKey {
	hi := uint64(k.hi)<<width | k.lo>>(64-width)
	lo := k.lo<<width | (value & ((1 << width) - 1))
	return CombinationKey{hi: uint8(hi & 0xF), lo: lo}
}

// Bytes serialises the key into 9 bytes (68 bits left-padded to 72), the
// format fed to the hash unit.
func (k CombinationKey) Bytes() [9]byte {
	var out [9]byte
	out[0] = k.hi
	binary.BigEndian.PutUint64(out[1:], k.lo)
	return out
}

// Uint64 folds the key into 64 bits by XORing the high nibble onto the low
// word. It is a convenience for hash-map keys in software models; the
// hardware path uses Bytes.
func (k CombinationKey) Uint64() uint64 {
	return k.lo ^ uint64(k.hi)<<60
}

// String renders the key as a 17-digit hexadecimal value.
func (k CombinationKey) String() string {
	return fmt.Sprintf("%01x%016x", k.hi, k.lo)
}

// Unpack recovers the per-dimension labels from the key. It is the inverse of
// PackKey and exists for debugging and tests.
func (k CombinationKey) Unpack() map[Dimension]Label {
	out := make(map[Dimension]Label, NumDimensions)
	dims := Dimensions()
	// Walk from the least significant end (last dimension) backwards.
	hi, lo := uint64(k.hi), k.lo
	for i := len(dims) - 1; i >= 0; i-- {
		d := dims[i]
		width := uint(d.Bits())
		mask := uint64(1)<<width - 1
		out[d] = Label(lo & mask)
		lo = lo>>width | hi<<(64-width)
		hi >>= width
	}
	return out
}
