package label

import "sort"

// PriorityLabel is a label annotated with the priority of the best (lowest
// numbered) rule that uses the corresponding field value. Field lookup
// engines return lists of these, ordered so that the Highest Priority
// Matching Label (HPML) is at the front — the invariant §IV.A requires the
// controller to maintain ("the lists of labels are reorganized according to
// the priority rule").
type PriorityLabel struct {
	Label    Label
	Priority int
}

// List is a priority-ordered list of labels attached to one node of a field
// lookup structure. Lower Priority values sort first. The zero value is an
// empty, ready-to-use list.
type List struct {
	items []PriorityLabel
}

// NewList builds a list from the given items, establishing the priority
// order.
func NewList(items ...PriorityLabel) *List {
	l := &List{}
	for _, it := range items {
		l.Insert(it)
	}
	return l
}

// Len returns the number of labels in the list.
func (l *List) Len() int { return len(l.items) }

// Reset empties the list keeping its capacity, so engines can reuse one
// caller-owned list per lookup without allocating.
func (l *List) Reset() { l.items = l.items[:0] }

// Insert adds a label keeping the list sorted by ascending priority. If the
// label is already present its priority is updated to the better (smaller)
// of the two, mirroring the controller's behaviour when a higher-priority
// rule starts sharing an existing field value.
func (l *List) Insert(item PriorityLabel) {
	for i, existing := range l.items {
		if existing.Label == item.Label {
			if item.Priority < existing.Priority {
				l.items = append(l.items[:i], l.items[i+1:]...)
				l.insertSorted(item)
			}
			return
		}
	}
	l.insertSorted(item)
}

func (l *List) insertSorted(item PriorityLabel) {
	pos := sort.Search(len(l.items), func(i int) bool {
		return l.items[i].Priority > item.Priority
	})
	l.items = append(l.items, PriorityLabel{})
	copy(l.items[pos+1:], l.items[pos:])
	l.items[pos] = item
}

// Remove deletes the label from the list. It reports whether the label was
// present.
func (l *List) Remove(lbl Label) bool {
	for i, existing := range l.items {
		if existing.Label == lbl {
			l.items = append(l.items[:i], l.items[i+1:]...)
			return true
		}
	}
	return false
}

// Reprioritise sets a new priority for an existing label, preserving the
// order invariant. It reports whether the label was present.
func (l *List) Reprioritise(lbl Label, priority int) bool {
	for i, existing := range l.items {
		if existing.Label == lbl {
			l.items = append(l.items[:i], l.items[i+1:]...)
			l.insertSorted(PriorityLabel{Label: lbl, Priority: priority})
			return true
		}
	}
	return false
}

// HPML returns the Highest Priority Matching Label — the first entry. The
// second result is false when the list is empty.
func (l *List) HPML() (PriorityLabel, bool) {
	if len(l.items) == 0 {
		return PriorityLabel{}, false
	}
	return l.items[0], true
}

// At returns the i-th entry in priority order.
func (l *List) At(i int) PriorityLabel { return l.items[i] }

// Items returns a copy of the entries in priority order.
func (l *List) Items() []PriorityLabel {
	out := make([]PriorityLabel, len(l.items))
	copy(out, l.items)
	return out
}

// Labels returns just the labels in priority order.
func (l *List) Labels() []Label {
	out := make([]Label, len(l.items))
	for i, it := range l.items {
		out[i] = it.Label
	}
	return out
}

// Clone returns an independent copy of the list.
func (l *List) Clone() *List {
	c := &List{items: make([]PriorityLabel, len(l.items))}
	copy(c.items, l.items)
	return c
}

// Merge inserts every entry of other into l (deduplicating by label and
// keeping the better priority). It is used when a trie lookup aggregates the
// label lists of every matching prefix length.
func (l *List) Merge(other *List) {
	if other == nil {
		return
	}
	for _, it := range other.items {
		l.Insert(it)
	}
}
