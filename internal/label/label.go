// Package label implements the label method at the heart of the paper's
// architecture (§III.C, §IV.A).
//
// Every unique rule-field value is tagged with a small integer label so that
// rules sharing a field value share storage. The architecture splits each
// 32-bit IP address into two 16-bit segments, giving seven label dimensions:
//
//	source IP high/low, destination IP high/low  — 13-bit labels
//	source port, destination port                —  7-bit labels
//	protocol                                     —  2-bit labels
//
// which concatenate into the 68-bit combination key (4×13 + 2×7 + 2 = 68)
// hashed by the hardware to obtain the Highest Priority Matching Rule
// address.
//
// Label tables carry a reference counter per label so that rule insertion
// and deletion are incremental: inserting a rule whose field value is already
// labelled only increments the counter, and a label is recycled only when its
// counter returns to zero (Fig. 4 of the paper).
package label

import (
	"errors"
	"fmt"
)

// Label is a small integer identifying one unique rule-field value within a
// dimension. The zero value is a valid label.
type Label uint16

// Dimension identifies one of the seven label dimensions of the architecture.
type Dimension uint8

// The seven label dimensions, in the order they are packed into the
// combination key (most significant first).
const (
	DimSrcIPHigh Dimension = iota + 1
	DimSrcIPLow
	DimDstIPHigh
	DimDstIPLow
	DimSrcPort
	DimDstPort
	DimProtocol
)

// NumDimensions is the number of label dimensions.
const NumDimensions = 7

// Dimensions lists every dimension in key-packing order. The result is
// backed by a package variable so per-packet iteration does not allocate;
// callers must not mutate it.
func Dimensions() []Dimension { return allDimensions[:] }

var allDimensions = [...]Dimension{
	DimSrcIPHigh, DimSrcIPLow, DimDstIPHigh, DimDstIPLow,
	DimSrcPort, DimDstPort, DimProtocol,
}

// Bits returns the label width of the dimension in bits, as specified in
// §IV.C.1 of the paper: 13 bits per IP segment, 7 bits per port, 2 bits for
// the protocol.
func (d Dimension) Bits() int {
	switch d {
	case DimSrcIPHigh, DimSrcIPLow, DimDstIPHigh, DimDstIPLow:
		return 13
	case DimSrcPort, DimDstPort:
		return 7
	case DimProtocol:
		return 2
	default:
		return 0
	}
}

// Capacity returns the number of distinct labels the dimension can hold.
func (d Dimension) Capacity() int { return 1 << d.Bits() }

// String names the dimension.
func (d Dimension) String() string {
	switch d {
	case DimSrcIPHigh:
		return "srcIP.hi"
	case DimSrcIPLow:
		return "srcIP.lo"
	case DimDstIPHigh:
		return "dstIP.hi"
	case DimDstIPLow:
		return "dstIP.lo"
	case DimSrcPort:
		return "srcPort"
	case DimDstPort:
		return "dstPort"
	case DimProtocol:
		return "protocol"
	default:
		return fmt.Sprintf("Dimension(%d)", uint8(d))
	}
}

// KeyBits is the width of the combination key obtained by concatenating the
// highest-priority label of every dimension (68 bits in the paper).
const KeyBits = 4*13 + 2*7 + 2

// ErrTableFull is returned when a dimension has run out of label space.
var ErrTableFull = errors.New("label: table full")

// ErrUnknownValue is returned when releasing or looking up a field value that
// has no label.
var ErrUnknownValue = errors.New("label: unknown field value")

// Table is the label table of one dimension: the mapping from unique field
// values to labels, with a reference counter per label supporting the
// incremental update procedure of Fig. 4.
//
// Table is not safe for concurrent use; the controller owns it exclusively.
type Table struct {
	dim Dimension

	byValue map[string]Label
	entries map[Label]*entry
	// free holds labels recycled by Release, reused before fresh allocation
	// so the label space stays dense.
	free []Label
	next Label
}

type entry struct {
	value    string
	refCount int
}

// NewTable creates an empty label table for the given dimension.
func NewTable(dim Dimension) *Table {
	return &Table{
		dim:     dim,
		byValue: make(map[string]Label),
		entries: make(map[Label]*entry),
	}
}

// Dimension returns the dimension this table labels.
func (t *Table) Dimension() Dimension { return t.dim }

// Len returns the number of live labels (unique field values) in the table.
func (t *Table) Len() int { return len(t.entries) }

// Acquire returns the label for the field value, allocating a new label when
// the value is unseen, and increments the value's reference counter. The
// second result reports whether a new label was created — the signal telling
// the controller it must also install the value into the field's lookup
// structure (Fig. 4: "new label creation").
func (t *Table) Acquire(value string) (lbl Label, created bool, err error) {
	if existing, ok := t.byValue[value]; ok {
		t.entries[existing].refCount++
		return existing, false, nil
	}
	if len(t.entries) >= t.dim.Capacity() {
		return 0, false, fmt.Errorf("%w: dimension %s holds %d labels (%d bits)",
			ErrTableFull, t.dim, len(t.entries), t.dim.Bits())
	}
	if n := len(t.free); n > 0 {
		lbl = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		lbl = t.next
		t.next++
	}
	t.byValue[value] = lbl
	t.entries[lbl] = &entry{value: value, refCount: 1}
	return lbl, true, nil
}

// Release decrements the reference counter of the field value's label. When
// the counter reaches zero the label is removed and recycled, and the second
// result is true — the signal telling the controller to remove the value from
// the field's lookup structure.
func (t *Table) Release(value string) (lbl Label, removed bool, err error) {
	existing, ok := t.byValue[value]
	if !ok {
		return 0, false, fmt.Errorf("%w: %q in dimension %s", ErrUnknownValue, value, t.dim)
	}
	e := t.entries[existing]
	e.refCount--
	if e.refCount > 0 {
		return existing, false, nil
	}
	delete(t.byValue, value)
	delete(t.entries, existing)
	t.free = append(t.free, existing)
	return existing, true, nil
}

// Lookup returns the label of a field value without touching the counter.
func (t *Table) Lookup(value string) (Label, bool) {
	lbl, ok := t.byValue[value]
	return lbl, ok
}

// RefCount returns the reference counter of the field value's label, or 0
// when the value is unlabelled.
func (t *Table) RefCount(value string) int {
	lbl, ok := t.byValue[value]
	if !ok {
		return 0
	}
	return t.entries[lbl].refCount
}

// Value returns the field value a label currently identifies.
func (t *Table) Value(lbl Label) (string, bool) {
	e, ok := t.entries[lbl]
	if !ok {
		return "", false
	}
	return e.value, true
}

// Values returns every labelled field value (unordered).
func (t *Table) Values() []string {
	out := make([]string, 0, len(t.byValue))
	for v := range t.byValue {
		out = append(out, v)
	}
	return out
}

// StorageBits estimates the memory footprint of the label table in bits: one
// label plus one reference counter per live entry. Counter width follows the
// architecture's 16-bit update counters.
func (t *Table) StorageBits() int {
	const counterBits = 16
	return t.Len() * (t.dim.Bits() + counterBits)
}

// Bank groups the seven per-dimension label tables of one classifier
// instance.
type Bank struct {
	tables map[Dimension]*Table
}

// NewBank creates a bank with an empty table per dimension.
func NewBank() *Bank {
	b := &Bank{tables: make(map[Dimension]*Table, NumDimensions)}
	for _, d := range Dimensions() {
		b.tables[d] = NewTable(d)
	}
	return b
}

// Table returns the table of the given dimension. It panics on an unknown
// dimension, which always indicates a programming error.
func (b *Bank) Table(d Dimension) *Table {
	t, ok := b.tables[d]
	if !ok {
		panic(fmt.Sprintf("label: unknown dimension %v", d))
	}
	return t
}

// TotalLabels returns the number of live labels across all dimensions.
func (b *Bank) TotalLabels() int {
	total := 0
	for _, t := range b.tables {
		total += t.Len()
	}
	return total
}

// StorageBits returns the summed footprint of every table in the bank.
func (b *Bank) StorageBits() int {
	total := 0
	for _, t := range b.tables {
		total += t.StorageBits()
	}
	return total
}

// Clone returns an independent copy of the table: the value and entry maps
// and the free list are duplicated, so acquiring and releasing labels on the
// copy never touches the original. The copy-on-write update path of
// internal/core clones the label bank of the published snapshot before
// applying a rule update to it.
func (t *Table) Clone() *Table {
	c := &Table{
		dim:     t.dim,
		byValue: make(map[string]Label, len(t.byValue)),
		entries: make(map[Label]*entry, len(t.entries)),
		free:    append([]Label(nil), t.free...),
		next:    t.next,
	}
	for v, lbl := range t.byValue {
		c.byValue[v] = lbl
	}
	for lbl, e := range t.entries {
		c.entries[lbl] = &entry{value: e.value, refCount: e.refCount}
	}
	return c
}

// Clone returns an independent copy of the bank with every table cloned.
func (b *Bank) Clone() *Bank {
	c := &Bank{tables: make(map[Dimension]*Table, len(b.tables))}
	for d, t := range b.tables {
		c.tables[d] = t.Clone()
	}
	return c
}
