package label

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestDimensionWidths(t *testing.T) {
	// §IV.C.1: 13-bit IP segment labels, 7-bit port labels, 2-bit protocol
	// labels, concatenating to a 68-bit combination key.
	widths := map[Dimension]int{
		DimSrcIPHigh: 13,
		DimSrcIPLow:  13,
		DimDstIPHigh: 13,
		DimDstIPLow:  13,
		DimSrcPort:   7,
		DimDstPort:   7,
		DimProtocol:  2,
	}
	total := 0
	for d, want := range widths {
		if got := d.Bits(); got != want {
			t.Errorf("%s.Bits() = %d, want %d", d, got, want)
		}
		if got, want := d.Capacity(), 1<<want; got != want {
			t.Errorf("%s.Capacity() = %d, want %d", d, got, want)
		}
		total += want
	}
	if total != KeyBits || KeyBits != 68 {
		t.Errorf("total key width = %d (KeyBits %d), want 68", total, KeyBits)
	}
	if len(Dimensions()) != NumDimensions {
		t.Errorf("Dimensions() has %d entries, want %d", len(Dimensions()), NumDimensions)
	}
	if Dimension(99).Bits() != 0 {
		t.Error("unknown dimension should have zero width")
	}
	if Dimension(99).String() == "" || DimSrcIPHigh.String() != "srcIP.hi" {
		t.Error("dimension names are wrong")
	}
}

func TestTableAcquireRelease(t *testing.T) {
	tbl := NewTable(DimDstPort)
	// First acquire creates the label (Fig. 4: "new label creation").
	lblA, created, err := tbl.Acquire("80 : 80")
	if err != nil || !created {
		t.Fatalf("first Acquire = (%v, %v, %v), want created", lblA, created, err)
	}
	// Second acquire of the same value only increments the counter.
	lblA2, created, err := tbl.Acquire("80 : 80")
	if err != nil || created || lblA2 != lblA {
		t.Fatalf("second Acquire = (%v, %v, %v), want same label, not created", lblA2, created, err)
	}
	if got := tbl.RefCount("80 : 80"); got != 2 {
		t.Errorf("RefCount = %d, want 2", got)
	}
	// A different value gets a different label.
	lblB, created, err := tbl.Acquire("0 : 65535")
	if err != nil || !created || lblB == lblA {
		t.Fatalf("Acquire of new value = (%v, %v, %v), want fresh label", lblB, created, err)
	}
	if tbl.Len() != 2 {
		t.Errorf("Len = %d, want 2", tbl.Len())
	}

	// Release once: the label must survive because the counter is still 1.
	_, removed, err := tbl.Release("80 : 80")
	if err != nil || removed {
		t.Fatalf("first Release removed the label prematurely: removed=%v err=%v", removed, err)
	}
	// Release again: now the counter hits zero and the label is recycled.
	gone, removed, err := tbl.Release("80 : 80")
	if err != nil || !removed || gone != lblA {
		t.Fatalf("second Release = (%v, %v, %v), want removal of %v", gone, removed, err, lblA)
	}
	if _, ok := tbl.Lookup("80 : 80"); ok {
		t.Error("released value still present in table")
	}
	// Releasing an unknown value is an error.
	if _, _, err := tbl.Release("80 : 80"); !errors.Is(err, ErrUnknownValue) {
		t.Errorf("Release of unknown value error = %v, want ErrUnknownValue", err)
	}
	// The freed label is reused by the next allocation, keeping labels dense.
	lblC, created, err := tbl.Acquire("443 : 443")
	if err != nil || !created || lblC != lblA {
		t.Errorf("Acquire after release = %v, want recycled label %v", lblC, lblA)
	}
}

func TestTableCapacityExhaustion(t *testing.T) {
	tbl := NewTable(DimProtocol) // 2 bits => 4 labels
	for i := 0; i < DimProtocol.Capacity(); i++ {
		if _, _, err := tbl.Acquire(fmt.Sprintf("proto-%d", i)); err != nil {
			t.Fatalf("Acquire %d failed: %v", i, err)
		}
	}
	if _, _, err := tbl.Acquire("one-too-many"); !errors.Is(err, ErrTableFull) {
		t.Errorf("Acquire beyond capacity error = %v, want ErrTableFull", err)
	}
	// Acquiring an existing value must still work at capacity.
	if _, created, err := tbl.Acquire("proto-0"); err != nil || created {
		t.Errorf("re-Acquire at capacity = (created=%v, err=%v), want existing label", created, err)
	}
}

func TestTableValueAndValues(t *testing.T) {
	tbl := NewTable(DimSrcIPHigh)
	lbl, _, err := tbl.Acquire("10.0.0.0/8")
	if err != nil {
		t.Fatal(err)
	}
	v, ok := tbl.Value(lbl)
	if !ok || v != "10.0.0.0/8" {
		t.Errorf("Value(%v) = (%q, %v)", lbl, v, ok)
	}
	if _, ok := tbl.Value(Label(999)); ok {
		t.Error("Value of unknown label should report !ok")
	}
	if got := len(tbl.Values()); got != 1 {
		t.Errorf("Values() length = %d, want 1", got)
	}
	if tbl.RefCount("unknown") != 0 {
		t.Error("RefCount of unknown value should be 0")
	}
	if tbl.Dimension() != DimSrcIPHigh {
		t.Error("Dimension() mismatch")
	}
	if tbl.StorageBits() != 13+16 {
		t.Errorf("StorageBits() = %d, want %d", tbl.StorageBits(), 13+16)
	}
}

func TestTableRefCountProperty(t *testing.T) {
	// Property: after n acquires and m<=n releases of the same value, the
	// refcount is n-m and the label survives iff n-m>0.
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw%20) + 1
		m := int(mRaw) % (n + 1)
		tbl := NewTable(DimDstIPLow)
		for i := 0; i < n; i++ {
			if _, _, err := tbl.Acquire("value"); err != nil {
				return false
			}
		}
		for i := 0; i < m; i++ {
			if _, _, err := tbl.Release("value"); err != nil {
				return false
			}
		}
		_, present := tbl.Lookup("value")
		return tbl.RefCount("value") == n-m && present == (n-m > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBank(t *testing.T) {
	b := NewBank()
	if b.TotalLabels() != 0 || b.StorageBits() != 0 {
		t.Error("new bank should be empty")
	}
	if _, _, err := b.Table(DimSrcPort).Acquire("0 : 65535"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Table(DimProtocol).Acquire("0x06/0xFF"); err != nil {
		t.Fatal(err)
	}
	if got := b.TotalLabels(); got != 2 {
		t.Errorf("TotalLabels() = %d, want 2", got)
	}
	if b.StorageBits() != (7+16)+(2+16) {
		t.Errorf("StorageBits() = %d", b.StorageBits())
	}
	assertPanics(t, "unknown dimension", func() { b.Table(Dimension(42)) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

func TestListOrderingAndHPML(t *testing.T) {
	l := NewList(
		PriorityLabel{Label: 5, Priority: 50},
		PriorityLabel{Label: 1, Priority: 10},
		PriorityLabel{Label: 3, Priority: 30},
	)
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	hpml, ok := l.HPML()
	if !ok || hpml.Label != 1 || hpml.Priority != 10 {
		t.Errorf("HPML = %+v, want label 1 priority 10", hpml)
	}
	got := l.Labels()
	want := []Label{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Labels() = %v, want %v", got, want)
		}
	}
	// Inserting an existing label with a better priority moves it forward.
	l.Insert(PriorityLabel{Label: 5, Priority: 1})
	if hpml, _ := l.HPML(); hpml.Label != 5 {
		t.Errorf("after priority upgrade HPML = %+v, want label 5", hpml)
	}
	// Inserting with a worse priority leaves the list unchanged.
	l.Insert(PriorityLabel{Label: 5, Priority: 99})
	if hpml, _ := l.HPML(); hpml.Label != 5 || hpml.Priority != 1 {
		t.Errorf("worse-priority insert changed HPML: %+v", hpml)
	}
	if l.Len() != 3 {
		t.Errorf("duplicate insert changed length: %d", l.Len())
	}
}

func TestListEmptyAndRemove(t *testing.T) {
	var l List
	if _, ok := l.HPML(); ok {
		t.Error("empty list should have no HPML")
	}
	l.Insert(PriorityLabel{Label: 7, Priority: 3})
	l.Insert(PriorityLabel{Label: 8, Priority: 1})
	if !l.Remove(7) {
		t.Error("Remove of present label returned false")
	}
	if l.Remove(7) {
		t.Error("Remove of absent label returned true")
	}
	if l.Len() != 1 {
		t.Errorf("Len after remove = %d, want 1", l.Len())
	}
	if l.At(0).Label != 8 {
		t.Errorf("At(0) = %+v, want label 8", l.At(0))
	}
}

func TestListReprioritise(t *testing.T) {
	l := NewList(
		PriorityLabel{Label: 1, Priority: 10},
		PriorityLabel{Label: 2, Priority: 20},
	)
	if !l.Reprioritise(2, 5) {
		t.Fatal("Reprioritise of present label returned false")
	}
	if hpml, _ := l.HPML(); hpml.Label != 2 || hpml.Priority != 5 {
		t.Errorf("HPML after reprioritise = %+v", hpml)
	}
	if l.Reprioritise(99, 1) {
		t.Error("Reprioritise of absent label returned true")
	}
}

func TestListMergeAndClone(t *testing.T) {
	a := NewList(PriorityLabel{Label: 1, Priority: 10}, PriorityLabel{Label: 2, Priority: 20})
	b := NewList(PriorityLabel{Label: 2, Priority: 5}, PriorityLabel{Label: 3, Priority: 30})
	c := a.Clone()
	c.Merge(b)
	if c.Len() != 3 {
		t.Fatalf("merged length = %d, want 3", c.Len())
	}
	if hpml, _ := c.HPML(); hpml.Label != 2 || hpml.Priority != 5 {
		t.Errorf("merged HPML = %+v, want label 2 priority 5", hpml)
	}
	// The original is untouched.
	if a.Len() != 2 {
		t.Errorf("Merge mutated the clone source: %v", a.Items())
	}
	c.Merge(nil) // must be a no-op
	if c.Len() != 3 {
		t.Error("Merge(nil) changed the list")
	}
}

func TestListInsertKeepsSortedProperty(t *testing.T) {
	f := func(priorities []int16) bool {
		l := &List{}
		for i, p := range priorities {
			l.Insert(PriorityLabel{Label: Label(i), Priority: int(p)})
		}
		items := l.Items()
		for i := 1; i < len(items); i++ {
			if items[i-1].Priority > items[i].Priority {
				return false
			}
		}
		return l.Len() == len(priorities)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackKeyRoundTrip(t *testing.T) {
	labels := map[Dimension]Label{
		DimSrcIPHigh: 0x1ABC,
		DimSrcIPLow:  0x0001,
		DimDstIPHigh: 0x1FFF,
		DimDstIPLow:  0,
		DimSrcPort:   0x7F,
		DimDstPort:   0x01,
		DimProtocol:  0x3,
	}
	key := PackKey(labels)
	back := key.Unpack()
	for d, want := range labels {
		if back[d] != want {
			t.Errorf("Unpack()[%s] = %v, want %v", d, back[d], want)
		}
	}
	if len(key.String()) != 17 {
		t.Errorf("String() = %q, want 17 hex digits", key.String())
	}
}

func TestPackKeyRoundTripProperty(t *testing.T) {
	f := func(a, b, c, d uint16, e, g uint8, p uint8) bool {
		labels := map[Dimension]Label{
			DimSrcIPHigh: Label(a % 8192),
			DimSrcIPLow:  Label(b % 8192),
			DimDstIPHigh: Label(c % 8192),
			DimDstIPLow:  Label(d % 8192),
			DimSrcPort:   Label(e % 128),
			DimDstPort:   Label(g % 128),
			DimProtocol:  Label(p % 4),
		}
		back := PackKey(labels).Unpack()
		for dim, want := range labels {
			if back[dim] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackKeyDistinctInputsDistinctKeys(t *testing.T) {
	base := map[Dimension]Label{
		DimSrcIPHigh: 1, DimSrcIPLow: 2, DimDstIPHigh: 3, DimDstIPLow: 4,
		DimSrcPort: 5, DimDstPort: 6, DimProtocol: 1,
	}
	k1 := PackKey(base)
	for _, d := range Dimensions() {
		modified := make(map[Dimension]Label, len(base))
		for k, v := range base {
			modified[k] = v
		}
		modified[d] = base[d] + 1
		if PackKey(modified) == k1 {
			t.Errorf("changing dimension %s did not change the key", d)
		}
	}
}

func TestPackKeyBytesAndUint64(t *testing.T) {
	labels := map[Dimension]Label{
		DimSrcIPHigh: 0x1FFF, DimSrcIPLow: 0x1FFF, DimDstIPHigh: 0x1FFF,
		DimDstIPLow: 0x1FFF, DimSrcPort: 0x7F, DimDstPort: 0x7F, DimProtocol: 0x3,
	}
	key := PackKey(labels)
	bytes := key.Bytes()
	// All 68 bits set: top byte is 0x0F, the rest 0xFF.
	if bytes[0] != 0x0F {
		t.Errorf("Bytes()[0] = %#x, want 0x0F", bytes[0])
	}
	for i := 1; i < len(bytes); i++ {
		if bytes[i] != 0xFF {
			t.Errorf("Bytes()[%d] = %#x, want 0xFF", i, bytes[i])
		}
	}
	if key.Uint64() == 0 {
		t.Error("Uint64() of a non-zero key is zero")
	}
}

func TestPackKeyPanicsOnOversizedLabel(t *testing.T) {
	assertPanics(t, "oversized label", func() {
		PackKey(map[Dimension]Label{DimProtocol: 4})
	})
}
