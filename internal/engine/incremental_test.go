package engine_test

import (
	"math/rand"
	"testing"

	"sdnpc/internal/engine"
	"sdnpc/internal/fivetuple"
)

// TestIncrementalFlagMatchesCapability pins the registry honesty of the
// delta-update capability: a definition may declare Incremental if and only
// if its instances actually implement IncrementalPacketEngine.
func TestIncrementalFlagMatchesCapability(t *testing.T) {
	for _, name := range engine.PacketEngineNames() {
		def, ok := engine.Get(name)
		if !ok {
			t.Fatalf("packet engine %q vanished from the registry", name)
		}
		eng, err := engine.NewPacket(name, engine.Spec{})
		if err != nil {
			t.Fatalf("building %q: %v", name, err)
		}
		_, incremental := eng.(engine.IncrementalPacketEngine)
		if incremental != def.Incremental {
			t.Errorf("engine %q: Incremental flag = %v but interface implemented = %v",
				name, def.Incremental, incremental)
		}
	}
	names := engine.IncrementalPacketEngineNames()
	if len(names) < 2 {
		t.Fatalf("IncrementalPacketEngineNames() = %v, want at least dcfl and hypercuts", names)
	}
}

// TestIncrementalDeltaMatchesInstall drives every incremental packet engine
// through a random splice sequence and asserts verdict-for-verdict agreement
// with a freshly installed twin and the linear oracle after every op.
func TestIncrementalDeltaMatchesInstall(t *testing.T) {
	for _, name := range engine.IncrementalPacketEngineNames() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(101))
			rules := randomRules(rng, 40)
			eng, err := engine.NewPacket(name, engine.Spec{})
			if err != nil {
				t.Fatal(err)
			}
			inc, ok := eng.(engine.IncrementalPacketEngine)
			if !ok {
				t.Fatalf("%q does not implement IncrementalPacketEngine", name)
			}
			if err := inc.Install(rules); err != nil {
				t.Fatal(err)
			}
			if cost := inc.UpdateCost(); cost.Deltas != 0 || cost.Degradation != 0 {
				t.Fatalf("UpdateCost right after Install = %+v, want zero debt", cost)
			}

			live := append([]fivetuple.Rule(nil), rules...)
			pool := randomRules(rng, 30)
			for op := 0; op < 60; op++ {
				if (rng.Intn(2) == 0 || len(live) == 0) && len(pool) > 0 {
					idx := rng.Intn(len(live) + 1)
					r := pool[0]
					pool = pool[1:]
					if err := inc.InsertRule(r, idx); err != nil {
						t.Fatalf("op %d InsertRule(%d): %v", op, idx, err)
					}
					live = append(live, fivetuple.Rule{})
					copy(live[idx+1:], live[idx:])
					live[idx] = r
				} else {
					idx := rng.Intn(len(live))
					if err := inc.DeleteRule(live[idx], idx); err != nil {
						t.Fatalf("op %d DeleteRule(%d): %v", op, idx, err)
					}
					live = append(live[:idx], live[idx+1:]...)
				}
				headers := probeHeaders(rng, live, 25)
				fresh, err := engine.NewPacket(name, engine.Spec{})
				if err != nil {
					t.Fatal(err)
				}
				if err := fresh.Install(live); err != nil {
					t.Fatalf("op %d fresh Install over %d rules: %v", op, len(live), err)
				}
				oracle := fivetuple.NewRuleSet("oracle", live)
				for _, h := range headers {
					wantIdx, wantOK := oracle.Classify(h)
					gotIdx, gotOK, _ := inc.LookupPacket(h)
					if gotOK != wantOK || (wantOK && gotIdx != wantIdx) {
						t.Fatalf("op %d: delta path LookupPacket(%s) = (%d,%v), oracle (%d,%v)",
							op, h, gotIdx, gotOK, wantIdx, wantOK)
					}
					freshIdx, freshOK, _ := fresh.LookupPacket(h)
					if gotOK != freshOK || (gotOK && gotIdx != freshIdx) {
						t.Fatalf("op %d: delta path LookupPacket(%s) = (%d,%v), fresh Install (%d,%v)",
							op, h, gotIdx, gotOK, freshIdx, freshOK)
					}
				}
			}
			if cost := inc.UpdateCost(); cost.Deltas != 60 {
				t.Errorf("UpdateCost.Deltas = %d after 60 ops, want 60", cost.Deltas)
			}
			// A full Install clears the delta debt.
			if err := inc.Install(live); err != nil {
				t.Fatal(err)
			}
			if cost := inc.UpdateCost(); cost.Deltas != 0 || cost.Degradation != 0 {
				t.Errorf("UpdateCost after re-Install = %+v, want zero debt", cost)
			}
		})
	}
}

// TestIncrementalCloneIsolation asserts the copy-on-write contract: a delta
// applied to a cloned handle is never observable through the original, in
// either verdicts or delta accounting.
func TestIncrementalCloneIsolation(t *testing.T) {
	for _, name := range engine.IncrementalPacketEngineNames() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(103))
			rules := randomRules(rng, 30)
			headers := probeHeaders(rng, rules, 40)
			eng, err := engine.NewPacket(name, engine.Spec{})
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Install(rules); err != nil {
				t.Fatal(err)
			}
			type verdict struct {
				idx int
				ok  bool
			}
			before := make([]verdict, len(headers))
			for i, h := range headers {
				idx, ok, _ := eng.LookupPacket(h)
				before[i] = verdict{idx, ok}
			}

			cl := eng.Clone().(engine.IncrementalPacketEngine)
			for i := 0; i < 10; i++ {
				if err := cl.DeleteRule(rules[0], 0); err != nil {
					t.Fatalf("DeleteRule on clone: %v", err)
				}
				rules = rules[1:]
			}
			orig := eng.(engine.IncrementalPacketEngine)
			if cost := orig.UpdateCost(); cost.Deltas != 0 {
				t.Errorf("original UpdateCost.Deltas = %d after clone deltas, want 0", cost.Deltas)
			}
			if cost := cl.UpdateCost(); cost.Deltas != 10 {
				t.Errorf("clone UpdateCost.Deltas = %d, want 10", cost.Deltas)
			}
			for i, h := range headers {
				idx, ok, _ := eng.LookupPacket(h)
				if idx != before[i].idx || ok != before[i].ok {
					t.Fatalf("original verdict for %s changed after clone deltas: (%d,%v) -> (%d,%v)",
						h, before[i].idx, before[i].ok, idx, ok)
				}
			}
		})
	}
}

// TestIncrementalDeltaOnEmptyEngineFails pins the fallback contract: a delta
// against an engine with no built structure must fail cleanly (the
// classifier then falls back to a full rebuild) rather than build implicitly.
func TestIncrementalDeltaOnEmptyEngineFails(t *testing.T) {
	for _, name := range engine.IncrementalPacketEngineNames() {
		t.Run(name, func(t *testing.T) {
			eng, err := engine.NewPacket(name, engine.Spec{})
			if err != nil {
				t.Fatal(err)
			}
			inc := eng.(engine.IncrementalPacketEngine)
			r := fivetuple.Wildcard(0, fivetuple.ActionForward)
			if err := inc.InsertRule(r, 0); err == nil {
				t.Error("InsertRule on an empty engine should fail")
			}
			if err := inc.DeleteRule(r, 0); err == nil {
				t.Error("DeleteRule on an empty engine should fail")
			}
			if err := inc.Install([]fivetuple.Rule{r}); err != nil {
				t.Fatal(err)
			}
			if err := inc.DeleteRule(r, 5); err == nil {
				t.Error("DeleteRule with a divergent index should fail")
			}
		})
	}
}
