package engine

import (
	"sort"

	"sdnpc/internal/fivetuple"
)

// UpdateCost is the accumulated delta debt of an incremental whole-packet
// engine since its last full Install: how much work the deltas performed and
// how far they have drifted the structure from what a fresh build would
// produce. The classifier's update policy reads it to decide when the debt
// justifies an amortising rebuild.
type UpdateCost struct {
	// Deltas is the number of delta ops absorbed since the last Install.
	Deltas int
	// Writes is the number of structure memory writes those ops performed.
	Writes int
	// Degradation, in [0,1], estimates the structure's drift from a fresh
	// build: 0 immediately after Install, growing as deltas leave imperfection
	// behind (overfull HyperCuts leaves, stale DCFL combination entries).
	// Verdicts stay exact at any degradation — the signal measures lookup
	// cost and memory drift only.
	Degradation float64
}

// IncrementalPacketEngine is the optional delta-update capability of the
// whole-packet tier. The Table I structures are precomputed, so their base
// update primitive is Install — a full rebuild; engines whose structure is
// decomposable (DCFL per field, HyperCuts per leaf) can additionally splice
// one rule in or out without rebuilding, which is what keeps publish latency
// flat under SDN flow-mod churn.
//
// Index contract: both ops are expressed against the installed best-first
// rule order (the slice handed to Install, kept current across deltas).
// InsertRule splices r in at position idx — indices at or above idx shift up
// by one — and DeleteRule removes the rule at idx — indices above it shift
// down. After either op, LookupPacket must answer exactly as a fresh Install
// over the spliced slice would.
//
// Concurrency contract: delta ops are writes and follow the same rule as
// Install — external serialisation, never on a published structure. A handle
// obtained from Clone must copy-on-write before its first delta so the
// mutation is never observable through the other handle; the classifier
// relies on this when it delta-updates a cloned snapshot while readers
// traverse the published one.
type IncrementalPacketEngine interface {
	PacketEngine
	// InsertRule splices r into the installed best-first order at idx.
	InsertRule(r fivetuple.Rule, idx int) error
	// DeleteRule removes the rule at idx of the installed best-first order;
	// r is the rule the caller believes lives there, so implementations can
	// reject a divergent view instead of corrupting the structure.
	DeleteRule(r fivetuple.Rule, idx int) error
	// UpdateCost reports the delta debt since the last full Install.
	UpdateCost() UpdateCost
}

// spliceIn returns a fresh slice with r inserted at idx. It never mutates
// the input's backing array: the caller may share it with a published
// snapshot's rule table.
func spliceIn(rules []fivetuple.Rule, r fivetuple.Rule, idx int) []fivetuple.Rule {
	out := make([]fivetuple.Rule, 0, len(rules)+1)
	out = append(out, rules[:idx]...)
	out = append(out, r)
	return append(out, rules[idx:]...)
}

// spliceOut returns a fresh slice with the rule at idx removed, again
// without touching the shared input.
func spliceOut(rules []fivetuple.Rule, idx int) []fivetuple.Rule {
	out := make([]fivetuple.Rule, 0, len(rules)-1)
	out = append(out, rules[:idx]...)
	return append(out, rules[idx+1:]...)
}

// IncrementalPacketEngineNames returns the sorted names of the registered
// whole-packet engines that declare delta-update support.
func IncrementalPacketEngineNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name, def := range registry {
		if def.PacketFactory != nil && def.Incremental {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
