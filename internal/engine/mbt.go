package engine

import (
	"sdnpc/internal/algo/mbt"
	"sdnpc/internal/hw/memory"
	"sdnpc/internal/label"
)

func init() {
	MustRegister(Definition{
		Name:        "mbt",
		Description: "multi-bit trie: fastest lookup, expanded node storage (paper default)",
		Factory:     newMBTEngine,
		IPCapable:   true,
		Legacy:      memory.SelectMBT,
	})
}

// mbtEngine adapts the Multi-Bit Trie to the FieldEngine interface.
type mbtEngine struct {
	e *mbt.Engine
}

func newMBTEngine(spec Spec) (FieldEngine, error) {
	// The trie's level-2 nodes are "Data 1" of the shared block (Fig. 5);
	// building against a block another engine owns is a configuration error.
	if _, err := viewSharedL2(spec, "mbt"); err != nil {
		return nil, err
	}
	cfg := mbt.SegmentConfig()
	if spec.KeyBits > 0 {
		cfg.KeyBits = spec.KeyBits
	}
	if cfg.KeyBits != 16 {
		cfg = mbt.UniformConfig(cfg.KeyBits, (cfg.KeyBits+5)/6)
	}
	if spec.LabelBits > 0 {
		cfg.LabelEntryBits = spec.LabelBits
	}
	e, err := mbt.New(cfg)
	if err != nil {
		return nil, err
	}
	return &mbtEngine{e: e}, nil
}

func (a *mbtEngine) Insert(v Value, lbl label.Label, priority int) (int, error) {
	if v.Kind != KindPrefix {
		return 0, unsupportedKind("mbt", v.Kind)
	}
	return a.e.Insert(v.Value, v.Bits, lbl, priority)
}

func (a *mbtEngine) Remove(v Value, lbl label.Label) (int, error) {
	if v.Kind != KindPrefix {
		return 0, unsupportedKind("mbt", v.Kind)
	}
	return a.e.Remove(v.Value, v.Bits, lbl)
}

func (a *mbtEngine) Reprioritise(v Value, lbl label.Label, priority int) (int, error) {
	return reprioritise(a, v, lbl, priority)
}

func (a *mbtEngine) Lookup(key uint32) (*label.List, int) { return a.e.Lookup(key) }

func (a *mbtEngine) LookupInto(key uint32, out *label.List) int { return a.e.LookupInto(key, out) }

func (a *mbtEngine) Cost() CostModel {
	levels := a.e.Config().Levels()
	return CostModel{
		LookupCycles:       levels * CyclesPerTrieLevel,
		InitiationInterval: 1,
		WorstCaseAccesses:  a.e.WorstCaseAccesses(),
	}
}

func (a *mbtEngine) Footprint() Footprint {
	return Footprint{NodeBits: a.e.MemoryBits(), LabelListBits: a.e.LabelListBits()}
}

func (a *mbtEngine) ResetStats() { a.e.ResetStats() }

// Clone implements Cloner by deep-copying the trie.
func (a *mbtEngine) Clone() FieldEngine { return &mbtEngine{e: a.e.Clone()} }
