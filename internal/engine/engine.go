// Package engine defines the pluggable single-field lookup-engine API of the
// configurable classification architecture.
//
// The paper's headline claim is that the per-field lookup algorithm is a
// run-time-configurable *signal* (IPalg_s, §III.A, Fig. 5), not a property
// baked into the data path. This package makes that claim structural: every
// single-field lookup structure — the Multi-Bit Trie, the Binary Search
// Tree, the segment trie, the RFC-style equivalence table, the port register
// bank and the protocol LUT — implements one FieldEngine interface, and a
// registry maps engine names to factories so that algorithm selection is
// data ("mbt", "bst", "segtrie", "rfc"), not control flow.
//
// A FieldEngine serves one label dimension: it stores (field value, label,
// priority) triples and answers point lookups with the priority-ordered
// label list of every matching stored value, maintaining the HPML invariant
// of §IV.A. It also exposes the two models the evaluation depends on: the
// clock-cycle cost model of Fig. 3 (lookup latency and pipeline initiation
// interval) and the memory footprint split into algorithm-block node storage
// and Labels-memory storage (§III.D).
package engine

import (
	"errors"
	"fmt"

	"sdnpc/internal/label"
)

// Kind discriminates the flavours of match condition a field value can take.
type Kind uint8

// Match-condition kinds.
const (
	// KindPrefix is a value/length prefix match (IP segments).
	KindPrefix Kind = iota + 1
	// KindRange is an inclusive [Lo, Hi] range (transport ports).
	KindRange
	// KindExact is an exact-value match (protocol).
	KindExact
	// KindWildcard matches every key (wildcard protocol).
	KindWildcard
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindPrefix:
		return "prefix"
	case KindRange:
		return "range"
	case KindExact:
		return "exact"
	case KindWildcard:
		return "wildcard"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is one dimension's match condition, the unit a FieldEngine stores.
// Exactly the fields implied by Kind are meaningful.
type Value struct {
	Kind Kind
	// Value is the prefix or exact value.
	Value uint32
	// Bits is the number of significant leading bits of a prefix.
	Bits uint8
	// Lo and Hi bound an inclusive range.
	Lo, Hi uint32
}

// Prefix returns a prefix match condition.
func Prefix(value uint32, bits uint8) Value {
	return Value{Kind: KindPrefix, Value: value, Bits: bits}
}

// Range returns an inclusive range match condition.
func Range(lo, hi uint32) Value {
	return Value{Kind: KindRange, Lo: lo, Hi: hi}
}

// Exact returns an exact-value match condition.
func Exact(value uint32) Value {
	return Value{Kind: KindExact, Value: value}
}

// Wildcard returns a match-all condition.
func Wildcard() Value {
	return Value{Kind: KindWildcard}
}

// String renders the condition.
func (v Value) String() string {
	switch v.Kind {
	case KindPrefix:
		return fmt.Sprintf("%#x/%d", v.Value, v.Bits)
	case KindRange:
		return fmt.Sprintf("[%d,%d]", v.Lo, v.Hi)
	case KindExact:
		return fmt.Sprintf("=%d", v.Value)
	case KindWildcard:
		return "*"
	default:
		return v.Kind.String()
	}
}

// ErrUnsupportedKind is wrapped by engines rejecting a match-condition kind
// they cannot store (e.g. a range handed to a prefix trie).
var ErrUnsupportedKind = errors.New("engine: unsupported match-condition kind")

func unsupportedKind(engineName string, k Kind) error {
	return fmt.Errorf("%w: %s engine cannot store a %s value", ErrUnsupportedKind, engineName, k)
}

// CostModel is an engine's phase-2 timing contract under the Fig. 3 pipeline
// model, in clock cycles.
type CostModel struct {
	// LookupCycles is the provisioned (worst-case) phase-2 lookup latency.
	LookupCycles int
	// InitiationInterval is the number of cycles between packets the engine
	// can accept; 1 for fully pipelined structures, larger for iterative
	// ones that hold their memory port (the BST).
	InitiationInterval int
	// WorstCaseAccesses is the provisioned per-lookup memory access count
	// (the "Memory Accesses per packet" column of Table VI).
	WorstCaseAccesses int
}

// Footprint is an engine's current memory consumption, split the way §III.D
// splits the block families: node storage in the Algorithm blocks and label
// storage in the Labels blocks.
type Footprint struct {
	// NodeBits is the algorithm-block node storage in use.
	NodeBits int
	// LabelListBits is the Labels-memory storage consumed by the label lists
	// attached to the engine's nodes.
	LabelListBits int
}

// FieldEngine is one pluggable single-field lookup engine.
//
// Concurrency contract (read-only after build): once an engine stops being
// mutated, Lookup, Cost and Footprint must be safe to call from any number
// of goroutines concurrently — Lookup must not modify the stored structure,
// and any internal access counters must be atomic. Insert, Remove,
// Reprioritise and ResetStats still require external serialisation and must
// never run concurrently with Lookup on the same instance. The classifier
// in internal/core guarantees that split by copy-on-write: updates mutate a
// private clone of every engine and atomically publish the finished
// snapshot, so readers only ever see engines that are no longer written.
//
// Engines that defer expensive structure builds to the first Lookup must
// implement Preparer so the classifier can force the build before a
// snapshot is published; engines with mutable state should implement Cloner
// to make snapshot construction cheap (the classifier otherwise falls back
// to rebuilding a fresh engine and replaying the installed rules).
type FieldEngine interface {
	// Insert stores a match condition carrying a label and the priority of
	// the best rule using it, returning the number of engine memory writes.
	// Inserting a stored (condition, label) pair refreshes the priority,
	// keeping the better (smaller) one.
	Insert(v Value, lbl label.Label, priority int) (writes int, err error)
	// Remove deletes a stored (condition, label) pair.
	Remove(v Value, lbl label.Label) (writes int, err error)
	// Reprioritise re-installs a stored pair at a new priority, preserving
	// the HPML ordering invariant. Engines whose label lists are ordered
	// positionally (specificity) rather than by rule priority treat this as
	// a no-op.
	Reprioritise(v Value, lbl label.Label, priority int) (writes int, err error)
	// Lookup returns the priority-ordered label list of every stored
	// condition matching the key and the number of memory accesses
	// performed. The returned list is freshly allocated.
	Lookup(key uint32) (*label.List, int)
	// LookupInto is the allocation-free variant of Lookup: it resets out,
	// fills it with the priority-ordered labels of every stored condition
	// matching the key and returns the number of memory accesses. Once out
	// has grown to the engine's result size, repeated calls perform no heap
	// allocation — the contract the classifier's pooled serving path and the
	// 0 allocs/op CI gate depend on.
	LookupInto(key uint32, out *label.List) int
	// Cost returns the engine's clock-cycle model.
	Cost() CostModel
	// Footprint returns the engine's current memory consumption.
	Footprint() Footprint
	// ResetStats zeroes the engine's access counters without touching the
	// stored conditions.
	ResetStats()
}

// Cloner is implemented by engines that can duplicate themselves cheaply.
// Clone returns an independent deep copy: mutating the copy must never be
// observable through the original (shared immutable internals are fine).
// The classifier's copy-on-write update path prefers Clone over its
// rebuild-and-replay fallback, so every engine that keeps mutable state
// should implement it. All built-in engines do.
type Cloner interface {
	Clone() FieldEngine
}

// Preparer is implemented by engines that defer expensive structure builds
// (e.g. the RFC segment table regenerates its equivalence classes lazily on
// the next Lookup). Prepare forces any pending build so that subsequent
// Lookups are pure reads; the classifier calls it on every engine of a
// snapshot before publishing the snapshot to concurrent readers.
type Preparer interface {
	Prepare()
}

// reprioritise re-installs a stored pair at a new priority through the
// engine's own Remove and Insert — the shared implementation for engines
// whose label lists are ordered by rule priority.
func reprioritise(e FieldEngine, v Value, lbl label.Label, priority int) (int, error) {
	removed, err := e.Remove(v, lbl)
	if err != nil {
		return removed, err
	}
	inserted, err := e.Insert(v, lbl, priority)
	return removed + inserted, err
}

// Cycle-model constants shared by the built-in engines (Fig. 3, §V.B).
const (
	// CyclesPerTrieLevel is the cost of one multi-bit-trie level: one node
	// read plus one pipeline register.
	CyclesPerTrieLevel = 2
	// CyclesPerBSTStep is the cost of one binary-search bisection step.
	CyclesPerBSTStep = 1
	// CyclesPortLookup is the port register bank latency: one parallel
	// compare cycle plus one priority-encode cycle.
	CyclesPortLookup = 2
	// CyclesDirectLookup is the latency of a direct-indexed table (the
	// protocol LUT and the RFC phase-0 segment table).
	CyclesDirectLookup = 1
)
