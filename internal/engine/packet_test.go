package engine_test

import (
	"math/rand"
	"testing"

	"sdnpc/internal/engine"
	"sdnpc/internal/fivetuple"
)

// randomRules generates n five-tuple rules with overlapping fields (short
// prefixes, wide port ranges, wildcard protocols), best-first: the rule at
// index i carries priority i.
func randomRules(rng *rand.Rand, n int) []fivetuple.Rule {
	protos := []uint8{fivetuple.ProtoTCP, fivetuple.ProtoUDP, fivetuple.ProtoICMP}
	out := make([]fivetuple.Rule, 0, n)
	for i := 0; i < n; i++ {
		r := fivetuple.Wildcard(i, fivetuple.ActionForward)
		r.ActionArg = uint32(i + 1)
		if rng.Intn(8) > 0 {
			r.SrcPrefix = fivetuple.Prefix{Addr: fivetuple.IPv4(rng.Uint32()), Len: uint8(rng.Intn(25))}.Canonical()
		}
		if rng.Intn(8) > 0 {
			r.DstPrefix = fivetuple.Prefix{Addr: fivetuple.IPv4(rng.Uint32()), Len: uint8(rng.Intn(25))}.Canonical()
		}
		if rng.Intn(2) == 0 {
			lo := uint16(rng.Intn(1024))
			r.SrcPort = fivetuple.PortRange{Lo: lo, Hi: lo + uint16(rng.Intn(4096))}
		}
		if rng.Intn(2) == 0 {
			lo := uint16(rng.Intn(1024))
			r.DstPort = fivetuple.PortRange{Lo: lo, Hi: lo + uint16(rng.Intn(4096))}
		}
		if rng.Intn(3) > 0 {
			r.Protocol = fivetuple.ExactProtocol(protos[rng.Intn(len(protos))])
		}
		out = append(out, r)
	}
	return out
}

// probeHeaders mixes headers drawn from the rules (guaranteed interesting)
// with uniformly random ones.
func probeHeaders(rng *rand.Rand, rules []fivetuple.Rule, n int) []fivetuple.Header {
	protos := []uint8{fivetuple.ProtoTCP, fivetuple.ProtoUDP, fivetuple.ProtoICMP, fivetuple.ProtoGRE}
	out := make([]fivetuple.Header, 0, n)
	for i := 0; i < n; i++ {
		h := fivetuple.Header{
			SrcIP:    fivetuple.IPv4(rng.Uint32()),
			DstIP:    fivetuple.IPv4(rng.Uint32()),
			SrcPort:  uint16(rng.Intn(1 << 16)),
			DstPort:  uint16(rng.Intn(1 << 16)),
			Protocol: protos[rng.Intn(len(protos))],
		}
		if len(rules) > 0 && i%2 == 0 {
			r := rules[rng.Intn(len(rules))]
			h.SrcIP = r.SrcPrefix.Addr | fivetuple.IPv4(rng.Uint32()&^uint32(r.SrcPrefix.Mask()))
			h.DstIP = r.DstPrefix.Addr | fivetuple.IPv4(rng.Uint32()&^uint32(r.DstPrefix.Mask()))
			h.SrcPort = r.SrcPort.Lo
			h.DstPort = r.DstPort.Hi
			if !r.Protocol.IsWildcard() {
				h.Protocol = r.Protocol.Value
			}
		}
		out = append(out, h)
	}
	return out
}

// checkPacketOracle replays headers against the engine and the linear
// reference classifier, requiring exact HPMR agreement.
func checkPacketOracle(t *testing.T, phase string, eng engine.PacketEngine, rules []fivetuple.Rule, headers []fivetuple.Header) {
	t.Helper()
	oracle := fivetuple.NewRuleSet("oracle", rules)
	for _, h := range headers {
		wantIdx, wantOK := oracle.Classify(h)
		gotIdx, gotOK, accesses := eng.LookupPacket(h)
		if gotOK != wantOK || (wantOK && gotIdx != wantIdx) {
			t.Fatalf("%s: LookupPacket(%s) = (%d, %v), oracle (%d, %v)", phase, h, gotIdx, gotOK, wantIdx, wantOK)
		}
		if len(rules) > 0 && accesses < 1 {
			t.Fatalf("%s: LookupPacket(%s) reported %d accesses", phase, h, accesses)
		}
	}
}

// TestPacketEngineConformance runs every registered whole-packet engine
// through a shared suite: install/lookup agreement with the linear reference
// classifier, re-install (the tier's update primitive), and drain-to-empty.
func TestPacketEngineConformance(t *testing.T) {
	names := engine.PacketEngineNames()
	if len(names) < 3 {
		t.Fatalf("expected at least 3 registered packet engines, got %v", names)
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			eng, err := engine.NewPacket(name, engine.Spec{})
			if err != nil {
				t.Fatalf("NewPacket(%s): %v", name, err)
			}
			rng := rand.New(rand.NewSource(11))

			rulesA := randomRules(rng, 150)
			if err := eng.Install(rulesA); err != nil {
				t.Fatalf("Install: %v", err)
			}
			checkPacketOracle(t, "after install", eng, rulesA, probeHeaders(rng, rulesA, 800))
			if fp := eng.Footprint(); fp.NodeBits <= 0 {
				t.Errorf("installed engine reports %d node bits, want > 0", fp.NodeBits)
			}

			// Re-install over a different set: the tier's update primitive is
			// a full rebuild, and the old rules must be gone.
			rulesB := randomRules(rng, 60)
			if err := eng.Install(rulesB); err != nil {
				t.Fatalf("re-Install: %v", err)
			}
			checkPacketOracle(t, "after re-install", eng, rulesB, probeHeaders(rng, rulesB, 800))

			if err := eng.Install(nil); err != nil {
				t.Fatalf("Install(nil): %v", err)
			}
			for _, h := range probeHeaders(rng, nil, 100) {
				if _, ok, _ := eng.LookupPacket(h); ok {
					t.Fatalf("empty engine matched %s", h)
				}
			}
			if fp := eng.Footprint(); fp.NodeBits != 0 {
				t.Errorf("empty engine reports %d node bits, want 0", fp.NodeBits)
			}
		})
	}
}

// TestPacketEngineCloneIndependence verifies the Clone contract the
// classifier's clone-mutate-swap update path depends on: after cloning,
// re-installing through either handle is never observable through the other.
func TestPacketEngineCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, name := range engine.PacketEngineNames() {
		t.Run(name, func(t *testing.T) {
			eng, err := engine.NewPacket(name, engine.Spec{})
			if err != nil {
				t.Fatalf("NewPacket(%s): %v", name, err)
			}
			rulesA := randomRules(rng, 80)
			if err := eng.Install(rulesA); err != nil {
				t.Fatalf("Install: %v", err)
			}
			clone := eng.Clone()
			headers := probeHeaders(rng, rulesA, 400)

			// Rebuild the original over a different set; the clone must keep
			// answering for the original installation.
			rulesB := randomRules(rng, 40)
			if err := eng.Install(rulesB); err != nil {
				t.Fatalf("Install on original: %v", err)
			}
			checkPacketOracle(t, "clone after original rebuilt", clone, rulesA, headers)
			checkPacketOracle(t, "original after rebuild", eng, rulesB, probeHeaders(rng, rulesB, 400))

			// And the reverse: rebuilding the clone must not disturb the
			// original.
			if err := clone.Install(nil); err != nil {
				t.Fatalf("Install(nil) on clone: %v", err)
			}
			checkPacketOracle(t, "original after clone drained", eng, rulesB, probeHeaders(rng, rulesB, 400))
		})
	}
}

// TestPacketEngineCostModels checks that every packet engine publishes a
// sane cost model before and after install.
func TestPacketEngineCostModels(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rules := randomRules(rng, 100)
	for _, name := range engine.PacketEngineNames() {
		eng, err := engine.NewPacket(name, engine.Spec{})
		if err != nil {
			t.Fatalf("NewPacket(%s): %v", name, err)
		}
		for _, phase := range []string{"empty", "installed"} {
			cost := eng.Cost()
			if cost.LookupCycles < 1 || cost.InitiationInterval < 1 || cost.WorstCaseAccesses < 1 {
				t.Errorf("%s (%s): implausible cost model %+v", name, phase, cost)
			}
			if cost.InitiationInterval > cost.LookupCycles {
				t.Errorf("%s (%s): initiation interval %d exceeds latency %d",
					name, phase, cost.InitiationInterval, cost.LookupCycles)
			}
			if phase == "empty" {
				if err := eng.Install(rules); err != nil {
					t.Fatalf("Install: %v", err)
				}
			}
		}
	}
}

// TestPacketRegistryTiering checks the two tiers stay distinct in the shared
// registry.
func TestPacketRegistryTiering(t *testing.T) {
	for _, want := range []string{"rfc-full", "dcfl", "hypercuts"} {
		def, ok := engine.Get(want)
		if !ok {
			t.Errorf("packet engine %q not registered", want)
			continue
		}
		if def.PacketFactory == nil || def.Factory != nil {
			t.Errorf("%q should be a packet-tier definition", want)
		}
		for _, ip := range engine.IPEngineNames() {
			if ip == want {
				t.Errorf("%q must not be listed as an IP field engine", want)
			}
		}
	}
	if _, err := engine.NewPacket("mbt", engine.Spec{}); err == nil {
		t.Error("building a field engine through NewPacket should fail")
	}
	if _, err := engine.NewPacket("no-such-engine", engine.Spec{}); err == nil {
		t.Error("building an unknown packet engine should fail")
	}
	if err := engine.Register(engine.Definition{
		Name:          "x-both-tiers",
		Factory:       func(engine.Spec) (engine.FieldEngine, error) { return nil, nil },
		PacketFactory: func(engine.Spec) (engine.PacketEngine, error) { return nil, nil },
	}); err == nil {
		t.Error("registering both factories should fail")
	}

	selectable := make(map[string]bool)
	for _, name := range engine.SelectableNames() {
		selectable[name] = true
	}
	for _, name := range append(engine.IPEngineNames(), engine.PacketEngineNames()...) {
		if !selectable[name] {
			t.Errorf("%q missing from SelectableNames", name)
		}
	}
	for _, notSelectable := range []string{"portreg", "lut"} {
		if selectable[notSelectable] {
			t.Errorf("%q should not be selectable", notSelectable)
		}
	}
}
