package engine

import (
	"fmt"
	"slices"

	"sdnpc/internal/algo/dcfl"
	"sdnpc/internal/fivetuple"
)

func init() {
	MustRegister(Definition{
		Name:          "dcfl",
		Description:   "Distributed Crossproducting of Field Labels: parallel field searches + aggregation-network probes (Table I)",
		PacketFactory: newDCFLEngine,
		Incremental:   true,
		// The aggregation network enumerates every surviving combination,
		// so multi-match comes for free; the range-based field searches
		// cannot represent IPv6/VLAN/flag or partially masked dimensions.
		Dims: fivetuple.DimMultiAction,
	})
}

// dcflEngine adapts the DCFL classifier (Taylor & Turner, INFOCOM 2005) to
// the PacketEngine tier: independent per-field searches feed an aggregation
// network that probes only the label combinations actually present in the
// rule set. Lookup cost tracks the matching label sets (small), memory cost
// the combination tables (large) — the Table I decomposition trade-off.
//
// The engine is incremental: DCFL decomposes the rule set per field, so a
// delta update labels five field values and edits one combination entry per
// aggregation node (see dcfl delta.go). Deletes leave stale entries behind;
// the tracked garbage surfaces through UpdateCost.Degradation so the
// classifier's policy layer can amortise it with a rebuild.
type dcflEngine struct {
	rules []fivetuple.Rule
	c     *dcfl.Classifier
	// owned marks the tables as private to this handle. Clone clears it;
	// the first delta op on an un-owned handle deep-copies the tables first,
	// so a delta is never observable through the cloned-from handle.
	owned bool
}

func newDCFLEngine(Spec) (PacketEngine, error) { return &dcflEngine{}, nil }

func (e *dcflEngine) Install(rules []fivetuple.Rule) error {
	if len(rules) == 0 {
		e.rules, e.c, e.owned = nil, nil, false
		return nil
	}
	c, err := dcfl.Build(fivetuple.NewRuleSet("dcfl", rules))
	if err != nil {
		return err
	}
	e.rules = rules
	e.c = c
	e.owned = true
	return nil
}

// own makes the underlying tables private to this handle, deep-copying them
// on the first delta after a Clone.
func (e *dcflEngine) own() {
	if !e.owned {
		e.c = e.c.Clone()
		e.owned = true
	}
}

func (e *dcflEngine) InsertRule(r fivetuple.Rule, idx int) error {
	if e.c == nil {
		return fmt.Errorf("dcfl: no built tables to delta-update (install first)")
	}
	e.own()
	if err := e.c.InsertAt(r, idx); err != nil {
		return err
	}
	e.rules = spliceIn(e.rules, r, idx)
	return nil
}

func (e *dcflEngine) DeleteRule(r fivetuple.Rule, idx int) error {
	if e.c == nil {
		return fmt.Errorf("dcfl: no built tables to delta-update (install first)")
	}
	if idx < 0 || idx >= len(e.rules) || e.rules[idx].Priority != r.Priority {
		return fmt.Errorf("dcfl: delete index %d does not hold a priority-%d rule", idx, r.Priority)
	}
	e.own()
	if err := e.c.DeleteAt(idx); err != nil {
		return err
	}
	e.rules = spliceOut(e.rules, idx)
	return nil
}

func (e *dcflEngine) UpdateCost() UpdateCost {
	if e.c == nil {
		return UpdateCost{}
	}
	ds := e.c.DeltaStats()
	return UpdateCost{Deltas: ds.Deltas, Writes: ds.Writes, Degradation: e.c.Degradation()}
}

func (e *dcflEngine) LookupPacket(h fivetuple.Header) (int, bool, int) {
	if e.c == nil {
		return 0, false, 0
	}
	return e.c.Classify(h)
}

// LookupPacketAll enumerates every matching rule in priority order. The
// final-table spans are disjoint but their concatenation is unordered across
// combinations (and delta churn reorders it further), so the collected
// indices are sorted before the terminal-rule truncation — unsorted spans
// would otherwise truncate the action chain at the wrong rule.
func (e *dcflEngine) LookupPacketAll(h fivetuple.Header, dst []int) ([]int, int) {
	if e.c == nil {
		return dst, 0
	}
	start := len(dst)
	dst, accesses := e.c.ClassifyAll(h, dst)
	slices.Sort(dst[start:])
	for i := start; i < len(dst); i++ {
		if !e.rules[dst[i]].NonTerminating {
			return dst[:i+1], accesses
		}
	}
	return dst, accesses
}

// dcflProvisionedAccesses is the provisioned per-packet access budget of the
// aggregation network: the two 8-node prefix walks, two 8-step range-tree
// descents and the protocol table (25 field-search accesses), plus 4 probes
// per aggregation node (the DCFL paper's observation that the matching label
// sets stay small), 16 probes across the four nodes.
const dcflProvisionedAccesses = 25 + 16

func (e *dcflEngine) Cost() CostModel {
	// The aggregation network is distributed: every node is an independent
	// memory, so packets pipeline through it with initiation interval 1.
	return CostModel{
		LookupCycles:       dcflProvisionedAccesses,
		InitiationInterval: 1,
		WorstCaseAccesses:  dcflProvisionedAccesses,
	}
}

func (e *dcflEngine) Footprint() Footprint {
	if e.c == nil {
		return Footprint{}
	}
	return Footprint{NodeBits: e.c.MemoryBits()}
}

func (e *dcflEngine) ResetStats() {
	if e.c != nil {
		e.c.ResetStats()
	}
}

// Clone shares the built tables; a later Install on either handle replaces
// that handle's pointer only, and a later delta op copy-on-writes the
// tables (own), so neither handle can observe the other's mutations.
func (e *dcflEngine) Clone() PacketEngine {
	cp := *e
	cp.owned = false
	return &cp
}
