package engine

import (
	"sdnpc/internal/algo/dcfl"
	"sdnpc/internal/fivetuple"
)

func init() {
	MustRegister(Definition{
		Name:          "dcfl",
		Description:   "Distributed Crossproducting of Field Labels: parallel field searches + aggregation-network probes (Table I)",
		PacketFactory: newDCFLEngine,
	})
}

// dcflEngine adapts the DCFL classifier (Taylor & Turner, INFOCOM 2005) to
// the PacketEngine tier: independent per-field searches feed an aggregation
// network that probes only the label combinations actually present in the
// rule set. Lookup cost tracks the matching label sets (small), memory cost
// the combination tables (large) — the Table I decomposition trade-off.
type dcflEngine struct {
	rules []fivetuple.Rule
	c     *dcfl.Classifier
}

func newDCFLEngine(Spec) (PacketEngine, error) { return &dcflEngine{}, nil }

func (e *dcflEngine) Install(rules []fivetuple.Rule) error {
	if len(rules) == 0 {
		e.rules, e.c = nil, nil
		return nil
	}
	c, err := dcfl.Build(fivetuple.NewRuleSet("dcfl", rules))
	if err != nil {
		return err
	}
	e.rules = rules
	e.c = c
	return nil
}

func (e *dcflEngine) LookupPacket(h fivetuple.Header) (int, bool, int) {
	if e.c == nil {
		return 0, false, 0
	}
	return e.c.Classify(h)
}

// dcflProvisionedAccesses is the provisioned per-packet access budget of the
// aggregation network: the two 8-node prefix walks, two 8-step range-tree
// descents and the protocol table (25 field-search accesses), plus 4 probes
// per aggregation node (the DCFL paper's observation that the matching label
// sets stay small), 16 probes across the four nodes.
const dcflProvisionedAccesses = 25 + 16

func (e *dcflEngine) Cost() CostModel {
	// The aggregation network is distributed: every node is an independent
	// memory, so packets pipeline through it with initiation interval 1.
	return CostModel{
		LookupCycles:       dcflProvisionedAccesses,
		InitiationInterval: 1,
		WorstCaseAccesses:  dcflProvisionedAccesses,
	}
}

func (e *dcflEngine) Footprint() Footprint {
	if e.c == nil {
		return Footprint{}
	}
	return Footprint{NodeBits: e.c.MemoryBits()}
}

func (e *dcflEngine) ResetStats() {
	if e.c != nil {
		e.c.ResetStats()
	}
}

// Clone shares the immutable built tables; a later Install on either handle
// replaces that handle's pointer only.
func (e *dcflEngine) Clone() PacketEngine {
	cp := *e
	return &cp
}
