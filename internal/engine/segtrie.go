package engine

import (
	"fmt"

	"sdnpc/internal/algo/segtrie"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/label"
)

// segtrieLevels is the trie depth used when the segment trie serves an IP
// segment (the Table I "Option 1" port-trie geometry).
const segtrieLevels = 4

func init() {
	MustRegister(Definition{
		Name:        "segtrie",
		Description: "segment trie: range-to-prefix expansion over a fixed-stride trie (Table I options)",
		Factory:     newSegtrieEngine,
		IPCapable:   true,
	})
}

// segtrieEngine adapts the segment trie to the FieldEngine interface. The
// underlying engine stores inclusive 16-bit ranges; prefixes are converted
// to their (always aligned) range, so the adapter serves both the IP-segment
// and the port dimensions.
type segtrieEngine struct {
	e *segtrie.Engine
}

func newSegtrieEngine(spec Spec) (FieldEngine, error) {
	if spec.KeyBits != 0 && spec.KeyBits != segtrie.PortBits {
		return nil, fmt.Errorf("segtrie engine serves %d-bit keys, not %d", segtrie.PortBits, spec.KeyBits)
	}
	e, err := segtrie.New(segtrieLevels)
	if err != nil {
		return nil, err
	}
	return &segtrieEngine{e: e}, nil
}

// rangeOf converts a match condition into the inclusive 16-bit range the
// segment trie stores.
func (a *segtrieEngine) rangeOf(v Value) (fivetuple.PortRange, error) {
	switch v.Kind {
	case KindPrefix:
		if int(v.Bits) > segtrie.PortBits {
			return fivetuple.PortRange{}, fmt.Errorf("segtrie: prefix length %d exceeds key width %d", v.Bits, segtrie.PortBits)
		}
		span := uint32(1) << (segtrie.PortBits - int(v.Bits))
		lo := v.Value &^ (span - 1)
		return fivetuple.PortRange{Lo: uint16(lo), Hi: uint16(lo + span - 1)}, nil
	case KindRange:
		return fivetuple.PortRange{Lo: uint16(v.Lo), Hi: uint16(v.Hi)}, nil
	case KindExact:
		return fivetuple.PortRange{Lo: uint16(v.Value), Hi: uint16(v.Value)}, nil
	default:
		return fivetuple.PortRange{}, unsupportedKind("segtrie", v.Kind)
	}
}

func (a *segtrieEngine) Insert(v Value, lbl label.Label, priority int) (int, error) {
	rng, err := a.rangeOf(v)
	if err != nil {
		return 0, err
	}
	return a.e.Insert(rng, lbl, priority)
}

func (a *segtrieEngine) Remove(v Value, lbl label.Label) (int, error) {
	rng, err := a.rangeOf(v)
	if err != nil {
		return 0, err
	}
	return a.e.Remove(rng, lbl)
}

func (a *segtrieEngine) Reprioritise(v Value, lbl label.Label, priority int) (int, error) {
	return reprioritise(a, v, lbl, priority)
}

func (a *segtrieEngine) Lookup(key uint32) (*label.List, int) {
	return a.e.Lookup(uint16(key))
}

func (a *segtrieEngine) LookupInto(key uint32, out *label.List) int {
	return a.e.LookupInto(uint16(key), out)
}

func (a *segtrieEngine) Cost() CostModel {
	return CostModel{
		LookupCycles:       a.e.Levels() * CyclesPerTrieLevel,
		InitiationInterval: 1,
		WorstCaseAccesses:  a.e.WorstCaseAccesses(),
	}
}

func (a *segtrieEngine) Footprint() Footprint {
	return Footprint{NodeBits: a.e.MemoryBits(), LabelListBits: a.e.LabelListBits()}
}

func (a *segtrieEngine) ResetStats() { a.e.ResetStats() }

// Clone implements Cloner by deep-copying the segment trie.
func (a *segtrieEngine) Clone() FieldEngine { return &segtrieEngine{e: a.e.Clone()} }
