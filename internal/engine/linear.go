package engine

import (
	"fmt"

	"sdnpc/internal/fivetuple"
)

func init() {
	MustRegister(Definition{
		Name:          "linear",
		Description:   "Priority-ordered linear scan: serves every dimension (IPv6/VLAN/TCP-flags/masked-proto/multi-action), O(n) lookup",
		PacketFactory: newLinearEngine,
		Incremental:   true,
		// The scan evaluates Rule.Matches directly, so every dimension the
		// rule model can express is served — this is the capability ceiling
		// the conformance suite measures the specialised engines against.
		Dims: fivetuple.AllDims,
	})
}

// linearEngine is the whole-packet form of the reference classifier: a
// priority-ordered scan over the installed rules. It is the only engine
// serving the full extension-dimension set, trading O(n) lookup for complete
// generality — the honest baseline a generalized flow table falls back to
// when no precomputed structure can represent its rules.
type linearEngine struct {
	rules []fivetuple.Rule
	// installed distinguishes a built (possibly empty) scan from a
	// never-installed engine: deltas against the latter must fail so the
	// classifier falls back to a full rebuild.
	installed bool
	deltas    int
}

func newLinearEngine(Spec) (PacketEngine, error) { return &linearEngine{}, nil }

func (e *linearEngine) Install(rules []fivetuple.Rule) error {
	e.rules = rules
	e.installed = true
	e.deltas = 0
	return nil
}

func (e *linearEngine) InsertRule(r fivetuple.Rule, idx int) error {
	if !e.installed {
		return fmt.Errorf("linear: no installed scan to delta-update (install first)")
	}
	if idx < 0 || idx > len(e.rules) {
		return fmt.Errorf("linear: insert index %d out of range [0,%d]", idx, len(e.rules))
	}
	e.rules = spliceIn(e.rules, r, idx)
	e.deltas++
	return nil
}

func (e *linearEngine) DeleteRule(r fivetuple.Rule, idx int) error {
	if !e.installed {
		return fmt.Errorf("linear: no installed scan to delta-update (install first)")
	}
	if idx < 0 || idx >= len(e.rules) || e.rules[idx].Priority != r.Priority {
		return fmt.Errorf("linear: delete index %d does not hold a priority-%d rule", idx, r.Priority)
	}
	e.rules = spliceOut(e.rules, idx)
	e.deltas++
	return nil
}

// UpdateCost never reports degradation: a splice leaves the scan exactly as a
// fresh Install would, so no amortising rebuild is ever warranted.
func (e *linearEngine) UpdateCost() UpdateCost {
	return UpdateCost{Deltas: e.deltas, Writes: e.deltas}
}

func (e *linearEngine) LookupPacket(h fivetuple.Header) (int, bool, int) {
	accesses := 0
	for i := range e.rules {
		accesses++
		if e.rules[i].Matches(h) {
			return i, true, accesses
		}
	}
	return 0, false, accesses
}

// LookupPacketAll scans best-first, so matches append in priority order and
// collection stops naturally at the first terminating match.
func (e *linearEngine) LookupPacketAll(h fivetuple.Header, dst []int) ([]int, int) {
	accesses := 0
	for i := range e.rules {
		accesses++
		if !e.rules[i].Matches(h) {
			continue
		}
		dst = append(dst, i)
		if !e.rules[i].NonTerminating {
			break
		}
	}
	return dst, accesses
}

func (e *linearEngine) Cost() CostModel {
	n := len(e.rules)
	if n == 0 {
		n = 1
	}
	// The scan walks one rule memory sequentially: n accesses worst case,
	// and the engine cannot accept a new packet until the scan finishes.
	return CostModel{LookupCycles: n, InitiationInterval: n, WorstCaseAccesses: n}
}

func (e *linearEngine) Footprint() Footprint {
	// Each stored rule is ~176 bits of IPv4 match data plus 288 bits for the
	// IPv6 prefixes and 48 bits of VLAN/flag/metadata extensions.
	return Footprint{NodeBits: len(e.rules) * (176 + 288 + 48)}
}

func (e *linearEngine) ResetStats() {}

// Clone shares the installed slice; Install and the delta ops replace the
// slice (spliceIn/spliceOut never mutate the shared backing array), so
// neither handle can observe the other's mutations.
func (e *linearEngine) Clone() PacketEngine {
	cp := *e
	return &cp
}
