package engine

import (
	"fmt"
	"slices"

	"sdnpc/internal/algo/hypercuts"
	"sdnpc/internal/fivetuple"
)

func init() {
	MustRegister(Definition{
		Name:          "hypercuts",
		Description:   "HyperCuts decision tree: multi-dimensional cuts + linear leaf scan, smallest memory (Table I)",
		PacketFactory: newHyperCutsEngine,
		Incremental:   true,
		// One leaf holds every rule overlapping the lookup point, so a full
		// leaf scan enumerates all matches; the 5-dimension cut geometry
		// cannot represent IPv6/VLAN/flag or partially masked dimensions.
		Dims: fivetuple.DimMultiAction,
	})
}

// hypercutsEngine adapts the HyperCuts decision tree (Singh et al., SIGCOMM
// 2003) to the PacketEngine tier. Lookup walks one tree path and scans the
// leaf linearly — the slowest lookups of Table I but by far the smallest
// memory, which is the corner of the trade-off space this tier covers.
//
// The engine is incremental: the cut structure partitions the header space
// independently of the rule list, so a delta update only edits the leaf rule
// lists (see hypercuts delta.go). Inserts can overfill leaves; the tracked
// overflow surfaces through UpdateCost.Degradation so the classifier's
// policy layer can amortise it with a rebuild.
type hypercutsEngine struct {
	cfg   hypercuts.Config
	rules []fivetuple.Rule
	c     *hypercuts.Classifier
	// owned marks the structure as private to this handle. Clone clears it;
	// the first delta op on an un-owned handle deep-copies the tree first,
	// so a delta is never observable through the cloned-from handle.
	owned bool
}

func newHyperCutsEngine(Spec) (PacketEngine, error) {
	return &hypercutsEngine{cfg: hypercuts.DefaultConfig()}, nil
}

func (e *hypercutsEngine) Install(rules []fivetuple.Rule) error {
	if len(rules) == 0 {
		e.rules, e.c, e.owned = nil, nil, false
		return nil
	}
	c, err := hypercuts.Build(fivetuple.NewRuleSet("hypercuts", rules), e.cfg)
	if err != nil {
		return err
	}
	e.rules = rules
	e.c = c
	e.owned = true
	return nil
}

// own makes the underlying tree private to this handle, deep-copying it on
// the first delta after a Clone.
func (e *hypercutsEngine) own() {
	if !e.owned {
		e.c = e.c.Clone()
		e.owned = true
	}
}

func (e *hypercutsEngine) InsertRule(r fivetuple.Rule, idx int) error {
	if e.c == nil {
		return fmt.Errorf("hypercuts: no built tree to delta-update (install first)")
	}
	e.own()
	if err := e.c.InsertAt(r, idx); err != nil {
		return err
	}
	e.rules = spliceIn(e.rules, r, idx)
	return nil
}

func (e *hypercutsEngine) DeleteRule(r fivetuple.Rule, idx int) error {
	if e.c == nil {
		return fmt.Errorf("hypercuts: no built tree to delta-update (install first)")
	}
	if idx < 0 || idx >= len(e.rules) || e.rules[idx].Priority != r.Priority {
		return fmt.Errorf("hypercuts: delete index %d does not hold a priority-%d rule", idx, r.Priority)
	}
	e.own()
	if err := e.c.DeleteAt(idx); err != nil {
		return err
	}
	e.rules = spliceOut(e.rules, idx)
	return nil
}

func (e *hypercutsEngine) UpdateCost() UpdateCost {
	if e.c == nil {
		return UpdateCost{}
	}
	ds := e.c.DeltaStats()
	return UpdateCost{Deltas: ds.Deltas, Writes: ds.Writes, Degradation: e.c.Degradation()}
}

func (e *hypercutsEngine) LookupPacket(h fivetuple.Header) (int, bool, int) {
	if e.c == nil {
		return 0, false, 0
	}
	return e.c.Classify(h)
}

// LookupPacketAll enumerates every matching rule in priority order: the leaf
// spans stay sorted ascending through delta churn, so the scan already yields
// best-first order and only the terminal-rule truncation remains. The
// defensive sort guards the ordering contract against slack-padded span
// relocations regardless.
func (e *hypercutsEngine) LookupPacketAll(h fivetuple.Header, dst []int) ([]int, int) {
	if e.c == nil {
		return dst, 0
	}
	start := len(dst)
	dst, accesses := e.c.ClassifyAll(h, dst)
	slices.Sort(dst[start:])
	for i := start; i < len(dst); i++ {
		if !e.rules[dst[i]].NonTerminating {
			return dst[:i+1], accesses
		}
	}
	return dst, accesses
}

func (e *hypercutsEngine) Cost() CostModel {
	if e.c == nil {
		return CostModel{LookupCycles: 1, InitiationInterval: 1, WorstCaseAccesses: 1}
	}
	// Worst case: the deepest tree path, the leaf header read and a full
	// scan of the fullest leaf (binth after a clean build; delta inserts can
	// overfill a leaf past it). The walk is iterative over one memory, so
	// the engine cannot accept a new packet until the current one leaves.
	worstLeaf := e.cfg.Binth
	if occ := e.c.MaxLeafOccupancy(); occ > worstLeaf {
		worstLeaf = occ
	}
	accesses := e.c.Depth() + 1 + 1 + worstLeaf
	return CostModel{
		LookupCycles:       accesses,
		InitiationInterval: accesses,
		WorstCaseAccesses:  accesses,
	}
}

func (e *hypercutsEngine) Footprint() Footprint {
	if e.c == nil {
		return Footprint{}
	}
	return Footprint{NodeBits: e.c.MemoryBits()}
}

func (e *hypercutsEngine) ResetStats() {
	if e.c != nil {
		e.c.ResetStats()
	}
}

// Clone shares the built tree; a later Install on either handle replaces
// that handle's pointer only, and a later delta op copy-on-writes the tree
// (own), so neither handle can observe the other's mutations.
func (e *hypercutsEngine) Clone() PacketEngine {
	cp := *e
	cp.owned = false
	return &cp
}
