package engine

import (
	"sdnpc/internal/algo/hypercuts"
	"sdnpc/internal/fivetuple"
)

func init() {
	MustRegister(Definition{
		Name:          "hypercuts",
		Description:   "HyperCuts decision tree: multi-dimensional cuts + linear leaf scan, smallest memory (Table I)",
		PacketFactory: newHyperCutsEngine,
	})
}

// hypercutsEngine adapts the HyperCuts decision tree (Singh et al., SIGCOMM
// 2003) to the PacketEngine tier. Lookup walks one tree path and scans the
// leaf linearly — the slowest lookups of Table I but by far the smallest
// memory, which is the corner of the trade-off space this tier covers.
type hypercutsEngine struct {
	cfg   hypercuts.Config
	rules []fivetuple.Rule
	c     *hypercuts.Classifier
}

func newHyperCutsEngine(Spec) (PacketEngine, error) {
	return &hypercutsEngine{cfg: hypercuts.DefaultConfig()}, nil
}

func (e *hypercutsEngine) Install(rules []fivetuple.Rule) error {
	if len(rules) == 0 {
		e.rules, e.c = nil, nil
		return nil
	}
	c, err := hypercuts.Build(fivetuple.NewRuleSet("hypercuts", rules), e.cfg)
	if err != nil {
		return err
	}
	e.rules = rules
	e.c = c
	return nil
}

func (e *hypercutsEngine) LookupPacket(h fivetuple.Header) (int, bool, int) {
	if e.c == nil {
		return 0, false, 0
	}
	return e.c.Classify(h)
}

func (e *hypercutsEngine) Cost() CostModel {
	if e.c == nil {
		return CostModel{LookupCycles: 1, InitiationInterval: 1, WorstCaseAccesses: 1}
	}
	// Worst case: the deepest tree path, the leaf header read and a full
	// binth-rule leaf scan. The walk is iterative over one memory, so the
	// engine cannot accept a new packet until the current one leaves.
	accesses := e.c.Depth() + 1 + 1 + e.cfg.Binth
	return CostModel{
		LookupCycles:       accesses,
		InitiationInterval: accesses,
		WorstCaseAccesses:  accesses,
	}
}

func (e *hypercutsEngine) Footprint() Footprint {
	if e.c == nil {
		return Footprint{}
	}
	return Footprint{NodeBits: e.c.MemoryBits()}
}

func (e *hypercutsEngine) ResetStats() {
	if e.c != nil {
		e.c.ResetStats()
	}
}

// Clone shares the immutable built tree; a later Install on either handle
// replaces that handle's pointer only.
func (e *hypercutsEngine) Clone() PacketEngine {
	cp := *e
	return &cp
}
