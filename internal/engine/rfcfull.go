package engine

import (
	"sdnpc/internal/algo/rfc"
	"sdnpc/internal/fivetuple"
)

func init() {
	MustRegister(Definition{
		Name:          "rfc-full",
		Description:   "full Recursive Flow Classification: constant 13-indexing lookup, largest precomputed tables (Table I)",
		PacketFactory: newRFCFullEngine,
	})
}

// rfcFullEngine adapts the full multi-field RFC classifier (Gupta & McKeown,
// SIGCOMM'99) to the PacketEngine tier. The cross-product tables are
// precomputed over the whole rule set, so Install is a full rebuild; the
// pay-off is the fastest whole-packet lookup of Table I — a constant 13
// table indexings regardless of rule count.
type rfcFullEngine struct {
	rules []fivetuple.Rule
	c     *rfc.Classifier
}

func newRFCFullEngine(Spec) (PacketEngine, error) { return &rfcFullEngine{}, nil }

func (e *rfcFullEngine) Install(rules []fivetuple.Rule) error {
	if len(rules) == 0 {
		e.rules, e.c = nil, nil
		return nil
	}
	c, err := rfc.Build(fivetuple.NewRuleSet("rfc-full", rules))
	if err != nil {
		return err
	}
	e.rules = rules
	e.c = c
	return nil
}

func (e *rfcFullEngine) LookupPacket(h fivetuple.Header) (int, bool, int) {
	if e.c == nil {
		return 0, false, 0
	}
	return e.c.Classify(h)
}

func (e *rfcFullEngine) Cost() CostModel {
	accesses := 13
	if e.c != nil {
		accesses = e.c.AccessesPerLookup()
	}
	// Each phase indexes its tables independently, so the phases pipeline
	// with a new packet every cycle.
	return CostModel{LookupCycles: accesses, InitiationInterval: 1, WorstCaseAccesses: accesses}
}

func (e *rfcFullEngine) Footprint() Footprint {
	if e.c == nil {
		return Footprint{}
	}
	return Footprint{NodeBits: e.c.MemoryBits()}
}

func (e *rfcFullEngine) ResetStats() {
	if e.c != nil {
		e.c.ResetStats()
	}
}

// Clone shares the immutable built tables; a later Install on either handle
// replaces that handle's pointer only.
func (e *rfcFullEngine) Clone() PacketEngine {
	cp := *e
	return &cp
}
