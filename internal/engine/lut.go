package engine

import (
	"sdnpc/internal/algo/lut"
	"sdnpc/internal/label"
)

func init() {
	MustRegister(Definition{
		Name:        "lut",
		Description: "direct-indexed protocol look-up table (§IV.C), exact-first label order",
		Factory:     newLUTEngine,
	})
}

// lutEngine adapts the protocol look-up table to the FieldEngine interface.
// The table orders its (at most two) labels exact-first (§IV.C.1), not by
// rule priority, so Reprioritise is a structural no-op.
type lutEngine struct {
	t *lut.Table
}

func newLUTEngine(spec Spec) (FieldEngine, error) {
	labelBits := spec.LabelBits
	if labelBits == 0 {
		labelBits = 2
	}
	t, err := lut.New(labelBits)
	if err != nil {
		return nil, err
	}
	return &lutEngine{t: t}, nil
}

func (a *lutEngine) Insert(v Value, lbl label.Label, priority int) (int, error) {
	switch v.Kind {
	case KindExact:
		return a.t.InsertExact(uint8(v.Value), lbl, priority), nil
	case KindWildcard:
		return a.t.InsertWildcard(lbl, priority), nil
	default:
		return 0, unsupportedKind("lut", v.Kind)
	}
}

func (a *lutEngine) Remove(v Value, lbl label.Label) (int, error) {
	switch v.Kind {
	case KindExact:
		return a.t.RemoveExact(uint8(v.Value))
	case KindWildcard:
		return a.t.RemoveWildcard()
	default:
		return 0, unsupportedKind("lut", v.Kind)
	}
}

func (a *lutEngine) Reprioritise(v Value, lbl label.Label, priority int) (int, error) {
	// Protocol labels are ordered exact-first regardless of rule priority.
	return 0, nil
}

func (a *lutEngine) Lookup(key uint32) (*label.List, int) {
	return a.t.Lookup(uint8(key))
}

func (a *lutEngine) LookupInto(key uint32, out *label.List) int {
	return a.t.LookupInto(uint8(key), out)
}

func (a *lutEngine) Cost() CostModel {
	return CostModel{
		LookupCycles:       CyclesDirectLookup,
		InitiationInterval: 1,
		WorstCaseAccesses:  1,
	}
}

func (a *lutEngine) Footprint() Footprint {
	return Footprint{NodeBits: a.t.MemoryBits()}
}

func (a *lutEngine) ResetStats() { a.t.ResetStats() }

// Clone implements Cloner by copying the table slots.
func (a *lutEngine) Clone() FieldEngine { return &lutEngine{t: a.t.Clone()} }
