package engine_test

import (
	"math/rand"
	"sort"
	"testing"

	"sdnpc/internal/engine"
	"sdnpc/internal/label"
)

// storedPrefix is one (prefix, label, priority) triple held by the oracle.
type storedPrefix struct {
	value    uint32
	bits     uint8
	lbl      label.Label
	priority int
}

func (p storedPrefix) matches(key uint32) bool {
	if p.bits == 0 {
		return true
	}
	shift := 16 - uint32(p.bits)
	return key>>shift == p.value>>shift
}

// oracleLookup is the naive linear-scan reference: the labels of every
// stored prefix matching the key, sorted by ascending priority.
func oracleLookup(stored []storedPrefix, key uint32) []label.Label {
	matches := make([]storedPrefix, 0, 4)
	for _, p := range stored {
		if p.matches(key) {
			matches = append(matches, p)
		}
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i].priority < matches[j].priority })
	out := make([]label.Label, len(matches))
	for i, p := range matches {
		out[i] = p.lbl
	}
	return out
}

// randomPrefixes generates n distinct 16-bit prefixes with unique labels and
// unique priorities (unique priorities make the HPML order deterministic).
func randomPrefixes(rng *rand.Rand, n int) []storedPrefix {
	seen := make(map[[2]uint32]bool)
	out := make([]storedPrefix, 0, n)
	for len(out) < n {
		bits := uint8(rng.Intn(17))
		value := uint32(rng.Intn(1 << 16))
		if bits < 16 {
			value &^= 1<<(16-uint32(bits)) - 1
		}
		k := [2]uint32{value, uint32(bits)}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, storedPrefix{
			value:    value,
			bits:     bits,
			lbl:      label.Label(len(out) + 1),
			priority: len(out),
		})
	}
	return out
}

func sameLabels(got *label.List, want []label.Label) bool {
	if got.Len() != len(want) {
		return false
	}
	gotSet := make(map[label.Label]bool, got.Len())
	for _, l := range got.Labels() {
		gotSet[l] = true
	}
	for _, l := range want {
		if !gotSet[l] {
			return false
		}
	}
	return true
}

// TestIPEngineConformance runs every registered IP-capable engine through a
// shared suite: insert/lookup/remove round-trip against a naive linear-scan
// oracle on a random prefix set, HPML ordering, reprioritisation, and
// drain-to-empty.
func TestIPEngineConformance(t *testing.T) {
	names := engine.IPEngineNames()
	if len(names) < 4 {
		t.Fatalf("expected at least 4 registered IP engines, got %v", names)
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			eng, err := engine.New(name, engine.Spec{KeyBits: 16, LabelBits: 13})
			if err != nil {
				t.Fatalf("New(%s): %v", name, err)
			}
			rng := rand.New(rand.NewSource(42))
			stored := randomPrefixes(rng, 120)
			for _, p := range stored {
				if _, err := eng.Insert(engine.Prefix(p.value, p.bits), p.lbl, p.priority); err != nil {
					t.Fatalf("Insert(%#x/%d): %v", p.value, p.bits, err)
				}
			}

			checkAgainstOracle := func(phase string, current []storedPrefix) {
				t.Helper()
				for i := 0; i < 500; i++ {
					key := uint32(rng.Intn(1 << 16))
					want := oracleLookup(current, key)
					got, accesses := eng.Lookup(key)
					if accesses < 1 {
						t.Fatalf("%s: Lookup(%#x) reported %d accesses", phase, key, accesses)
					}
					if !sameLabels(got, want) {
						t.Fatalf("%s: Lookup(%#x) labels = %v, oracle %v", phase, key, got.Labels(), want)
					}
					if len(want) > 0 {
						hpml, ok := got.HPML()
						if !ok || hpml.Label != want[0] {
							t.Fatalf("%s: Lookup(%#x) HPML = %v, want label %d", phase, key, hpml, want[0])
						}
					}
				}
			}
			checkAgainstOracle("after insert", stored)

			// Remove half, verify, then reprioritise a third of the rest and
			// verify the new HPML order.
			half := len(stored) / 2
			for _, p := range stored[:half] {
				if _, err := eng.Remove(engine.Prefix(p.value, p.bits), p.lbl); err != nil {
					t.Fatalf("Remove(%#x/%d): %v", p.value, p.bits, err)
				}
			}
			remaining := append([]storedPrefix(nil), stored[half:]...)
			checkAgainstOracle("after remove", remaining)

			for i := range remaining {
				if i%3 != 0 {
					continue
				}
				remaining[i].priority += 1000
				p := remaining[i]
				if _, err := eng.Reprioritise(engine.Prefix(p.value, p.bits), p.lbl, p.priority); err != nil {
					t.Fatalf("Reprioritise(%#x/%d): %v", p.value, p.bits, err)
				}
			}
			checkAgainstOracle("after reprioritise", remaining)

			for _, p := range remaining {
				if _, err := eng.Remove(engine.Prefix(p.value, p.bits), p.lbl); err != nil {
					t.Fatalf("Remove(%#x/%d): %v", p.value, p.bits, err)
				}
			}
			for i := 0; i < 100; i++ {
				key := uint32(rng.Intn(1 << 16))
				if got, _ := eng.Lookup(key); got.Len() != 0 {
					t.Fatalf("after drain: Lookup(%#x) returned %v, want empty", key, got.Labels())
				}
			}
			if fp := eng.Footprint(); fp.LabelListBits != 0 {
				t.Errorf("after drain: label list footprint = %d bits, want 0", fp.LabelListBits)
			}
		})
	}
}

// TestIPEngineCostModels checks that every IP engine publishes a sane cost
// model.
func TestIPEngineCostModels(t *testing.T) {
	for _, name := range engine.IPEngineNames() {
		eng, err := engine.New(name, engine.Spec{KeyBits: 16, LabelBits: 13})
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		cost := eng.Cost()
		if cost.LookupCycles < 1 || cost.InitiationInterval < 1 || cost.WorstCaseAccesses < 1 {
			t.Errorf("%s: implausible cost model %+v", name, cost)
		}
		if cost.InitiationInterval > cost.LookupCycles {
			t.Errorf("%s: initiation interval %d exceeds latency %d", name, cost.InitiationInterval, cost.LookupCycles)
		}
	}
}

// TestRemoveMissingFails checks that removing an absent pair errors on every
// IP engine.
func TestRemoveMissingFails(t *testing.T) {
	for _, name := range engine.IPEngineNames() {
		eng, err := engine.New(name, engine.Spec{KeyBits: 16, LabelBits: 13})
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if _, err := eng.Remove(engine.Prefix(0x1200, 8), 3); err == nil {
			t.Errorf("%s: removing an absent prefix should fail", name)
		}
	}
}

func TestRegistry(t *testing.T) {
	if err := engine.Register(engine.Definition{Name: "", Factory: nil}); err == nil {
		t.Error("registering an empty name should fail")
	}
	if err := engine.Register(engine.Definition{Name: "x-no-factory"}); err == nil {
		t.Error("registering without a factory should fail")
	}
	if err := engine.Register(engine.Definition{
		Name:    "mbt",
		Factory: func(engine.Spec) (engine.FieldEngine, error) { return nil, nil },
	}); err == nil {
		t.Error("duplicate registration should fail")
	}
	if _, err := engine.New("no-such-engine", engine.Spec{}); err == nil {
		t.Error("building an unknown engine should fail")
	}
	for _, want := range []string{"mbt", "bst", "segtrie", "rfc", "portreg", "lut"} {
		if _, ok := engine.Get(want); !ok {
			t.Errorf("built-in engine %q not registered", want)
		}
	}
	ipNames := engine.IPEngineNames()
	for _, notIP := range []string{"portreg", "lut"} {
		for _, name := range ipNames {
			if name == notIP {
				t.Errorf("%q should not be listed as an IP engine", notIP)
			}
		}
	}
}

// TestKindRejection checks that engines reject condition kinds they cannot
// store, wrapping ErrUnsupportedKind.
func TestKindRejection(t *testing.T) {
	cases := []struct {
		engine string
		value  engine.Value
	}{
		{"mbt", engine.Range(1, 2)},
		{"bst", engine.Wildcard()},
		{"rfc", engine.Exact(7)},
		{"portreg", engine.Prefix(0x1200, 8)},
		{"lut", engine.Range(1, 2)},
	}
	for _, tc := range cases {
		eng, err := engine.New(tc.engine, engine.Spec{KeyBits: 16, LabelBits: 13})
		if tc.engine == "lut" {
			eng, err = engine.New(tc.engine, engine.Spec{KeyBits: 8, LabelBits: 2})
		}
		if err != nil {
			t.Fatalf("New(%s): %v", tc.engine, err)
		}
		if _, err := eng.Insert(tc.value, 1, 0); err == nil {
			t.Errorf("%s should reject %v", tc.engine, tc.value)
		}
	}
}

// TestPortAndProtocolEngines exercises the non-IP engines through the same
// interface.
func TestPortAndProtocolEngines(t *testing.T) {
	ports, err := engine.New("portreg", engine.Spec{KeyBits: 16, LabelBits: 7, Registers: 8})
	if err != nil {
		t.Fatalf("New(portreg): %v", err)
	}
	if _, err := ports.Insert(engine.Range(100, 200), 1, 5); err != nil {
		t.Fatalf("portreg Insert: %v", err)
	}
	if _, err := ports.Insert(engine.Exact(150), 2, 9); err != nil {
		t.Fatalf("portreg Insert exact: %v", err)
	}
	list, _ := ports.Lookup(150)
	if list.Len() != 2 {
		t.Fatalf("portreg Lookup(150) returned %d labels, want 2", list.Len())
	}
	// Specificity order: the exact match precedes the wider range.
	if hpml, _ := list.HPML(); hpml.Label != 2 {
		t.Errorf("portreg HPML = %v, want the exact-match label 2", hpml)
	}

	proto, err := engine.New("lut", engine.Spec{KeyBits: 8, LabelBits: 2})
	if err != nil {
		t.Fatalf("New(lut): %v", err)
	}
	if _, err := proto.Insert(engine.Exact(6), 1, 3); err != nil {
		t.Fatalf("lut Insert: %v", err)
	}
	if _, err := proto.Insert(engine.Wildcard(), 2, 1); err != nil {
		t.Fatalf("lut Insert wildcard: %v", err)
	}
	list, _ = proto.Lookup(6)
	if list.Len() != 2 {
		t.Fatalf("lut Lookup(6) returned %d labels, want 2", list.Len())
	}
	if hpml, _ := list.HPML(); hpml.Label != 1 {
		t.Errorf("lut HPML = %v, want the exact-match label 1", hpml)
	}
	list, _ = proto.Lookup(17)
	if list.Len() != 1 {
		t.Fatalf("lut Lookup(17) returned %d labels, want the wildcard only", list.Len())
	}
}

// prepared forces an engine's deferred builds (engine.Preparer) so its
// subsequent lookups are pure reads, mirroring what the classifier does
// before publishing a snapshot.
func prepared(e engine.FieldEngine) engine.FieldEngine {
	if p, ok := e.(engine.Preparer); ok {
		p.Prepare()
	}
	return e
}

// TestEngineCloneIndependence verifies the Cloner contract that the
// classifier's copy-on-write update path depends on: every built-in engine
// implements Clone, and mutations of the original after cloning are never
// visible through the clone (nor the reverse). This is what lets readers
// keep traversing a published snapshot while a writer mutates its clone.
func TestEngineCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, name := range engine.IPEngineNames() {
		t.Run(name, func(t *testing.T) {
			eng, err := engine.New(name, engine.Spec{KeyBits: 16, LabelBits: 13})
			if err != nil {
				t.Fatalf("New(%s): %v", name, err)
			}
			stored := randomPrefixes(rng, 48)
			for _, p := range stored {
				if _, err := eng.Insert(engine.Prefix(p.value, p.bits), p.lbl, p.priority); err != nil {
					t.Fatalf("Insert: %v", err)
				}
			}
			cloner, ok := eng.(engine.Cloner)
			if !ok {
				t.Fatalf("engine %q does not implement Cloner; the snapshot-swap update path needs it (or pays a full rebuild per update)", name)
			}
			clone := prepared(cloner.Clone())
			prepared(eng)

			keys := make([]uint32, 0, 64)
			for i := 0; i < 64; i++ {
				keys = append(keys, uint32(rng.Intn(1<<16)))
			}
			// The clone answers exactly like the original before divergence.
			for _, key := range keys {
				want := oracleLookup(stored, key)
				if got, _ := clone.Lookup(key); !sameLabels(got, want) {
					t.Fatalf("clone Lookup(%#x) = %v, want %v", key, got.Labels(), want)
				}
			}
			// Mutate the original: drop half the prefixes. The clone must
			// keep answering for the full stored set.
			for _, p := range stored[:len(stored)/2] {
				if _, err := eng.Remove(engine.Prefix(p.value, p.bits), p.lbl); err != nil {
					t.Fatalf("Remove: %v", err)
				}
			}
			prepared(eng)
			for _, key := range keys {
				want := oracleLookup(stored, key)
				if got, _ := clone.Lookup(key); !sameLabels(got, want) {
					t.Errorf("after mutating original: clone Lookup(%#x) = %v, want %v", key, got.Labels(), want)
				}
			}
			// And the reverse: mutating the clone must not resurrect the
			// removed prefixes in the original.
			remaining := stored[len(stored)/2:]
			for _, p := range remaining {
				if _, err := clone.Remove(engine.Prefix(p.value, p.bits), p.lbl); err != nil {
					t.Fatalf("clone Remove: %v", err)
				}
			}
			prepared(clone)
			for _, key := range keys {
				want := oracleLookup(remaining, key)
				if got, _ := eng.Lookup(key); !sameLabels(got, want) {
					t.Errorf("after mutating clone: original Lookup(%#x) = %v, want %v", key, got.Labels(), want)
				}
			}
		})
	}
}

// TestPortProtocolCloneIndependence covers the non-IP engines' Clone hooks.
func TestPortProtocolCloneIndependence(t *testing.T) {
	ports, err := engine.New("portreg", engine.Spec{KeyBits: 16, LabelBits: 7, Registers: 8})
	if err != nil {
		t.Fatalf("New(portreg): %v", err)
	}
	if _, err := ports.Insert(engine.Range(80, 80), 1, 0); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	portsClone := ports.(engine.Cloner).Clone()
	if _, err := ports.Remove(engine.Range(80, 80), 1); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if got, _ := portsClone.Lookup(80); got.Len() != 1 {
		t.Errorf("portreg clone lost its entry after the original was mutated")
	}
	if got, _ := ports.Lookup(80); got.Len() != 0 {
		t.Errorf("portreg original still matches after Remove")
	}

	proto, err := engine.New("lut", engine.Spec{KeyBits: 8, LabelBits: 2})
	if err != nil {
		t.Fatalf("New(lut): %v", err)
	}
	if _, err := proto.Insert(engine.Exact(6), 1, 0); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	protoClone := proto.(engine.Cloner).Clone()
	if _, err := proto.Remove(engine.Exact(6), 1); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if got, _ := protoClone.Lookup(6); got.Len() != 1 {
		t.Errorf("lut clone lost its entry after the original was mutated")
	}
}
