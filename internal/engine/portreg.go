package engine

import (
	"sdnpc/internal/algo/portreg"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/label"
)

func init() {
	MustRegister(Definition{
		Name:        "portreg",
		Description: "parallel port-range register bank (§IV.C), specificity-ordered labels",
		Factory:     newPortregEngine,
	})
}

// portregEngine adapts the port register bank to the FieldEngine interface.
// The bank orders its label lists by range specificity (Table IV), not by
// rule priority, so Reprioritise is a structural no-op.
type portregEngine struct {
	b *portreg.Bank
}

func newPortregEngine(spec Spec) (FieldEngine, error) {
	registers := spec.Registers
	if registers == 0 {
		registers = 128
	}
	labelBits := spec.LabelBits
	if labelBits == 0 {
		labelBits = 7
	}
	b, err := portreg.New(registers, labelBits)
	if err != nil {
		return nil, err
	}
	return &portregEngine{b: b}, nil
}

func (a *portregEngine) rangeOf(v Value) (fivetuple.PortRange, error) {
	switch v.Kind {
	case KindRange:
		return fivetuple.PortRange{Lo: uint16(v.Lo), Hi: uint16(v.Hi)}, nil
	case KindExact:
		return fivetuple.PortRange{Lo: uint16(v.Value), Hi: uint16(v.Value)}, nil
	case KindWildcard:
		return fivetuple.WildcardPortRange(), nil
	default:
		return fivetuple.PortRange{}, unsupportedKind("portreg", v.Kind)
	}
}

func (a *portregEngine) Insert(v Value, lbl label.Label, priority int) (int, error) {
	rng, err := a.rangeOf(v)
	if err != nil {
		return 0, err
	}
	return a.b.Insert(rng, lbl, priority)
}

func (a *portregEngine) Remove(v Value, lbl label.Label) (int, error) {
	rng, err := a.rangeOf(v)
	if err != nil {
		return 0, err
	}
	return a.b.Remove(rng)
}

func (a *portregEngine) Reprioritise(v Value, lbl label.Label, priority int) (int, error) {
	// Port labels are ordered by range specificity, which deletion cannot
	// change; no register needs rewriting.
	return 0, nil
}

func (a *portregEngine) Lookup(key uint32) (*label.List, int) {
	return a.b.Lookup(uint16(key))
}

func (a *portregEngine) LookupInto(key uint32, out *label.List) int {
	return a.b.LookupInto(uint16(key), out)
}

func (a *portregEngine) Cost() CostModel {
	return CostModel{
		LookupCycles:       CyclesPortLookup,
		InitiationInterval: 1,
		WorstCaseAccesses:  1,
	}
}

func (a *portregEngine) Footprint() Footprint {
	return Footprint{NodeBits: a.b.MemoryBits()}
}

func (a *portregEngine) ResetStats() { a.b.ResetStats() }

// Clone implements Cloner by copying the register file.
func (a *portregEngine) Clone() FieldEngine { return &portregEngine{b: a.b.Clone()} }
