package engine

import (
	"sdnpc/internal/algo/bst"
	"sdnpc/internal/hw/memory"
	"sdnpc/internal/label"
)

func init() {
	MustRegister(Definition{
		Name:         "bst",
		Description:  "binary search tree over elementary intervals: smallest node storage, serial lookup, frees MBT blocks for extra rules",
		Factory:      newBSTEngine,
		IPCapable:    true,
		SharesLevel2: true,
		Legacy:       memory.SelectBST,
	})
}

// bstEngine adapts the Binary Search Tree to the FieldEngine interface. Its
// interval nodes live in the shared level-2 block of Fig. 5 ("Data 2"),
// which is why selecting it frees the remaining MBT blocks for rule storage.
type bstEngine struct {
	e *bst.Engine
	// shared is the level-2 block the interval nodes are resident in (nil
	// when modelling footprint only); node storage beyond its capacity is
	// overflow, visible in MemoryReport as used bits above provisioned bits.
	shared *memory.SharedBlock
}

func newBSTEngine(spec Spec) (FieldEngine, error) {
	if _, err := viewSharedL2(spec, "bst"); err != nil {
		return nil, err
	}
	cfg := bst.SegmentConfig()
	if spec.KeyBits > 0 {
		cfg.KeyBits = spec.KeyBits
	}
	if spec.LabelBits > 0 {
		cfg.LabelEntryBits = spec.LabelBits
	}
	e, err := bst.New(cfg)
	if err != nil {
		return nil, err
	}
	return &bstEngine{e: e, shared: spec.SharedL2}, nil
}

func (a *bstEngine) Insert(v Value, lbl label.Label, priority int) (int, error) {
	if v.Kind != KindPrefix {
		return 0, unsupportedKind("bst", v.Kind)
	}
	return a.e.Insert(v.Value, v.Bits, lbl, priority)
}

func (a *bstEngine) Remove(v Value, lbl label.Label) (int, error) {
	if v.Kind != KindPrefix {
		return 0, unsupportedKind("bst", v.Kind)
	}
	return a.e.Remove(v.Value, v.Bits, lbl)
}

func (a *bstEngine) Reprioritise(v Value, lbl label.Label, priority int) (int, error) {
	return reprioritise(a, v, lbl, priority)
}

func (a *bstEngine) Lookup(key uint32) (*label.List, int) { return a.e.Lookup(key) }

func (a *bstEngine) LookupInto(key uint32, out *label.List) int { return a.e.LookupInto(key, out) }

func (a *bstEngine) Cost() CostModel {
	worst := a.e.WorstCaseAccessesFor()
	return CostModel{
		// The BST iterates over one memory port and cannot accept a new
		// packet until the previous search completes (§V.B / Table VI).
		LookupCycles:       worst * CyclesPerBSTStep,
		InitiationInterval: worst * CyclesPerBSTStep,
		WorstCaseAccesses:  worst,
	}
}

func (a *bstEngine) Footprint() Footprint {
	return Footprint{NodeBits: a.e.MemoryBits(), LabelListBits: a.e.LabelListBits()}
}

func (a *bstEngine) ResetStats() { a.e.ResetStats() }

// Clone implements Cloner. The shared-block handle is carried over as-is:
// it only tags which engine's data the block holds, and snapshots built for
// a different engine selection get fresh blocks rather than re-owning this
// one.
func (a *bstEngine) Clone() FieldEngine { return &bstEngine{e: a.e.Clone(), shared: a.shared} }
