package engine

import (
	"sdnpc/internal/algo/rfc"
	"sdnpc/internal/label"
)

func init() {
	MustRegister(Definition{
		Name:        "rfc",
		Description: "single-field RFC equivalence table: one-access lookup, largest node storage (Table I trade-off)",
		Factory:     newRFCEngine,
		IPCapable:   true,
	})
}

// rfcEngine adapts the single-field RFC phase-0 reduction to the FieldEngine
// interface: a direct-indexed value→equivalence-class table rebuilt in
// software on update, giving the fastest possible lookup (one access) at the
// cost of the largest node storage.
type rfcEngine struct {
	t *rfc.SegmentTable
}

func newRFCEngine(spec Spec) (FieldEngine, error) {
	keyBits := spec.KeyBits
	if keyBits == 0 {
		keyBits = 16
	}
	labelBits := spec.LabelBits
	if labelBits == 0 {
		labelBits = 13
	}
	t, err := rfc.NewSegmentTable(keyBits, labelBits)
	if err != nil {
		return nil, err
	}
	return &rfcEngine{t: t}, nil
}

func (a *rfcEngine) Insert(v Value, lbl label.Label, priority int) (int, error) {
	if v.Kind != KindPrefix {
		return 0, unsupportedKind("rfc", v.Kind)
	}
	return a.t.Insert(v.Value, v.Bits, lbl, priority)
}

func (a *rfcEngine) Remove(v Value, lbl label.Label) (int, error) {
	if v.Kind != KindPrefix {
		return 0, unsupportedKind("rfc", v.Kind)
	}
	return a.t.Remove(v.Value, v.Bits, lbl)
}

func (a *rfcEngine) Reprioritise(v Value, lbl label.Label, priority int) (int, error) {
	return reprioritise(a, v, lbl, priority)
}

func (a *rfcEngine) Lookup(key uint32) (*label.List, int) { return a.t.Lookup(key) }

func (a *rfcEngine) LookupInto(key uint32, out *label.List) int { return a.t.LookupInto(key, out) }

func (a *rfcEngine) Cost() CostModel {
	return CostModel{
		LookupCycles:       CyclesDirectLookup,
		InitiationInterval: 1,
		WorstCaseAccesses:  1,
	}
}

func (a *rfcEngine) Footprint() Footprint {
	return Footprint{NodeBits: a.t.MemoryBits(), LabelListBits: a.t.LabelListBits()}
}

func (a *rfcEngine) ResetStats() { a.t.ResetStats() }

// Clone implements Cloner by copying the prepared segment table.
func (a *rfcEngine) Clone() FieldEngine { return &rfcEngine{t: a.t.Clone()} }

// Prepare implements Preparer: it forces the table's deferred equivalence-
// class rebuild so that a published snapshot never rebuilds inside Lookup.
func (a *rfcEngine) Prepare() { a.t.Prepare() }
