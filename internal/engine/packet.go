package engine

import (
	"fmt"
	"sort"

	"sdnpc/internal/fivetuple"
)

// PacketEngine is one pluggable whole-packet lookup engine: the second engine
// tier of the architecture, serving the full five-tuple in one structure
// instead of one FieldEngine per dimension.
//
// The multi-field baselines the paper compares against in Table I — full RFC,
// DCFL and HyperCuts — are engines of this tier. They answer a lookup in a
// handful of precomputed-table indexings (no per-field label lists, no HPML
// combination, no Rule Filter probe), trading precomputation memory and
// update cost for lookup speed; the FieldEngine tier makes the opposite
// trade. Both tiers share one name registry, so which tier serves a
// classifier remains data ("mbt" vs "rfc-full"), not control flow.
//
// Update model: the Table I structures are precomputed over the whole rule
// set, so the tier's update primitive is Install — a full rebuild. The
// classifier's clone-mutate-swap path calls Install on a private clone and
// publishes the finished snapshot, exactly as it does for field engines.
//
// Concurrency contract (read-only after build): once Install has returned,
// LookupPacket, Cost and Footprint must be safe to call from any number of
// goroutines concurrently — LookupPacket must not modify the built structure
// and any internal counters must be atomic. Install requires external
// serialisation; the classifier only ever calls it on an unpublished
// snapshot's engine.
type PacketEngine interface {
	// Install (re)builds the engine over the rule set. Rules are ordered
	// best-first (ascending Priority value: index 0 is the highest-priority
	// rule) and
	// LookupPacket answers in terms of indices into this slice. Installing an
	// empty slice is valid and yields an engine that matches nothing. A
	// failed Install leaves the previously installed state serving.
	Install(rules []fivetuple.Rule) error
	// LookupPacket classifies one header: the index (into the installed
	// slice) of the highest-priority matching rule, whether any rule
	// matched, and the number of memory accesses performed.
	LookupPacket(h fivetuple.Header) (ruleIndex int, matched bool, accesses int)
	// Cost returns the engine's clock-cycle model under the installed rule
	// set (decision-tree engines derive it from the built tree).
	Cost() CostModel
	// Footprint returns the storage consumed by the precomputed structure.
	// Whole-packet engines do not use the Labels memory, so LabelListBits is
	// zero.
	Footprint() Footprint
	// ResetStats zeroes the engine's access counters.
	ResetStats()
	// Clone returns a handle sharing the immutable built structure such that
	// a later Install on either handle is never observable through the
	// other. This is what lets the classifier rebuild a cloned snapshot's
	// engine while readers keep traversing the published one.
	Clone() PacketEngine
}

// MultiMatchPacketEngine is implemented by packet engines that can enumerate
// every matching rule, not only the highest-priority one. It is required of
// engines whose registry definition declares DimMultiAction: the core's
// multi-action lookup (LookupAll) collects the ordered action chain of
// non-terminating rules through this interface.
type MultiMatchPacketEngine interface {
	PacketEngine
	// LookupPacketAll appends the indices (into the installed rule slice)
	// of every rule matching the header to dst, in ascending index order —
	// which is priority order, because Install receives rules best-first —
	// truncated after the first terminating (non-NonTerminating) match. It
	// returns the extended slice and the number of memory accesses
	// performed. Implementations must not allocate when dst has sufficient
	// capacity, so the zero-allocation serving guarantee extends to the
	// multi-action path.
	LookupPacketAll(h fivetuple.Header, dst []int) ([]int, int)
}

// PacketFactory builds one whole-packet engine instance.
type PacketFactory func(spec Spec) (PacketEngine, error)

// NewPacket builds a whole-packet engine instance by registered name.
func NewPacket(name string, spec Spec) (PacketEngine, error) {
	def, ok := Get(name)
	if !ok || def.PacketFactory == nil {
		return nil, fmt.Errorf("engine: unknown packet engine %q (registered: %v)", name, PacketEngineNames())
	}
	eng, err := def.PacketFactory(spec)
	if err != nil {
		return nil, fmt.Errorf("engine: building %q: %w", name, err)
	}
	return eng, nil
}

// PacketEngineNames returns the sorted names of the registered whole-packet
// engines — the second tier of the registry.
func PacketEngineNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name, def := range registry {
		if def.PacketFactory != nil {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// SelectableNames returns the sorted names of every engine a classifier can
// be switched to: the IP-capable field engines plus the whole-packet
// engines. These are the values the facade, the -engine flags and the
// OpenFlow set-engine message accept.
func SelectableNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name, def := range registry {
		if def.IPCapable || def.PacketFactory != nil {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Selectable reports whether the name is registered and selectable as a
// serving engine (IP-capable field engine or whole-packet engine), and which
// tier it belongs to.
func Selectable(name string) (isPacket bool, ok bool) {
	def, found := Get(name)
	if !found {
		return false, false
	}
	if def.PacketFactory != nil {
		return true, true
	}
	return false, def.IPCapable
}
