package engine

import (
	"fmt"
	"sort"
	"sync"

	"sdnpc/internal/fivetuple"
	"sdnpc/internal/hw/memory"
)

// Spec carries the architecture geometry a factory needs to build one engine
// instance for one dimension. Factories ignore the fields that do not apply
// to them.
type Spec struct {
	// KeyBits is the width of the dimension's lookup keys (16 for IP
	// segments and ports, 8 for the protocol).
	KeyBits int
	// LabelBits is the width of one stored label in the Labels memory block
	// (13 for IP segments, 7 for ports, 2 for the protocol).
	LabelBits int
	// Registers is the register budget of register-bank engines.
	Registers int
	// SharedL2 is the dimension's shared level-2 memory block of Fig. 5,
	// when the dimension has one. Ownership switching is driven by the
	// classifier; factories of level-2-resident engines obtain the backing
	// store through SharedL2.ViewOwner and fail if another engine's data
	// occupies the block.
	SharedL2 *memory.SharedBlock
}

// viewSharedL2 resolves an engine's backing store from the shared level-2
// block: nil when no block was provided (footprint-only modelling), an error
// when the block is currently owned by a different engine — the
// anti-corruption guarantee of memory.SharedBlock.
func viewSharedL2(spec Spec, name string) (*memory.Block, error) {
	if spec.SharedL2 == nil {
		return nil, nil
	}
	block := spec.SharedL2.ViewOwner(name)
	if block == nil {
		return nil, fmt.Errorf("shared level-2 block %q is owned by %q, not %q",
			spec.SharedL2.Physical().Name(), spec.SharedL2.Owner(), name)
	}
	return block, nil
}

// Factory builds one engine instance for one dimension.
type Factory func(spec Spec) (FieldEngine, error)

// Definition describes one registered engine of either tier.
type Definition struct {
	// Name is the registry key ("mbt", "bst", "rfc-full", ...). Selection by
	// configuration and by the engine flags uses this name.
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Factory builds single-field engine instances. Exactly one of Factory
	// and PacketFactory must be set.
	Factory Factory
	// PacketFactory builds whole-packet engine instances: setting it makes
	// the definition a second-tier (PacketEngine) entry.
	PacketFactory PacketFactory
	// Incremental marks whole-packet engines whose instances implement
	// IncrementalPacketEngine — the delta-update capability the classifier's
	// update policy prefers over a full rebuild.
	Incremental bool
	// IPCapable marks engines that can serve the 16-bit IP-segment
	// dimensions (they accept KindPrefix values).
	IPCapable bool
	// SharesLevel2 marks engines whose node data resides entirely in the
	// shared level-2 block of Fig. 5, freeing the remaining MBT blocks for
	// additional rule storage (the BST-style capacity bonus of Table VI).
	SharesLevel2 bool
	// Legacy is the IPalg_s signal value that historically named this
	// engine, or 0 when the engine has no legacy selection value.
	Legacy memory.AlgSelect
	// Dims declares the extension dimensions beyond the classic IPv4
	// first-match five-tuple this engine serves (IPv6 prefixes, VLAN tags,
	// TCP-flag masks, partial protocol masks, non-terminating rules). The
	// classifier refuses to install a rule requiring dimensions outside
	// this set — an engine either serves a dimension or honestly declines
	// it; it never silently misclassifies. A Dims containing DimMultiAction
	// promises the packet instances implement MultiMatchPacketEngine.
	Dims fivetuple.DimSet
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Definition)
)

// Register adds an engine definition to the registry. Registering an empty
// name, no factory (or both tiers' factories), or a duplicate name is an
// error.
func Register(def Definition) error {
	if def.Name == "" {
		return fmt.Errorf("engine: cannot register an empty engine name")
	}
	if def.Factory == nil && def.PacketFactory == nil {
		return fmt.Errorf("engine: engine %q has no factory", def.Name)
	}
	if def.Factory != nil && def.PacketFactory != nil {
		return fmt.Errorf("engine: engine %q registers both a field and a packet factory", def.Name)
	}
	if def.Incremental && def.PacketFactory == nil {
		return fmt.Errorf("engine: engine %q declares incremental updates without a packet factory", def.Name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, exists := registry[def.Name]; exists {
		return fmt.Errorf("engine: engine %q already registered", def.Name)
	}
	registry[def.Name] = def
	return nil
}

// MustRegister is like Register but panics on error; intended for built-in
// registrations at init time.
func MustRegister(def Definition) {
	if err := Register(def); err != nil {
		panic(err)
	}
}

// Get returns the definition registered under the name.
func Get(name string) (Definition, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	def, ok := registry[name]
	return def, ok
}

// New builds an engine instance by registered name.
func New(name string, spec Spec) (FieldEngine, error) {
	def, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("engine: unknown engine %q (registered: %v)", name, Names())
	}
	eng, err := def.Factory(spec)
	if err != nil {
		return nil, fmt.Errorf("engine: building %q: %w", name, err)
	}
	return eng, nil
}

// Names returns every registered engine name, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// IPEngineNames returns the sorted names of the engines that can serve the
// IP-segment dimensions — the values the IPEngine configuration field and
// the -ip-engine flags accept.
func IPEngineNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name, def := range registry {
		if def.IPCapable {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Dims returns the extension-dimension set declared by the named engine. An
// unknown name declares nothing.
func Dims(name string) fivetuple.DimSet {
	def, ok := Get(name)
	if !ok {
		return 0
	}
	return def.Dims
}

// LegacyName maps an IPalg_s signal value to the name of the engine it
// historically selected.
func LegacyName(alg memory.AlgSelect) (string, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	for name, def := range registry {
		if def.Legacy != 0 && def.Legacy == alg {
			return name, true
		}
	}
	return "", false
}
