// Wire-API handler tests: tenant CRUD, rule CRUD, classification against the
// linear-scan oracle, and the 4xx paths for malformed input. Everything goes
// through Server.Handler() so the routes, middleware and JSON envelopes are
// exercised exactly as a remote client sees them.
package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sdnpc/internal/classbench"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/server"
)

// newTestServer returns a server with a quiet logger and its HTTP handler.
func newTestServer() (*server.Server, http.Handler) {
	srv := server.New(slog.New(slog.NewTextHandler(io.Discard, nil)))
	return srv, srv.Handler()
}

// do runs one request through the handler and returns the recorder.
func do(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	switch b := body.(type) {
	case nil:
	case string:
		rd = strings.NewReader(b)
	default:
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshalling %s %s body: %v", method, path, err)
		}
		rd = bytes.NewReader(buf)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// decode unmarshals a recorded JSON response body.
func decode(t *testing.T, rec *httptest.ResponseRecorder, v any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
		t.Fatalf("decoding response %q: %v", rec.Body.String(), err)
	}
}

// wantStatus fails the test when the recorded status differs.
func wantStatus(t *testing.T, rec *httptest.ResponseRecorder, want int) {
	t.Helper()
	if rec.Code != want {
		t.Fatalf("status = %d, want %d (body %q)", rec.Code, want, rec.Body.String())
	}
}

// wireRuleFrom converts an installed rule to its wire form, mirroring what a
// controller would send.
func wireRuleFrom(r fivetuple.Rule) server.WireRule {
	wr := server.WireRule{Priority: r.Priority, Action: r.Action.String(), ActionArg: r.ActionArg}
	if !r.SrcPrefix.IsWildcard() {
		wr.Src = r.SrcPrefix.String()
	}
	if !r.DstPrefix.IsWildcard() {
		wr.Dst = r.DstPrefix.String()
	}
	if !r.SrcPort.IsWildcard() {
		wr.SrcPort = &server.WirePortRange{Lo: r.SrcPort.Lo, Hi: r.SrcPort.Hi}
	}
	if !r.DstPort.IsWildcard() {
		wr.DstPort = &server.WirePortRange{Lo: r.DstPort.Lo, Hi: r.DstPort.Hi}
	}
	if !r.Protocol.IsWildcard() {
		proto := r.Protocol.Value
		wr.Proto = &proto
	}
	return wr
}

func TestHealthz(t *testing.T) {
	_, h := newTestServer()
	rec := do(t, h, "GET", "/healthz", nil)
	wantStatus(t, rec, http.StatusOK)
	var body struct {
		Status  string `json:"status"`
		Tenants int    `json:"tenants"`
	}
	decode(t, rec, &body)
	if body.Status != "ok" || body.Tenants != 0 {
		t.Fatalf("healthz = %+v, want status ok with 0 tenants", body)
	}
}

func TestTenantLifecycle(t *testing.T) {
	_, h := newTestServer()

	rec := do(t, h, "POST", "/v1/tenants", server.CreateTenantRequest{ID: "alpha", Engine: "bst"})
	wantStatus(t, rec, http.StatusCreated)
	var created server.WireTenant
	decode(t, rec, &created)
	if created.ID != "alpha" || created.Engine != "bst" || created.Rules != 0 {
		t.Fatalf("created tenant = %+v", created)
	}

	// Duplicate id conflicts; bad ids and unknown engines are rejected.
	wantStatus(t, do(t, h, "POST", "/v1/tenants", server.CreateTenantRequest{ID: "alpha"}), http.StatusConflict)
	wantStatus(t, do(t, h, "POST", "/v1/tenants", server.CreateTenantRequest{ID: "bad/slash"}), http.StatusBadRequest)
	wantStatus(t, do(t, h, "POST", "/v1/tenants", server.CreateTenantRequest{ID: ""}), http.StatusBadRequest)
	wantStatus(t, do(t, h, "POST", "/v1/tenants", server.CreateTenantRequest{ID: "beta", Engine: "no-such-engine"}), http.StatusBadRequest)

	// A second tenant with a cache, then list and get.
	rec = do(t, h, "POST", "/v1/tenants", server.CreateTenantRequest{ID: "beta", Engine: "hypercuts", CacheCapacity: 1024})
	wantStatus(t, rec, http.StatusCreated)
	var beta server.WireTenant
	decode(t, rec, &beta)
	if !beta.CacheEnabled {
		t.Fatalf("beta should report cache_enabled, got %+v", beta)
	}

	rec = do(t, h, "GET", "/v1/tenants", nil)
	wantStatus(t, rec, http.StatusOK)
	var list struct {
		Tenants []server.WireTenant `json:"tenants"`
	}
	decode(t, rec, &list)
	if len(list.Tenants) != 2 || list.Tenants[0].ID != "alpha" || list.Tenants[1].ID != "beta" {
		t.Fatalf("tenant list = %+v, want [alpha beta]", list.Tenants)
	}

	rec = do(t, h, "GET", "/v1/tenants/alpha", nil)
	wantStatus(t, rec, http.StatusOK)

	wantStatus(t, do(t, h, "DELETE", "/v1/tenants/alpha", nil), http.StatusNoContent)
	wantStatus(t, do(t, h, "GET", "/v1/tenants/alpha", nil), http.StatusNotFound)
	wantStatus(t, do(t, h, "DELETE", "/v1/tenants/alpha", nil), http.StatusNotFound)
}

func TestCreateTenantMalformedBody(t *testing.T) {
	_, h := newTestServer()
	wantStatus(t, do(t, h, "POST", "/v1/tenants", `{"id": "x"`), http.StatusBadRequest)
	wantStatus(t, do(t, h, "POST", "/v1/tenants", `{"id": "x"} trailing`), http.StatusBadRequest)
}

func TestRulesCRUD(t *testing.T) {
	_, h := newTestServer()
	wantStatus(t, do(t, h, "POST", "/v1/tenants", server.CreateTenantRequest{ID: "crud"}), http.StatusCreated)

	// Single bare-rule insert.
	proto := uint8(6)
	single := server.WireRule{
		Priority: 0, Src: "10.0.0.0/8", Dst: "192.168.1.0/24",
		DstPort: &server.WirePortRange{Lo: 80, Hi: 80}, Proto: &proto,
		Action: "forward", ActionArg: 3,
	}
	rec := do(t, h, "POST", "/v1/tenants/crud/rules", single)
	wantStatus(t, rec, http.StatusOK)
	var resp server.RulesResponse
	decode(t, rec, &resp)
	if resp.Installed != 1 || resp.Rules != 1 || len(resp.Errors) != 0 {
		t.Fatalf("single insert = %+v", resp)
	}

	// Batch insert through the "rules" form.
	batch := map[string]any{"rules": []server.WireRule{
		{Priority: 1, Src: "172.16.0.0/12", Action: "drop"},
		{Priority: 2, Action: "controller"},
	}}
	rec = do(t, h, "POST", "/v1/tenants/crud/rules", batch)
	wantStatus(t, rec, http.StatusOK)
	decode(t, rec, &resp)
	if resp.Installed != 2 || resp.Rules != 3 {
		t.Fatalf("batch insert = %+v", resp)
	}

	// Mixed ops: one delete, one insert, one bad op, one bad rule — applied
	// ops succeed and the failures come back indexed.
	ops := map[string]any{"ops": []map[string]any{
		{"op": "delete", "rule": server.WireRule{Priority: 1, Src: "172.16.0.0/12", Action: "drop"}},
		{"op": "insert", "rule": server.WireRule{Priority: 4, Src: "10.9.0.0/16", Action: "modify", ActionArg: 7}},
		{"op": "upsert", "rule": server.WireRule{Priority: 5, Action: "drop"}},
		{"op": "insert", "rule": server.WireRule{Priority: 6, Src: "not-a-prefix", Action: "drop"}},
	}}
	rec = do(t, h, "POST", "/v1/tenants/crud/rules", ops)
	wantStatus(t, rec, http.StatusOK)
	decode(t, rec, &resp)
	if resp.Installed != 1 || resp.Deleted != 1 || resp.Rules != 3 || len(resp.Errors) != 2 {
		t.Fatalf("mixed ops = %+v", resp)
	}
	if resp.Errors[0].Index != 2 && resp.Errors[1].Index != 2 {
		t.Fatalf("bad-op error lost its index: %+v", resp.Errors)
	}

	// Read back.
	rec = do(t, h, "GET", "/v1/tenants/crud/rules", nil)
	wantStatus(t, rec, http.StatusOK)
	var rules struct {
		Rules []server.WireRule `json:"rules"`
		Count int               `json:"count"`
	}
	decode(t, rec, &rules)
	if rules.Count != 3 || len(rules.Rules) != 3 {
		t.Fatalf("rule list = %+v", rules)
	}

	// Targeted delete of one rule, then a miss.
	rec = do(t, h, "DELETE", "/v1/tenants/crud/rules", single)
	wantStatus(t, rec, http.StatusOK)
	decode(t, rec, &resp)
	if resp.Deleted != 1 || resp.Rules != 2 {
		t.Fatalf("delete = %+v", resp)
	}
	wantStatus(t, do(t, h, "DELETE", "/v1/tenants/crud/rules", single), http.StatusNotFound)

	// Malformed request forms.
	wantStatus(t, do(t, h, "POST", "/v1/tenants/crud/rules", map[string]any{}), http.StatusBadRequest)
	both := map[string]any{
		"rules": []server.WireRule{{Action: "drop"}},
		"ops":   []map[string]any{{"op": "insert", "rule": server.WireRule{Action: "drop"}}},
	}
	wantStatus(t, do(t, h, "POST", "/v1/tenants/crud/rules", both), http.StatusBadRequest)
	allBad := map[string]any{"rules": []server.WireRule{{Priority: 9, Action: "teleport"}}}
	wantStatus(t, do(t, h, "POST", "/v1/tenants/crud/rules", allBad), http.StatusBadRequest)

	// Rule CRUD against a missing tenant.
	wantStatus(t, do(t, h, "POST", "/v1/tenants/ghost/rules", single), http.StatusNotFound)
	wantStatus(t, do(t, h, "GET", "/v1/tenants/ghost/rules", nil), http.StatusNotFound)
}

func TestClassifyEndpoints(t *testing.T) {
	_, h := newTestServer()
	wantStatus(t, do(t, h, "POST", "/v1/tenants", server.CreateTenantRequest{ID: "cls"}), http.StatusCreated)
	rule := server.WireRule{Priority: 0, Src: "10.0.0.0/8", Action: "forward", ActionArg: 9}
	wantStatus(t, do(t, h, "POST", "/v1/tenants/cls/rules", rule), http.StatusOK)

	// Single classify: a hit and a miss.
	rec := do(t, h, "POST", "/v1/tenants/cls/classify", server.WireHeader{SrcIP: "10.1.2.3", DstIP: "1.1.1.1", Proto: 6})
	wantStatus(t, rec, http.StatusOK)
	var res server.WireResult
	decode(t, rec, &res)
	if !res.Matched || res.Action != "forward" || res.ActionArg != 9 {
		t.Fatalf("classify hit = %+v", res)
	}
	rec = do(t, h, "POST", "/v1/tenants/cls/classify", server.WireHeader{SrcIP: "11.1.2.3", DstIP: "1.1.1.1"})
	wantStatus(t, rec, http.StatusOK)
	decode(t, rec, &res)
	if res.Matched {
		t.Fatalf("classify miss = %+v, want no match", res)
	}

	// Batch classify with the aggregate report.
	batch := server.ClassifyBatchRequest{Headers: []server.WireHeader{
		{SrcIP: "10.0.0.1", DstIP: "2.2.2.2"},
		{SrcIP: "11.0.0.1", DstIP: "2.2.2.2"},
	}}
	rec = do(t, h, "POST", "/v1/tenants/cls/classify-batch", batch)
	wantStatus(t, rec, http.StatusOK)
	var bres server.ClassifyBatchResponse
	decode(t, rec, &bres)
	if len(bres.Results) != 2 || bres.Report.Packets != 2 || bres.Report.Matched != 1 {
		t.Fatalf("classify-batch = %+v", bres)
	}

	// 4xx paths: bad address, empty batch, malformed JSON, missing tenant.
	wantStatus(t, do(t, h, "POST", "/v1/tenants/cls/classify", server.WireHeader{SrcIP: "not-an-ip", DstIP: "1.1.1.1"}), http.StatusBadRequest)
	wantStatus(t, do(t, h, "POST", "/v1/tenants/cls/classify-batch", server.ClassifyBatchRequest{}), http.StatusBadRequest)
	wantStatus(t, do(t, h, "POST", "/v1/tenants/cls/classify-batch", server.ClassifyBatchRequest{
		Headers: []server.WireHeader{{SrcIP: "10.0.0.1", DstIP: "bogus"}},
	}), http.StatusBadRequest)
	wantStatus(t, do(t, h, "POST", "/v1/tenants/cls/classify", `{`), http.StatusBadRequest)
	wantStatus(t, do(t, h, "POST", "/v1/tenants/ghost/classify", server.WireHeader{SrcIP: "10.0.0.1", DstIP: "1.1.1.1"}), http.StatusNotFound)
}

// TestClassifyAgreesWithOracle installs a generated ClassBench filter set
// over the wire and asserts every wire verdict — match, priority and action —
// agrees with the linear-scan oracle, on both a field-tier and a packet-tier
// engine.
func TestClassifyAgreesWithOracle(t *testing.T) {
	rs := classbench.Generate(classbench.StandardConfig(classbench.ACL, classbench.Size1K))
	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{Packets: 500, Seed: 42, MatchFraction: 0.8})

	for _, engine := range []string{"bst", "hypercuts"} {
		t.Run(engine, func(t *testing.T) {
			_, h := newTestServer()
			id := "oracle-" + engine
			wantStatus(t, do(t, h, "POST", "/v1/tenants", server.CreateTenantRequest{ID: id, Engine: engine}), http.StatusCreated)

			wire := make([]server.WireRule, rs.Len())
			for i, r := range rs.Rules() {
				wire[i] = wireRuleFrom(r)
			}
			rec := do(t, h, "POST", "/v1/tenants/"+id+"/rules", map[string]any{"rules": wire})
			wantStatus(t, rec, http.StatusOK)
			var resp server.RulesResponse
			decode(t, rec, &resp)
			if resp.Installed != rs.Len() || len(resp.Errors) != 0 {
				t.Fatalf("installed %d/%d rules, errors %v", resp.Installed, rs.Len(), resp.Errors)
			}

			headers := make([]server.WireHeader, len(trace))
			for i, hd := range trace {
				headers[i] = server.WireHeader{
					SrcIP: hd.SrcIP.String(), SrcPort: hd.SrcPort,
					DstIP: hd.DstIP.String(), DstPort: hd.DstPort, Proto: hd.Protocol,
				}
			}
			rec = do(t, h, "POST", "/v1/tenants/"+id+"/classify-batch", server.ClassifyBatchRequest{Headers: headers})
			wantStatus(t, rec, http.StatusOK)
			var bres server.ClassifyBatchResponse
			decode(t, rec, &bres)
			if len(bres.Results) != len(trace) {
				t.Fatalf("got %d results for %d headers", len(bres.Results), len(trace))
			}
			for i, res := range bres.Results {
				idx, ok := rs.Classify(trace[i])
				if res.Matched != ok {
					t.Fatalf("header %d (%s): wire matched=%v, oracle %v", i, trace[i], res.Matched, ok)
				}
				if !ok {
					continue
				}
				want := rs.Rule(idx)
				if res.Priority != want.Priority || res.Action != want.Action.String() || res.ActionArg != want.ActionArg {
					t.Fatalf("header %d (%s): wire %d/%s/%d, oracle %d/%s/%d",
						i, trace[i], res.Priority, res.Action, res.ActionArg,
						want.Priority, want.Action, want.ActionArg)
				}
			}
		})
	}
}

// TestExtendedDimensionWire drives the extension dimensions end to end
// over the wire: IPv6/VLAN/TCP-flag/non-terminating rules install and
// round-trip through the rule listing, address family is inferred from the
// header syntax (mixed families are a 400), ?all=true returns the ordered
// multi-action chain, and a tenant whose engine does not declare the
// needed dimensions reports a per-op refusal instead of misclassifying.
func TestExtendedDimensionWire(t *testing.T) {
	_, h := newTestServer()
	wantStatus(t, do(t, h, "POST", "/v1/tenants", server.CreateTenantRequest{ID: "ext", Engine: "linear"}), http.StatusCreated)

	vlan := uint16(100)
	rules := []server.WireRule{
		{Priority: 0, Action: "controller", NonTerminating: true,
			TCPFlags: &server.WireFlagMatch{Value: 2, Mask: 6}}, // SYN set, RST clear
		{Priority: 1, Src6: "2001:db8::/32", Action: "forward", ActionArg: 4},
		{Priority: 2, VLAN: &vlan, Action: "modify", ActionArg: 7},
		{Priority: 3, Action: "drop"},
	}
	rec := do(t, h, "POST", "/v1/tenants/ext/rules", map[string]any{"rules": rules})
	wantStatus(t, rec, http.StatusOK)
	var resp server.RulesResponse
	decode(t, rec, &resp)
	if resp.Installed != len(rules) || len(resp.Errors) != 0 {
		t.Fatalf("installed %d/%d extended rules, errors %v", resp.Installed, len(rules), resp.Errors)
	}

	// Round-trip: the extension fields must survive decode → install → encode.
	rec = do(t, h, "GET", "/v1/tenants/ext/rules", nil)
	wantStatus(t, rec, http.StatusOK)
	var listed struct {
		Rules []server.WireRule `json:"rules"`
	}
	decode(t, rec, &listed)
	if len(listed.Rules) != len(rules) {
		t.Fatalf("listed %d rules, want %d", len(listed.Rules), len(rules))
	}
	if fm := listed.Rules[0].TCPFlags; fm == nil || fm.Value != 2 || fm.Mask != 6 || !listed.Rules[0].NonTerminating {
		t.Fatalf("rule 0 round-trip = %+v, want tcp_flags {2 6} non_terminating", listed.Rules[0])
	}
	if listed.Rules[1].Src6 != "2001:db8::/32" {
		t.Fatalf("rule 1 round-trip src6 = %q", listed.Rules[1].Src6)
	}
	if v := listed.Rules[2].VLAN; v == nil || *v != 100 {
		t.Fatalf("rule 2 round-trip vlan = %v, want 100", v)
	}

	// Family inference: colon syntax selects IPv6; the v6 rule matches.
	rec = do(t, h, "POST", "/v1/tenants/ext/classify",
		server.WireHeader{SrcIP: "2001:db8::5", DstIP: "2001:4860::8", Proto: 6})
	wantStatus(t, rec, http.StatusOK)
	var res server.WireResult
	decode(t, rec, &res)
	if !res.Matched || res.Action != "forward" || res.ActionArg != 4 {
		t.Fatalf("v6 classify = %+v, want forward/4", res)
	}

	// Mixed families in one header cannot be parsed into either family.
	wantStatus(t, do(t, h, "POST", "/v1/tenants/ext/classify",
		server.WireHeader{SrcIP: "10.0.0.1", DstIP: "2001:db8::1"}), http.StatusBadRequest)

	// ?all=true returns the ordered action chain: the non-terminating
	// observer stacks on top of the terminating verdict.
	rec = do(t, h, "POST", "/v1/tenants/ext/classify?all=true",
		server.WireHeader{SrcIP: "10.0.0.1", DstIP: "1.1.1.1", Proto: 6, TCPFlags: 2})
	wantStatus(t, rec, http.StatusOK)
	decode(t, rec, &res)
	if !res.Matched || res.Action != "controller" || len(res.Actions) != 2 {
		t.Fatalf("?all=true classify = %+v, want controller verdict with a 2-action chain", res)
	}
	if a := res.Actions[0]; a.Priority != 0 || a.Action != "controller" || a.Terminal {
		t.Fatalf("chain[0] = %+v, want non-terminal controller at priority 0", a)
	}
	if a := res.Actions[1]; a.Priority != 3 || a.Action != "drop" || !a.Terminal {
		t.Fatalf("chain[1] = %+v, want terminal drop at priority 3", a)
	}
	// Without the flag the chain stays off the wire.
	rec = do(t, h, "POST", "/v1/tenants/ext/classify",
		server.WireHeader{SrcIP: "10.0.0.1", DstIP: "1.1.1.1", Proto: 6, TCPFlags: 2})
	wantStatus(t, rec, http.StatusOK)
	var plain server.WireResult
	decode(t, rec, &plain)
	if len(plain.Actions) != 0 {
		t.Fatalf("plain classify leaked an action chain: %+v", plain)
	}

	// A tenant on a five-tuple-only engine declines extended rules per op.
	wantStatus(t, do(t, h, "POST", "/v1/tenants", server.CreateTenantRequest{ID: "v4only", Engine: "mbt"}), http.StatusCreated)
	rec = do(t, h, "POST", "/v1/tenants/v4only/rules", server.WireRule{Priority: 0, Src6: "2001:db8::/32", Action: "drop"})
	wantStatus(t, rec, http.StatusOK)
	decode(t, rec, &resp)
	if resp.Installed != 0 || len(resp.Errors) != 1 {
		t.Fatalf("extended rule on mbt tenant: %+v, want 0 installed with 1 per-op error", resp)
	}
}

func TestEngineSwitch(t *testing.T) {
	_, h := newTestServer()
	wantStatus(t, do(t, h, "POST", "/v1/tenants", server.CreateTenantRequest{ID: "sw", Engine: "bst"}), http.StatusCreated)
	rule := server.WireRule{Priority: 0, Src: "10.0.0.0/8", Action: "drop"}
	wantStatus(t, do(t, h, "POST", "/v1/tenants/sw/rules", rule), http.StatusOK)

	rec := do(t, h, "PUT", "/v1/tenants/sw/engine", map[string]string{"engine": "hypercuts"})
	wantStatus(t, rec, http.StatusOK)
	var eng map[string]string
	decode(t, rec, &eng)
	if eng["engine"] != "hypercuts" {
		t.Fatalf("engine after switch = %q", eng["engine"])
	}

	// The installed table survives the switch.
	rec = do(t, h, "POST", "/v1/tenants/sw/classify", server.WireHeader{SrcIP: "10.1.1.1", DstIP: "1.1.1.1"})
	wantStatus(t, rec, http.StatusOK)
	var res server.WireResult
	decode(t, rec, &res)
	if !res.Matched || res.Action != "drop" {
		t.Fatalf("classify after engine switch = %+v", res)
	}

	wantStatus(t, do(t, h, "PUT", "/v1/tenants/sw/engine", map[string]string{"engine": "warp-drive"}), http.StatusBadRequest)
	wantStatus(t, do(t, h, "PUT", "/v1/tenants/ghost/engine", map[string]string{"engine": "bst"}), http.StatusNotFound)
}

func TestStatsEndpoints(t *testing.T) {
	_, h := newTestServer()
	wantStatus(t, do(t, h, "POST", "/v1/tenants", server.CreateTenantRequest{ID: "s1", Engine: "bst", CacheCapacity: 512}), http.StatusCreated)
	wantStatus(t, do(t, h, "POST", "/v1/tenants", server.CreateTenantRequest{ID: "s2", Engine: "dcfl"}), http.StatusCreated)
	rule := server.WireRule{Priority: 0, Src: "10.0.0.0/8", Action: "forward", ActionArg: 1}
	wantStatus(t, do(t, h, "POST", "/v1/tenants/s1/rules", rule), http.StatusOK)
	wantStatus(t, do(t, h, "POST", "/v1/tenants/s2/rules", rule), http.StatusOK)

	headers := []server.WireHeader{
		{SrcIP: "10.0.0.1", DstIP: "1.1.1.1"},
		{SrcIP: "10.0.0.1", DstIP: "1.1.1.1"},
		{SrcIP: "99.0.0.1", DstIP: "1.1.1.1"},
	}
	wantStatus(t, do(t, h, "POST", "/v1/tenants/s1/classify-batch", server.ClassifyBatchRequest{Headers: headers}), http.StatusOK)

	rec := do(t, h, "GET", "/v1/tenants/s1/stats", nil)
	wantStatus(t, rec, http.StatusOK)
	var ts server.WireTenantStats
	decode(t, rec, &ts)
	if ts.Lookups != 3 || ts.Matched != 2 || ts.Rules != 1 {
		t.Fatalf("tenant stats = %+v, want 3 lookups / 2 matched / 1 rule", ts)
	}
	if ts.MemoryBits <= 0 || ts.Update.Inserts != 1 || ts.Cache == nil {
		t.Fatalf("tenant stats accounting = %+v", ts)
	}

	rec = do(t, h, "GET", "/v1/stats", nil)
	wantStatus(t, rec, http.StatusOK)
	var gs server.WireGlobalStats
	decode(t, rec, &gs)
	if gs.Tenants != 2 || gs.Lookups != 3 || gs.Matched != 2 || len(gs.PerTenant) != 2 {
		t.Fatalf("global stats = %+v", gs)
	}
	var summed int
	for _, pt := range gs.PerTenant {
		summed += pt.MemoryBits
	}
	if gs.MemoryBits != summed || gs.MemoryBits <= 0 {
		t.Fatalf("global memory_bits %d != per-tenant sum %d", gs.MemoryBits, summed)
	}

	wantStatus(t, do(t, h, "GET", "/v1/tenants/ghost/stats", nil), http.StatusNotFound)
}

// TestRoutesCovered pins the route table: every pattern the handler serves is
// listed by Routes() (which docs/SERVICE.md is checked against), and the list
// is sorted and method-qualified.
func TestRoutesCovered(t *testing.T) {
	routes := server.Routes()
	if len(routes) == 0 {
		t.Fatal("Routes() is empty")
	}
	seen := make(map[string]bool, len(routes))
	for i, r := range routes {
		if seen[r] {
			t.Fatalf("duplicate route %q", r)
		}
		seen[r] = true
		parts := strings.SplitN(r, " ", 2)
		if len(parts) != 2 || !strings.HasPrefix(parts[1], "/") {
			t.Fatalf("route %q is not method-qualified", r)
		}
		if i > 0 && routes[i-1] > r {
			t.Fatalf("routes not sorted: %q before %q", routes[i-1], r)
		}
	}
	for _, want := range []string{"GET /healthz", "POST /v1/tenants", "POST /v1/tenants/{id}/classify-batch"} {
		if !seen[want] {
			t.Fatalf("route %q missing from Routes()", want)
		}
	}
}

// TestMultiTenantStorm hammers the handler from many goroutines — steady
// classification on two tenants with conflicting tables, rule churn on a
// third, tenant create/delete on a fourth — and asserts isolation: each
// reader always sees its own tenant's verdict. Run under -race in CI.
func TestMultiTenantStorm(t *testing.T) {
	_, h := newTestServer()
	for id, arg := range map[string]uint32{"storm-a": 100, "storm-b": 200} {
		wantStatus(t, do(t, h, "POST", "/v1/tenants", server.CreateTenantRequest{ID: id, Engine: "bst", CacheCapacity: 256}), http.StatusCreated)
		rule := server.WireRule{Priority: 0, Src: "10.0.0.0/8", Action: "forward", ActionArg: arg}
		wantStatus(t, do(t, h, "POST", "/v1/tenants/"+id+"/rules", rule), http.StatusOK)
	}
	wantStatus(t, do(t, h, "POST", "/v1/tenants", server.CreateTenantRequest{ID: "storm-churn"}), http.StatusCreated)

	const iters = 200
	errc := make(chan error, 16)
	var done = make(chan struct{})

	reader := func(id string, wantArg uint32) {
		defer func() { done <- struct{}{} }()
		hdr := server.WireHeader{SrcIP: "10.3.4.5", SrcPort: 1234, DstIP: "8.8.8.8", DstPort: 53, Proto: 17}
		for i := 0; i < iters; i++ {
			rec := do(t, h, "POST", "/v1/tenants/"+id+"/classify", hdr)
			if rec.Code != http.StatusOK {
				errc <- fmt.Errorf("%s classify: status %d", id, rec.Code)
				return
			}
			var res server.WireResult
			if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
				errc <- fmt.Errorf("%s classify: %v", id, err)
				return
			}
			if !res.Matched || res.ActionArg != wantArg {
				errc <- fmt.Errorf("%s classify: got %+v, want match with arg %d", id, res, wantArg)
				return
			}
		}
	}
	churner := func() {
		defer func() { done <- struct{}{} }()
		for i := 0; i < iters; i++ {
			rule := server.WireRule{Priority: i % 8, Src: fmt.Sprintf("172.16.%d.0/24", i%8), Action: "drop"}
			op := "insert"
			if i%2 == 1 {
				op = "delete"
			}
			body := map[string]any{"ops": []map[string]any{{"op": op, "rule": rule}}}
			if rec := do(t, h, "POST", "/v1/tenants/storm-churn/rules", body); rec.Code != http.StatusOK {
				errc <- fmt.Errorf("churn %s: status %d (%s)", op, rec.Code, rec.Body.String())
				return
			}
		}
	}
	lifecycler := func() {
		defer func() { done <- struct{}{} }()
		for i := 0; i < iters/4; i++ {
			if rec := do(t, h, "POST", "/v1/tenants", server.CreateTenantRequest{ID: "storm-ephemeral"}); rec.Code != http.StatusCreated {
				errc <- fmt.Errorf("ephemeral create: status %d", rec.Code)
				return
			}
			if rec := do(t, h, "DELETE", "/v1/tenants/storm-ephemeral", nil); rec.Code != http.StatusNoContent {
				errc <- fmt.Errorf("ephemeral delete: status %d", rec.Code)
				return
			}
		}
	}

	workers := 0
	for i := 0; i < 3; i++ {
		go reader("storm-a", 100)
		go reader("storm-b", 200)
		workers += 2
	}
	go churner()
	go lifecycler()
	workers += 2

	for ; workers > 0; workers-- {
		select {
		case err := <-errc:
			t.Fatal(err)
		case <-done:
		}
	}
}
