package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"sdnpc"
)

// maxBodyBytes bounds every request body; a full 10k-rule batch install is
// ~1 MiB of JSON, so 8 MiB leaves generous headroom without letting one
// client balloon the process.
const maxBodyBytes = 8 << 20

// maxBatchHeaders bounds one classify-batch request. Larger loads should be
// split across requests (which is also what amortises better on the wire).
const maxBatchHeaders = 1 << 16

// api holds the handler state: the tenant table and the request logger.
type api struct {
	mgr *Manager
	log *slog.Logger
}

// routes maps every wire-API pattern to its handler. This table is the
// single source of truth for the served surface: the mux is built from it
// and Routes exposes it to the docs check, so a route cannot be registered
// without being documented (or documented without existing).
func (a *api) routes() map[string]http.HandlerFunc {
	return map[string]http.HandlerFunc{
		"GET /healthz":                         a.handleHealthz,
		"GET /v1/stats":                        a.handleGlobalStats,
		"GET /v1/tenants":                      a.handleListTenants,
		"POST /v1/tenants":                     a.handleCreateTenant,
		"GET /v1/tenants/{id}":                 a.handleGetTenant,
		"DELETE /v1/tenants/{id}":              a.handleDeleteTenant,
		"GET /v1/tenants/{id}/rules":           a.handleGetRules,
		"POST /v1/tenants/{id}/rules":          a.handlePostRules,
		"DELETE /v1/tenants/{id}/rules":        a.handleDeleteRule,
		"PUT /v1/tenants/{id}/engine":          a.handlePutEngine,
		"POST /v1/tenants/{id}/classify":       a.handleClassify,
		"POST /v1/tenants/{id}/classify-batch": a.handleClassifyBatch,
		"GET /v1/tenants/{id}/stats":           a.handleTenantStats,
		"GET /v1/tenants/{id}/advise":          a.handleAdvise,
		"POST /v1/tenants/{id}/advise":         a.handleAdviseApply,
	}
}

// Routes returns every registered route pattern, sorted — the list
// docs/SERVICE.md must cover (checked by docs_test.go in CI).
func Routes() []string {
	a := &api{}
	patterns := make([]string, 0, len(a.routes()))
	for p := range a.routes() {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)
	return patterns
}

// Wire forms of the management payloads.

// CreateTenantRequest is the POST /v1/tenants body.
type CreateTenantRequest struct {
	ID                   string  `json:"id"`
	Engine               string  `json:"engine,omitempty"`
	CacheShards          int     `json:"cache_shards,omitempty"`
	CacheCapacity        int     `json:"cache_capacity,omitempty"`
	RebuildAfterDeltas   int     `json:"rebuild_after_deltas,omitempty"`
	DegradationThreshold float64 `json:"degradation_threshold,omitempty"`
	SingleProbe          bool    `json:"single_probe,omitempty"`
	Replicas             int     `json:"replicas,omitempty"`
	Shards               int     `json:"shards,omitempty"`
	PartitionBy          string  `json:"partition_by,omitempty"`
	Sampling             int     `json:"sampling,omitempty"`
	AutoTune             bool    `json:"auto_tune,omitempty"`
	AutoTuneIntervalMs   int     `json:"auto_tune_interval_ms,omitempty"`
}

// WireTenant describes one tenant in list/get/create responses.
type WireTenant struct {
	ID           string    `json:"id"`
	Engine       string    `json:"engine"`
	Rules        int       `json:"rules"`
	RuleCapacity int       `json:"rule_capacity"`
	CacheEnabled bool      `json:"cache_enabled"`
	Created      time.Time `json:"created"`
}

// WireRuleOp is one mutation of a batch rule update.
type WireRuleOp struct {
	// Op is "insert" or "delete".
	Op   string   `json:"op"`
	Rule WireRule `json:"rule"`
}

// RulesRequest is the POST /v1/tenants/{id}/rules body: either one bare
// rule object (single insert), a "rules" list (batch insert) or an "ops"
// list (mixed batch CRUD). Exactly one form must be used.
type RulesRequest struct {
	Rules []WireRule   `json:"rules,omitempty"`
	Ops   []WireRuleOp `json:"ops,omitempty"`
	// The embedded rule carries the single-insert form: a bare rule object
	// unmarshals into these promoted fields.
	WireRule
}

// WireOpError reports one failed op of a batch by its index.
type WireOpError struct {
	Index int    `json:"index"`
	Error string `json:"error"`
}

// RulesResponse summarises one rule-CRUD request.
type RulesResponse struct {
	Installed int           `json:"installed"`
	Deleted   int           `json:"deleted"`
	Rules     int           `json:"rules"`
	Errors    []WireOpError `json:"errors,omitempty"`
}

// ClassifyBatchRequest is the POST /v1/tenants/{id}/classify-batch body.
type ClassifyBatchRequest struct {
	Headers []WireHeader `json:"headers"`
}

// WireBatchReport aggregates one classify-batch response.
type WireBatchReport struct {
	Packets          int     `json:"packets"`
	Matched          int     `json:"matched"`
	MatchRate        float64 `json:"match_rate"`
	AvgLatencyCycles float64 `json:"avg_latency_cycles"`
	MaxLatencyCycles int     `json:"max_latency_cycles"`
}

// ClassifyBatchResponse is the classify-batch reply: one verdict per header,
// in order, plus the batch aggregation.
type ClassifyBatchResponse struct {
	Results []WireResult    `json:"results"`
	Report  WireBatchReport `json:"report"`
}

// WireCacheStats reports a tenant's microflow-cache counters.
type WireCacheStats struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
	Entries   int     `json:"entries"`
	Bits      int     `json:"bits"`
}

// WireUpdateStats reports a tenant's update-plane counters.
type WireUpdateStats struct {
	Inserts        uint64 `json:"inserts"`
	Deletes        uint64 `json:"deletes"`
	DeltaPublishes uint64 `json:"delta_publishes"`
	DeltasApplied  uint64 `json:"deltas_applied"`
	Rebuilds       uint64 `json:"rebuilds"`
	DeltaDebt      int    `json:"delta_debt"`
	PublishP50Ns   int64  `json:"publish_p50_ns"`
	PublishP99Ns   int64  `json:"publish_p99_ns"`
}

// WireTenantStats is the GET /v1/tenants/{id}/stats payload.
type WireTenantStats struct {
	ID           string `json:"id"`
	Engine       string `json:"engine"`
	Rules        int    `json:"rules"`
	RuleCapacity int    `json:"rule_capacity"`
	// Lookups and Matched are the tenant's served-request counters
	// (facade LookupCounters), i.e. what this process actually answered.
	Lookups   uint64  `json:"lookups"`
	Matched   uint64  `json:"matched"`
	MatchRate float64 `json:"match_rate"`
	// ModelLookupsPerSec is the modelled hardware lookup rate of the
	// tenant's active engine, for capacity planning.
	ModelLookupsPerSec float64 `json:"model_lookups_per_sec"`
	// MemoryBits is the tenant's occupied classifier memory (engines,
	// labels, rule filter, packet structure).
	MemoryBits int             `json:"memory_bits"`
	Cache      *WireCacheStats `json:"cache,omitempty"`
	Update     WireUpdateStats `json:"update"`
}

// WireGlobalStats is the GET /v1/stats payload: the shared-memory and
// served-traffic accounting summed across every tenant, plus the per-tenant
// breakdown.
type WireGlobalStats struct {
	Tenants    int               `json:"tenants"`
	Lookups    uint64            `json:"lookups"`
	Matched    uint64            `json:"matched"`
	MemoryBits int               `json:"memory_bits"`
	CacheBits  int               `json:"cache_bits"`
	PerTenant  []WireTenantStats `json:"per_tenant"`
}

// AdviseRequest is the optional POST /v1/tenants/{id}/advise body.
type AdviseRequest struct {
	// Candidates restricts the shadow-benched engines; empty considers every
	// selectable engine.
	Candidates []string `json:"candidates,omitempty"`
}

// AdviseResponse is the advise payload: the ranked recommendations, the
// tenant's auto-tune state, and (POST only) the recommendation that was
// applied.
type AdviseResponse struct {
	Recommendations []sdnpc.Recommendation `json:"recommendations"`
	AutoTune        bool                   `json:"auto_tune"`
	AutoApplied     []sdnpc.Recommendation `json:"auto_applied,omitempty"`
	Applied         *sdnpc.Recommendation  `json:"applied,omitempty"`
	Engine          string                 `json:"engine"`
}

// errorResponse is the uniform error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// --- helpers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the status line is out; a broken client connection is not recoverable here
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// readJSON decodes the request body into v, bounding its size and rejecting
// trailing garbage.
func readJSON(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return errors.New("request body holds more than one JSON value")
	}
	return nil
}

// tenant resolves the {id} path value, writing the 404 itself on a miss.
func (a *api) tenant(w http.ResponseWriter, r *http.Request) (*Tenant, bool) {
	t, err := a.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return nil, false
	}
	return t, true
}

func wireTenant(t *Tenant) WireTenant {
	rep := t.Classifier.Report()
	return WireTenant{
		ID:           t.ID,
		Engine:       rep.ActiveEngine,
		Rules:        rep.RulesInstalled,
		RuleCapacity: rep.RuleCapacity,
		CacheEnabled: rep.CacheEnabled,
		Created:      t.Created,
	}
}

// wireTenantStats assembles one tenant's stats payload from a single
// Report call: every surface (served-request counters, update totals,
// update plane, cache, memory accounting) comes from one snapshot, so the
// payload can never mix pre- and post-update views of the same tenant.
func wireTenantStats(t *Tenant) WireTenantStats {
	c := t.Classifier
	rep := c.Report()
	ws := WireTenantStats{
		ID:                 t.ID,
		Engine:             rep.ActiveEngine,
		Rules:              rep.RulesInstalled,
		RuleCapacity:       rep.RuleCapacity,
		Lookups:            rep.Lookups.Lookups,
		Matched:            rep.Lookups.Matches,
		MatchRate:          rep.Lookups.MatchRate(),
		ModelLookupsPerSec: c.LookupsPerSecond(),
		MemoryBits:         rep.Memory.TotalUsedBits(),
		Update: WireUpdateStats{
			Inserts:        rep.Stats.Inserts,
			Deletes:        rep.Stats.Deletes,
			DeltaPublishes: rep.Updates.DeltaPublishes,
			DeltasApplied:  rep.Updates.DeltasApplied,
			Rebuilds:       rep.Updates.Rebuilds,
			DeltaDebt:      rep.Updates.DeltasSinceRebuild,
			PublishP50Ns:   rep.Updates.PublishLatency.P50().Nanoseconds(),
			PublishP99Ns:   rep.Updates.PublishLatency.P99().Nanoseconds(),
		},
	}
	if rep.CacheEnabled {
		ws.Cache = &WireCacheStats{
			Hits:      rep.Cache.Hits,
			Misses:    rep.Cache.Misses,
			Evictions: rep.Cache.Evictions,
			HitRate:   rep.Cache.HitRate(),
			Entries:   rep.Memory.CacheEntries,
			Bits:      rep.Memory.CacheBits,
		}
	}
	return ws
}

// --- handlers ---

func (a *api) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "tenants": a.mgr.Len()})
}

func (a *api) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	var req CreateTenantRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	t, err := a.mgr.Create(req.ID, TenantConfig{
		Engine:               req.Engine,
		CacheShards:          req.CacheShards,
		CacheCapacity:        req.CacheCapacity,
		RebuildAfterDeltas:   req.RebuildAfterDeltas,
		DegradationThreshold: req.DegradationThreshold,
		SingleProbe:          req.SingleProbe,
		Replicas:             req.Replicas,
		Shards:               req.Shards,
		PartitionBy:          req.PartitionBy,
		Sampling:             req.Sampling,
		AutoTune:             req.AutoTune,
		AutoTuneIntervalMs:   req.AutoTuneIntervalMs,
	})
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrTenantExists) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	a.log.Info("tenant created", "tenant", t.ID, "engine", t.Classifier.Engine())
	writeJSON(w, http.StatusCreated, wireTenant(t))
}

func (a *api) handleListTenants(w http.ResponseWriter, r *http.Request) {
	tenants := a.mgr.List()
	out := make([]WireTenant, len(tenants))
	for i, t := range tenants {
		out[i] = wireTenant(t)
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenants": out})
}

func (a *api) handleGetTenant(w http.ResponseWriter, r *http.Request) {
	t, ok := a.tenant(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, wireTenant(t))
}

func (a *api) handleDeleteTenant(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := a.mgr.Delete(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	a.log.Info("tenant deleted", "tenant", id)
	w.WriteHeader(http.StatusNoContent)
}

func (a *api) handleGetRules(w http.ResponseWriter, r *http.Request) {
	t, ok := a.tenant(w, r)
	if !ok {
		return
	}
	rules := t.Classifier.Rules()
	out := make([]WireRule, len(rules))
	for i, rule := range rules {
		out[i] = encodeRule(rule)
	}
	writeJSON(w, http.StatusOK, map[string]any{"rules": out, "count": len(out)})
}

// handlePostRules serves single-rule inserts, batch inserts and mixed
// insert/delete batches. Every multi-op form goes through the facade's
// Apply path, so a batch is one atomic publish with per-op error reporting.
func (a *api) handlePostRules(w http.ResponseWriter, r *http.Request) {
	t, ok := a.tenant(w, r)
	if !ok {
		return
	}
	var req RulesRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Rules) > 0 && len(req.Ops) > 0 {
		writeError(w, http.StatusBadRequest, errors.New(`use either "rules" or "ops", not both`))
		return
	}

	// Normalise all three request forms into one op batch.
	var wireOps []WireRuleOp
	switch {
	case len(req.Ops) > 0:
		wireOps = req.Ops
	case len(req.Rules) > 0:
		wireOps = make([]WireRuleOp, len(req.Rules))
		for i, wr := range req.Rules {
			wireOps[i] = WireRuleOp{Op: "insert", Rule: wr}
		}
	case req.WireRule.Action != "":
		wireOps = []WireRuleOp{{Op: "insert", Rule: req.WireRule}}
	default:
		writeError(w, http.StatusBadRequest, errors.New(`request body must be a rule object, {"rules": [...]} or {"ops": [...]}`))
		return
	}

	resp := RulesResponse{}
	ops := make([]sdnpc.UpdateOp, 0, len(wireOps))
	// opIndex maps applied-op positions back to request indices so per-op
	// errors from Apply are reported against the caller's numbering even
	// when some ops already failed decoding.
	opIndex := make([]int, 0, len(wireOps))
	for i, wop := range wireOps {
		var del bool
		switch wop.Op {
		case "insert", "":
			del = false
		case "delete":
			del = true
		default:
			resp.Errors = append(resp.Errors, WireOpError{Index: i, Error: fmt.Sprintf("unknown op %q (want insert or delete)", wop.Op)})
			continue
		}
		rule, err := decodeRule(wop.Rule)
		if err != nil {
			resp.Errors = append(resp.Errors, WireOpError{Index: i, Error: err.Error()})
			continue
		}
		ops = append(ops, sdnpc.UpdateOp{Delete: del, Rule: rule})
		opIndex = append(opIndex, i)
	}
	if len(ops) == 0 && len(resp.Errors) > 0 {
		// Nothing decodable: the request as a whole is malformed.
		writeJSON(w, http.StatusBadRequest, resp)
		return
	}

	_, errs, err := t.Classifier.Apply(ops)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("applying rule batch: %w", err))
		return
	}
	for i, opErr := range errs {
		if opErr != nil {
			resp.Errors = append(resp.Errors, WireOpError{Index: opIndex[i], Error: opErr.Error()})
			continue
		}
		if ops[i].Delete {
			resp.Deleted++
		} else {
			resp.Installed++
		}
	}
	resp.Rules = t.Classifier.RuleCount()
	a.log.Info("rules applied", "tenant", t.ID, "installed", resp.Installed, "deleted", resp.Deleted, "errors", len(resp.Errors))
	writeJSON(w, http.StatusOK, resp)
}

// handleDeleteRule removes one installed rule, identified by its field
// matches and priority in the request body.
func (a *api) handleDeleteRule(w http.ResponseWriter, r *http.Request) {
	t, ok := a.tenant(w, r)
	if !ok {
		return
	}
	var wr WireRule
	if err := readJSON(w, r, &wr); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rule, err := decodeRule(wr)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := t.Classifier.Delete(rule); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, RulesResponse{Deleted: 1, Rules: t.Classifier.RuleCount()})
}

func (a *api) handlePutEngine(w http.ResponseWriter, r *http.Request) {
	t, ok := a.tenant(w, r)
	if !ok {
		return
	}
	var req struct {
		Engine string `json:"engine"`
	}
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := t.Classifier.SelectEngine(req.Engine); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	a.log.Info("engine selected", "tenant", t.ID, "engine", t.Classifier.Engine())
	writeJSON(w, http.StatusOK, map[string]string{"engine": t.Classifier.Engine()})
}

// handleClassify classifies one header. With ?all=true the response also
// carries the full ordered action list under multi-action semantics: every
// matching rule's action in priority order, up to and including the first
// terminating match (actions[0] always agrees with the first-match verdict).
func (a *api) handleClassify(w http.ResponseWriter, r *http.Request) {
	t, ok := a.tenant(w, r)
	if !ok {
		return
	}
	var wh WireHeader
	if err := readJSON(w, r, &wh); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	h, err := decodeHeader(wh)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if all, _ := strconv.ParseBool(r.URL.Query().Get("all")); all {
		refs, res := t.Classifier.LookupAll(h)
		wr := encodeResult(res)
		wr.Actions = encodeActionRefs(refs)
		writeJSON(w, http.StatusOK, wr)
		return
	}
	writeJSON(w, http.StatusOK, encodeResult(t.Classifier.Lookup(h)))
}

func (a *api) handleClassifyBatch(w http.ResponseWriter, r *http.Request) {
	t, ok := a.tenant(w, r)
	if !ok {
		return
	}
	var req ClassifyBatchRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Headers) == 0 {
		writeError(w, http.StatusBadRequest, errors.New(`"headers" must hold at least one header`))
		return
	}
	if len(req.Headers) > maxBatchHeaders {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch of %d headers exceeds the %d-header limit", len(req.Headers), maxBatchHeaders))
		return
	}
	headers := make([]sdnpc.Header, len(req.Headers))
	for i, wh := range req.Headers {
		h, err := decodeHeader(wh)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("header %d: %w", i, err))
			return
		}
		headers[i] = h
	}
	results := t.Classifier.LookupBatch(headers)
	report := sdnpc.SummarizeBatch(results)
	resp := ClassifyBatchResponse{
		Results: make([]WireResult, len(results)),
		Report: WireBatchReport{
			Packets:          report.Packets,
			Matched:          report.Matched,
			MatchRate:        report.MatchRate(),
			AvgLatencyCycles: report.AverageLatencyCycles(),
			MaxLatencyCycles: report.MaxLatencyCycles,
		},
	}
	for i, res := range results {
		resp.Results[i] = encodeResult(res)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (a *api) handleTenantStats(w http.ResponseWriter, r *http.Request) {
	t, ok := a.tenant(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, wireTenantStats(t))
}

// handleAdvise runs the workload-adaptive advisor for one tenant and
// returns its ranked recommendations without applying anything. A
// comma-separated ?candidates= query restricts the shadow-benched engines.
func (a *api) handleAdvise(w http.ResponseWriter, r *http.Request) {
	t, ok := a.tenant(w, r)
	if !ok {
		return
	}
	var candidates []string
	if q := r.URL.Query().Get("candidates"); q != "" {
		candidates = strings.Split(q, ",")
	}
	recs, err := t.Classifier.Advise(candidates...)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("advising tenant %q: %w", t.ID, err))
		return
	}
	writeJSON(w, http.StatusOK, adviseResponse(t, recs, nil))
}

// handleAdviseApply runs the advisor and applies its strongest applicable
// recommendation through the classifier's atomic switch paths — the wire
// form of advise-then-apply for deployments that keep AutoTune off.
func (a *api) handleAdviseApply(w http.ResponseWriter, r *http.Request) {
	t, ok := a.tenant(w, r)
	if !ok {
		return
	}
	var req AdviseRequest
	if r.ContentLength != 0 {
		if err := readJSON(w, r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	recs, err := t.Classifier.Advise(req.Candidates...)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("advising tenant %q: %w", t.ID, err))
		return
	}
	var applied *sdnpc.Recommendation
	for i := range recs {
		if err := t.Classifier.ApplyRecommendation(recs[i]); err == nil {
			applied = &recs[i]
			a.log.Info("recommendation applied", "tenant", t.ID, "recommendation", recs[i].String())
			break
		}
	}
	writeJSON(w, http.StatusOK, adviseResponse(t, recs, applied))
}

func adviseResponse(t *Tenant, recs []sdnpc.Recommendation, applied *sdnpc.Recommendation) AdviseResponse {
	return AdviseResponse{
		Recommendations: recs,
		AutoTune:        t.Classifier.AutoTuneEnabled(),
		AutoApplied:     t.Classifier.AutoApplied(),
		Applied:         applied,
		Engine:          t.Classifier.Engine(),
	}
}

// handleGlobalStats sums the served-traffic and memory accounting across
// every tenant — the process-wide view of the shared machine.
func (a *api) handleGlobalStats(w http.ResponseWriter, r *http.Request) {
	tenants := a.mgr.List()
	out := WireGlobalStats{Tenants: len(tenants), PerTenant: make([]WireTenantStats, len(tenants))}
	for i, t := range tenants {
		ts := wireTenantStats(t)
		out.PerTenant[i] = ts
		out.Lookups += ts.Lookups
		out.Matched += ts.Matched
		out.MemoryBits += ts.MemoryBits
		if ts.Cache != nil {
			out.CacheBits += ts.Cache.Bits
		}
	}
	writeJSON(w, http.StatusOK, out)
}
