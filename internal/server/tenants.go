// Package server is the multi-tenant serving layer of the classifier: a
// tenant manager holding any number of independent sdnpc.Classifier tables,
// fronted by an HTTP/JSON wire API (see api.go for the routes and
// docs/SERVICE.md for the reference).
//
// This is the "millions of users" deployment shape of the paper's
// architecture: many small per-tenant rule sets served concurrently from one
// process, each with its own engine selection, microflow cache and update
// policy, instead of one big table. The package deliberately builds on the
// public facade only — every per-tenant capability it exposes over the wire
// (engine switching, batched rule CRUD through Apply, lookup counters,
// memory accounting) is one facade call, so the wire API cannot grow
// semantics the embedded API does not have.
package server

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"sync"
	"time"

	"sdnpc"
)

// Errors returned by the tenant manager, mapped to HTTP statuses by the API
// layer.
var (
	ErrTenantExists   = errors.New("server: tenant already exists")
	ErrTenantNotFound = errors.New("server: tenant not found")
)

// tenantIDPattern constrains tenant identifiers to URL-path-safe names so
// they can be used verbatim in /v1/tenants/{id} routes.
var tenantIDPattern = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// TenantConfig is the per-tenant classifier configuration carried by the
// create request. The zero value selects the paper's defaults: field tier
// with the default engine, no microflow cache, default update policy.
type TenantConfig struct {
	// Engine selects the serving engine of either tier by registry name;
	// empty keeps the default.
	Engine string
	// CacheShards and CacheCapacity configure the microflow cache in front
	// of the tenant's engines; CacheCapacity <= 0 disables the cache.
	CacheShards   int
	CacheCapacity int
	// RebuildAfterDeltas and DegradationThreshold tune the incremental
	// update plane (zero values select the defaults).
	RebuildAfterDeltas   int
	DegradationThreshold float64
	// SingleProbe selects the paper's single-probe HPML combination mode.
	SingleProbe bool
	// Replicas enables the tenant's replicated serving fleet: every publish
	// fans out to this many per-worker snapshot/cache replicas. <= 1 keeps
	// the single shared snapshot.
	Replicas int
	// Shards and PartitionBy enable rule-space partitioning: the tenant's
	// table is split into Shards shards by the named strategy ("protocol" or
	// "src-byte"; empty selects protocol). Shards <= 1 keeps the table
	// unsharded.
	Shards      int
	PartitionBy string
	// Sampling enables the traffic sampler the advisor replays (> 0 sets the
	// ring capacity; advise endpoints fall back to a synthetic trace without
	// it).
	Sampling int
	// AutoTune opts the tenant into the background self-tuning control
	// plane; AutoTuneIntervalMs overrides its advise period (0 = default).
	AutoTune           bool
	AutoTuneIntervalMs int
}

// Tenant is one isolated classifier table: its own rules, engine selection,
// cache and counters. The embedded Classifier is safe for concurrent use, so
// a Tenant handed out by the manager stays valid (and lock-free for lookups)
// even while other handlers mutate or delete it.
type Tenant struct {
	ID      string
	Created time.Time
	Config  TenantConfig

	Classifier *sdnpc.Classifier
}

// Manager owns the tenant table. All methods are safe for concurrent use;
// the lock covers only the map, never a classifier operation, so one
// tenant's rebuild can never stall another tenant's create or classify.
type Manager struct {
	mu      sync.RWMutex
	tenants map[string]*Tenant
}

// NewManager returns an empty tenant manager.
func NewManager() *Manager {
	return &Manager{tenants: make(map[string]*Tenant)}
}

// Create builds a classifier for the given tenant configuration and
// registers it under id. It fails with ErrTenantExists when the id is taken
// and with a validation error when the id or configuration is unusable; a
// failed create never registers a partial tenant.
func (m *Manager) Create(id string, cfg TenantConfig) (*Tenant, error) {
	if !tenantIDPattern.MatchString(id) {
		return nil, fmt.Errorf("server: invalid tenant id %q (want %s)", id, tenantIDPattern)
	}
	if cfg.Engine != "" && !engineSelectable(cfg.Engine) {
		return nil, fmt.Errorf("server: unknown engine %q (selectable: %v)", cfg.Engine, sdnpc.Engines())
	}
	opts := []sdnpc.Option{}
	if cfg.Engine != "" {
		opts = append(opts, sdnpc.WithEngine(cfg.Engine))
	}
	if cfg.CacheCapacity > 0 {
		opts = append(opts, sdnpc.WithCache(cfg.CacheShards, cfg.CacheCapacity))
	}
	if cfg.RebuildAfterDeltas != 0 || cfg.DegradationThreshold != 0 {
		opts = append(opts, sdnpc.WithUpdatePolicy(cfg.RebuildAfterDeltas, cfg.DegradationThreshold))
	}
	if cfg.SingleProbe {
		opts = append(opts, sdnpc.WithSingleProbe())
	}
	if cfg.Replicas > 1 {
		opts = append(opts, sdnpc.WithReplicas(cfg.Replicas))
	}
	if cfg.Shards > 1 {
		opts = append(opts, sdnpc.WithShards(cfg.Shards, cfg.PartitionBy))
	}
	if cfg.Sampling > 0 {
		opts = append(opts, sdnpc.WithSampling(cfg.Sampling))
	}
	if cfg.AutoTune {
		opts = append(opts, sdnpc.WithAutoTune(time.Duration(cfg.AutoTuneIntervalMs)*time.Millisecond))
	}
	c, err := sdnpc.New(opts...)
	if err != nil {
		return nil, fmt.Errorf("server: building tenant %q: %w", id, err)
	}
	t := &Tenant{ID: id, Created: time.Now().UTC(), Config: cfg, Classifier: c}

	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.tenants[id]; ok {
		return nil, fmt.Errorf("%w: %q", ErrTenantExists, id)
	}
	m.tenants[id] = t
	return t, nil
}

// Get returns the tenant registered under id.
func (m *Manager) Get(id string) (*Tenant, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	t, ok := m.tenants[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrTenantNotFound, id)
	}
	return t, nil
}

// Delete unregisters the tenant and stops its background resources (the
// auto-tuner, when configured). In-flight requests holding the tenant keep
// a valid classifier; new requests no longer resolve the id.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	t, ok := m.tenants[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrTenantNotFound, id)
	}
	delete(m.tenants, id)
	m.mu.Unlock()
	t.Classifier.Close()
	return nil
}

// List returns the registered tenants sorted by id.
func (m *Manager) List() []*Tenant {
	m.mu.RLock()
	out := make([]*Tenant, 0, len(m.tenants))
	for _, t := range m.tenants {
		out = append(out, t)
	}
	m.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of registered tenants.
func (m *Manager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.tenants)
}

// engineSelectable reports whether name is a selectable engine of either
// tier.
func engineSelectable(name string) bool {
	for _, n := range sdnpc.Engines() {
		if n == name {
			return true
		}
	}
	return false
}
