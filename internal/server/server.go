package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"time"
)

// shutdownGrace is how long Serve waits for in-flight requests after its
// context is cancelled before closing their connections.
const shutdownGrace = 5 * time.Second

// Server is the multi-tenant classifier daemon: the tenant manager, the
// wire-API handler tree and the HTTP plumbing around them.
type Server struct {
	mgr *Manager
	log *slog.Logger
	mux *http.ServeMux
}

// New builds a server with an empty tenant table. A nil logger selects
// slog.Default.
func New(log *slog.Logger) *Server {
	if log == nil {
		log = slog.Default()
	}
	s := &Server{mgr: NewManager(), log: log, mux: http.NewServeMux()}
	a := &api{mgr: s.mgr, log: log}
	for pattern, handler := range a.routes() {
		s.mux.Handle(pattern, handler)
	}
	return s
}

// Manager returns the server's tenant table, for embedding callers (the
// load generator pre-provisions tenants through it in in-process mode).
func (s *Server) Manager() *Manager { return s.mgr }

// Handler returns the full handler tree — the wire API wrapped in request
// logging — for mounting under httptest or a caller-owned http.Server.
func (s *Server) Handler() http.Handler { return s.logRequests(s.mux) }

// ListenAndServe binds addr and serves until ctx is cancelled. A bind
// failure is returned immediately (the daemon must exit non-zero on it, not
// limp along); after a clean shutdown it returns nil.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: binding %s: %w", addr, err)
	}
	return s.Serve(ctx, ln)
}

// Serve serves the wire API on the given listener until ctx is cancelled,
// then shuts down gracefully: no new connections, in-flight requests get
// shutdownGrace to finish.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	httpServer := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.Serve(ln) }()
	s.log.Info("serving", "addr", ln.Addr().String())

	select {
	case err := <-errCh:
		// Serve never returns nil; anything before cancellation is real.
		return fmt.Errorf("server: serving %s: %w", ln.Addr(), err)
	case <-ctx.Done():
	}

	s.log.Info("shutting down", "grace", shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("server: shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("server: serving %s: %w", ln.Addr(), err)
	}
	s.log.Info("shutdown complete")
	return nil
}

// statusRecorder captures the response status for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// logRequests wraps the handler tree in structured request logging: method,
// path, status and wall-clock duration per request.
func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration", time.Since(start),
		)
	})
}
