package server

import (
	"fmt"
	"strings"

	"sdnpc"
)

// The wire representations of rules, headers and results. Field matches are
// carried in human-readable form (CIDR prefixes, port ranges, action names)
// so the API is curl-able; omitted match fields are wildcards, mirroring the
// facade's rule builder.

// WireRule is the JSON form of one classification rule.
type WireRule struct {
	// Priority orders the rule within the tenant's table; smaller wins.
	Priority int `json:"priority"`
	// Src and Dst are IPv4 CIDR prefixes; empty or omitted means any address.
	Src string `json:"src,omitempty"`
	Dst string `json:"dst,omitempty"`
	// Src6 and Dst6 are IPv6 CIDR prefixes. Constraining one makes the rule
	// IPv6-only; a rule may not constrain both families.
	Src6 string `json:"src6,omitempty"`
	Dst6 string `json:"dst6,omitempty"`
	// SrcPort and DstPort are inclusive ranges; omitted means any port.
	SrcPort *WirePortRange `json:"src_port,omitempty"`
	DstPort *WirePortRange `json:"dst_port,omitempty"`
	// Proto is an exact IP protocol number; omitted means any protocol.
	Proto *uint8 `json:"proto,omitempty"`
	// VLAN is an exact 802.1Q tag match (1..4095); omitted means any tag.
	VLAN *uint16 `json:"vlan,omitempty"`
	// TCPFlags constrains the TCP flags byte; omitted means any flags.
	TCPFlags *WireFlagMatch `json:"tcp_flags,omitempty"`
	// NonTerminating marks a rule whose match contributes its action to a
	// multi-action classification and lets evaluation continue.
	NonTerminating bool `json:"non_terminating,omitempty"`
	// Action is one of forward, drop, modify, group, controller.
	Action string `json:"action"`
	// ActionArg carries the action parameter (egress port, group id, ...).
	ActionArg uint32 `json:"action_arg,omitempty"`
}

// WireFlagMatch is a value/mask match over the TCP flags byte: header bits
// selected by mask must equal the corresponding bits of value.
type WireFlagMatch struct {
	Value uint8 `json:"value"`
	Mask  uint8 `json:"mask"`
}

// WirePortRange is an inclusive port range on the wire.
type WirePortRange struct {
	Lo uint16 `json:"lo"`
	Hi uint16 `json:"hi"`
}

// WireHeader is the JSON form of one packet header. The address family is
// inferred from the address syntax: dotted-quad addresses build an IPv4
// header, colon-separated addresses an IPv6 one (both addresses must agree).
type WireHeader struct {
	SrcIP   string `json:"src_ip"`
	SrcPort uint16 `json:"src_port"`
	DstIP   string `json:"dst_ip"`
	DstPort uint16 `json:"dst_port"`
	Proto   uint8  `json:"proto"`
	// VLAN is the 802.1Q tag; 0 (or omitted) means untagged.
	VLAN uint16 `json:"vlan,omitempty"`
	// TCPFlags is the TCP flags byte; meaningful only for TCP traffic.
	TCPFlags uint8 `json:"tcp_flags,omitempty"`
}

// WireResult is the JSON form of one classification verdict.
type WireResult struct {
	Matched bool `json:"matched"`
	// Priority and the action fields are meaningful only when Matched.
	Priority      int    `json:"priority"`
	Action        string `json:"action,omitempty"`
	ActionArg     uint32 `json:"action_arg,omitempty"`
	LatencyCycles int    `json:"latency_cycles"`
	// Actions is the full ordered action list under multi-action semantics,
	// present only when the classify request asked for it (?all=true): every
	// matching rule's action in priority order, up to and including the
	// first terminating match.
	Actions []WireActionRef `json:"actions,omitempty"`
}

// WireActionRef is one entry of a multi-action classification result.
type WireActionRef struct {
	Priority  int    `json:"priority"`
	Action    string `json:"action"`
	ActionArg uint32 `json:"action_arg,omitempty"`
	Terminal  bool   `json:"terminal"`
}

// decodeRule converts a wire rule into a facade rule through the rule
// builder, so the wire API accepts exactly what the embedded API accepts.
func decodeRule(wr WireRule) (sdnpc.Rule, error) {
	b := sdnpc.NewRule(wr.Priority)
	if wr.Src != "" {
		b = b.From(wr.Src)
	}
	if wr.Dst != "" {
		b = b.To(wr.Dst)
	}
	if wr.SrcPort != nil {
		b = b.SrcPorts(wr.SrcPort.Lo, wr.SrcPort.Hi)
	}
	if wr.DstPort != nil {
		b = b.DstPorts(wr.DstPort.Lo, wr.DstPort.Hi)
	}
	if wr.Src6 != "" {
		b = b.From6(wr.Src6)
	}
	if wr.Dst6 != "" {
		b = b.To6(wr.Dst6)
	}
	if wr.Proto != nil {
		b = b.Proto(*wr.Proto)
	}
	if wr.VLAN != nil {
		b = b.VLAN(*wr.VLAN)
	}
	if wr.TCPFlags != nil {
		b = b.TCPFlags(wr.TCPFlags.Value, wr.TCPFlags.Mask)
	}
	if wr.NonTerminating {
		b = b.NonTerminating()
	}
	switch wr.Action {
	case "forward":
		b = b.Forward(wr.ActionArg)
	case "drop":
		b = b.Drop()
	case "modify":
		b = b.ModifyWith(wr.ActionArg)
	case "group":
		b = b.GroupTo(wr.ActionArg)
	case "controller":
		b = b.Punt()
	case "":
		return sdnpc.Rule{}, fmt.Errorf("server: rule has no action (want forward, drop, modify, group or controller)")
	default:
		return sdnpc.Rule{}, fmt.Errorf("server: unknown action %q (want forward, drop, modify, group or controller)", wr.Action)
	}
	return b.Build()
}

// encodeRule converts an installed rule back to its wire form.
func encodeRule(r sdnpc.Rule) WireRule {
	wr := WireRule{
		Priority:  r.Priority,
		Action:    r.Action.String(),
		ActionArg: r.ActionArg,
	}
	if !r.SrcPrefix.IsWildcard() {
		wr.Src = r.SrcPrefix.String()
	}
	if !r.DstPrefix.IsWildcard() {
		wr.Dst = r.DstPrefix.String()
	}
	if !r.SrcPort.IsWildcard() {
		wr.SrcPort = &WirePortRange{Lo: r.SrcPort.Lo, Hi: r.SrcPort.Hi}
	}
	if !r.DstPort.IsWildcard() {
		wr.DstPort = &WirePortRange{Lo: r.DstPort.Lo, Hi: r.DstPort.Hi}
	}
	if !r.Protocol.IsWildcard() {
		proto := r.Protocol.Value
		wr.Proto = &proto
	}
	if !r.Src6.IsWildcard() {
		wr.Src6 = r.Src6.String()
	}
	if !r.Dst6.IsWildcard() {
		wr.Dst6 = r.Dst6.String()
	}
	if !r.VLAN.IsWildcard() {
		tag := r.VLAN.Value & r.VLAN.Mask
		wr.VLAN = &tag
	}
	if !r.TCPFlags.IsWildcard() {
		wr.TCPFlags = &WireFlagMatch{Value: r.TCPFlags.Value, Mask: r.TCPFlags.Mask}
	}
	wr.NonTerminating = r.NonTerminating
	return wr
}

// decodeHeader converts a wire header into a facade header, inferring the
// address family from the address syntax.
func decodeHeader(wh WireHeader) (sdnpc.Header, error) {
	v6 := strings.Contains(wh.SrcIP, ":")
	if v6 != strings.Contains(wh.DstIP, ":") {
		return sdnpc.Header{}, fmt.Errorf("server: header mixes IPv4 and IPv6 addresses (%q, %q)", wh.SrcIP, wh.DstIP)
	}
	var h sdnpc.Header
	var err error
	if v6 {
		h, err = sdnpc.ParseHeader6(wh.SrcIP, wh.SrcPort, wh.DstIP, wh.DstPort, wh.Proto)
	} else {
		h, err = sdnpc.ParseHeader(wh.SrcIP, wh.SrcPort, wh.DstIP, wh.DstPort, wh.Proto)
	}
	if err != nil {
		return sdnpc.Header{}, err
	}
	h.VLAN = wh.VLAN
	h.TCPFlags = wh.TCPFlags
	return h, nil
}

// encodeResult converts a lookup result to its wire form.
func encodeResult(r sdnpc.Result) WireResult {
	wr := WireResult{
		Matched:       r.Matched,
		Priority:      r.Priority,
		LatencyCycles: r.LatencyCycles,
	}
	if r.Matched {
		wr.Action = r.Action.String()
		wr.ActionArg = r.ActionArg
	}
	return wr
}

// encodeActionRefs converts a multi-action result list to its wire form.
func encodeActionRefs(refs []sdnpc.ActionRef) []WireActionRef {
	out := make([]WireActionRef, len(refs))
	for i, ref := range refs {
		out[i] = WireActionRef{
			Priority:  ref.Priority,
			Action:    ref.Action.String(),
			ActionArg: ref.ActionArg,
			Terminal:  ref.Terminal,
		}
	}
	return out
}
