package server

import (
	"fmt"

	"sdnpc"
)

// The wire representations of rules, headers and results. Field matches are
// carried in human-readable form (CIDR prefixes, port ranges, action names)
// so the API is curl-able; omitted match fields are wildcards, mirroring the
// facade's rule builder.

// WireRule is the JSON form of one classification rule.
type WireRule struct {
	// Priority orders the rule within the tenant's table; smaller wins.
	Priority int `json:"priority"`
	// Src and Dst are CIDR prefixes; empty or omitted means any address.
	Src string `json:"src,omitempty"`
	Dst string `json:"dst,omitempty"`
	// SrcPort and DstPort are inclusive ranges; omitted means any port.
	SrcPort *WirePortRange `json:"src_port,omitempty"`
	DstPort *WirePortRange `json:"dst_port,omitempty"`
	// Proto is an exact IP protocol number; omitted means any protocol.
	Proto *uint8 `json:"proto,omitempty"`
	// Action is one of forward, drop, modify, group, controller.
	Action string `json:"action"`
	// ActionArg carries the action parameter (egress port, group id, ...).
	ActionArg uint32 `json:"action_arg,omitempty"`
}

// WirePortRange is an inclusive port range on the wire.
type WirePortRange struct {
	Lo uint16 `json:"lo"`
	Hi uint16 `json:"hi"`
}

// WireHeader is the JSON form of one packet five-tuple.
type WireHeader struct {
	SrcIP   string `json:"src_ip"`
	SrcPort uint16 `json:"src_port"`
	DstIP   string `json:"dst_ip"`
	DstPort uint16 `json:"dst_port"`
	Proto   uint8  `json:"proto"`
}

// WireResult is the JSON form of one classification verdict.
type WireResult struct {
	Matched bool `json:"matched"`
	// Priority and the action fields are meaningful only when Matched.
	Priority      int    `json:"priority"`
	Action        string `json:"action,omitempty"`
	ActionArg     uint32 `json:"action_arg,omitempty"`
	LatencyCycles int    `json:"latency_cycles"`
}

// decodeRule converts a wire rule into a facade rule through the rule
// builder, so the wire API accepts exactly what the embedded API accepts.
func decodeRule(wr WireRule) (sdnpc.Rule, error) {
	b := sdnpc.NewRule(wr.Priority)
	if wr.Src != "" {
		b = b.From(wr.Src)
	}
	if wr.Dst != "" {
		b = b.To(wr.Dst)
	}
	if wr.SrcPort != nil {
		b = b.SrcPorts(wr.SrcPort.Lo, wr.SrcPort.Hi)
	}
	if wr.DstPort != nil {
		b = b.DstPorts(wr.DstPort.Lo, wr.DstPort.Hi)
	}
	if wr.Proto != nil {
		b = b.Proto(*wr.Proto)
	}
	switch wr.Action {
	case "forward":
		b = b.Forward(wr.ActionArg)
	case "drop":
		b = b.Drop()
	case "modify":
		b = b.ModifyWith(wr.ActionArg)
	case "group":
		b = b.GroupTo(wr.ActionArg)
	case "controller":
		b = b.Punt()
	case "":
		return sdnpc.Rule{}, fmt.Errorf("server: rule has no action (want forward, drop, modify, group or controller)")
	default:
		return sdnpc.Rule{}, fmt.Errorf("server: unknown action %q (want forward, drop, modify, group or controller)", wr.Action)
	}
	return b.Build()
}

// encodeRule converts an installed rule back to its wire form.
func encodeRule(r sdnpc.Rule) WireRule {
	wr := WireRule{
		Priority:  r.Priority,
		Action:    r.Action.String(),
		ActionArg: r.ActionArg,
	}
	if !r.SrcPrefix.IsWildcard() {
		wr.Src = r.SrcPrefix.String()
	}
	if !r.DstPrefix.IsWildcard() {
		wr.Dst = r.DstPrefix.String()
	}
	if !r.SrcPort.IsWildcard() {
		wr.SrcPort = &WirePortRange{Lo: r.SrcPort.Lo, Hi: r.SrcPort.Hi}
	}
	if !r.DstPort.IsWildcard() {
		wr.DstPort = &WirePortRange{Lo: r.DstPort.Lo, Hi: r.DstPort.Hi}
	}
	if !r.Protocol.IsWildcard() {
		proto := r.Protocol.Value
		wr.Proto = &proto
	}
	return wr
}

// decodeHeader converts a wire header into a facade header.
func decodeHeader(wh WireHeader) (sdnpc.Header, error) {
	return sdnpc.ParseHeader(wh.SrcIP, wh.SrcPort, wh.DstIP, wh.DstPort, wh.Proto)
}

// encodeResult converts a lookup result to its wire form.
func encodeResult(r sdnpc.Result) WireResult {
	wr := WireResult{
		Matched:       r.Matched,
		Priority:      r.Priority,
		LatencyCycles: r.LatencyCycles,
	}
	if r.Matched {
		wr.Action = r.Action.String()
		wr.ActionArg = r.ActionArg
	}
	return wr
}
