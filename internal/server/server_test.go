// Lifecycle tests: real TCP serving, graceful shutdown on context
// cancellation, and the bind-failure path the daemon turns into a non-zero
// exit.
package server_test

import (
	"context"
	"io"
	"log/slog"
	"net"
	"net/http"
	"testing"
	"time"

	"sdnpc/internal/server"
)

func TestServeGracefulShutdown(t *testing.T) {
	srv, _ := newTestServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()

	// The server answers while running...
	url := "http://" + ln.Addr().String() + "/healthz"
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("healthz while serving: %v", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// ...and cancellation shuts it down cleanly.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve after cancel: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after context cancellation")
	}
	if _, err := client.Get(url); err == nil {
		t.Fatal("server still answering after shutdown")
	}
}

func TestListenAndServeBindFailure(t *testing.T) {
	// Occupy a port, then ask the server to bind it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()

	srv := server.New(slog.New(slog.NewTextHandler(io.Discard, nil)))
	if err := srv.ListenAndServe(context.Background(), ln.Addr().String()); err == nil {
		t.Fatal("ListenAndServe on an occupied port returned nil")
	}
}
