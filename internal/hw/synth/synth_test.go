package synth

import (
	"strings"
	"testing"
)

// referenceSpec is a representative architecture specification in the same
// region as the paper's default geometry; exact Table V reproduction is
// asserted in internal/core, which owns the default geometry.
func referenceSpec() ArchSpec {
	return ArchSpec{
		BlockMemoryBits:  2 * 1024 * 1024,
		MemoryBlocks:     24,
		PipelineStages:   10,
		DatapathBits:     512,
		RegisterFileBits: 10000,
		Comparators:      256,
		HashUnits:        1,
		HeaderBits:       448,
	}
}

func TestStratixVDevice(t *testing.T) {
	d := StratixV()
	if d.ALMs != 225400 {
		t.Errorf("ALMs = %d, want 225400 (Table V denominator)", d.ALMs)
	}
	if d.BlockMemoryBits != 54476800 {
		t.Errorf("BlockMemoryBits = %d, want 54476800 (Table V denominator)", d.BlockMemoryBits)
	}
	if d.Pins != 908 {
		t.Errorf("Pins = %d, want 908 (Table V denominator)", d.Pins)
	}
	if !strings.Contains(d.Name, "Stratix V") {
		t.Errorf("device name %q should identify Stratix V", d.Name)
	}
}

func TestEstimateValidation(t *testing.T) {
	bad := []ArchSpec{
		{},
		{BlockMemoryBits: 100},
		{BlockMemoryBits: 100, MemoryBlocks: 1},
	}
	for _, spec := range bad {
		if _, err := Estimate(spec, StratixV()); err == nil {
			t.Errorf("Estimate(%+v) should fail", spec)
		}
	}
}

func TestEstimateBasicProperties(t *testing.T) {
	spec := referenceSpec()
	report, err := Estimate(spec, StratixV())
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if report.BlockMemoryBits != spec.BlockMemoryBits {
		t.Errorf("BlockMemoryBits = %d, want the spec value %d", report.BlockMemoryBits, spec.BlockMemoryBits)
	}
	if report.Pins != spec.HeaderBits+ControlPins {
		t.Errorf("Pins = %d, want %d", report.Pins, spec.HeaderBits+ControlPins)
	}
	if report.LogicALMs <= 0 || report.Registers <= 0 {
		t.Errorf("non-positive resource estimate: %+v", report)
	}
	if report.FmaxMHz <= 0 || report.FmaxMHz > BaseFmaxMHz {
		t.Errorf("FmaxMHz = %v, want in (0, %v]", report.FmaxMHz, BaseFmaxMHz)
	}
	if report.MemoryUtilisation() <= 0 || report.MemoryUtilisation() >= 1 {
		t.Errorf("MemoryUtilisation() = %v", report.MemoryUtilisation())
	}
	if report.LogicUtilisation() <= 0 || report.PinUtilisation() <= 0 {
		t.Error("utilisation ratios must be positive")
	}
	out := report.String()
	for _, want := range []string{"Logical Utilization", "Total block memory bits", "Maximum Frequency", "Total Number Pins"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestEstimateScalesWithGeometry(t *testing.T) {
	base := referenceSpec()
	baseReport, err := Estimate(base, StratixV())
	if err != nil {
		t.Fatal(err)
	}

	// Doubling the rule capacity (block memory) must not change logic but
	// must double reported memory bits.
	bigger := base
	bigger.BlockMemoryBits *= 2
	biggerReport, err := Estimate(bigger, StratixV())
	if err != nil {
		t.Fatal(err)
	}
	if biggerReport.BlockMemoryBits != 2*baseReport.BlockMemoryBits {
		t.Errorf("memory bits did not scale: %d vs %d", biggerReport.BlockMemoryBits, baseReport.BlockMemoryBits)
	}
	if biggerReport.LogicALMs != baseReport.LogicALMs {
		t.Errorf("logic changed when only memory capacity grew: %d vs %d", biggerReport.LogicALMs, baseReport.LogicALMs)
	}

	// Adding memory blocks must increase logic and decrease Fmax.
	moreBlocks := base
	moreBlocks.MemoryBlocks *= 2
	moreReport, err := Estimate(moreBlocks, StratixV())
	if err != nil {
		t.Fatal(err)
	}
	if moreReport.LogicALMs <= baseReport.LogicALMs {
		t.Error("logic did not grow with more memory blocks")
	}
	if moreReport.FmaxMHz >= baseReport.FmaxMHz {
		t.Error("Fmax did not degrade with more memory blocks")
	}

	// A wider datapath must increase registers.
	wider := base
	wider.DatapathBits *= 2
	widerReport, err := Estimate(wider, StratixV())
	if err != nil {
		t.Fatal(err)
	}
	if widerReport.Registers <= baseReport.Registers {
		t.Error("registers did not grow with a wider datapath")
	}
}
