// Package synth estimates the FPGA resource usage of an architecture
// instance, reproducing the quantities reported in Table V of the paper
// (synthesis results on an Altera Stratix V 5SGXMB6R3F43C4).
//
// Substitution note (see DESIGN.md): the original numbers come from Quartus
// synthesis of the authors' RTL, which is not available. This package is a
// cost model: block-memory bits and I/O pins are derived exactly from the
// architecture description, while logic (ALM) and register counts use linear
// per-component coefficients calibrated so that the paper's default
// architecture geometry lands on the published figures. The model's value is
// relative — it preserves how resource usage scales when the architecture's
// geometry (rule capacity, strides, label widths) is changed, which is what
// the ablation benchmarks exercise.
package synth

import "fmt"

// Device describes an FPGA device's available resources.
type Device struct {
	Name            string
	ALMs            int
	BlockMemoryBits int
	Registers       int
	Pins            int
}

// StratixV returns the device used in the paper, the Altera Stratix V
// 5SGXMB6R3F43C4.
func StratixV() Device {
	return Device{
		Name:            "Altera Stratix V 5SGXMB6R3F43C4",
		ALMs:            225400,
		BlockMemoryBits: 54476800,
		Registers:       901600, // 4 registers per ALM
		Pins:            908,
	}
}

// ArchSpec describes the synthesisable structure of an architecture
// instance. It is produced by internal/core from its configured geometry.
type ArchSpec struct {
	// BlockMemoryBits is the total capacity of all block-RAM memory blocks.
	BlockMemoryBits int
	// MemoryBlocks is the number of independently addressed memory blocks.
	MemoryBlocks int
	// PipelineStages is the total number of pipeline registers stages across
	// all engines and the combination/result phases.
	PipelineStages int
	// DatapathBits is the width of the widest data path carried between
	// stages (header segments plus label lists plus control).
	DatapathBits int
	// RegisterFileBits counts match data held in logic registers rather than
	// block RAM (the port range registers of §IV.C).
	RegisterFileBits int
	// Comparators is the number of parallel magnitude comparators (port
	// range checks, BST node comparisons).
	Comparators int
	// HashUnits is the number of hardware hash units.
	HashUnits int
	// HeaderBits is the packet header slice presented to the classifier per
	// cycle; with the update interface it dominates pin count.
	HeaderBits int
}

// Validate reports whether the specification is usable.
func (s ArchSpec) Validate() error {
	if s.BlockMemoryBits <= 0 {
		return fmt.Errorf("synth: block memory bits must be positive, got %d", s.BlockMemoryBits)
	}
	if s.MemoryBlocks <= 0 {
		return fmt.Errorf("synth: memory block count must be positive, got %d", s.MemoryBlocks)
	}
	if s.PipelineStages <= 0 {
		return fmt.Errorf("synth: pipeline stage count must be positive, got %d", s.PipelineStages)
	}
	return nil
}

// Cost-model coefficients. The constants are calibrated against the single
// synthesis data point published in Table V (see the package comment); they
// are exported so the calibration is visible and testable.
const (
	// ALMsPerMemoryBlock covers the address decode, write-enable and output
	// multiplexing logic of one memory block.
	ALMsPerMemoryBlock = 1200
	// ALMsPerComparator covers one 16-bit magnitude comparator with its
	// range/exact match qualification logic.
	ALMsPerComparator = 20
	// ALMsPerHashUnit covers one multiply-and-fold hash pipeline.
	ALMsPerHashUnit = 650
	// ALMsPerDatapathBit covers per-bit label-list merging, priority
	// resolution and pipeline multiplexing logic along the datapath.
	ALMsPerDatapathBit = 102.7
	// RegistersPerStageBit covers the pipeline, duplication and control
	// registers associated with one datapath bit in one stage.
	RegistersPerStageBit = 28.0
	// BaseFmaxMHz is the achievable clock of the unloaded datapath.
	BaseFmaxMHz = 200.0
	// FmaxDegradationPerBlock models routing pressure added by each memory
	// block hanging off each pipeline stage.
	FmaxDegradationPerBlock = 0.0023715
	// ControlPins covers clock, reset, configuration and handshake pins.
	ControlPins = 52
)

// Report mirrors Table V: the resource usage of the synthesised design
// against the device's capacity.
type Report struct {
	Device          Device
	LogicALMs       int
	BlockMemoryBits int
	Registers       int
	FmaxMHz         float64
	Pins            int
}

// LogicUtilisation returns the fraction of device ALMs used.
func (r Report) LogicUtilisation() float64 {
	return float64(r.LogicALMs) / float64(r.Device.ALMs)
}

// MemoryUtilisation returns the fraction of device block memory used. The
// paper reports 4% for the default architecture.
func (r Report) MemoryUtilisation() float64 {
	return float64(r.BlockMemoryBits) / float64(r.Device.BlockMemoryBits)
}

// PinUtilisation returns the fraction of device pins used.
func (r Report) PinUtilisation() float64 {
	return float64(r.Pins) / float64(r.Device.Pins)
}

// String renders the report in the shape of Table V.
func (r Report) String() string {
	return fmt.Sprintf(
		"Logical Utilization      %d / %d (%.1f%%)\n"+
			"Total block memory bits  %d / %d (%.1f%%)\n"+
			"Total registers          %d\n"+
			"Maximum Frequency        %.2f MHz\n"+
			"Total Number Pins        %d / %d",
		r.LogicALMs, r.Device.ALMs, 100*r.LogicUtilisation(),
		r.BlockMemoryBits, r.Device.BlockMemoryBits, 100*r.MemoryUtilisation(),
		r.Registers,
		r.FmaxMHz,
		r.Pins, r.Device.Pins)
}

// Estimate applies the cost model to the architecture specification for the
// given device.
func Estimate(spec ArchSpec, device Device) (Report, error) {
	if err := spec.Validate(); err != nil {
		return Report{}, err
	}
	logic := spec.MemoryBlocks*ALMsPerMemoryBlock +
		spec.Comparators*ALMsPerComparator +
		spec.HashUnits*ALMsPerHashUnit +
		int(float64(spec.DatapathBits)*ALMsPerDatapathBit)
	registers := spec.RegisterFileBits +
		int(float64(spec.PipelineStages*spec.DatapathBits)*RegistersPerStageBit)
	fmax := BaseFmaxMHz / (1 + FmaxDegradationPerBlock*float64(spec.MemoryBlocks)*float64(spec.PipelineStages))
	pins := spec.HeaderBits + ControlPins
	return Report{
		Device:          device,
		LogicALMs:       logic,
		BlockMemoryBits: spec.BlockMemoryBits,
		Registers:       registers,
		FmaxMHz:         fmax,
		Pins:            pins,
	}, nil
}
