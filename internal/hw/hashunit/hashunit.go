// Package hashunit models the hardware hash function that converts the
// 68-bit label combination key into the Highest Priority Matching Rule
// address in the Rule Filter memory block (§IV.A: "The final address to
// store each rule in the Rule Filter block is performed using a hash
// function implemented in hardware", §V.A: one extra clock cycle per rule
// update for the hash).
//
// The function is a 64-bit FNV-1a variant folded to the table's address
// width — a multiply-and-xor structure that synthesises to a short pipeline
// on an FPGA. Collisions are resolved by the Rule Filter itself (open
// addressing with linear probing); the unit only produces the initial
// address and reports how wide the probe sequence had to be so that the
// experiment harness can check the single-cycle assumption holds at the
// evaluated load factors.
package hashunit

import "fmt"

// LatencyCycles is the pipeline depth of the hash unit: the paper charges
// one clock cycle for obtaining the rule address.
const LatencyCycles = 1

const (
	fnvOffset uint64 = 0xcbf29ce484222325
	fnvPrime  uint64 = 0x100000001b3
)

// Unit is a hash unit producing addresses of a fixed width.
type Unit struct {
	addressBits int
}

// New creates a hash unit producing addresses in [0, 2^addressBits).
func New(addressBits int) (*Unit, error) {
	if addressBits < 1 || addressBits > 32 {
		return nil, fmt.Errorf("hashunit: address width %d out of range [1,32]", addressBits)
	}
	return &Unit{addressBits: addressBits}, nil
}

// MustNew is like New but panics on error.
func MustNew(addressBits int) *Unit {
	u, err := New(addressBits)
	if err != nil {
		panic(err)
	}
	return u
}

// AddressBits returns the width of produced addresses.
func (u *Unit) AddressBits() int { return u.addressBits }

// Slots returns the number of addressable slots.
func (u *Unit) Slots() int { return 1 << u.addressBits }

// Hash maps the 9-byte (68-bit) combination key to an address.
func (u *Unit) Hash(key [9]byte) uint32 {
	h := fnvOffset
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime
	}
	// Fold the 64-bit digest down to the address width, mixing high and low
	// halves so that short addresses still depend on every input bit.
	folded := h ^ (h >> 32)
	folded ^= folded >> uint(u.addressBits)
	return uint32(folded) & uint32(u.Slots()-1)
}

// Probe returns the i-th address of the probe sequence for the key (linear
// probing with wrap-around). Probe(key, 0) equals Hash(key).
func (u *Unit) Probe(key [9]byte, i int) uint32 {
	return (u.Hash(key) + uint32(i)) & uint32(u.Slots()-1)
}
