package hashunit

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, bits := range []int{0, -1, 33} {
		if _, err := New(bits); err == nil {
			t.Errorf("New(%d) should fail", bits)
		}
	}
	u, err := New(13)
	if err != nil {
		t.Fatalf("New(13): %v", err)
	}
	if u.AddressBits() != 13 || u.Slots() != 8192 {
		t.Errorf("unit geometry = %d bits / %d slots", u.AddressBits(), u.Slots())
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0) did not panic")
		}
	}()
	MustNew(0)
}

func TestHashInRangeAndDeterministic(t *testing.T) {
	u := MustNew(13)
	f := func(key [9]byte) bool {
		a := u.Hash(key)
		b := u.Hash(key)
		return a == b && int(a) < u.Slots()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashSensitivity(t *testing.T) {
	// Flipping any single bit of the key must change the address for the
	// overwhelming majority of positions; require at least 80% here.
	u := MustNew(13)
	base := [9]byte{0x0A, 0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE, 0xF0}
	baseHash := u.Hash(base)
	changed := 0
	total := 0
	for byteIdx := 0; byteIdx < len(base); byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			if byteIdx == 0 && bit >= 4 {
				continue // only 68 bits are meaningful
			}
			flipped := base
			flipped[byteIdx] ^= 1 << bit
			total++
			if u.Hash(flipped) != baseHash {
				changed++
			}
		}
	}
	if float64(changed) < 0.8*float64(total) {
		t.Errorf("only %d/%d single-bit flips changed the address", changed, total)
	}
}

func TestHashDistribution(t *testing.T) {
	// Hashing sequential label combinations (the realistic key population)
	// must spread across the table: with 4096 keys into 8192 slots, demand a
	// load on every 1/8th of the table and no slot used more than 8 times.
	u := MustNew(13)
	counts := make(map[uint32]int)
	octants := make(map[uint32]int)
	for i := 0; i < 4096; i++ {
		var key [9]byte
		key[8] = byte(i)
		key[7] = byte(i >> 8)
		key[5] = byte(i % 7)
		addr := u.Hash(key)
		counts[addr]++
		octants[addr/1024]++
	}
	for addr, c := range counts {
		if c > 8 {
			t.Errorf("slot %d used %d times", addr, c)
		}
	}
	if len(octants) < 8 {
		t.Errorf("keys landed in only %d/8 octants of the table", len(octants))
	}
}

func TestProbeSequence(t *testing.T) {
	u := MustNew(4) // 16 slots, easy to reason about wrap-around
	key := [9]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	first := u.Probe(key, 0)
	if first != u.Hash(key) {
		t.Errorf("Probe(key, 0) = %d, want Hash(key) = %d", first, u.Hash(key))
	}
	seen := make(map[uint32]bool)
	for i := 0; i < u.Slots(); i++ {
		addr := u.Probe(key, i)
		if int(addr) >= u.Slots() {
			t.Fatalf("probe %d produced out-of-range address %d", i, addr)
		}
		if seen[addr] {
			t.Fatalf("probe sequence revisited address %d before covering the table", addr)
		}
		seen[addr] = true
	}
	if len(seen) != u.Slots() {
		t.Errorf("probe sequence covered %d slots, want %d", len(seen), u.Slots())
	}
}

func TestLatencyConstant(t *testing.T) {
	// §V.A charges exactly one clock cycle for the hardware hash.
	if LatencyCycles != 1 {
		t.Errorf("LatencyCycles = %d, want 1", LatencyCycles)
	}
}
