package memory

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestBlockGeometry(t *testing.T) {
	b := NewBlock("mbt-l1", 32, 64)
	if b.Name() != "mbt-l1" || b.WordBits() != 32 || b.Depth() != 64 {
		t.Errorf("geometry accessors wrong: %s %d %d", b.Name(), b.WordBits(), b.Depth())
	}
	if got, want := b.CapacityBits(), 32*64; got != want {
		t.Errorf("CapacityBits() = %d, want %d", got, want)
	}
}

func TestNewBlockPanicsOnBadGeometry(t *testing.T) {
	tests := []struct {
		name     string
		wordBits int
		depth    int
	}{
		{name: "zero width", wordBits: 0, depth: 8},
		{name: "width too wide", wordBits: 65, depth: 8},
		{name: "zero depth", wordBits: 8, depth: 0},
		{name: "negative depth", wordBits: 8, depth: -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("NewBlock did not panic")
				}
			}()
			NewBlock("bad", tt.wordBits, tt.depth)
		})
	}
}

func TestBlockReadWrite(t *testing.T) {
	b := NewBlock("test", 16, 8)
	if _, ok := b.Read(3); ok {
		t.Error("unwritten word reported as valid")
	}
	b.Write(3, 0xBEEF)
	word, ok := b.Read(3)
	if !ok || word != 0xBEEF {
		t.Errorf("Read(3) = (%#x, %v), want (0xBEEF, true)", word, ok)
	}
	stats := b.Stats()
	if stats.Reads != 2 || stats.Writes != 1 {
		t.Errorf("stats = %+v, want 2 reads / 1 write", stats)
	}
	if stats.Accesses() != 3 {
		t.Errorf("Accesses() = %d, want 3", stats.Accesses())
	}

	b.Invalidate(3)
	if _, ok := b.Read(3); ok {
		t.Error("invalidated word reported as valid")
	}
	// Invalidate does not count as a data-path access.
	if got := b.Stats().Writes; got != 1 {
		t.Errorf("writes after Invalidate = %d, want 1", got)
	}

	b.ResetCounters()
	if s := b.Stats(); s.Reads != 0 || s.Writes != 0 {
		t.Errorf("counters not reset: %+v", s)
	}
}

func TestBlockWidthEnforcement(t *testing.T) {
	b := NewBlock("narrow", 4, 4)
	b.Write(0, 0xF) // fits exactly
	defer func() {
		if recover() == nil {
			t.Error("Write of oversized word did not panic")
		}
	}()
	b.Write(1, 0x10)
}

func TestBlockAddressEnforcement(t *testing.T) {
	b := NewBlock("small", 8, 4)
	for _, addr := range []int{-1, 4, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("access to address %d did not panic", addr)
				}
			}()
			b.Read(addr)
		}()
	}
}

func TestBlockFullWidthWords(t *testing.T) {
	b := NewBlock("wide", 64, 2)
	b.Write(0, ^uint64(0))
	word, ok := b.Read(0)
	if !ok || word != ^uint64(0) {
		t.Errorf("64-bit word round trip failed: %#x", word)
	}
}

func TestBlockUsedWordsAndClear(t *testing.T) {
	b := NewBlock("occupancy", 10, 16)
	for i := 0; i < 5; i++ {
		b.Write(i, uint64(i))
	}
	if got := b.UsedWords(); got != 5 {
		t.Errorf("UsedWords() = %d, want 5", got)
	}
	if got := b.UsedBits(); got != 50 {
		t.Errorf("UsedBits() = %d, want 50", got)
	}
	b.Clear()
	if b.UsedWords() != 0 {
		t.Error("Clear() left valid words behind")
	}
	if s := b.Stats(); s.Accesses() != 0 {
		t.Error("Clear() left access counters behind")
	}
}

func TestBlockReadWriteProperty(t *testing.T) {
	b := NewBlock("prop", 32, 128)
	f := func(addrRaw uint8, value uint32) bool {
		addr := int(addrRaw) % b.Depth()
		b.Write(addr, uint64(value))
		word, ok := b.Read(addr)
		return ok && word == uint64(value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockConcurrentAccess(t *testing.T) {
	b := NewBlock("concurrent", 32, 64)
	var wg sync.WaitGroup
	const workers = 8
	const iterations = 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				addr := (w*iterations + i) % b.Depth()
				b.Write(addr, uint64(i))
				b.Read(addr)
			}
		}(w)
	}
	wg.Wait()
	stats := b.Stats()
	if stats.Reads != workers*iterations || stats.Writes != workers*iterations {
		t.Errorf("concurrent stats = %+v, want %d reads and writes", stats, workers*iterations)
	}
}

func TestProfileAggregation(t *testing.T) {
	a := NewBlock("a", 8, 16)
	b := NewBlock("b", 16, 32)
	p := NewProfile().Register(a, b)
	if got, want := p.TotalCapacityBits(), 8*16+16*32; got != want {
		t.Errorf("TotalCapacityBits() = %d, want %d", got, want)
	}
	a.Write(0, 1)
	b.Write(1, 2)
	b.Read(1)
	if got := p.TotalUsedBits(); got != 8+16 {
		t.Errorf("TotalUsedBits() = %d, want 24", got)
	}
	if got := p.TotalAccesses(); got != 3 {
		t.Errorf("TotalAccesses() = %d, want 3", got)
	}
	stats := p.StatsByName()
	if len(stats) != 2 || stats[0].Name != "a" || stats[1].Name != "b" {
		t.Errorf("StatsByName() = %+v", stats)
	}
	p.ResetCounters()
	if p.TotalAccesses() != 0 {
		t.Error("ResetCounters() did not zero counters")
	}
	if len(p.Blocks()) != 2 {
		t.Errorf("Blocks() = %d entries, want 2", len(p.Blocks()))
	}
}

func TestSharedBlockSelection(t *testing.T) {
	phys := NewBlock("shared-l2", 49, 256)
	s := NewSharedBlock(phys, SelectMBT)
	if s.Selected() != SelectMBT {
		t.Fatalf("Selected() = %v, want MBT", s.Selected())
	}
	if s.Physical() != phys {
		t.Error("Physical() does not return the underlying block")
	}
	// The MBT view is live, the BST view must be nil.
	if s.View(SelectMBT) == nil {
		t.Error("View(MBT) = nil while MBT selected")
	}
	if s.View(SelectBST) != nil {
		t.Error("View(BST) != nil while MBT selected")
	}

	// Write MBT data, then switch to BST: the block must be cleared because
	// the controller re-programmes it with the other algorithm's nodes.
	phys.Write(0, 42)
	s.Select(SelectBST)
	if s.Selected() != SelectBST {
		t.Fatalf("Selected() after switch = %v, want BST", s.Selected())
	}
	if phys.UsedWords() != 0 {
		t.Error("switching algorithms did not clear the shared block")
	}
	if s.View(SelectMBT) != nil {
		t.Error("View(MBT) != nil after switching to BST")
	}

	// Re-selecting the current algorithm is a no-op and must not clear data.
	phys.Write(0, 7)
	s.Select(SelectBST)
	if phys.UsedWords() != 1 {
		t.Error("re-selecting the same algorithm cleared the block")
	}
}

func TestAlgSelectString(t *testing.T) {
	if SelectMBT.String() != "MBT" || SelectBST.String() != "BST" {
		t.Errorf("AlgSelect names = %q, %q", SelectMBT, SelectBST)
	}
	if AlgSelect(9).String() == "" {
		t.Error("unknown AlgSelect should still render")
	}
}
