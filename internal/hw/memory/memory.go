// Package memory models the on-chip memory blocks of the hardware
// architecture.
//
// The paper's evaluation is expressed in terms of memory-block properties —
// bits consumed, words stored, accesses per lookup and per update — rather
// than gate-level behaviour, so this model captures exactly those
// quantities: every Block has a fixed word width and depth, byte-accurate
// bit accounting and read/write access counters. The shared-block mechanism
// of §IV.C.2 (the MBT level-2 block doubling as the BST block, selected by
// the IPalg_s signal) is modelled by SharedBlock.
package memory

import (
	"fmt"
	"sort"
	"sync"
)

// Block is a single-port block RAM with a fixed geometry. Words are held as
// uint64 values; WordBits may not exceed 64 — wider hardware words are
// modelled as multiple parallel blocks, exactly as an FPGA would implement
// them.
//
// Block is safe for concurrent readers and writers; the access counters are
// protected by the same mutex as the data.
type Block struct {
	name     string
	wordBits int
	depth    int

	mu     sync.Mutex
	words  []uint64
	valid  []bool
	reads  uint64
	writes uint64
}

// NewBlock creates a block with the given name, word width in bits (1..64)
// and depth in words. It panics on an impossible geometry, which always
// indicates a programming error in architecture construction.
func NewBlock(name string, wordBits, depth int) *Block {
	if wordBits < 1 || wordBits > 64 {
		panic(fmt.Sprintf("memory: block %q word width %d out of range [1,64]", name, wordBits))
	}
	if depth < 1 {
		panic(fmt.Sprintf("memory: block %q depth %d must be positive", name, depth))
	}
	return &Block{
		name:     name,
		wordBits: wordBits,
		depth:    depth,
		words:    make([]uint64, depth),
		valid:    make([]bool, depth),
	}
}

// Name returns the block's name.
func (b *Block) Name() string { return b.name }

// WordBits returns the word width in bits.
func (b *Block) WordBits() int { return b.wordBits }

// Depth returns the number of words.
func (b *Block) Depth() int { return b.depth }

// CapacityBits returns the total storage capacity of the block in bits.
func (b *Block) CapacityBits() int { return b.wordBits * b.depth }

// mask returns the bit mask of a word.
func (b *Block) mask() uint64 {
	if b.wordBits == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << b.wordBits) - 1
}

// Read returns the word at addr and whether it has ever been written, and
// counts one read access. It panics on an out-of-range address.
func (b *Block) Read(addr int) (word uint64, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.checkAddr(addr)
	b.reads++
	return b.words[addr], b.valid[addr]
}

// Write stores the word at addr and counts one write access. Bits beyond the
// word width must be zero. It panics on an out-of-range address or word.
func (b *Block) Write(addr int, word uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.checkAddr(addr)
	if word&^b.mask() != 0 {
		panic(fmt.Sprintf("memory: block %q word %#x exceeds %d bits", b.name, word, b.wordBits))
	}
	b.writes++
	b.words[addr] = word
	b.valid[addr] = true
}

// Invalidate clears the word at addr without counting an access (it models a
// controller-side table clear rather than a data-path operation).
func (b *Block) Invalidate(addr int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.checkAddr(addr)
	b.words[addr] = 0
	b.valid[addr] = false
}

// Clear invalidates every word and resets the access counters.
func (b *Block) Clear() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.words {
		b.words[i] = 0
		b.valid[i] = false
	}
	b.reads = 0
	b.writes = 0
}

func (b *Block) checkAddr(addr int) {
	if addr < 0 || addr >= b.depth {
		panic(fmt.Sprintf("memory: block %q address %d out of range [0,%d)", b.name, addr, b.depth))
	}
}

// UsedWords returns the number of words that currently hold valid data.
func (b *Block) UsedWords() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	used := 0
	for _, v := range b.valid {
		if v {
			used++
		}
	}
	return used
}

// UsedBits returns the number of bits occupied by valid words.
func (b *Block) UsedBits() int { return b.UsedWords() * b.wordBits }

// Stats is a snapshot of a block's access counters.
type Stats struct {
	Name   string
	Reads  uint64
	Writes uint64
}

// Accesses returns the total number of accesses in the snapshot.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// Stats returns a snapshot of the access counters.
func (b *Block) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{Name: b.name, Reads: b.reads, Writes: b.writes}
}

// ResetCounters zeroes the access counters without touching the data.
func (b *Block) ResetCounters() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reads = 0
	b.writes = 0
}

// Profile aggregates the memory blocks of one architecture instance so that
// capacity and access figures can be reported per block and in total, as the
// paper does in Tables V–VII.
type Profile struct {
	mu     sync.Mutex
	blocks []*Block
}

// NewProfile creates an empty profile.
func NewProfile() *Profile { return &Profile{} }

// Register adds blocks to the profile and returns the profile for chaining.
func (p *Profile) Register(blocks ...*Block) *Profile {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.blocks = append(p.blocks, blocks...)
	return p
}

// Blocks returns the registered blocks in registration order.
func (p *Profile) Blocks() []*Block {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Block, len(p.blocks))
	copy(out, p.blocks)
	return out
}

// TotalCapacityBits returns the summed capacity of every registered block.
func (p *Profile) TotalCapacityBits() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, b := range p.blocks {
		total += b.CapacityBits()
	}
	return total
}

// TotalUsedBits returns the summed occupancy of every registered block.
func (p *Profile) TotalUsedBits() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, b := range p.blocks {
		total += b.UsedBits()
	}
	return total
}

// TotalAccesses returns the summed read+write counters.
func (p *Profile) TotalAccesses() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total uint64
	for _, b := range p.blocks {
		s := b.Stats()
		total += s.Accesses()
	}
	return total
}

// ResetCounters resets the access counters of every registered block.
func (p *Profile) ResetCounters() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, b := range p.blocks {
		b.ResetCounters()
	}
}

// StatsByName returns per-block snapshots sorted by block name.
func (p *Profile) StatsByName() []Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Stats, 0, len(p.blocks))
	for _, b := range p.blocks {
		out = append(out, b.Stats())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
