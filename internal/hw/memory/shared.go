package memory

import "fmt"

// AlgSelect mirrors the IPalg_s configuration signal of the paper (Fig. 2,
// Fig. 5): it selects which IP lookup algorithm the architecture currently
// runs and therefore which data is stored in the shared memory blocks.
type AlgSelect uint8

// IP-algorithm selection values.
const (
	// SelectMBT configures the fast Multi-Bit Trie lookup.
	SelectMBT AlgSelect = iota + 1
	// SelectBST configures the memory-efficient Binary Search Tree lookup.
	SelectBST
)

// String names the selection.
func (s AlgSelect) String() string {
	switch s {
	case SelectMBT:
		return "MBT"
	case SelectBST:
		return "BST"
	default:
		return fmt.Sprintf("AlgSelect(%d)", uint8(s))
	}
}

// ownerName maps a legacy IPalg_s value to the canonical (engine-registry)
// owner name used by SharedBlock.
func ownerName(alg AlgSelect) string {
	switch alg {
	case SelectMBT:
		return "mbt"
	case SelectBST:
		return "bst"
	default:
		return alg.String()
	}
}

// SharedBlock models the memory-sharing scheme of §IV.C.2 and Fig. 5: one
// physical block holds MBT level-2 node data ("Data 1") when the MBT is
// selected and the node data of the alternative engine ("Data 2" — BST
// interval nodes in the paper, any registered field engine here) otherwise.
// The uses require identical geometry — the condition the paper states for
// sharing to be possible — which is enforced at construction.
//
// Ownership is tracked by engine name so that any registered field engine
// can map onto the block; the legacy AlgSelect-based methods remain as thin
// wrappers over the name-based ones.
//
// A second consequence of sharing (also Fig. 5) is that when a shared-
// resident engine is selected the remaining MBT blocks become free and are
// re-purposed as additional rule storage ("Data 3"); that reallocation is
// handled by the architecture (internal/core), not by this type.
type SharedBlock struct {
	physical *Block
	owner    string
}

// NewSharedBlock wraps a physical block for shared use, initially selecting
// the given algorithm.
func NewSharedBlock(physical *Block, initial AlgSelect) *SharedBlock {
	return NewSharedBlockOwner(physical, ownerName(initial))
}

// NewSharedBlockOwner wraps a physical block for shared use, initially owned
// by the named engine.
func NewSharedBlockOwner(physical *Block, owner string) *SharedBlock {
	return &SharedBlock{physical: physical, owner: owner}
}

// Physical returns the underlying block (for capacity accounting).
func (s *SharedBlock) Physical() *Block { return s.physical }

// Owner returns the name of the engine whose data currently occupies the
// block.
func (s *SharedBlock) Owner() string { return s.owner }

// Selected returns the legacy algorithm selection whose data currently
// occupies the block, or 0 when the owner has no legacy selection value.
func (s *SharedBlock) Selected() AlgSelect {
	switch s.owner {
	case "mbt":
		return SelectMBT
	case "bst":
		return SelectBST
	default:
		return 0
	}
}

// SelectOwner hands the block to another engine's data. Switching clears the
// block contents: the controller must re-download the node data for the
// newly selected engine, exactly as the software control plane would
// re-programme the hardware after changing IPalg_s.
func (s *SharedBlock) SelectOwner(owner string) {
	if owner == s.owner {
		return
	}
	s.owner = owner
	s.physical.Clear()
}

// Select is the legacy AlgSelect form of SelectOwner.
func (s *SharedBlock) Select(alg AlgSelect) { s.SelectOwner(ownerName(alg)) }

// ViewOwner returns the physical block if the named engine currently owns
// it, and nil otherwise. Engines obtain their backing store through ViewOwner
// so that a misconfigured engine cannot silently corrupt another engine's
// data.
func (s *SharedBlock) ViewOwner(owner string) *Block {
	if owner != s.owner {
		return nil
	}
	return s.physical
}

// View is the legacy AlgSelect form of ViewOwner.
func (s *SharedBlock) View(alg AlgSelect) *Block { return s.ViewOwner(ownerName(alg)) }
