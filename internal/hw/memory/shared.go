package memory

import "fmt"

// AlgSelect mirrors the IPalg_s configuration signal of the paper (Fig. 2,
// Fig. 5): it selects which IP lookup algorithm the architecture currently
// runs and therefore which data is stored in the shared memory blocks.
type AlgSelect uint8

// IP-algorithm selection values.
const (
	// SelectMBT configures the fast Multi-Bit Trie lookup.
	SelectMBT AlgSelect = iota + 1
	// SelectBST configures the memory-efficient Binary Search Tree lookup.
	SelectBST
)

// String names the selection.
func (s AlgSelect) String() string {
	switch s {
	case SelectMBT:
		return "MBT"
	case SelectBST:
		return "BST"
	default:
		return fmt.Sprintf("AlgSelect(%d)", uint8(s))
	}
}

// SharedBlock models the memory-sharing scheme of §IV.C.2 and Fig. 5: one
// physical block holds MBT level-2 node data ("Data 1") when the MBT is
// selected and BST node data ("Data 2") when the BST is selected. The two
// uses require identical geometry — the condition the paper states for
// sharing to be possible — which is enforced at construction.
//
// A second consequence of sharing (also Fig. 5) is that when the BST is
// selected the remaining MBT blocks become free and are re-purposed as
// additional rule storage ("Data 3"); that reallocation is handled by the
// architecture (internal/core), not by this type.
type SharedBlock struct {
	physical *Block
	selected AlgSelect
}

// NewSharedBlock wraps a physical block for shared use, initially selecting
// the given algorithm.
func NewSharedBlock(physical *Block, initial AlgSelect) *SharedBlock {
	return &SharedBlock{physical: physical, selected: initial}
}

// Physical returns the underlying block (for capacity accounting).
func (s *SharedBlock) Physical() *Block { return s.physical }

// Selected returns the algorithm whose data currently occupies the block.
func (s *SharedBlock) Selected() AlgSelect { return s.selected }

// Select switches the block to the other algorithm's data. Switching clears
// the block contents: the controller must re-download the node data for the
// newly selected algorithm, exactly as the software control plane would
// re-programme the hardware after changing IPalg_s.
func (s *SharedBlock) Select(alg AlgSelect) {
	if alg == s.selected {
		return
	}
	s.selected = alg
	s.physical.Clear()
}

// View returns the physical block if the requested algorithm is currently
// selected, and nil otherwise. Engines obtain their backing store through
// View so that a misconfigured engine cannot silently corrupt the other
// algorithm's data.
func (s *SharedBlock) View(alg AlgSelect) *Block {
	if alg != s.selected {
		return nil
	}
	return s.physical
}
