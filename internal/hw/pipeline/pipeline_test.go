package pipeline

import (
	"math"
	"testing"
)

const fmaxHz = 133.51e6 // the paper's synthesised clock (Table V)

// mbtStages reproduces the lookup pipeline of Fig. 3 with the MBT selected:
// header split/dispatch, parallel field lookup dominated by the 6-cycle MBT,
// one cycle to fetch the label list pointer, two cycles of final result
// processing. All stages are fully pipelined.
func mbtStages() []Stage {
	return []Stage{
		{Name: "split+dispatch", LatencyCycles: 1, InitiationInterval: 1},
		{Name: "field lookup (MBT)", LatencyCycles: 6, InitiationInterval: 1},
		{Name: "label fetch", LatencyCycles: 1, InitiationInterval: 1},
		{Name: "combine+rule filter", LatencyCycles: 2, InitiationInterval: 1},
	}
}

// bstStages is the same pipeline with the BST selected: the IP lookup needs
// up to 16 sequential memory accesses, so its initiation interval equals its
// latency.
func bstStages() []Stage {
	return []Stage{
		{Name: "split+dispatch", LatencyCycles: 1, InitiationInterval: 1},
		{Name: "field lookup (BST)", LatencyCycles: 16, InitiationInterval: 16},
		{Name: "label fetch", LatencyCycles: 1, InitiationInterval: 1},
		{Name: "combine+rule filter", LatencyCycles: 2, InitiationInterval: 1},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("empty", fmaxHz); err == nil {
		t.Error("New with no stages should fail")
	}
	if _, err := New("bad clock", 0, Stage{Name: "s", LatencyCycles: 1, InitiationInterval: 1}); err == nil {
		t.Error("New with zero clock should fail")
	}
	badStages := []Stage{
		{Name: "zero latency", LatencyCycles: 0, InitiationInterval: 1},
		{Name: "zero interval", LatencyCycles: 1, InitiationInterval: 0},
		{Name: "interval exceeds latency", LatencyCycles: 2, InitiationInterval: 3},
	}
	for _, s := range badStages {
		if _, err := New("bad", fmaxHz, s); err == nil {
			t.Errorf("New with stage %+v should fail", s)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew with invalid input did not panic")
		}
	}()
	MustNew("bad", 0)
}

func TestMBTPipelineLatencyAndThroughput(t *testing.T) {
	p := MustNew("lookup-mbt", fmaxHz, mbtStages()...)
	// §V.B: MBT latency 6 cycles, +1 label fetch, +2 result, +1 dispatch.
	if got, want := p.LatencyCycles(), 10; got != want {
		t.Errorf("LatencyCycles() = %d, want %d", got, want)
	}
	if got := p.BottleneckInterval(); got != 1 {
		t.Errorf("BottleneckInterval() = %d, want 1 (fully pipelined)", got)
	}
	// 133.51 MHz * 1 lookup/cycle = 133.51 M lookups/s (the paper's
	// conclusion quotes "133 million lookups per second").
	if got := p.LookupsPerSecond(); math.Abs(got-133.51e6) > 1 {
		t.Errorf("LookupsPerSecond() = %v, want 133.51e6", got)
	}
	// Table VII: 42.73 Gbps at 40-byte packets.
	if got := p.ThroughputGbps(40); math.Abs(got-42.72) > 0.05 {
		t.Errorf("ThroughputGbps(40) = %v, want ~42.72", got)
	}
	// Conclusion: >100 Gbps at 100-byte packets.
	if got := p.ThroughputGbps(100); got < 100 {
		t.Errorf("ThroughputGbps(100) = %v, want > 100", got)
	}
	if p.LatencySeconds() <= 0 {
		t.Error("LatencySeconds() must be positive")
	}
	if p.Name() != "lookup-mbt" || p.ClockHz() != fmaxHz {
		t.Error("accessors wrong")
	}
}

func TestBSTPipelineThroughput(t *testing.T) {
	p := MustNew("lookup-bst", fmaxHz, bstStages()...)
	if got := p.BottleneckInterval(); got != 16 {
		t.Errorf("BottleneckInterval() = %d, want 16", got)
	}
	// Table VII: 2.67 Gbps at 40-byte packets for the BST configuration.
	if got := p.ThroughputGbps(40); math.Abs(got-2.67) > 0.01 {
		t.Errorf("ThroughputGbps(40) = %v, want ~2.67", got)
	}
	if got, want := p.LatencyCycles(), 20; got != want {
		t.Errorf("LatencyCycles() = %d, want %d", got, want)
	}
}

func TestStagesReturnsCopy(t *testing.T) {
	p := MustNew("copy", fmaxHz, mbtStages()...)
	stages := p.Stages()
	stages[0].Name = "mutated"
	if p.Stages()[0].Name == "mutated" {
		t.Error("Stages() exposed internal state")
	}
}

func TestScheduleFullyPipelined(t *testing.T) {
	p := MustNew("schedule", fmaxHz, mbtStages()...)
	entries := p.Schedule(3)
	if len(entries) != 3*len(mbtStages()) {
		t.Fatalf("Schedule(3) returned %d entries, want %d", len(entries), 3*len(mbtStages()))
	}
	// Packet i enters the pipeline at cycle i (II = 1) and each packet's
	// stages are contiguous.
	perPacket := make(map[int][]ScheduleEntry)
	for _, e := range entries {
		perPacket[e.Packet] = append(perPacket[e.Packet], e)
	}
	for pkt, stages := range perPacket {
		if stages[0].StartCycle != pkt {
			t.Errorf("packet %d enters at cycle %d, want %d", pkt, stages[0].StartCycle, pkt)
		}
		for i := 1; i < len(stages); i++ {
			if stages[i].StartCycle != stages[i-1].EndCycle {
				t.Errorf("packet %d has a gap between %q and %q", pkt, stages[i-1].Stage, stages[i].Stage)
			}
		}
		last := stages[len(stages)-1]
		if last.EndCycle-stages[0].StartCycle != p.LatencyCycles() {
			t.Errorf("packet %d occupies %d cycles, want %d", pkt, last.EndCycle-stages[0].StartCycle, p.LatencyCycles())
		}
	}
}

func TestScheduleSerialisedStage(t *testing.T) {
	p := MustNew("schedule-bst", fmaxHz, bstStages()...)
	entries := p.Schedule(2)
	// With II = 16 the second packet starts 16 cycles after the first.
	var first, second int
	for _, e := range entries {
		if e.Stage == "split+dispatch" {
			if e.Packet == 0 {
				first = e.StartCycle
			} else if e.Packet == 1 {
				second = e.StartCycle
			}
		}
	}
	if second-first != 16 {
		t.Errorf("issue distance = %d cycles, want 16", second-first)
	}
}
