// Package pipeline models the clocked behaviour of the lookup architecture:
// per-stage latencies, initiation intervals, end-to-end packet latency and
// the throughput obtained at a given clock frequency.
//
// The paper's performance figures (§V.B, Tables VI and VII) are all derived
// from this kind of accounting: the MBT engine has a 6-cycle latency but is
// fully pipelined (initiation interval 1), the BST needs up to 16 sequential
// memory accesses per packet (initiation interval 16), and the surrounding
// phases add a fixed number of cycles. Throughput in Gbps is the packet rate
// at the synthesised clock frequency multiplied by the packet size.
package pipeline

import "fmt"

// Stage is one phase of the lookup pipeline.
type Stage struct {
	// Name identifies the stage in reports, e.g. "field lookup".
	Name string
	// LatencyCycles is the number of clock cycles a single packet spends in
	// the stage.
	LatencyCycles int
	// InitiationInterval is the number of cycles between consecutive packets
	// entering the stage: 1 for a fully pipelined stage, LatencyCycles for a
	// stage that must finish one packet before accepting the next.
	InitiationInterval int
}

// Validate reports whether the stage is well formed.
func (s Stage) Validate() error {
	if s.LatencyCycles < 1 {
		return fmt.Errorf("pipeline: stage %q latency %d must be at least 1", s.Name, s.LatencyCycles)
	}
	if s.InitiationInterval < 1 {
		return fmt.Errorf("pipeline: stage %q initiation interval %d must be at least 1", s.Name, s.InitiationInterval)
	}
	if s.InitiationInterval > s.LatencyCycles {
		return fmt.Errorf("pipeline: stage %q initiation interval %d exceeds latency %d",
			s.Name, s.InitiationInterval, s.LatencyCycles)
	}
	return nil
}

// Pipeline is an ordered sequence of stages driven by a common clock.
type Pipeline struct {
	name   string
	fmaxHz float64
	stages []Stage
}

// New creates a pipeline with the given name and clock frequency in Hz. The
// stage list must be non-empty and every stage valid.
func New(name string, fmaxHz float64, stages ...Stage) (*Pipeline, error) {
	if fmaxHz <= 0 {
		return nil, fmt.Errorf("pipeline: %q clock frequency must be positive, got %v", name, fmaxHz)
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("pipeline: %q needs at least one stage", name)
	}
	for _, s := range stages {
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}
	p := &Pipeline{name: name, fmaxHz: fmaxHz, stages: make([]Stage, len(stages))}
	copy(p.stages, stages)
	return p, nil
}

// MustNew is like New but panics on error; it is intended for architecture
// constants validated by tests.
func MustNew(name string, fmaxHz float64, stages ...Stage) *Pipeline {
	p, err := New(name, fmaxHz, stages...)
	if err != nil {
		panic(err)
	}
	return p
}

// Name returns the pipeline name.
func (p *Pipeline) Name() string { return p.name }

// ClockHz returns the clock frequency in Hz.
func (p *Pipeline) ClockHz() float64 { return p.fmaxHz }

// Stages returns a copy of the stage list.
func (p *Pipeline) Stages() []Stage {
	out := make([]Stage, len(p.stages))
	copy(out, p.stages)
	return out
}

// LatencyCycles returns the end-to-end latency of one packet in clock cycles:
// the sum of per-stage latencies.
func (p *Pipeline) LatencyCycles() int {
	total := 0
	for _, s := range p.stages {
		total += s.LatencyCycles
	}
	return total
}

// LatencySeconds returns the end-to-end latency of one packet in seconds.
func (p *Pipeline) LatencySeconds() float64 {
	return float64(p.LatencyCycles()) / p.fmaxHz
}

// BottleneckInterval returns the largest initiation interval across stages,
// which bounds the packet rate.
func (p *Pipeline) BottleneckInterval() int {
	maxII := 1
	for _, s := range p.stages {
		if s.InitiationInterval > maxII {
			maxII = s.InitiationInterval
		}
	}
	return maxII
}

// LookupsPerSecond returns the sustained packet (lookup) rate.
func (p *Pipeline) LookupsPerSecond() float64 {
	return p.fmaxHz / float64(p.BottleneckInterval())
}

// ThroughputGbps returns the sustained line rate for the given packet size in
// bytes, the metric reported in Table VII (computed there for 40-byte
// packets) and in the conclusion (for 100-byte packets).
func (p *Pipeline) ThroughputGbps(packetBytes int) float64 {
	bitsPerPacket := float64(packetBytes) * 8
	return p.LookupsPerSecond() * bitsPerPacket / 1e9
}

// ScheduleEntry describes when one packet occupies one stage, for rendering
// the pipelining diagram of Fig. 3.
type ScheduleEntry struct {
	Packet     int
	Stage      string
	StartCycle int
	EndCycle   int // exclusive
}

// Schedule simulates the flow of n consecutive packets through the pipeline
// and returns the per-stage occupancy of each packet. Packet i enters stage 0
// at cycle i*BottleneckInterval (steady-state issue) and each stage is
// entered as soon as the previous one finishes.
func (p *Pipeline) Schedule(n int) []ScheduleEntry {
	entries := make([]ScheduleEntry, 0, n*len(p.stages))
	issue := p.BottleneckInterval()
	for pkt := 0; pkt < n; pkt++ {
		start := pkt * issue
		for _, s := range p.stages {
			entries = append(entries, ScheduleEntry{
				Packet:     pkt,
				Stage:      s.Name,
				StartCycle: start,
				EndCycle:   start + s.LatencyCycles,
			})
			start += s.LatencyCycles
		}
	}
	return entries
}
