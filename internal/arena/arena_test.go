package arena

import (
	"fmt"
	"testing"
)

// TestGrowthAcrossBlockBoundaries allocates far more than one builder block
// and checks every record survives Finish at its handle, including the
// allocation that straddles a block boundary (which must close the old block
// and keep global offsets contiguous).
func TestGrowthAcrossBlockBoundaries(t *testing.T) {
	b := NewBuilder()
	type rec struct {
		h Handle
		n int
	}
	var recs []rec
	total := 0
	// Mixed sizes chosen so allocations repeatedly hit a block remainder
	// they don't fit: primes around 1/3 of the block size plus tiny records.
	sizes := []int{3, 5413, 7, 6007, 11, blockWords - 1, 2, blockWords + 17}
	for round := 0; round < 12; round++ {
		for _, n := range sizes {
			h, view := b.Words(n)
			if int(h) != total {
				t.Fatalf("handle %d, want global offset %d", h, total)
			}
			if len(view) != n {
				t.Fatalf("view length %d, want %d", len(view), n)
			}
			for i := range view {
				view[i] = uint32(int(h) + i)
			}
			recs = append(recs, rec{h, n})
			total += n
		}
	}
	if b.WordLen() != total {
		t.Fatalf("builder WordLen %d, want %d", b.WordLen(), total)
	}
	a := b.Finish()
	if a.WordLen() != total {
		t.Fatalf("arena WordLen %d, want %d", a.WordLen(), total)
	}
	for _, r := range recs {
		view := a.Words(r.h, r.n)
		for i, v := range view {
			if v != uint32(int(r.h)+i) {
				t.Fatalf("word %d of record at %d: got %d, want %d", i, r.h, v, int(r.h)+i)
			}
		}
	}
}

// TestMixedByteAlignment interleaves u8 and u32-aligned byte records and
// checks the returned offsets honour the requested alignment with minimal
// padding, across block boundaries.
func TestMixedByteAlignment(t *testing.T) {
	b := NewBuilder()
	type rec struct {
		h     ByteHandle
		n     int
		align int
		fill  byte
	}
	var recs []rec
	layout := []struct{ n, align int }{
		{1, 1}, {4, 4}, {3, 1}, {8, 8}, {1, 1}, {4, 4},
		{4*blockWords - 5, 1}, {4, 4}, {2, 2}, {4, 4},
	}
	for i, l := range layout {
		h, view := b.Bytes(l.n, l.align)
		if int(h)%l.align != 0 {
			t.Fatalf("record %d: offset %d not %d-aligned", i, h, l.align)
		}
		fill := byte(i + 1)
		for j := range view {
			view[j] = fill
		}
		recs = append(recs, rec{h, l.n, l.align, fill})
	}
	// Padding may separate records but never more than align-1 bytes.
	for i := 1; i < len(recs); i++ {
		gap := int(recs[i].h) - (int(recs[i-1].h) + recs[i-1].n)
		if gap < 0 || gap >= recs[i].align {
			t.Fatalf("record %d: gap %d before %d-aligned record", i, gap, recs[i].align)
		}
	}
	a := b.Finish()
	for i, r := range recs {
		for j, v := range a.Bytes(r.h, r.n) {
			if v != r.fill {
				t.Fatalf("record %d byte %d: got %d, want %d", i, j, v, r.fill)
			}
		}
	}
}

// TestBadAlignmentPanics checks non-power-of-two alignments are rejected.
func TestBadAlignmentPanics(t *testing.T) {
	for _, align := range []int{0, -1, 3, 6, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Bytes(1, %d) did not panic", align)
				}
			}()
			NewBuilder().Bytes(1, align)
		}()
	}
}

// TestHandleStabilityAfterFinish writes through builder views, finishes, and
// checks the handles address identical content in the compacted arena — the
// contract that lets structure builders link records by index while the
// final layout is still unknown.
func TestHandleStabilityAfterFinish(t *testing.T) {
	b := NewBuilder()
	h1, w1 := b.Words(4)
	h2, w2 := b.Words(blockWords) // forces a fresh block
	h3, w3 := b.Words(2)
	bh, bb := b.Bytes(5, 4)
	copy(w1, []uint32{10, 11, 12, 13})
	w2[0], w2[blockWords-1] = 99, 98
	copy(w3, []uint32{7, 8})
	copy(bb, []byte{1, 2, 3, 4, 5})
	// Cross-record links by handle, resolved only after Finish.
	w1[3] = uint32(h3)
	a := b.Finish()
	if got := a.Words(h1, 4); got[0] != 10 || got[3] != uint32(h3) {
		t.Fatalf("record 1 corrupted: %v", got)
	}
	if a.Word(h2) != 99 || a.Word(h2+blockWords-1) != 98 {
		t.Fatalf("record 2 corrupted")
	}
	if link := a.Word(h1 + 3); a.Word(Handle(link)) != 7 {
		t.Fatalf("handle link through record 1 resolved to %d", a.Word(Handle(link)))
	}
	if got := a.Bytes(bh, 5); got[4] != 5 {
		t.Fatalf("byte record corrupted: %v", got)
	}
	// The builder is dead after Finish.
	for _, f := range []func(){func() { b.Words(1) }, func() { b.Bytes(1, 1) }, func() { b.Finish() }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("use after Finish did not panic")
				}
			}()
			f()
		}()
	}
}

// TestOutOfRangePanics checks every accessor rejects indices outside the
// arena, including length overruns from valid handles.
func TestOutOfRangePanics(t *testing.T) {
	b := NewBuilder()
	b.Words(8)
	b.Bytes(8, 1)
	a := b.Finish()
	cases := []struct {
		name string
		f    func()
	}{
		{"Word past end", func() { a.Word(8) }},
		{"SetWord past end", func() { a.SetWord(100, 1) }},
		{"Words overrun", func() { a.Words(4, 5) }},
		{"Words zero length", func() { a.Words(0, 0) }},
		{"Byte past end", func() { a.Byte(8) }},
		{"SetByte past end", func() { a.SetByte(8, 1) }},
		{"Bytes overrun", func() { a.Bytes(7, 2) }},
		{"builder zero words", func() { NewBuilder().Words(0) }},
		{"builder negative bytes", func() { NewBuilder().Bytes(-1, 1) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

// TestGrowPreservesContentAndExtends checks the update plane's escape hatch:
// existing words survive, the new region is zeroed and addressable, and the
// returned handle is the old length.
func TestGrowPreservesContentAndExtends(t *testing.T) {
	b := NewBuilder()
	h, w := b.Words(3)
	copy(w, []uint32{5, 6, 7})
	a := b.Finish()
	nh := a.Grow(10)
	if nh != 3 || a.WordLen() != 13 {
		t.Fatalf("Grow handle %d len %d, want 3 and 13", nh, a.WordLen())
	}
	if got := a.Words(h, 3); got[2] != 7 {
		t.Fatalf("content lost across Grow: %v", got)
	}
	for i := 0; i < 10; i++ {
		if a.Word(nh+Handle(i)) != 0 {
			t.Fatalf("grown region not zeroed at %d", i)
		}
	}
	a.SetWord(12, 42)
	if a.Word(12) != 42 {
		t.Fatal("grown region not writable")
	}
}

// TestClone checks clones are deep: writes to one side are invisible to the
// other.
func TestClone(t *testing.T) {
	b := NewBuilder()
	_, w := b.Words(2)
	_, bb := b.Bytes(2, 1)
	w[0], bb[0] = 1, 1
	a := b.Finish()
	c := a.Clone()
	a.SetWord(0, 99)
	a.SetByte(0, 99)
	if c.Word(0) != 1 || c.Byte(0) != 1 {
		t.Fatalf("clone shares storage: word %d byte %d", c.Word(0), c.Byte(0))
	}
	if c.SizeBytes() != a.SizeBytes() {
		t.Fatalf("clone size %d, want %d", c.SizeBytes(), a.SizeBytes())
	}
}

// TestFinishEmptyBuilder checks a build that allocated nothing still yields
// a usable (empty) arena.
func TestFinishEmptyBuilder(t *testing.T) {
	a := NewBuilder().Finish()
	if a.WordLen() != 0 || a.ByteLen() != 0 || a.SizeBytes() != 0 {
		t.Fatalf("empty arena has size: %d words %d bytes", a.WordLen(), a.ByteLen())
	}
}

// Example of the two-phase protocol, for the package docs.
func ExampleBuilder() {
	b := NewBuilder()
	hdr, w := b.Words(2)
	leaf, lw := b.Words(1)
	w[0] = uint32(leaf) // index-based link, no pointer
	lw[0] = 42
	a := b.Finish()
	fmt.Println(a.Word(Handle(a.Word(hdr))))
	// Output: 42
}
