// Package arena provides the flat-memory backing store of the packet-tier
// lookup structures: a bump allocator that lays records out in contiguous
// []uint32 / []byte spaces addressed by integer handles instead of pointers.
//
// The point is the garbage collector. A pointer-rich decision tree or hash
// table is O(nodes) of GC scan work on every cycle; the same structure
// flattened into an arena is at most two allocations of pointer-free memory,
// which the collector classifies as noscan and skips entirely. A published
// snapshot therefore costs O(1) scan time no matter how many rules it holds,
// and cloning it for the copy-on-write update plane is a pair of memcpys.
//
// Usage is two-phase. A Builder accumulates allocations during a structure
// build; every allocation returns a Handle (a stable global offset) plus a
// writable view of the new record. Finish compacts the accumulated blocks
// into one contiguous Arena; handles issued by the Builder remain valid —
// they index the same logical offsets in the finished arena.
//
//	b := arena.NewBuilder()
//	h, node := b.Words(14)     // writable until Finish
//	node[0] = flags
//	a := b.Finish()
//	a.Word(h) == flags         // same offset, now contiguous storage
//
// All accessors are bounds-checked and panic on out-of-range handles: a bad
// index in a flattened structure is a builder bug, not a recoverable
// condition, and silently reading a neighbouring record would be far worse.
package arena

import "fmt"

// Handle addresses one word-space allocation: the index of its first uint32
// in the finished arena. Handles are issued by Builder.Words and remain valid
// across Finish.
type Handle uint32

// ByteHandle addresses one byte-space allocation: the index of its first byte
// in the finished arena.
type ByteHandle uint32

// blockWords is the default capacity of one builder block. Blocks are never
// reallocated, so views handed out by Words/Bytes stay valid until Finish;
// an allocation that does not fit the current block's remainder closes it
// and opens a fresh one (oversized requests get a dedicated block).
const blockWords = 16 * 1024

// Builder accumulates arena allocations during a structure build.
type Builder struct {
	blocks [][]uint32 // closed word blocks; lengths sum to nWords
	cur    []uint32   // open word block, len = fill, cap = capacity
	nWords int        // total words allocated across closed blocks + cur

	bblocks [][]byte
	bcur    []byte
	nBytes  int

	finished bool
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// WordLen returns the number of words allocated so far — the handle the next
// Words call will return.
func (b *Builder) WordLen() int { return b.nWords }

// ByteLen returns the number of bytes allocated so far.
func (b *Builder) ByteLen() int { return b.nBytes }

// Words allocates n words and returns their handle plus a writable view of
// the zeroed record. The view stays valid until Finish. n must be positive.
func (b *Builder) Words(n int) (Handle, []uint32) {
	if b.finished {
		panic("arena: Words on finished builder")
	}
	if n <= 0 {
		panic(fmt.Sprintf("arena: word allocation of %d words", n))
	}
	if len(b.cur)+n > cap(b.cur) {
		// Close the open block at its fill; the remainder is never used, so
		// global offsets stay the sum of block lengths.
		if b.cur != nil {
			b.blocks = append(b.blocks, b.cur)
		}
		size := blockWords
		if n > size {
			size = n
		}
		b.cur = make([]uint32, 0, size)
	}
	h := Handle(b.nWords)
	start := len(b.cur)
	b.cur = b.cur[: start+n : cap(b.cur)]
	b.nWords += n
	return h, b.cur[start : start+n]
}

// Bytes allocates n bytes aligned to align (which must be a power of two)
// and returns their handle plus a writable view of the zeroed record. The
// alignment is of the global byte offset, so mixed u8/u32 records laid out
// in the byte space keep their natural alignment in the finished arena. The
// view stays valid until Finish.
func (b *Builder) Bytes(n, align int) (ByteHandle, []byte) {
	if b.finished {
		panic("arena: Bytes on finished builder")
	}
	if n <= 0 {
		panic(fmt.Sprintf("arena: byte allocation of %d bytes", n))
	}
	if align <= 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("arena: alignment %d is not a power of two", align))
	}
	if pad := (align - b.nBytes&(align-1)) & (align - 1); pad > 0 {
		b.byteAlloc(pad)
		b.nBytes += pad
	}
	h := ByteHandle(b.nBytes)
	out := b.byteAlloc(n)
	b.nBytes += n
	return h, out
}

// byteAlloc carves n zeroed bytes out of the open byte block, opening a new
// block when the remainder is too small.
func (b *Builder) byteAlloc(n int) []byte {
	if len(b.bcur)+n > cap(b.bcur) {
		if b.bcur != nil {
			b.bblocks = append(b.bblocks, b.bcur)
		}
		size := 4 * blockWords
		if n > size {
			size = n
		}
		b.bcur = make([]byte, 0, size)
	}
	start := len(b.bcur)
	b.bcur = b.bcur[: start+n : cap(b.bcur)]
	return b.bcur[start : start+n]
}

// Finish compacts the accumulated blocks into one contiguous Arena. Handles
// issued by the builder address the same offsets in the result. The builder
// is dead afterwards; further allocation panics.
func (b *Builder) Finish() *Arena {
	if b.finished {
		panic("arena: Finish called twice")
	}
	b.finished = true
	a := &Arena{
		words: make([]uint32, 0, b.nWords),
		bytes: make([]byte, 0, b.nBytes),
	}
	for _, blk := range b.blocks {
		a.words = append(a.words, blk...)
	}
	a.words = append(a.words, b.cur...)
	for _, blk := range b.bblocks {
		a.bytes = append(a.bytes, blk...)
	}
	a.bytes = append(a.bytes, b.bcur...)
	b.blocks, b.cur, b.bblocks, b.bcur = nil, nil, nil, nil
	return a
}

// Arena is the finished flat store: one contiguous word space and one
// contiguous byte space, both pointer-free (noscan to the collector).
type Arena struct {
	words []uint32
	bytes []byte
}

// WordLen returns the size of the word space.
func (a *Arena) WordLen() int { return len(a.words) }

// ByteLen returns the size of the byte space.
func (a *Arena) ByteLen() int { return len(a.bytes) }

// SizeBytes returns the total backing storage of both spaces.
func (a *Arena) SizeBytes() int { return 4*len(a.words) + len(a.bytes) }

// Word reads the word at h.
func (a *Arena) Word(h Handle) uint32 {
	a.checkWords(h, 1)
	return a.words[h]
}

// SetWord writes the word at h.
func (a *Arena) SetWord(h Handle, v uint32) {
	a.checkWords(h, 1)
	a.words[h] = v
}

// Words returns the n-word record starting at h. The returned slice aliases
// the arena (writes through it are visible) and must not be retained across
// Grow.
func (a *Arena) Words(h Handle, n int) []uint32 {
	a.checkWords(h, n)
	return a.words[h : int(h)+n : int(h)+n]
}

// Byte reads the byte at h.
func (a *Arena) Byte(h ByteHandle) byte {
	a.checkBytes(h, 1)
	return a.bytes[h]
}

// SetByte writes the byte at h.
func (a *Arena) SetByte(h ByteHandle, v byte) {
	a.checkBytes(h, 1)
	a.bytes[h] = v
}

// Bytes returns the n-byte record starting at h, aliasing the arena.
func (a *Arena) Bytes(h ByteHandle, n int) []byte {
	a.checkBytes(h, n)
	return a.bytes[h : int(h)+n : int(h)+n]
}

func (a *Arena) checkWords(h Handle, n int) {
	if n <= 0 || int(h) > len(a.words)-n {
		panic(fmt.Sprintf("arena: word access [%d,%d) out of range [0,%d)", h, int(h)+n, len(a.words)))
	}
}

func (a *Arena) checkBytes(h ByteHandle, n int) {
	if n <= 0 || int(h) > len(a.bytes)-n {
		panic(fmt.Sprintf("arena: byte access [%d,%d) out of range [0,%d)", h, int(h)+n, len(a.bytes)))
	}
}

// Grow extends the word space by extra zeroed words and returns the handle
// of the first new word. It is the update plane's escape hatch: a delta
// apply that outgrows the spare region the builder reserved extends the
// arena instead of failing, at the cost of one reallocation (the next full
// rebuild re-compacts). Views returned before Grow are invalidated.
func (a *Arena) Grow(extra int) Handle {
	if extra <= 0 {
		panic(fmt.Sprintf("arena: grow by %d words", extra))
	}
	h := Handle(len(a.words))
	grown := make([]uint32, len(a.words)+extra)
	copy(grown, a.words)
	a.words = grown
	return h
}

// Clone returns an independent copy of the arena — the flat structures'
// whole copy-on-write story is this pair of memcpys.
func (a *Arena) Clone() *Arena {
	c := &Arena{}
	if len(a.words) > 0 {
		c.words = make([]uint32, len(a.words))
		copy(c.words, a.words)
	}
	if len(a.bytes) > 0 {
		c.bytes = make([]byte, len(a.bytes))
		copy(c.bytes, a.bytes)
	}
	return c
}
