package core

import (
	"errors"
	"testing"

	"sdnpc/internal/fivetuple"
)

func batchRule(t *testing.T, priority int, src string, dstPort uint16) fivetuple.Rule {
	t.Helper()
	srcPrefix, err := fivetuple.ParsePrefix(src)
	if err != nil {
		t.Fatalf("ParsePrefix(%s): %v", src, err)
	}
	return fivetuple.Rule{
		Priority:  priority,
		SrcPrefix: srcPrefix,
		DstPrefix: fivetuple.Prefix{},
		SrcPort:   fivetuple.WildcardPortRange(),
		DstPort:   fivetuple.ExactPort(dstPort),
		Protocol:  fivetuple.ExactProtocol(fivetuple.ProtoTCP),
		Action:    fivetuple.ActionForward,
		ActionArg: uint32(priority),
	}
}

// TestApplyUpdatesBatch exercises the amortised update path: a mixed
// insert/delete sequence lands as one snapshot swap, failed ops are skipped
// with their error recorded, and the surviving ops still apply.
func TestApplyUpdatesBatch(t *testing.T) {
	c := MustNew(DefaultConfig())
	r0 := batchRule(t, 0, "10.0.0.0/8", 80)
	r1 := batchRule(t, 1, "10.1.0.0/16", 443)
	r2 := batchRule(t, 2, "10.2.0.0/16", 8080)
	notInstalled := batchRule(t, 7, "172.16.0.0/12", 22)

	reports, errs, err := c.ApplyUpdates([]UpdateOp{
		{Rule: r0},
		{Rule: r1},
		{Delete: true, Rule: notInstalled}, // fails: never installed
		{Rule: r2},
		{Delete: true, Rule: r1}, // deletes a rule inserted earlier in the same batch
	})
	if err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}
	if len(reports) != 5 || len(errs) != 5 {
		t.Fatalf("got %d reports / %d errs, want 5 / 5", len(reports), len(errs))
	}
	for i, wantErr := range []bool{false, false, true, false, false} {
		if (errs[i] != nil) != wantErr {
			t.Errorf("op %d error = %v, want error=%v", i, errs[i], wantErr)
		}
	}
	if !errors.Is(errs[2], ErrRuleNotInstalled) {
		t.Errorf("op 2 error = %v, want ErrRuleNotInstalled", errs[2])
	}
	if got := c.RuleCount(); got != 2 {
		t.Errorf("RuleCount = %d, want 2 (r0 and r2)", got)
	}

	header := fivetuple.Header{
		SrcIP: fivetuple.MustParseIPv4("10.2.3.4"), DstIP: fivetuple.MustParseIPv4("1.2.3.4"),
		SrcPort: 1000, DstPort: 8080, Protocol: fivetuple.ProtoTCP,
	}
	if res := c.Lookup(header); !res.Matched || res.Priority != 2 {
		t.Errorf("lookup after batch = %+v, want the priority-2 rule", res)
	}
	stats := c.Stats()
	if stats.Inserts != 3 || stats.Deletes != 1 {
		t.Errorf("stats = %d inserts / %d deletes, want 3 / 1", stats.Inserts, stats.Deletes)
	}

	// An empty batch is a no-op.
	if reports, errs, err := c.ApplyUpdates(nil); err != nil || reports != nil || errs != nil {
		t.Errorf("empty batch = (%v, %v, %v), want all nil", reports, errs, err)
	}
}

// TestBatchMatchesIndividualUpdates pins the equivalence that the dataplane
// applier relies on: a batch must leave the classifier in exactly the state
// a per-op sequence of InsertRule/DeleteRule calls would.
func TestBatchMatchesIndividualUpdates(t *testing.T) {
	rules := []fivetuple.Rule{
		batchRule(t, 0, "10.0.0.0/8", 80),
		batchRule(t, 1, "10.1.0.0/16", 443),
		batchRule(t, 2, "192.168.0.0/16", 53),
	}

	batched := MustNew(DefaultConfig())
	ops := make([]UpdateOp, 0, len(rules)+1)
	for _, r := range rules {
		ops = append(ops, UpdateOp{Rule: r})
	}
	ops = append(ops, UpdateOp{Delete: true, Rule: rules[1]})
	if _, errs, err := batched.ApplyUpdates(ops); err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	} else {
		for i, e := range errs {
			if e != nil {
				t.Fatalf("op %d: %v", i, e)
			}
		}
	}

	individual := MustNew(DefaultConfig())
	for _, r := range rules {
		if _, err := individual.InsertRule(r); err != nil {
			t.Fatalf("InsertRule: %v", err)
		}
	}
	if _, err := individual.DeleteRule(rules[1]); err != nil {
		t.Fatalf("DeleteRule: %v", err)
	}

	if b, i := batched.RuleCount(), individual.RuleCount(); b != i {
		t.Fatalf("rule counts diverge: batched %d, individual %d", b, i)
	}
	headers := []fivetuple.Header{
		{SrcIP: fivetuple.MustParseIPv4("10.9.9.9"), DstIP: fivetuple.MustParseIPv4("8.8.8.8"), SrcPort: 1, DstPort: 80, Protocol: fivetuple.ProtoTCP},
		{SrcIP: fivetuple.MustParseIPv4("10.1.2.3"), DstIP: fivetuple.MustParseIPv4("8.8.8.8"), SrcPort: 1, DstPort: 443, Protocol: fivetuple.ProtoTCP},
		{SrcIP: fivetuple.MustParseIPv4("192.168.1.1"), DstIP: fivetuple.MustParseIPv4("8.8.8.8"), SrcPort: 1, DstPort: 53, Protocol: fivetuple.ProtoTCP},
	}
	for _, h := range headers {
		got, want := batched.Lookup(h), individual.Lookup(h)
		if got.Matched != want.Matched || got.Priority != want.Priority || got.Action != want.Action {
			t.Errorf("lookup %v diverges: batched %+v, individual %+v", h, got, want)
		}
	}
}
