package core

import (
	"sync"

	"sdnpc/internal/engine"
	"sdnpc/internal/fivetuple"
)

// ActionRef is one entry of a multi-action verdict: the action of one
// matching rule, in strict priority order. Terminal marks a terminating rule
// — the entry that ends the collection; every entry before it came from a
// non-terminating rule.
type ActionRef struct {
	Priority  int
	Action    fivetuple.Action
	ActionArg uint32
	// Terminal reports whether this rule terminates evaluation. A verdict
	// list contains zero or more non-terminal entries followed by at most one
	// terminal entry.
	Terminal bool
}

// multiScratchPool recycles the rule-index scratch LookupAll hands to the
// engine's LookupPacketAll, so the multi-action serving path performs no
// per-packet heap allocation once warm.
var multiScratchPool = sync.Pool{New: func() any {
	sc := make([]int, 0, 64)
	return &sc
}}

// LookupAll classifies one header and returns every matching rule's action in
// strict priority order, stopping after (and including) the first terminating
// match — the multi-action semantics non-terminating rules opt into. The
// returned Result is the ordinary single-verdict outcome: its action fields
// always equal the first entry of the list (the HPMR), so LookupAll and
// Lookup agree by construction.
//
// Like Lookup it is lock-free and serves one consistent snapshot. It bypasses
// the microflow cache — cached verdicts memoise the single-action Result, not
// the list. Allocation-free steady state needs LookupAllInto with a recycled
// destination slice.
func (c *Classifier) LookupAll(h fivetuple.Header) ([]ActionRef, Result) {
	return c.LookupAllInto(nil, h)
}

// LookupAllInto is the allocation-free variant of LookupAll: matches are
// appended to dst[:0], reusing its backing array when capacity allows.
func (c *Classifier) LookupAllInto(dst []ActionRef, h fivetuple.Header) ([]ActionRef, Result) {
	dst = dst[:0]
	var result Result
	if c.fleet != nil {
		rep, sl := c.fleet.pick()
		dst, result = rep.snap.Load().lookupAllInto(&c.cfg, h, dst)
		rep.stats.recordLookup(result)
		c.fleet.release(sl)
	} else {
		dst, result = c.view().lookupAllInto(&c.cfg, h, dst)
		c.stats.recordLookup(result)
	}
	c.sampler.offer(h)
	return dst, result
}

// LookupAllInto collects the multi-action verdict from this reader's replica,
// appending to dst[:0] like Classifier.LookupAllInto.
func (r *Reader) LookupAllInto(dst []ActionRef, h fivetuple.Header) ([]ActionRef, Result) {
	dst = dst[:0]
	var result Result
	if r.rep != nil {
		dst, result = r.rep.snap.Load().lookupAllInto(&r.c.cfg, h, dst)
		r.rep.stats.recordLookup(result)
	} else {
		dst, result = r.c.view().lookupAllInto(&r.c.cfg, h, dst)
		r.c.stats.recordLookup(result)
	}
	r.c.sampler.offer(h)
	return dst, result
}

// lookupAllInto is the snapshot-level multi-action lookup. Routing mirrors
// snapshot.lookup — shard steer, family fallback, packet tier, field tier —
// with one addition: a packet engine declaring multi-match support is asked
// for every matching rule. Engines without multi-match support can only be
// serving terminating rules (DimMultiAction is gated at install), so their
// single verdict IS the complete list.
func (s *snapshot) lookupAllInto(cfg *Config, h fivetuple.Header, dst []ActionRef) ([]ActionRef, Result) {
	if s.part != nil {
		return s.shards[s.part.Steer(h)].lookupAllInto(cfg, h, dst)
	}
	if h.Family != fivetuple.FamilyIPv4 && !s.packetDims.Has(fivetuple.DimIPv6) {
		return s.collectFallback(h, dst)
	}
	if s.packet != nil {
		if mm, ok := s.packet.(engine.MultiMatchPacketEngine); ok {
			return s.collectPacket(mm, h, dst)
		}
		res := s.lookupPacket(h)
		if res.Matched {
			dst = append(dst, ActionRef{Priority: res.Priority, Action: res.Action, ActionArg: res.ActionArg, Terminal: true})
		}
		return dst, res
	}
	res := s.lookup(cfg, h)
	if res.Matched {
		dst = append(dst, ActionRef{Priority: res.Priority, Action: res.Action, ActionArg: res.ActionArg, Terminal: true})
	}
	return dst, res
}

// collectPacket gathers the multi-match verdict from a multi-match packet
// engine. The engine contract already yields priority order (ascending
// indices into the best-first packetRules slice) truncated at the first
// terminating rule; the re-sort and re-truncation here defend that contract
// against engine-internal orderings that drift after delta churn — the
// classifier's verdict is priority-ordered no matter what the structure
// returned. Both passes are allocation-free (insertion sort over the verdict
// list, pooled index scratch).
func (s *snapshot) collectPacket(mm engine.MultiMatchPacketEngine, h fivetuple.Header, dst []ActionRef) ([]ActionRef, Result) {
	scp := multiScratchPool.Get().(*[]int)
	idxs, accesses := mm.LookupPacketAll(h, (*scp)[:0])
	start := len(dst)
	for _, i := range idxs {
		r := &s.packetRules[i]
		dst = append(dst, ActionRef{Priority: r.Priority, Action: r.Action, ActionArg: r.ActionArg, Terminal: !r.NonTerminating})
	}
	*scp = idxs[:0]
	multiScratchPool.Put(scp)
	sortRefsByPriority(dst[start:])
	dst = truncateAtTerminal(dst, start)
	result := Result{
		FieldAccesses: accesses,
		LatencyCycles: CyclesDispatch + accesses + CyclesPacketResult,
	}
	if len(dst) > start {
		ref := dst[start]
		result.Matched = true
		result.Priority = ref.Priority
		result.Action = ref.Action
		result.ActionArg = ref.ActionArg
	}
	return dst, result
}

// collectFallback serves a header no precomputed structure can answer (an
// IPv6 header under an IPv4-only engine selection) by scanning the
// installed-rule shadow. Installation order is not priority order, so the
// matches are collected first and sorted before the terminal truncation.
func (s *snapshot) collectFallback(h fivetuple.Header, dst []ActionRef) ([]ActionRef, Result) {
	start := len(dst)
	accesses := 0
	for i := range s.installed {
		accesses++
		r := &s.installed[i].rule
		if !r.Matches(h) {
			continue
		}
		dst = append(dst, ActionRef{Priority: r.Priority, Action: r.Action, ActionArg: r.ActionArg, Terminal: !r.NonTerminating})
	}
	sortRefsByPriority(dst[start:])
	dst = truncateAtTerminal(dst, start)
	result := Result{
		FieldAccesses: accesses,
		LatencyCycles: CyclesDispatch + accesses + CyclesPacketResult,
	}
	if len(dst) > start {
		ref := dst[start]
		result.Matched = true
		result.Priority = ref.Priority
		result.Action = ref.Action
		result.ActionArg = ref.ActionArg
	}
	return dst, result
}

// lookupFallback is the single-verdict form of collectFallback: the
// best-priority scan an IPv6 header falls back to when the active engine
// serves only the IPv4 five-tuple.
func (s *snapshot) lookupFallback(h fivetuple.Header) Result {
	best := -1
	accesses := 0
	for i := range s.installed {
		accesses++
		r := &s.installed[i].rule
		if !r.Matches(h) {
			continue
		}
		if best < 0 || r.Priority < s.installed[best].rule.Priority {
			best = i
		}
	}
	result := Result{
		FieldAccesses: accesses,
		LatencyCycles: CyclesDispatch + accesses + CyclesPacketResult,
	}
	if best >= 0 {
		r := &s.installed[best].rule
		result.Matched = true
		result.Priority = r.Priority
		result.Action = r.Action
		result.ActionArg = r.ActionArg
	}
	return result
}

// sortRefsByPriority sorts a verdict list in place by ascending priority.
// Stable insertion sort: the lists are short (one entry per matching rule)
// and usually already ordered, and the hot path cannot afford sort.Slice's
// closure allocation.
func sortRefsByPriority(refs []ActionRef) {
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && refs[j].Priority < refs[j-1].Priority; j-- {
			refs[j], refs[j-1] = refs[j-1], refs[j]
		}
	}
}

// truncateAtTerminal cuts the verdict list after its first terminal entry:
// everything past the first terminating rule is unreachable.
func truncateAtTerminal(dst []ActionRef, start int) []ActionRef {
	for i := start; i < len(dst); i++ {
		if dst[i].Terminal {
			return dst[:i+1]
		}
	}
	return dst
}
