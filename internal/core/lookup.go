package core

import (
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/label"
)

// Result is the outcome of one lookup.
type Result struct {
	// Matched reports whether a rule matched; the remaining action fields are
	// meaningful only when it is true.
	Matched bool
	// Priority is the priority of the returned rule (the HPMR).
	Priority int
	// Action and ActionArg are the rule's action.
	Action    fivetuple.Action
	ActionArg uint32

	// FieldAccesses is the number of algorithm-block memory accesses
	// performed by the per-field engines for this packet.
	FieldAccesses int
	// LabelFetches is the number of Labels-memory reads (one per non-empty
	// field list).
	LabelFetches int
	// RuleFilterProbes is the number of Rule Filter slots read in phase 4.
	RuleFilterProbes int
	// Combinations is the number of label combinations examined in phase 3
	// (always 1 in HPML mode).
	Combinations int
	// LatencyCycles is the end-to-end latency of this lookup in clock cycles
	// under the Fig. 3 pipeline model.
	LatencyCycles int
}

// fieldLookup is the phase-2 result of one dimension.
type fieldLookup struct {
	dim      label.Dimension
	list     *label.List
	accesses int
	cycles   int
}

// Lookup classifies one packet header through the four pipelined phases of
// Fig. 3 and returns the Highest Priority Matching Rule found by the
// configured combination mode.
func (c *Classifier) Lookup(h fivetuple.Header) Result {
	// Phase 1: split the header into per-dimension segments and dispatch to
	// the engines selected by IPalg_s (the dispatch itself costs one cycle).
	// Phase 2: parallel single-field lookups.
	fields := c.lookupFields(h)

	result := Result{}
	maxFieldCycles := 0
	for _, f := range fields {
		result.FieldAccesses += f.accesses
		if f.cycles > maxFieldCycles {
			maxFieldCycles = f.cycles
		}
		if f.list.Len() > 0 {
			result.LabelFetches++
		}
	}
	result.LatencyCycles = CyclesDispatch + maxFieldCycles + CyclesLabelFetch + CyclesResult

	// Phase 3 + 4: combine the label lists into Rule Filter probes and fetch
	// the HPMR. If any dimension produced no matching label, no rule can
	// match the packet.
	for _, f := range fields {
		if f.list.Len() == 0 {
			c.recordLookup(result)
			return result
		}
	}

	switch c.cfg.CombineMode {
	case CombineHPML:
		result = c.combineHPML(fields, result)
	default:
		result = c.combineCrossProduct(fields, result)
	}
	c.recordLookup(result)
	return result
}

// headerKeys splits the header into the per-dimension lookup keys of
// phase 1 — pure header-format extraction, independent of which engine
// serves each dimension. Indexed by Dimension (a dense 1-based enum) to
// keep the per-packet hot path allocation-free.
func headerKeys(h fivetuple.Header) [label.NumDimensions + 1]uint32 {
	var keys [label.NumDimensions + 1]uint32
	keys[label.DimSrcIPHigh] = uint32(h.SrcIP.High16())
	keys[label.DimSrcIPLow] = uint32(h.SrcIP.Low16())
	keys[label.DimDstIPHigh] = uint32(h.DstIP.High16())
	keys[label.DimDstIPLow] = uint32(h.DstIP.Low16())
	keys[label.DimSrcPort] = uint32(h.SrcPort)
	keys[label.DimDstPort] = uint32(h.DstPort)
	keys[label.DimProtocol] = uint32(h.Protocol)
	return keys
}

// lookupFields performs the parallel phase-2 lookups: every dimension's key
// is handed to that dimension's engine through the FieldEngine interface.
func (c *Classifier) lookupFields(h fivetuple.Header) []fieldLookup {
	keys := headerKeys(h)
	out := make([]fieldLookup, 0, label.NumDimensions)
	for _, d := range label.Dimensions() {
		eng := c.engines[d]
		list, accesses := eng.Lookup(keys[d])
		out = append(out, fieldLookup{dim: d, list: list, accesses: accesses, cycles: eng.Cost().LookupCycles})
	}
	return out
}

// mbtLookupCycles returns the phase-2 latency of the MBT engines (§V.B: the
// three-level trie completes in 6 cycles). It anchors the synthesis
// estimate, which models the paper's MBT-provisioned pipeline; the live
// latency model asks each engine for its own cost.
func mbtLookupCycles() int { return 3 * CyclesPerMBTLevel }

// combineHPML implements the paper's phase-3 combination: the first (highest
// priority) label of each list is concatenated into the 68-bit key and the
// Rule Filter is probed once.
func (c *Classifier) combineHPML(fields []fieldLookup, result Result) Result {
	labels := make(map[label.Dimension]label.Label, label.NumDimensions)
	for _, f := range fields {
		hpml, _ := f.list.HPML()
		labels[f.dim] = hpml.Label
	}
	result.Combinations = 1
	entry, found, probes := c.filter.lookup(label.PackKey(labels))
	result.RuleFilterProbes = probes
	if found {
		result.Matched = true
		result.Priority = entry.priority
		result.Action = entry.action
		result.ActionArg = entry.actionArg
	}
	return result
}

// combineCrossProduct probes every combination of matching labels and keeps
// the best-priority hit; it terminates early once the probe budget is
// exhausted.
func (c *Classifier) combineCrossProduct(fields []fieldLookup, result Result) Result {
	items := make([][]label.PriorityLabel, len(fields))
	for i, f := range fields {
		items[i] = f.list.Items()
	}
	current := make(map[label.Dimension]label.Label, label.NumDimensions)
	best := Result{}
	foundAny := false

	var walk func(depth int) bool
	walk = func(depth int) bool {
		if result.Combinations >= c.cfg.MaxCrossProductProbes {
			return true // budget exhausted
		}
		if depth == len(fields) {
			result.Combinations++
			entry, found, probes := c.filter.lookup(label.PackKey(current))
			result.RuleFilterProbes += probes
			if found && (!foundAny || entry.priority < best.Priority) {
				foundAny = true
				best.Priority = entry.priority
				best.Action = entry.action
				best.ActionArg = entry.actionArg
			}
			return false
		}
		for _, item := range items[depth] {
			current[fields[depth].dim] = item.Label
			if walk(depth + 1) {
				return true
			}
		}
		return false
	}
	walk(0)

	if foundAny {
		result.Matched = true
		result.Priority = best.Priority
		result.Action = best.Action
		result.ActionArg = best.ActionArg
	}
	// Additional probes beyond the first extend the result phase by one cycle
	// each in the latency model.
	if result.Combinations > 1 {
		result.LatencyCycles += result.Combinations - 1
	}
	return result
}

// Stats accumulates data-plane counters across lookups and updates.
type Stats struct {
	Lookups          uint64
	Matches          uint64
	FieldAccesses    uint64
	LabelFetches     uint64
	RuleFilterProbes uint64
	Combinations     uint64
	LatencyCycles    uint64

	Inserts      uint64
	Deletes      uint64
	UpdateCycles uint64
}

// AverageFieldAccesses returns the mean per-packet algorithm-block accesses.
func (s Stats) AverageFieldAccesses() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.FieldAccesses) / float64(s.Lookups)
}

// AverageLatencyCycles returns the mean per-packet latency in cycles.
func (s Stats) AverageLatencyCycles() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.LatencyCycles) / float64(s.Lookups)
}

// AverageCombinations returns the mean phase-3 combinations per packet.
func (s Stats) AverageCombinations() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Combinations) / float64(s.Lookups)
}

// MatchRate returns the fraction of lookups that returned a rule.
func (s Stats) MatchRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Matches) / float64(s.Lookups)
}

func (c *Classifier) recordLookup(r Result) {
	c.stats.Lookups++
	if r.Matched {
		c.stats.Matches++
	}
	c.stats.FieldAccesses += uint64(r.FieldAccesses)
	c.stats.LabelFetches += uint64(r.LabelFetches)
	c.stats.RuleFilterProbes += uint64(r.RuleFilterProbes)
	c.stats.Combinations += uint64(r.Combinations)
	c.stats.LatencyCycles += uint64(r.LatencyCycles)
}

// Stats returns a snapshot of the accumulated counters.
func (c *Classifier) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without touching installed rules.
func (c *Classifier) ResetStats() {
	c.stats = Stats{}
	c.filter.resetCounters()
	for _, eng := range c.engines {
		eng.ResetStats()
	}
}
