package core

import (
	"sync"
	"sync/atomic"
	"time"

	"sdnpc/internal/cache"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/label"
)

// Result is the outcome of one lookup.
type Result struct {
	// Matched reports whether a rule matched; the remaining action fields are
	// meaningful only when it is true.
	Matched bool
	// Priority is the priority of the returned rule (the HPMR).
	Priority int
	// Action and ActionArg are the rule's action.
	Action    fivetuple.Action
	ActionArg uint32

	// FieldAccesses is the number of algorithm-block memory accesses
	// performed by the per-field engines for this packet.
	FieldAccesses int
	// LabelFetches is the number of Labels-memory reads (one per non-empty
	// field list).
	LabelFetches int
	// RuleFilterProbes is the number of Rule Filter slots read in phase 4.
	RuleFilterProbes int
	// Combinations is the number of label combinations examined in phase 3
	// (always 1 in HPML mode).
	Combinations int
	// LatencyCycles is the end-to-end latency of this lookup in clock cycles
	// under the Fig. 3 pipeline model.
	LatencyCycles int
}

// fieldLookup is the phase-2 result of one dimension.
type fieldLookup struct {
	dim      label.Dimension
	list     *label.List
	accesses int
	cycles   int
}

// lookupScratch is the reusable per-lookup working set of the field-tier
// pipeline: one fieldLookup and one label list per dimension, wired together
// once at construction so a pooled scratch never re-points or reallocates.
// Together with the engines' LookupInto this makes the serving path free of
// per-packet heap allocation — the lists grow to the hot rule set's label
// fan-out during warm-up and are recycled through lookupScratchPool
// thereafter.
type lookupScratch struct {
	fields [label.NumDimensions]fieldLookup
	lists  [label.NumDimensions]label.List
}

var lookupScratchPool = sync.Pool{New: func() any {
	sc := &lookupScratch{}
	for i := range sc.fields {
		sc.fields[i].list = &sc.lists[i]
	}
	return sc
}}

// Lookup classifies one packet header through the four pipelined phases of
// Fig. 3 and returns the Highest Priority Matching Rule found by the
// configured combination mode.
//
// Lookup is lock-free and safe to call from any number of goroutines: it
// loads the published snapshot once and traverses only that snapshot, so a
// concurrent update can never hand it a half-programmed data path.
//
// When the microflow cache is configured, a repeated five-tuple is answered
// from the cache before any engine structure — of either tier — is walked.
// Cached verdicts are keyed by the snapshot's generation, so a lookup racing
// a rule update still returns a result consistent with either the pre-update
// or the post-update snapshot, never a cached leftover of a third.
func (c *Classifier) Lookup(h fivetuple.Header) Result {
	var result Result
	if c.fleet != nil {
		rep, sl := c.fleet.pick()
		result = c.serveOn(rep.snap.Load(), rep.microflow, h)
		rep.stats.recordLookup(result)
		c.fleet.release(sl)
	} else {
		result = c.serveOn(c.view(), c.microflow, h)
		c.stats.recordLookup(result)
	}
	c.sampler.offer(h)
	return result
}

// serveOn answers one header from the given snapshot, through the given
// microflow cache when one is configured (nil skips the cache). A cache hit
// replays the memoised Result of the first lookup of this five-tuple under
// this exact snapshot — including its model cost counters, which are
// deterministic per (snapshot, header) — so the cached path is
// byte-identical to the uncached one. This is what makes the cache
// tier-agnostic: it fronts the field tier and the packet tier with the same
// three lines, and replica-agnostic: each fleet replica passes its own
// private cache.
func (c *Classifier) serveOn(s *snapshot, mf *cache.Cache[Result], h fivetuple.Header) Result {
	if mf == nil {
		return s.lookup(&c.cfg, h)
	}
	if r, ok := mf.Get(s.gen, h); ok {
		return r
	}
	r := s.lookup(&c.cfg, h)
	mf.Put(s.gen, h, r)
	return r
}

// LookupBatch classifies a batch of headers against one consistent snapshot
// of the rule set: the published data path is loaded once and every header
// of the batch is classified against it, even if rule updates land midway.
// The per-batch counter aggregation is also cheaper than per-lookup
// recording — one atomic add per counter per batch instead of per packet.
//
// The returned slice has one Result per header, in order. Use
// SummarizeBatch to aggregate the batch's accounting fields.
func (c *Classifier) LookupBatch(hs []fivetuple.Header) []Result {
	return c.LookupBatchInto(nil, hs)
}

// LookupBatchInto is the allocation-free variant of LookupBatch: it reuses
// dst's backing array when its capacity covers the batch (growing it
// otherwise) and returns it resized to one Result per header. A serving
// loop that recycles its result slice across batches performs no per-batch
// heap allocation.
func (c *Classifier) LookupBatchInto(dst []Result, hs []fivetuple.Header) []Result {
	if len(hs) == 0 {
		return dst[:0]
	}
	if cap(dst) < len(hs) {
		dst = make([]Result, len(hs))
	}
	dst = dst[:len(hs)]
	s, mf := c.view(), c.microflow
	var rep *fleetReplica
	var sl *replicaSlot
	if c.fleet != nil {
		rep, sl = c.fleet.pick()
		s, mf = rep.snap.Load(), rep.microflow
	}
	for i, h := range hs {
		dst[i] = c.serveOn(s, mf, h)
	}
	if rep != nil {
		rep.stats.recordBatch(SummarizeBatch(dst))
		c.fleet.release(sl)
	} else {
		c.stats.recordBatch(SummarizeBatch(dst))
	}
	c.sampler.offer(hs[0])
	return dst
}

// BatchReport aggregates the accounting fields of one batch of lookups —
// the per-batch totals that a per-Result reading would otherwise have to
// re-derive.
type BatchReport struct {
	// Packets is the batch size.
	Packets int
	// Matched is the number of packets that matched some rule.
	Matched int
	// FieldAccesses, LabelFetches, RuleFilterProbes and Combinations are the
	// summed per-packet counters.
	FieldAccesses    int
	LabelFetches     int
	RuleFilterProbes int
	Combinations     int
	// LatencyCycles is the summed per-packet latency; MaxLatencyCycles is
	// the worst packet of the batch.
	LatencyCycles    int
	MaxLatencyCycles int
}

// AverageLatencyCycles returns the mean modelled latency of the batch.
func (b BatchReport) AverageLatencyCycles() float64 {
	if b.Packets == 0 {
		return 0
	}
	return float64(b.LatencyCycles) / float64(b.Packets)
}

// MatchRate returns the fraction of the batch that matched a rule.
func (b BatchReport) MatchRate() float64 {
	if b.Packets == 0 {
		return 0
	}
	return float64(b.Matched) / float64(b.Packets)
}

// SummarizeBatch aggregates per-lookup results into batch-level totals.
func SummarizeBatch(results []Result) BatchReport {
	rep := BatchReport{Packets: len(results)}
	for _, r := range results {
		if r.Matched {
			rep.Matched++
		}
		rep.FieldAccesses += r.FieldAccesses
		rep.LabelFetches += r.LabelFetches
		rep.RuleFilterProbes += r.RuleFilterProbes
		rep.Combinations += r.Combinations
		rep.LatencyCycles += r.LatencyCycles
		if r.LatencyCycles > rep.MaxLatencyCycles {
			rep.MaxLatencyCycles = r.LatencyCycles
		}
	}
	return rep
}

// lookup runs the four-phase pipeline against this snapshot. It performs no
// writes beyond the atomic access counters inside the engines and the rule
// filter, which is what makes the concurrent serving path possible.
func (s *snapshot) lookup(cfg *Config, h fivetuple.Header) Result {
	// Sharded table: a one-byte pre-classification steers the header to the
	// single shard holding every rule that could match it (the partitioner's
	// covering invariant), and that shard's smaller engines answer alone —
	// the per-shard first match is the global first match.
	if s.part != nil {
		return s.shards[s.part.Steer(h)].lookup(cfg, h)
	}

	// Family fallback: an IPv6 header can only be answered by a structure
	// whose engine declares DimIPv6 — the field tier and the IPv4-only packet
	// engines key on 32-bit addresses and would misclassify it. Those
	// snapshots serve the header honestly from the installed-rule shadow
	// (correct, O(n)); the wildcard-in-both-families rules still match.
	if h.Family != fivetuple.FamilyIPv4 && !s.packetDims.Has(fivetuple.DimIPv6) {
		return s.lookupFallback(h)
	}

	// Whole-packet tier: one precomputed multi-field structure answers the
	// five-tuple directly, bypassing the per-field engines, the label
	// fetches and the Rule Filter.
	if s.packet != nil {
		return s.lookupPacket(h)
	}

	// Phase 1: split the header into per-dimension segments and dispatch to
	// the engines selected by IPalg_s (the dispatch itself costs one cycle).
	// Phase 2: parallel single-field lookups, into a pooled scratch so the
	// serving path performs no per-packet heap allocation.
	sc := lookupScratchPool.Get().(*lookupScratch)
	defer lookupScratchPool.Put(sc)
	fields := sc.fields[:]
	s.lookupFieldsInto(h, fields)

	result := Result{}
	maxFieldCycles := 0
	for _, f := range fields {
		result.FieldAccesses += f.accesses
		if f.cycles > maxFieldCycles {
			maxFieldCycles = f.cycles
		}
		if f.list.Len() > 0 {
			result.LabelFetches++
		}
	}
	result.LatencyCycles = CyclesDispatch + maxFieldCycles + CyclesLabelFetch + CyclesResult

	// Phase 3 + 4: combine the label lists into Rule Filter probes and fetch
	// the HPMR. If any dimension produced no matching label, no rule can
	// match the packet.
	for _, f := range fields {
		if f.list.Len() == 0 {
			return result
		}
	}

	switch cfg.CombineMode {
	case CombineHPML:
		return s.combineHPML(fields, result)
	default:
		return s.combineCrossProduct(cfg, fields, result)
	}
}

// lookupPacket serves one header from the whole-packet engine tier. The
// engine returns an index into the best-first packetRules order, so the
// matched rule's action and priority are read straight from the rule table;
// the latency model charges the dispatch cycle, one cycle per engine memory
// access and the result select — no label fetch, no Rule Filter probe.
func (s *snapshot) lookupPacket(h fivetuple.Header) Result {
	idx, matched, accesses := s.packet.LookupPacket(h)
	result := Result{
		FieldAccesses: accesses,
		LatencyCycles: CyclesDispatch + accesses + CyclesPacketResult,
	}
	if !matched {
		return result
	}
	r := s.packetRules[idx]
	result.Matched = true
	result.Priority = r.Priority
	result.Action = r.Action
	result.ActionArg = r.ActionArg
	return result
}

// headerKeys splits the header into the per-dimension lookup keys of
// phase 1 — pure header-format extraction, independent of which engine
// serves each dimension. Indexed by Dimension (a dense 1-based enum) to
// keep the per-packet hot path allocation-free.
func headerKeys(h fivetuple.Header) [label.NumDimensions + 1]uint32 {
	var keys [label.NumDimensions + 1]uint32
	keys[label.DimSrcIPHigh] = uint32(h.SrcIP.High16())
	keys[label.DimSrcIPLow] = uint32(h.SrcIP.Low16())
	keys[label.DimDstIPHigh] = uint32(h.DstIP.High16())
	keys[label.DimDstIPLow] = uint32(h.DstIP.Low16())
	keys[label.DimSrcPort] = uint32(h.SrcPort)
	keys[label.DimDstPort] = uint32(h.DstPort)
	keys[label.DimProtocol] = uint32(h.Protocol)
	return keys
}

// lookupFieldsInto performs the parallel phase-2 lookups: every dimension's
// key is handed to that dimension's engine through the FieldEngine
// interface, filling the caller's per-dimension slots (one per entry of
// label.Dimensions(), whose lists must be non-nil) without allocating.
func (s *snapshot) lookupFieldsInto(h fivetuple.Header, out []fieldLookup) {
	keys := headerKeys(h)
	for i, d := range label.Dimensions() {
		eng := s.engines[d]
		out[i].dim = d
		out[i].accesses = eng.LookupInto(keys[d], out[i].list)
		out[i].cycles = eng.Cost().LookupCycles
	}
}

// mbtLookupCycles returns the phase-2 latency of the MBT engines (§V.B: the
// three-level trie completes in 6 cycles). It anchors the synthesis
// estimate, which models the paper's MBT-provisioned pipeline; the live
// latency model asks each engine for its own cost.
func mbtLookupCycles() int { return 3 * CyclesPerMBTLevel }

// combineHPML implements the paper's phase-3 combination: the first (highest
// priority) label of each list is concatenated into the 68-bit key and the
// Rule Filter is probed once.
func (s *snapshot) combineHPML(fields []fieldLookup, result Result) Result {
	var labels [label.NumDimensions + 1]label.Label
	for i := range fields {
		hpml, _ := fields[i].list.HPML()
		labels[fields[i].dim] = hpml.Label
	}
	result.Combinations = 1
	entry, found, probes := s.filter.lookup(label.PackKeyDims(&labels))
	result.RuleFilterProbes = probes
	if found {
		result.Matched = true
		result.Priority = entry.priority
		result.Action = entry.action
		result.ActionArg = entry.actionArg
	}
	return result
}

// combineCrossProduct probes every combination of matching labels and keeps
// the best-priority hit; it terminates early once the probe budget is
// exhausted.
func (s *snapshot) combineCrossProduct(cfg *Config, fields []fieldLookup, result Result) Result {
	// Iterative odometer over the per-dimension label lists: the last
	// dimension advances fastest, which enumerates exactly the combinations
	// (and in the order) the natural nested loop would — without the
	// per-packet slices, map and recursive closure that loop used to cost.
	// Every list is non-empty here; lookup returned early otherwise.
	var idx [label.NumDimensions]int
	var labels [label.NumDimensions + 1]label.Label
	n := len(fields)
	best := Result{}
	foundAny := false

	for result.Combinations < cfg.MaxCrossProductProbes {
		for i := 0; i < n; i++ {
			labels[fields[i].dim] = fields[i].list.At(idx[i]).Label
		}
		result.Combinations++
		entry, found, probes := s.filter.lookup(label.PackKeyDims(&labels))
		result.RuleFilterProbes += probes
		if found && (!foundAny || entry.priority < best.Priority) {
			foundAny = true
			best.Priority = entry.priority
			best.Action = entry.action
			best.ActionArg = entry.actionArg
		}
		k := n - 1
		for ; k >= 0; k-- {
			idx[k]++
			if idx[k] < fields[k].list.Len() {
				break
			}
			idx[k] = 0
		}
		if k < 0 {
			break
		}
	}

	if foundAny {
		result.Matched = true
		result.Priority = best.Priority
		result.Action = best.Action
		result.ActionArg = best.ActionArg
	}
	// Additional probes beyond the first extend the result phase by one cycle
	// each in the latency model.
	if result.Combinations > 1 {
		result.LatencyCycles += result.Combinations - 1
	}
	return result
}

// Stats accumulates data-plane counters across lookups and updates.
type Stats struct {
	Lookups          uint64
	Matches          uint64
	FieldAccesses    uint64
	LabelFetches     uint64
	RuleFilterProbes uint64
	Combinations     uint64
	LatencyCycles    uint64

	Inserts      uint64
	Deletes      uint64
	UpdateCycles uint64
}

// AverageFieldAccesses returns the mean per-packet algorithm-block accesses.
func (s Stats) AverageFieldAccesses() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.FieldAccesses) / float64(s.Lookups)
}

// AverageLatencyCycles returns the mean per-packet latency in cycles.
func (s Stats) AverageLatencyCycles() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.LatencyCycles) / float64(s.Lookups)
}

// AverageCombinations returns the mean phase-3 combinations per packet.
func (s Stats) AverageCombinations() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Combinations) / float64(s.Lookups)
}

// MatchRate returns the fraction of lookups that returned a rule.
func (s Stats) MatchRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Matches) / float64(s.Lookups)
}

// statsCollector is the concurrent backing store of Stats: every counter is
// atomic so that the lock-free lookup path can record its accounting from
// any number of goroutines. Batches are folded in with one atomic add per
// counter rather than one per packet.
type statsCollector struct {
	lookups          atomic.Uint64
	matches          atomic.Uint64
	fieldAccesses    atomic.Uint64
	labelFetches     atomic.Uint64
	ruleFilterProbes atomic.Uint64
	combinations     atomic.Uint64
	latencyCycles    atomic.Uint64

	inserts      atomic.Uint64
	deletes      atomic.Uint64
	updateCycles atomic.Uint64

	// Update-plane counters (see UpdateStats): how publishes were served by
	// the packet tier and how long each took wall-clock.
	deltasApplied  atomic.Uint64
	deltaPublishes atomic.Uint64
	rebuilds       atomic.Uint64
	publishLatency [publishLatencyBuckets]atomic.Uint64
}

// recordPublish folds one rule-update publish into the update-plane
// counters: the sync outcome (delta-applied vs rebuilt) and the wall-clock
// latency of the whole clone-mutate-sync-swap.
func (sc *statsCollector) recordPublish(sync publishSync, elapsed time.Duration) {
	switch {
	case sync.rebuilt:
		sc.rebuilds.Add(1)
	case sync.deltas > 0:
		sc.deltaPublishes.Add(1)
		sc.deltasApplied.Add(uint64(sync.deltas))
	}
	sc.publishLatency[latencyBucket(elapsed)].Add(1)
}

func (sc *statsCollector) recordLookup(r Result) {
	sc.lookups.Add(1)
	if r.Matched {
		sc.matches.Add(1)
	}
	sc.fieldAccesses.Add(uint64(r.FieldAccesses))
	sc.labelFetches.Add(uint64(r.LabelFetches))
	sc.ruleFilterProbes.Add(uint64(r.RuleFilterProbes))
	sc.combinations.Add(uint64(r.Combinations))
	sc.latencyCycles.Add(uint64(r.LatencyCycles))
}

func (sc *statsCollector) recordBatch(rep BatchReport) {
	sc.lookups.Add(uint64(rep.Packets))
	sc.matches.Add(uint64(rep.Matched))
	sc.fieldAccesses.Add(uint64(rep.FieldAccesses))
	sc.labelFetches.Add(uint64(rep.LabelFetches))
	sc.ruleFilterProbes.Add(uint64(rep.RuleFilterProbes))
	sc.combinations.Add(uint64(rep.Combinations))
	sc.latencyCycles.Add(uint64(rep.LatencyCycles))
}

func (sc *statsCollector) recordInsert(rep UpdateReport) {
	sc.inserts.Add(1)
	sc.updateCycles.Add(uint64(rep.ClockCycles))
}

func (sc *statsCollector) recordDelete(rep UpdateReport) {
	sc.deletes.Add(1)
	sc.updateCycles.Add(uint64(rep.ClockCycles))
}

// recordUpdates folds a whole update batch in at once, with the cycle total
// summed from the per-op reports so the accounting has a single source.
func (sc *statsCollector) recordUpdates(inserts, deletes, cycles int) {
	sc.inserts.Add(uint64(inserts))
	sc.deletes.Add(uint64(deletes))
	sc.updateCycles.Add(uint64(cycles))
}

func (sc *statsCollector) snapshot() Stats {
	return Stats{
		Lookups:          sc.lookups.Load(),
		Matches:          sc.matches.Load(),
		FieldAccesses:    sc.fieldAccesses.Load(),
		LabelFetches:     sc.labelFetches.Load(),
		RuleFilterProbes: sc.ruleFilterProbes.Load(),
		Combinations:     sc.combinations.Load(),
		LatencyCycles:    sc.latencyCycles.Load(),
		Inserts:          sc.inserts.Load(),
		Deletes:          sc.deletes.Load(),
		UpdateCycles:     sc.updateCycles.Load(),
	}
}

func (sc *statsCollector) reset() {
	sc.lookups.Store(0)
	sc.matches.Store(0)
	sc.fieldAccesses.Store(0)
	sc.labelFetches.Store(0)
	sc.ruleFilterProbes.Store(0)
	sc.combinations.Store(0)
	sc.latencyCycles.Store(0)
	sc.inserts.Store(0)
	sc.deletes.Store(0)
	sc.updateCycles.Store(0)
	sc.deltasApplied.Store(0)
	sc.deltaPublishes.Store(0)
	sc.rebuilds.Store(0)
	for i := range sc.publishLatency {
		sc.publishLatency[i].Store(0)
	}
}

// statsSnapshot folds the shared collector and every replica's private
// lookup-side counters into one aggregate Stats. Replica counters live with
// the replicas (see replicaStats); only observation pays for the walk.
func (c *Classifier) statsSnapshot() Stats {
	s := c.stats.snapshot()
	if c.fleet != nil {
		for _, rep := range c.fleet.replicas {
			rep.stats.addTo(&s)
		}
	}
	return s
}

// Stats returns a snapshot of the accumulated counters, aggregated across
// the serving replicas. It is safe to call concurrently with lookups and
// updates; the individual counters are read atomically (the struct as a
// whole is not one consistent cut, which is inherent to concurrent
// collection).
//
// Deprecated: use Report, which returns these counters in its Stats field
// alongside every other observability surface, from one snapshot read.
func (c *Classifier) Stats() Stats { return c.statsSnapshot() }

// LookupCounters is the served-request summary of one classifier: how many
// lookups it answered and how many returned a rule. It is the cheap
// per-tenant accounting surface of the serving layer — two counters, not the
// full Stats snapshot.
type LookupCounters struct {
	// Lookups is the number of headers classified (batch lookups count one
	// per header).
	Lookups uint64
	// Matches is the number of those lookups that returned a rule.
	Matches uint64
}

// MatchRate returns the fraction of served lookups that matched a rule.
func (lc LookupCounters) MatchRate() float64 {
	if lc.Lookups == 0 {
		return 0
	}
	return float64(lc.Matches) / float64(lc.Lookups)
}

// LookupCounters returns the served-request counters, aggregated across the
// serving replicas. It reads two atomics per replica plus two shared ones,
// so per-request stats endpoints can call it without paying for a full Stats
// snapshot.
//
// Deprecated: use Report, which returns these counters in its Lookups field
// alongside every other observability surface, from one snapshot read.
func (c *Classifier) LookupCounters() LookupCounters {
	lc := LookupCounters{Lookups: c.stats.lookups.Load(), Matches: c.stats.matches.Load()}
	if c.fleet != nil {
		for _, rep := range c.fleet.replicas {
			lc.Lookups += rep.stats.lookups.Load()
			lc.Matches += rep.stats.matches.Load()
		}
	}
	return lc
}

// ResetStats zeroes the counters without touching installed rules. The
// microflow cache's counters are reset too (including every replica's
// private cache); entries are kept.
func (c *Classifier) ResetStats() {
	c.stats.reset()
	if c.microflow != nil {
		c.microflow.ResetStats()
	}
	c.view().resetCounters()
	if c.fleet != nil {
		for _, rep := range c.fleet.replicas {
			rep.stats.reset()
			if rep.microflow != nil {
				rep.microflow.ResetStats()
			}
			if s := rep.snap.Load(); s != nil {
				s.resetCounters()
			}
		}
	}
}

// resetCounters zeroes the access counters of this snapshot's structures,
// recursing into shards.
func (s *snapshot) resetCounters() {
	s.filter.resetCounters()
	for _, eng := range s.engines {
		eng.ResetStats()
	}
	if s.packet != nil {
		s.packet.ResetStats()
	}
	for _, sh := range s.shards {
		sh.resetCounters()
	}
}
