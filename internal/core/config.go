// Package core implements the paper's primary contribution: the configurable
// label-based packet classification architecture for SDN (§III, §IV).
//
// A Classifier holds one single-field lookup engine per header dimension —
// four IP-segment engines that can be switched at run time between a
// Multi-Bit Trie (fast) and a Binary Search Tree (memory-efficient), two
// port register banks and a protocol look-up table — plus the three memory
// block families of §III.D: the Algorithm blocks (owned by the engines), the
// Labels blocks (the per-dimension label tables) and the Rule Filter block
// (a hash table addressed by the hardware hash of the 68-bit label
// combination key).
//
// Lookups follow the four pipelined phases of Fig. 3; updates follow the
// incremental label-counting procedure of Fig. 4; and the IPalg_s
// configuration signal (§IV.C.2, Fig. 5) selects the IP algorithm and with
// it how the shared memory blocks are used and how many rules fit.
package core

import (
	"fmt"
	"math"
	"time"

	"sdnpc/internal/engine"
	"sdnpc/internal/hw/memory"
	"sdnpc/internal/shard"
)

// Default architecture geometry. The constants reproduce the memory budget
// the paper reports: ~2.1 Mbit of block memory (Tables V and VII), an 8K-rule
// filter in the MBT configuration growing to ~12K rules in the BST
// configuration (Table VI), 128-entry port register banks and the label
// widths of §IV.C.1.
const (
	// DefaultClockHz is the synthesised clock frequency (Table V).
	DefaultClockHz = 133.51e6

	// Multi-Bit Trie provisioning per 16-bit IP segment: the three levels use
	// 5-, 5- and 6-bit strides; level 1 is a single 32-entry node and levels
	// 2 and 3 are provisioned with a fixed node budget.
	DefaultMBTLevel1Entries = 32
	DefaultMBTLevel2Entries = 1024
	DefaultMBTLevel3Entries = 3288
	DefaultMBTEntryBits     = 32

	// DefaultBSTNodeBits is the width of one BST interval node stored in the
	// shared level-2 block.
	DefaultBSTNodeBits = 32

	// DefaultRuleFilterAddressBits gives an 8192-slot Rule Filter (13-bit
	// addresses produced by the hash unit).
	DefaultRuleFilterAddressBits = 13
	// DefaultRuleEntryBits is the width of one Rule Filter entry: the 68-bit
	// combination key, a 14-bit priority, a 3-bit action, a 16-bit action
	// argument and a valid flag, padded to a power-of-two word.
	DefaultRuleEntryBits = 128

	// DefaultLabelMemoryEntries provisions the Labels memory block shared by
	// the label lists of every dimension.
	DefaultLabelMemoryEntries = 32768
	// DefaultLabelMemoryEntryBits is the width of one stored label entry.
	DefaultLabelMemoryEntryBits = 16

	// DefaultPortRegisters is the number of port-range registers per port
	// dimension (bounded by the 7-bit port label space).
	DefaultPortRegisters = 128

	// DefaultProtocolLabelBits is the protocol label width (§IV.C.1).
	DefaultProtocolLabelBits = 2

	// Lookup latency model (Fig. 3 and §V.B), in clock cycles.
	CyclesDispatch     = 1 // phase 1: header split and engine dispatch
	CyclesPerMBTLevel  = 2 // the 3-level MBT completes in 6 cycles
	CyclesBSTIteration = 1 // one memory access per bisection step
	CyclesPortLookup   = 2
	CyclesProtoLookup  = 1
	CyclesLabelFetch   = 1 // phase 2→3: fetch the label list pointer target
	CyclesResult       = 2 // phases 3+4: combination and Rule Filter access

	// Update cost model (§V.A), in clock cycles per rule.
	CyclesUpdateMemoryUpload = 2 // one cycle per direction (source, destination)
	CyclesUpdateHash         = 1 // hardware hash producing the rule address

	// CyclesPacketResult is the result-select latency of the whole-packet
	// engine tier: the matched rule's action is read directly from the rule
	// table, with no label fetch and no Rule Filter probe.
	CyclesPacketResult = 1

	// DefaultRebuildAfterDeltas is the default delta-debt bound of the
	// packet-tier update policy: after this many delta ops have been absorbed
	// since the last full build, the next publish rebuilds the precomputed
	// structure instead of delta-applying, amortising the accumulated
	// imperfection.
	DefaultRebuildAfterDeltas = 64

	// DefaultDegradationThreshold is the default degradation trip point: a
	// publish whose deltas push the incremental engine's
	// UpdateCost.Degradation to or past this value rebuilds in the same
	// publish.
	DefaultDegradationThreshold = 0.5

	// DefaultSampleHeaders is the traffic-sampler ring capacity selected
	// when sampling is enabled without an explicit Config.SampleHeaders.
	DefaultSampleHeaders = 2048

	// DefaultAutoTuneInterval is the auto-tuner's advise period when
	// Config.AutoTuneInterval is unset.
	DefaultAutoTuneInterval = 30 * time.Second
)

// CombineMode selects how the label lists of the seven dimensions are
// combined into Rule Filter probes in lookup phase 3.
type CombineMode uint8

// Combination modes.
const (
	// CombineHPML is the paper's single-probe method: the Highest Priority
	// Matching Label of every dimension is concatenated and hashed once
	// (§III.B). It is the fastest mode and the one the latency and
	// throughput figures assume, but it can miss the true
	// highest-priority matching rule when that rule does not hold the
	// first-position label in every dimension.
	CombineHPML CombineMode = iota + 1
	// CombineCrossProduct probes every combination of returned labels and
	// returns the best-priority hit. It is exact (it always agrees with a
	// linear reference search) at the cost of extra Rule Filter probes, and
	// is used to validate the architecture and to quantify how often the
	// single-probe mode is optimal.
	CombineCrossProduct
)

// String names the mode.
func (m CombineMode) String() string {
	switch m {
	case CombineHPML:
		return "hpml"
	case CombineCrossProduct:
		return "cross-product"
	default:
		return fmt.Sprintf("CombineMode(%d)", uint8(m))
	}
}

// Config parameterises a Classifier. Use DefaultConfig and override fields as
// needed.
type Config struct {
	// IPEngine names the registered field engine serving the four IP-segment
	// dimensions (see internal/engine: "mbt", "bst", "segtrie", "rfc", ...).
	// When empty, the legacy IPAlgorithm signal decides.
	IPEngine string
	// PacketEngine, when set, selects a whole-packet engine ("rfc-full",
	// "dcfl", "hypercuts") to serve lookups: the five-tuple is answered by
	// one precomputed structure, bypassing the per-field engines and the
	// label combination entirely. The field tier stays programmed underneath
	// so the classifier can switch back at run time (SelectPacketEngine("")).
	PacketEngine string
	// IPAlgorithm is the initial setting of the legacy two-valued IPalg_s
	// signal, consulted only when IPEngine is empty.
	IPAlgorithm memory.AlgSelect
	// CombineMode selects the phase-3 combination strategy.
	CombineMode CombineMode
	// ClockHz is the clock frequency used to convert cycle counts into time
	// and throughput.
	ClockHz float64

	// MBTLevel2Entries and MBTLevel3Entries size the provisioned node budget
	// of levels 2 and 3 of each IP-segment trie (level 1 always holds one
	// 32-entry node).
	MBTLevel2Entries int
	MBTLevel3Entries int

	// RuleFilterAddressBits sizes the Rule Filter hash table at
	// 2^RuleFilterAddressBits slots.
	RuleFilterAddressBits int
	// RuleEntryBits is the stored width of one Rule Filter entry.
	RuleEntryBits int

	// LabelMemoryEntries and LabelMemoryEntryBits size the Labels memory.
	LabelMemoryEntries   int
	LabelMemoryEntryBits int

	// PortRegisters is the number of port-range registers per port dimension.
	PortRegisters int

	// MaxCrossProductProbes bounds the number of Rule Filter probes issued by
	// the cross-product combination mode for a single lookup.
	MaxCrossProductProbes int

	// CacheCapacity is the total entry budget of the exact-match microflow
	// cache that fronts both engine tiers; 0 (the default) disables the
	// cache. The capacity is rounded up so every shard holds a power-of-two
	// number of fixed-associativity buckets.
	CacheCapacity int
	// CacheShards is the number of independently locked cache shards,
	// rounded up to a power of two; <= 0 selects the default (8). Only
	// consulted when CacheCapacity > 0.
	CacheShards int

	// Replicas, when greater than 1, enables the replicated serving fleet:
	// every publish fans out to this many per-worker replicas, each holding
	// its own snapshot clone and (when the cache is enabled) its own private
	// microflow cache, so pinned workers serve from core-local memory. 0 and
	// 1 keep the single shared snapshot pointer.
	Replicas int
	// Shards, when greater than 1, enables rule-space partitioning: the rule
	// table is split into this many shards by the partition byte selected by
	// PartitionBy, each shard installing only the rules it covers into its
	// own (smaller) engine set, and a one-byte pre-classifier steers each
	// lookup to its shard. 0 and 1 keep the unsharded table.
	Shards int
	// PartitionBy names the shard partition strategy ("protocol" or
	// "src-byte"); empty selects "protocol". Only consulted when Shards > 1.
	PartitionBy string

	// RebuildAfterDeltas bounds the delta debt of an incremental whole-packet
	// engine: once the structure has absorbed this many delta ops since its
	// last full build, the next publish rebuilds instead of delta-applying.
	// 0 selects DefaultRebuildAfterDeltas; 1 degenerates to rebuild-on-every-
	// publish (the pre-incremental behaviour, useful as a benchmark
	// baseline); negative disables the bound so only the degradation
	// threshold forces rebuilds. Ignored by non-incremental engines, which
	// always rebuild.
	RebuildAfterDeltas int
	// DegradationThreshold forces a rebuild in the same publish whose deltas
	// drive the incremental engine's UpdateCost.Degradation to or past this
	// value. 0 selects DefaultDegradationThreshold; values above 1 or below
	// 0 disable the trip (Degradation itself never leaves [0,1]), mirroring
	// the negative-disables convention of RebuildAfterDeltas; NaN is
	// rejected by Validate.
	DegradationThreshold float64

	// SampleHeaders, when greater than 0, enables the traffic sampler: a
	// ring buffer holding the last SampleHeaders served headers, read by the
	// advisor (SampledHeaders) to shadow-bench candidate engines on real
	// traffic. 0 (the default) disables sampling; the serving path then
	// carries no sampling cost at all.
	SampleHeaders int

	// AutoTune opts the classifier into the self-tuning control plane: the
	// facade starts a background tuner that periodically runs the advisor
	// and auto-applies its top recommendation through SelectEngine /
	// SetUpdatePolicy, with hysteresis so a flapping signal never flaps the
	// engine. Core itself only validates and carries the flag; the tuner
	// loop lives above it.
	AutoTune bool
	// AutoTuneInterval is the tuner's advise period; 0 selects
	// DefaultAutoTuneInterval. Only consulted when AutoTune is set.
	AutoTuneInterval time.Duration
}

// DefaultConfig returns the architecture configuration evaluated in the
// paper, with the MBT selected and the exact (cross-product) combination
// mode.
func DefaultConfig() Config {
	return Config{
		IPAlgorithm:           memory.SelectMBT,
		CombineMode:           CombineCrossProduct,
		ClockHz:               DefaultClockHz,
		MBTLevel2Entries:      DefaultMBTLevel2Entries,
		MBTLevel3Entries:      DefaultMBTLevel3Entries,
		RuleFilterAddressBits: DefaultRuleFilterAddressBits,
		RuleEntryBits:         DefaultRuleEntryBits,
		LabelMemoryEntries:    DefaultLabelMemoryEntries,
		LabelMemoryEntryBits:  DefaultLabelMemoryEntryBits,
		PortRegisters:         DefaultPortRegisters,
		MaxCrossProductProbes: 65536,
	}
}

// IPEngineName resolves the configured IP-segment engine name: the explicit
// IPEngine field when set, otherwise the engine named by the legacy
// IPAlgorithm signal.
func (c Config) IPEngineName() string {
	if c.IPEngine != "" {
		return c.IPEngine
	}
	if name, ok := engine.LegacyName(c.IPAlgorithm); ok {
		return name
	}
	return "mbt"
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.IPEngine != "" {
		def, ok := engine.Get(c.IPEngine)
		if !ok {
			return fmt.Errorf("core: unknown field engine %q (registered: %v)", c.IPEngine, engine.IPEngineNames())
		}
		if !def.IPCapable {
			return fmt.Errorf("core: engine %q cannot serve the IP-segment dimensions", c.IPEngine)
		}
	} else if c.IPAlgorithm != memory.SelectMBT && c.IPAlgorithm != memory.SelectBST {
		return fmt.Errorf("core: unknown IP algorithm selection %v", c.IPAlgorithm)
	}
	if c.PacketEngine != "" {
		def, ok := engine.Get(c.PacketEngine)
		if !ok || def.PacketFactory == nil {
			return fmt.Errorf("core: unknown packet engine %q (registered: %v)",
				c.PacketEngine, engine.PacketEngineNames())
		}
	}
	if c.CombineMode != CombineHPML && c.CombineMode != CombineCrossProduct {
		return fmt.Errorf("core: unknown combination mode %v", c.CombineMode)
	}
	if c.ClockHz <= 0 {
		return fmt.Errorf("core: clock frequency must be positive, got %v", c.ClockHz)
	}
	if c.MBTLevel2Entries < 32 || c.MBTLevel3Entries < 64 {
		return fmt.Errorf("core: MBT level budgets (%d, %d) must hold at least one node each",
			c.MBTLevel2Entries, c.MBTLevel3Entries)
	}
	if c.RuleFilterAddressBits < 4 || c.RuleFilterAddressBits > 24 {
		return fmt.Errorf("core: rule filter address width %d out of range [4,24]", c.RuleFilterAddressBits)
	}
	if c.RuleEntryBits < 86 {
		return fmt.Errorf("core: rule entry width %d cannot hold key, priority and action", c.RuleEntryBits)
	}
	if c.LabelMemoryEntries < 1 || c.LabelMemoryEntryBits < 13 {
		return fmt.Errorf("core: label memory geometry (%d x %d) too small",
			c.LabelMemoryEntries, c.LabelMemoryEntryBits)
	}
	if c.PortRegisters < 1 || c.PortRegisters > 128 {
		return fmt.Errorf("core: port register count %d out of range [1,128]", c.PortRegisters)
	}
	if c.MaxCrossProductProbes < 1 {
		return fmt.Errorf("core: cross-product probe budget must be positive")
	}
	if c.CacheCapacity < 0 {
		return fmt.Errorf("core: microflow cache capacity %d must not be negative", c.CacheCapacity)
	}
	if c.CacheCapacity > 0 && c.CacheCapacity > 1<<24 {
		return fmt.Errorf("core: microflow cache capacity %d out of range (max %d entries)", c.CacheCapacity, 1<<24)
	}
	if c.CacheShards > 1<<12 {
		return fmt.Errorf("core: microflow cache shard count %d out of range (max %d)", c.CacheShards, 1<<12)
	}
	if math.IsNaN(c.DegradationThreshold) {
		return fmt.Errorf("core: degradation threshold must not be NaN")
	}
	if c.Replicas < 0 || c.Replicas > 1024 {
		return fmt.Errorf("core: replica count %d out of range [0,1024]", c.Replicas)
	}
	if c.Shards < 0 || c.Shards > 256 {
		return fmt.Errorf("core: shard count %d out of range [0,256]", c.Shards)
	}
	if c.Shards > 1 {
		if _, err := shard.ParseStrategy(c.PartitionBy); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	if c.SampleHeaders < 0 || c.SampleHeaders > 1<<20 {
		return fmt.Errorf("core: sampled header count %d out of range [0,%d]", c.SampleHeaders, 1<<20)
	}
	if c.AutoTuneInterval < 0 {
		return fmt.Errorf("core: auto-tune interval must not be negative, got %v", c.AutoTuneInterval)
	}
	return nil
}

// partitioner resolves the configured rule-space partitioner, or nil when
// sharding is off. Call after Validate: an invalid strategy name falls back
// to nil (unsharded) rather than panicking.
func (c Config) partitioner() *shard.Partitioner {
	if c.Shards <= 1 {
		return nil
	}
	strategy, err := shard.ParseStrategy(c.PartitionBy)
	if err != nil {
		return nil
	}
	p, err := shard.New(c.Shards, strategy)
	if err != nil {
		return nil
	}
	return p
}

// rebuildAfterDeltas resolves the configured delta-debt bound: the explicit
// value, or the default when unset. Negative means unbounded.
func (c Config) rebuildAfterDeltas() int {
	if c.RebuildAfterDeltas == 0 {
		return DefaultRebuildAfterDeltas
	}
	return c.RebuildAfterDeltas
}

// degradationThreshold resolves the configured degradation trip point: the
// default when unset, and an unreachable value when negative (disabled) so
// the delta path never pointlessly applies-then-discards its work.
func (c Config) degradationThreshold() float64 {
	switch {
	case c.DegradationThreshold == 0:
		return DefaultDegradationThreshold
	case c.DegradationThreshold < 0:
		return 2 // Degradation never leaves [0,1]: the trip is disabled
	default:
		return c.DegradationThreshold
	}
}

// RuleFilterSlots returns the number of Rule Filter slots in the base (MBT)
// configuration.
func (c Config) RuleFilterSlots() int { return 1 << c.RuleFilterAddressBits }

// mbtProvisionedBitsPerSegment returns the provisioned node storage of one
// IP-segment trie.
func (c Config) mbtProvisionedBitsPerSegment() int {
	return (DefaultMBTLevel1Entries + c.MBTLevel2Entries + c.MBTLevel3Entries) * DefaultMBTEntryBits
}

// sharedLevel2BitsPerSegment returns the capacity of the shared level-2 /
// BST block of one IP segment.
func (c Config) sharedLevel2BitsPerSegment() int {
	return c.MBTLevel2Entries * DefaultMBTEntryBits
}

// freedMBTBitsPerSegment returns the MBT storage released for rule data when
// the BST is selected: levels 1 and 3 (level 2 keeps the BST nodes).
func (c Config) freedMBTBitsPerSegment() int {
	return (DefaultMBTLevel1Entries + c.MBTLevel3Entries) * DefaultMBTEntryBits
}

// ExtraRuleCapacityBST returns how many additional Rule Filter entries fit in
// the MBT blocks freed by selecting the BST (Fig. 5: "the rest of the memory
// determined for MBT can be used to collect more rules").
func (c Config) ExtraRuleCapacityBST() int {
	return 4 * c.freedMBTBitsPerSegment() / c.RuleEntryBits
}

// RuleCapacityFor returns the number of rules the architecture can hold
// under the named engine selection (Table VI: 8K with the MBT, ~12K with the
// BST). Engines whose node data resides entirely in the shared level-2
// blocks free the remaining MBT blocks for rule storage.
func (c Config) RuleCapacityFor(name string) int {
	if def, ok := engine.Get(name); ok && def.SharesLevel2 {
		return c.RuleFilterSlots() + c.ExtraRuleCapacityBST()
	}
	return c.RuleFilterSlots()
}
