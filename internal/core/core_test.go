package core

import (
	"errors"
	"testing"

	"sdnpc/internal/classbench"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/hw/memory"
	"sdnpc/internal/label"
)

// smallRuleSet builds a compact filter set exercising shadowing, wildcards,
// shared field values and all match kinds.
func smallRuleSet() *fivetuple.RuleSet {
	rules := []fivetuple.Rule{
		{
			SrcPrefix: fivetuple.MustParsePrefix("10.0.0.0/8"),
			DstPrefix: fivetuple.MustParsePrefix("192.168.1.0/24"),
			SrcPort:   fivetuple.WildcardPortRange(),
			DstPort:   fivetuple.ExactPort(80),
			Protocol:  fivetuple.ExactProtocol(fivetuple.ProtoTCP),
			Action:    fivetuple.ActionForward,
			ActionArg: 1,
		},
		{
			SrcPrefix: fivetuple.MustParsePrefix("10.0.0.0/8"),
			DstPrefix: fivetuple.MustParsePrefix("192.168.0.0/16"),
			SrcPort:   fivetuple.WildcardPortRange(),
			DstPort:   fivetuple.PortRange{Lo: 1024, Hi: 2048},
			Protocol:  fivetuple.ExactProtocol(fivetuple.ProtoUDP),
			Action:    fivetuple.ActionModify,
			ActionArg: 2,
		},
		{
			SrcPrefix: fivetuple.MustParsePrefix("172.16.5.4/32"),
			DstPrefix: fivetuple.MustParsePrefix("0.0.0.0/0"),
			SrcPort:   fivetuple.ExactPort(53),
			DstPort:   fivetuple.ExactPort(53),
			Protocol:  fivetuple.ExactProtocol(fivetuple.ProtoUDP),
			Action:    fivetuple.ActionDrop,
			ActionArg: 3,
		},
		{
			SrcPrefix: fivetuple.MustParsePrefix("0.0.0.0/0"),
			DstPrefix: fivetuple.MustParsePrefix("192.168.1.0/24"),
			SrcPort:   fivetuple.WildcardPortRange(),
			DstPort:   fivetuple.ExactPort(443),
			Protocol:  fivetuple.ExactProtocol(fivetuple.ProtoTCP),
			Action:    fivetuple.ActionForward,
			ActionArg: 4,
		},
		fivetuple.Wildcard(4, fivetuple.ActionController),
	}
	return fivetuple.NewRuleSet("small", rules)
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig should validate: %v", err)
	}
	invalid := []func(*Config){
		func(c *Config) { c.IPAlgorithm = 0 },
		func(c *Config) { c.CombineMode = 0 },
		func(c *Config) { c.ClockHz = 0 },
		func(c *Config) { c.MBTLevel2Entries = 0 },
		func(c *Config) { c.MBTLevel3Entries = 0 },
		func(c *Config) { c.RuleFilterAddressBits = 2 },
		func(c *Config) { c.RuleFilterAddressBits = 30 },
		func(c *Config) { c.RuleEntryBits = 10 },
		func(c *Config) { c.LabelMemoryEntries = 0 },
		func(c *Config) { c.LabelMemoryEntryBits = 1 },
		func(c *Config) { c.PortRegisters = 0 },
		func(c *Config) { c.PortRegisters = 1000 },
		func(c *Config) { c.MaxCrossProductProbes = 0 },
	}
	for i, mutate := range invalid {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate the config", i)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("New with mutation %d should fail", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew with invalid config did not panic")
		}
	}()
	MustNew(Config{})
}

func TestRuleCapacityMatchesTableVI(t *testing.T) {
	cfg := DefaultConfig()
	// Table VI: 8K rules with the MBT, ~12K with the BST (freed MBT blocks
	// hold the extra rules, Fig. 5).
	if got := cfg.RuleCapacityFor("mbt"); got != 8192 {
		t.Errorf("MBT rule capacity = %d, want 8192", got)
	}
	bstCap := cfg.RuleCapacityFor("bst")
	if bstCap < 11000 || bstCap > 13000 {
		t.Errorf("BST rule capacity = %d, want ~12K", bstCap)
	}
	if cfg.ExtraRuleCapacityBST() != bstCap-8192 {
		t.Errorf("ExtraRuleCapacityBST() inconsistent: %d vs %d", cfg.ExtraRuleCapacityBST(), bstCap-8192)
	}
}

func TestCombineModeString(t *testing.T) {
	if CombineHPML.String() != "hpml" || CombineCrossProduct.String() != "cross-product" {
		t.Errorf("mode names: %q, %q", CombineHPML, CombineCrossProduct)
	}
	if CombineMode(9).String() == "" {
		t.Error("unknown mode should still render")
	}
}

func TestInsertAndLookupSmallSet(t *testing.T) {
	for _, alg := range []memory.AlgSelect{memory.SelectMBT, memory.SelectBST} {
		t.Run(alg.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.IPAlgorithm = alg
			c := MustNew(cfg)
			rs := smallRuleSet()
			if _, err := c.InstallRuleSet(rs); err != nil {
				t.Fatalf("InstallRuleSet: %v", err)
			}
			if c.RuleCount() != rs.Len() {
				t.Fatalf("RuleCount() = %d, want %d", c.RuleCount(), rs.Len())
			}
			headers := classbench.GenerateTrace(rs, classbench.TraceConfig{Packets: 300, Seed: 3, MatchFraction: 0.9})
			for _, h := range headers {
				wantIdx, wantOK := rs.Classify(h)
				got := c.Lookup(h)
				if got.Matched != wantOK {
					t.Fatalf("Lookup(%s) matched=%v, reference=%v", h, got.Matched, wantOK)
				}
				if wantOK && got.Priority != wantIdx {
					t.Fatalf("Lookup(%s) priority=%d, reference=%d", h, got.Priority, wantIdx)
				}
				if wantOK && got.Action != rs.Rule(wantIdx).Action {
					t.Fatalf("Lookup(%s) action=%v, reference=%v", h, got.Action, rs.Rule(wantIdx).Action)
				}
			}
		})
	}
}

func TestLookupAgainstReferenceOnGeneratedFilterSets(t *testing.T) {
	// The cross-product combination must agree with the linear reference
	// classifier on every packet, for every filter-set family and both IP
	// algorithms.
	for _, class := range []classbench.Class{classbench.ACL, classbench.FW, classbench.IPC} {
		for _, alg := range []memory.AlgSelect{memory.SelectMBT, memory.SelectBST} {
			t.Run(class.String()+"/"+alg.String(), func(t *testing.T) {
				rs := classbench.Generate(classbench.Config{Class: class, Rules: 300, Seed: 17})
				cfg := DefaultConfig()
				cfg.IPAlgorithm = alg
				c := MustNew(cfg)
				if _, err := c.InstallRuleSet(rs); err != nil {
					t.Fatalf("InstallRuleSet: %v", err)
				}
				trace := classbench.GenerateTrace(rs, classbench.TraceConfig{Packets: 400, Seed: 5, MatchFraction: 0.8})
				for _, h := range trace {
					wantIdx, wantOK := rs.Classify(h)
					got := c.Lookup(h)
					if got.Matched != wantOK || (wantOK && got.Priority != wantIdx) {
						t.Fatalf("Lookup(%s) = (%v, %d), reference = (%v, %d)",
							h, got.Matched, got.Priority, wantOK, wantIdx)
					}
				}
			})
		}
	}
}

func TestHPMLModeIsSoundAndSingleProbe(t *testing.T) {
	// The paper's single-probe combination (§III.B) concatenates only the
	// first-position label of each dimension, so it can return "no match" or
	// a lower-priority rule when the true HPMR does not hold the HPML in
	// every dimension. Two properties must nevertheless hold:
	//
	//  1. soundness: any rule it does return genuinely matches the packet;
	//  2. cost: it examines exactly one combination per lookup.
	//
	// The agreement rate with the exact (cross-product) mode is measured and
	// reported by the experiment harness (EXPERIMENTS.md) rather than
	// asserted here, because it depends on the workload's shadowing
	// structure.
	rs := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: 300, Seed: 21})
	cfg := DefaultConfig()
	cfg.CombineMode = CombineHPML
	c := MustNew(cfg)
	if _, err := c.InstallRuleSet(rs); err != nil {
		t.Fatalf("InstallRuleSet: %v", err)
	}
	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{Packets: 500, Seed: 9, MatchFraction: 0.9})
	hits := 0
	for _, h := range trace {
		got := c.Lookup(h)
		if got.Combinations != 1 {
			t.Fatalf("HPML mode examined %d combinations, want exactly 1", got.Combinations)
		}
		if got.Matched {
			hits++
			if !rs.Rule(got.Priority).Matches(h) {
				t.Fatalf("HPML mode returned rule %d which does not match %s", got.Priority, h)
			}
		}
	}
	if hits == 0 {
		t.Error("HPML mode never returned a match on a 90%-matching trace")
	}
}

func TestUpdateReportFollowsFigure4(t *testing.T) {
	c := MustNew(DefaultConfig())
	ruleA := fivetuple.Rule{
		SrcPrefix: fivetuple.MustParsePrefix("10.0.0.0/8"),
		DstPrefix: fivetuple.MustParsePrefix("192.168.1.0/24"),
		SrcPort:   fivetuple.WildcardPortRange(),
		DstPort:   fivetuple.ExactPort(80),
		Protocol:  fivetuple.ExactProtocol(fivetuple.ProtoTCP),
		Priority:  0,
	}
	repA, err := c.InsertRule(ruleA)
	if err != nil {
		t.Fatalf("InsertRule: %v", err)
	}
	// Every dimension of the first rule is unseen: 7 new labels.
	if repA.NewLabels != label.NumDimensions {
		t.Errorf("first rule NewLabels = %d, want %d", repA.NewLabels, label.NumDimensions)
	}
	if repA.ClockCycles != 3 {
		t.Errorf("ClockCycles = %d, want 3 (2 upload + 1 hash, §V.A)", repA.ClockCycles)
	}
	if repA.EngineWrites == 0 || repA.RuleFilterProbes == 0 {
		t.Errorf("report = %+v, want engine writes and filter probes", repA)
	}

	// A second rule sharing every field value except the destination port
	// creates exactly one new label; the rest only bump counters.
	ruleB := ruleA
	ruleB.DstPort = fivetuple.ExactPort(8080)
	ruleB.Priority = 1
	repB, err := c.InsertRule(ruleB)
	if err != nil {
		t.Fatalf("InsertRule: %v", err)
	}
	if repB.NewLabels != 1 {
		t.Errorf("second rule NewLabels = %d, want 1", repB.NewLabels)
	}
	if got := c.view().labels.Table(label.DimDstPort).RefCount(ruleA.DstPort.String()); got != 1 {
		t.Errorf("dst port 80 refcount = %d, want 1", got)
	}
	if got := c.view().labels.Table(label.DimProtocol).RefCount(fivetuple.ExactProtocol(fivetuple.ProtoTCP).String()); got != 2 {
		t.Errorf("protocol refcount = %d, want 2", got)
	}

	// Deleting rule B releases only its unshared label.
	delB, err := c.DeleteRule(ruleB)
	if err != nil {
		t.Fatalf("DeleteRule: %v", err)
	}
	if delB.ReleasedLabels != 1 {
		t.Errorf("delete ReleasedLabels = %d, want 1", delB.ReleasedLabels)
	}
	if delB.ClockCycles != 3 {
		t.Errorf("delete ClockCycles = %d, want 3", delB.ClockCycles)
	}
	// Deleting rule A releases everything that remains.
	delA, err := c.DeleteRule(ruleA)
	if err != nil {
		t.Fatalf("DeleteRule: %v", err)
	}
	if delA.ReleasedLabels != label.NumDimensions {
		t.Errorf("final delete ReleasedLabels = %d, want %d", delA.ReleasedLabels, label.NumDimensions)
	}
	if c.RuleCount() != 0 || c.view().labels.TotalLabels() != 0 {
		t.Errorf("classifier not empty after deleting everything: %d rules, %d labels",
			c.RuleCount(), c.view().labels.TotalLabels())
	}
	if UpdateCyclesPerRule() != 3 {
		t.Errorf("UpdateCyclesPerRule() = %d, want 3", UpdateCyclesPerRule())
	}
}

func TestDeleteRestoresShadowedRule(t *testing.T) {
	c := MustNew(DefaultConfig())
	rs := smallRuleSet()
	if _, err := c.InstallRuleSet(rs); err != nil {
		t.Fatal(err)
	}
	h := fivetuple.Header{
		SrcIP: fivetuple.MustParseIPv4("10.1.2.3"), DstIP: fivetuple.MustParseIPv4("192.168.1.9"),
		SrcPort: 31000, DstPort: 80, Protocol: fivetuple.ProtoTCP,
	}
	if got := c.Lookup(h); !got.Matched || got.Priority != 0 {
		t.Fatalf("initial lookup = %+v, want rule 0", got)
	}
	// Deleting the HPMR exposes the default rule.
	if _, err := c.DeleteRule(rs.Rule(0)); err != nil {
		t.Fatalf("DeleteRule: %v", err)
	}
	if got := c.Lookup(h); !got.Matched || got.Priority != 4 {
		t.Fatalf("lookup after delete = %+v, want the default rule (4)", got)
	}
	// Deleting an uninstalled rule fails cleanly.
	if _, err := c.DeleteRule(rs.Rule(0)); !errors.Is(err, ErrRuleNotInstalled) {
		t.Errorf("second delete error = %v, want ErrRuleNotInstalled", err)
	}
}

func TestDeleteReprioritisesSharedFieldValues(t *testing.T) {
	// Two rules share a source prefix; deleting the higher-priority one must
	// leave the shared label ordered by the surviving rule's priority so HPML
	// lookups stay consistent.
	cfg := DefaultConfig()
	cfg.CombineMode = CombineHPML
	c := MustNew(cfg)
	shared := fivetuple.MustParsePrefix("10.0.0.0/8")
	ruleHigh := fivetuple.Rule{
		SrcPrefix: shared, DstPrefix: fivetuple.MustParsePrefix("192.168.1.0/24"),
		SrcPort: fivetuple.WildcardPortRange(), DstPort: fivetuple.ExactPort(80),
		Protocol: fivetuple.ExactProtocol(fivetuple.ProtoTCP), Priority: 0, Action: fivetuple.ActionForward,
	}
	ruleLow := fivetuple.Rule{
		SrcPrefix: shared, DstPrefix: fivetuple.MustParsePrefix("192.168.2.0/24"),
		SrcPort: fivetuple.WildcardPortRange(), DstPort: fivetuple.ExactPort(80),
		Protocol: fivetuple.ExactProtocol(fivetuple.ProtoTCP), Priority: 7, Action: fivetuple.ActionDrop,
	}
	if _, err := c.InsertRule(ruleHigh); err != nil {
		t.Fatal(err)
	}
	if _, err := c.InsertRule(ruleLow); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DeleteRule(ruleHigh); err != nil {
		t.Fatal(err)
	}
	h := fivetuple.Header{
		SrcIP: fivetuple.MustParseIPv4("10.9.9.9"), DstIP: fivetuple.MustParseIPv4("192.168.2.7"),
		SrcPort: 1000, DstPort: 80, Protocol: fivetuple.ProtoTCP,
	}
	got := c.Lookup(h)
	if !got.Matched || got.Priority != 7 || got.Action != fivetuple.ActionDrop {
		t.Fatalf("lookup after reprioritising delete = %+v, want rule 7", got)
	}
}

func TestLookupNoMatchWhenDimensionEmpty(t *testing.T) {
	c := MustNew(DefaultConfig())
	// A single TCP-only rule: a GRE packet produces an empty protocol list
	// and must short-circuit to "no match".
	rule := smallRuleSet().Rule(0)
	if _, err := c.InsertRule(rule); err != nil {
		t.Fatal(err)
	}
	h := fivetuple.Header{
		SrcIP: fivetuple.MustParseIPv4("10.1.2.3"), DstIP: fivetuple.MustParseIPv4("192.168.1.9"),
		SrcPort: 31000, DstPort: 80, Protocol: fivetuple.ProtoGRE,
	}
	got := c.Lookup(h)
	if got.Matched {
		t.Fatalf("lookup = %+v, want no match", got)
	}
	if got.RuleFilterProbes != 0 {
		t.Errorf("empty-dimension lookup probed the rule filter %d times, want 0", got.RuleFilterProbes)
	}
}

func TestSelectIPEngineSwitchesAndReprogrammes(t *testing.T) {
	c := MustNew(DefaultConfig())
	rs := smallRuleSet()
	if _, err := c.InstallRuleSet(rs); err != nil {
		t.Fatal(err)
	}
	if c.IPEngineName() != "mbt" {
		t.Fatalf("initial engine = %q, want mbt", c.IPEngineName())
	}
	capMBT := c.RuleCapacity()

	if err := c.SelectIPEngine("bst"); err != nil {
		t.Fatalf("SelectIPEngine(bst): %v", err)
	}
	if c.IPEngineName() != "bst" {
		t.Fatalf("engine after switch = %q, want bst", c.IPEngineName())
	}
	if c.RuleCapacity() <= capMBT {
		t.Errorf("BST capacity %d should exceed MBT capacity %d (Fig. 5 sharing)", c.RuleCapacity(), capMBT)
	}
	if c.RuleCount() != rs.Len() {
		t.Errorf("rules after switch = %d, want %d", c.RuleCount(), rs.Len())
	}
	// Lookups remain correct after the switch.
	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{Packets: 200, Seed: 8, MatchFraction: 0.9})
	for _, h := range trace {
		wantIdx, wantOK := rs.Classify(h)
		got := c.Lookup(h)
		if got.Matched != wantOK || (wantOK && got.Priority != wantIdx) {
			t.Fatalf("post-switch lookup(%s) = (%v,%d), reference (%v,%d)", h, got.Matched, got.Priority, wantOK, wantIdx)
		}
	}
	// Switching back also works, and re-selecting is a no-op.
	if err := c.SelectIPEngine("mbt"); err != nil {
		t.Fatalf("SelectIPEngine(mbt): %v", err)
	}
	if err := c.SelectIPEngine("mbt"); err != nil {
		t.Fatalf("re-selecting the active engine: %v", err)
	}
	if err := c.SelectIPEngine("no-such-engine"); err == nil {
		t.Error("selecting an unknown engine should fail")
	}
}

func TestLatencyModelMatchesFigure3(t *testing.T) {
	rs := smallRuleSet()
	// MBT: 1 dispatch + 6 trie + 1 label fetch + 2 result = 10 cycles.
	cfgMBT := DefaultConfig()
	cfgMBT.CombineMode = CombineHPML
	cMBT := MustNew(cfgMBT)
	if _, err := cMBT.InstallRuleSet(rs); err != nil {
		t.Fatal(err)
	}
	h := fivetuple.Header{
		SrcIP: fivetuple.MustParseIPv4("10.1.2.3"), DstIP: fivetuple.MustParseIPv4("192.168.1.9"),
		SrcPort: 31000, DstPort: 80, Protocol: fivetuple.ProtoTCP,
	}
	if got := cMBT.Lookup(h); got.LatencyCycles != 10 {
		t.Errorf("MBT lookup latency = %d cycles, want 10", got.LatencyCycles)
	}
	// BST: 1 + 16 + 1 + 2 = 20 cycles.
	cfgBST := DefaultConfig()
	cfgBST.IPAlgorithm = memory.SelectBST
	cfgBST.CombineMode = CombineHPML
	cBST := MustNew(cfgBST)
	if _, err := cBST.InstallRuleSet(rs); err != nil {
		t.Fatal(err)
	}
	if got := cBST.Lookup(h); got.LatencyCycles != 20 {
		t.Errorf("BST lookup latency = %d cycles, want 20", got.LatencyCycles)
	}
}

func TestThroughputMatchesTableVII(t *testing.T) {
	c := MustNew(DefaultConfig())
	// Table VII: 42.73 Gbps with the MBT, 2.67 Gbps with the BST, for
	// 40-byte packets at 133.51 MHz.
	if got := c.ThroughputGbps(40); got < 42.5 || got > 43.0 {
		t.Errorf("MBT throughput = %.2f Gbps, want ~42.7", got)
	}
	if got := c.LookupsPerSecond(); got < 133e6 || got > 134e6 {
		t.Errorf("MBT lookup rate = %.0f /s, want ~133.51M", got)
	}
	if err := c.SelectIPEngine("bst"); err != nil {
		t.Fatal(err)
	}
	if got := c.ThroughputGbps(40); got < 2.6 || got > 2.75 {
		t.Errorf("BST throughput = %.2f Gbps, want ~2.67", got)
	}
	// The conclusion's claim: >100 Gbps at 100-byte packets with the MBT.
	if err := c.SelectIPEngine("mbt"); err != nil {
		t.Fatal(err)
	}
	if got := c.ThroughputGbps(100); got < 100 {
		t.Errorf("MBT throughput at 100-byte packets = %.2f Gbps, want > 100", got)
	}
}

func TestMemoryReportBudget(t *testing.T) {
	c := MustNew(DefaultConfig())
	rs := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: 500, Seed: 4})
	if _, err := c.InstallRuleSet(rs); err != nil {
		t.Fatal(err)
	}
	report := c.MemoryReport()
	// The provisioned block-memory budget reproduces the ~2.1 Mbit figure of
	// Tables V and VII (within 5%).
	total := report.TotalProvisionedBits()
	if total < 2000000 || total > 2200000 {
		t.Errorf("TotalProvisionedBits() = %d, want ~2.1M", total)
	}
	if report.MBTProvisionedBits != 4*(32+1024+3288)*32 {
		t.Errorf("MBTProvisionedBits = %d", report.MBTProvisionedBits)
	}
	if report.MBTUsedBits == 0 || report.BSTUsedBits != 0 {
		t.Errorf("used bits = MBT %d / BST %d, want MBT-only usage", report.MBTUsedBits, report.BSTUsedBits)
	}
	if report.RuleFilterUsedBits != rs.Len()*DefaultRuleEntryBits {
		t.Errorf("RuleFilterUsedBits = %d, want %d", report.RuleFilterUsedBits, rs.Len()*DefaultRuleEntryBits)
	}
	if report.RulesInstalled != rs.Len() || report.RuleCapacity != 8192 {
		t.Errorf("rules %d / capacity %d", report.RulesInstalled, report.RuleCapacity)
	}
	if report.IPAlgorithmUsedBits() != report.MBTUsedBits {
		t.Error("IPAlgorithmUsedBits should report the MBT usage under MBT selection")
	}
	if report.TotalUsedBits() <= 0 || report.TotalUsedBits() >= total {
		t.Errorf("TotalUsedBits() = %d out of range (0,%d)", report.TotalUsedBits(), total)
	}

	// Switching to the BST shrinks the used IP-algorithm storage (Table VI:
	// 543 Kbit vs 49 Kbit on the paper's workload).
	if err := c.SelectIPEngine("bst"); err != nil {
		t.Fatal(err)
	}
	bstReport := c.MemoryReport()
	if bstReport.BSTUsedBits == 0 || bstReport.MBTUsedBits != 0 {
		t.Errorf("post-switch used bits = MBT %d / BST %d, want BST-only usage",
			bstReport.MBTUsedBits, bstReport.BSTUsedBits)
	}
	if bstReport.BSTUsedBits >= report.MBTUsedBits {
		t.Errorf("BST used bits %d should be well below MBT used bits %d",
			bstReport.BSTUsedBits, report.MBTUsedBits)
	}
	if bstReport.IPAlgorithmUsedBits() != bstReport.BSTUsedBits {
		t.Error("IPAlgorithmUsedBits should report the BST usage under BST selection")
	}
}

func TestCapacityEnforcement(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RuleFilterAddressBits = 4 // 16 slots
	c := MustNew(cfg)
	rs := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: 40, Seed: 2})
	inserted := 0
	var lastErr error
	for _, r := range rs.Rules() {
		if _, err := c.InsertRule(r); err != nil {
			lastErr = err
			break
		}
		inserted++
	}
	if inserted != 16 {
		t.Errorf("inserted %d rules before exhaustion, want 16", inserted)
	}
	if !errors.Is(lastErr, ErrRuleFilterFull) {
		t.Errorf("exhaustion error = %v, want ErrRuleFilterFull", lastErr)
	}
	if c.RuleCount() != 16 {
		t.Errorf("RuleCount() = %d after failed insert, want 16", c.RuleCount())
	}
	// Switching to BST raises the capacity and the next insert succeeds.
	if err := c.SelectIPEngine("bst"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.InsertRule(rs.Rule(20)); err != nil {
		t.Errorf("insert after switching to BST: %v", err)
	}
}

func TestStatsAccumulation(t *testing.T) {
	c := MustNew(DefaultConfig())
	rs := smallRuleSet()
	if _, err := c.InstallRuleSet(rs); err != nil {
		t.Fatal(err)
	}
	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{Packets: 50, Seed: 1, MatchFraction: 1})
	for _, h := range trace {
		c.Lookup(h)
	}
	stats := c.Stats()
	if stats.Lookups != 50 || stats.Matches == 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Inserts != uint64(rs.Len()) {
		t.Errorf("Inserts = %d, want %d", stats.Inserts, rs.Len())
	}
	if stats.UpdateCycles != uint64(3*rs.Len()) {
		t.Errorf("UpdateCycles = %d, want %d", stats.UpdateCycles, 3*rs.Len())
	}
	if stats.AverageFieldAccesses() <= 0 || stats.AverageLatencyCycles() <= 0 ||
		stats.AverageCombinations() <= 0 || stats.MatchRate() <= 0 {
		t.Errorf("derived stats should be positive: %+v", stats)
	}
	c.ResetStats()
	reset := c.Stats()
	if reset.Lookups != 0 || reset.Inserts != 0 {
		t.Errorf("stats not reset: %+v", reset)
	}
	empty := Stats{}
	if empty.AverageFieldAccesses() != 0 || empty.AverageLatencyCycles() != 0 ||
		empty.AverageCombinations() != 0 || empty.MatchRate() != 0 {
		t.Error("zero-lookup derived stats should be 0")
	}
}

func TestInstalledRulesSnapshot(t *testing.T) {
	c := MustNew(DefaultConfig())
	rs := smallRuleSet()
	if _, err := c.InstallRuleSet(rs); err != nil {
		t.Fatal(err)
	}
	rules := c.InstalledRules()
	if len(rules) != rs.Len() {
		t.Fatalf("InstalledRules() length = %d, want %d", len(rules), rs.Len())
	}
	rules[0].Priority = 999
	if c.InstalledRules()[0].Priority == 999 {
		t.Error("InstalledRules() exposed internal state")
	}
}

func TestArchSpecAndSynthesis(t *testing.T) {
	c := MustNew(DefaultConfig())
	spec := c.ArchSpec()
	if spec.BlockMemoryBits < 2000000 || spec.BlockMemoryBits > 2200000 {
		t.Errorf("BlockMemoryBits = %d, want ~2.1M", spec.BlockMemoryBits)
	}
	if spec.MemoryBlocks != 3*4+7+1+1 {
		t.Errorf("MemoryBlocks = %d, want 21", spec.MemoryBlocks)
	}
	if spec.PipelineStages != 10 {
		t.Errorf("PipelineStages = %d, want 10", spec.PipelineStages)
	}
	report, err := c.Synthesise()
	if err != nil {
		t.Fatalf("Synthesise: %v", err)
	}
	// Table V: ~4% of the device's 54.5 Mbit block memory.
	if util := report.MemoryUtilisation(); util < 0.03 || util > 0.05 {
		t.Errorf("memory utilisation = %.3f, want ~0.04", util)
	}
	// The cost model is calibrated to land near the published synthesis
	// figures: 79,835 ALMs, 129,273 registers, 133.51 MHz, 500 pins.
	within := func(got, want, tolerance float64) bool {
		return got >= want*(1-tolerance) && got <= want*(1+tolerance)
	}
	if !within(float64(report.LogicALMs), 79835, 0.10) {
		t.Errorf("LogicALMs = %d, want within 10%% of 79835", report.LogicALMs)
	}
	if !within(float64(report.Registers), 129273, 0.10) {
		t.Errorf("Registers = %d, want within 10%% of 129273", report.Registers)
	}
	if !within(report.FmaxMHz, 133.51, 0.10) {
		t.Errorf("FmaxMHz = %.2f, want within 10%% of 133.51", report.FmaxMHz)
	}
	if !within(float64(report.Pins), 500, 0.15) {
		t.Errorf("Pins = %d, want within 15%% of 500", report.Pins)
	}
}

func TestDuplicateRulesWithDifferentPriorities(t *testing.T) {
	// Two rules with identical field values but different priorities occupy
	// distinct Rule Filter slots; lookup must return the better one, and
	// deleting it must expose the other.
	c := MustNew(DefaultConfig())
	base := smallRuleSet().Rule(0)
	dup := base
	dup.Priority = 9
	dup.Action = fivetuple.ActionDrop
	if _, err := c.InsertRule(base); err != nil {
		t.Fatal(err)
	}
	if _, err := c.InsertRule(dup); err != nil {
		t.Fatal(err)
	}
	h := fivetuple.Header{
		SrcIP: fivetuple.MustParseIPv4("10.1.2.3"), DstIP: fivetuple.MustParseIPv4("192.168.1.9"),
		SrcPort: 31000, DstPort: 80, Protocol: fivetuple.ProtoTCP,
	}
	if got := c.Lookup(h); !got.Matched || got.Priority != 0 {
		t.Fatalf("lookup = %+v, want priority 0", got)
	}
	if _, err := c.DeleteRule(base); err != nil {
		t.Fatal(err)
	}
	if got := c.Lookup(h); !got.Matched || got.Priority != 9 || got.Action != fivetuple.ActionDrop {
		t.Fatalf("lookup after delete = %+v, want the duplicate at priority 9", got)
	}
}
