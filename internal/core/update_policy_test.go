package core

import (
	"fmt"
	"testing"

	"sdnpc/internal/fivetuple"
)

// policyRules builds n distinct, non-overlapping rules (one exact dst port
// each) so HyperCuts keeps its leaves balanced and degradation stays zero —
// the delta counters can then be pinned exactly.
func policyRules(n int) []fivetuple.Rule {
	out := make([]fivetuple.Rule, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fivetuple.Rule{
			SrcPrefix: fivetuple.MustParsePrefix(fmt.Sprintf("10.%d.0.0/16", i%200)),
			DstPrefix: fivetuple.MustParsePrefix("192.168.0.0/16"),
			SrcPort:   fivetuple.WildcardPortRange(),
			DstPort:   fivetuple.ExactPort(uint16(1000 + i)),
			Protocol:  fivetuple.ExactProtocol(fivetuple.ProtoTCP),
			Priority:  i,
			Action:    fivetuple.ActionForward,
			ActionArg: uint32(i),
		})
	}
	return out
}

// TestRebuildAfterDeltasPolicyPinsK pins the amortisation bound: with
// RebuildAfterDeltas = K, exactly the K-th single-rule publish rebuilds and
// resets the delta debt, and the cycle repeats.
func TestRebuildAfterDeltasPolicyPinsK(t *testing.T) {
	const k = 3
	cfg := DefaultConfig()
	cfg.PacketEngine = "hypercuts"
	cfg.RebuildAfterDeltas = k
	c := MustNew(cfg)
	base := fivetuple.NewRuleSet("base", policyRules(10))
	if _, err := c.InstallRuleSet(base); err != nil {
		t.Fatal(err)
	}
	// The bulk install exceeds the delta budget outright: one rebuild.
	stats := c.UpdateStats()
	if stats.Rebuilds != 1 || stats.DeltasApplied != 0 || stats.DeltasSinceRebuild != 0 {
		t.Fatalf("after bulk install: %+v, want exactly one rebuild and no deltas", stats)
	}

	extra := policyRules(2 * k)
	for i := range extra {
		extra[i].Priority = 100 + i
		extra[i].DstPort = fivetuple.ExactPort(uint16(2000 + i))
	}
	want := []struct {
		rebuilds, deltas uint64
		debt             int
	}{
		{1, 1, 1}, // delta 1
		{1, 2, 2}, // delta 2
		{2, 2, 0}, // the K-th publish trips the bound: rebuild, debt reset
		{2, 3, 1}, // the cycle restarts
		{2, 4, 2},
		{3, 4, 0},
	}
	for i, r := range extra {
		if _, err := c.InsertRule(r); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		stats := c.UpdateStats()
		if stats.Rebuilds != want[i].rebuilds || stats.DeltasApplied != want[i].deltas ||
			stats.DeltasSinceRebuild != want[i].debt {
			t.Fatalf("after single insert %d: rebuilds=%d deltas=%d debt=%d, want %+v",
				i, stats.Rebuilds, stats.DeltasApplied, stats.DeltasSinceRebuild, want[i])
		}
	}
	if got := c.UpdateStats().PublishLatency.Total(); got != uint64(1+len(extra)) {
		t.Errorf("PublishLatency.Total() = %d, want %d publishes", got, 1+len(extra))
	}
}

// TestDegradationThresholdTriggersRebuild drives one HyperCuts leaf past the
// configured degradation threshold and requires the tripping publish itself
// to rebuild (and reset the debt), with the bound K disabled so only the
// threshold can fire.
func TestDegradationThresholdTriggersRebuild(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PacketEngine = "hypercuts"
	cfg.RebuildAfterDeltas = -1 // unbounded: only degradation may force rebuilds
	cfg.DegradationThreshold = 0.2
	c := MustNew(cfg)

	// 16 identical wildcard rules = exactly one full leaf (binth 16): every
	// further overlapping insert adds tracked overflow.
	var base []fivetuple.Rule
	for i := 0; i < 16; i++ {
		base = append(base, fivetuple.Wildcard(i, fivetuple.ActionForward))
	}
	if _, err := c.InstallRuleSet(fivetuple.NewRuleSet("wild", base)); err != nil {
		t.Fatal(err)
	}
	if got := c.UpdateStats().Rebuilds; got != 1 {
		t.Fatalf("Rebuilds after install = %d, want 1", got)
	}

	// Degradation after n overflowing inserts is n/(16+n): inserts 1..3 stay
	// below 0.2 and delta-apply; the 4th reaches 4/20 = 0.2 and must rebuild
	// in the same publish.
	for i := 0; i < 4; i++ {
		r := fivetuple.Wildcard(100+i, fivetuple.ActionDrop)
		if _, err := c.InsertRule(r); err != nil {
			t.Fatal(err)
		}
		stats := c.UpdateStats()
		report := c.MemoryReport()
		if i < 3 {
			if stats.Rebuilds != 1 || stats.DeltasSinceRebuild != i+1 {
				t.Fatalf("insert %d: rebuilds=%d debt=%d, want the delta path", i, stats.Rebuilds, stats.DeltasSinceRebuild)
			}
			if report.PacketEngineDegradation <= 0 {
				t.Fatalf("insert %d: degradation = %v, want > 0 while drifting", i, report.PacketEngineDegradation)
			}
		} else {
			if stats.Rebuilds != 2 || stats.DeltasSinceRebuild != 0 {
				t.Fatalf("tripping insert: rebuilds=%d debt=%d, want a same-publish rebuild with the debt reset",
					stats.Rebuilds, stats.DeltasSinceRebuild)
			}
			if report.PacketEngineDegradation != 0 || report.PacketEngineDeltas != 0 {
				t.Fatalf("after the amortising rebuild: degradation=%v deltas=%d, want a clean structure",
					report.PacketEngineDegradation, report.PacketEngineDeltas)
			}
		}
	}
}

// TestNegativeThresholdDisablesDegradationTrip pins the
// negative-disables convention: with both bounds negative, churn that would
// trip the default threshold keeps delta-applying and never rebuilds.
func TestNegativeThresholdDisablesDegradationTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PacketEngine = "hypercuts"
	cfg.RebuildAfterDeltas = -1
	cfg.DegradationThreshold = -1
	c := MustNew(cfg)
	var base []fivetuple.Rule
	for i := 0; i < 16; i++ {
		base = append(base, fivetuple.Wildcard(i, fivetuple.ActionForward))
	}
	if _, err := c.InstallRuleSet(fivetuple.NewRuleSet("wild", base)); err != nil {
		t.Fatal(err)
	}
	// 32 fully overlapping inserts push Degradation to 32/48 = 0.67, past
	// the default 0.5 trip — which must stay disabled.
	for i := 0; i < 32; i++ {
		if _, err := c.InsertRule(fivetuple.Wildcard(100+i, fivetuple.ActionDrop)); err != nil {
			t.Fatal(err)
		}
	}
	stats := c.UpdateStats()
	if stats.Rebuilds != 1 || stats.DeltasSinceRebuild != 32 {
		t.Fatalf("stats = %+v, want only the bulk-install rebuild and 32 carried deltas", stats)
	}
	if got := c.MemoryReport().PacketEngineDegradation; got <= 0.5 {
		t.Fatalf("degradation = %v, want the drift past the (disabled) default trip", got)
	}
}

// TestNonIncrementalEnginesAlwaysRebuild pins the fallback: an engine
// without delta support pays one full rebuild per publish, visible through
// UpdateStats.Rebuilds.
func TestNonIncrementalEnginesAlwaysRebuild(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PacketEngine = "rfc-full"
	c := MustNew(cfg)
	if _, err := c.InstallRuleSet(fivetuple.NewRuleSet("base", policyRules(8))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		r := policyRules(1)[0]
		r.Priority = 50 + i
		r.DstPort = fivetuple.ExactPort(uint16(3000 + i))
		if _, err := c.InsertRule(r); err != nil {
			t.Fatal(err)
		}
	}
	stats := c.UpdateStats()
	if stats.Rebuilds != 4 || stats.DeltasApplied != 0 || stats.DeltaPublishes != 0 {
		t.Fatalf("rfc-full stats = %+v, want one rebuild per publish and zero deltas", stats)
	}
}

// TestFieldTierPublishesCountOnlyLatency pins that field-tier-only updates
// appear in the publish-latency histogram but in neither packet-tier
// counter.
func TestFieldTierPublishesCountOnlyLatency(t *testing.T) {
	c := MustNew(DefaultConfig())
	rules := policyRules(5)
	for _, r := range rules {
		if _, err := c.InsertRule(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.DeleteRule(rules[0]); err != nil {
		t.Fatal(err)
	}
	stats := c.UpdateStats()
	if stats.Rebuilds != 0 || stats.DeltasApplied != 0 || stats.DeltaPublishes != 0 {
		t.Fatalf("field-tier stats = %+v, want zero packet-tier activity", stats)
	}
	if got := stats.PublishLatency.Total(); got != 6 {
		t.Fatalf("PublishLatency.Total() = %d, want 6 publishes", got)
	}
	if stats.PublishLatency.P50() <= 0 || stats.PublishLatency.P99() < stats.PublishLatency.P50() {
		t.Fatalf("publish latency quantiles inconsistent: p50=%v p99=%v",
			stats.PublishLatency.P50(), stats.PublishLatency.P99())
	}
}

// TestBatchedUpdatesDeltaApplyAsOnePublish pins that ApplyUpdates drains its
// whole batch through the delta path as a single publish when the budget
// allows.
func TestBatchedUpdatesDeltaApplyAsOnePublish(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PacketEngine = "dcfl"
	cfg.RebuildAfterDeltas = 100
	c := MustNew(cfg)
	if _, err := c.InstallRuleSet(fivetuple.NewRuleSet("base", policyRules(10))); err != nil {
		t.Fatal(err)
	}
	extra := policyRules(3)
	for i := range extra {
		extra[i].Priority = 60 + i
		extra[i].DstPort = fivetuple.ExactPort(uint16(4000 + i))
	}
	ops := []UpdateOp{
		{Rule: extra[0]},
		{Rule: extra[1]},
		{Rule: extra[2]},
		{Delete: true, Rule: extra[1]},
	}
	if _, _, err := c.ApplyUpdates(ops); err != nil {
		t.Fatal(err)
	}
	stats := c.UpdateStats()
	if stats.DeltaPublishes != 1 || stats.DeltasApplied != 4 || stats.DeltasSinceRebuild != 4 {
		t.Fatalf("after batch: %+v, want one delta publish absorbing all four ops", stats)
	}
	// The batch went through the delta path; the verdicts must still be
	// exact.
	for _, r := range append(policyRules(10), extra[0], extra[2]) {
		h := fivetuple.Header{
			SrcIP: r.SrcPrefix.Addr, DstIP: r.DstPrefix.Addr,
			SrcPort: 5, DstPort: r.DstPort.Lo, Protocol: fivetuple.ProtoTCP,
		}
		got := c.Lookup(h)
		if !got.Matched {
			t.Fatalf("rule %d unreachable after delta batch", r.Priority)
		}
	}
	if r := c.Lookup(fivetuple.Header{
		SrcIP: extra[1].SrcPrefix.Addr, DstIP: extra[1].DstPrefix.Addr,
		SrcPort: 5, DstPort: extra[1].DstPort.Lo, Protocol: fivetuple.ProtoTCP,
	}); r.Matched {
		t.Fatalf("deleted batch rule still matches: %+v", r)
	}
}
