package core

import (
	"testing"

	"sdnpc/internal/classbench"
	"sdnpc/internal/engine"
	"sdnpc/internal/fivetuple"
)

// The flat-memory hot path's headline contract: serving a packet allocates
// nothing, on every selectable engine of either tier, with and without the
// microflow cache in front. These tests back the scripts/check_allocs.sh CI
// gate, so their names are part of the gate's -run expression.

// allocTrace builds a rule set and a replay trace shared by the allocation
// tests.
func allocTrace(t *testing.T) (*fivetuple.RuleSet, []fivetuple.Header) {
	t.Helper()
	rs := classbench.Generate(classbench.StandardConfig(classbench.ACL, classbench.Size1K))
	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{
		Packets: 256, Seed: 11, MatchFraction: 0.9, Locality: 0.3,
	})
	return rs, trace
}

// newAllocClassifier builds a classifier serving the named engine, with or
// without the microflow cache.
func newAllocClassifier(t *testing.T, engineName string, cached bool) (*Classifier, []fivetuple.Header) {
	t.Helper()
	rs, trace := allocTrace(t)
	cfg := DefaultConfig()
	if cached {
		cfg.CacheCapacity = 4096
	} else {
		cfg.CacheCapacity = 0
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.SelectEngine(engineName); err != nil {
		t.Fatalf("SelectEngine(%q): %v", engineName, err)
	}
	if _, err := c.InstallRuleSet(rs); err != nil {
		t.Fatalf("InstallRuleSet: %v", err)
	}
	return c, trace
}

// TestLookupZeroAllocs asserts 0 allocs/op for single-header Lookup on every
// selectable engine, cached and uncached. The warm-up pass grows the pooled
// scratch lists and fills the cache; steady state must then stay off the
// heap entirely.
func TestLookupZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector (sync.Pool drops puts)")
	}
	for _, name := range engine.SelectableNames() {
		for _, cached := range []bool{false, true} {
			mode := "uncached"
			if cached {
				mode = "cached"
			}
			t.Run(name+"/"+mode, func(t *testing.T) {
				c, trace := newAllocClassifier(t, name, cached)
				for _, h := range trace {
					c.Lookup(h)
				}
				i := 0
				avg := testing.AllocsPerRun(400, func() {
					c.Lookup(trace[i%len(trace)])
					i++
				})
				if avg != 0 {
					t.Fatalf("Lookup on %s (%s) allocates %.2f allocs/op, want 0", name, mode, avg)
				}
			})
		}
	}
}

// TestLookupBatchZeroAllocs asserts 0 allocs/op for LookupBatchInto with a
// recycled result slice on every selectable engine, cached and uncached.
func TestLookupBatchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector (sync.Pool drops puts)")
	}
	for _, name := range engine.SelectableNames() {
		for _, cached := range []bool{false, true} {
			mode := "uncached"
			if cached {
				mode = "cached"
			}
			t.Run(name+"/"+mode, func(t *testing.T) {
				c, trace := newAllocClassifier(t, name, cached)
				results := c.LookupBatchInto(nil, trace)
				avg := testing.AllocsPerRun(40, func() {
					results = c.LookupBatchInto(results, trace)
				})
				if avg != 0 {
					t.Fatalf("LookupBatchInto on %s (%s) allocates %.2f allocs/op, want 0", name, mode, avg)
				}
			})
		}
	}
}

// TestLookupAllZeroAllocs asserts 0 allocs/op for the multi-action path
// (LookupAllInto with a recycled ActionRef slice) on every selectable
// engine. Engines declaring multi-action support serve a workload with
// real non-terminating chains; the rest serve the classic set through the
// same API (a chain of one). Either way the serving path must stay off the
// heap once the pooled scratch has warmed up.
func TestLookupAllZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector (sync.Pool drops puts)")
	}
	for _, name := range engine.SelectableNames() {
		t.Run(name, func(t *testing.T) {
			rs, trace := allocTrace(t)
			if engine.Dims(name).Has(fivetuple.DimMultiAction) {
				gen := classbench.StandardConfig(classbench.ACL, classbench.Size1K)
				gen.NonTerminatingFraction = 0.3
				rs = classbench.Generate(gen)
				trace = classbench.GenerateTrace(rs, classbench.TraceConfig{
					Packets: 256, Seed: 11, MatchFraction: 0.9, Locality: 0.3,
				})
			}
			cfg := DefaultConfig()
			cfg.CacheCapacity = 0
			c, err := New(cfg)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			if err := c.SelectEngine(name); err != nil {
				t.Fatalf("SelectEngine(%q): %v", name, err)
			}
			if _, err := c.InstallRuleSet(rs); err != nil {
				t.Fatalf("InstallRuleSet: %v", err)
			}
			var refs []ActionRef
			for _, h := range trace {
				refs, _ = c.LookupAllInto(refs[:0], h)
			}
			i := 0
			avg := testing.AllocsPerRun(400, func() {
				refs, _ = c.LookupAllInto(refs[:0], trace[i%len(trace)])
				i++
			})
			if avg != 0 {
				t.Fatalf("LookupAllInto on %s allocates %.2f allocs/op, want 0", name, avg)
			}
		})
	}
}

// TestLookupZeroAllocsCrossProduct pins the combination mode that probes the
// Rule Filter hardest: the odometer enumeration must stay allocation-free
// too, not just the single-probe HPML path.
func TestLookupZeroAllocsCrossProduct(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector (sync.Pool drops puts)")
	}
	rs, trace := allocTrace(t)
	cfg := DefaultConfig()
	cfg.CacheCapacity = 0
	cfg.CombineMode = CombineCrossProduct
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := c.InstallRuleSet(rs); err != nil {
		t.Fatalf("InstallRuleSet: %v", err)
	}
	for _, h := range trace {
		c.Lookup(h)
	}
	i := 0
	avg := testing.AllocsPerRun(400, func() {
		c.Lookup(trace[i%len(trace)])
		i++
	})
	if avg != 0 {
		t.Fatalf("cross-product Lookup allocates %.2f allocs/op, want 0", avg)
	}
}
