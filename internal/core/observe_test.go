package core

import (
	"testing"

	"sdnpc/internal/classbench"
)

// TestReportRuleCapacityTracksActiveTier pins the capacity bugfix: Report
// (and RuleCapacity, and the memory breakdown) must report the capacity of
// the engine actually answering lookups, not of the field engine that stays
// programmed underneath a packet-tier selection. bst's shared-level-2 bonus
// capacity makes the two observably different.
func TestReportRuleCapacityTracksActiveTier(t *testing.T) {
	cfg := DefaultConfig()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.SelectEngine("bst"); err != nil {
		t.Fatalf("SelectEngine(bst): %v", err)
	}
	bstCap := cfg.RuleCapacityFor("bst")
	if bstCap <= cfg.RuleFilterSlots() {
		t.Fatalf("bst capacity %d should exceed the base %d slots", bstCap, cfg.RuleFilterSlots())
	}
	if got := c.Report().RuleCapacity; got != bstCap {
		t.Fatalf("field tier RuleCapacity = %d, want %d", got, bstCap)
	}

	// Switch the serving tier to hypercuts: bst stays programmed underneath,
	// but capacity must follow the active engine.
	if err := c.SelectEngine("hypercuts"); err != nil {
		t.Fatalf("SelectEngine(hypercuts): %v", err)
	}
	wantCap := cfg.RuleCapacityFor("hypercuts")
	if wantCap == bstCap {
		t.Fatalf("test needs distinguishable capacities, got %d for both", wantCap)
	}
	rep := c.Report()
	if rep.ActiveEngine != "hypercuts" || rep.IPEngine != "bst" {
		t.Fatalf("engines = (%q, %q), want (hypercuts, bst)", rep.ActiveEngine, rep.IPEngine)
	}
	if rep.RuleCapacity != wantCap {
		t.Errorf("packet tier Report().RuleCapacity = %d, want %d (active engine), not %d (field engine)",
			rep.RuleCapacity, wantCap, bstCap)
	}
	if got := c.RuleCapacity(); got != wantCap {
		t.Errorf("packet tier RuleCapacity() = %d, want %d", got, wantCap)
	}
	if rep.Memory.RuleCapacity != wantCap {
		t.Errorf("packet tier Memory.RuleCapacity = %d, want %d", rep.Memory.RuleCapacity, wantCap)
	}

	// Dropping the packet tier restores the field engine's capacity.
	if err := c.SelectEngine("bst"); err != nil {
		t.Fatalf("SelectEngine(bst) back: %v", err)
	}
	if got := c.Report().RuleCapacity; got != bstCap {
		t.Errorf("after tier drop RuleCapacity = %d, want %d", got, bstCap)
	}
}

// TestReplicatedStatsAggregation pins the replica-counter bugfix: lookups
// through worker-pinned Readers (and the fleet-picking Lookup path) must be
// recorded in the replicas' private counters — not the shared collector the
// fleet exists to keep off the serving path — and every observation surface
// must still see the aggregate.
func TestReplicatedStatsAggregation(t *testing.T) {
	rs := classbench.Generate(classbench.StandardConfig(classbench.ACL, classbench.Size1K))
	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{
		Packets: 300, Seed: 7, MatchFraction: 0.9,
	})
	cfg := DefaultConfig()
	cfg.Replicas = 4
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := c.InstallRuleSet(rs); err != nil {
		t.Fatalf("InstallRuleSet: %v", err)
	}

	var want uint64
	for w := 0; w < 4; w++ {
		r := c.Reader(w)
		for _, h := range trace[:50] {
			r.Lookup(h)
			want++
		}
		r.LookupBatch(trace[50:100])
		want += 50
	}
	c.Lookup(trace[0])
	c.LookupBatch(trace[:25])
	want += 26

	if shared := c.stats.lookups.Load(); shared != 0 {
		t.Errorf("shared collector recorded %d lookups; replicated serving must not touch it", shared)
	}
	rep := c.Report()
	if rep.Stats.Lookups != want {
		t.Errorf("Report().Stats.Lookups = %d, want %d", rep.Stats.Lookups, want)
	}
	if rep.Lookups.Lookups != want {
		t.Errorf("Report().Lookups = %d, want %d", rep.Lookups.Lookups, want)
	}
	if got := c.Stats().Lookups; got != want {
		t.Errorf("Stats().Lookups = %d, want %d", got, want)
	}
	if got := c.LookupCounters().Lookups; got != want {
		t.Errorf("LookupCounters().Lookups = %d, want %d", got, want)
	}
	if rep.Stats.FieldAccesses == 0 || rep.Stats.Matches == 0 {
		t.Errorf("aggregate lost accounting fields: %+v", rep.Stats)
	}

	c.ResetStats()
	if got := c.Stats().Lookups; got != 0 {
		t.Errorf("after ResetStats Stats().Lookups = %d, want 0", got)
	}
}

// TestReportMatchesPerSurfaceAccessors pins the consolidation contract: the
// one-call Report must agree field-for-field with the five per-surface
// accessors it supersedes, on both tiers, with the cache on.
func TestReportMatchesPerSurfaceAccessors(t *testing.T) {
	rs := classbench.Generate(classbench.StandardConfig(classbench.ACL, classbench.Size1K))
	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{
		Packets: 500, Seed: 3, MatchFraction: 0.9, Locality: 0.3,
	})
	for _, name := range []string{"mbt", "hypercuts"} {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.CacheCapacity = 1024
			c, err := New(cfg)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			if err := c.SelectEngine(name); err != nil {
				t.Fatalf("SelectEngine: %v", err)
			}
			if _, err := c.InstallRuleSet(rs); err != nil {
				t.Fatalf("InstallRuleSet: %v", err)
			}
			for _, h := range trace {
				c.Lookup(h)
			}
			if _, err := c.DeleteRule(rs.Rule(0)); err != nil {
				t.Fatalf("DeleteRule: %v", err)
			}

			rep := c.Report()
			if rep.ActiveEngine != c.ActiveEngineName() {
				t.Errorf("ActiveEngine = %q, want %q", rep.ActiveEngine, c.ActiveEngineName())
			}
			if rep.IPEngine != c.IPEngineName() || rep.PacketEngine != c.PacketEngineName() {
				t.Errorf("engines = (%q, %q), want (%q, %q)",
					rep.IPEngine, rep.PacketEngine, c.IPEngineName(), c.PacketEngineName())
			}
			if rep.RulesInstalled != c.RuleCount() || rep.RuleCapacity != c.RuleCapacity() {
				t.Errorf("rules = (%d, %d), want (%d, %d)",
					rep.RulesInstalled, rep.RuleCapacity, c.RuleCount(), c.RuleCapacity())
			}
			if rep.Stats != c.Stats() {
				t.Errorf("Stats = %+v, want %+v", rep.Stats, c.Stats())
			}
			if rep.Lookups != c.LookupCounters() {
				t.Errorf("Lookups = %+v, want %+v", rep.Lookups, c.LookupCounters())
			}
			if rep.Updates != c.UpdateStats() {
				t.Errorf("Updates = %+v, want %+v", rep.Updates, c.UpdateStats())
			}
			if rep.Memory != c.MemoryReport() {
				t.Errorf("Memory = %+v, want %+v", rep.Memory, c.MemoryReport())
			}
			cs, ok := c.CacheStats()
			if rep.CacheEnabled != ok || rep.Cache != cs {
				t.Errorf("Cache = (%v, %+v), want (%v, %+v)", rep.CacheEnabled, rep.Cache, ok, cs)
			}
			if rep.Lookups.Lookups == 0 || rep.Stats.Deletes == 0 {
				t.Errorf("report shows no traffic or no update: %+v", rep.Lookups)
			}
		})
	}
}
