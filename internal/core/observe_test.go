package core

import (
	"testing"

	"sdnpc/internal/classbench"
)

// TestReportMatchesPerSurfaceAccessors pins the consolidation contract: the
// one-call Report must agree field-for-field with the five per-surface
// accessors it supersedes, on both tiers, with the cache on.
func TestReportMatchesPerSurfaceAccessors(t *testing.T) {
	rs := classbench.Generate(classbench.StandardConfig(classbench.ACL, classbench.Size1K))
	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{
		Packets: 500, Seed: 3, MatchFraction: 0.9, Locality: 0.3,
	})
	for _, name := range []string{"mbt", "hypercuts"} {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.CacheCapacity = 1024
			c, err := New(cfg)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			if err := c.SelectEngine(name); err != nil {
				t.Fatalf("SelectEngine: %v", err)
			}
			if _, err := c.InstallRuleSet(rs); err != nil {
				t.Fatalf("InstallRuleSet: %v", err)
			}
			for _, h := range trace {
				c.Lookup(h)
			}
			if _, err := c.DeleteRule(rs.Rule(0)); err != nil {
				t.Fatalf("DeleteRule: %v", err)
			}

			rep := c.Report()
			if rep.ActiveEngine != c.ActiveEngineName() {
				t.Errorf("ActiveEngine = %q, want %q", rep.ActiveEngine, c.ActiveEngineName())
			}
			if rep.IPEngine != c.IPEngineName() || rep.PacketEngine != c.PacketEngineName() {
				t.Errorf("engines = (%q, %q), want (%q, %q)",
					rep.IPEngine, rep.PacketEngine, c.IPEngineName(), c.PacketEngineName())
			}
			if rep.RulesInstalled != c.RuleCount() || rep.RuleCapacity != c.RuleCapacity() {
				t.Errorf("rules = (%d, %d), want (%d, %d)",
					rep.RulesInstalled, rep.RuleCapacity, c.RuleCount(), c.RuleCapacity())
			}
			if rep.Stats != c.Stats() {
				t.Errorf("Stats = %+v, want %+v", rep.Stats, c.Stats())
			}
			if rep.Lookups != c.LookupCounters() {
				t.Errorf("Lookups = %+v, want %+v", rep.Lookups, c.LookupCounters())
			}
			if rep.Updates != c.UpdateStats() {
				t.Errorf("Updates = %+v, want %+v", rep.Updates, c.UpdateStats())
			}
			if rep.Memory != c.MemoryReport() {
				t.Errorf("Memory = %+v, want %+v", rep.Memory, c.MemoryReport())
			}
			cs, ok := c.CacheStats()
			if rep.CacheEnabled != ok || rep.Cache != cs {
				t.Errorf("Cache = (%v, %+v), want (%v, %+v)", rep.CacheEnabled, rep.Cache, ok, cs)
			}
			if rep.Lookups.Lookups == 0 || rep.Stats.Deletes == 0 {
				t.Errorf("report shows no traffic or no update: %+v", rep.Lookups)
			}
		})
	}
}
