package core

import (
	"sync"
	"sync/atomic"

	"sdnpc/internal/cache"
	"sdnpc/internal/fivetuple"
)

// fleet is the replicated serving layer behind Config.Replicas: every worker
// serves from its own replica — a private clone of the published snapshot
// plus a private microflow cache — so readers on different cores touch only
// core-local memory instead of serialising on one shared snapshot pointer
// and one shared cache.
//
// The single writer fans every publish out to all replicas synchronously,
// under the classifier's update mutex, before advancing the fleet
// generation: a publish is complete only when every replica has advanced, so
// fleet.gen is monotonic and fleet.gen == snapshot.gen means every replica
// serves that snapshot (or, mid-fan-out, an in-flight reader still drains the
// predecessor — the same old-or-new cut the unreplicated path guarantees).
type fleet struct {
	replicas []*fleetReplica

	// gen is the fleet generation: the generation of the last publish whose
	// fan-out completed on every replica.
	gen atomic.Uint64

	// next round-robins replica indices onto pool slots as Ps first touch
	// the pool, spreading workers across replicas.
	next atomic.Uint64

	// slots hands each goroutine a replica index with per-P locality:
	// sync.Pool keeps returned slots in a per-P cache, so a worker pinned to
	// a core keeps drawing the same replica index with no shared contended
	// counter and no steady-state allocation.
	slots sync.Pool
}

// fleetReplica is one worker-facing copy of the serving state. The hot
// fields sit in their own heap allocation (one per replica), and the pads
// keep the replica's snapshot pointer and cache pointer off any cache line
// shared with another replica's.
type fleetReplica struct {
	_         [64]byte
	snap      atomic.Pointer[snapshot]
	gen       atomic.Uint64
	microflow *cache.Cache[Result]
	_         [64]byte
	stats     replicaStats
	_         [64]byte
}

// replicaStats is the lookup-side slice of statsCollector, owned by one
// replica: a worker pinned to a replica increments only its own replica's
// counters, so the serving path never writes a cache line another core's
// counters share. The update-plane counters stay in the classifier's shared
// collector — updates are single-writer and don't need this.
type replicaStats struct {
	lookups          atomic.Uint64
	matches          atomic.Uint64
	fieldAccesses    atomic.Uint64
	labelFetches     atomic.Uint64
	ruleFilterProbes atomic.Uint64
	combinations     atomic.Uint64
	latencyCycles    atomic.Uint64
}

func (rs *replicaStats) recordLookup(r Result) {
	rs.lookups.Add(1)
	if r.Matched {
		rs.matches.Add(1)
	}
	rs.fieldAccesses.Add(uint64(r.FieldAccesses))
	rs.labelFetches.Add(uint64(r.LabelFetches))
	rs.ruleFilterProbes.Add(uint64(r.RuleFilterProbes))
	rs.combinations.Add(uint64(r.Combinations))
	rs.latencyCycles.Add(uint64(r.LatencyCycles))
}

func (rs *replicaStats) recordBatch(rep BatchReport) {
	rs.lookups.Add(uint64(rep.Packets))
	rs.matches.Add(uint64(rep.Matched))
	rs.fieldAccesses.Add(uint64(rep.FieldAccesses))
	rs.labelFetches.Add(uint64(rep.LabelFetches))
	rs.ruleFilterProbes.Add(uint64(rep.RuleFilterProbes))
	rs.combinations.Add(uint64(rep.Combinations))
	rs.latencyCycles.Add(uint64(rep.LatencyCycles))
}

// addTo folds this replica's counters into an aggregate Stats snapshot.
func (rs *replicaStats) addTo(s *Stats) {
	s.Lookups += rs.lookups.Load()
	s.Matches += rs.matches.Load()
	s.FieldAccesses += rs.fieldAccesses.Load()
	s.LabelFetches += rs.labelFetches.Load()
	s.RuleFilterProbes += rs.ruleFilterProbes.Load()
	s.Combinations += rs.combinations.Load()
	s.LatencyCycles += rs.latencyCycles.Load()
}

func (rs *replicaStats) reset() {
	rs.lookups.Store(0)
	rs.matches.Store(0)
	rs.fieldAccesses.Store(0)
	rs.labelFetches.Store(0)
	rs.ruleFilterProbes.Store(0)
	rs.combinations.Store(0)
	rs.latencyCycles.Store(0)
}

// replicaSlot is the pooled token carrying a replica index.
type replicaSlot struct{ idx int }

// newFleet builds the replica array (snapshots are fanned out by the first
// publish). Each replica gets its own private microflow cache when the
// configuration enables one.
func newFleet(cfg *Config) *fleet {
	f := &fleet{replicas: make([]*fleetReplica, cfg.Replicas)}
	for i := range f.replicas {
		rep := &fleetReplica{}
		if cfg.CacheCapacity > 0 {
			rep.microflow = cache.New[Result](cfg.CacheShards, cfg.CacheCapacity)
		}
		f.replicas[i] = rep
	}
	f.slots.New = func() any {
		return &replicaSlot{idx: int(f.next.Add(1)-1) % len(f.replicas)}
	}
	return f
}

// fanOut publishes one prepared, generation-stamped snapshot to every
// replica: each gets its own clone (its engines' structures and counters are
// then core-local), falling back to sharing the primary snapshot pointer if
// a clone fails — still correct, just shared memory for that replica. The
// fleet generation advances only after the last replica has.
func (f *fleet) fanOut(cfg *Config, s *snapshot) {
	for _, rep := range f.replicas {
		view := s
		if cl, err := s.clone(cfg); err == nil {
			cl.gen = s.gen // clone never copies the generation
			cl.prepare()
			view = cl
		}
		rep.snap.Store(view)
		rep.gen.Store(s.gen)
	}
	f.gen.Store(s.gen)
}

// pick returns a replica for this goroutine together with the pool slot to
// return via release. Zero allocation in steady state.
func (f *fleet) pick() (*fleetReplica, *replicaSlot) {
	sl := f.slots.Get().(*replicaSlot)
	return f.replicas[sl.idx], sl
}

func (f *fleet) release(sl *replicaSlot) { f.slots.Put(sl) }

// replica returns the replica a pinned worker id maps to.
func (f *fleet) replica(worker int) *fleetReplica {
	if worker < 0 {
		worker = -worker
	}
	return f.replicas[worker%len(f.replicas)]
}

// Reader is a worker-pinned serving handle: lookups through a Reader always
// hit the same replica's snapshot and cache, giving a serving loop pinned to
// a core purely core-local reads. On a classifier without replicas the
// Reader transparently serves the shared path, so callers can hold one per
// worker unconditionally.
type Reader struct {
	c   *Classifier
	rep *fleetReplica
}

// Reader returns the serving handle for the given worker id. Worker ids are
// mapped onto replicas round-robin; any id is valid.
func (c *Classifier) Reader(worker int) *Reader {
	r := &Reader{c: c}
	if c.fleet != nil {
		r.rep = c.fleet.replica(worker)
	}
	return r
}

// Lookup classifies one header from this reader's replica. Accounting goes
// to the replica's private counters, never the shared collector: the pinned
// path stays free of cross-core contended cache lines.
func (r *Reader) Lookup(h fivetuple.Header) Result {
	if r.rep != nil {
		result := r.c.serveOn(r.rep.snap.Load(), r.rep.microflow, h)
		r.rep.stats.recordLookup(result)
		r.c.sampler.offer(h)
		return result
	}
	result := r.c.serveOn(r.c.view(), r.c.microflow, h)
	r.c.stats.recordLookup(result)
	r.c.sampler.offer(h)
	return result
}

// LookupBatchInto classifies a batch against one consistent replica
// snapshot, reusing dst like Classifier.LookupBatchInto.
func (r *Reader) LookupBatchInto(dst []Result, hs []fivetuple.Header) []Result {
	if len(hs) == 0 {
		return dst[:0]
	}
	if cap(dst) < len(hs) {
		dst = make([]Result, len(hs))
	}
	dst = dst[:len(hs)]
	s, mf := r.c.view(), r.c.microflow
	if r.rep != nil {
		s, mf = r.rep.snap.Load(), r.rep.microflow
	}
	for i, h := range hs {
		dst[i] = r.c.serveOn(s, mf, h)
	}
	if r.rep != nil {
		r.rep.stats.recordBatch(SummarizeBatch(dst))
	} else {
		r.c.stats.recordBatch(SummarizeBatch(dst))
	}
	r.c.sampler.offer(hs[0])
	return dst
}

// LookupBatch classifies a batch against one consistent replica snapshot.
func (r *Reader) LookupBatch(hs []fivetuple.Header) []Result {
	return r.LookupBatchInto(nil, hs)
}

// Generation returns the published generation of this reader's replica (the
// classifier generation when unreplicated).
func (r *Reader) Generation() uint64 {
	if r.rep != nil {
		return r.rep.gen.Load()
	}
	return r.c.view().gen
}
