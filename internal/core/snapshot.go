package core

import (
	"fmt"
	"sort"

	"sdnpc/internal/engine"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/hw/memory"
	"sdnpc/internal/label"
	"sdnpc/internal/shard"
)

// snapshot is one complete state of the classifier's data path: the
// per-dimension lookup engines, the label bank, the rule filter and the
// installed-rule shadow.
//
// Snapshots are the unit of the classifier's RCU-style concurrency scheme.
// A published snapshot is immutable — lookups traverse it without any lock,
// and the only writes they perform are atomic access counters inside the
// engines and the rule filter. Updates never touch a published snapshot:
// they clone it, mutate the private clone and atomically publish the result
// (see Classifier). In-flight lookups keep reading the snapshot they loaded,
// so every result is consistent with either the pre-update or the
// post-update rule set, never a mixture.
type snapshot struct {
	engineName string
	alg        memory.AlgSelect

	// gen is the publication generation, assigned by Classifier.publish from
	// a monotonic counter. It keys the microflow cache: cache entries record
	// the generation of the snapshot whose lookup produced them and are only
	// served to readers of that same generation, so publishing a successor
	// invalidates every cached verdict in O(1) without a flush. A snapshot
	// that is never published keeps generation 0, which publish never
	// assigns.
	gen uint64

	labels    *label.Bank
	fieldUses map[label.Dimension]map[string]*fieldUse

	// engines holds the per-dimension field lookup engines.
	engines map[label.Dimension]engine.FieldEngine

	// sharedL2 models the IPalg_s-selected shared blocks of Fig. 5, one per
	// IP segment. An engine switch builds a snapshot with fresh blocks
	// instead of re-owning these, so concurrent readers of the old snapshot
	// never observe the ownership change.
	sharedL2 map[label.Dimension]*memory.SharedBlock

	filter    *ruleFilter
	installed []installedRule

	// Whole-packet engine tier. When packetName is non-empty, lookups are
	// served by packet — one precomputed multi-field structure — instead of
	// the per-field engines above, which stay programmed so the classifier
	// can switch tiers without a re-download. packetRules is the best-first
	// rule order the engine currently answers in (LookupPacket indices
	// resolve into it). A nil packet with a non-empty packetName marks a
	// structural invalidation (tier selection, engine switch) that forces a
	// full build before the snapshot is published.
	packetName  string
	packet      engine.PacketEngine
	packetRules []fivetuple.Rule

	// packetDims caches the packet engine's registry-declared dimension
	// support (engine.Dims(packetName)), resolved once per publish by prepare
	// so the per-packet serving path never takes the registry lock. It decides
	// the family fallback: an IPv6 header is served by the packet structure
	// only when this set covers DimIPv6, and by the installed-rule scan
	// otherwise (the field tier serves only the IPv4 five-tuple).
	packetDims fivetuple.DimSet

	// Update plane. packetPending records the rule mutations applied to this
	// (unpublished) snapshot since it was cloned; syncPacket drains it —
	// through the engine's delta ops when it is incremental and the policy
	// allows, through a full rebuild otherwise. packetDeltas counts the
	// delta ops the current packet structure has absorbed since its last
	// full build (the debt the RebuildAfterDeltas policy bounds); it is
	// carried across clones and reset by every rebuild.
	packetPending []packetDelta
	packetDeltas  int

	// Rule-space partitioning (Config.Shards > 1). part steers each header to
	// one of the shards — each a complete shardless snapshot holding only the
	// rule slice its partition byte range covers, so its engines are smaller
	// and faster. The spine (this snapshot) keeps the full rule set installed
	// in its own field engines: it stays the single source of truth for
	// bookkeeping, capacity and rollback, while lookups are answered entirely
	// by the shards. Spanning rules (wildcard protocol, short prefixes)
	// replicate into every shard they cover, which is what makes the
	// steered shard's first match the global first match.
	part   *shard.Partitioner
	shards []*snapshot
}

// activeEngineName returns the registry name of the engine answering this
// snapshot's lookups: the whole-packet engine when that tier is selected,
// the IP-segment field engine otherwise.
func (s *snapshot) activeEngineName() string {
	if s.packetName != "" {
		return s.packetName
	}
	return s.engineName
}

// packetDelta is one pending rule mutation awaiting packet-tier sync.
type packetDelta struct {
	delete bool
	rule   fivetuple.Rule
}

// newSnapshot builds an empty data path for the given engine selection.
// When the configuration enables rule-space partitioning, the spine gets one
// shardless sub-snapshot per shard alongside its own full data path.
func newSnapshot(cfg *Config, engineName string, alg memory.AlgSelect) (*snapshot, error) {
	s, err := newShardlessSnapshot(cfg, engineName, alg)
	if err != nil {
		return nil, err
	}
	if p := cfg.partitioner(); p != nil {
		s.part = p
		s.shards = make([]*snapshot, p.Shards())
		for i := range s.shards {
			sh, err := newShardlessSnapshot(cfg, engineName, alg)
			if err != nil {
				return nil, err
			}
			s.shards[i] = sh
		}
	}
	return s, nil
}

// newShardlessSnapshot builds one complete unpartitioned data path: every
// engine, label table and the rule filter, with fresh shared level-2 blocks.
func newShardlessSnapshot(cfg *Config, engineName string, alg memory.AlgSelect) (*snapshot, error) {
	s := &snapshot{
		engineName: engineName,
		alg:        alg,
		labels:     label.NewBank(),
		fieldUses:  make(map[label.Dimension]map[string]*fieldUse, label.NumDimensions),
		engines:    make(map[label.Dimension]engine.FieldEngine, label.NumDimensions),
		sharedL2:   make(map[label.Dimension]*memory.SharedBlock, len(ipSegmentDims)),
	}
	for _, d := range label.Dimensions() {
		s.fieldUses[d] = make(map[string]*fieldUse)
	}
	for _, d := range ipSegmentDims {
		block := memory.NewBlock(fmt.Sprintf("shared-l2/%s", d), DefaultMBTEntryBits, cfg.MBTLevel2Entries)
		s.sharedL2[d] = memory.NewSharedBlockOwner(block, engineName)
		eng, err := s.buildEngine(cfg, d)
		if err != nil {
			return nil, err
		}
		s.engines[d] = eng
	}
	for _, d := range []label.Dimension{label.DimSrcPort, label.DimDstPort, label.DimProtocol} {
		eng, err := s.buildEngine(cfg, d)
		if err != nil {
			return nil, err
		}
		s.engines[d] = eng
	}
	s.filter = newRuleFilter(cfg.RuleFilterAddressBits, cfg.RuleCapacityFor(engineName), cfg.RuleEntryBits)
	return s, nil
}

// buildEngine constructs a fresh engine for one dimension of this snapshot's
// engine selection.
func (s *snapshot) buildEngine(cfg *Config, d label.Dimension) (engine.FieldEngine, error) {
	switch d {
	case label.DimSrcIPHigh, label.DimSrcIPLow, label.DimDstIPHigh, label.DimDstIPLow:
		eng, err := engine.New(s.engineName, engine.Spec{
			KeyBits:   16,
			LabelBits: d.Bits(),
			SharedL2:  s.sharedL2[d],
		})
		if err != nil {
			return nil, fmt.Errorf("core: building %s engine for %s: %w", s.engineName, d, err)
		}
		return eng, nil
	case label.DimSrcPort, label.DimDstPort:
		eng, err := engine.New("portreg", engine.Spec{
			KeyBits:   16,
			LabelBits: d.Bits(),
			Registers: cfg.PortRegisters,
		})
		if err != nil {
			return nil, fmt.Errorf("core: building port engine for %s: %w", d, err)
		}
		return eng, nil
	case label.DimProtocol:
		eng, err := engine.New("lut", engine.Spec{KeyBits: 8, LabelBits: DefaultProtocolLabelBits})
		if err != nil {
			return nil, fmt.Errorf("core: building protocol engine: %w", err)
		}
		return eng, nil
	default:
		return nil, fmt.Errorf("core: unknown dimension %v", d)
	}
}

// clone duplicates the snapshot's mutable state so the copy can absorb an
// update while readers keep traversing the original. Engines implementing
// engine.Cloner are cloned structurally; any other engine is rebuilt fresh
// and re-programmed by replaying the installed rules of its dimension — the
// rebuild hook for third-party engines without a Clone.
func (s *snapshot) clone(cfg *Config) (*snapshot, error) {
	c := &snapshot{
		engineName: s.engineName,
		alg:        s.alg,
		labels:     s.labels.Clone(),
		fieldUses:  make(map[label.Dimension]map[string]*fieldUse, len(s.fieldUses)),
		engines:    make(map[label.Dimension]engine.FieldEngine, len(s.engines)),
		sharedL2:   s.sharedL2,
		filter:     s.filter.clone(),
		installed:  append([]installedRule(nil), s.installed...),
	}
	for d, uses := range s.fieldUses {
		m := make(map[string]*fieldUse, len(uses))
		for key, use := range uses {
			m[key] = use.clone()
		}
		c.fieldUses[d] = m
	}
	for d, eng := range s.engines {
		if cl, ok := eng.(engine.Cloner); ok {
			c.engines[d] = cl.Clone()
			continue
		}
		rebuilt, err := c.rebuildEngine(cfg, d)
		if err != nil {
			return nil, fmt.Errorf("core: cloning snapshot: %w", err)
		}
		c.engines[d] = rebuilt
	}
	c.packetName = s.packetName
	c.packetDims = s.packetDims
	c.packetRules = s.packetRules
	c.packetPending = append([]packetDelta(nil), s.packetPending...)
	c.packetDeltas = s.packetDeltas
	if s.packet != nil {
		// The clone shares the built structure; a rebuild after a rule change
		// replaces only the clone's handle, and a delta update copy-on-writes
		// inside the engine — never the published one either way.
		c.packet = s.packet.Clone()
	}
	c.part = s.part
	if len(s.shards) > 0 {
		c.shards = make([]*snapshot, len(s.shards))
		for i, sh := range s.shards {
			shc, err := sh.clone(cfg)
			if err != nil {
				return nil, err
			}
			c.shards[i] = shc
		}
	}
	return c, nil
}

// publishSync reports how syncPacket brought the packet tier in step with
// the installed rules: how many pending mutations were delta-applied, or
// whether the precomputed structure was rebuilt in full.
type publishSync struct {
	deltas  int
	rebuilt bool
}

// syncPacket brings the whole-packet engine in sync with the installed rules
// before a mutated snapshot is published. When the engine is incremental and
// the update policy allows, the pending mutations are delta-applied — the
// flat-latency path SDN flow-mod churn rides; otherwise the structure is
// rebuilt from scratch. The policy forces the amortising rebuild in two
// cases: the structure's delta debt would reach Config.RebuildAfterDeltas,
// or the applied deltas push the engine's degradation past
// Config.DegradationThreshold. A build failure (e.g. an RFC cross-product
// explosion) surfaces as the update's error and nothing is published.
func (s *snapshot) syncPacket(cfg *Config) (publishSync, error) {
	// Sharded table: the shards serve, so they — not the spine — hold the
	// packet-tier structures. The spine's tier selection propagates to every
	// shard (a name change is a structural invalidation forcing a full shard
	// build), each shard syncs its own pending mutations, and the spine's
	// packet state stays cleared: only packetName remains, as the record of
	// the selected tier.
	if s.part != nil {
		var agg publishSync
		for _, sh := range s.shards {
			if sh.packetName != s.packetName {
				sh.packetName = s.packetName
				sh.packet = nil
				sh.packetRules = nil
				sh.packetPending = nil
				sh.packetDeltas = 0
			}
			sync, err := sh.syncPacket(cfg)
			if err != nil {
				return publishSync{}, err
			}
			agg.deltas += sync.deltas
			agg.rebuilt = agg.rebuilt || sync.rebuilt
		}
		s.packet, s.packetRules = nil, nil
		s.packetPending, s.packetDeltas = nil, 0
		return agg, nil
	}
	if s.packetName == "" {
		s.packet, s.packetRules = nil, nil
		s.packetPending, s.packetDeltas = nil, 0
		return publishSync{}, nil
	}
	if s.packet != nil && len(s.packetPending) == 0 {
		return publishSync{}, nil
	}
	if s.packet != nil {
		if inc, ok := s.packet.(engine.IncrementalPacketEngine); ok && s.deltaBudgetAllows(cfg) {
			if applied, ok := s.applyPacketDeltas(cfg, inc); ok {
				return publishSync{deltas: applied}, nil
			}
			// The delta path declined (an op failed midway, or the applied
			// deltas tripped the degradation threshold); the full rebuild
			// below repairs whatever state the engine is in.
		}
	}
	if s.packet == nil {
		eng, err := engine.NewPacket(s.packetName, engine.Spec{})
		if err != nil {
			return publishSync{}, err
		}
		s.packet = eng
	}
	// The Table I structures resolve ties by table order, so hand them the
	// rules best-first; LookupPacket indices then resolve through this slice.
	rules := s.installedRules()
	sort.SliceStable(rules, func(i, j int) bool { return rules[i].Priority < rules[j].Priority })
	if err := s.packet.Install(rules); err != nil {
		return publishSync{}, fmt.Errorf("core: building %s packet engine over %d rules: %w", s.packetName, len(rules), err)
	}
	s.packetRules = rules
	s.packetPending = nil
	s.packetDeltas = 0
	return publishSync{rebuilt: true}, nil
}

// deltaBudgetAllows applies the amortisation bound: a publish whose pending
// mutations would push the structure's delta debt to RebuildAfterDeltas (or
// past it) must rebuild instead.
func (s *snapshot) deltaBudgetAllows(cfg *Config) bool {
	k := cfg.rebuildAfterDeltas()
	return k <= 0 || s.packetDeltas+len(s.packetPending) < k
}

// applyPacketDeltas drains the pending mutations through the engine's delta
// ops, keeping packetRules in step so LookupPacket indices keep resolving.
// Insert positions are the stable upper bound of the rule's priority —
// exactly where the rebuild path's stable sort would place a rule appended
// to the installation order — so the delta-updated and rebuilt structures
// answer in the same rule order. ok is false when an op failed or the
// applied deltas tripped the degradation threshold; the caller then
// rebuilds.
func (s *snapshot) applyPacketDeltas(cfg *Config, inc engine.IncrementalPacketEngine) (applied int, ok bool) {
	// Copy-on-write: packetRules is shared with the published predecessor.
	rules := append([]fivetuple.Rule(nil), s.packetRules...)
	for _, op := range s.packetPending {
		if op.delete {
			idx := packetRuleIndex(rules, op.rule)
			if idx < 0 {
				return 0, false
			}
			if err := inc.DeleteRule(op.rule, idx); err != nil {
				return 0, false
			}
			rules = append(rules[:idx], rules[idx+1:]...)
		} else {
			idx := sort.Search(len(rules), func(i int) bool { return rules[i].Priority > op.rule.Priority })
			if err := inc.InsertRule(op.rule, idx); err != nil {
				return 0, false
			}
			rules = append(rules, fivetuple.Rule{})
			copy(rules[idx+1:], rules[idx:])
			rules[idx] = op.rule
		}
	}
	if inc.UpdateCost().Degradation >= cfg.degradationThreshold() {
		// The deltas themselves tripped the degradation bound: amortise now,
		// in the same publish, rather than serving a degraded structure.
		return 0, false
	}
	applied = len(s.packetPending)
	s.packetRules = rules
	s.packetPending = nil
	s.packetDeltas += applied
	return applied, true
}

// packetRuleIndex locates a rule in the best-first packet order by its field
// matches and priority — the same identity findInstalled uses. Identity goes
// through Rule.SameMatch so every dimension participates: comparing only the
// classic five fields would let a delete land on a rule differing in an
// IPv6/VLAN/flag match. The slice is priority-sorted, so the scan is bounded
// to the equal-priority run.
func packetRuleIndex(rules []fivetuple.Rule, r fivetuple.Rule) int {
	lo := sort.Search(len(rules), func(i int) bool { return rules[i].Priority >= r.Priority })
	for i := lo; i < len(rules) && rules[i].Priority == r.Priority; i++ {
		if rules[i].SameMatch(r) {
			return i
		}
	}
	return -1
}

// rebuildEngine is the clone fallback for engines without a Clone hook: a
// fresh engine is built and the dimension's field values are re-installed by
// replaying the installed rules, exactly as the controller re-downloads the
// memory image after an engine switch.
func (s *snapshot) rebuildEngine(cfg *Config, d label.Dimension) (engine.FieldEngine, error) {
	eng, err := s.buildEngine(cfg, d)
	if err != nil {
		return nil, err
	}
	for _, ir := range s.installed {
		key := fieldValueKey(d, ir.rule)
		lbl, ok := s.labels.Table(d).Lookup(key)
		if !ok {
			return nil, fmt.Errorf("core: rebuilding %s: field value %q is not labelled", d, key)
		}
		// Insert keeps the better priority for an existing (value, label)
		// pair, so replaying every rule converges to the best priority per
		// value — the HPML invariant.
		if _, err := eng.Insert(fieldValue(d, ir.rule), lbl, ir.rule.Priority); err != nil {
			return nil, fmt.Errorf("core: rebuilding %s: %w", d, err)
		}
	}
	return eng, nil
}

// prepare forces every deferred engine-side build (engine.Preparer) so that
// a published snapshot never mutates itself inside Lookup, and resolves the
// serving-path caches (packetDims) that must not be recomputed per packet.
func (s *snapshot) prepare() {
	s.packetDims = 0
	if s.packetName != "" {
		s.packetDims = engine.Dims(s.packetName)
	}
	for _, eng := range s.engines {
		if p, ok := eng.(engine.Preparer); ok {
			p.Prepare()
		}
	}
	for _, sh := range s.shards {
		sh.prepare()
	}
}

// installedRules returns a copy of the installed rules in installation
// order.
func (s *snapshot) installedRules() []fivetuple.Rule {
	out := make([]fivetuple.Rule, len(s.installed))
	for i, ir := range s.installed {
		out[i] = ir.rule
	}
	return out
}

// installFieldValue writes a newly labelled field value into the dimension's
// lookup engine. It returns the number of engine memory writes.
func (s *snapshot) installFieldValue(d label.Dimension, r fivetuple.Rule, lbl label.Label, priority int) (int, error) {
	return s.engines[d].Insert(fieldValue(d, r), lbl, priority)
}

// removeFieldValue deletes a field value from the dimension's engine when
// its last rule is gone.
func (s *snapshot) removeFieldValue(d label.Dimension, r fivetuple.Rule, lbl label.Label) (int, error) {
	return s.engines[d].Remove(fieldValue(d, r), lbl)
}

// reprioritiseFieldValue re-installs a field value at a new best priority
// after the rule that defined the old best priority was deleted. Engines
// whose lists are ordered positionally (ports, protocol) treat this as a
// no-op.
func (s *snapshot) reprioritiseFieldValue(d label.Dimension, r fivetuple.Rule, lbl label.Label, newBest int) error {
	_, err := s.engines[d].Reprioritise(fieldValue(d, r), lbl, newBest)
	return err
}

// findInstalled locates an installed rule with the same field matches and
// priority. Identity goes through Rule.SameMatch so every dimension —
// including the IPv6/VLAN/flag extensions — participates in the comparison.
func (s *snapshot) findInstalled(r fivetuple.Rule) int {
	for i, ir := range s.installed {
		if ir.rule.Priority == r.Priority && ir.rule.SameMatch(r) {
			return i
		}
	}
	return -1
}

// requiredDims returns the union of extension dimensions required by the
// installed rules — what any engine serving this snapshot must cover.
func (s *snapshot) requiredDims() fivetuple.DimSet {
	var d fivetuple.DimSet
	for _, ir := range s.installed {
		d |= ir.rule.Dims()
	}
	return d
}
