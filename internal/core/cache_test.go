package core

import (
	"testing"

	"sdnpc/internal/classbench"
	"sdnpc/internal/engine"
	"sdnpc/internal/fivetuple"
)

// uncachedConfig returns the default configuration with the named engine
// selected (either tier; "" keeps the default) and the cache off.
func uncachedConfig(engineName string) Config {
	cfg := DefaultConfig()
	if engineName != "" {
		if isPacket, ok := engine.Selectable(engineName); ok && isPacket {
			cfg.PacketEngine = engineName
		} else {
			cfg.IPEngine = engineName
		}
	}
	return cfg
}

// cachedConfig is uncachedConfig with the microflow cache enabled.
func cachedConfig(engineName string) Config {
	cfg := uncachedConfig(engineName)
	cfg.CacheShards = 4
	cfg.CacheCapacity = 1024
	return cfg
}

// TestCachedLookupMatchesUncached replays one trace through a cached and an
// uncached classifier for one engine of each tier and requires byte-identical
// Results — on the first (filling) pass and on the second (hitting) pass.
func TestCachedLookupMatchesUncached(t *testing.T) {
	rs := classbench.Generate(classbench.Config{Class: classbench.ACL, Rules: 300, Seed: 5})
	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{Packets: 600, Seed: 6, MatchFraction: 0.8})

	for _, name := range []string{"mbt", "hypercuts"} {
		t.Run(name, func(t *testing.T) {
			plain := MustNew(uncachedConfig(name))
			cached := MustNew(cachedConfig(name))
			if !cached.CacheEnabled() || plain.CacheEnabled() {
				t.Fatal("cache enablement does not follow the configuration")
			}
			for _, c := range []*Classifier{plain, cached} {
				if _, err := c.InstallRuleSet(rs); err != nil {
					t.Fatalf("install: %v", err)
				}
			}
			for pass := 0; pass < 2; pass++ {
				for i, h := range trace {
					want := plain.Lookup(h)
					got := cached.Lookup(h)
					if got != want {
						t.Fatalf("pass %d header %d (%s): cached lookup = %+v, uncached = %+v", pass, i, h, got, want)
					}
				}
			}
			stats, ok := cached.CacheStats()
			if !ok {
				t.Fatal("CacheStats reported disabled on a cached classifier")
			}
			if stats.Hits == 0 {
				t.Errorf("replaying the trace twice produced no cache hits: %+v", stats)
			}
			if _, ok := plain.CacheStats(); ok {
				t.Error("CacheStats reported enabled on an uncached classifier")
			}
		})
	}
}

// TestCacheInvalidationOnUpdate is the generation contract: any published
// update — insert, delete, batch, engine switch across tiers — must make
// every previously cached verdict unservable, with no flush.
func TestCacheInvalidationOnUpdate(t *testing.T) {
	c := MustNew(cachedConfig(""))
	rule := mustRule(t, "10.0.0.0/8", "192.168.0.0/16", 443, fivetuple.ProtoTCP, 0)
	h := fivetuple.Header{
		SrcIP:    fivetuple.MustParseIPv4("10.1.2.3"),
		DstIP:    fivetuple.MustParseIPv4("192.168.9.9"),
		SrcPort:  1234,
		DstPort:  443,
		Protocol: fivetuple.ProtoTCP,
	}

	if r := c.Lookup(h); r.Matched {
		t.Fatalf("empty classifier matched %+v", r)
	}
	// The miss is now cached; the insert must invalidate it.
	if _, err := c.InsertRule(rule); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if r := c.Lookup(h); !r.Matched || r.Priority != 0 {
		t.Fatalf("lookup after insert = %+v, want the inserted rule (cached miss must not survive the swap)", r)
	}
	// The hit is now cached; the delete must invalidate it.
	if _, err := c.DeleteRule(rule); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if r := c.Lookup(h); r.Matched {
		t.Fatalf("lookup after delete = %+v, want a miss (stale-generation hit served)", r)
	}
	// Batched updates and tier switches publish too.
	if _, _, err := c.ApplyUpdates([]UpdateOp{{Rule: rule}}); err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}
	if r := c.Lookup(h); !r.Matched {
		t.Fatal("lookup after batched insert missed")
	}
	for _, name := range []string{"hypercuts", "bst"} {
		if err := c.SelectEngine(name); err != nil {
			t.Fatalf("SelectEngine(%s): %v", name, err)
		}
		if r := c.Lookup(h); !r.Matched || r.Priority != 0 {
			t.Fatalf("lookup after switching to %s = %+v, want the installed rule", name, r)
		}
	}
	stats, _ := c.CacheStats()
	if stats.StaleGenerations == 0 {
		t.Errorf("no stale-generation drops were recorded across %d invalidating updates: %+v", 5, stats)
	}
}

// TestCacheRejectedUpdateKeepsCacheWarm verifies the flip side of O(1)
// invalidation: an update that publishes nothing (a no-op engine reselect)
// keeps the generation, so warm entries keep hitting.
func TestCacheRejectedUpdateKeepsCacheWarm(t *testing.T) {
	c := MustNew(cachedConfig("mbt"))
	h := fivetuple.Header{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Protocol: 6}
	c.Lookup(h)
	if err := c.SelectIPEngine("mbt"); err != nil { // already active: no publish
		t.Fatalf("no-op reselect: %v", err)
	}
	c.Lookup(h)
	stats, _ := c.CacheStats()
	if stats.Hits == 0 {
		t.Errorf("warm entry was lost by a no-op reselect: %+v", stats)
	}
}

// TestCacheMemoryReport checks the honest footprint accounting.
func TestCacheMemoryReport(t *testing.T) {
	uncached := MustNew(DefaultConfig())
	if rep := uncached.MemoryReport(); rep.CacheEntries != 0 || rep.CacheBits != 0 {
		t.Errorf("uncached report claims cache storage: %+v entries, %d bits", rep.CacheEntries, rep.CacheBits)
	}
	c := MustNew(cachedConfig(""))
	rep := c.MemoryReport()
	if rep.CacheEntries < 1024 {
		t.Errorf("CacheEntries = %d, want >= the configured 1024", rep.CacheEntries)
	}
	if rep.CacheBits <= rep.CacheEntries*8 {
		t.Errorf("CacheBits = %d for %d entries: entries cannot fit in one byte each", rep.CacheBits, rep.CacheEntries)
	}
	// The cache is software state, not a modelled block memory.
	if total := rep.TotalProvisionedBits(); total != MustNew(DefaultConfig()).MemoryReport().TotalProvisionedBits() {
		t.Errorf("cache footprint leaked into the hardware block-memory total: %d", total)
	}
}

// TestCacheBatchUsesOneSnapshot pins the batch contract with the cache on:
// every result of one LookupBatch call is served by one snapshot generation,
// so two identical headers inside a batch must agree even under churn.
func TestCacheBatchUsesOneSnapshot(t *testing.T) {
	c := MustNew(cachedConfig(""))
	rule := mustRule(t, "10.0.0.0/8", "0.0.0.0/0", 80, fivetuple.ProtoTCP, 0)
	if _, err := c.InsertRule(rule); err != nil {
		t.Fatalf("insert: %v", err)
	}
	h := fivetuple.Header{SrcIP: fivetuple.MustParseIPv4("10.0.0.1"), DstIP: 9, SrcPort: 1, DstPort: 80, Protocol: fivetuple.ProtoTCP}
	results := c.LookupBatch([]fivetuple.Header{h, h, h})
	for i, r := range results {
		if r != results[0] {
			t.Fatalf("batch result %d = %+v differs from %+v within one batch", i, r, results[0])
		}
	}
}

// mustRule builds one exact-ish test rule.
func mustRule(t *testing.T, src, dst string, dstPort uint16, proto uint8, priority int) fivetuple.Rule {
	t.Helper()
	return fivetuple.Rule{
		Priority:  priority,
		SrcPrefix: fivetuple.MustParsePrefix(src),
		DstPrefix: fivetuple.MustParsePrefix(dst),
		SrcPort:   fivetuple.WildcardPortRange(),
		DstPort:   fivetuple.ExactPort(dstPort),
		Protocol:  fivetuple.ExactProtocol(proto),
		Action:    fivetuple.ActionForward,
	}
}
