package core

import (
	"testing"

	"sdnpc/internal/classbench"
	"sdnpc/internal/engine"
	"sdnpc/internal/hw/memory"
)

// TestEveryIPEngineMatchesReferenceClassifier installs a generated filter
// set under every registered IP engine and replays a trace, requiring the
// exact combination mode to agree with the linear reference classifier —
// HPMR correctness is engine-independent.
func TestEveryIPEngineMatchesReferenceClassifier(t *testing.T) {
	rs := classbench.Generate(classbench.StandardConfig(classbench.ACL, classbench.Size1K))
	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{
		Packets: 3000, Seed: 7, MatchFraction: 0.9, Locality: 0.3,
	})
	names := engine.IPEngineNames()
	if len(names) < 4 {
		t.Fatalf("expected at least 4 registered IP engines, got %v", names)
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.IPEngine = name
			c, err := New(cfg)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			if got := c.IPEngineName(); got != name {
				t.Fatalf("IPEngineName = %q, want %q", got, name)
			}
			if _, err := c.InstallRuleSet(rs); err != nil {
				t.Fatalf("InstallRuleSet: %v", err)
			}
			for _, h := range trace {
				wantIdx, wantOK := rs.Classify(h)
				got := c.Lookup(h)
				if got.Matched != wantOK || (wantOK && got.Priority != wantIdx) {
					t.Fatalf("Lookup(%s) = (%v, %d), reference (%v, %d)",
						h, got.Matched, got.Priority, wantOK, wantIdx)
				}
			}
			report := c.MemoryReport()
			if report.IPEngine != name {
				t.Errorf("MemoryReport.IPEngine = %q, want %q", report.IPEngine, name)
			}
			if report.IPEngineUsedBits <= 0 {
				t.Errorf("MemoryReport.IPEngineUsedBits = %d, want > 0", report.IPEngineUsedBits)
			}
			if report.IPEngineProvisionedBits <= 0 {
				t.Errorf("MemoryReport.IPEngineProvisionedBits = %d, want > 0", report.IPEngineProvisionedBits)
			}
		})
	}
}

// TestSelectIPEngineCyclesThroughAllEngines switches one loaded classifier
// through every registered engine and back, checking that the rules survive
// every re-programming.
func TestSelectIPEngineCyclesThroughAllEngines(t *testing.T) {
	rs := classbench.Generate(classbench.StandardConfig(classbench.ACL, classbench.Size1K))
	probe := classbench.GenerateTrace(rs, classbench.TraceConfig{
		Packets: 500, Seed: 13, MatchFraction: 0.95,
	})
	c := MustNew(DefaultConfig())
	if _, err := c.InstallRuleSet(rs); err != nil {
		t.Fatalf("InstallRuleSet: %v", err)
	}
	names := append(engine.IPEngineNames(), "mbt")
	for _, name := range names {
		if err := c.SelectIPEngine(name); err != nil {
			t.Fatalf("SelectIPEngine(%s): %v", name, err)
		}
		if c.RuleCount() != rs.Len() {
			t.Fatalf("after switch to %s: %d rules, want %d", name, c.RuleCount(), rs.Len())
		}
		for _, h := range probe {
			wantIdx, wantOK := rs.Classify(h)
			got := c.Lookup(h)
			if got.Matched != wantOK || (wantOK && got.Priority != wantIdx) {
				t.Fatalf("engine %s: Lookup(%s) = (%v, %d), reference (%v, %d)",
					name, h, got.Matched, got.Priority, wantOK, wantIdx)
			}
		}
	}
}

func TestSelectIPEngineRejectsBadNames(t *testing.T) {
	c := MustNew(DefaultConfig())
	if err := c.SelectIPEngine("no-such-engine"); err == nil {
		t.Error("unknown engine name should fail")
	}
	if err := c.SelectIPEngine("portreg"); err == nil {
		t.Error("a non-IP-capable engine should be rejected")
	}
	// Selecting the active engine is a no-op.
	if err := c.SelectIPEngine("mbt"); err != nil {
		t.Errorf("selecting the active engine: %v", err)
	}
}

func TestConfigIPEngineValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IPEngine = "no-such-engine"
	if _, err := New(cfg); err == nil {
		t.Error("unknown IPEngine should fail validation")
	}
	cfg.IPEngine = "lut"
	if _, err := New(cfg); err == nil {
		t.Error("non-IP-capable IPEngine should fail validation")
	}
	// The explicit engine name wins over the legacy signal.
	cfg = DefaultConfig()
	cfg.IPEngine = "segtrie"
	cfg.IPAlgorithm = memory.SelectBST
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if c.IPEngineName() != "segtrie" {
		t.Errorf("IPEngineName = %q, want the explicit %q", c.IPEngineName(), "segtrie")
	}
	if c.MemoryReport().Algorithm != 0 {
		t.Errorf("report algorithm = %v, want 0 for an engine with no legacy value", c.MemoryReport().Algorithm)
	}
}
