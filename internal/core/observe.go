package core

import "sdnpc/internal/cache"

// Report is the one-call observability snapshot of a classifier: everything
// the five historical accessors (Stats, LookupCounters, UpdateStats,
// CacheStats, MemoryReport) returned, assembled against a single published
// snapshot. Serving layers that used to stitch those five calls together —
// and could observe each against a different snapshot when updates raced the
// reads — get one struct whose engine names, rule counts, memory breakdown
// and update-plane view are mutually consistent. (The atomic counters inside
// Stats, Lookups and Updates remain individually atomic reads, which is
// inherent to concurrent collection.)
type Report struct {
	// ActiveEngine is the registry name of the engine answering lookups;
	// IPEngine and PacketEngine name the programmed engine of each tier
	// (PacketEngine is "" when the field tier serves).
	ActiveEngine string
	IPEngine     string
	PacketEngine string

	// RulesInstalled and RuleCapacity describe the rule table under the
	// current engine selection.
	RulesInstalled int
	RuleCapacity   int

	// Lookups is the cheap served-request summary (lookups answered,
	// matches returned); Stats is the full data-plane counter snapshot.
	Lookups LookupCounters
	Stats   Stats

	// Updates is the update-plane view: delta-vs-rebuild publish counters,
	// current delta debt and the publish-latency histogram.
	Updates UpdateStats

	// Memory is the block-memory breakdown of §III.D.
	Memory MemoryReport

	// CacheEnabled reports whether the microflow cache is configured; Cache
	// holds its counters (zero when disabled).
	CacheEnabled bool
	Cache        cache.Stats
}

// Report assembles the full observability snapshot. It loads the published
// snapshot once, so the structural fields (engine names, rule counts, memory
// breakdown, delta debt) are one consistent cut even while updates are in
// flight. It is safe to call from any goroutine.
func (c *Classifier) Report() Report {
	s := c.view()
	r := Report{
		ActiveEngine:   s.engineName,
		IPEngine:       s.engineName,
		PacketEngine:   s.packetName,
		RulesInstalled: len(s.installed),
		RuleCapacity:   c.cfg.RuleCapacityFor(s.engineName),
		Stats:          c.stats.snapshot(),
		Updates:        c.updateStats(s),
		Memory:         c.memoryReport(s),
	}
	if s.packetName != "" {
		r.ActiveEngine = s.packetName
	}
	r.Lookups = LookupCounters{Lookups: r.Stats.Lookups, Matches: r.Stats.Matches}
	if c.microflow != nil {
		r.CacheEnabled = true
		r.Cache = c.microflow.Stats()
	}
	return r
}
