package core

import "sdnpc/internal/cache"

// Report is the one-call observability snapshot of a classifier: everything
// the five historical accessors (Stats, LookupCounters, UpdateStats,
// CacheStats, MemoryReport) returned, assembled against a single published
// snapshot. Serving layers that used to stitch those five calls together —
// and could observe each against a different snapshot when updates raced the
// reads — get one struct whose engine names, rule counts, memory breakdown
// and update-plane view are mutually consistent. (The atomic counters inside
// Stats, Lookups and Updates remain individually atomic reads, which is
// inherent to concurrent collection.)
type Report struct {
	// ActiveEngine is the registry name of the engine answering lookups;
	// IPEngine and PacketEngine name the programmed engine of each tier
	// (PacketEngine is "" when the field tier serves).
	ActiveEngine string
	IPEngine     string
	PacketEngine string

	// RulesInstalled and RuleCapacity describe the rule table under the
	// current engine selection.
	RulesInstalled int
	RuleCapacity   int

	// Lookups is the cheap served-request summary (lookups answered,
	// matches returned); Stats is the full data-plane counter snapshot.
	Lookups LookupCounters
	Stats   Stats

	// Updates is the update-plane view: delta-vs-rebuild publish counters,
	// current delta debt and the publish-latency histogram.
	Updates UpdateStats

	// Memory is the block-memory breakdown of §III.D.
	Memory MemoryReport

	// CacheEnabled reports whether the microflow cache is configured; Cache
	// holds its counters (zero when disabled). With a replicated fleet the
	// counters are summed over every replica's private cache, so the
	// aggregate hit rate stays meaningful.
	CacheEnabled bool
	Cache        cache.Stats

	// Generation is the published snapshot's generation; FleetGeneration is
	// the generation every serving replica has reached (equal to Generation
	// when no fleet is configured, and after every complete publish).
	Generation      uint64
	FleetGeneration uint64

	// Replicas describes each serving replica of the fleet, in replica
	// order; empty when replication is off.
	Replicas []ReplicaReport

	// Shards describes each rule-space shard, in shard order; empty when
	// partitioning is off.
	Shards []ShardReport
}

// ReplicaReport is the per-replica slice of the observability snapshot.
type ReplicaReport struct {
	// Generation is the publish generation this replica currently serves.
	Generation uint64
	// CacheEnabled reports whether the replica holds a private microflow
	// cache; Cache holds its counters.
	CacheEnabled bool
	Cache        cache.Stats
}

// ShardReport is the per-shard slice of the observability snapshot — the
// numbers that show the paper's memory/accesses trade-off applying per
// shard: each shard holds only its rule slice, so its structures are
// super-linearly smaller than the unsharded table's.
type ShardReport struct {
	// Rules is the number of rules installed in this shard (spanning rules
	// count once per shard they replicate into).
	Rules int
	// IPEngineUsedBits is the node storage of the shard's four IP-segment
	// engines; PacketEngineUsedBits that of its whole-packet structure (0
	// when the field tier serves).
	IPEngineUsedBits     int
	PacketEngineUsedBits int
}

// Report assembles the full observability snapshot. It loads the published
// snapshot once, so the structural fields (engine names, rule counts, memory
// breakdown, delta debt) are one consistent cut even while updates are in
// flight. It is safe to call from any goroutine.
func (c *Classifier) Report() Report {
	s := c.view()
	r := Report{
		ActiveEngine:   s.activeEngineName(),
		IPEngine:       s.engineName,
		PacketEngine:   s.packetName,
		RulesInstalled: len(s.installed),
		RuleCapacity:   c.cfg.RuleCapacityFor(s.activeEngineName()),
		Stats:          c.statsSnapshot(),
		Updates:        c.updateStats(s),
		Memory:         c.memoryReport(s),
	}
	r.Lookups = LookupCounters{Lookups: r.Stats.Lookups, Matches: r.Stats.Matches}
	if c.microflow != nil {
		r.CacheEnabled = true
		r.Cache = c.microflow.Stats()
	}
	r.Generation = s.gen
	r.FleetGeneration = c.FleetGeneration()
	if c.fleet != nil {
		r.Replicas = make([]ReplicaReport, len(c.fleet.replicas))
		for i, rep := range c.fleet.replicas {
			rr := ReplicaReport{Generation: rep.gen.Load()}
			if rep.microflow != nil {
				rr.CacheEnabled = true
				rr.Cache = rep.microflow.Stats()
				r.CacheEnabled = true
				r.Cache.Hits += rr.Cache.Hits
				r.Cache.Misses += rr.Cache.Misses
				r.Cache.Evictions += rr.Cache.Evictions
				r.Cache.StaleGenerations += rr.Cache.StaleGenerations
			}
			r.Replicas[i] = rr
		}
	}
	for _, sh := range s.shards {
		sr := ShardReport{Rules: len(sh.installed)}
		for _, d := range ipSegmentDims {
			sr.IPEngineUsedBits += sh.engines[d].Footprint().NodeBits
		}
		if sh.packet != nil {
			sr.PacketEngineUsedBits = sh.packet.Footprint().NodeBits
		}
		r.Shards = append(r.Shards, sr)
	}
	return r
}
