package core

import (
	"sync"

	"sdnpc/internal/fivetuple"
)

// headerSampler is a bounded ring buffer of recently served headers — the
// traffic slice the advisor shadow-benches candidate engines on. It is built
// for the serving path's constraints, not for fidelity: offer performs no
// allocation, and it takes the ring lock only opportunistically (TryLock),
// dropping the sample when another core holds it. Lookups therefore never
// wait on the sampler, and concurrent offers degrade to "fewer samples", not
// contention — an acceptable trade for a statistical sample of the traffic
// mix.
//
// A nil *headerSampler is valid and inert, so the serving path offers
// unconditionally without a branch on configuration.
type headerSampler struct {
	mu sync.Mutex
	// buf is the ring storage; pos counts headers ever accepted, so
	// pos % len(buf) is the next write slot and min(pos, len(buf)) the
	// number of valid entries.
	buf []fivetuple.Header
	pos uint64
}

// newHeaderSampler builds a sampler holding up to capacity headers.
func newHeaderSampler(capacity int) *headerSampler {
	return &headerSampler{buf: make([]fivetuple.Header, capacity)}
}

// offer records one header unless the ring is momentarily busy.
func (hs *headerSampler) offer(h fivetuple.Header) {
	if hs == nil || !hs.mu.TryLock() {
		return
	}
	hs.buf[hs.pos%uint64(len(hs.buf))] = h
	hs.pos++
	hs.mu.Unlock()
}

// sample returns a copy of the currently held headers, oldest first. The
// copy means the caller can replay the slice at leisure while the serving
// path keeps overwriting the ring.
func (hs *headerSampler) sample() []fivetuple.Header {
	if hs == nil {
		return nil
	}
	hs.mu.Lock()
	defer hs.mu.Unlock()
	n := hs.pos
	if n > uint64(len(hs.buf)) {
		n = uint64(len(hs.buf))
	}
	out := make([]fivetuple.Header, n)
	start := hs.pos - n
	for i := uint64(0); i < n; i++ {
		out[i] = hs.buf[(start+i)%uint64(len(hs.buf))]
	}
	return out
}

// SampledHeaders returns a copy of the recently served headers captured by
// the traffic sampler (oldest first), or nil when sampling is disabled
// (Config.SampleHeaders == 0). This is the slice of live traffic the advisor
// replays against shadow candidates.
func (c *Classifier) SampledHeaders() []fivetuple.Header {
	return c.sampler.sample()
}

// SamplingEnabled reports whether the traffic sampler is configured.
func (c *Classifier) SamplingEnabled() bool { return c.sampler != nil }
