package core

import (
	"sdnpc/internal/engine"
	"sdnpc/internal/hw/memory"
	"sdnpc/internal/hw/pipeline"
	"sdnpc/internal/hw/synth"
	"sdnpc/internal/label"
)

// MemoryReport breaks down the architecture's memory consumption into the
// three block families of §III.D, distinguishing provisioned capacity (what
// the synthesised design reserves, Table V) from used bits (what the current
// rule set occupies, Table VI).
type MemoryReport struct {
	// IPEngine is the registry name of the engine serving the IP-segment
	// dimensions; Algorithm mirrors it on the legacy IPalg_s signal (0 when
	// the engine has no legacy value).
	IPEngine  string
	Algorithm memory.AlgSelect

	// IP algorithm blocks. IPEngineUsedBits is the node storage of the
	// active engine whatever its name; IPEngineProvisionedBits is the block
	// capacity that engine maps onto (the shared level-2 blocks for
	// shared-resident engines, the full MBT block family otherwise).
	// MBTUsedBits / BSTUsedBits remain populated when the corresponding
	// legacy engine is active.
	IPEngineUsedBits        int
	IPEngineProvisionedBits int
	MBTProvisionedBits      int
	MBTUsedBits             int
	BSTProvisionedBits      int
	BSTUsedBits             int

	// Other algorithm blocks.
	ProtocolLUTBits  int
	PortRegisterBits int

	// Whole-packet engine tier: the active packet engine's name ("" when
	// the field tier serves) and the storage its precomputed structure
	// consumes — the "Memory Space" column of Table I.
	PacketEngine         string
	PacketEngineUsedBits int

	// Update plane: the delta debt of the active packet structure. Deltas is
	// how many incremental ops it has absorbed since its last full build,
	// and Degradation the engine-reported drift from a fresh build (stale
	// DCFL combination entries, overfull HyperCuts leaves). Both are 0 for
	// non-incremental engines and right after a rebuild.
	PacketEngineDeltas      int
	PacketEngineDegradation float64

	// Microflow cache: the provisioned entry slots of the exact-match cache
	// fronting both tiers and their software footprint (entry structs plus
	// per-bucket eviction state). Both are 0 when the cache is disabled. The
	// cache is a software serving-path structure, not one of the modelled
	// hardware block memories, so these are reported beside — not inside —
	// the provisioned block-memory totals.
	CacheEntries int
	CacheBits    int

	// Labels memory block.
	LabelMemoryProvisionedBits int
	LabelMemoryUsedBits        int
	LabelTableBits             int

	// Rule Filter block.
	RuleFilterProvisionedBits int
	RuleFilterUsedBits        int

	RulesInstalled int
	RuleCapacity   int
}

// IPAlgorithmUsedBits returns the used node storage of the currently
// selected IP engine — the "Memory Space Required" column of Table VI.
func (m MemoryReport) IPAlgorithmUsedBits() int { return m.IPEngineUsedBits }

// TotalProvisionedBits returns the block-memory capacity of the synthesised
// design (the Table V / Table VII memory figure). Port registers live in
// logic registers, not block RAM, and are excluded.
func (m MemoryReport) TotalProvisionedBits() int {
	return m.MBTProvisionedBits + m.ProtocolLUTBits +
		m.LabelMemoryProvisionedBits + m.RuleFilterProvisionedBits
}

// TotalUsedBits returns the occupied block-memory bits, including the
// precomputed tables of an active whole-packet engine.
func (m MemoryReport) TotalUsedBits() int {
	return m.IPAlgorithmUsedBits() + m.ProtocolLUTBits +
		m.LabelMemoryUsedBits + m.LabelTableBits + m.RuleFilterUsedBits +
		m.PacketEngineUsedBits
}

// MemoryReport computes the current memory breakdown. Like Lookup, it reads
// one published snapshot, so it is safe to call while updates are in flight.
//
// Deprecated: use Report, which returns this breakdown in its Memory field
// alongside every other observability surface, from one snapshot read.
func (c *Classifier) MemoryReport() MemoryReport {
	return c.memoryReport(c.view())
}

// memoryReport computes the memory breakdown of one snapshot — the shared
// implementation behind Report and the deprecated MemoryReport.
func (c *Classifier) memoryReport(s *snapshot) MemoryReport {
	report := MemoryReport{
		IPEngine:           s.engineName,
		Algorithm:          s.alg,
		MBTProvisionedBits: 4 * c.cfg.mbtProvisionedBitsPerSegment(),
		BSTProvisionedBits: 4 * c.cfg.sharedLevel2BitsPerSegment(),
		ProtocolLUTBits:    s.engines[label.DimProtocol].Footprint().NodeBits,
		PortRegisterBits: s.engines[label.DimSrcPort].Footprint().NodeBits +
			s.engines[label.DimDstPort].Footprint().NodeBits,

		LabelMemoryProvisionedBits: c.cfg.LabelMemoryEntries * c.cfg.LabelMemoryEntryBits,
		LabelTableBits:             s.labels.StorageBits(),

		// The provisioned Rule Filter is the base hash-addressed block; the
		// extra capacity available under a shared-resident engine selection
		// reuses the freed MBT blocks, which are already counted in
		// MBTProvisionedBits.
		RuleFilterProvisionedBits: c.cfg.RuleFilterSlots() * c.cfg.RuleEntryBits,
		RuleFilterUsedBits:        s.filter.usedBits(),

		RulesInstalled: len(s.installed),
		RuleCapacity:   c.cfg.RuleCapacityFor(s.activeEngineName()),
	}
	report.PacketEngine = s.packetName
	if s.packet != nil {
		report.PacketEngineUsedBits = s.packet.Footprint().NodeBits
		report.PacketEngineDeltas = s.packetDeltas
		if inc, ok := s.packet.(engine.IncrementalPacketEngine); ok {
			report.PacketEngineDegradation = inc.UpdateCost().Degradation
		}
	}
	// Sharded table: the packet structures live in the shards, so the tier's
	// footprint and delta debt are their sums (degradation the worst shard).
	for _, sh := range s.shards {
		if sh.packet == nil {
			continue
		}
		report.PacketEngineUsedBits += sh.packet.Footprint().NodeBits
		report.PacketEngineDeltas += sh.packetDeltas
		if inc, ok := sh.packet.(engine.IncrementalPacketEngine); ok {
			if d := inc.UpdateCost().Degradation; d > report.PacketEngineDegradation {
				report.PacketEngineDegradation = d
			}
		}
	}
	if c.microflow != nil {
		report.CacheEntries = c.microflow.Capacity()
		report.CacheBits = c.microflow.FootprintBits()
	} else if c.fleet != nil {
		for _, rep := range c.fleet.replicas {
			if rep.microflow != nil {
				report.CacheEntries += rep.microflow.Capacity()
				report.CacheBits += rep.microflow.FootprintBits()
			}
		}
	}
	// Only the selected engine's node data is resident in the (shared)
	// memory blocks, so usage is reported for that engine alone.
	for _, d := range ipSegmentDims {
		fp := s.engines[d].Footprint()
		report.IPEngineUsedBits += fp.NodeBits
		report.LabelMemoryUsedBits += fp.LabelListBits
	}
	report.IPEngineProvisionedBits = report.MBTProvisionedBits
	if def, ok := engine.Get(s.engineName); ok && def.SharesLevel2 {
		report.IPEngineProvisionedBits = report.BSTProvisionedBits
	}
	switch s.alg {
	case memory.SelectMBT:
		report.MBTUsedBits = report.IPEngineUsedBits
	case memory.SelectBST:
		report.BSTUsedBits = report.IPEngineUsedBits
	}
	return report
}

// Pipeline returns the Fig. 3 lookup pipeline under the current engine
// selection, for latency and throughput reporting (Table VII). The IP stage
// takes its latency and initiation interval from the active engine's cost
// model.
func (c *Classifier) Pipeline() *pipeline.Pipeline {
	s := c.view()
	if s.part != nil && len(s.shards) > 0 {
		// Sharded table: the steered shard's pipeline is the serving
		// pipeline (every shard is structurally identical; shard 0 stands
		// for all of them).
		s = s.shards[0]
	}
	if s.packet != nil {
		// Packet tier: dispatch, one whole-packet structure walk, result
		// select — no label fetch and no Rule Filter stage.
		cost := s.packet.Cost()
		return pipeline.MustNew("lookup/"+s.packetName, c.cfg.ClockHz,
			pipeline.Stage{Name: "split+dispatch", LatencyCycles: CyclesDispatch, InitiationInterval: 1},
			pipeline.Stage{
				Name:               "packet lookup (" + s.packetName + ")",
				LatencyCycles:      cost.LookupCycles,
				InitiationInterval: cost.InitiationInterval,
			},
			pipeline.Stage{Name: "result select", LatencyCycles: CyclesPacketResult, InitiationInterval: 1},
		)
	}
	cost := s.engines[label.DimSrcIPHigh].Cost()
	ipStage := pipeline.Stage{
		Name:               "field lookup (" + s.engineName + ")",
		LatencyCycles:      cost.LookupCycles,
		InitiationInterval: cost.InitiationInterval,
	}
	return pipeline.MustNew("lookup/"+s.engineName, c.cfg.ClockHz,
		pipeline.Stage{Name: "split+dispatch", LatencyCycles: CyclesDispatch, InitiationInterval: 1},
		ipStage,
		pipeline.Stage{Name: "label fetch", LatencyCycles: CyclesLabelFetch, InitiationInterval: 1},
		pipeline.Stage{Name: "combine+rule filter", LatencyCycles: CyclesResult, InitiationInterval: 1},
	)
}

// ThroughputGbps returns the sustained line rate for the given packet size
// under the current algorithm selection.
func (c *Classifier) ThroughputGbps(packetBytes int) float64 {
	return c.Pipeline().ThroughputGbps(packetBytes)
}

// LookupsPerSecond returns the sustained lookup rate under the current
// algorithm selection.
func (c *Classifier) LookupsPerSecond() float64 {
	return c.Pipeline().LookupsPerSecond()
}

// memoryBlockCount returns the number of independently addressed block
// memories in the design: three trie levels per IP segment, one Labels block
// per label dimension, the protocol LUT and the Rule Filter.
func (c *Classifier) memoryBlockCount() int {
	return 3*len(ipSegmentDims) + label.NumDimensions + 1 + 1
}

// ArchSpec derives the synthesis-estimation input from the configured
// geometry (see internal/hw/synth).
func (c *Classifier) ArchSpec() synth.ArchSpec {
	report := c.MemoryReport()
	// The datapath carries the 104-bit header five-tuple, the 68-bit label
	// combination key, one label-list pointer and length per dimension and
	// the rule-filter result word.
	datapath := 104 + label.KeyBits + label.NumDimensions*(13+5) + c.cfg.RuleEntryBits
	return synth.ArchSpec{
		BlockMemoryBits:  report.TotalProvisionedBits(),
		MemoryBlocks:     c.memoryBlockCount(),
		PipelineStages:   CyclesDispatch + mbtLookupCycles() + CyclesLabelFetch + CyclesResult,
		DatapathBits:     datapath,
		RegisterFileBits: report.PortRegisterBits,
		Comparators:      2 * c.cfg.PortRegisters * 2, // low and high bound per register, two banks
		HashUnits:        1,
		HeaderBits:       104*2 + 128 + label.KeyBits, // lookup header, update word and key buses
	}
}

// Synthesise runs the Stratix V resource estimate for this architecture
// instance (Table V).
func (c *Classifier) Synthesise() (synth.Report, error) {
	return synth.Estimate(c.ArchSpec(), synth.StratixV())
}
