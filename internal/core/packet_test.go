package core

import (
	"testing"

	"sdnpc/internal/classbench"
	"sdnpc/internal/engine"
	"sdnpc/internal/fivetuple"
)

// TestEveryPacketEngineMatchesReferenceClassifier installs a generated
// filter set under every registered whole-packet engine and replays a trace,
// requiring exact agreement with the linear reference classifier — the
// packet tier must be as correct as the field tier, not just faster.
func TestEveryPacketEngineMatchesReferenceClassifier(t *testing.T) {
	rs := classbench.Generate(classbench.StandardConfig(classbench.ACL, classbench.Size1K))
	trace := classbench.GenerateTrace(rs, classbench.TraceConfig{
		Packets: 3000, Seed: 7, MatchFraction: 0.9, Locality: 0.3,
	})
	names := engine.PacketEngineNames()
	if len(names) < 3 {
		t.Fatalf("expected at least 3 registered packet engines, got %v", names)
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.PacketEngine = name
			c, err := New(cfg)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			if got := c.PacketEngineName(); got != name {
				t.Fatalf("PacketEngineName = %q, want %q", got, name)
			}
			if got := c.ActiveEngineName(); got != name {
				t.Fatalf("ActiveEngineName = %q, want %q", got, name)
			}
			if _, err := c.InstallRuleSet(rs); err != nil {
				t.Fatalf("InstallRuleSet: %v", err)
			}
			for _, h := range trace {
				wantIdx, wantOK := rs.Classify(h)
				got := c.Lookup(h)
				if got.Matched != wantOK || (wantOK && got.Priority != wantIdx) {
					t.Fatalf("Lookup(%s) = (%v, %d), reference (%v, %d)",
						h, got.Matched, got.Priority, wantOK, wantIdx)
				}
				if wantOK {
					want := rs.Rule(wantIdx)
					if got.Action != want.Action || got.ActionArg != want.ActionArg {
						t.Fatalf("Lookup(%s) action = (%v, %d), want (%v, %d)",
							h, got.Action, got.ActionArg, want.Action, want.ActionArg)
					}
				}
				// The packet tier bypasses the label machinery entirely.
				if got.LabelFetches != 0 || got.RuleFilterProbes != 0 || got.Combinations != 0 {
					t.Fatalf("Lookup(%s) touched the field-tier machinery: %+v", h, got)
				}
			}
			report := c.MemoryReport()
			if report.PacketEngine != name {
				t.Errorf("MemoryReport.PacketEngine = %q, want %q", report.PacketEngine, name)
			}
			if report.PacketEngineUsedBits <= 0 {
				t.Errorf("MemoryReport.PacketEngineUsedBits = %d, want > 0", report.PacketEngineUsedBits)
			}
			if c.ThroughputGbps(40) <= 0 || c.LookupsPerSecond() <= 0 {
				t.Errorf("non-positive modelled throughput under %s", name)
			}
		})
	}
}

// TestSelectEngineSwitchesTiers drives one loaded classifier through every
// selectable engine of both tiers via the unified SelectEngine, checking
// that the rules survive every switch and the verdicts stay exact.
func TestSelectEngineSwitchesTiers(t *testing.T) {
	rs := classbench.Generate(classbench.StandardConfig(classbench.ACL, classbench.Size1K))
	probe := classbench.GenerateTrace(rs, classbench.TraceConfig{
		Packets: 500, Seed: 13, MatchFraction: 0.95,
	})
	c := MustNew(DefaultConfig())
	if _, err := c.InstallRuleSet(rs); err != nil {
		t.Fatalf("InstallRuleSet: %v", err)
	}
	names := append(engine.SelectableNames(), "mbt")
	for _, name := range names {
		if err := c.SelectEngine(name); err != nil {
			t.Fatalf("SelectEngine(%s): %v", name, err)
		}
		if got := c.ActiveEngineName(); got != name {
			t.Fatalf("after SelectEngine(%s): ActiveEngineName = %q", name, got)
		}
		if c.RuleCount() != rs.Len() {
			t.Fatalf("after switch to %s: %d rules, want %d", name, c.RuleCount(), rs.Len())
		}
		for _, h := range probe {
			wantIdx, wantOK := rs.Classify(h)
			got := c.Lookup(h)
			if got.Matched != wantOK || (wantOK && got.Priority != wantIdx) {
				t.Fatalf("engine %s: Lookup(%s) = (%v, %d), reference (%v, %d)",
					name, h, got.Matched, got.Priority, wantOK, wantIdx)
			}
		}
	}
	// The field tier stayed programmed underneath the packet engines.
	if got := c.IPEngineName(); got != "mbt" {
		t.Errorf("IPEngineName = %q after the cycle, want mbt", got)
	}
	if got := c.PacketEngineName(); got != "" {
		t.Errorf("PacketEngineName = %q after selecting a field engine, want \"\"", got)
	}
}

// TestPacketTierIncrementalUpdates checks the clone-rebuild-swap update path
// of the packet tier: inserts and deletes through the normal update API must
// be reflected by the precomputed structure.
func TestPacketTierIncrementalUpdates(t *testing.T) {
	for _, name := range engine.PacketEngineNames() {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.PacketEngine = name
			c := MustNew(cfg)

			h := fivetuple.Header{
				SrcIP: fivetuple.MustParseIPv4("10.1.2.3"), DstIP: fivetuple.MustParseIPv4("192.168.1.1"),
				SrcPort: 1234, DstPort: 443, Protocol: fivetuple.ProtoTCP,
			}
			if r := c.Lookup(h); r.Matched {
				t.Fatalf("empty packet-tier classifier matched %+v", r)
			}

			wide := fivetuple.Wildcard(9, fivetuple.ActionDrop)
			narrow := fivetuple.Rule{
				SrcPrefix: fivetuple.MustParsePrefix("10.1.0.0/16"),
				DstPrefix: fivetuple.MustParsePrefix("192.168.0.0/16"),
				SrcPort:   fivetuple.WildcardPortRange(),
				DstPort:   fivetuple.ExactPort(443),
				Protocol:  fivetuple.ExactProtocol(fivetuple.ProtoTCP),
				Priority:  3, Action: fivetuple.ActionForward, ActionArg: 7,
			}
			// Install low-priority first: the rebuild must order best-first
			// regardless of installation order.
			if _, err := c.InsertRule(wide); err != nil {
				t.Fatalf("InsertRule(wide): %v", err)
			}
			if _, err := c.InsertRule(narrow); err != nil {
				t.Fatalf("InsertRule(narrow): %v", err)
			}
			r := c.Lookup(h)
			if !r.Matched || r.Priority != 3 || r.Action != fivetuple.ActionForward || r.ActionArg != 7 {
				t.Fatalf("after inserts: Lookup = %+v, want the priority-3 forward", r)
			}

			if _, err := c.DeleteRule(narrow); err != nil {
				t.Fatalf("DeleteRule(narrow): %v", err)
			}
			r = c.Lookup(h)
			if !r.Matched || r.Priority != 9 || r.Action != fivetuple.ActionDrop {
				t.Fatalf("after delete: Lookup = %+v, want the priority-9 drop", r)
			}

			// Batched path.
			if _, _, err := c.ApplyUpdates([]UpdateOp{
				{Rule: narrow},
				{Delete: true, Rule: wide},
			}); err != nil {
				t.Fatalf("ApplyUpdates: %v", err)
			}
			r = c.Lookup(h)
			if !r.Matched || r.Priority != 3 {
				t.Fatalf("after batch: Lookup = %+v, want the priority-3 forward", r)
			}
			if c.RuleCount() != 1 {
				t.Fatalf("RuleCount = %d, want 1", c.RuleCount())
			}
		})
	}
}

// TestSelectEngineFailureLeavesServingStateUntouched drives the unified
// switch into a capacity failure and requires the classifier to keep
// serving exactly what it served before: a failed SelectEngine must not
// drop the packet tier or change the field engine.
func TestSelectEngineFailureLeavesServingStateUntouched(t *testing.T) {
	cfg := DefaultConfig()
	// Shrink the base Rule Filter so the bst configuration (base + freed MBT
	// blocks) holds rules that the mbt configuration (base only) cannot.
	cfg.RuleFilterAddressBits = 4
	cfg.IPEngine = "bst"
	cfg.PacketEngine = "hypercuts"
	c := MustNew(cfg)

	mbtCapacity := cfg.RuleCapacityFor("mbt")
	rules := make([]fivetuple.Rule, 0, mbtCapacity+4)
	for i := 0; i < mbtCapacity+4; i++ {
		r := fivetuple.Wildcard(i, fivetuple.ActionForward)
		r.DstPrefix = fivetuple.Prefix{Addr: fivetuple.IPv4(uint32(i) << 16), Len: 16}
		r.ActionArg = uint32(i + 1)
		rules = append(rules, r)
	}
	for _, r := range rules {
		if _, err := c.InsertRule(r); err != nil {
			t.Fatalf("InsertRule(%d): %v", r.Priority, err)
		}
	}

	probe := fivetuple.Header{DstIP: fivetuple.IPv4(3 << 16), SrcPort: 1, DstPort: 2, Protocol: fivetuple.ProtoTCP}
	before := c.Lookup(probe)

	if err := c.SelectEngine("mbt"); err == nil {
		t.Fatal("SelectEngine(mbt) should fail: installed rules exceed the mbt capacity")
	}
	if got := c.ActiveEngineName(); got != "hypercuts" {
		t.Errorf("after failed switch: ActiveEngineName = %q, want hypercuts", got)
	}
	if got := c.IPEngineName(); got != "bst" {
		t.Errorf("after failed switch: IPEngineName = %q, want bst", got)
	}
	after := c.Lookup(probe)
	if after != before {
		t.Errorf("after failed switch: Lookup = %+v, want the pre-switch %+v", after, before)
	}
}

func TestConfigPacketEngineValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PacketEngine = "no-such-engine"
	if _, err := New(cfg); err == nil {
		t.Error("unknown PacketEngine should fail validation")
	}
	cfg.PacketEngine = "mbt"
	if _, err := New(cfg); err == nil {
		t.Error("a field engine name in PacketEngine should fail validation")
	}

	c := MustNew(DefaultConfig())
	if err := c.SelectPacketEngine("segtrie"); err == nil {
		t.Error("SelectPacketEngine should reject field engine names")
	}
	if err := c.SelectEngine("portreg"); err == nil {
		t.Error("SelectEngine should reject non-selectable engines")
	}
	if err := c.SelectPacketEngine(""); err != nil {
		t.Errorf("SelectPacketEngine(\"\") on the field tier should be a no-op: %v", err)
	}
}
