//go:build race

package core

// raceEnabled reports whether the race detector is compiled in. The
// zero-allocation tests skip under it: race instrumentation makes sync.Pool
// drop puts at random, so testing.AllocsPerRun measures the instrumentation,
// not the serving path. The CI allocation gate (scripts/check_allocs.sh)
// runs without -race.
const raceEnabled = true
