package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"sdnpc/internal/cache"
	"sdnpc/internal/engine"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/label"
)

// ipSegmentDims lists the four IP-segment label dimensions in a fixed order.
var ipSegmentDims = []label.Dimension{
	label.DimSrcIPHigh, label.DimSrcIPLow, label.DimDstIPHigh, label.DimDstIPLow,
}

// segValue is the 16-bit segment slice of a rule's IP prefix in one segment
// dimension.
type segValue struct {
	value uint16
	bits  uint8
}

func (s segValue) key() string { return fmt.Sprintf("%04x/%d", s.value, s.bits) }

// fieldUse tracks which rule priorities currently use a labelled field value
// in one dimension, so that the label list order can be maintained when
// rules are added and removed (§IV.A: "the lists of labels are reorganized
// according to the priority rule").
type fieldUse struct {
	counts map[int]int
	best   int
}

func newFieldUse() *fieldUse {
	return &fieldUse{counts: make(map[int]int), best: int(^uint(0) >> 1)}
}

func (u *fieldUse) add(priority int) {
	u.counts[priority]++
	if priority < u.best {
		u.best = priority
	}
}

// remove deletes one use at the given priority and returns the new best
// priority together with whether the best changed.
func (u *fieldUse) remove(priority int) (newBest int, changed bool) {
	u.counts[priority]--
	if u.counts[priority] <= 0 {
		delete(u.counts, priority)
	}
	if priority != u.best {
		return u.best, false
	}
	newBest = int(^uint(0) >> 1)
	for p := range u.counts {
		if p < newBest {
			newBest = p
		}
	}
	changed = newBest != u.best
	u.best = newBest
	return newBest, changed
}

func (u *fieldUse) empty() bool { return len(u.counts) == 0 }

func (u *fieldUse) clone() *fieldUse {
	c := &fieldUse{counts: make(map[int]int, len(u.counts)), best: u.best}
	for p, n := range u.counts {
		c.counts[p] = n
	}
	return c
}

// installedRule is the software shadow of one hardware rule: what the
// controller needs to re-programme the data plane after an algorithm switch
// and to undo an installation.
type installedRule struct {
	rule fivetuple.Rule
	key  label.CombinationKey
	// ext marks an extended rule (Rule.Dims() != 0): it bypassed the field
	// tier — no labels, no filter entry, key is zero — and exists only in
	// this shadow and the whole-packet engine.
	ext bool
}

// Classifier is one instance of the configurable packet classification
// architecture.
//
// Every header dimension is served by one pluggable engine.FieldEngine,
// built through the engine registry: the four IP-segment dimensions run the
// engine named by the IPEngine configuration (switchable at run time via
// SelectIPEngine — the generalised IPalg_s signal), the port dimensions run
// the register bank and the protocol dimension runs the LUT. The classifier
// itself never dispatches on an algorithm name; every per-dimension call
// goes through the FieldEngine interface.
//
// Classifier is safe for concurrent use. The serving path is RCU-style: the
// complete data path lives in an immutable snapshot behind an atomic
// pointer, so any number of goroutines can call Lookup and LookupBatch
// lock-free. Updates (InsertRule, DeleteRule, InstallRuleSet,
// SelectIPEngine) serialise on an internal mutex, build the next snapshot
// off to the side — cloning the current one and mutating the private copy —
// and publish it with a single atomic swap. A lookup that raced an update
// returns a result consistent with either the old or the new rule set,
// never a half-applied mixture; this mirrors the modelled hardware, where
// the controller re-downloads memory images and flips them in atomically.
type Classifier struct {
	cfg Config

	// mu serialises writers; readers never take it.
	mu sync.Mutex

	// snap is the published snapshot read by the lock-free lookup path.
	snap atomic.Pointer[snapshot]

	// gen numbers published snapshots. publish assigns the next value to
	// every snapshot it stores, so two published snapshots never share a
	// generation and microflow-cache entries can be keyed by it.
	gen atomic.Uint64

	// microflow is the optional exact-match cache in front of both engine
	// tiers (nil when Config.CacheCapacity is 0). It is shared across
	// snapshots; generation matching keeps it coherent through swaps.
	microflow *cache.Cache[Result]

	// fleet is the replicated serving layer (nil when Config.Replicas <= 1):
	// per-worker snapshot clones plus private caches that publish fans out
	// to. When it is set, readers serve from a replica instead of snap.
	fleet *fleet

	// sampler captures a ring of recently served headers for the advisor's
	// shadow benches (nil when Config.SampleHeaders is 0 — a nil sampler is
	// inert, so the serving path offers unconditionally).
	sampler *headerSampler

	stats statsCollector
}

// New creates a classifier with the given configuration.
func New(cfg Config) (*Classifier, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	name := cfg.IPEngineName()
	def, ok := engine.Get(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown field engine %q", name)
	}
	c := &Classifier{cfg: cfg}
	if cfg.Replicas > 1 {
		// Replicated fleet: the cache budget lives inside the replicas (one
		// private cache each), not in a shared front cache readers would
		// contend on.
		c.fleet = newFleet(&c.cfg)
	} else if cfg.CacheCapacity > 0 {
		c.microflow = cache.New[Result](cfg.CacheShards, cfg.CacheCapacity)
	}
	if cfg.SampleHeaders > 0 {
		c.sampler = newHeaderSampler(cfg.SampleHeaders)
	}
	s, err := newSnapshot(&c.cfg, name, def.Legacy)
	if err != nil {
		return nil, err
	}
	if cfg.PacketEngine != "" {
		s.packetName = cfg.PacketEngine
		if _, err := s.syncPacket(&c.cfg); err != nil {
			return nil, err
		}
	}
	c.publish(s)
	return c, nil
}

// MustNew is like New but panics on error.
func MustNew(cfg Config) *Classifier {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// view returns the published snapshot. The returned snapshot is immutable
// (up to atomic counters) and remains valid even if an update publishes a
// successor while the caller is still reading it.
func (c *Classifier) view() *snapshot { return c.snap.Load() }

// publish prepares a snapshot, stamps it with the next generation and makes
// it the one served to readers. The fresh generation is what retires every
// microflow-cache entry filled under predecessors: entries are only served
// to readers of the generation that filled them, so the swap invalidates the
// cache in O(1) with no flush.
//
// With a replicated fleet, the publish additionally fans the snapshot out to
// every replica before returning; the fleet generation advances last, so a
// publish is complete only when every replica serves it.
func (c *Classifier) publish(s *snapshot) {
	s.prepare()
	s.gen = c.gen.Add(1)
	c.snap.Store(s)
	if c.fleet != nil {
		c.fleet.fanOut(&c.cfg, s)
	}
}

// Generation returns the generation of the published snapshot.
func (c *Classifier) Generation() uint64 { return c.view().gen }

// FleetGeneration returns the generation every serving replica has reached
// (the publish generation when no fleet is configured). Equality with
// Generation means the last publish's fan-out has completed on all replicas.
func (c *Classifier) FleetGeneration() uint64 {
	if c.fleet == nil {
		return c.view().gen
	}
	return c.fleet.gen.Load()
}

// CacheEnabled reports whether the microflow cache is configured (shared or
// per replica).
func (c *Classifier) CacheEnabled() bool {
	return c.microflow != nil || (c.fleet != nil && c.cfg.CacheCapacity > 0)
}

// CacheStats returns the microflow cache counters; ok is false when the
// cache is disabled.
//
// Deprecated: use Report, which returns these counters in its Cache field
// (with CacheEnabled) alongside every other observability surface.
func (c *Classifier) CacheStats() (stats cache.Stats, ok bool) {
	if c.microflow == nil {
		return cache.Stats{}, false
	}
	return c.microflow.Stats(), true
}

// Config returns the classifier configuration. It takes the writer mutex so
// the copy is consistent with any concurrent SetUpdatePolicy.
func (c *Classifier) Config() Config {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg
}

// SetUpdatePolicy adjusts the packet tier's delta-vs-rebuild policy at run
// time — the WithUpdatePolicy knobs, applied to a live classifier. The new
// bounds govern from the next publish; in-flight publishes complete under
// the old policy. This is one of the two atomic apply paths the advisor's
// recommendations go through (the other is SelectEngine). The zero/negative
// conventions of Config.RebuildAfterDeltas and Config.DegradationThreshold
// apply unchanged.
func (c *Classifier) SetUpdatePolicy(rebuildAfterDeltas int, degradationThreshold float64) error {
	if math.IsNaN(degradationThreshold) {
		return fmt.Errorf("core: degradation threshold must not be NaN")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.RebuildAfterDeltas = rebuildAfterDeltas
	c.cfg.DegradationThreshold = degradationThreshold
	return nil
}

// IPEngineName returns the registry name of the engine currently serving the
// IP-segment dimensions (programmed even while the packet tier serves).
func (c *Classifier) IPEngineName() string { return c.view().engineName }

// PacketEngineName returns the registry name of the active whole-packet
// engine, or "" when the field tier is serving.
func (c *Classifier) PacketEngineName() string { return c.view().packetName }

// ActiveEngineName returns the name of the engine actually answering
// lookups: the whole-packet engine when one is selected, the IP-segment
// field engine otherwise.
func (c *Classifier) ActiveEngineName() string {
	return c.view().activeEngineName()
}

// RuleCount returns the number of installed rules.
func (c *Classifier) RuleCount() int { return len(c.view().installed) }

// RuleCapacity returns the rule capacity under the engine actually answering
// lookups: capacity follows the serving tier, so a packet-tier selection
// reports the packet engine's capacity even though the field tier stays
// programmed underneath.
func (c *Classifier) RuleCapacity() int {
	return c.cfg.RuleCapacityFor(c.view().activeEngineName())
}

// InstalledRules returns a copy of the installed rules in installation
// order.
func (c *Classifier) InstalledRules() []fivetuple.Rule {
	return c.view().installedRules()
}

// SelectIPEngine drives the generalised IPalg_s signal (§III.A): it builds a
// fresh data path around the named registered engine — new engines, new
// shared memory blocks (Fig. 5), a re-provisioned rule filter — replays the
// installed rules onto it, and atomically swaps it in, exactly as the
// software controller would re-download the memory images after a
// configuration change. Lookups racing the switch are served by the old
// data path until the swap; none ever observes a half-programmed engine.
// Selecting the already-active engine is a no-op.
func (c *Classifier) SelectIPEngine(name string) error {
	def, ok := engine.Get(name)
	if !ok {
		return fmt.Errorf("core: unknown field engine %q (registered: %v)", name, engine.IPEngineNames())
	}
	if !def.IPCapable {
		return fmt.Errorf("core: engine %q cannot serve the IP-segment dimensions", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.selectIPEngineLocked(name, def, false)
}

// selectIPEngineLocked performs a field-engine switch (optionally dropping
// an active packet tier in the same swap) with c.mu held. Everything is
// staged on an unpublished snapshot, so any failure leaves the serving
// state exactly as it was.
func (c *Classifier) selectIPEngineLocked(name string, def engine.Definition, dropPacket bool) error {
	current := c.view()
	packetName := current.packetName
	if dropPacket {
		packetName = ""
	}
	// An engine switch must keep every installed rule servable: extended
	// rules live only in the packet tier, so the switch target must still
	// cover their dimensions.
	if need := current.requiredDims(); need != 0 {
		if packetName == "" {
			return fmt.Errorf("%w: installed rules require dimensions %s but the %s field tier serves only the IPv4 five-tuple",
				ErrDimsUnsupported, need, name)
		}
		if have := engine.Dims(packetName); !have.Covers(need) {
			return fmt.Errorf("%w: installed rules require dimensions %s but engine %q declares %s",
				ErrDimsUnsupported, need, packetName, have)
		}
	}
	if name == current.engineName {
		if packetName == current.packetName {
			return nil
		}
		// Same field engine; only the packet tier is being dropped.
		next, err := current.clone(&c.cfg)
		if err != nil {
			return err
		}
		next.packetName = packetName
		if _, err := next.syncPacket(&c.cfg); err != nil {
			return err
		}
		c.publish(next)
		return nil
	}
	if len(current.installed) > c.cfg.RuleCapacityFor(name) {
		return fmt.Errorf("core: %d installed rules exceed the %d-rule capacity of the %s configuration",
			len(current.installed), c.cfg.RuleCapacityFor(name), name)
	}
	next, err := newSnapshot(&c.cfg, name, def.Legacy)
	if err != nil {
		return err
	}
	next.packetName = packetName
	for _, r := range current.installedRules() {
		if _, err := next.insertRule(&c.cfg, r); err != nil {
			return fmt.Errorf("core: re-programming after engine switch: %w", err)
		}
	}
	// A surviving packet tier keeps serving from the same whole-packet
	// structure: the rule set is unchanged by the replay, so the built
	// structure is reused through a cheap Clone instead of recomputed. The
	// replay queued one pending mutation per rule; those are already
	// reflected in the reused structure, so they are dropped — along with
	// its carried delta debt, which the amortisation policy keeps bounding.
	if packetName != "" && packetName == current.packetName && current.packet != nil {
		next.packet = current.packet.Clone()
		next.packetRules = current.packetRules
		next.packetPending = nil
		next.packetDeltas = current.packetDeltas
	}
	if _, err := next.syncPacket(&c.cfg); err != nil {
		return err
	}
	c.publish(next)
	return nil
}

// SelectPacketEngine switches the classifier between engine tiers at run
// time. A non-empty name selects the registered whole-packet engine: the
// installed rules are compiled into its precomputed structure on a private
// snapshot and swapped in atomically, after which lookups bypass the
// per-field engines and the label combination entirely. The empty name
// returns to the field tier, which stayed programmed underneath. Lookups
// racing the switch are served by the old tier until the swap.
func (c *Classifier) SelectPacketEngine(name string) error {
	if name != "" {
		def, ok := engine.Get(name)
		if !ok || def.PacketFactory == nil {
			return fmt.Errorf("core: unknown packet engine %q (registered: %v)", name, engine.PacketEngineNames())
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	current := c.view()
	if current.packetName == name {
		return nil
	}
	// The target tier must cover every installed rule's dimensions —
	// extended rules cannot return to the field tier or move onto an engine
	// that declined their dimensions.
	if need := current.requiredDims(); need != 0 {
		if name == "" {
			return fmt.Errorf("%w: installed rules require dimensions %s but the field tier serves only the IPv4 five-tuple",
				ErrDimsUnsupported, need)
		}
		if have := engine.Dims(name); !have.Covers(need) {
			return fmt.Errorf("%w: installed rules require dimensions %s but engine %q declares %s",
				ErrDimsUnsupported, need, name, have)
		}
	}
	next, err := current.clone(&c.cfg)
	if err != nil {
		return err
	}
	next.packetName = name
	next.packet = nil
	next.packetRules = nil
	next.packetPending = nil
	next.packetDeltas = 0
	if _, err := next.syncPacket(&c.cfg); err != nil {
		return err
	}
	c.publish(next)
	return nil
}

// SelectEngine selects any registered serving engine by name, whichever
// tier it belongs to: a whole-packet engine name activates the packet tier,
// an IP-capable field engine name deactivates it and switches the
// IP-segment engines — as one atomic swap, so a failed switch never leaves
// the classifier serving a different engine than before the call. This is
// the engine selection the facade, the engine flags and the OpenFlow
// set-engine message resolve through.
func (c *Classifier) SelectEngine(name string) error {
	isPacket, ok := engine.Selectable(name)
	if !ok {
		return fmt.Errorf("core: unknown engine %q (selectable: %v)", name, engine.SelectableNames())
	}
	if isPacket {
		return c.SelectPacketEngine(name)
	}
	def, _ := engine.Get(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.selectIPEngineLocked(name, def, true)
}

// segmentValues returns the four IP-segment slices of a rule.
func segmentValues(r fivetuple.Rule) map[label.Dimension]segValue {
	srcHi, srcHiBits := r.SrcPrefix.HighSegment()
	srcLo, srcLoBits := r.SrcPrefix.LowSegment()
	dstHi, dstHiBits := r.DstPrefix.HighSegment()
	dstLo, dstLoBits := r.DstPrefix.LowSegment()
	return map[label.Dimension]segValue{
		label.DimSrcIPHigh: {value: srcHi, bits: srcHiBits},
		label.DimSrcIPLow:  {value: srcLo, bits: srcLoBits},
		label.DimDstIPHigh: {value: dstHi, bits: dstHiBits},
		label.DimDstIPLow:  {value: dstLo, bits: dstLoBits},
	}
}

// fieldValueKey returns the canonical label-table key of a rule's field value
// in one dimension.
func fieldValueKey(d label.Dimension, r fivetuple.Rule) string {
	switch d {
	case label.DimSrcIPHigh, label.DimSrcIPLow, label.DimDstIPHigh, label.DimDstIPLow:
		return segmentValues(r)[d].key()
	case label.DimSrcPort:
		return r.SrcPort.String()
	case label.DimDstPort:
		return r.DstPort.String()
	case label.DimProtocol:
		if r.Protocol.IsWildcard() {
			return "*"
		}
		// Key on the full value/mask pair. Partially masked protocols never
		// reach the field tier (they are extended rules), but the key must
		// not collapse distinct matches onto one label regardless.
		return r.Protocol.String()
	default:
		return ""
	}
}

// fieldValue extracts the match condition of a rule in one dimension — the
// data handed to that dimension's engine. This is pure header-format
// extraction; which algorithm stores the value is decided by the engine
// registry, not here.
func fieldValue(d label.Dimension, r fivetuple.Rule) engine.Value {
	switch d {
	case label.DimSrcIPHigh, label.DimSrcIPLow, label.DimDstIPHigh, label.DimDstIPLow:
		seg := segmentValues(r)[d]
		return engine.Prefix(uint32(seg.value), seg.bits)
	case label.DimSrcPort:
		return engine.Range(uint32(r.SrcPort.Lo), uint32(r.SrcPort.Hi))
	case label.DimDstPort:
		return engine.Range(uint32(r.DstPort.Lo), uint32(r.DstPort.Hi))
	case label.DimProtocol:
		if r.Protocol.IsWildcard() {
			return engine.Wildcard()
		}
		return engine.Exact(uint32(r.Protocol.Value))
	default:
		return engine.Value{}
	}
}
