package core

import (
	"fmt"

	"sdnpc/internal/algo/bst"
	"sdnpc/internal/algo/lut"
	"sdnpc/internal/algo/mbt"
	"sdnpc/internal/algo/portreg"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/hw/memory"
	"sdnpc/internal/label"
)

// ipSegmentDims lists the four IP-segment label dimensions in a fixed order.
var ipSegmentDims = []label.Dimension{
	label.DimSrcIPHigh, label.DimSrcIPLow, label.DimDstIPHigh, label.DimDstIPLow,
}

// segValue is the 16-bit segment slice of a rule's IP prefix in one segment
// dimension.
type segValue struct {
	value uint16
	bits  uint8
}

func (s segValue) key() string { return fmt.Sprintf("%04x/%d", s.value, s.bits) }

// fieldUse tracks which rule priorities currently use a labelled field value
// in one dimension, so that the label list order can be maintained when
// rules are added and removed (§IV.A: "the lists of labels are reorganized
// according to the priority rule").
type fieldUse struct {
	counts map[int]int
	best   int
}

func newFieldUse() *fieldUse {
	return &fieldUse{counts: make(map[int]int), best: int(^uint(0) >> 1)}
}

func (u *fieldUse) add(priority int) {
	u.counts[priority]++
	if priority < u.best {
		u.best = priority
	}
}

// remove deletes one use at the given priority and returns the new best
// priority together with whether the best changed.
func (u *fieldUse) remove(priority int) (newBest int, changed bool) {
	u.counts[priority]--
	if u.counts[priority] <= 0 {
		delete(u.counts, priority)
	}
	if priority != u.best {
		return u.best, false
	}
	newBest = int(^uint(0) >> 1)
	for p := range u.counts {
		if p < newBest {
			newBest = p
		}
	}
	changed = newBest != u.best
	u.best = newBest
	return newBest, changed
}

func (u *fieldUse) empty() bool { return len(u.counts) == 0 }

// installedRule is the software shadow of one hardware rule: what the
// controller needs to re-programme the data plane after an algorithm switch
// and to undo an installation.
type installedRule struct {
	rule fivetuple.Rule
	key  label.CombinationKey
}

// Classifier is one instance of the configurable packet classification
// architecture.
//
// Classifier is not safe for concurrent use: in the modelled hardware the
// lookup data path and the update interface are time-multiplexed by the
// controller, and the software model mirrors that by requiring external
// serialisation.
type Classifier struct {
	cfg Config
	alg memory.AlgSelect

	labels    *label.Bank
	fieldUses map[label.Dimension]map[string]*fieldUse

	mbtEngines map[label.Dimension]*mbt.Engine
	bstEngines map[label.Dimension]*bst.Engine
	srcPorts   *portreg.Bank
	dstPorts   *portreg.Bank
	protoLUT   *lut.Table

	// sharedL2 models the IPalg_s-selected shared blocks of Fig. 5, one per
	// IP segment.
	sharedL2 map[label.Dimension]*memory.SharedBlock

	filter    *ruleFilter
	installed []installedRule

	stats Stats
}

// New creates a classifier with the given configuration.
func New(cfg Config) (*Classifier, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Classifier{cfg: cfg, alg: cfg.IPAlgorithm}
	c.resetDataPath()
	return c, nil
}

// MustNew is like New but panics on error.
func MustNew(cfg Config) *Classifier {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// resetDataPath (re)builds every engine, label table and the rule filter for
// the current algorithm selection, leaving the installed-rule shadow intact.
func (c *Classifier) resetDataPath() {
	c.labels = label.NewBank()
	c.fieldUses = make(map[label.Dimension]map[string]*fieldUse, label.NumDimensions)
	for _, d := range label.Dimensions() {
		c.fieldUses[d] = make(map[string]*fieldUse)
	}

	c.mbtEngines = make(map[label.Dimension]*mbt.Engine, len(ipSegmentDims))
	c.bstEngines = make(map[label.Dimension]*bst.Engine, len(ipSegmentDims))
	if c.sharedL2 == nil {
		c.sharedL2 = make(map[label.Dimension]*memory.SharedBlock, len(ipSegmentDims))
	}
	for _, d := range ipSegmentDims {
		mbtCfg := mbt.SegmentConfig()
		c.mbtEngines[d] = mbt.MustNew(mbtCfg)
		c.bstEngines[d] = bst.MustNew(bst.SegmentConfig())
		if c.sharedL2[d] == nil {
			block := memory.NewBlock(fmt.Sprintf("shared-l2/%s", d), DefaultMBTEntryBits, c.cfg.MBTLevel2Entries)
			c.sharedL2[d] = memory.NewSharedBlock(block, c.alg)
		} else {
			c.sharedL2[d].Select(c.alg)
		}
	}
	c.srcPorts = portreg.MustNew(c.cfg.PortRegisters, label.DimSrcPort.Bits())
	c.dstPorts = portreg.MustNew(c.cfg.PortRegisters, label.DimDstPort.Bits())
	c.protoLUT = lut.MustNew(DefaultProtocolLabelBits)
	c.filter = newRuleFilter(c.cfg.RuleFilterAddressBits, c.cfg.RuleCapacity(c.alg), c.cfg.RuleEntryBits)
}

// Config returns the classifier configuration.
func (c *Classifier) Config() Config { return c.cfg }

// IPAlgorithm returns the current setting of the IPalg_s signal.
func (c *Classifier) IPAlgorithm() memory.AlgSelect { return c.alg }

// RuleCount returns the number of installed rules.
func (c *Classifier) RuleCount() int { return len(c.installed) }

// RuleCapacity returns the rule capacity under the current algorithm
// selection.
func (c *Classifier) RuleCapacity() int { return c.cfg.RuleCapacity(c.alg) }

// InstalledRules returns a copy of the installed rules in installation
// order.
func (c *Classifier) InstalledRules() []fivetuple.Rule {
	out := make([]fivetuple.Rule, len(c.installed))
	for i, ir := range c.installed {
		out[i] = ir.rule
	}
	return out
}

// SelectIPAlgorithm drives the IPalg_s signal (§III.A): it reconfigures the
// IP lookup algorithm, re-purposes the shared memory blocks (Fig. 5) and
// re-programmes the data path with the installed rules, exactly as the
// software controller would re-download the memory images after a
// configuration change. Selecting the already-active algorithm is a no-op.
func (c *Classifier) SelectIPAlgorithm(alg memory.AlgSelect) error {
	if alg != memory.SelectMBT && alg != memory.SelectBST {
		return fmt.Errorf("core: unknown IP algorithm selection %v", alg)
	}
	if alg == c.alg {
		return nil
	}
	if len(c.installed) > c.cfg.RuleCapacity(alg) {
		return fmt.Errorf("core: %d installed rules exceed the %d-rule capacity of the %s configuration",
			len(c.installed), c.cfg.RuleCapacity(alg), alg)
	}
	rules := c.InstalledRules()
	c.alg = alg
	c.installed = nil
	c.resetDataPath()
	for _, r := range rules {
		if _, err := c.InsertRule(r); err != nil {
			return fmt.Errorf("core: re-programming after algorithm switch: %w", err)
		}
	}
	return nil
}

// segmentValues returns the four IP-segment slices of a rule.
func segmentValues(r fivetuple.Rule) map[label.Dimension]segValue {
	srcHi, srcHiBits := r.SrcPrefix.HighSegment()
	srcLo, srcLoBits := r.SrcPrefix.LowSegment()
	dstHi, dstHiBits := r.DstPrefix.HighSegment()
	dstLo, dstLoBits := r.DstPrefix.LowSegment()
	return map[label.Dimension]segValue{
		label.DimSrcIPHigh: {value: srcHi, bits: srcHiBits},
		label.DimSrcIPLow:  {value: srcLo, bits: srcLoBits},
		label.DimDstIPHigh: {value: dstHi, bits: dstHiBits},
		label.DimDstIPLow:  {value: dstLo, bits: dstLoBits},
	}
}

// fieldValueKey returns the canonical label-table key of a rule's field value
// in one dimension.
func fieldValueKey(d label.Dimension, r fivetuple.Rule) string {
	switch d {
	case label.DimSrcIPHigh, label.DimSrcIPLow, label.DimDstIPHigh, label.DimDstIPLow:
		return segmentValues(r)[d].key()
	case label.DimSrcPort:
		return r.SrcPort.String()
	case label.DimDstPort:
		return r.DstPort.String()
	case label.DimProtocol:
		if r.Protocol.IsWildcard() {
			return "*"
		}
		return fivetuple.ExactProtocol(r.Protocol.Value).String()
	default:
		return ""
	}
}

// installFieldValue writes a newly labelled field value into the appropriate
// lookup engine. It returns the number of engine memory writes.
func (c *Classifier) installFieldValue(d label.Dimension, r fivetuple.Rule, lbl label.Label, priority int) (int, error) {
	switch d {
	case label.DimSrcIPHigh, label.DimSrcIPLow, label.DimDstIPHigh, label.DimDstIPLow:
		seg := segmentValues(r)[d]
		if c.alg == memory.SelectBST {
			// BST interval nodes live in the shared level-2 block
			// (Fig. 5). Workloads whose unique segment values exceed the
			// published geometry overflow that block; the model accepts
			// them (so arbitrary filter sets can be evaluated) and the
			// overflow is visible in MemoryReport, where BSTUsedBits may
			// exceed BSTProvisionedBits.
			return c.bstEngines[d].Insert(uint32(seg.value), seg.bits, lbl, priority)
		}
		return c.mbtEngines[d].Insert(uint32(seg.value), seg.bits, lbl, priority)
	case label.DimSrcPort:
		return c.srcPorts.Insert(r.SrcPort, lbl, priority)
	case label.DimDstPort:
		return c.dstPorts.Insert(r.DstPort, lbl, priority)
	case label.DimProtocol:
		if r.Protocol.IsWildcard() {
			return c.protoLUT.InsertWildcard(lbl, priority), nil
		}
		return c.protoLUT.InsertExact(r.Protocol.Value, lbl, priority), nil
	default:
		return 0, fmt.Errorf("core: unknown dimension %v", d)
	}
}

// removeFieldValue deletes a field value from the appropriate engine when
// its last rule is gone.
func (c *Classifier) removeFieldValue(d label.Dimension, r fivetuple.Rule, lbl label.Label) (int, error) {
	switch d {
	case label.DimSrcIPHigh, label.DimSrcIPLow, label.DimDstIPHigh, label.DimDstIPLow:
		seg := segmentValues(r)[d]
		if c.alg == memory.SelectBST {
			return c.bstEngines[d].Remove(uint32(seg.value), seg.bits, lbl)
		}
		return c.mbtEngines[d].Remove(uint32(seg.value), seg.bits, lbl)
	case label.DimSrcPort:
		return c.srcPorts.Remove(r.SrcPort)
	case label.DimDstPort:
		return c.dstPorts.Remove(r.DstPort)
	case label.DimProtocol:
		if r.Protocol.IsWildcard() {
			return c.protoLUT.RemoveWildcard()
		}
		return c.protoLUT.RemoveExact(r.Protocol.Value)
	default:
		return 0, fmt.Errorf("core: unknown dimension %v", d)
	}
}

// reprioritiseFieldValue re-installs an IP-segment field value at a new best
// priority after the rule that defined the old best priority was deleted.
// Port and protocol engines order their lists positionally (specificity), so
// only the IP engines need this.
func (c *Classifier) reprioritiseFieldValue(d label.Dimension, r fivetuple.Rule, lbl label.Label, newBest int) error {
	switch d {
	case label.DimSrcIPHigh, label.DimSrcIPLow, label.DimDstIPHigh, label.DimDstIPLow:
		seg := segmentValues(r)[d]
		if c.alg == memory.SelectBST {
			if _, err := c.bstEngines[d].Remove(uint32(seg.value), seg.bits, lbl); err != nil {
				return err
			}
			_, err := c.bstEngines[d].Insert(uint32(seg.value), seg.bits, lbl, newBest)
			return err
		}
		if _, err := c.mbtEngines[d].Remove(uint32(seg.value), seg.bits, lbl); err != nil {
			return err
		}
		_, err := c.mbtEngines[d].Insert(uint32(seg.value), seg.bits, lbl, newBest)
		return err
	default:
		return nil
	}
}

// ruleLabels returns the per-dimension labels of a rule's own field values,
// for building its combination key. Every value must already be labelled.
func (c *Classifier) ruleLabels(r fivetuple.Rule) (map[label.Dimension]label.Label, error) {
	out := make(map[label.Dimension]label.Label, label.NumDimensions)
	for _, d := range label.Dimensions() {
		lbl, ok := c.labels.Table(d).Lookup(fieldValueKey(d, r))
		if !ok {
			return nil, fmt.Errorf("core: field value %q in dimension %s is not labelled", fieldValueKey(d, r), d)
		}
		out[d] = lbl
	}
	return out, nil
}
