package core

import (
	"fmt"

	"sdnpc/internal/engine"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/hw/memory"
	"sdnpc/internal/label"
)

// ipSegmentDims lists the four IP-segment label dimensions in a fixed order.
var ipSegmentDims = []label.Dimension{
	label.DimSrcIPHigh, label.DimSrcIPLow, label.DimDstIPHigh, label.DimDstIPLow,
}

// segValue is the 16-bit segment slice of a rule's IP prefix in one segment
// dimension.
type segValue struct {
	value uint16
	bits  uint8
}

func (s segValue) key() string { return fmt.Sprintf("%04x/%d", s.value, s.bits) }

// fieldUse tracks which rule priorities currently use a labelled field value
// in one dimension, so that the label list order can be maintained when
// rules are added and removed (§IV.A: "the lists of labels are reorganized
// according to the priority rule").
type fieldUse struct {
	counts map[int]int
	best   int
}

func newFieldUse() *fieldUse {
	return &fieldUse{counts: make(map[int]int), best: int(^uint(0) >> 1)}
}

func (u *fieldUse) add(priority int) {
	u.counts[priority]++
	if priority < u.best {
		u.best = priority
	}
}

// remove deletes one use at the given priority and returns the new best
// priority together with whether the best changed.
func (u *fieldUse) remove(priority int) (newBest int, changed bool) {
	u.counts[priority]--
	if u.counts[priority] <= 0 {
		delete(u.counts, priority)
	}
	if priority != u.best {
		return u.best, false
	}
	newBest = int(^uint(0) >> 1)
	for p := range u.counts {
		if p < newBest {
			newBest = p
		}
	}
	changed = newBest != u.best
	u.best = newBest
	return newBest, changed
}

func (u *fieldUse) empty() bool { return len(u.counts) == 0 }

// installedRule is the software shadow of one hardware rule: what the
// controller needs to re-programme the data plane after an algorithm switch
// and to undo an installation.
type installedRule struct {
	rule fivetuple.Rule
	key  label.CombinationKey
}

// Classifier is one instance of the configurable packet classification
// architecture.
//
// Every header dimension is served by one pluggable engine.FieldEngine,
// built through the engine registry: the four IP-segment dimensions run the
// engine named by the IPEngine configuration (switchable at run time via
// SelectIPEngine — the generalised IPalg_s signal), the port dimensions run
// the register bank and the protocol dimension runs the LUT. The classifier
// itself never dispatches on an algorithm name; every per-dimension call
// goes through the FieldEngine interface.
//
// Classifier is not safe for concurrent use: in the modelled hardware the
// lookup data path and the update interface are time-multiplexed by the
// controller, and the software model mirrors that by requiring external
// serialisation.
type Classifier struct {
	cfg Config

	// engineName is the registry name of the engine serving the IP-segment
	// dimensions; alg mirrors it on the legacy IPalg_s signal (0 when the
	// engine has no legacy selection value).
	engineName string
	alg        memory.AlgSelect

	labels    *label.Bank
	fieldUses map[label.Dimension]map[string]*fieldUse

	// engines holds the per-dimension field lookup engines.
	engines map[label.Dimension]engine.FieldEngine

	// sharedL2 models the IPalg_s-selected shared blocks of Fig. 5, one per
	// IP segment.
	sharedL2 map[label.Dimension]*memory.SharedBlock

	filter    *ruleFilter
	installed []installedRule

	stats Stats
}

// New creates a classifier with the given configuration.
func New(cfg Config) (*Classifier, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	name := cfg.IPEngineName()
	def, ok := engine.Get(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown field engine %q", name)
	}
	c := &Classifier{cfg: cfg, engineName: name, alg: def.Legacy}
	if err := c.resetDataPath(); err != nil {
		return nil, err
	}
	return c, nil
}

// MustNew is like New but panics on error.
func MustNew(cfg Config) *Classifier {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// resetDataPath (re)builds every engine, label table and the rule filter for
// the current engine selection, leaving the installed-rule shadow intact.
func (c *Classifier) resetDataPath() error {
	c.labels = label.NewBank()
	c.fieldUses = make(map[label.Dimension]map[string]*fieldUse, label.NumDimensions)
	for _, d := range label.Dimensions() {
		c.fieldUses[d] = make(map[string]*fieldUse)
	}

	c.engines = make(map[label.Dimension]engine.FieldEngine, label.NumDimensions)
	if c.sharedL2 == nil {
		c.sharedL2 = make(map[label.Dimension]*memory.SharedBlock, len(ipSegmentDims))
	}
	for _, d := range ipSegmentDims {
		if c.sharedL2[d] == nil {
			block := memory.NewBlock(fmt.Sprintf("shared-l2/%s", d), DefaultMBTEntryBits, c.cfg.MBTLevel2Entries)
			c.sharedL2[d] = memory.NewSharedBlockOwner(block, c.engineName)
		} else {
			c.sharedL2[d].SelectOwner(c.engineName)
		}
		eng, err := engine.New(c.engineName, engine.Spec{
			KeyBits:   16,
			LabelBits: d.Bits(),
			SharedL2:  c.sharedL2[d],
		})
		if err != nil {
			return fmt.Errorf("core: building %s engine for %s: %w", c.engineName, d, err)
		}
		c.engines[d] = eng
	}
	for _, d := range []label.Dimension{label.DimSrcPort, label.DimDstPort} {
		eng, err := engine.New("portreg", engine.Spec{
			KeyBits:   16,
			LabelBits: d.Bits(),
			Registers: c.cfg.PortRegisters,
		})
		if err != nil {
			return fmt.Errorf("core: building port engine for %s: %w", d, err)
		}
		c.engines[d] = eng
	}
	protoEng, err := engine.New("lut", engine.Spec{KeyBits: 8, LabelBits: DefaultProtocolLabelBits})
	if err != nil {
		return fmt.Errorf("core: building protocol engine: %w", err)
	}
	c.engines[label.DimProtocol] = protoEng

	c.filter = newRuleFilter(c.cfg.RuleFilterAddressBits, c.cfg.RuleCapacityFor(c.engineName), c.cfg.RuleEntryBits)
	return nil
}

// Config returns the classifier configuration.
func (c *Classifier) Config() Config { return c.cfg }

// IPEngineName returns the registry name of the engine currently serving the
// IP-segment dimensions.
func (c *Classifier) IPEngineName() string { return c.engineName }

// IPAlgorithm returns the current setting of the legacy IPalg_s signal: the
// selection value of the active IP engine, or 0 when the engine has no
// legacy value.
//
// Deprecated: use IPEngineName.
func (c *Classifier) IPAlgorithm() memory.AlgSelect { return c.alg }

// RuleCount returns the number of installed rules.
func (c *Classifier) RuleCount() int { return len(c.installed) }

// RuleCapacity returns the rule capacity under the current engine selection.
func (c *Classifier) RuleCapacity() int { return c.cfg.RuleCapacityFor(c.engineName) }

// InstalledRules returns a copy of the installed rules in installation
// order.
func (c *Classifier) InstalledRules() []fivetuple.Rule {
	out := make([]fivetuple.Rule, len(c.installed))
	for i, ir := range c.installed {
		out[i] = ir.rule
	}
	return out
}

// SelectIPEngine drives the generalised IPalg_s signal (§III.A): it swaps
// the IP-segment lookup engines for the named registered engine, re-purposes
// the shared memory blocks (Fig. 5) and re-programmes the data path with the
// installed rules, exactly as the software controller would re-download the
// memory images after a configuration change. Selecting the already-active
// engine is a no-op.
func (c *Classifier) SelectIPEngine(name string) error {
	def, ok := engine.Get(name)
	if !ok {
		return fmt.Errorf("core: unknown field engine %q (registered: %v)", name, engine.IPEngineNames())
	}
	if !def.IPCapable {
		return fmt.Errorf("core: engine %q cannot serve the IP-segment dimensions", name)
	}
	if name == c.engineName {
		return nil
	}
	if len(c.installed) > c.cfg.RuleCapacityFor(name) {
		return fmt.Errorf("core: %d installed rules exceed the %d-rule capacity of the %s configuration",
			len(c.installed), c.cfg.RuleCapacityFor(name), name)
	}
	rules := c.InstalledRules()
	c.engineName = name
	c.alg = def.Legacy
	c.installed = nil
	if err := c.resetDataPath(); err != nil {
		return err
	}
	for _, r := range rules {
		if _, err := c.InsertRule(r); err != nil {
			return fmt.Errorf("core: re-programming after engine switch: %w", err)
		}
	}
	return nil
}

// SelectIPAlgorithm drives the legacy two-valued IPalg_s signal.
//
// Deprecated: use SelectIPEngine with a registered engine name.
func (c *Classifier) SelectIPAlgorithm(alg memory.AlgSelect) error {
	name, ok := engine.LegacyName(alg)
	if !ok {
		return fmt.Errorf("core: unknown IP algorithm selection %v", alg)
	}
	return c.SelectIPEngine(name)
}

// segmentValues returns the four IP-segment slices of a rule.
func segmentValues(r fivetuple.Rule) map[label.Dimension]segValue {
	srcHi, srcHiBits := r.SrcPrefix.HighSegment()
	srcLo, srcLoBits := r.SrcPrefix.LowSegment()
	dstHi, dstHiBits := r.DstPrefix.HighSegment()
	dstLo, dstLoBits := r.DstPrefix.LowSegment()
	return map[label.Dimension]segValue{
		label.DimSrcIPHigh: {value: srcHi, bits: srcHiBits},
		label.DimSrcIPLow:  {value: srcLo, bits: srcLoBits},
		label.DimDstIPHigh: {value: dstHi, bits: dstHiBits},
		label.DimDstIPLow:  {value: dstLo, bits: dstLoBits},
	}
}

// fieldValueKey returns the canonical label-table key of a rule's field value
// in one dimension.
func fieldValueKey(d label.Dimension, r fivetuple.Rule) string {
	switch d {
	case label.DimSrcIPHigh, label.DimSrcIPLow, label.DimDstIPHigh, label.DimDstIPLow:
		return segmentValues(r)[d].key()
	case label.DimSrcPort:
		return r.SrcPort.String()
	case label.DimDstPort:
		return r.DstPort.String()
	case label.DimProtocol:
		if r.Protocol.IsWildcard() {
			return "*"
		}
		return fivetuple.ExactProtocol(r.Protocol.Value).String()
	default:
		return ""
	}
}

// fieldValue extracts the match condition of a rule in one dimension — the
// data handed to that dimension's engine. This is pure header-format
// extraction; which algorithm stores the value is decided by the engine
// registry, not here.
func fieldValue(d label.Dimension, r fivetuple.Rule) engine.Value {
	switch d {
	case label.DimSrcIPHigh, label.DimSrcIPLow, label.DimDstIPHigh, label.DimDstIPLow:
		seg := segmentValues(r)[d]
		return engine.Prefix(uint32(seg.value), seg.bits)
	case label.DimSrcPort:
		return engine.Range(uint32(r.SrcPort.Lo), uint32(r.SrcPort.Hi))
	case label.DimDstPort:
		return engine.Range(uint32(r.DstPort.Lo), uint32(r.DstPort.Hi))
	case label.DimProtocol:
		if r.Protocol.IsWildcard() {
			return engine.Wildcard()
		}
		return engine.Exact(uint32(r.Protocol.Value))
	default:
		return engine.Value{}
	}
}

// installFieldValue writes a newly labelled field value into the dimension's
// lookup engine. It returns the number of engine memory writes.
func (c *Classifier) installFieldValue(d label.Dimension, r fivetuple.Rule, lbl label.Label, priority int) (int, error) {
	return c.engines[d].Insert(fieldValue(d, r), lbl, priority)
}

// removeFieldValue deletes a field value from the dimension's engine when
// its last rule is gone.
func (c *Classifier) removeFieldValue(d label.Dimension, r fivetuple.Rule, lbl label.Label) (int, error) {
	return c.engines[d].Remove(fieldValue(d, r), lbl)
}

// reprioritiseFieldValue re-installs a field value at a new best priority
// after the rule that defined the old best priority was deleted. Engines
// whose lists are ordered positionally (ports, protocol) treat this as a
// no-op.
func (c *Classifier) reprioritiseFieldValue(d label.Dimension, r fivetuple.Rule, lbl label.Label, newBest int) error {
	_, err := c.engines[d].Reprioritise(fieldValue(d, r), lbl, newBest)
	return err
}

// ruleLabels returns the per-dimension labels of a rule's own field values,
// for building its combination key. Every value must already be labelled.
func (c *Classifier) ruleLabels(r fivetuple.Rule) (map[label.Dimension]label.Label, error) {
	out := make(map[label.Dimension]label.Label, label.NumDimensions)
	for _, d := range label.Dimensions() {
		lbl, ok := c.labels.Table(d).Lookup(fieldValueKey(d, r))
		if !ok {
			return nil, fmt.Errorf("core: field value %q in dimension %s is not labelled", fieldValueKey(d, r), d)
		}
		out[d] = lbl
	}
	return out, nil
}
