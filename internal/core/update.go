package core

import (
	"errors"
	"fmt"
	"time"

	"sdnpc/internal/engine"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/hw/hashunit"
	"sdnpc/internal/label"
)

// ErrRuleNotInstalled is returned when deleting a rule that is not present.
var ErrRuleNotInstalled = errors.New("core: rule not installed")

// ErrDimsUnsupported is returned when installing a rule that requires
// extension dimensions (IPv6, VLAN, TCP flags, masked protocol,
// non-terminating semantics) the serving engine does not declare, or when
// switching to an engine that does not cover the installed rules' dimensions.
var ErrDimsUnsupported = errors.New("core: extension dimensions unsupported by engine")

// UpdateReport describes the cost of one rule insertion or deletion.
type UpdateReport struct {
	// NewLabels is the number of dimensions in which the rule introduced a
	// previously unseen field value (Fig. 4: "new label creation"). A rule
	// whose field values are all already labelled costs no engine updates at
	// all — the benefit of the label counters.
	NewLabels int
	// ReleasedLabels is the number of labels whose counter reached zero on
	// deletion.
	ReleasedLabels int
	// EngineWrites is the number of algorithm-block memory writes performed
	// by the engines.
	EngineWrites int
	// RuleFilterProbes is the number of Rule Filter slots touched.
	RuleFilterProbes int
	// ClockCycles is the data-plane upload cost of the update following the
	// paper's model (§V.A): two cycles for the memory upload of the rule
	// (source and destination halves) plus one cycle for the hardware hash
	// producing the rule address.
	ClockCycles int
}

// hardwareUpdateCycles is the per-rule upload cost of §V.A.
func hardwareUpdateCycles() int {
	return CyclesUpdateMemoryUpload + CyclesUpdateHash
}

// InsertRule installs one rule following the incremental procedure of
// Fig. 4: for every dimension the controller looks the field value up in the
// label table; a hit only increments the reference counter, a miss creates a
// new label and writes the value into the corresponding lookup engine.
// Finally the rule's label combination is hashed into the Rule Filter.
//
// The update is applied to a private clone of the published snapshot and
// swapped in atomically, so concurrent lookups see the rule either fully
// installed or not at all. A failed insertion publishes nothing.
func (c *Classifier) InsertRule(r fivetuple.Rule) (UpdateReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := time.Now()
	next, err := c.view().clone(&c.cfg)
	if err != nil {
		return UpdateReport{}, err
	}
	report, err := next.insertRule(&c.cfg, r)
	if err != nil {
		return UpdateReport{}, err
	}
	sync, err := next.syncPacket(&c.cfg)
	if err != nil {
		return UpdateReport{}, err
	}
	c.publish(next)
	c.stats.recordInsert(report)
	c.stats.recordPublish(sync, time.Since(start))
	return report, nil
}

// DeleteRule removes one installed rule, identified by its five field
// matches and priority. Deletion mirrors insertion: every dimension's label
// counter is decremented and only a counter that reaches zero removes the
// value from its engine (§IV.A: "only when the counter is zero, the label is
// deleted from the hardware architecture"). Like InsertRule, the deletion is
// built on a private clone and published atomically.
func (c *Classifier) DeleteRule(r fivetuple.Rule) (UpdateReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := time.Now()
	next, err := c.view().clone(&c.cfg)
	if err != nil {
		return UpdateReport{}, err
	}
	report, _, err := next.deleteRule(r)
	if err != nil {
		// The clone is discarded whole, so a partially applied deletion can
		// never become visible.
		return UpdateReport{}, err
	}
	sync, err := next.syncPacket(&c.cfg)
	if err != nil {
		return UpdateReport{}, err
	}
	c.publish(next)
	c.stats.recordDelete(report)
	c.stats.recordPublish(sync, time.Since(start))
	return report, nil
}

// InstallRuleSet inserts every rule of the set in priority order as one
// atomic batch: the whole set is applied to a single clone of the data path
// and published with one swap, so concurrent lookups observe either none or
// all of the set. It returns the accumulated update report.
func (c *Classifier) InstallRuleSet(rs *fivetuple.RuleSet) (UpdateReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := time.Now()
	next, err := c.view().clone(&c.cfg)
	if err != nil {
		return UpdateReport{}, err
	}
	var total UpdateReport
	inserted := 0
	for _, r := range rs.Rules() {
		rep, err := next.insertRule(&c.cfg, r)
		if err != nil {
			return total, fmt.Errorf("core: installing %q rule %d: %w", rs.Name, r.Priority, err)
		}
		total.NewLabels += rep.NewLabels
		total.EngineWrites += rep.EngineWrites
		total.RuleFilterProbes += rep.RuleFilterProbes
		total.ClockCycles += rep.ClockCycles
		inserted++
	}
	sync, err := next.syncPacket(&c.cfg)
	if err != nil {
		return total, err
	}
	c.publish(next)
	c.stats.recordUpdates(inserted, 0, total.ClockCycles)
	c.stats.recordPublish(sync, time.Since(start))
	return total, nil
}

// insertRule applies one insertion to this (unpublished) snapshot. With
// rule-space partitioning active, the rule is installed into the spine (the
// source of truth for bookkeeping and capacity) and then replicated into
// every shard the partitioner assigns it to — the shards whose steering
// bytes the rule's match condition covers. The report counts the spine's
// costs only, mirroring the modelled hardware: the shards are replicas of
// the control-plane decision, not extra uploads on the §V.A cost model.
func (s *snapshot) insertRule(cfg *Config, r fivetuple.Rule) (UpdateReport, error) {
	report, err := s.insertRuleLocal(cfg, r)
	if err != nil || s.part == nil {
		return report, err
	}
	targets := s.part.Assign(r)
	for i, si := range targets {
		if _, err := s.shards[si].insertRule(cfg, r); err != nil {
			// Unwind so the clone stays internally consistent: the rule comes
			// back out of the shards it reached and out of the spine.
			for _, sj := range targets[:i] {
				_, _, _ = s.shards[sj].deleteRule(r)
			}
			_, _, _ = s.deleteRuleLocal(r)
			return UpdateReport{}, fmt.Errorf("core: inserting rule %s into shard %d: %w", r, si, err)
		}
	}
	return report, nil
}

// insertRuleLocal applies one insertion to this snapshot's own data path,
// ignoring any shards.
func (s *snapshot) insertRuleLocal(cfg *Config, r fivetuple.Rule) (UpdateReport, error) {
	if len(s.installed) >= cfg.RuleCapacityFor(s.engineName) {
		return UpdateReport{}, fmt.Errorf("%w: capacity %d under the %s configuration",
			ErrRuleFilterFull, cfg.RuleCapacityFor(s.engineName), s.engineName)
	}
	if dims := r.Dims(); dims != 0 {
		// Extended rules (IPv6/VLAN/TCP-flag/masked-proto/non-terminating)
		// bypass the five-tuple field tier entirely: no labels, no engine
		// writes, no rule-filter entry. They ride the installed shadow into
		// the whole-packet engine, so that engine must declare every
		// dimension the rule requires — otherwise the install is refused
		// rather than silently misclassified.
		if s.packetName == "" {
			return UpdateReport{}, fmt.Errorf("%w: rule %s requires dimensions %s but the %s field tier serves only the IPv4 five-tuple",
				ErrDimsUnsupported, r, dims, s.engineName)
		}
		if have := engine.Dims(s.packetName); !have.Covers(dims) {
			return UpdateReport{}, fmt.Errorf("%w: rule %s requires dimensions %s but engine %q declares %s",
				ErrDimsUnsupported, r, dims, s.packetName, have)
		}
		s.installed = append(s.installed, installedRule{rule: r, ext: true})
		s.packetPending = append(s.packetPending, packetDelta{rule: r})
		return UpdateReport{ClockCycles: hardwareUpdateCycles()}, nil
	}
	report := UpdateReport{ClockCycles: hardwareUpdateCycles()}

	// Track what has been acquired so a failure midway can be rolled back.
	// The snapshot is private until published, but InstallRuleSet keeps
	// inserting into the same clone after an individual failure is surfaced,
	// so the clone must stay internally consistent.
	type acquisition struct {
		dim     label.Dimension
		key     string
		created bool
	}
	var acquired []acquisition
	rollback := func() {
		for i := len(acquired) - 1; i >= 0; i-- {
			a := acquired[i]
			lbl, removed, err := s.labels.Table(a.dim).Release(a.key)
			if err != nil {
				continue
			}
			use := s.fieldUses[a.dim][a.key]
			if use != nil {
				use.remove(r.Priority)
				if use.empty() {
					delete(s.fieldUses[a.dim], a.key)
				}
			}
			if removed {
				// The value was created by this insertion; undo the engine
				// write.
				_, _ = s.removeFieldValue(a.dim, r, lbl)
			}
		}
	}

	ruleLabels := make(map[label.Dimension]label.Label, label.NumDimensions)
	for _, d := range label.Dimensions() {
		key := fieldValueKey(d, r)
		lbl, created, err := s.labels.Table(d).Acquire(key)
		if err != nil {
			rollback()
			return UpdateReport{}, fmt.Errorf("core: inserting rule %s: %w", r, err)
		}
		acquired = append(acquired, acquisition{dim: d, key: key, created: created})
		ruleLabels[d] = lbl

		use, ok := s.fieldUses[d][key]
		if !ok {
			use = newFieldUse()
			s.fieldUses[d][key] = use
		}
		previousBest := use.best
		use.add(r.Priority)

		if created {
			report.NewLabels++
			writes, err := s.installFieldValue(d, r, lbl, r.Priority)
			report.EngineWrites += writes
			if err != nil {
				rollback()
				return UpdateReport{}, fmt.Errorf("core: inserting rule %s: %w", r, err)
			}
		} else if r.Priority < previousBest {
			// The existing label gained a better priority: the engine lists
			// must be reordered so the HPML invariant holds.
			writes, err := s.installFieldValue(d, r, lbl, r.Priority)
			report.EngineWrites += writes
			if err != nil {
				rollback()
				return UpdateReport{}, fmt.Errorf("core: inserting rule %s: %w", r, err)
			}
		}
	}

	key := label.PackKey(ruleLabels)
	_, probes, writes, err := s.filter.insert(key, r.Priority, r.Action, r.ActionArg)
	report.RuleFilterProbes = probes
	report.EngineWrites += writes
	if err != nil {
		rollback()
		return UpdateReport{}, fmt.Errorf("core: inserting rule %s: %w", r, err)
	}

	s.installed = append(s.installed, installedRule{rule: r, key: key})
	s.packetPending = append(s.packetPending, packetDelta{rule: r})
	return report, nil
}

// deleteRule applies one deletion to this (unpublished) snapshot. mutated
// reports whether the snapshot was changed when an error is returned: a
// clean failure (rule not installed, filter entry missing) leaves the
// snapshot untouched and batch processing may continue, while a mid-loop
// engine or label-table failure leaves it partially mutated — the caller
// must then discard the snapshot rather than publish it. With partitioning
// active, the deletion propagates to every shard the rule was replicated
// into; a shard missing a rule the spine had is an invariant violation, so
// it surfaces as a mutated failure that abandons the clone.
func (s *snapshot) deleteRule(r fivetuple.Rule) (UpdateReport, bool, error) {
	report, mutated, err := s.deleteRuleLocal(r)
	if err != nil || s.part == nil {
		return report, mutated, err
	}
	for _, si := range s.part.Assign(r) {
		if _, _, err := s.shards[si].deleteRule(r); err != nil {
			return report, true, fmt.Errorf("core: deleting rule %s from shard %d: %w", r, si, err)
		}
	}
	return report, mutated, nil
}

// deleteRuleLocal applies one deletion to this snapshot's own data path,
// ignoring any shards.
func (s *snapshot) deleteRuleLocal(r fivetuple.Rule) (report UpdateReport, mutated bool, err error) {
	idx := s.findInstalled(r)
	if idx < 0 {
		return UpdateReport{}, false, fmt.Errorf("%w: %s priority %d", ErrRuleNotInstalled, r, r.Priority)
	}
	installed := s.installed[idx]
	report = UpdateReport{ClockCycles: hardwareUpdateCycles()}

	if installed.ext {
		// Extended rules hold no labels and no filter entry; only the
		// installed shadow and the packet tier know them.
		s.installed = append(s.installed[:idx], s.installed[idx+1:]...)
		s.packetPending = append(s.packetPending, packetDelta{delete: true, rule: installed.rule})
		return report, true, nil
	}

	found, probes := s.filter.remove(installed.key, installed.rule.Priority)
	report.RuleFilterProbes = probes
	if !found {
		return UpdateReport{}, false, fmt.Errorf("core: rule filter entry for %s missing", r)
	}

	for _, d := range label.Dimensions() {
		key := fieldValueKey(d, r)
		lbl, removed, err := s.labels.Table(d).Release(key)
		if err != nil {
			return report, true, fmt.Errorf("core: deleting rule %s: %w", r, err)
		}
		use := s.fieldUses[d][key]
		newBest, changed := use.remove(r.Priority)
		if removed {
			report.ReleasedLabels++
			delete(s.fieldUses[d], key)
			writes, err := s.removeFieldValue(d, r, lbl)
			report.EngineWrites += writes
			if err != nil {
				return report, true, fmt.Errorf("core: deleting rule %s: %w", r, err)
			}
			continue
		}
		if changed {
			if err := s.reprioritiseFieldValue(d, r, lbl, newBest); err != nil {
				return report, true, fmt.Errorf("core: deleting rule %s: %w", r, err)
			}
		}
	}

	s.installed = append(s.installed[:idx], s.installed[idx+1:]...)
	s.packetPending = append(s.packetPending, packetDelta{delete: true, rule: installed.rule})
	return report, true, nil
}

// UpdateCyclesPerRule returns the constant per-rule upload cost of the
// architecture (§V.A): 2 cycles of memory upload plus 1 hash cycle.
func UpdateCyclesPerRule() int { return hardwareUpdateCycles() }

// compile-time check that the hash unit's latency matches the update model.
var _ = [1]struct{}{}[hashunit.LatencyCycles-CyclesUpdateHash]

// UpdateOp is one rule mutation inside an update batch.
type UpdateOp struct {
	// Delete selects deletion; insertion otherwise.
	Delete bool
	Rule   fivetuple.Rule
}

// ApplyUpdates applies a mixed, ordered sequence of insertions and
// deletions as one batch: the published snapshot is cloned once, every op
// is applied to the clone in order, and the result is published with a
// single swap. This is the amortised update path — a control plane
// streaming thousands of flow-mods pays one data-path copy per batch
// instead of one per rule.
//
// Ops are independent, as if issued separately: an op that fails cleanly
// (duplicate delete, capacity exceeded, rolled-back insert) is skipped with
// its error recorded at its index in errs, and the remaining ops still
// apply. The batch is published when at least one op succeeded. Two
// failures are batch-level instead, abandoning the whole batch unpublished
// with the error returned as err: a failure that leaves the working copy
// partially mutated (a deletion failing midway through its engines), and —
// with a packet engine active — a failed rebuild of the precomputed
// structure over the batch's final rule set (e.g. an RFC cross-product
// explosion), which is a property of the aggregate rule set rather than of
// any single op.
func (c *Classifier) ApplyUpdates(ops []UpdateOp) (reports []UpdateReport, errs []error, err error) {
	if len(ops) == 0 {
		return nil, nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	start := time.Now()
	next, err := c.view().clone(&c.cfg)
	if err != nil {
		return nil, nil, err
	}
	reports = make([]UpdateReport, len(ops))
	errs = make([]error, len(ops))
	inserts, deletes, cycles := 0, 0, 0
	for i, op := range ops {
		if op.Delete {
			var mutated bool
			reports[i], mutated, errs[i] = next.deleteRule(op.Rule)
			if errs[i] != nil {
				if mutated {
					return nil, nil, fmt.Errorf("core: abandoning update batch at op %d: %w", i, errs[i])
				}
				continue
			}
			deletes++
			cycles += reports[i].ClockCycles
		} else {
			// insertRule rolls itself back on failure, so a failed insert
			// never poisons the working copy.
			reports[i], errs[i] = next.insertRule(&c.cfg, op.Rule)
			if errs[i] != nil {
				continue
			}
			inserts++
			cycles += reports[i].ClockCycles
		}
	}
	if inserts+deletes > 0 {
		sync, err := next.syncPacket(&c.cfg)
		if err != nil {
			return nil, nil, err
		}
		c.publish(next)
		c.stats.recordUpdates(inserts, deletes, cycles)
		c.stats.recordPublish(sync, time.Since(start))
	}
	return reports, errs, nil
}
