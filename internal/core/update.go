package core

import (
	"errors"
	"fmt"

	"sdnpc/internal/fivetuple"
	"sdnpc/internal/hw/hashunit"
	"sdnpc/internal/label"
)

// ErrRuleNotInstalled is returned when deleting a rule that is not present.
var ErrRuleNotInstalled = errors.New("core: rule not installed")

// UpdateReport describes the cost of one rule insertion or deletion.
type UpdateReport struct {
	// NewLabels is the number of dimensions in which the rule introduced a
	// previously unseen field value (Fig. 4: "new label creation"). A rule
	// whose field values are all already labelled costs no engine updates at
	// all — the benefit of the label counters.
	NewLabels int
	// ReleasedLabels is the number of labels whose counter reached zero on
	// deletion.
	ReleasedLabels int
	// EngineWrites is the number of algorithm-block memory writes performed
	// by the engines.
	EngineWrites int
	// RuleFilterProbes is the number of Rule Filter slots touched.
	RuleFilterProbes int
	// ClockCycles is the data-plane upload cost of the update following the
	// paper's model (§V.A): two cycles for the memory upload of the rule
	// (source and destination halves) plus one cycle for the hardware hash
	// producing the rule address.
	ClockCycles int
}

// hardwareUpdateCycles is the per-rule upload cost of §V.A.
func hardwareUpdateCycles() int {
	return CyclesUpdateMemoryUpload + CyclesUpdateHash
}

// InsertRule installs one rule following the incremental procedure of
// Fig. 4: for every dimension the controller looks the field value up in the
// label table; a hit only increments the reference counter, a miss creates a
// new label and writes the value into the corresponding lookup engine.
// Finally the rule's label combination is hashed into the Rule Filter.
func (c *Classifier) InsertRule(r fivetuple.Rule) (UpdateReport, error) {
	if len(c.installed) >= c.RuleCapacity() {
		return UpdateReport{}, fmt.Errorf("%w: capacity %d under the %s configuration",
			ErrRuleFilterFull, c.RuleCapacity(), c.alg)
	}
	report := UpdateReport{ClockCycles: hardwareUpdateCycles()}

	// Track what has been acquired so a failure midway can be rolled back
	// without leaking labels.
	type acquisition struct {
		dim     label.Dimension
		key     string
		created bool
	}
	var acquired []acquisition
	rollback := func() {
		for i := len(acquired) - 1; i >= 0; i-- {
			a := acquired[i]
			lbl, removed, err := c.labels.Table(a.dim).Release(a.key)
			if err != nil {
				continue
			}
			use := c.fieldUses[a.dim][a.key]
			if use != nil {
				use.remove(r.Priority)
				if use.empty() {
					delete(c.fieldUses[a.dim], a.key)
				}
			}
			if removed {
				// The value was created by this insertion; undo the engine write.
				_, _ = c.removeFieldValue(a.dim, r, lbl)
			}
		}
	}

	ruleLabels := make(map[label.Dimension]label.Label, label.NumDimensions)
	for _, d := range label.Dimensions() {
		key := fieldValueKey(d, r)
		lbl, created, err := c.labels.Table(d).Acquire(key)
		if err != nil {
			rollback()
			return UpdateReport{}, fmt.Errorf("core: inserting rule %s: %w", r, err)
		}
		acquired = append(acquired, acquisition{dim: d, key: key, created: created})
		ruleLabels[d] = lbl

		use, ok := c.fieldUses[d][key]
		if !ok {
			use = newFieldUse()
			c.fieldUses[d][key] = use
		}
		previousBest := use.best
		use.add(r.Priority)

		if created {
			report.NewLabels++
			writes, err := c.installFieldValue(d, r, lbl, r.Priority)
			report.EngineWrites += writes
			if err != nil {
				rollback()
				return UpdateReport{}, fmt.Errorf("core: inserting rule %s: %w", r, err)
			}
		} else if r.Priority < previousBest {
			// The existing label gained a better priority: the engine lists
			// must be reordered so the HPML invariant holds.
			writes, err := c.installFieldValue(d, r, lbl, r.Priority)
			report.EngineWrites += writes
			if err != nil {
				rollback()
				return UpdateReport{}, fmt.Errorf("core: inserting rule %s: %w", r, err)
			}
		}
	}

	key := label.PackKey(ruleLabels)
	_, probes, writes, err := c.filter.insert(key, r.Priority, r.Action, r.ActionArg)
	report.RuleFilterProbes = probes
	report.EngineWrites += writes
	if err != nil {
		rollback()
		return UpdateReport{}, fmt.Errorf("core: inserting rule %s: %w", r, err)
	}

	c.installed = append(c.installed, installedRule{rule: r, key: key})
	c.stats.Inserts++
	c.stats.UpdateCycles += uint64(report.ClockCycles)
	return report, nil
}

// DeleteRule removes one installed rule, identified by its five field
// matches and priority. Deletion mirrors insertion: every dimension's label
// counter is decremented and only a counter that reaches zero removes the
// value from its engine (§IV.A: "only when the counter is zero, the label is
// deleted from the hardware architecture").
func (c *Classifier) DeleteRule(r fivetuple.Rule) (UpdateReport, error) {
	idx := c.findInstalled(r)
	if idx < 0 {
		return UpdateReport{}, fmt.Errorf("%w: %s priority %d", ErrRuleNotInstalled, r, r.Priority)
	}
	installed := c.installed[idx]
	report := UpdateReport{ClockCycles: hardwareUpdateCycles()}

	found, probes := c.filter.remove(installed.key, installed.rule.Priority)
	report.RuleFilterProbes = probes
	if !found {
		return UpdateReport{}, fmt.Errorf("core: rule filter entry for %s missing", r)
	}

	for _, d := range label.Dimensions() {
		key := fieldValueKey(d, r)
		lbl, removed, err := c.labels.Table(d).Release(key)
		if err != nil {
			return report, fmt.Errorf("core: deleting rule %s: %w", r, err)
		}
		use := c.fieldUses[d][key]
		newBest, changed := use.remove(r.Priority)
		if removed {
			report.ReleasedLabels++
			delete(c.fieldUses[d], key)
			writes, err := c.removeFieldValue(d, r, lbl)
			report.EngineWrites += writes
			if err != nil {
				return report, fmt.Errorf("core: deleting rule %s: %w", r, err)
			}
			continue
		}
		if changed {
			if err := c.reprioritiseFieldValue(d, r, lbl, newBest); err != nil {
				return report, fmt.Errorf("core: deleting rule %s: %w", r, err)
			}
		}
	}

	c.installed = append(c.installed[:idx], c.installed[idx+1:]...)
	c.stats.Deletes++
	c.stats.UpdateCycles += uint64(report.ClockCycles)
	return report, nil
}

// findInstalled locates an installed rule with the same field matches and
// priority.
func (c *Classifier) findInstalled(r fivetuple.Rule) int {
	for i, ir := range c.installed {
		if ir.rule.Priority != r.Priority {
			continue
		}
		if ir.rule.SrcPrefix.Canonical() == r.SrcPrefix.Canonical() &&
			ir.rule.DstPrefix.Canonical() == r.DstPrefix.Canonical() &&
			ir.rule.SrcPort == r.SrcPort &&
			ir.rule.DstPort == r.DstPort &&
			ir.rule.Protocol == r.Protocol {
			return i
		}
	}
	return -1
}

// InstallRuleSet inserts every rule of the set in priority order. It returns
// the accumulated update report.
func (c *Classifier) InstallRuleSet(rs *fivetuple.RuleSet) (UpdateReport, error) {
	var total UpdateReport
	for _, r := range rs.Rules() {
		rep, err := c.InsertRule(r)
		if err != nil {
			return total, fmt.Errorf("core: installing %q rule %d: %w", rs.Name, r.Priority, err)
		}
		total.NewLabels += rep.NewLabels
		total.EngineWrites += rep.EngineWrites
		total.RuleFilterProbes += rep.RuleFilterProbes
		total.ClockCycles += rep.ClockCycles
	}
	return total, nil
}

// UpdateCyclesPerRule returns the constant per-rule upload cost of the
// architecture (§V.A): 2 cycles of memory upload plus 1 hash cycle.
func UpdateCyclesPerRule() int { return hardwareUpdateCycles() }

// compile-time check that the hash unit's latency matches the update model.
var _ = [1]struct{}{}[hashunit.LatencyCycles-CyclesUpdateHash]
