package core

import (
	"math/bits"
	"time"
)

// publishLatencyBuckets is the bucket count of the publish-latency
// histogram: power-of-two nanosecond buckets up to ~2.1 s, which covers
// everything from a sub-microsecond delta publish to a pathological rebuild.
const publishLatencyBuckets = 32

// LatencyHistogram is a fixed-bucket wall-clock latency histogram:
// Counts[i] tallies observations in [2^i, 2^(i+1)) nanoseconds, with the
// first and last buckets absorbing the tails.
type LatencyHistogram struct {
	Counts [publishLatencyBuckets]uint64
}

// latencyBucket maps a duration to its histogram bucket.
func latencyBucket(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns < 1 {
		ns = 1
	}
	b := bits.Len64(uint64(ns)) - 1
	if b >= publishLatencyBuckets {
		b = publishLatencyBuckets - 1
	}
	return b
}

// Total returns the number of recorded observations.
func (h LatencyHistogram) Total() uint64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	return total
}

// Quantile returns an upper bound on the q-quantile latency (q in [0,1]):
// the upper edge of the bucket holding the q-th observation. Zero when the
// histogram is empty.
func (h LatencyHistogram) Quantile(q float64) time.Duration {
	total := h.Total()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total-1))
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if c > 0 && seen > rank {
			return time.Duration(uint64(1) << (i + 1))
		}
	}
	return time.Duration(uint64(1) << publishLatencyBuckets)
}

// P50 returns the median publish latency bucket bound.
func (h LatencyHistogram) P50() time.Duration { return h.Quantile(0.50) }

// P99 returns the 99th-percentile publish latency bucket bound.
func (h LatencyHistogram) P99() time.Duration { return h.Quantile(0.99) }

// UpdateStats describes the write side of the classifier — how rule-update
// publishes were served by the whole-packet tier's update plane. Publishes
// with only the field tier active appear in the latency histogram but in
// neither the delta nor the rebuild counters (the field tier is updated in
// place per label, not delta-vs-rebuild).
type UpdateStats struct {
	// DeltasApplied is the total number of rule mutations applied through
	// the incremental engine's delta ops.
	DeltasApplied uint64
	// DeltaPublishes is the number of publishes served entirely by deltas.
	DeltaPublishes uint64
	// Rebuilds is the number of publishes that rebuilt the precomputed
	// packet structure in full — because the engine is not incremental, the
	// RebuildAfterDeltas bound was reached, the degradation threshold
	// tripped, or a delta op failed.
	Rebuilds uint64
	// DeltasSinceRebuild is the delta debt of the currently published packet
	// structure: how many delta ops it has absorbed since its last full
	// build. Every rebuild resets it to zero; when a positive
	// RebuildAfterDeltas bound is configured it stays below that bound by
	// construction (with the bound disabled, only a degradation trip resets
	// it, so it can grow arbitrarily).
	DeltasSinceRebuild int
	// PublishLatency is the wall-clock latency histogram of rule-update
	// publishes (clone + mutate + sync + swap).
	PublishLatency LatencyHistogram
}

// UpdateStats returns a snapshot of the update-plane counters. Like Stats,
// the individual counters are read atomically; the struct as a whole is not
// one consistent cut.
//
// Deprecated: use Report, which returns these counters in its Updates field
// alongside every other observability surface, from one snapshot read.
func (c *Classifier) UpdateStats() UpdateStats {
	return c.updateStats(c.view())
}

// updateStats reads the update-plane counters against one snapshot — the
// shared implementation behind Report and the deprecated UpdateStats.
func (c *Classifier) updateStats(s *snapshot) UpdateStats {
	stats := UpdateStats{
		DeltasApplied:      c.stats.deltasApplied.Load(),
		DeltaPublishes:     c.stats.deltaPublishes.Load(),
		Rebuilds:           c.stats.rebuilds.Load(),
		DeltasSinceRebuild: s.packetDeltas,
	}
	// Sharded table: the packet structures (and their delta debt) live in
	// the shards.
	for _, sh := range s.shards {
		stats.DeltasSinceRebuild += sh.packetDeltas
	}
	for i := range stats.PublishLatency.Counts {
		stats.PublishLatency.Counts[i] = c.stats.publishLatency[i].Load()
	}
	return stats
}
