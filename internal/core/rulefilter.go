package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"sdnpc/internal/fivetuple"
	"sdnpc/internal/hw/hashunit"
	"sdnpc/internal/label"
)

// ErrRuleFilterFull is returned when the Rule Filter has no free slot for a
// new rule under the current IP algorithm selection.
var ErrRuleFilterFull = errors.New("core: rule filter full")

// ruleEntry is one Rule Filter slot: the rule's label combination key, its
// priority and its action. The slot layout corresponds to the
// Config.RuleEntryBits stored word.
type ruleEntry struct {
	valid     bool
	tombstone bool
	key       label.CombinationKey
	priority  int
	action    fivetuple.Action
	actionArg uint32
}

// ruleFilter is the Rule Filter memory block: an open-addressed hash table
// keyed by the 68-bit combination key produced by the hash unit, with linear
// probing and tombstone deletion. Distinct rules with identical keys
// (duplicate 5-tuple matches at different priorities) occupy distinct slots.
type ruleFilter struct {
	hash      *hashunit.Unit
	entries   []ruleEntry
	entryBits int
	used      int

	// The access counters are atomic because lookup runs on published
	// (otherwise immutable) filters from many goroutines at once.
	reads  atomic.Uint64
	writes atomic.Uint64
}

// newRuleFilter creates a rule filter with the given capacity. The hash unit
// addresses the first 2^addressBits slots; linear probing covers any extra
// capacity contributed by freed MBT blocks in the BST configuration.
func newRuleFilter(addressBits, capacity, entryBits int) *ruleFilter {
	return &ruleFilter{
		hash:      hashunit.MustNew(addressBits),
		entries:   make([]ruleEntry, capacity),
		entryBits: entryBits,
	}
}

// capacityRules returns the number of slots.
func (rf *ruleFilter) capacityRules() int { return len(rf.entries) }

// usedRules returns the number of live entries.
func (rf *ruleFilter) usedRules() int { return rf.used }

// provisionedBits returns the storage provisioned for the base (hash
// addressable) region of the filter.
func (rf *ruleFilter) provisionedBits() int { return len(rf.entries) * rf.entryBits }

// usedBits returns the storage occupied by live entries.
func (rf *ruleFilter) usedBits() int { return rf.used * rf.entryBits }

// slotFor returns the probe-sequence slot index for the key.
func (rf *ruleFilter) slotFor(key label.CombinationKey, probe int) int {
	base := int(rf.hash.Hash(key.Bytes()))
	return (base + probe) % len(rf.entries)
}

// insert stores a rule entry. It returns the slot index, the number of
// probes taken and the number of memory writes, or ErrRuleFilterFull.
func (rf *ruleFilter) insert(key label.CombinationKey, priority int, action fivetuple.Action, actionArg uint32) (slot, probes, writes int, err error) {
	for probe := 0; probe < len(rf.entries); probe++ {
		idx := rf.slotFor(key, probe)
		rf.reads.Add(1)
		e := &rf.entries[idx]
		if !e.valid || e.tombstone {
			*e = ruleEntry{valid: true, key: key, priority: priority, action: action, actionArg: actionArg}
			rf.writes.Add(1)
			rf.used++
			return idx, probe + 1, 1, nil
		}
	}
	return 0, len(rf.entries), 0, fmt.Errorf("%w: %d slots", ErrRuleFilterFull, len(rf.entries))
}

// remove deletes the entry holding (key, priority). It reports whether the
// entry was found.
func (rf *ruleFilter) remove(key label.CombinationKey, priority int) (found bool, probes int) {
	for probe := 0; probe < len(rf.entries); probe++ {
		idx := rf.slotFor(key, probe)
		rf.reads.Add(1)
		e := &rf.entries[idx]
		if !e.valid {
			return false, probe + 1
		}
		if !e.tombstone && e.key == key && e.priority == priority {
			e.tombstone = true
			rf.writes.Add(1)
			rf.used--
			return true, probe + 1
		}
	}
	return false, len(rf.entries)
}

// lookup probes the filter for the key and returns the best-priority entry
// holding it. probes is the number of slots read.
func (rf *ruleFilter) lookup(key label.CombinationKey) (entry ruleEntry, found bool, probes int) {
	best := ruleEntry{}
	for probe := 0; probe < len(rf.entries); probe++ {
		idx := rf.slotFor(key, probe)
		probes = probe + 1
		e := rf.entries[idx]
		if !e.valid {
			break
		}
		if !e.tombstone && e.key == key {
			if !found || e.priority < best.priority {
				best = e
				found = true
			}
		}
	}
	// The read counter is bumped once per call rather than per probed slot:
	// concurrent lookups all share this one atomic, and cross-product mode
	// can probe hundreds of slots per packet.
	rf.reads.Add(uint64(probes))
	return best, found, probes
}

// reprovision replaces the slot array with a new capacity, keeping live
// entries. It is invoked when the IP algorithm selection changes the rule
// capacity (Fig. 5).
func (rf *ruleFilter) reprovision(capacity int) error {
	if capacity < rf.used {
		return fmt.Errorf("core: cannot shrink rule filter to %d slots below %d live rules", capacity, rf.used)
	}
	old := rf.entries
	rf.entries = make([]ruleEntry, capacity)
	rf.used = 0
	for _, e := range old {
		if e.valid && !e.tombstone {
			if _, _, _, err := rf.insert(e.key, e.priority, e.action, e.actionArg); err != nil {
				return err
			}
		}
	}
	return nil
}

// clear drops every entry.
func (rf *ruleFilter) clear() {
	for i := range rf.entries {
		rf.entries[i] = ruleEntry{}
	}
	rf.used = 0
}

// accesses returns the cumulative number of slot reads and writes.
func (rf *ruleFilter) accesses() (reads, writes uint64) { return rf.reads.Load(), rf.writes.Load() }

// resetCounters zeroes the access counters.
func (rf *ruleFilter) resetCounters() {
	rf.reads.Store(0)
	rf.writes.Store(0)
}

// clone duplicates the filter for the copy-on-write update path: the slot
// array is copied, the (stateless) hash unit is shared and the access
// counters carry over so cumulative accounting survives the snapshot swap.
func (rf *ruleFilter) clone() *ruleFilter {
	c := &ruleFilter{
		hash:      rf.hash,
		entries:   append([]ruleEntry(nil), rf.entries...),
		entryBits: rf.entryBits,
		used:      rf.used,
	}
	c.reads.Store(rf.reads.Load())
	c.writes.Store(rf.writes.Load())
	return c
}
