package loadgen

import (
	"strings"
	"testing"

	"sdnpc/internal/classbench"
)

// TestServeLoadInProcess runs a miniature load-generation window against an
// in-process daemon and checks the reported accounting: request totals,
// throughput, latency quantiles and the per-tenant counter diffs.
func TestServeLoadInProcess(t *testing.T) {
	opts := ServeOptions{
		Tenants:           2,
		Clients:           2,
		RequestsPerClient: 4,
		BatchSize:         16,
		Engines:           []string{"bst", "hypercuts"},
		Class:             classbench.ACL,
		Size:              classbench.Size1K,
		CacheCapacity:     512,
		Seed:              7,
	}
	res, err := ServeLoad(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("load run reported %d errors", res.Errors)
	}
	wantReqs := opts.Clients * opts.RequestsPerClient
	if res.Requests != wantReqs || res.Packets != wantReqs*opts.BatchSize {
		t.Fatalf("requests/packets = %d/%d, want %d/%d", res.Requests, res.Packets, wantReqs, wantReqs*opts.BatchSize)
	}
	if res.LookupsPerSec <= 0 || res.Elapsed <= 0 {
		t.Fatalf("throughput accounting = %+v", res)
	}
	if res.WireP50 <= 0 || res.WireP99 < res.WireP50 {
		t.Fatalf("latency quantiles p50=%v p99=%v", res.WireP50, res.WireP99)
	}
	if len(res.PerTenant) != opts.Tenants {
		t.Fatalf("per-tenant rows = %d, want %d", len(res.PerTenant), opts.Tenants)
	}
	var lookups uint64
	for i, row := range res.PerTenant {
		lookups += row.Lookups
		if row.Engine != opts.Engines[i%len(opts.Engines)] {
			t.Fatalf("tenant %s engine = %q, want round-robin %q", row.ID, row.Engine, opts.Engines[i%len(opts.Engines)])
		}
		if row.Rules == 0 {
			t.Fatalf("tenant %s has no rules installed", row.ID)
		}
		if !row.Cached {
			t.Fatalf("tenant %s should report an enabled cache", row.ID)
		}
	}
	if lookups != uint64(res.Packets) {
		t.Fatalf("per-tenant lookups sum to %d, want %d", lookups, res.Packets)
	}

	out := RenderServe(res)
	for _, want := range []string{"lookups/s", "p50", "p99", "loadgen-00", "loadgen-01"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RenderServe output missing %q:\n%s", want, out)
		}
	}
}

// TestServeLoadBadEngine surfaces provisioning failures instead of reporting
// a zero-load run.
func TestServeLoadBadEngine(t *testing.T) {
	_, err := ServeLoad(ServeOptions{
		Tenants:           1,
		Clients:           1,
		RequestsPerClient: 1,
		BatchSize:         1,
		Engines:           []string{"no-such-engine"},
		Class:             classbench.ACL,
		Size:              classbench.Size1K,
	})
	if err == nil {
		t.Fatal("ServeLoad with an unknown engine returned nil error")
	}
}
