// Package loadgen drives HTTP load against the multi-tenant wire API of
// internal/server: it provisions tenants, installs generated filter sets and
// hammers classify-batch from concurrent clients, reporting lookups/s and
// wire-latency percentiles. It lives apart from internal/bench so that the
// cycle-accurate benchmark harness stays free of the serving layer (the
// daemon imports the sdnpc facade, whose in-package tests import
// internal/bench).
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"sdnpc/internal/classbench"
	"sdnpc/internal/engine"
	"sdnpc/internal/fivetuple"
	"sdnpc/internal/server"
)

// ServeOptions parameterises the wire-API load generator: M concurrent
// clients hammering classify-batch across T tenants of one daemon, in the
// perftest shape of driving traffic for a window and diffing the counters.
type ServeOptions struct {
	// Addr targets a running daemon ("host:port"). Empty starts an
	// in-process server on a loopback port and tears it down afterwards.
	Addr string
	// Tenants is T, the number of classifier tables provisioned; <= 0
	// selects 2. Engines are assigned to tenants round-robin.
	Tenants int
	// Clients is M, the number of concurrent load connections; <= 0 selects
	// 4.
	Clients int
	// RequestsPerClient is how many classify-batch calls each client
	// issues; <= 0 selects 100.
	RequestsPerClient int
	// BatchSize is the headers per classify-batch request; <= 0 selects 64.
	BatchSize int
	// Engines are assigned to tenants round-robin; empty selects every
	// selectable engine of both tiers.
	Engines []string
	// Class and Size pick the per-tenant ClassBench filter set.
	Class classbench.Class
	Size  classbench.Size
	// ZipfSkew shapes each tenant's flow popularity (> 1); 0 selects 1.1,
	// a negative value disables the skew (independent draws).
	ZipfSkew float64
	// CacheShards and CacheCapacity configure each tenant's microflow
	// cache; CacheCapacity <= 0 disables it.
	CacheShards   int
	CacheCapacity int
	// Seed varies the generated traces; tenants are offset from it so no
	// two tenants replay the same flow population.
	Seed int64
}

// ServeTenantRow is the post-run accounting of one tenant, read back from
// its /stats endpoint — the served-lookup counter diff over the load window.
type ServeTenantRow struct {
	ID           string
	Engine       string
	Rules        int
	Lookups      uint64
	MatchRate    float64
	Cached       bool
	CacheHitRate float64
}

// ServeResult is the measured outcome of one load-generator run.
type ServeResult struct {
	Addr      string
	Tenants   int
	Clients   int
	BatchSize int
	// Requests and Packets are the totals issued by the generator; Errors
	// counts requests that failed (non-2xx or transport error).
	Requests int
	Packets  int
	Errors   int
	Elapsed  time.Duration
	// LookupsPerSec is Packets / Elapsed — the end-to-end wire serving
	// rate, JSON and TCP included.
	LookupsPerSec float64
	// WireP50 and WireP99 are per-request wall-clock latency quantiles as
	// the client saw them.
	WireP50 time.Duration
	WireP99 time.Duration
	// PerTenant is the per-tenant counter diff over the window.
	PerTenant []ServeTenantRow
}

// ServeLoad provisions T tenants on the target daemon (starting an
// in-process one when no address is given), installs each tenant's filter
// set through the wire API, then drives M concurrent clients issuing
// classify-batch requests round-robin across the tenants with Zipf-skewed
// per-tenant traces, and reports wire throughput, latency quantiles and the
// per-tenant counter diffs.
func ServeLoad(opts ServeOptions) (ServeResult, error) {
	tenants := opts.Tenants
	if tenants <= 0 {
		tenants = 2
	}
	clients := opts.Clients
	if clients <= 0 {
		clients = 4
	}
	requests := opts.RequestsPerClient
	if requests <= 0 {
		requests = 100
	}
	batch := opts.BatchSize
	if batch <= 0 {
		batch = 64
	}
	skew := opts.ZipfSkew
	if skew == 0 {
		skew = 1.1
	} else if skew < 0 {
		skew = 0
	}
	engines := opts.Engines
	if len(engines) == 0 {
		engines = engine.SelectableNames()
	}

	addr := opts.Addr
	if addr == "" {
		// In-process daemon on a loopback port: the load still crosses a
		// real TCP connection and the full JSON handler path, so the wire
		// latency is honest; only the network hop is loopback.
		quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return ServeResult{}, fmt.Errorf("bench: serve: %w", err)
		}
		srv := server.New(quiet)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() { defer close(done); _ = srv.Serve(ctx, ln) }()
		defer func() { cancel(); <-done }()
		addr = ln.Addr().String()
	}
	base := "http://" + addr
	httpClient := &http.Client{Timeout: 30 * time.Second}

	// Provision the tenants over the wire: delete any leftover of the same
	// id (external daemons may be reused across runs), create, install the
	// filter set as one batch through the Apply path.
	rs := classbench.Generate(classbench.StandardConfig(opts.Class, opts.Size))
	wireRules := make([]server.WireRule, rs.Len())
	for i, r := range rs.Rules() {
		wireRules[i] = wireRuleOf(r)
	}
	ids := make([]string, tenants)
	traces := make([][]fivetuple.Header, tenants)
	for t := 0; t < tenants; t++ {
		ids[t] = fmt.Sprintf("loadgen-%02d", t)
		req, _ := http.NewRequest(http.MethodDelete, base+"/v1/tenants/"+ids[t], nil)
		if resp, err := httpClient.Do(req); err == nil {
			_ = resp.Body.Close() // best-effort cleanup; 404 is the common case
		}
		if err := postJSON(httpClient, base+"/v1/tenants", server.CreateTenantRequest{
			ID:            ids[t],
			Engine:        engines[t%len(engines)],
			CacheShards:   opts.CacheShards,
			CacheCapacity: opts.CacheCapacity,
		}, nil); err != nil {
			return ServeResult{}, fmt.Errorf("bench: serve: creating tenant %s: %w", ids[t], err)
		}
		var rulesResp server.RulesResponse
		if err := postJSON(httpClient, base+"/v1/tenants/"+ids[t]+"/rules",
			server.RulesRequest{Rules: wireRules}, &rulesResp); err != nil {
			return ServeResult{}, fmt.Errorf("bench: serve: installing rules on %s: %w", ids[t], err)
		}
		// Every tenant replays its own flow population so the daemon serves
		// genuinely distinct traffic per table.
		traces[t] = classbench.GenerateTrace(rs, classbench.TraceConfig{
			Packets:       requests * batch,
			Seed:          opts.Seed + int64(t)*7919,
			MatchFraction: 0.9,
			Locality:      0.3,
			ZipfSkew:      skew,
		})
	}

	// Baseline counters, so external daemons report the diff over this load
	// window rather than their lifetime totals.
	before := make(map[string]uint64, tenants)
	for _, id := range ids {
		var ts server.WireTenantStats
		if err := getJSON(httpClient, base+"/v1/tenants/"+id+"/stats", &ts); err != nil {
			return ServeResult{}, fmt.Errorf("bench: serve: reading baseline stats of %s: %w", id, err)
		}
		before[id] = ts.Lookups
	}

	// The load window: M clients, each walking the tenants round-robin from
	// a client-specific offset, slicing batches out of the tenant's trace.
	type clientResult struct {
		latencies []time.Duration
		packets   int
		errors    int
	}
	results := make([]clientResult, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			res := clientResult{latencies: make([]time.Duration, 0, requests)}
			for r := 0; r < requests; r++ {
				t := (ci + r) % tenants
				trace := traces[t]
				pos := ((ci*requests + r) * batch) % len(trace)
				headers := make([]server.WireHeader, batch)
				for i := 0; i < batch; i++ {
					headers[i] = wireHeaderOf(trace[(pos+i)%len(trace)])
				}
				var batchResp server.ClassifyBatchResponse
				t0 := time.Now()
				err := postJSON(httpClient, base+"/v1/tenants/"+ids[t]+"/classify-batch",
					server.ClassifyBatchRequest{Headers: headers}, &batchResp)
				res.latencies = append(res.latencies, time.Since(t0))
				if err != nil {
					res.errors++
					continue
				}
				res.packets += batchResp.Report.Packets
			}
			results[ci] = res
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	out := ServeResult{
		Addr:      addr,
		Tenants:   tenants,
		Clients:   clients,
		BatchSize: batch,
		Elapsed:   elapsed,
	}
	var all []time.Duration
	for _, res := range results {
		all = append(all, res.latencies...)
		out.Packets += res.packets
		out.Errors += res.errors
		out.Requests += len(res.latencies)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	quantile := func(q float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		return all[int(q*float64(len(all)-1))]
	}
	out.WireP50 = quantile(0.50)
	out.WireP99 = quantile(0.99)
	if elapsed > 0 {
		out.LookupsPerSec = float64(out.Packets) / elapsed.Seconds()
	}

	// Per-tenant accounting: the served-lookup diff over the window plus
	// the match and cache hit rates the daemon reports.
	for _, id := range ids {
		var ts server.WireTenantStats
		if err := getJSON(httpClient, base+"/v1/tenants/"+id+"/stats", &ts); err != nil {
			return ServeResult{}, fmt.Errorf("bench: serve: reading stats of %s: %w", id, err)
		}
		row := ServeTenantRow{
			ID:        ts.ID,
			Engine:    ts.Engine,
			Rules:     ts.Rules,
			Lookups:   ts.Lookups - before[id],
			MatchRate: ts.MatchRate,
		}
		if ts.Cache != nil {
			row.Cached = true
			row.CacheHitRate = ts.Cache.HitRate
		}
		out.PerTenant = append(out.PerTenant, row)
	}
	return out, nil
}

// RenderServe renders the load-generator result as a report.
func RenderServe(res ServeResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Wire-API load generator — %d clients x classify-batch(%d) across %d tenants at %s\n",
		res.Clients, res.BatchSize, res.Tenants, res.Addr)
	fmt.Fprintf(&b, "%d requests (%d lookups, %d errors) in %v: %.0f lookups/s, wire latency p50 %v p99 %v\n",
		res.Requests, res.Packets, res.Errors, res.Elapsed.Round(time.Millisecond),
		res.LookupsPerSec, res.WireP50, res.WireP99)
	fmt.Fprintf(&b, "%-12s %-10s %8s %10s %8s %6s\n", "tenant", "engine", "rules", "lookups", "match%", "hit%")
	for _, row := range res.PerTenant {
		hit := "-"
		if row.Cached {
			hit = fmt.Sprintf("%.1f", 100*row.CacheHitRate)
		}
		fmt.Fprintf(&b, "%-12s %-10s %8d %10d %7.1f%% %6s\n",
			row.ID, row.Engine, row.Rules, row.Lookups, 100*row.MatchRate, hit)
	}
	return b.String()
}

// wireRuleOf converts an internal rule to its wire form (the inverse of the
// server's decode path, kept here so the generator depends only on the
// public wire surface plus the generators).
func wireRuleOf(r fivetuple.Rule) server.WireRule {
	wr := server.WireRule{
		Priority:  r.Priority,
		Action:    r.Action.String(),
		ActionArg: r.ActionArg,
	}
	if !r.SrcPrefix.IsWildcard() {
		wr.Src = r.SrcPrefix.String()
	}
	if !r.DstPrefix.IsWildcard() {
		wr.Dst = r.DstPrefix.String()
	}
	if !r.SrcPort.IsWildcard() {
		wr.SrcPort = &server.WirePortRange{Lo: r.SrcPort.Lo, Hi: r.SrcPort.Hi}
	}
	if !r.DstPort.IsWildcard() {
		wr.DstPort = &server.WirePortRange{Lo: r.DstPort.Lo, Hi: r.DstPort.Hi}
	}
	if !r.Protocol.IsWildcard() {
		proto := r.Protocol.Value
		wr.Proto = &proto
	}
	return wr
}

// wireHeaderOf converts a generated header to its wire form.
func wireHeaderOf(h fivetuple.Header) server.WireHeader {
	return server.WireHeader{
		SrcIP:   h.SrcIP.String(),
		SrcPort: h.SrcPort,
		DstIP:   h.DstIP.String(),
		DstPort: h.DstPort,
		Proto:   h.Protocol,
	}
}

// postJSON posts body as JSON and decodes the response into out (skipped
// when out is nil). Non-2xx statuses surface as errors carrying the body.
func postJSON(c *http.Client, url string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	return decodeResponse(resp, out)
}

// getJSON fetches url and decodes the response into out.
func getJSON(c *http.Client, url string, out any) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	return decodeResponse(resp, out)
}

func decodeResponse(resp *http.Response, out any) error {
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
